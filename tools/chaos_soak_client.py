#!/usr/bin/env python3
"""Chaos soak client for the serve_sparse socket front-end.

Speaks the NDS1 wire protocol (src/serve/wire.hpp) with nothing but the
Python stdlib and hammers a server — typically one running with
NDSNN_FAULTS armed — for a fixed wall-clock budget. The client is the
*well-behaved* side of the chaos experiment: it never violates the
protocol, tolerates every typed error status, and reconnects whenever
the server (or an injected fault) kills its connection. The invariant
it enforces is the client-visible half of the fault-tolerance contract:

  - every frame the client manages to send is answered by exactly one
    response frame or a connection error — never a hang (a global
    socket timeout turns a silent stall into a failure);
  - non-ok statuses are *typed*: shed (1), error (2), timeout (3),
    shedding (4) and backpressure (5) are all counted and survivable;
  - backpressure on a stream step is retried with backoff on the same
    connection (the session must still be usable);
  - at least one request must actually succeed end to end, otherwise
    the soak exits non-zero (a server that sheds 100% is not "up").

Usage:
  chaos_soak_client.py --port 9000 [--host 127.0.0.1] [--seconds 30]
                       [--shape 1,3,16,16] [--model NAME] [--seed 7]

Exit codes: 0 = soak completed with >= 1 ok response; 1 = no successful
response (or the server was never reachable); 2 = protocol violation
(malformed response — a real bug, not an injected fault).
"""

import argparse
import random
import socket
import struct
import sys
import time

MAGIC = 0x3153444E  # "NDS1"
KIND_REQUEST = 1
KIND_RESPONSE = 2
KIND_STREAM_OPEN = 3
KIND_STREAM_STEP = 4
KIND_STREAM_CLOSE = 5
STATUS_NAMES = {0: "ok", 1: "shed", 2: "error", 3: "timeout",
                4: "shedding", 5: "backpressure"}
MAX_FRAME = 256 << 20


class ProtocolError(Exception):
    """The server sent bytes that are not a valid NDS1 frame."""


def recv_exact(sock, n):
    buf = b""
    while len(buf) < n:
        chunk = sock.recv(n - len(buf))
        if not chunk:
            raise ConnectionError("eof mid-read")
        buf += chunk
    return buf


def send_frame(sock, payload):
    sock.sendall(struct.pack("<II", MAGIC, len(payload)) + payload)


def recv_frame(sock):
    magic, length = struct.unpack("<II", recv_exact(sock, 8))
    if magic != MAGIC:
        raise ProtocolError(f"bad magic 0x{magic:08x}")
    if length > MAX_FRAME:
        raise ProtocolError(f"oversized frame {length}")
    return recv_exact(sock, length)


def encode_tensor(dims, data):
    out = struct.pack("<I", len(dims))
    for d in dims:
        out += struct.pack("<q", d)
    out += struct.pack(f"<{len(data)}f", *data)
    return out


def encode_request(model, dims, data, slo_class=0):
    m = model.encode()
    return (struct.pack("<BBBH", 1, KIND_REQUEST, slo_class, len(m)) + m +
            encode_tensor(dims, data))


def encode_stream_open(model):
    m = model.encode()
    return struct.pack("<BBH", 2, KIND_STREAM_OPEN, len(m)) + m


def encode_stream_step(dims, data):
    return struct.pack("<BB", 2, KIND_STREAM_STEP) + encode_tensor(dims, data)


def encode_stream_close():
    return struct.pack("<BB", 2, KIND_STREAM_CLOSE)


def decode_response(payload):
    """Returns (status, detail). detail is the logits element count on
    ok, the error message otherwise."""
    if len(payload) < 3:
        raise ProtocolError(f"response too short ({len(payload)} bytes)")
    version, kind, status = struct.unpack_from("<BBB", payload, 0)
    if kind != KIND_RESPONSE:
        raise ProtocolError(f"expected response kind, got {kind}")
    if status not in STATUS_NAMES:
        raise ProtocolError(f"unknown status {status}")
    off = 3
    if status == 0:
        (rank,) = struct.unpack_from("<I", payload, off)
        off += 4
        numel = 1
        for _ in range(rank):
            (d,) = struct.unpack_from("<q", payload, off)
            off += 8
            numel *= max(d, 1)
        if len(payload) - off != 4 * numel:
            raise ProtocolError("ok response data length mismatch")
        return 0, numel
    (msg_len,) = struct.unpack_from("<I", payload, off)
    off += 4
    return status, payload[off:off + msg_len].decode(errors="replace")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--host", default="127.0.0.1")
    ap.add_argument("--port", type=int, required=True)
    ap.add_argument("--seconds", type=float, default=30.0)
    ap.add_argument("--shape", default="1,3,16,16",
                    help="request tensor shape, comma-separated")
    ap.add_argument("--model", default="", help="registry model name "
                    "(empty = server default)")
    ap.add_argument("--seed", type=int, default=7)
    ap.add_argument("--sock-timeout", type=float, default=10.0,
                    help="per-socket timeout: a silent hang fails the soak")
    args = ap.parse_args()

    dims = [int(d) for d in args.shape.split(",")]
    numel = 1
    for d in dims:
        numel *= d
    rng = random.Random(args.seed)

    counts = {name: 0 for name in STATUS_NAMES.values()}
    counts.update(conn_errors=0, sent=0, reconnects=0)
    deadline = time.monotonic() + args.seconds
    sock = None
    iteration = 0

    def connect():
        s = socket.create_connection((args.host, args.port),
                                     timeout=args.sock_timeout)
        return s

    def roundtrip(s, payload):
        send_frame(s, payload)
        counts["sent"] += 1
        status, detail = decode_response(recv_frame(s))
        counts[STATUS_NAMES[status]] += 1
        return status, detail

    while time.monotonic() < deadline:
        try:
            if sock is None:
                sock = connect()
            data = [rng.random() for _ in range(numel)]
            if iteration % 4 == 3:
                # Short streaming session: open, two steps (retrying
                # each on backpressure), close.
                status, _ = roundtrip(sock, encode_stream_open(args.model))
                if status == 0:
                    step = encode_stream_step(dims, data)
                    for _ in range(2):
                        for attempt in range(5):
                            status, _ = roundtrip(sock, step)
                            if status != 5:  # not backpressure
                                break
                            time.sleep(0.01 * (2 ** attempt))
                    roundtrip(sock, encode_stream_close())
            else:
                roundtrip(sock, encode_request(args.model, dims, data))
            iteration += 1
        except ProtocolError:
            raise
        except (OSError, ConnectionError, socket.timeout):
            # Injected resets, torn frames, reaped connections, refused
            # accepts: all legitimate chaos outcomes. Reconnect.
            counts["conn_errors"] += 1
            counts["reconnects"] += 1
            if sock is not None:
                try:
                    sock.close()
                except OSError:
                    pass
                sock = None
            time.sleep(0.05)

    if sock is not None:
        try:
            sock.close()
        except OSError:
            pass

    total_answered = sum(counts[n] for n in STATUS_NAMES.values())
    print(f"chaos soak: {counts['sent']} frames sent, "
          f"{total_answered} answered, {counts['conn_errors']} connection "
          f"errors, {counts['reconnects']} reconnects")
    print("  " + "  ".join(f"{n}={counts[n]}" for n in STATUS_NAMES.values()))
    if counts["ok"] == 0:
        print("FAIL: no request ever succeeded", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except ProtocolError as exc:
        print(f"PROTOCOL VIOLATION: {exc}", file=sys.stderr)
        sys.exit(2)
