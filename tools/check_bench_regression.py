#!/usr/bin/env python3
"""Compare a fresh bench_sparse_inference.json against the checked-in
BENCH_sparse_inference.json snapshot and fail on a real throughput
regression.

Gate design: CI runners and the snapshot box differ in core count,
cache and load, so absolute ms / samples_per_s are not comparable
across machines. The gate therefore checks the *normalized* throughput
ratios the bench computes on-box:

  - sparsity_sweep speedup at the 0.9 and 0.95 points (compiled best
    path vs the interpreted dense path on the same machine) must stay
    within TOLERANCE of the snapshot's value.

  - kernel_tiers (required in the fresh document): on a box whose
    detected tier is avx2, the hand-written AVX2 fp32 spmm_t kernel
    must stay >= 1.5x over the gcc-vector-extension baseline — a
    same-machine, same-process ratio, so it gates on every runner
    independent of the snapshot box. Elsewhere the tier rows are
    informational.

TOLERANCE is 30% (noisy-box tolerant): the point is to catch a kernel
or heuristic change that halves the sparse win, not to chase scheduler
jitter.

Schema evolution: the bench JSON grows a section per PR (structured,
quant_kernel, executor, op_breakdown, ...). Sections this script does
not know about are IGNORED, so adding a section never breaks the gate
and a fresh bench can be compared against an older snapshot. The
inverse is not tolerated: if a section this script *requires* is
missing from either document, that is a schema break (a bench refactor
silently dropped output) and the check fails with a message naming the
document and the section, rather than passing vacuously or dying on a
KeyError.

Serving gates (--serving bench_serving_load.json): unlike the sweep,
the serving bench is gated against *itself*, not a snapshot — the
scheduler's contract is scale-free ("p50 must not collapse when
workers are added", "admitted p99 holds the SLO below saturation",
"overload sheds instead of queueing"), so no cross-machine baseline is
needed. The queueing gates only bind when the runner reports >= 4
cores; on smaller boxes workers share cores, nominal load factors
overstate true capacity, and every serving number is printed as
informational instead.

Streaming gates (--streaming bench_streaming_latency.json): like the
serving gates, self-contained — the streaming contract is scale-free.
Three things are gated on ANY core count (they hold structurally, not
by machine speed): the streamed outputs must match the whole-window
pass bitwise, the delta path must have fired on the bench's silent
frames (delta_skips > 0), and the streamed per-event p99 must beat the
whole-window latency (per-event latency is the point of streaming; a
single step can never legitimately take longer than the whole window).
The pipelining speedup over the serial session is informational below
SERVING_MIN_CORES cores.

Usage: check_bench_regression.py <fresh.json> <snapshot.json>
                                 [--serving serving.json]
                                 [--streaming streaming.json]
Exit 0 = no regression, 1 = regression (or malformed input).
"""

import json
import sys

TOLERANCE = 0.30
GATED_SPARSITIES = (0.9, 0.95)

# Serving gates (see ISSUE acceptance): p50 with 4 workers at fixed
# offered load must stay within 1.5x of the 1-worker p50 (the bug this
# guards against inverted the curve to ~4x), and the admitted p99 at
# <= 80% of pool saturation must hold the SLO (1.25x headroom for
# runner jitter on the tail).
SERVING_P50_SCALING_MAX = 1.5
SERVING_P99_SLO_HEADROOM = 1.25
SERVING_MIN_CORES = 4

# Floor for the hand-written AVX2 fp32 spmm_t kernel over the
# gcc-vector-extension baseline, measured by the bench's kernel_tiers
# section (min-of-repeats on the fc1-scale layer). Binds only when the
# *fresh* run's box detected avx2; elsewhere the tier numbers are
# printed as informational (the dispatch layer clamps, so there is no
# AVX2 kernel to gate).
KERNEL_TIER_AVX2_MIN_SPEEDUP = 1.5

# Sections that must exist (and be non-empty) in both documents. Only
# the sections the gate actually reads are required; everything else in
# the JSON is informational and may come or go between versions.
# kernel_tiers is required in the *fresh* document only (older
# snapshots predate it); see check_kernel_tiers.
REQUIRED_SECTIONS = ("sparsity_sweep",)
REQUIRED_FRESH_SECTIONS = ("kernel_tiers",)


def check_required_sections(doc, label):
    """Return a list of human-readable errors for missing sections."""
    errors = []
    for section in REQUIRED_SECTIONS:
        if section not in doc:
            errors.append(
                f"FAIL: required section '{section}' missing from {label} -- "
                f"the bench schema changed (or the wrong JSON was passed); "
                f"refusing to pass vacuously")
        elif not doc[section]:
            errors.append(
                f"FAIL: required section '{section}' in {label} is empty")
    return errors


def sweep_speedups(doc):
    out = {}
    for entry in doc.get("sparsity_sweep", []):
        out[round(float(entry["sparsity"]), 4)] = float(entry["speedup"])
    return out


def check_kernel_tiers(doc):
    """Gate the SIMD tier section of the fresh document.

    The AVX2 fp32 spmm_t kernel must beat the vector-extension baseline
    by KERNEL_TIER_AVX2_MIN_SPEEDUP on a box that detected avx2; on any
    other box the tier numbers are informational (there is no AVX2
    kernel running to gate). Gating fresh-against-itself is sound
    because the ratio is computed between two kernels on the same
    machine in the same process — no cross-machine baseline involved.
    """
    tiers = doc["kernel_tiers"]
    detected = str(tiers.get("detected", ""))
    gated = detected == "avx2"
    mode = "gated" if gated else f"informational: detected tier '{detected}'"
    ok = True

    speedup = float(tiers.get("avx2_fp32_spmm_t_speedup", -1.0))
    if gated:
        status = "ok" if speedup >= KERNEL_TIER_AVX2_MIN_SPEEDUP else "REGRESSION"
        print(f"kernel_tiers: avx2 fp32 spmm_t = {speedup:.2f}x over vector "
              f"(floor {KERNEL_TIER_AVX2_MIN_SPEEDUP}x) -> {status} ({mode})")
        if speedup < KERNEL_TIER_AVX2_MIN_SPEEDUP:
            ok = False
    else:
        print(f"kernel_tiers: no avx2 gate ({mode})")

    for entry in tiers.get("kernels", []):
        kernel = entry.get("kernel", "?")
        precision = entry.get("precision", "?")
        vector_ms = float(entry.get("vector_ms", 0.0))
        avx2_ms = float(entry.get("avx2_ms", -1.0))
        if avx2_ms > 0.0 and vector_ms > 0.0:
            print(f"info: {kernel}/{precision} avx2 {avx2_ms:.3f} ms vs "
                  f"vector {vector_ms:.3f} ms ({vector_ms / avx2_ms:.2f}x)")
    return ok


def check_serving(doc):
    """Self-contained queueing gates over a bench_serving_load.json.

    Returns True when everything gated passed (or the box is too small
    to gate and everything was downgraded to informational).
    """
    serving = doc.get("serving")
    if not serving:
        print("FAIL: 'serving' section missing/empty in serving JSON -- "
              "the serving bench schema changed; refusing to pass vacuously")
        return False

    cores = int(doc.get("cores", 0))
    gated = cores >= SERVING_MIN_CORES
    mode = "gated" if gated else f"informational: {cores} < {SERVING_MIN_CORES} cores"
    ok = True

    # Gate 1: adding workers at fixed offered load must not inflate p50.
    scaling = float(serving.get("p50_scaling", 0.0))
    status = "ok" if scaling <= SERVING_P50_SCALING_MAX else "REGRESSION"
    print(f"serving: p50@4w / p50@1w = {scaling:.2f}x "
          f"(max {SERVING_P50_SCALING_MAX}x) -> {status} ({mode})")
    if gated and scaling > SERVING_P50_SCALING_MAX:
        ok = False

    # Gate 2: below saturation the admitted tail holds the SLO; past
    # saturation the scheduler must shed rather than queue unboundedly.
    for point in serving.get("slo_sweep", []):
        load = float(point.get("load_factor", 0.0))
        slo_ms = float(point.get("slo_ms", 0.0))
        p99 = float(point.get("e2e_p99_ms", 0.0))
        shed_rate = float(point.get("shed_rate", 0.0))
        if load <= 0.8 and slo_ms > 0.0:
            ceiling = slo_ms * SERVING_P99_SLO_HEADROOM
            status = "ok" if p99 <= ceiling else "REGRESSION"
            print(f"serving: load {load}x admitted p99 {p99:.2f} ms vs "
                  f"SLO {slo_ms:.2f} ms (ceiling {ceiling:.2f}) -> {status} ({mode})")
            if gated and p99 > ceiling:
                ok = False
        if load >= 1.5:
            status = "ok" if shed_rate > 0.0 else "REGRESSION"
            print(f"serving: load {load}x shed rate {shed_rate:.3f} "
                  f"(must be > 0 in overload) -> {status} ({mode})")
            if gated and shed_rate <= 0.0:
                ok = False
    return ok


def check_streaming(doc):
    """Self-contained streaming gates over a bench_streaming_latency.json.

    Bitwise equivalence, delta-path activity and the per-event latency
    advantage are structural properties and gate on every box; the
    pipelining speedup needs real cores and is informational below
    SERVING_MIN_CORES.
    """
    streaming = doc.get("streaming")
    if not streaming:
        print("FAIL: 'streaming' section missing/empty in streaming JSON -- "
              "the streaming bench schema changed; refusing to pass vacuously")
        return False

    cores = int(doc.get("cores", 0))
    ok = True

    bitwise = int(streaming.get("bitwise_ok", 0))
    status = "ok" if bitwise == 1 else "REGRESSION"
    print(f"streaming: streamed outputs bitwise == whole-window -> {status} (gated)")
    if bitwise != 1:
        ok = False

    skips = int(streaming.get("delta_skips", 0))
    status = "ok" if skips > 0 else "REGRESSION"
    print(f"streaming: delta_skips {skips} (must be > 0: silent frames must "
          f"skip weight ops) -> {status} (gated)")
    if skips <= 0:
        ok = False

    window_ms = float(streaming.get("whole_window_ms", 0.0))
    step_p99 = float(streaming.get("step_p99_ms", 0.0))
    status = "ok" if 0.0 < step_p99 < window_ms else "REGRESSION"
    print(f"streaming: per-event p99 {step_p99:.2f} ms vs whole-window "
          f"{window_ms:.2f} ms -> {status} (gated)")
    if not 0.0 < step_p99 < window_ms:
        ok = False

    piped_ms = float(streaming.get("pipelined_window_ms", 0.0))
    if piped_ms > 0.0 and window_ms > 0.0:
        mode = ("gated would need >= 4 cores; informational"
                if cores < SERVING_MIN_CORES else "informational")
        print(f"info: pipelined window {piped_ms:.2f} ms vs whole-window "
              f"{window_ms:.2f} ms ({window_ms / piped_ms:.2f}x, {mode})")
    return ok


def main(argv):
    serving_path = None
    if "--serving" in argv:
        i = argv.index("--serving")
        if i + 1 >= len(argv):
            print(__doc__)
            return 1
        serving_path = argv[i + 1]
        argv = argv[:i] + argv[i + 2:]
    streaming_path = None
    if "--streaming" in argv:
        i = argv.index("--streaming")
        if i + 1 >= len(argv):
            print(__doc__)
            return 1
        streaming_path = argv[i + 1]
        argv = argv[:i] + argv[i + 2:]
    if len(argv) != 3:
        print(__doc__)
        return 1
    with open(argv[1]) as f:
        fresh = json.load(f)
    with open(argv[2]) as f:
        snapshot = json.load(f)

    section_errors = (check_required_sections(fresh, f"fresh ({argv[1]})") +
                      check_required_sections(snapshot, f"snapshot ({argv[2]})"))
    for section in REQUIRED_FRESH_SECTIONS:
        if section not in fresh or not fresh[section]:
            section_errors.append(
                f"FAIL: required section '{section}' missing/empty in fresh "
                f"({argv[1]}) -- the bench no longer emits it; "
                f"refusing to pass vacuously")
    if section_errors:
        for err in section_errors:
            print(err)
        print("bench regression check FAILED (schema)")
        return 1

    fresh_speedups = sweep_speedups(fresh)
    snap_speedups = sweep_speedups(snapshot)

    failed = False
    for sparsity in GATED_SPARSITIES:
        key = round(sparsity, 4)
        if key not in fresh_speedups or key not in snap_speedups:
            print(f"FAIL: sparsity point {sparsity} missing from sweep "
                  f"(fresh: {key in fresh_speedups}, snapshot: {key in snap_speedups})")
            failed = True
            continue
        fresh_v, snap_v = fresh_speedups[key], snap_speedups[key]
        floor = snap_v * (1.0 - TOLERANCE)
        status = "ok" if fresh_v >= floor else "REGRESSION"
        print(f"sparsity {sparsity}: speedup {fresh_v:.2f}x vs snapshot {snap_v:.2f}x "
              f"(floor {floor:.2f}x) -> {status}")
        if fresh_v < floor:
            failed = True

    if not check_kernel_tiers(fresh):
        failed = True
    autotune = fresh.get("autotune", {})
    if autotune:
        print(f"info: autotune compile cold {autotune.get('compile_cold_ms', 0):.1f} ms, "
              f"warm {autotune.get('compile_warm_ms', 0):.1f} ms, "
              f"plan speedup {autotune.get('autotune_speedup', 0):.2f}x")

    # Informational (not gated: thread/coalescing wins are core-count
    # bound and the snapshot may come from a smaller box than CI).
    tk = fresh.get("threads_kernel", {})
    if tk:
        print(f"info: spmm speedup at 4 threads = {tk.get('spmm_speedup_4t', 0):.2f}x")
    if "coalesce_speedup" in fresh:
        print(f"info: coalescing speedup = {fresh['coalesce_speedup']:.2f}x")
    breakdown = fresh.get("op_breakdown", {})
    if breakdown.get("ops"):
        hottest = max(breakdown["ops"],
                      key=lambda op: op.get("mean_us", 0.0) * op.get("runs", 0))
        print(f"info: hottest op = {hottest.get('layer', '?')} "
              f"({hottest.get('kind', '?')}), "
              f"share {100.0 * hottest.get('share', 0.0):.1f}%")

    if serving_path is not None:
        with open(serving_path) as f:
            serving_doc = json.load(f)
        if not check_serving(serving_doc):
            failed = True

    if streaming_path is not None:
        with open(streaming_path) as f:
            streaming_doc = json.load(f)
        if not check_streaming(streaming_doc):
            failed = True

    if failed:
        print("bench regression check FAILED")
        return 1
    print("bench regression check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
