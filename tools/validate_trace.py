#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON produced by `serve_sparse --trace`
(or any trace::write_chrome_file output).

Checks, in order:

  1. The file parses as JSON and has a non-empty `traceEvents` array of
     complete "X" (duration) events: name, cat, ts, dur, pid, tid.
  2. Per-op coverage: the "op" category (one span per plan op
     execution, emitted by trace::run_op_instrumented) contains at
     least --min-ops DISTINCT op names — a trace with fewer means the
     instrumentation fell off part of the plan.
  3. Executor coverage: at least one "queue" span (enqueue -> start
     wait) exists when --require-queue is set; "coalesce" spans are
     reported but optional (an uncontended queue never holds a batch
     open).
  4. Sanity: every event has dur >= 0 and ts >= 0.

Prints a category -> {span count, distinct names} summary so the CI log
shows what the trace actually captured.

Usage: validate_trace.py <trace.json> [--min-ops N] [--require-queue]
Exit 0 = valid, 1 = invalid (message says which check failed).
"""

import argparse
import collections
import json
import sys


def main(argv):
    parser = argparse.ArgumentParser(
        description="Validate a serve_sparse --trace Chrome trace JSON")
    parser.add_argument("trace", help="path to the trace JSON")
    parser.add_argument("--min-ops", type=int, default=1,
                        help="minimum DISTINCT op names required in the "
                             "'op' category (default 1)")
    parser.add_argument("--require-queue", action="store_true",
                        help="additionally require >= 1 'queue' "
                             "(enqueue->start wait) span")
    args = parser.parse_args(argv[1:])

    try:
        with open(args.trace) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        print(f"FAIL: cannot load {args.trace} as JSON: {err}")
        return 1

    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        print(f"FAIL: {args.trace} has no non-empty 'traceEvents' array")
        return 1

    by_cat = collections.defaultdict(collections.Counter)
    for i, ev in enumerate(events):
        for field in ("name", "cat", "ph", "ts", "dur", "pid", "tid"):
            if field not in ev:
                print(f"FAIL: event #{i} missing field '{field}': {ev}")
                return 1
        if ev["ph"] != "X":
            print(f"FAIL: event #{i} has ph={ev['ph']!r}, expected complete "
                  f"'X' events only")
            return 1
        if ev["ts"] < 0 or ev["dur"] < 0:
            print(f"FAIL: event #{i} has negative ts/dur: {ev}")
            return 1
        by_cat[ev["cat"]][ev["name"]] += 1

    print(f"{args.trace}: {len(events)} events")
    for cat in sorted(by_cat):
        names = by_cat[cat]
        print(f"  cat '{cat}': {sum(names.values())} spans, "
              f"{len(names)} distinct names "
              f"({', '.join(sorted(names)[:8])}{', ...' if len(names) > 8 else ''})")

    op_names = by_cat.get("op", {})
    if len(op_names) < args.min_ops:
        print(f"FAIL: 'op' category has {len(op_names)} distinct op names, "
              f"need >= {args.min_ops} -- per-op instrumentation is not "
              f"covering the plan")
        return 1

    if args.require_queue and not by_cat.get("queue"):
        print("FAIL: no 'queue' spans -- executor queue-wait "
              "instrumentation missing from the trace")
        return 1

    print("trace validation passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
