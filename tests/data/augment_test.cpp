#include "data/augment.hpp"

#include <gtest/gtest.h>

namespace ndsnn::data {
namespace {

using tensor::Rng;
using tensor::Shape;
using tensor::Tensor;

TEST(AugmentTest, PreservesShapeAndRange) {
  Rng rng(1);
  Tensor batch(Shape{4, 3, 8, 8});
  batch.fill_uniform(rng, 0.0F, 1.0F);
  const Shape before = batch.shape();
  AugmentConfig cfg;
  Rng arng(2);
  augment_batch(batch, cfg, arng);
  EXPECT_EQ(batch.shape(), before);
  for (int64_t i = 0; i < batch.numel(); ++i) {
    EXPECT_GE(batch.at(i), 0.0F);
    EXPECT_LE(batch.at(i), 1.0F);
  }
}

TEST(AugmentTest, NoOpConfigLeavesDataUntouched) {
  Rng rng(3);
  Tensor batch(Shape{2, 1, 4, 4});
  batch.fill_uniform(rng, 0.0F, 1.0F);
  const Tensor before = batch;
  AugmentConfig cfg;
  cfg.crop_padding = 0;
  cfg.horizontal_flip = false;
  Rng arng(4);
  augment_batch(batch, cfg, arng);
  for (int64_t i = 0; i < batch.numel(); ++i) EXPECT_EQ(batch.at(i), before.at(i));
}

TEST(AugmentTest, FlipOnlyPermutesPixelMultiset) {
  Rng rng(5);
  Tensor batch(Shape{1, 1, 4, 4});
  for (int64_t i = 0; i < 16; ++i) batch.at(i) = static_cast<float>(i);
  AugmentConfig cfg;
  cfg.crop_padding = 0;
  cfg.horizontal_flip = true;
  // Run until a flip happens (bernoulli 0.5).
  bool flipped = false;
  for (int attempt = 0; attempt < 32 && !flipped; ++attempt) {
    Tensor copy = batch;
    Rng arng(static_cast<uint64_t>(attempt));
    augment_batch(copy, cfg, arng);
    if (copy.at(0) != batch.at(0)) {
      flipped = true;
      // Row {0,1,2,3} must become {3,2,1,0}.
      EXPECT_EQ(copy.at(0), 3.0F);
      EXPECT_EQ(copy.at(3), 0.0F);
    }
  }
  EXPECT_TRUE(flipped);
}

TEST(AugmentTest, ChangesSomethingWithHighProbability) {
  Rng rng(6);
  Tensor batch(Shape{8, 3, 8, 8});
  batch.fill_uniform(rng, 0.0F, 1.0F);
  const Tensor before = batch;
  AugmentConfig cfg;
  Rng arng(7);
  augment_batch(batch, cfg, arng);
  int64_t changed = 0;
  for (int64_t i = 0; i < batch.numel(); ++i) changed += batch.at(i) != before.at(i);
  EXPECT_GT(changed, 0);
}

TEST(AugmentTest, RejectsBadInputs) {
  AugmentConfig cfg;
  cfg.crop_padding = -1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  Tensor not4d(Shape{4, 4});
  AugmentConfig ok;
  Rng rng(8);
  EXPECT_THROW(augment_batch(not4d, ok, rng), std::invalid_argument);
}

}  // namespace
}  // namespace ndsnn::data
