#include "data/event_synthetic.hpp"

#include <gtest/gtest.h>

namespace ndsnn::data {
namespace {

EventSpec tiny() {
  EventSpec spec;
  spec.num_classes = 4;
  spec.image_size = 12;
  spec.timesteps = 6;
  spec.train_size = 40;
  return spec;
}

TEST(EventSpecTest, Validation) {
  EXPECT_NO_THROW(tiny().validate());
  auto bad = tiny();
  bad.timesteps = 1;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = tiny();
  bad.event_threshold = 0.0F;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = tiny();
  bad.noise_events = 1.0F;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

TEST(EventTest, ShapeIsPolarityTimesTimesteps) {
  SyntheticEvents ds(tiny());
  EXPECT_EQ(ds.channels(), 12);  // 2 * T
  const Sample s = ds.get(0);
  EXPECT_EQ(s.image.shape(), tensor::Shape({12, 12, 12}));
}

TEST(EventTest, EventsAreBinary) {
  SyntheticEvents ds(tiny());
  for (int64_t i = 0; i < 5; ++i) {
    const Sample s = ds.get(i);
    for (int64_t j = 0; j < s.image.numel(); ++j) {
      EXPECT_TRUE(s.image.at(j) == 0.0F || s.image.at(j) == 1.0F);
    }
  }
}

TEST(EventTest, Deterministic) {
  SyntheticEvents a(tiny()), b(tiny());
  const Sample sa = a.get(3), sb = b.get(3);
  EXPECT_EQ(sa.label, sb.label);
  for (int64_t i = 0; i < sa.image.numel(); ++i) EXPECT_EQ(sa.image.at(i), sb.image.at(i));
}

TEST(EventTest, EventsAreSparse) {
  auto spec = tiny();
  spec.noise_events = 0.0F;
  SyntheticEvents ds(spec);
  const double rate = ds.measure_event_rate(10);
  EXPECT_GT(rate, 0.0);   // something moves
  EXPECT_LT(rate, 0.35);  // but most pixels are silent
}

TEST(EventTest, MotionGeneratesEventsOverTime) {
  auto spec = tiny();
  spec.noise_events = 0.0F;
  SyntheticEvents ds(spec);
  const Sample s = ds.get(0);
  // At least one ON event and one OFF event somewhere in the stream
  // (a moving bright blob creates both leading and trailing edges).
  double on = 0.0, off = 0.0;
  const int64_t plane = 12 * 12;
  for (int64_t t = 0; t < 6; ++t) {
    for (int64_t i = 0; i < plane; ++i) {
      on += s.image.at((2 * t) * plane + i);
      off += s.image.at((2 * t + 1) * plane + i);
    }
  }
  EXPECT_GT(on, 0.0);
  EXPECT_GT(off, 0.0);
}

TEST(EventTest, SampleOffsetDisjointStreams) {
  auto a_spec = tiny();
  auto b_spec = tiny();
  b_spec.sample_offset = 4096;
  SyntheticEvents a(a_spec), b(b_spec);
  const Sample sa = a.get(0), sb = b.get(0);
  bool identical = true;
  for (int64_t i = 0; i < sa.image.numel(); ++i) {
    if (sa.image.at(i) != sb.image.at(i)) identical = false;
  }
  EXPECT_FALSE(identical);
}

TEST(EventTest, OutOfRangeThrows) {
  SyntheticEvents ds(tiny());
  EXPECT_THROW((void)ds.get(40), std::out_of_range);
  EXPECT_THROW((void)ds.get(-1), std::out_of_range);
}

TEST(EventTest, NoiseIncreasesEventRate) {
  auto quiet = tiny();
  quiet.noise_events = 0.0F;
  auto noisy = tiny();
  noisy.noise_events = 0.1F;
  EXPECT_GT(SyntheticEvents(noisy).measure_event_rate(8),
            SyntheticEvents(quiet).measure_event_rate(8));
}

}  // namespace
}  // namespace ndsnn::data
