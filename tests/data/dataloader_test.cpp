#include "data/dataloader.hpp"

#include <gtest/gtest.h>

#include <set>

#include "data/synthetic.hpp"

namespace ndsnn::data {
namespace {

SyntheticSpec tiny(int64_t n = 20) {
  SyntheticSpec spec;
  spec.num_classes = 4;
  spec.channels = 1;
  spec.image_size = 8;
  spec.train_size = n;
  return spec;
}

TEST(DataLoaderTest, CoversWholeDatasetOnce) {
  SyntheticVision ds(tiny(20));
  DataLoader loader(ds, 8, /*seed=*/1);
  loader.start_epoch();
  int64_t seen = 0;
  while (auto batch = loader.next()) seen += batch->size();
  EXPECT_EQ(seen, 20);
}

TEST(DataLoaderTest, BatchesPerEpoch) {
  SyntheticVision ds(tiny(20));
  DataLoader keep(ds, 8, 1, true, /*drop_last=*/false);
  EXPECT_EQ(keep.batches_per_epoch(), 3);
  DataLoader drop(ds, 8, 1, true, /*drop_last=*/true);
  EXPECT_EQ(drop.batches_per_epoch(), 2);
}

TEST(DataLoaderTest, DropLastSkipsPartialBatch) {
  SyntheticVision ds(tiny(20));
  DataLoader loader(ds, 8, 1, true, /*drop_last=*/true);
  loader.start_epoch();
  int64_t seen = 0;
  while (auto batch = loader.next()) {
    EXPECT_EQ(batch->size(), 8);
    seen += batch->size();
  }
  EXPECT_EQ(seen, 16);
}

TEST(DataLoaderTest, ShuffleChangesOrderBetweenEpochs) {
  SyntheticVision ds(tiny(40));
  DataLoader loader(ds, 40, /*seed=*/3);
  loader.start_epoch();
  const auto b1 = loader.next();
  loader.start_epoch();
  const auto b2 = loader.next();
  ASSERT_TRUE(b1 && b2);
  EXPECT_NE(b1->labels, b2->labels);
}

TEST(DataLoaderTest, NoShuffleIsSequential) {
  SyntheticVision ds(tiny(12));
  DataLoader loader(ds, 12, 1, /*shuffle=*/false);
  loader.start_epoch();
  const auto batch = loader.next();
  ASSERT_TRUE(batch);
  for (int64_t i = 0; i < 12; ++i) {
    EXPECT_EQ(batch->labels[static_cast<std::size_t>(i)], i % 4);
  }
}

TEST(DataLoaderTest, BatchImagesShapedNCHW) {
  SyntheticVision ds(tiny(8));
  DataLoader loader(ds, 4, 1);
  loader.start_epoch();
  const auto batch = loader.next();
  ASSERT_TRUE(batch);
  EXPECT_EQ(batch->images.shape(), tensor::Shape({4, 1, 8, 8}));
}

TEST(DataLoaderTest, BadBatchSizeThrows) {
  SyntheticVision ds(tiny());
  EXPECT_THROW(DataLoader(ds, 0, 1), std::invalid_argument);
}

TEST(MakeBatchTest, EmptyIndicesThrows) {
  SyntheticVision ds(tiny());
  EXPECT_THROW((void)make_batch(ds, {}), std::invalid_argument);
}

}  // namespace
}  // namespace ndsnn::data
