#include "data/synthetic.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ndsnn::data {
namespace {

SyntheticSpec tiny() {
  SyntheticSpec spec;
  spec.num_classes = 4;
  spec.channels = 3;
  spec.image_size = 8;
  spec.train_size = 40;
  return spec;
}

TEST(SyntheticSpecTest, Validation) {
  EXPECT_NO_THROW(tiny().validate());
  auto bad = tiny();
  bad.num_classes = 1;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = tiny();
  bad.max_jitter = 8;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = tiny();
  bad.label_noise = 1.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

TEST(SyntheticTest, SamplesDeterministic) {
  SyntheticVision a(tiny()), b(tiny());
  const Sample sa = a.get(7), sb = b.get(7);
  EXPECT_EQ(sa.label, sb.label);
  for (int64_t i = 0; i < sa.image.numel(); ++i) EXPECT_EQ(sa.image.at(i), sb.image.at(i));
}

TEST(SyntheticTest, DifferentIndicesDiffer) {
  SyntheticVision ds(tiny());
  const Sample a = ds.get(0), b = ds.get(4);  // same class (0 % 4 == 4 % 4)
  EXPECT_EQ(a.label, b.label);
  bool identical = true;
  for (int64_t i = 0; i < a.image.numel(); ++i) {
    if (a.image.at(i) != b.image.at(i)) {
      identical = false;
      break;
    }
  }
  EXPECT_FALSE(identical);
}

TEST(SyntheticTest, PixelsInUnitRange) {
  SyntheticVision ds(tiny());
  for (int64_t idx = 0; idx < 10; ++idx) {
    const Sample s = ds.get(idx);
    for (int64_t i = 0; i < s.image.numel(); ++i) {
      EXPECT_GE(s.image.at(i), 0.0F);
      EXPECT_LE(s.image.at(i), 1.0F);
    }
  }
}

TEST(SyntheticTest, LabelsBalancedRoundRobin) {
  SyntheticVision ds(tiny());
  std::vector<int> counts(4, 0);
  for (int64_t i = 0; i < ds.size(); ++i) ++counts[static_cast<std::size_t>(ds.get(i).label)];
  for (const int c : counts) EXPECT_EQ(c, 10);
}

TEST(SyntheticTest, SampleCloserToOwnPrototype) {
  // The defining learnability property: a sample correlates more with its
  // class prototype than with others.
  auto spec = tiny();
  spec.noise_std = 0.2F;
  spec.max_jitter = 0;
  SyntheticVision ds(spec);
  int correct = 0;
  const int trials = 20;
  for (int64_t idx = 0; idx < trials; ++idx) {
    const Sample s = ds.get(idx);
    double best = 1e18;
    int64_t best_class = -1;
    for (int64_t k = 0; k < 4; ++k) {
      const auto& proto = ds.prototype(k);
      double dist = 0.0;
      for (int64_t i = 0; i < proto.numel(); ++i) {
        const double d = s.image.at(i) - proto.at(i);
        dist += d * d;
      }
      if (dist < best) {
        best = dist;
        best_class = k;
      }
    }
    correct += best_class == s.label;
  }
  EXPECT_GE(correct, trials * 3 / 4);
}

TEST(SyntheticTest, LabelNoiseFlipsSomeLabels) {
  auto spec = tiny();
  spec.label_noise = 0.5;
  spec.train_size = 200;
  SyntheticVision ds(spec);
  int mismatches = 0;
  for (int64_t i = 0; i < ds.size(); ++i) mismatches += ds.get(i).label != i % 4;
  EXPECT_GT(mismatches, 30);   // ~ 0.5 * 3/4 * 200 = 75 expected
  EXPECT_LT(mismatches, 130);
}

TEST(SyntheticTest, SampleOffsetShiftsStream) {
  auto a_spec = tiny();
  auto b_spec = tiny();
  b_spec.sample_offset = 1000;
  SyntheticVision a(a_spec), b(b_spec);
  const Sample sa = a.get(0), sb = b.get(0);
  bool identical = true;
  for (int64_t i = 0; i < sa.image.numel(); ++i) {
    if (sa.image.at(i) != sb.image.at(i)) {
      identical = false;
      break;
    }
  }
  EXPECT_FALSE(identical);
}

TEST(SyntheticTest, OutOfRangeIndexThrows) {
  SyntheticVision ds(tiny());
  EXPECT_THROW((void)ds.get(-1), std::out_of_range);
  EXPECT_THROW((void)ds.get(40), std::out_of_range);
  EXPECT_THROW((void)ds.prototype(4), std::out_of_range);
}

TEST(SyntheticPresetsTest, MirrorPaperDatasets) {
  const auto c10 = synthetic_cifar10(1.0, 100);
  EXPECT_EQ(c10.num_classes, 10);
  EXPECT_EQ(c10.image_size, 32);
  const auto c100 = synthetic_cifar100(1.0, 100);
  EXPECT_EQ(c100.num_classes, 100);
  const auto tin = synthetic_tiny_imagenet(1.0, 100);
  EXPECT_EQ(tin.num_classes, 200);
  EXPECT_EQ(tin.image_size, 64);
}

TEST(SyntheticPresetsTest, ScalingKeepsDivisibilityBy4) {
  for (const double s : {0.2, 0.25, 0.4, 0.5, 0.7}) {
    EXPECT_EQ(synthetic_cifar10(s, 10).image_size % 4, 0) << s;
    EXPECT_EQ(synthetic_tiny_imagenet(s, 10).image_size % 4, 0) << s;
  }
}

TEST(SyntheticPresetsTest, ByNameDispatch) {
  EXPECT_EQ(synthetic_by_name("cifar100", 1.0, 10).num_classes, 100);
  EXPECT_THROW((void)synthetic_by_name("mnist", 1.0, 10), std::invalid_argument);
}

}  // namespace
}  // namespace ndsnn::data
