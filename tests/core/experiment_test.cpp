#include "core/experiment.hpp"

#include <gtest/gtest.h>

namespace ndsnn::core {
namespace {

ExperimentConfig tiny() {
  ExperimentConfig c;
  c.arch = "lenet5";
  c.dataset = "cifar10";
  c.method = "ndsnn";
  c.sparsity = 0.9;
  c.epochs = 2;
  c.train_samples = 48;
  c.test_samples = 24;
  c.batch_size = 16;
  c.model_scale = 0.5;
  c.data_scale = 0.25;
  c.timesteps = 2;
  return c;
}

TEST(ExperimentTest, BuildsAllComponents) {
  const Experiment exp = build_experiment(tiny());
  EXPECT_NE(exp.network, nullptr);
  EXPECT_NE(exp.train_set, nullptr);
  EXPECT_NE(exp.test_set, nullptr);
  EXPECT_NE(exp.method, nullptr);
  EXPECT_EQ(exp.train_set->size(), 48);
  EXPECT_EQ(exp.test_set->size(), 24);
}

TEST(ExperimentTest, TrainAndTestStreamsDisjoint) {
  const Experiment exp = build_experiment(tiny());
  // Same prototypes, different sample noise: images at index 0 differ.
  const auto a = exp.train_set->get(0);
  const auto b = exp.test_set->get(0);
  bool identical = true;
  for (int64_t i = 0; i < a.image.numel(); ++i) {
    if (a.image.at(i) != b.image.at(i)) {
      identical = false;
      break;
    }
  }
  EXPECT_FALSE(identical);
}

TEST(ExperimentTest, DefaultInitialSparsityIsHalfOfTarget) {
  auto c = tiny();
  c.sparsity = 0.95;
  EXPECT_NEAR(c.theta_initial(), 0.475, 1e-12);
  c.initial_sparsity = 0.5;
  EXPECT_DOUBLE_EQ(c.theta_initial(), 0.5);
}

TEST(ExperimentTest, AllMethodNamesConstructible) {
  for (const char* m : {"ndsnn", "ndsnn_random_growth", "ndsnn_linear_ramp", "set",
                        "rigl", "lth", "admm", "dense"}) {
    auto c = tiny();
    c.method = m;
    EXPECT_NO_THROW((void)make_method(c, 10)) << m;
  }
  auto c = tiny();
  c.method = "magic";
  EXPECT_THROW((void)make_method(c, 10), std::invalid_argument);
}

TEST(ExperimentTest, RunProducesSaneResult) {
  const TrainResult r = run_experiment(tiny());
  ASSERT_EQ(r.epochs.size(), 2U);
  EXPECT_GE(r.final_test_acc, 0.0);
  EXPECT_LE(r.final_test_acc, 100.0);
  EXPECT_GT(r.final_sparsity, 0.0);
}

TEST(ExperimentTest, VggResolutionRoundedTo32) {
  auto c = tiny();
  c.arch = "vgg16";
  c.model_scale = 0.05;
  c.data_scale = 0.3;  // would give ~12px; must round to 32 for 5 pools
  const Experiment exp = build_experiment(c);
  EXPECT_EQ(exp.train_set->image_size(), 32);
}

TEST(ExperimentTest, UnknownDatasetThrows) {
  auto c = tiny();
  c.dataset = "imagenet21k";
  EXPECT_THROW((void)build_experiment(c), std::invalid_argument);
}

}  // namespace
}  // namespace ndsnn::core
