#include <gtest/gtest.h>

#include <cmath>

#include "core/gmp_method.hpp"
#include "core/snip_method.hpp"
#include "nn/linear.hpp"
#include "nn/sequential.hpp"
#include "tensor/random.hpp"

namespace ndsnn::core {
namespace {

using tensor::Rng;

struct Harness {
  Rng rng{31};
  nn::Sequential seq;
  Harness() {
    seq.emplace<nn::Linear>(20, 30, rng);
    seq.emplace<nn::Linear>(30, 10, rng);
  }
  std::vector<nn::ParamRef> params() { return seq.params(); }
};

TEST(GmpConfigTest, Validation) {
  GmpConfig c;
  EXPECT_NO_THROW(c.validate());
  c.final_sparsity = 1.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = GmpConfig{};
  c.t_end = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(GmpMethodTest, StartsDenseEndsAtTarget) {
  Harness h;
  GmpConfig c;
  c.final_sparsity = 0.8;
  c.delta_t = 5;
  c.t_end = 100;
  GmpMethod method(c);
  method.initialize(h.params(), h.rng);
  EXPECT_DOUBLE_EQ(method.overall_sparsity(), 0.0);
  for (int64_t t = 0; t <= 110; ++t) {
    method.before_step(t);
    method.after_step(t);
  }
  EXPECT_NEAR(method.overall_sparsity(), 0.8, 0.02);
}

TEST(GmpMethodTest, SparsityMonotone) {
  Harness h;
  GmpConfig c;
  c.final_sparsity = 0.9;
  c.delta_t = 3;
  c.t_end = 60;
  GmpMethod method(c);
  method.initialize(h.params(), h.rng);
  double prev = 0.0;
  for (int64_t t = 0; t <= 70; ++t) {
    method.before_step(t);
    method.after_step(t);
    EXPECT_GE(method.overall_sparsity(), prev - 1e-12);
    prev = method.overall_sparsity();
  }
}

TEST(GmpMethodTest, NeverRegrows) {
  Harness h;
  GmpConfig c;
  c.final_sparsity = 0.7;
  c.delta_t = 2;
  c.t_end = 40;
  GmpMethod method(c);
  method.initialize(h.params(), h.rng);
  // Once a weight is zero it must stay zero.
  std::vector<char> ever_zero(static_cast<std::size_t>(h.params()[0].value->numel()), 0);
  for (int64_t t = 0; t <= 50; ++t) {
    method.before_step(t);
    method.after_step(t);
    const auto& w = *h.params()[0].value;
    for (int64_t i = 0; i < w.numel(); ++i) {
      if (ever_zero[static_cast<std::size_t>(i)]) {
        EXPECT_EQ(w.at(i), 0.0F) << "regrown at " << i << " t=" << t;
      }
      if (w.at(i) == 0.0F) ever_zero[static_cast<std::size_t>(i)] = 1;
    }
  }
}

TEST(SnipConfigTest, Validation) {
  SnipConfig c;
  EXPECT_NO_THROW(c.validate());
  c.sparsity = 0.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(SnipMethodTest, PrunesOnFirstStepByGradTimesWeight) {
  Harness h;
  SnipConfig c;
  c.sparsity = 0.5;
  SnipMethod method(c);
  method.initialize(h.params(), h.rng);
  EXPECT_FALSE(method.mask_frozen());

  // Craft saliencies: make one specific weight's |g*w| enormous.
  auto params = h.params();
  for (auto& p : params) p.grad->fill(0.01F);
  params[0].grad->at(7) = 1000.0F;
  const float kept_weight = params[0].value->at(7);
  method.before_step(0);
  EXPECT_TRUE(method.mask_frozen());
  EXPECT_NEAR(method.overall_sparsity(), 0.5, 0.02);
  EXPECT_EQ(params[0].value->at(7), kept_weight);  // top saliency survives
  method.after_step(0);
}

TEST(SnipMethodTest, MaskStaticAfterPrune) {
  Harness h;
  SnipConfig c;
  c.sparsity = 0.6;
  SnipMethod method(c);
  method.initialize(h.params(), h.rng);
  auto params = h.params();
  for (auto& p : params) p.grad->fill(0.5F);
  method.before_step(0);
  const auto sp0 = method.layer_sparsities();
  for (int64_t t = 1; t < 20; ++t) {
    for (auto& p : params) p.grad->fill(0.1F * static_cast<float>(t));
    method.before_step(t);
    method.after_step(t);
  }
  const auto sp1 = method.layer_sparsities();
  for (std::size_t i = 0; i < sp0.size(); ++i) EXPECT_DOUBLE_EQ(sp0[i], sp1[i]);
}

TEST(SnipMethodTest, PerLayerModeRespectsQuotaPerLayer) {
  Harness h;
  SnipConfig c;
  c.sparsity = 0.5;
  c.per_layer = true;
  SnipMethod method(c);
  method.initialize(h.params(), h.rng);
  auto params = h.params();
  for (auto& p : params) p.grad->fill(0.5F);
  method.before_step(0);
  for (const double s : method.layer_sparsities()) EXPECT_NEAR(s, 0.5, 0.02);
}

}  // namespace
}  // namespace ndsnn::core
