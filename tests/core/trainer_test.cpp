#include "core/trainer.hpp"

#include <gtest/gtest.h>

#include "core/dense_method.hpp"
#include "core/ndsnn_method.hpp"
#include "data/synthetic.hpp"
#include "nn/models/zoo.hpp"

namespace ndsnn::core {
namespace {

data::SyntheticSpec tiny_data(int64_t samples = 64) {
  data::SyntheticSpec spec;
  spec.num_classes = 4;
  spec.channels = 1;
  spec.image_size = 8;
  spec.train_size = samples;
  spec.noise_std = 0.15F;
  spec.max_jitter = 1;
  return spec;
}

std::unique_ptr<nn::SpikingNetwork> tiny_model() {
  nn::ModelSpec spec;
  spec.num_classes = 4;
  spec.in_channels = 1;
  spec.image_size = 8;
  spec.timesteps = 2;
  spec.width_scale = 1.0;
  return nn::make_lenet5(spec);
}

TrainerConfig fast_config(int64_t epochs = 2) {
  TrainerConfig c;
  c.epochs = epochs;
  c.batch_size = 16;
  c.learning_rate = 0.05;
  c.augment = false;
  return c;
}

TEST(TrainerConfigTest, Validation) {
  EXPECT_NO_THROW(fast_config().validate());
  auto c = fast_config();
  c.epochs = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(TrainerTest, ProducesOneStatsPerEpoch) {
  auto model = tiny_model();
  DenseMethod method;
  data::SyntheticVision train(tiny_data()), test(tiny_data(32));
  Trainer trainer(*model, method, train, test, fast_config(3));
  const TrainResult r = trainer.run();
  ASSERT_EQ(r.epochs.size(), 3U);
  EXPECT_EQ(r.final_test_acc, r.epochs.back().test_acc);
  EXPECT_GE(r.best_test_acc, r.final_test_acc);
  EXPECT_GT(r.wall_seconds, 0.0);
}

TEST(TrainerTest, LossDecreasesOnLearnableData) {
  auto model = tiny_model();
  DenseMethod method;
  data::SyntheticVision train(tiny_data(128)), test(tiny_data(32));
  Trainer trainer(*model, method, train, test, fast_config(6));
  const TrainResult r = trainer.run();
  EXPECT_LT(r.epochs.back().train_loss, r.epochs.front().train_loss);
}

TEST(TrainerTest, LearnsAboveChance) {
  auto model = tiny_model();
  DenseMethod method;
  data::SyntheticVision train(tiny_data(256)), test(tiny_data(64));
  Trainer trainer(*model, method, train, test, fast_config(8));
  const TrainResult r = trainer.run();
  // 4 classes -> chance is 25%.
  EXPECT_GT(r.best_test_acc, 40.0);
}

TEST(TrainerTest, SpikeRatesTracked) {
  auto model = tiny_model();
  DenseMethod method;
  data::SyntheticVision train(tiny_data()), test(tiny_data(32));
  Trainer trainer(*model, method, train, test, fast_config(2));
  const TrainResult r = trainer.run();
  for (const auto& e : r.epochs) {
    EXPECT_GE(e.spike_rate, 0.0);
    EXPECT_LE(e.spike_rate, 1.0);
  }
}

TEST(TrainerTest, NdsnnSparsityRampVisibleInTrace) {
  auto model = tiny_model();
  NdsnnConfig c;
  c.initial_sparsity = 0.3;
  c.final_sparsity = 0.8;
  c.delta_t = 2;
  c.t_end = 24;
  NdsnnMethod method(c);
  data::SyntheticVision train(tiny_data(128)), test(tiny_data(32));
  Trainer trainer(*model, method, train, test, fast_config(6));
  const TrainResult r = trainer.run();
  EXPECT_LT(r.epochs.front().sparsity, r.epochs.back().sparsity);
  EXPECT_NEAR(r.epochs.back().sparsity, 0.8, 0.05);
  // Sparse weights really are zero in the model.
  int64_t zeros = 0, total = 0;
  for (const auto& p : model->params()) {
    if (!p.prunable) continue;
    zeros += p.value->count_zeros();
    total += p.value->numel();
  }
  EXPECT_NEAR(static_cast<double>(zeros) / static_cast<double>(total), 0.8, 0.05);
}

TEST(TrainerTest, DeterministicGivenSeed) {
  const auto run_once = [] {
    auto model = tiny_model();
    DenseMethod method;
    data::SyntheticVision train(tiny_data(64)), test(tiny_data(32));
    Trainer trainer(*model, method, train, test, fast_config(2));
    return trainer.run();
  };
  const TrainResult a = run_once();
  const TrainResult b = run_once();
  ASSERT_EQ(a.epochs.size(), b.epochs.size());
  for (std::size_t i = 0; i < a.epochs.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.epochs[i].train_loss, b.epochs[i].train_loss);
    EXPECT_DOUBLE_EQ(a.epochs[i].test_acc, b.epochs[i].test_acc);
  }
}

}  // namespace
}  // namespace ndsnn::core
