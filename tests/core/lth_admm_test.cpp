#include <gtest/gtest.h>

#include <cmath>

#include "core/admm_method.hpp"
#include "core/lth_method.hpp"
#include "nn/linear.hpp"
#include "nn/sequential.hpp"
#include "tensor/random.hpp"

namespace ndsnn::core {
namespace {

using tensor::Rng;

struct Harness {
  Rng rng{23};
  nn::Sequential seq;
  Harness() {
    seq.emplace<nn::Linear>(30, 40, rng);
    seq.emplace<nn::Linear>(40, 10, rng);
  }
  std::vector<nn::ParamRef> params() { return seq.params(); }
};

TEST(LthConfigTest, SparsityLadderIsGeometric) {
  LthConfig c;
  c.final_sparsity = 0.9;
  c.rounds = 2;
  // keep after round1 = 0.1^(1/2) ~ 0.316 -> sparsity ~ 0.684.
  EXPECT_NEAR(c.sparsity_after_round(1), 1.0 - std::sqrt(0.1), 1e-9);
  EXPECT_DOUBLE_EQ(c.sparsity_after_round(2), 0.9);
  EXPECT_DOUBLE_EQ(c.sparsity_after_round(0), 0.0);
}

TEST(LthMethodTest, StartsDense) {
  Harness h;
  LthConfig c;
  LthMethod method(c);
  method.initialize(h.params(), h.rng);
  EXPECT_DOUBLE_EQ(method.overall_sparsity(), 0.0);
}

TEST(LthMethodTest, PrunesAtRoundBoundaries) {
  Harness h;
  LthConfig c;
  c.final_sparsity = 0.9;
  c.rounds = 2;
  c.epochs_per_round = 3;
  LthMethod method(c);
  method.initialize(h.params(), h.rng);

  method.on_epoch_begin(0);
  EXPECT_DOUBLE_EQ(method.overall_sparsity(), 0.0);
  method.on_epoch_begin(3);
  EXPECT_NEAR(method.overall_sparsity(), c.sparsity_after_round(1), 0.01);
  method.on_epoch_begin(6);
  EXPECT_NEAR(method.overall_sparsity(), 0.9, 0.01);
  // Later epochs don't prune further.
  method.on_epoch_begin(9);
  EXPECT_NEAR(method.overall_sparsity(), 0.9, 0.01);
}

TEST(LthMethodTest, RewindRestoresInitialValues) {
  Harness h;
  LthConfig c;
  c.final_sparsity = 0.5;
  c.rounds = 1;
  c.epochs_per_round = 1;
  LthMethod method(c);
  method.initialize(h.params(), h.rng);

  // Record initial, then perturb every weight.
  auto params = h.params();
  const tensor::Tensor init0 = *params[0].value;
  for (auto& p : params) {
    if (!p.prunable) continue;
    for (int64_t i = 0; i < p.value->numel(); ++i) p.value->at(i) += 0.5F;
  }
  method.on_epoch_begin(1);  // prune + rewind
  // Survivors must equal their INITIAL values (not perturbed ones).
  const auto& w = *params[0].value;
  for (int64_t i = 0; i < w.numel(); ++i) {
    if (w.at(i) != 0.0F) {
      EXPECT_FLOAT_EQ(w.at(i), init0.at(i));
    }
  }
}

TEST(LthMethodTest, PrunesSmallestGlobalMagnitudes) {
  Harness h;
  // Layer0 = 1200 tiny weights, layer1 = 400 huge weights (1600 total).
  // Pruning to 75% keeps 400: exactly the huge layer survives.
  LthConfig c;
  c.final_sparsity = 0.75;
  c.rounds = 1;
  c.epochs_per_round = 1;
  c.rewind = false;
  LthMethod method(c);
  method.initialize(h.params(), h.rng);

  auto params = h.params();
  params[0].value->fill(0.001F);
  params[2].value->fill(1.0F);  // params[1]/[3] are biases
  method.on_epoch_begin(1);
  const auto sp = method.layer_sparsities();
  EXPECT_GT(sp[0], 0.99);
  EXPECT_LT(sp[1], 0.01);
}

TEST(AdmmConfigTest, Validation) {
  AdmmConfig c;
  EXPECT_NO_THROW(c.validate());
  c.rho = 0.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = AdmmConfig{};
  c.target_sparsity = 1.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(AdmmMethodTest, PenaltyPullsWeightsTowardProjection) {
  Harness h;
  AdmmConfig c;
  c.target_sparsity = 0.5;
  c.rho = 0.1;
  AdmmMethod method(c);
  method.initialize(h.params(), h.rng);

  auto params = h.params();
  for (auto& p : params) p.grad->zero();
  method.before_step(0);
  // Gradient is now rho*(W - Z + U); small-magnitude weights (projected
  // to zero in Z) must receive a pull of sign(w)*rho*|w| roughly.
  double penalty_norm = 0.0;
  for (int64_t i = 0; i < params[0].grad->numel(); ++i) {
    penalty_norm += std::abs(params[0].grad->at(i));
  }
  EXPECT_GT(penalty_norm, 0.0);
}

TEST(AdmmMethodTest, HardPruneReachesTarget) {
  Harness h;
  AdmmConfig c;
  c.target_sparsity = 0.6;
  c.admm_epochs = 2;
  AdmmMethod method(c);
  method.initialize(h.params(), h.rng);
  EXPECT_FALSE(method.hard_pruned());
  method.on_epoch_begin(0);
  method.on_epoch_begin(1);
  EXPECT_FALSE(method.hard_pruned());
  method.on_epoch_begin(2);
  EXPECT_TRUE(method.hard_pruned());
  EXPECT_NEAR(method.overall_sparsity(), 0.6, 0.01);
}

TEST(AdmmMethodTest, AfterHardPruneGradsMasked) {
  Harness h;
  AdmmConfig c;
  c.target_sparsity = 0.8;
  c.admm_epochs = 1;
  AdmmMethod method(c);
  method.initialize(h.params(), h.rng);
  method.on_epoch_begin(1);  // hard prune
  ASSERT_TRUE(method.hard_pruned());

  auto params = h.params();
  for (auto& p : params) p.grad->fill(1.0F);
  method.before_step(10);
  int64_t zeros = 0, total = 0;
  for (auto& p : params) {
    if (!p.prunable) continue;
    zeros += p.grad->count_zeros();
    total += p.grad->numel();
  }
  EXPECT_NEAR(static_cast<double>(zeros) / static_cast<double>(total), 0.8, 0.02);
}

TEST(AdmmMethodTest, ProjectionKeepsTopMagnitudes) {
  Harness h;
  AdmmConfig c;
  c.target_sparsity = 0.5;
  c.admm_epochs = 1;
  AdmmMethod method(c);
  method.initialize(h.params(), h.rng);
  method.on_epoch_begin(1);
  // After hard prune at 50%, survivors must have larger magnitude than the
  // per-layer median of the original weights would suggest: check that the
  // smallest surviving |w| >= largest pruned |w| is approximately true by
  // verifying the count matched and no tiny weights survive while large
  // ones die within the same layer.
  auto params = h.params();
  const auto& w = *params[0].value;
  float min_surviving = 1e9F, max_anything = 0.0F;
  for (int64_t i = 0; i < w.numel(); ++i) {
    const float m = std::fabs(w.at(i));
    if (m > 0.0F) min_surviving = std::min(min_surviving, m);
    max_anything = std::max(max_anything, m);
  }
  EXPECT_LE(min_surviving, max_anything);
  EXPECT_NEAR(method.layer_sparsities()[0], 0.5, 0.02);
}

}  // namespace
}  // namespace ndsnn::core
