#include "core/cost_model.hpp"

#include <gtest/gtest.h>

namespace ndsnn::core {
namespace {

TrainResult make_run(std::vector<double> spike_rates, std::vector<double> sparsities) {
  TrainResult r;
  for (std::size_t i = 0; i < spike_rates.size(); ++i) {
    EpochStats e;
    e.spike_rate = spike_rates[i];
    e.sparsity = sparsities[i];
    r.epochs.push_back(e);
  }
  return r;
}

TEST(CostModelTest, DenseVsItselfIs100Percent) {
  const auto dense = make_run({0.2, 0.2, 0.2}, {0.0, 0.0, 0.0});
  EXPECT_NEAR(normalized_training_cost_pct(dense, dense), 100.0, 1e-9);
}

TEST(CostModelTest, SparsityScalesCostLinearly) {
  const auto dense = make_run({0.2, 0.2}, {0.0, 0.0});
  const auto sparse = make_run({0.2, 0.2}, {0.9, 0.9});
  EXPECT_NEAR(normalized_training_cost_pct(sparse, dense), 10.0, 1e-9);
}

TEST(CostModelTest, LowerSpikeRateLowersCost) {
  const auto dense = make_run({0.4, 0.4}, {0.0, 0.0});
  const auto sparse = make_run({0.2, 0.2}, {0.5, 0.5});
  // (0.2 * 0.5) / 0.4 = 0.25 -> 25%.
  EXPECT_NEAR(normalized_training_cost_pct(sparse, dense), 25.0, 1e-9);
}

TEST(CostModelTest, PerEpochTraceMatchesFormula) {
  const auto dense = make_run({0.5, 0.25}, {0.0, 0.0});
  const auto sparse = make_run({0.25, 0.25}, {0.8, 0.9});
  const auto cost = relative_cost_per_epoch(sparse, dense);
  ASSERT_EQ(cost.size(), 2U);
  EXPECT_NEAR(cost[0], 0.25 * 0.2 / 0.5, 1e-12);
  EXPECT_NEAR(cost[1], 0.25 * 0.1 / 0.25, 1e-12);
}

TEST(CostModelTest, EpochMismatchThrows) {
  const auto a = make_run({0.2}, {0.0});
  const auto b = make_run({0.2, 0.2}, {0.0, 0.0});
  EXPECT_THROW((void)relative_cost_per_epoch(a, b), std::invalid_argument);
}

TEST(CostModelTest, MeanDensity) {
  const auto run = make_run({0.1, 0.1}, {0.8, 0.6});
  EXPECT_NEAR(mean_density(run), 0.3, 1e-12);
}

TEST(CostModelTest, ZeroDenseRateGuarded) {
  const auto dense = make_run({0.0}, {0.0});
  const auto sparse = make_run({0.1}, {0.5});
  EXPECT_NO_THROW((void)normalized_training_cost_pct(sparse, dense));
}

TEST(CostModelTest, NdsnnScheduleCheaperThanConstantDense) {
  // LTH-style: dense spike rate all epochs. NDSNN: high sparsity all
  // epochs. NDSNN must be strictly cheaper.
  const auto dense = make_run({0.3, 0.3, 0.3, 0.3}, {0.0, 0.0, 0.0, 0.0});
  const auto lth = make_run({0.3, 0.3, 0.3, 0.3}, {0.0, 0.3, 0.6, 0.9});
  const auto ndsnn = make_run({0.3, 0.3, 0.3, 0.3}, {0.8, 0.85, 0.88, 0.9});
  const double lth_cost = normalized_training_cost_pct(lth, dense);
  const double ndsnn_cost = normalized_training_cost_pct(ndsnn, dense);
  EXPECT_LT(ndsnn_cost, lth_cost);
  EXPECT_LT(lth_cost, 100.0);
}

}  // namespace
}  // namespace ndsnn::core
