#include "core/ndsnn_method.hpp"

#include <gtest/gtest.h>

#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/sequential.hpp"
#include "tensor/random.hpp"

namespace ndsnn::core {
namespace {

using tensor::Rng;

struct Harness {
  Rng rng{13};
  nn::Sequential seq;
  Harness() {
    seq.emplace<nn::Conv2d>(3, 8, 3, 1, 1, rng);
    seq.emplace<nn::Conv2d>(8, 16, 3, 1, 1, rng);
    seq.emplace<nn::Linear>(64, 10, rng);
  }
  std::vector<nn::ParamRef> params() { return seq.params(); }
  void fill_grads(Rng& grng) {
    for (auto& p : params()) p.grad->fill_uniform(grng, -1.0F, 1.0F);
  }
};

NdsnnConfig config(double ti = 0.5, double tf = 0.9, int64_t dt = 5, int64_t tend = 100) {
  NdsnnConfig c;
  c.initial_sparsity = ti;
  c.final_sparsity = tf;
  c.delta_t = dt;
  c.t_end = tend;
  return c;
}

TEST(NdsnnConfigTest, Validation) {
  EXPECT_NO_THROW(config().validate());
  EXPECT_THROW(config(0.9, 0.5).validate(), std::invalid_argument);
  EXPECT_THROW(config(0.5, 1.0).validate(), std::invalid_argument);
  auto c = config();
  c.min_death_rate = 0.9;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(NdsnnMethodTest, StartsAtInitialSparsity) {
  Harness h;
  NdsnnMethod method(config(0.5, 0.95));
  method.initialize(h.params(), h.rng);
  EXPECT_NEAR(method.overall_sparsity(), 0.5, 0.03);
}

TEST(NdsnnMethodTest, NonzerosMonotonicallyDecrease) {
  // The core NDSNN invariant (Fig. 2): every drop-and-grow round removes
  // at least as many connections as it adds.
  Harness h;
  NdsnnMethod method(config(0.5, 0.9, 5, 100));
  method.initialize(h.params(), h.rng);
  Rng grng(77);

  double prev_sparsity = method.overall_sparsity();
  for (int64_t t = 0; t < 120; ++t) {
    h.fill_grads(grng);
    method.before_step(t);
    method.after_step(t);
    const double cur = method.overall_sparsity();
    EXPECT_GE(cur, prev_sparsity - 1e-9) << "iteration " << t;
    prev_sparsity = cur;
  }
}

TEST(NdsnnMethodTest, ReachesFinalSparsity) {
  Harness h;
  NdsnnMethod method(config(0.5, 0.9, 5, 100));
  method.initialize(h.params(), h.rng);
  Rng grng(78);
  for (int64_t t = 0; t < 120; ++t) {
    h.fill_grads(grng);
    method.before_step(t);
    method.after_step(t);
  }
  EXPECT_NEAR(method.overall_sparsity(), 0.9, 0.02);
}

TEST(NdsnnMethodTest, UpdateStepPredicate) {
  Harness h;
  NdsnnMethod method(config(0.5, 0.9, 10, 50));
  method.initialize(h.params(), h.rng);
  EXPECT_FALSE(method.is_update_step(0));
  EXPECT_TRUE(method.is_update_step(10));
  EXPECT_FALSE(method.is_update_step(11));
  EXPECT_TRUE(method.is_update_step(40));
  EXPECT_FALSE(method.is_update_step(50));  // t_end exclusive
  EXPECT_FALSE(method.is_update_step(60));
}

TEST(NdsnnMethodTest, DeathRateFollowsEq5) {
  Harness h;
  auto c = config(0.5, 0.9, 10, 100);
  c.initial_death_rate = 0.4;
  c.min_death_rate = 0.1;
  NdsnnMethod method(c);
  method.initialize(h.params(), h.rng);
  EXPECT_NEAR(method.death_rate(0), 0.4, 1e-12);
  EXPECT_NEAR(method.death_rate(50), 0.25, 1e-12);
  EXPECT_NEAR(method.death_rate(100), 0.1, 1e-12);
}

TEST(NdsnnMethodTest, TargetSparsityPerLayerRampsUp) {
  Harness h;
  NdsnnMethod method(config(0.5, 0.95, 5, 100));
  method.initialize(h.params(), h.rng);
  for (std::size_t l = 0; l < 3; ++l) {
    EXPECT_LE(method.target_sparsity(l, 0), method.target_sparsity(l, 50) + 1e-12);
    EXPECT_LE(method.target_sparsity(l, 50), method.target_sparsity(l, 100) + 1e-12);
  }
}

TEST(NdsnnMethodTest, GrownWeightsStartAtZero) {
  Harness h;
  auto c = config(0.5, 0.6, 1, 50);
  NdsnnMethod method(c);
  method.initialize(h.params(), h.rng);
  // Make all active weights large so drops/grows are clean.
  for (auto& p : h.params()) {
    if (!p.prunable) continue;
    for (int64_t i = 0; i < p.value->numel(); ++i) {
      if (p.value->at(i) != 0.0F) p.value->at(i) = 1.0F + 0.001F * static_cast<float>(i % 50);
    }
  }
  Rng grng(79);
  h.fill_grads(grng);
  method.before_step(1);
  method.after_step(1);
  // All weights are either 0 (masked or fresh-grown) or > 1 (survivors).
  for (auto& p : h.params()) {
    if (!p.prunable) continue;
    for (int64_t i = 0; i < p.value->numel(); ++i) {
      const float w = p.value->at(i);
      EXPECT_TRUE(w == 0.0F || w > 1.0F) << "weight " << w;
    }
  }
}

TEST(NdsnnMethodTest, RandomGrowthAblationWorks) {
  Harness h;
  auto c = config(0.5, 0.9, 5, 100);
  c.gradient_growth = false;
  NdsnnMethod method(c);
  method.initialize(h.params(), h.rng);
  Rng grng(80);
  for (int64_t t = 0; t < 110; ++t) {
    h.fill_grads(grng);
    method.before_step(t);
    method.after_step(t);
  }
  EXPECT_NEAR(method.overall_sparsity(), 0.9, 0.02);
}

TEST(NdsnnMethodTest, ErkVsUniformDistributionsDiffer) {
  Harness h1, h2;
  auto ce = config(0.6, 0.9);
  auto cu = config(0.6, 0.9);
  cu.use_erk = false;
  NdsnnMethod erk(ce), uni(cu);
  erk.initialize(h1.params(), h1.rng);
  uni.initialize(h2.params(), h2.rng);
  const auto se = erk.layer_sparsities();
  const auto su = uni.layer_sparsities();
  // Uniform: all (nearly; count rounding) equal. ERK: layers differ.
  EXPECT_NEAR(su[0], su[1], 0.01);
  EXPECT_GT(std::abs(se[0] - se[2]), 0.01);
}

TEST(NdsnnMethodTest, DoubleInitializeThrows) {
  Harness h;
  NdsnnMethod method(config());
  method.initialize(h.params(), h.rng);
  EXPECT_THROW(method.initialize(h.params(), h.rng), std::logic_error);
}

struct SweepCase {
  double ti, tf;
};

class NdsnnSparsitySweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(NdsnnSparsitySweep, ConvergesForAllPaperSettings) {
  const auto pc = GetParam();
  Harness h;
  NdsnnMethod method(config(pc.ti, pc.tf, 5, 150));
  method.initialize(h.params(), h.rng);
  Rng grng(81);
  for (int64_t t = 0; t < 160; ++t) {
    h.fill_grads(grng);
    method.before_step(t);
    method.after_step(t);
  }
  EXPECT_NEAR(method.overall_sparsity(), pc.tf, 0.025);
}

INSTANTIATE_TEST_SUITE_P(PaperTable3, NdsnnSparsitySweep,
                         ::testing::Values(SweepCase{0.5, 0.95}, SweepCase{0.6, 0.95},
                                           SweepCase{0.7, 0.95}, SweepCase{0.8, 0.95},
                                           SweepCase{0.9, 0.95}, SweepCase{0.5, 0.98},
                                           SweepCase{0.8, 0.98}, SweepCase{0.8, 0.99}));

}  // namespace
}  // namespace ndsnn::core
