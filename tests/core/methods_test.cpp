// Tests shared across SET / RigL / Dense methods using a tiny two-layer
// model harness.
#include <gtest/gtest.h>

#include "core/dense_method.hpp"
#include "core/rigl_method.hpp"
#include "core/set_method.hpp"
#include "nn/linear.hpp"
#include "nn/sequential.hpp"
#include "tensor/random.hpp"

namespace ndsnn::core {
namespace {

using tensor::Rng;
using tensor::Shape;
using tensor::Tensor;

struct Harness {
  Rng rng{11};
  nn::Sequential seq;
  Harness() {
    seq.emplace<nn::Linear>(20, 30, rng);
    seq.emplace<nn::Linear>(30, 10, rng);
  }
  std::vector<nn::ParamRef> params() { return seq.params(); }
  void fill_grads(float v) {
    for (auto& p : params()) p.grad->fill(v);
  }
};

TEST(DenseMethodTest, ReportsZeroSparsity) {
  Harness h;
  DenseMethod method;
  method.initialize(h.params(), h.rng);
  EXPECT_DOUBLE_EQ(method.overall_sparsity(), 0.0);
  EXPECT_EQ(method.layer_sparsities().size(), 2U);
  method.before_step(0);
  method.after_step(0);  // no-ops must not throw
}

TEST(SetMethodTest, InitialSparsityMatchesTarget) {
  Harness h;
  SetConfig c;
  c.sparsity = 0.8;
  SetMethod method(c);
  method.initialize(h.params(), h.rng);
  EXPECT_NEAR(method.overall_sparsity(), 0.8, 0.02);
}

TEST(SetMethodTest, SparsityConservedAcrossUpdates) {
  Harness h;
  SetConfig c;
  c.sparsity = 0.7;
  c.delta_t = 5;
  c.t_end = 100;
  SetMethod method(c);
  method.initialize(h.params(), h.rng);
  const double before = method.overall_sparsity();
  for (int64_t t = 0; t < 50; ++t) {
    h.fill_grads(0.1F);
    method.before_step(t);
    method.after_step(t);
  }
  EXPECT_NEAR(method.overall_sparsity(), before, 1e-9);
}

TEST(SetMethodTest, MasksGradientsOfInactiveWeights) {
  Harness h;
  SetConfig c;
  c.sparsity = 0.9;
  SetMethod method(c);
  method.initialize(h.params(), h.rng);
  h.fill_grads(1.0F);
  method.before_step(1);
  // Prunable grads must now be ~90% zero.
  int64_t zeros = 0, total = 0;
  for (auto& p : h.params()) {
    if (!p.prunable) continue;
    zeros += p.grad->count_zeros();
    total += p.grad->numel();
  }
  EXPECT_NEAR(static_cast<double>(zeros) / static_cast<double>(total), 0.9, 0.03);
}

TEST(SetMethodTest, TopologyActuallyChanges) {
  Harness h;
  SetConfig c;
  c.sparsity = 0.5;
  c.delta_t = 1;
  c.t_end = 100;
  SetMethod method(c);
  method.initialize(h.params(), h.rng);
  const auto before = method.layer_sparsities();
  // Give weights distinct magnitudes so drop is meaningful.
  for (auto& p : h.params()) {
    if (!p.prunable) continue;
    for (int64_t i = 0; i < p.value->numel(); ++i) {
      if (p.value->at(i) != 0.0F) p.value->at(i) = 0.001F * static_cast<float>(i % 97);
    }
  }
  Tensor w_before = *h.params()[0].value;
  h.fill_grads(0.1F);
  method.before_step(1);
  method.after_step(1);
  // Same sparsity, different support.
  EXPECT_NEAR(method.layer_sparsities()[0], before[0], 1e-9);
  int64_t moved = 0;
  const Tensor& w_after = *h.params()[0].value;
  for (int64_t i = 0; i < w_after.numel(); ++i) {
    if ((w_before.at(i) == 0.0F) != (w_after.at(i) == 0.0F)) ++moved;
  }
  EXPECT_GT(moved, 0);
}

TEST(RiglMethodTest, GrowsHighestGradientConnections) {
  Harness h;
  RiglConfig c;
  c.sparsity = 0.5;
  c.delta_t = 1;
  c.t_end = 10;
  c.initial_death_rate = 0.3;
  RiglMethod method(c);
  method.initialize(h.params(), h.rng);

  // Mark one inactive index with a huge gradient; it must be grown.
  auto params = h.params();
  auto& w0 = *params[0].value;
  auto& g0 = *params[0].grad;
  int64_t target = -1;
  for (int64_t i = 0; i < w0.numel(); ++i) {
    if (w0.at(i) == 0.0F) {
      target = i;
      break;
    }
  }
  ASSERT_GE(target, 0);
  h.fill_grads(0.001F);
  g0.at(target) = 100.0F;

  method.before_step(1);  // snapshot taken here
  method.after_step(1);
  EXPECT_NE(w0.at(target), -1.0F);  // exists
  // Weight was grown (mask active): its gradient is no longer masked.
  g0.fill(1.0F);
  method.before_step(2);
  EXPECT_EQ(g0.at(target), 1.0F);
}

TEST(RiglMethodTest, SparsityConserved) {
  Harness h;
  RiglConfig c;
  c.sparsity = 0.8;
  c.delta_t = 3;
  c.t_end = 60;
  RiglMethod method(c);
  method.initialize(h.params(), h.rng);
  const double before = method.overall_sparsity();
  for (int64_t t = 0; t < 30; ++t) {
    h.fill_grads(0.01F * static_cast<float>(t + 1));
    method.before_step(t);
    method.after_step(t);
  }
  EXPECT_NEAR(method.overall_sparsity(), before, 1e-9);
}

TEST(MethodTest, UninitializedUseThrows) {
  SetConfig sc;
  SetMethod set(sc);
  EXPECT_THROW(set.after_step(0), std::logic_error);
  RiglConfig rc;
  RiglMethod rigl(rc);
  EXPECT_THROW(rigl.before_step(0), std::logic_error);
}

TEST(MethodTest, ConfigValidation) {
  SetConfig sc;
  sc.sparsity = 1.0;
  EXPECT_THROW(SetMethod{sc}, std::invalid_argument);
  RiglConfig rc;
  rc.delta_t = 0;
  EXPECT_THROW(RiglMethod{rc}, std::invalid_argument);
}

}  // namespace
}  // namespace ndsnn::core
