#include "core/flops_model.hpp"

#include <gtest/gtest.h>

#include "nn/models/zoo.hpp"

namespace ndsnn::core {
namespace {

nn::ModelSpec spec(int64_t size = 16, double width = 0.5) {
  nn::ModelSpec s;
  s.num_classes = 10;
  s.image_size = size;
  s.timesteps = 2;
  s.width_scale = width;
  return s;
}

TEST(FlopsModelTest, LenetLayerInventory) {
  auto net = nn::make_lenet5(spec());
  FlopsModel model(*net, 3, 16);
  // 2 convs + 3 linears = 5 prunable layers.
  EXPECT_EQ(model.layers().size(), 5U);
  EXPECT_GT(model.total_dense_macs(), 0);
}

TEST(FlopsModelTest, ConvMacsScaleWithSpatialDims) {
  auto small = nn::make_lenet5(spec(16));
  auto large = nn::make_lenet5(spec(32));
  FlopsModel fs(*small, 3, 16);
  FlopsModel fl(*large, 3, 32);
  // First conv MACs grow ~4x with doubled resolution.
  const double ratio = static_cast<double>(fl.layers()[0].dense_macs) /
                       static_cast<double>(fs.layers()[0].dense_macs);
  EXPECT_NEAR(ratio, 4.0, 0.2);
}

TEST(FlopsModelTest, DensityAndRateScaleLinearly) {
  auto net = nn::make_lenet5(spec());
  FlopsModel model(*net, 3, 16);
  const double full = model.inference_macs_per_sample(1.0, 1.0, 2);
  EXPECT_NEAR(model.inference_macs_per_sample(0.1, 1.0, 2), 0.1 * full, 1e-6 * full);
  EXPECT_NEAR(model.inference_macs_per_sample(1.0, 0.2, 2), 0.2 * full, 1e-6 * full);
  EXPECT_NEAR(model.inference_macs_per_sample(0.5, 0.5, 2), 0.25 * full, 1e-6 * full);
}

TEST(FlopsModelTest, TimestepsMultiply) {
  auto net = nn::make_lenet5(spec());
  FlopsModel model(*net, 3, 16);
  EXPECT_NEAR(model.inference_macs_per_sample(1.0, 1.0, 4),
              2.0 * model.inference_macs_per_sample(1.0, 1.0, 2), 1.0);
}

TEST(FlopsModelTest, TrainingIsThreeTimesInference) {
  auto net = nn::make_lenet5(spec());
  FlopsModel model(*net, 3, 16);
  EXPECT_NEAR(model.training_macs_per_sample(0.5, 0.5, 2),
              3.0 * model.inference_macs_per_sample(0.5, 0.5, 2), 1.0);
}

TEST(FlopsModelTest, ResnetBlocksCounted) {
  auto net = nn::make_resnet19(spec(16, 0.05));
  FlopsModel model(*net, 3, 16);
  // stem conv + 8 residual blocks + 2 linears = 11 entries.
  EXPECT_EQ(model.layers().size(), 11U);
}

TEST(FlopsModelTest, RejectsBadArguments) {
  auto net = nn::make_lenet5(spec());
  FlopsModel model(*net, 3, 16);
  EXPECT_THROW((void)model.inference_macs_per_sample(1.5, 1.0, 2), std::invalid_argument);
  EXPECT_THROW((void)model.inference_macs_per_sample(1.0, -0.1, 2), std::invalid_argument);
  EXPECT_THROW((void)model.inference_macs_per_sample(1.0, 1.0, 0), std::invalid_argument);
}

}  // namespace
}  // namespace ndsnn::core
