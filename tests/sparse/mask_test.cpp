#include "sparse/mask.hpp"

#include <gtest/gtest.h>

namespace ndsnn::sparse {
namespace {

using tensor::Rng;
using tensor::Shape;
using tensor::Tensor;

TEST(MaskTest, DenseByDefault) {
  Mask m(Shape{4, 4});
  EXPECT_EQ(m.active_count(), 16);
  EXPECT_DOUBLE_EQ(m.sparsity(), 0.0);
}

TEST(MaskTest, RandomInitHasExactCount) {
  Rng rng(1);
  Mask m(Shape{10, 10}, 37, rng);
  EXPECT_EQ(m.active_count(), 37);
  EXPECT_NEAR(m.sparsity(), 0.63, 1e-9);
}

TEST(MaskTest, ActiveCountBoundsChecked) {
  Rng rng(2);
  EXPECT_THROW(Mask(Shape{2, 2}, 5, rng), std::invalid_argument);
  EXPECT_THROW(Mask(Shape{2, 2}, -1, rng), std::invalid_argument);
}

TEST(MaskTest, ApplyZeroesMaskedWeights) {
  Rng rng(3);
  Mask m(Shape{100}, 40, rng);
  Tensor w(Shape{100}, 1.0F);
  m.apply(w);
  EXPECT_EQ(w.count_zeros(), 60);
}

TEST(MaskTest, ApplyShapeMismatchThrows) {
  Mask m(Shape{4});
  Tensor w(Shape{5});
  EXPECT_THROW(m.apply(w), std::invalid_argument);
}

TEST(MaskTest, ActiveInactivePartition) {
  Rng rng(4);
  Mask m(Shape{50}, 20, rng);
  const auto active = m.active_indices();
  const auto inactive = m.inactive_indices();
  EXPECT_EQ(active.size(), 20U);
  EXPECT_EQ(inactive.size(), 30U);
  for (const int64_t i : active) EXPECT_TRUE(m.test(i));
  for (const int64_t i : inactive) EXPECT_FALSE(m.test(i));
}

TEST(MaskTest, DeactivateActivateRoundTrip) {
  Rng rng(5);
  Mask m(Shape{10}, 10, rng);
  m.deactivate({1, 3, 5});
  EXPECT_EQ(m.active_count(), 7);
  m.activate({3});
  EXPECT_EQ(m.active_count(), 8);
  EXPECT_TRUE(m.test(3));
  EXPECT_FALSE(m.test(1));
}

TEST(MaskTest, DoubleDeactivateThrows) {
  Mask m(Shape{4});
  m.deactivate({0});
  EXPECT_THROW(m.deactivate({0}), std::invalid_argument);
}

TEST(MaskTest, DoubleActivateThrows) {
  Mask m(Shape{4});
  EXPECT_THROW(m.activate({1}), std::invalid_argument);
}

TEST(MaskTest, IndexOutOfRangeThrows) {
  Mask m(Shape{4});
  EXPECT_THROW(m.deactivate({4}), std::invalid_argument);
  EXPECT_THROW(m.deactivate({-1}), std::invalid_argument);
}

class MaskSparsitySweep : public ::testing::TestWithParam<double> {};

TEST_P(MaskSparsitySweep, RandomInitMatchesRequestedSparsity) {
  const double sparsity = GetParam();
  Rng rng(42);
  const int64_t n = 400;
  const auto active = static_cast<int64_t>((1.0 - sparsity) * n + 0.5);
  Mask m(Shape{20, 20}, active, rng);
  EXPECT_NEAR(m.sparsity(), sparsity, 0.005);
}

INSTANTIATE_TEST_SUITE_P(PaperSparsities, MaskSparsitySweep,
                         ::testing::Values(0.5, 0.8, 0.9, 0.95, 0.98, 0.99));

}  // namespace
}  // namespace ndsnn::sparse
