#include "sparse/memory_model.hpp"

#include <gtest/gtest.h>

namespace ndsnn::sparse {
namespace {

MemoryModelInput base() {
  MemoryModelInput in;
  in.total_weights = 1000000;
  in.sparsity = 0.9;
  in.timesteps = 5;
  in.weight_bits = 32;
  in.index_bits = 16;
  return in;
}

TEST(MemoryModelTest, ApproxFormulaExact) {
  // (1-0.9) * ((1+5) * 1e6 * 32 + 1e6 * 16) = 0.1 * (192e6 + 16e6) = 20.8e6.
  const auto in = base();
  EXPECT_EQ(footprint_bits_approx(in), 20800000);
}

TEST(MemoryModelTest, DenseVsSparseRatio) {
  auto dense = base();
  dense.sparsity = 0.0;
  auto sparse = base();
  sparse.sparsity = 0.9;
  const double ratio = static_cast<double>(footprint_bits_approx(sparse)) /
                       static_cast<double>(footprint_bits_approx(dense));
  EXPECT_NEAR(ratio, 0.1, 1e-9);
}

TEST(MemoryModelTest, MoreTimestepsMoreMemory) {
  auto t2 = base();
  t2.timesteps = 2;
  auto t5 = base();
  t5.timesteps = 5;
  EXPECT_LT(footprint_bits_approx(t2), footprint_bits_approx(t5));
}

TEST(MemoryModelTest, ExactAddsRowPointerTerm) {
  auto in = base();
  in.filters_per_layer = {64, 128};
  const int64_t expected_extra = (64 + 1) * 16 + (128 + 1) * 16;
  EXPECT_EQ(footprint_bits_exact(in) - footprint_bits_approx(in), expected_extra);
}

TEST(MemoryModelTest, MBytesConversion) {
  auto in = base();
  in.sparsity = 0.0;
  in.total_weights = 1024 * 1024;
  in.timesteps = 1;
  in.weight_bits = 32;
  in.index_bits = 0;  // invalid; fix below
  in.index_bits = 8;
  // (1+1)*N*32 + N*8 = 72 bits per weight = 9 bytes -> 9 MB for 1Mi weights.
  EXPECT_NEAR(footprint_mbytes_approx(in), 9.0, 1e-9);
}

TEST(MemoryModelTest, ValidationRejectsBadInputs) {
  auto in = base();
  in.sparsity = 1.5;
  EXPECT_THROW((void)footprint_bits_approx(in), std::invalid_argument);
  in = base();
  in.timesteps = 0;
  EXPECT_THROW((void)footprint_bits_approx(in), std::invalid_argument);
  in = base();
  in.filters_per_layer = {-1};
  EXPECT_THROW((void)footprint_bits_exact(in), std::invalid_argument);
}

class MemoryModelSparsitySweep : public ::testing::TestWithParam<double> {};

TEST_P(MemoryModelSparsitySweep, FootprintLinearInDensity) {
  auto in = base();
  in.sparsity = GetParam();
  auto dense = base();
  dense.sparsity = 0.0;
  const double ratio = static_cast<double>(footprint_bits_approx(in)) /
                       static_cast<double>(footprint_bits_approx(dense));
  EXPECT_NEAR(ratio, 1.0 - GetParam(), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(PaperSparsities, MemoryModelSparsitySweep,
                         ::testing::Values(0.9, 0.95, 0.98, 0.99));

}  // namespace
}  // namespace ndsnn::sparse
