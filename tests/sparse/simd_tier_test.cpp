// Kernel-tier dispatch contract (util/cpuinfo.hpp): for every tiered
// fp32 kernel, the scalar, vector and AVX2 bodies must produce bitwise
// identical results — including ragged batch tails that exercise the
// intrinsic bodies' scalar cleanup loops — and quantised bodies must
// agree with their scalar reference within the QuantPlane error
// contract. Tiers are passed explicitly (no force() global state), and
// util::simd::resolve clamps impossible requests to detected(), so on a
// non-AVX2 host the kAvx2 cases degrade to comparing kVector against
// itself instead of being skipped or faulting.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "sparse/bcsr.hpp"
#include "sparse/csr.hpp"
#include "sparse/simd_kernels.hpp"
#include "tensor/matmul.hpp"
#include "tensor/random.hpp"
#include "util/cpuinfo.hpp"
#include "util/thread_pool.hpp"

namespace ndsnn::sparse {
namespace {

using tensor::Rng;
using tensor::Shape;
using tensor::Tensor;
using util::simd::Tier;

/// A weight-like matrix: uniform values with a fraction zeroed so the
/// sparse formats have real structure (and the AVX2 spmm_t gate
/// nnz >= cols holds at the sizes used here).
Tensor sparse_matrix(int64_t rows, int64_t cols, double sparsity, uint64_t seed) {
  Rng rng(seed);
  Tensor t(Shape{rows, cols});
  t.fill_uniform(rng, -1.0F, 1.0F);
  float* p = t.data();
  // Deterministic stride-based zeroing: exact sparsity, spread pattern.
  const int64_t keep_every = sparsity >= 1.0 ? t.numel() + 1
                                             : static_cast<int64_t>(1.0 / (1.0 - sparsity));
  for (int64_t i = 0; i < t.numel(); ++i) {
    if (i % keep_every != 0) p[i] = 0.0F;
  }
  return t;
}

Tensor dense_batch(int64_t rows, int64_t cols, uint64_t seed) {
  Rng rng(seed);
  Tensor t(Shape{rows, cols});
  t.fill_uniform(rng, -2.0F, 2.0F);
  return t;
}

void expect_bitwise(const Tensor& a, const Tensor& b, const char* what) {
  ASSERT_EQ(a.numel(), b.numel()) << what;
  ASSERT_EQ(0, std::memcmp(a.data(), b.data(),
                           static_cast<std::size_t>(a.numel()) * sizeof(float)))
      << what << ": tiers disagree bitwise";
}

void expect_close(const Tensor& a, const Tensor& b, float tol, const char* what) {
  ASSERT_EQ(a.numel(), b.numel()) << what;
  for (int64_t i = 0; i < a.numel(); ++i) {
    ASSERT_NEAR(a.at(i), b.at(i), tol) << what << " at flat index " << i;
  }
}

constexpr Tier kTiers[] = {Tier::kScalar, Tier::kVector, Tier::kAvx2};

TEST(SimdTierTest, DetectedTierIsExecutable) {
  const Tier t = util::simd::detected();
  EXPECT_NE(t, Tier::kAuto);
  // resolve() must clamp any request to something the box executes.
  for (const Tier req : kTiers) {
    EXPECT_LE(static_cast<int>(util::simd::resolve(req)), static_cast<int>(t));
  }
  EXPECT_TRUE(simd::built_with_avx2() || util::simd::detected() != Tier::kAvx2);
}

TEST(SimdTierTest, CsrSpmmTBitwiseAcrossTiersAndThreads) {
  // fc1 scale, plus a ragged batch (13 = 8 + 5 tail) so the 8-lane
  // AVX2 batch panels hit their cleanup path.
  const Tensor w = sparse_matrix(120, 400, 0.9, 7);
  const Csr csr = Csr::from_dense(w);
  util::ThreadPool pool(3);
  for (const int64_t m : {13L, 8L, 32L}) {
    const Tensor b = dense_batch(m, 400, 11);
    const Tensor ref = csr.spmm_t(b, nullptr, Tier::kScalar);
    for (const Tier tier : kTiers) {
      expect_bitwise(csr.spmm_t(b, nullptr, tier), ref, "csr spmm_t serial");
      expect_bitwise(csr.spmm_t(b, &pool, tier), ref, "csr spmm_t pooled");
    }
  }
}

TEST(SimdTierTest, CsrSpmmTSmallBatchFallsBackBitwise) {
  // m < 8 takes the scalar row path at every tier; still bitwise.
  const Tensor w = sparse_matrix(40, 64, 0.8, 3);
  const Csr csr = Csr::from_dense(w);
  const Tensor b = dense_batch(3, 64, 5);
  const Tensor ref = csr.spmm_t(b, nullptr, Tier::kScalar);
  for (const Tier tier : kTiers) {
    expect_bitwise(csr.spmm_t(b, nullptr, tier), ref, "csr spmm_t small batch");
  }
}

TEST(SimdTierTest, CsrSpmmBitwiseAcrossTiers) {
  const Tensor w = sparse_matrix(64, 120, 0.85, 9);
  const Csr csr = Csr::from_dense(w);
  util::ThreadPool pool(2);
  for (const int64_t n : {24L, 9L}) {  // n % 8 != 0 exercises the j tail
    const Tensor b = dense_batch(120, n, 13);
    const Tensor ref = csr.spmm(b, nullptr, Tier::kScalar);
    for (const Tier tier : kTiers) {
      expect_bitwise(csr.spmm(b, nullptr, tier), ref, "csr spmm serial");
      expect_bitwise(csr.spmm(b, &pool, tier), ref, "csr spmm pooled");
    }
  }
}

TEST(SimdTierTest, BcsrSpmmAndSpmmTBitwiseAcrossTiers) {
  const Tensor w = sparse_matrix(96, 128, 0.75, 21);
  const Bcsr bcsr = Bcsr::from_dense(w, 4, 4);
  util::ThreadPool pool(3);
  const Tensor bt = dense_batch(13, 128, 17);
  const Tensor ref_t = bcsr.spmm_t(bt, nullptr, Tier::kScalar);
  const Tensor bs = dense_batch(128, 24, 19);
  const Tensor ref_s = bcsr.spmm(bs, nullptr, Tier::kScalar);
  for (const Tier tier : kTiers) {
    expect_bitwise(bcsr.spmm_t(bt, nullptr, tier), ref_t, "bcsr spmm_t serial");
    expect_bitwise(bcsr.spmm_t(bt, &pool, tier), ref_t, "bcsr spmm_t pooled");
    expect_bitwise(bcsr.spmm(bs, nullptr, tier), ref_s, "bcsr spmm serial");
    expect_bitwise(bcsr.spmm(bs, &pool, tier), ref_s, "bcsr spmm pooled");
  }
}

TEST(SimdTierTest, DenseMatmulBitwiseAcrossTiers) {
  const Tensor a = sparse_matrix(33, 48, 0.6, 31);  // zero-skip path has real zeros
  const Tensor b = dense_batch(48, 19, 37);
  util::ThreadPool pool(2);
  const Tensor ref = tensor::matmul(a, b, nullptr, Tier::kScalar);
  for (const Tier tier : kTiers) {
    expect_bitwise(tensor::matmul(a, b, nullptr, tier), ref, "matmul serial");
    expect_bitwise(tensor::matmul(a, b, &pool, tier), ref, "matmul pooled");
  }
}

TEST(SimdTierTest, DenseMatmulNtBitwiseAcrossTiers) {
  const Tensor a = dense_batch(13, 48, 41);
  const Tensor w = sparse_matrix(31, 48, 0.5, 43);  // B of matmul_nt = weights [n, k]
  util::ThreadPool pool(3);
  const Tensor ref = tensor::matmul_nt(a, w, nullptr, Tier::kScalar);
  for (const Tier tier : kTiers) {
    expect_bitwise(tensor::matmul_nt(a, w, nullptr, tier), ref, "matmul_nt serial");
    expect_bitwise(tensor::matmul_nt(a, w, &pool, tier), ref, "matmul_nt pooled");
  }
}

TEST(SimdTierTest, TransposeHelperMatchesNaive) {
  const int64_t rows = 13, cols = 23;
  const Tensor in = dense_batch(rows, cols, 47);
  std::vector<float> out(static_cast<std::size_t>(rows * cols), -1.0F);
  simd::transpose_f32(in.data(), rows, cols, out.data(), 0, cols);
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < cols; ++c) {
      EXPECT_EQ(out[static_cast<std::size_t>(c * rows + r)], in.at(r, c));
    }
  }
}

/// Quantised planes: no bitwise contract across tiers (the intrinsic
/// bodies reassociate with FMA), but every tier must stay within the
/// plane's error bound of the fp32 product — here checked against the
/// scalar quantised kernel with a tolerance well under the quantisation
/// step itself.
TEST(SimdTierTest, CsrSpmmTQuantisedTiersAgreeWithinTolerance) {
  for (const Precision p : {Precision::kInt8, Precision::kInt4}) {
    for (const int64_t group : {0L, 64L}) {
      Tensor w = sparse_matrix(120, 400, 0.9, 53);
      Csr csr = Csr::from_dense(w);
      (void)csr.quantize(p, /*symmetric=*/true, /*uniform_scale=*/false, group);
      const Tensor b = dense_batch(13, 400, 59);
      const Tensor ref = csr.spmm_t(b, nullptr, Tier::kScalar);
      // int4 codes are coarse; the per-output dot products here sum
      // ~40 nonzero terms of magnitude <= 2, so 1e-3 is far below the
      // quantisation error yet far above fp32 reassociation noise.
      for (const Tier tier : kTiers) {
        expect_close(csr.spmm_t(b, nullptr, tier), ref, 1e-3F, "quantised csr spmm_t");
      }
    }
  }
}

TEST(SimdTierTest, GroupedPlaneImprovesInt4Error) {
  // A matrix with per-row outliers: one large entry per row blows up
  // the per-row int4 scale; 32-wide groups isolate the outlier.
  Rng rng(61);
  Tensor w(Shape{32, 256});
  w.fill_uniform(rng, -0.1F, 0.1F);
  for (int64_t r = 0; r < 32; ++r) w.at(r, 7) = 4.0F;
  const float per_row = relative_quant_error(w, Precision::kInt4, 0.0F, false);
  const float grouped = relative_quant_error(w, Precision::kInt4, 0.0F, false, 32);
  EXPECT_LT(grouped, per_row);

  // The grouped plane's reconstruction must respect its group scales:
  // round-trip through dequant and compare per element.
  Csr csr = Csr::from_dense(w);
  (void)csr.quantize(Precision::kInt4, true, false, 32);
  EXPECT_EQ(csr.quant().group_size, 32);
  const Tensor back = csr.to_dense();
  // Small-magnitude entries must reconstruct to ~1/16 of their group
  // max (0.1), not 1/16 of the row max (4.0).
  for (int64_t r = 0; r < 32; ++r) {
    EXPECT_NEAR(back.at(r, 100), w.at(r, 100), 0.1F / 7.0F + 1e-5F);
  }
}

TEST(SimdTierTest, GroupedQuantizeValidation) {
  Csr csr = Csr::from_dense(sparse_matrix(16, 64, 0.5, 67));
  EXPECT_THROW((void)csr.quantize(Precision::kInt8, true, false, 24),
               std::invalid_argument);  // not a power of two
  EXPECT_THROW((void)csr.quantize(Precision::kInt8, true, true, 32),
               std::invalid_argument);  // uniform + grouped conflict
  EXPECT_THROW((void)csr.quantize(Precision::kInt8, false, false, 32),
               std::invalid_argument);  // grouped is symmetric-only
}

TEST(SimdTierTest, GroupedGatherMatchesOwnDequantisedValues) {
  // Event-path kernel on a grouped plane: spmv_gather must accumulate
  // exactly the plane's own dequantised values (to_dense uses the same
  // QuantPlane::dequant), in the same ascending-j double chains.
  Tensor w = sparse_matrix(48, 96, 0.8, 71);
  Csr csr_t = Csr::from_dense(w).transposed();  // Wᵀ [96, 48]
  (void)csr_t.quantize(Precision::kInt8, true, false, 16);
  const Tensor deq = csr_t.to_dense();
  const Tensor b = dense_batch(1, 96, 73);
  std::vector<int32_t> active;
  for (int32_t j = 0; j < 96; ++j) active.push_back(j);
  std::vector<double> acc(48, 0.0);
  csr_t.spmv_gather(b.data(), active.data(), static_cast<int64_t>(active.size()),
                    acc.data());
  for (int64_t r = 0; r < 48; ++r) {
    double expect = 0.0;
    for (int64_t j = 0; j < 96; ++j) {
      expect += static_cast<double>(deq.at(j, r)) * static_cast<double>(b.at(0, j));
    }
    EXPECT_NEAR(acc[static_cast<std::size_t>(r)], expect, 1e-12);
  }
}

}  // namespace
}  // namespace ndsnn::sparse
