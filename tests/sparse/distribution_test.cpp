#include "sparse/distribution.hpp"

#include <gtest/gtest.h>

namespace ndsnn::sparse {
namespace {

using tensor::Shape;

std::vector<LayerDims> vgg_like() {
  // A few conv layers + classifier, shaped like the scaled models.
  return {
      LayerDims::from_shape(Shape{16, 3, 3, 3}),
      LayerDims::from_shape(Shape{32, 16, 3, 3}),
      LayerDims::from_shape(Shape{64, 32, 3, 3}),
      LayerDims::from_shape(Shape{10, 64}),
  };
}

TEST(LayerDimsTest, FromConvShape) {
  const auto d = LayerDims::from_shape(Shape{8, 4, 3, 3});
  EXPECT_EQ(d.fan_out, 8);
  EXPECT_EQ(d.fan_in, 4);
  EXPECT_EQ(d.kernel_h, 3);
  EXPECT_EQ(d.numel, 8 * 4 * 9);
}

TEST(LayerDimsTest, FromLinearShape) {
  const auto d = LayerDims::from_shape(Shape{10, 64});
  EXPECT_EQ(d.fan_out, 10);
  EXPECT_EQ(d.fan_in, 64);
  EXPECT_EQ(d.kernel_h, 1);
}

TEST(LayerDimsTest, RejectsOtherRanks) {
  EXPECT_THROW((void)LayerDims::from_shape(Shape{4}), std::invalid_argument);
  EXPECT_THROW((void)LayerDims::from_shape(Shape{2, 2, 2}), std::invalid_argument);
}

TEST(ErkTest, OverallSparsityPreserved) {
  const auto layers = vgg_like();
  for (const double target : {0.5, 0.8, 0.9, 0.95, 0.99}) {
    const auto theta = erk_distribution(layers, target);
    EXPECT_NEAR(overall_sparsity(layers, theta), target, 0.02) << "target " << target;
  }
}

TEST(ErkTest, SmallLayersStayDenser) {
  const auto layers = vgg_like();
  const auto theta = erk_distribution(layers, 0.9);
  // The classifier (small, thin) must be less sparse than the big conv.
  EXPECT_LT(theta[3], theta[2]);
}

TEST(ErkTest, AllInUnitInterval) {
  const auto layers = vgg_like();
  for (const double target : {0.5, 0.9, 0.99}) {
    for (const double t : erk_distribution(layers, target)) {
      EXPECT_GE(t, 0.0);
      EXPECT_LE(t, 1.0);
    }
  }
}

TEST(ErkTest, ZeroSparsityGivesDense) {
  const auto theta = erk_distribution(vgg_like(), 0.0);
  for (const double t : theta) EXPECT_NEAR(t, 0.0, 1e-9);
}

TEST(ErkTest, RejectsBadInputs) {
  EXPECT_THROW((void)erk_distribution({}, 0.5), std::invalid_argument);
  EXPECT_THROW((void)erk_distribution(vgg_like(), 1.0), std::invalid_argument);
  EXPECT_THROW((void)erk_distribution(vgg_like(), -0.1), std::invalid_argument);
}

TEST(UniformTest, AllLayersEqual) {
  const auto theta = uniform_distribution(vgg_like(), 0.7);
  for (const double t : theta) EXPECT_DOUBLE_EQ(t, 0.7);
}

TEST(OverallSparsityTest, WeightsByParamCount) {
  std::vector<LayerDims> layers = {
      LayerDims::from_shape(Shape{10, 10}),    // 100 params
      LayerDims::from_shape(Shape{30, 30}),    // 900 params
  };
  // 0% on small, 100%...not allowed; use 0.9 on big:
  const double overall = overall_sparsity(layers, {0.0, 0.9});
  EXPECT_NEAR(overall, 0.81, 1e-9);
}

class ErkMonotonicity : public ::testing::TestWithParam<double> {};

TEST_P(ErkMonotonicity, HigherOverallSparsityNeverLowersLayerSparsity) {
  const double s1 = GetParam();
  const double s2 = std::min(0.995, s1 + 0.05);
  const auto layers = vgg_like();
  const auto t1 = erk_distribution(layers, s1);
  const auto t2 = erk_distribution(layers, s2);
  for (std::size_t i = 0; i < layers.size(); ++i) {
    EXPECT_LE(t1[i], t2[i] + 1e-9) << "layer " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ErkMonotonicity,
                         ::testing::Values(0.5, 0.6, 0.7, 0.8, 0.9, 0.94));

}  // namespace
}  // namespace ndsnn::sparse
