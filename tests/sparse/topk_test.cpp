#include "sparse/topk.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "tensor/random.hpp"

namespace ndsnn::sparse {
namespace {

using tensor::Shape;
using tensor::Tensor;

TEST(ArgDropTest, PicksSmallestMagnitudes) {
  Tensor v(Shape{6}, std::vector<float>{-0.1F, 5.0F, 0.05F, -3.0F, 0.2F, 1.0F});
  const auto picked = argdrop_smallest_magnitude(v, {0, 1, 2, 3, 4, 5}, 3);
  // Smallest |v|: indices 2 (0.05), 0 (0.1), 4 (0.2).
  EXPECT_EQ(picked, (std::vector<int64_t>{0, 2, 4}));
}

TEST(ArgDropTest, RespectsCandidateSubset) {
  Tensor v(Shape{4}, std::vector<float>{0.01F, 0.02F, 0.03F, 0.04F});
  const auto picked = argdrop_smallest_magnitude(v, {2, 3}, 1);
  EXPECT_EQ(picked, (std::vector<int64_t>{2}));
}

TEST(ArgDropTest, KZeroReturnsEmpty) {
  Tensor v(Shape{3}, 1.0F);
  EXPECT_TRUE(argdrop_smallest_magnitude(v, {0, 1, 2}, 0).empty());
}

TEST(ArgDropTest, KOutOfRangeThrows) {
  Tensor v(Shape{3}, 1.0F);
  EXPECT_THROW((void)argdrop_smallest_magnitude(v, {0, 1}, 3), std::invalid_argument);
  EXPECT_THROW((void)argdrop_smallest_magnitude(v, {0, 1}, -1), std::invalid_argument);
}

TEST(ArgGrowTest, PicksLargestMagnitudes) {
  Tensor g(Shape{5}, std::vector<float>{0.1F, -9.0F, 2.0F, -0.5F, 3.0F});
  const auto picked = arggrow_largest_magnitude(g, {0, 1, 2, 3, 4}, 2);
  EXPECT_EQ(picked, (std::vector<int64_t>{1, 4}));
}

TEST(ArgGrowTest, DeterministicTieBreakOnIndex) {
  Tensor g(Shape{4}, std::vector<float>{1.0F, 1.0F, 1.0F, 1.0F});
  const auto picked = arggrow_largest_magnitude(g, {0, 1, 2, 3}, 2);
  EXPECT_EQ(picked, (std::vector<int64_t>{0, 1}));
}

TEST(ArgDropGrowTest, DisjointComplementaryProperty) {
  // Dropping k smallest then growing k largest from the rest never
  // overlaps.
  tensor::Rng rng(9);
  Tensor v(Shape{100});
  v.fill_uniform(rng, -1.0F, 1.0F);
  std::vector<int64_t> all(100);
  for (int64_t i = 0; i < 100; ++i) all[static_cast<std::size_t>(i)] = i;
  const auto dropped = argdrop_smallest_magnitude(v, all, 30);
  std::vector<int64_t> rest;
  std::set_difference(all.begin(), all.end(), dropped.begin(), dropped.end(),
                      std::back_inserter(rest));
  const auto grown = arggrow_largest_magnitude(v, rest, 30);
  std::vector<int64_t> overlap;
  std::set_intersection(dropped.begin(), dropped.end(), grown.begin(), grown.end(),
                        std::back_inserter(overlap));
  EXPECT_TRUE(overlap.empty());
}

TEST(MagnitudeThresholdTest, KeepsExactlyTopK) {
  Tensor v(Shape{5}, std::vector<float>{0.1F, -0.5F, 0.3F, -0.9F, 0.7F});
  const float thr = magnitude_threshold(v, 2);
  int64_t kept = 0;
  for (int64_t i = 0; i < v.numel(); ++i) kept += std::fabs(v.at(i)) >= thr;
  EXPECT_EQ(kept, 2);
}

TEST(MagnitudeThresholdTest, KeepAllGivesMinMagnitude) {
  Tensor v(Shape{3}, std::vector<float>{0.5F, -0.2F, 0.8F});
  EXPECT_FLOAT_EQ(magnitude_threshold(v, 3), 0.2F);
}

TEST(MagnitudeThresholdTest, KeepZeroIsInfinite) {
  Tensor v(Shape{3}, 1.0F);
  EXPECT_GT(magnitude_threshold(v, 0), 1e30F);
}

TEST(MagnitudeThresholdTest, OutOfRangeThrows) {
  Tensor v(Shape{3}, 1.0F);
  EXPECT_THROW((void)magnitude_threshold(v, 4), std::invalid_argument);
}

}  // namespace
}  // namespace ndsnn::sparse
