#include "sparse/structured.hpp"

#include <gtest/gtest.h>

#include "tensor/random.hpp"

namespace ndsnn::sparse {
namespace {

using tensor::Rng;
using tensor::Shape;
using tensor::Tensor;

TEST(NmPatternTest, Validation) {
  EXPECT_NO_THROW((NmPattern{2, 4}.validate()));
  EXPECT_THROW((NmPattern{5, 4}.validate()), std::invalid_argument);
  EXPECT_THROW((NmPattern{-1, 4}.validate()), std::invalid_argument);
  EXPECT_THROW((NmPattern{0, 0}.validate()), std::invalid_argument);
}

TEST(NmTest, PatternSparsity) {
  EXPECT_DOUBLE_EQ(nm_sparsity({2, 4}), 0.5);
  EXPECT_DOUBLE_EQ(nm_sparsity({1, 4}), 0.75);
  EXPECT_DOUBLE_EQ(nm_sparsity({4, 4}), 0.0);
}

TEST(NmTest, ProjectionKeepsLargestPerGroup) {
  Tensor w(Shape{8}, std::vector<float>{0.1F, -0.9F, 0.5F, 0.2F,   // group 1
                                        -0.3F, 0.7F, 0.1F, -0.8F});  // group 2
  project_nm(w, {2, 4});
  // Group 1 keeps -0.9, 0.5; group 2 keeps -0.8, 0.7.
  EXPECT_EQ(w.at(0), 0.0F);
  EXPECT_EQ(w.at(1), -0.9F);
  EXPECT_EQ(w.at(2), 0.5F);
  EXPECT_EQ(w.at(3), 0.0F);
  EXPECT_EQ(w.at(4), 0.0F);
  EXPECT_EQ(w.at(5), 0.7F);
  EXPECT_EQ(w.at(6), 0.0F);
  EXPECT_EQ(w.at(7), -0.8F);
}

TEST(NmTest, ProjectionIsIdempotent) {
  Rng rng(3);
  Tensor w(Shape{6, 20});
  w.fill_uniform(rng, -1.0F, 1.0F);
  project_nm(w, {2, 4});
  const Tensor once = w;
  project_nm(w, {2, 4});
  for (int64_t i = 0; i < w.numel(); ++i) EXPECT_EQ(w.at(i), once.at(i));
}

TEST(NmTest, SatisfiesAfterProjection) {
  Rng rng(4);
  Tensor w(Shape{10, 17});  // 170 elements: exercises the tail group
  w.fill_uniform(rng, -1.0F, 1.0F);
  EXPECT_FALSE(satisfies_nm(w, {2, 4}));
  project_nm(w, {2, 4});
  EXPECT_TRUE(satisfies_nm(w, {2, 4}));
}

TEST(NmTest, TailGroupProportionalBudget) {
  // 6 elements with 2:4 -> one full group (keep 2) + tail of 2 (keep
  // ceil(2*2/4) = 1).
  Tensor w(Shape{6}, std::vector<float>{1, 2, 3, 4, 5, 6});
  project_nm(w, {2, 4});
  int64_t nonzero = 0;
  for (int64_t i = 0; i < 6; ++i) nonzero += w.at(i) != 0.0F;
  EXPECT_EQ(nonzero, 3);
  EXPECT_EQ(w.at(5), 6.0F);  // largest in tail survives
}

TEST(NmTest, ProjectionLossZeroForCompliantTensor) {
  Tensor w(Shape{4}, std::vector<float>{1.0F, 0.0F, 2.0F, 0.0F});
  EXPECT_DOUBLE_EQ(nm_projection_loss(w, {2, 4}), 0.0);
}

TEST(NmTest, ProjectionLossBoundedAndMonotoneInN) {
  Rng rng(5);
  Tensor w(Shape{256});
  w.fill_uniform(rng, -1.0F, 1.0F);
  double prev = 1.0;
  for (const int64_t n : {1, 2, 3, 4}) {
    const double loss = nm_projection_loss(w, {n, 4});
    EXPECT_GE(loss, 0.0);
    EXPECT_LE(loss, 1.0);
    EXPECT_LE(loss, prev + 1e-12);  // keeping more loses less
    prev = loss;
  }
  EXPECT_DOUBLE_EQ(nm_projection_loss(w, {4, 4}), 0.0);
}

TEST(NmTest, ZeroTensorLossless) {
  Tensor w(Shape{16});
  EXPECT_DOUBLE_EQ(nm_projection_loss(w, {1, 4}), 0.0);
  EXPECT_TRUE(satisfies_nm(w, {1, 4}));
}

TEST(NmTest, UnstructuredSparseOftenViolatesNm) {
  // An NDSNN-style unstructured 50% mask usually breaks 2:4 somewhere --
  // the motivating fact for the projection utility.
  Rng rng(6);
  Tensor w(Shape{128});
  w.fill_uniform(rng, 0.5F, 1.0F);
  // Zero a random half (unstructured).
  for (int64_t i = 0; i < w.numel(); ++i) {
    if (rng.bernoulli(0.5)) w.at(i) = 0.0F;
  }
  EXPECT_FALSE(satisfies_nm(w, {2, 4}));
}

}  // namespace
}  // namespace ndsnn::sparse
