#include "sparse/structured.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "../testing_env.hpp"
#include "tensor/random.hpp"

namespace ndsnn::sparse {
namespace {

using tensor::Rng;
using tensor::Shape;
using tensor::Tensor;

TEST(NmPatternTest, Validation) {
  EXPECT_NO_THROW((NmPattern{2, 4}.validate()));
  EXPECT_THROW((NmPattern{5, 4}.validate()), std::invalid_argument);
  EXPECT_THROW((NmPattern{-1, 4}.validate()), std::invalid_argument);
  EXPECT_THROW((NmPattern{0, 0}.validate()), std::invalid_argument);
}

TEST(NmTest, PatternSparsity) {
  EXPECT_DOUBLE_EQ(nm_sparsity({2, 4}), 0.5);
  EXPECT_DOUBLE_EQ(nm_sparsity({1, 4}), 0.75);
  EXPECT_DOUBLE_EQ(nm_sparsity({4, 4}), 0.0);
}

TEST(NmTest, ProjectionKeepsLargestPerGroup) {
  Tensor w(Shape{8}, std::vector<float>{0.1F, -0.9F, 0.5F, 0.2F,   // group 1
                                        -0.3F, 0.7F, 0.1F, -0.8F});  // group 2
  project_nm(w, {2, 4});
  // Group 1 keeps -0.9, 0.5; group 2 keeps -0.8, 0.7.
  EXPECT_EQ(w.at(0), 0.0F);
  EXPECT_EQ(w.at(1), -0.9F);
  EXPECT_EQ(w.at(2), 0.5F);
  EXPECT_EQ(w.at(3), 0.0F);
  EXPECT_EQ(w.at(4), 0.0F);
  EXPECT_EQ(w.at(5), 0.7F);
  EXPECT_EQ(w.at(6), 0.0F);
  EXPECT_EQ(w.at(7), -0.8F);
}

TEST(NmTest, ProjectionIsIdempotent) {
  Rng rng(3);
  Tensor w(Shape{6, 20});
  w.fill_uniform(rng, -1.0F, 1.0F);
  project_nm(w, {2, 4});
  const Tensor once = w;
  project_nm(w, {2, 4});
  for (int64_t i = 0; i < w.numel(); ++i) EXPECT_EQ(w.at(i), once.at(i));
}

TEST(NmTest, SatisfiesAfterProjection) {
  Rng rng(4);
  Tensor w(Shape{10, 17});  // 170 elements: exercises the tail group
  w.fill_uniform(rng, -1.0F, 1.0F);
  EXPECT_FALSE(satisfies_nm(w, {2, 4}));
  project_nm(w, {2, 4});
  EXPECT_TRUE(satisfies_nm(w, {2, 4}));
}

TEST(NmTest, TailGroupProportionalBudget) {
  // 6 elements with 2:4 -> one full group (keep 2) + tail of 2 (keep
  // ceil(2*2/4) = 1).
  Tensor w(Shape{6}, std::vector<float>{1, 2, 3, 4, 5, 6});
  project_nm(w, {2, 4});
  int64_t nonzero = 0;
  for (int64_t i = 0; i < 6; ++i) nonzero += w.at(i) != 0.0F;
  EXPECT_EQ(nonzero, 3);
  EXPECT_EQ(w.at(5), 6.0F);  // largest in tail survives
}

TEST(NmTest, ProjectionLossZeroForCompliantTensor) {
  Tensor w(Shape{4}, std::vector<float>{1.0F, 0.0F, 2.0F, 0.0F});
  EXPECT_DOUBLE_EQ(nm_projection_loss(w, {2, 4}), 0.0);
}

TEST(NmTest, ProjectionLossBoundedAndMonotoneInN) {
  Rng rng(5);
  Tensor w(Shape{256});
  w.fill_uniform(rng, -1.0F, 1.0F);
  double prev = 1.0;
  for (const int64_t n : {1, 2, 3, 4}) {
    const double loss = nm_projection_loss(w, {n, 4});
    EXPECT_GE(loss, 0.0);
    EXPECT_LE(loss, 1.0);
    EXPECT_LE(loss, prev + 1e-12);  // keeping more loses less
    prev = loss;
  }
  EXPECT_DOUBLE_EQ(nm_projection_loss(w, {4, 4}), 0.0);
}

TEST(NmTest, ZeroTensorLossless) {
  Tensor w(Shape{16});
  EXPECT_DOUBLE_EQ(nm_projection_loss(w, {1, 4}), 0.0);
  EXPECT_TRUE(satisfies_nm(w, {1, 4}));
}

TEST(NmTest, PropertyRoundTripRandomized) {
  // project_nm ∘ satisfies_nm round-trip, idempotence, and loss bounds
  // over random shapes (odd numels exercise the tail group) and random
  // patterns. Seeded via NDSNN_TEST_SEED.
  Rng rng(difftest::env_seed() ^ 0x57A7B1E5ULL);
  for (int round = 0; round < 200; ++round) {
    const int64_t numel = 1 + rng.uniform_int(257);
    const int64_t m = 2 + rng.uniform_int(7);           // 2..8
    const int64_t n = rng.uniform_int(m + 1);           // 0..m
    const NmPattern pattern{n, m};
    Tensor w(Shape{numel});
    w.fill_uniform(rng, -2.0F, 2.0F);
    const std::string ctx = "round " + std::to_string(round) + ": numel=" +
                            std::to_string(numel) + " pattern=" + std::to_string(n) +
                            ":" + std::to_string(m);

    const double loss = nm_projection_loss(w, pattern);
    EXPECT_GE(loss, 0.0) << ctx;
    EXPECT_LE(loss, 1.0) << ctx;

    project_nm(w, pattern);
    EXPECT_TRUE(satisfies_nm(w, pattern)) << ctx;
    // A satisfying tensor projects losslessly...
    EXPECT_DOUBLE_EQ(nm_projection_loss(w, pattern), 0.0) << ctx;
    // ...and idempotently.
    const Tensor once = w;
    project_nm(w, pattern);
    for (int64_t i = 0; i < w.numel(); ++i) ASSERT_EQ(w.at(i), once.at(i)) << ctx;
  }
}

TEST(NmTest, TailGroupEdgeCasesExhaustive) {
  // Every tail size 1..m-1 for every pattern up to m=6: the tail keeps
  // exactly min(tail, ceil(n * tail / m)) entries — and they are the
  // largest-magnitude ones.
  for (int64_t m = 2; m <= 6; ++m) {
    for (int64_t n = 0; n <= m; ++n) {
      for (int64_t tail = 1; tail < m; ++tail) {
        const int64_t numel = 2 * m + tail;  // two full groups + tail
        Tensor w(Shape{numel});
        for (int64_t i = 0; i < numel; ++i) w.at(i) = static_cast<float>(i + 1);
        project_nm(w, {n, m});
        const std::string ctx = std::to_string(n) + ":" + std::to_string(m) +
                                " tail=" + std::to_string(tail);
        int64_t tail_nonzero = 0;
        for (int64_t i = 2 * m; i < numel; ++i) tail_nonzero += w.at(i) != 0.0F;
        const int64_t expect_keep = std::min<int64_t>(tail, (n * tail + m - 1) / m);
        EXPECT_EQ(tail_nonzero, expect_keep) << ctx;
        // Survivors are the largest tail entries (values ascend with i).
        for (int64_t i = numel - expect_keep; i < numel; ++i) {
          EXPECT_NE(w.at(i), 0.0F) << ctx << " i=" << i;
        }
        EXPECT_TRUE(satisfies_nm(w, {n, m})) << ctx;
      }
    }
  }
}

TEST(NmTest, NumelSmallerThanGroupSize) {
  // The whole tensor is one tail group.
  Tensor w(Shape{3}, std::vector<float>{3.0F, -1.0F, 2.0F});
  project_nm(w, {2, 8});  // keep ceil(2*3/8) = 1
  EXPECT_EQ(w.at(0), 3.0F);
  EXPECT_EQ(w.at(1), 0.0F);
  EXPECT_EQ(w.at(2), 0.0F);
  EXPECT_TRUE(satisfies_nm(w, {2, 8}));
}

TEST(NmTest, ParseNm) {
  EXPECT_EQ(parse_nm("2:4").n, 2);
  EXPECT_EQ(parse_nm("2:4").m, 4);
  EXPECT_EQ(parse_nm("1:16").m, 16);
  EXPECT_THROW((void)parse_nm(""), std::invalid_argument);
  EXPECT_THROW((void)parse_nm("2"), std::invalid_argument);
  EXPECT_THROW((void)parse_nm(":4"), std::invalid_argument);
  EXPECT_THROW((void)parse_nm("2:"), std::invalid_argument);
  EXPECT_THROW((void)parse_nm("2:4x"), std::invalid_argument);
  // Strictly digits:digits — no whitespace or signs.
  EXPECT_THROW((void)parse_nm("2: 4"), std::invalid_argument);
  EXPECT_THROW((void)parse_nm(" 2:4"), std::invalid_argument);
  EXPECT_THROW((void)parse_nm("+2:4"), std::invalid_argument);
  EXPECT_THROW((void)parse_nm("2:-4"), std::invalid_argument);
  EXPECT_THROW((void)parse_nm("5:4"), std::invalid_argument);  // validate()
}

TEST(NmTest, UnstructuredSparseOftenViolatesNm) {
  // An NDSNN-style unstructured 50% mask usually breaks 2:4 somewhere --
  // the motivating fact for the projection utility.
  Rng rng(6);
  Tensor w(Shape{128});
  w.fill_uniform(rng, 0.5F, 1.0F);
  // Zero a random half (unstructured).
  for (int64_t i = 0; i < w.numel(); ++i) {
    if (rng.bernoulli(0.5)) w.at(i) = 0.0F;
  }
  EXPECT_FALSE(satisfies_nm(w, {2, 4}));
}

}  // namespace
}  // namespace ndsnn::sparse
