#include "sparse/bcsr.hpp"

#include <gtest/gtest.h>

#include "sparse/csr.hpp"
#include "tensor/random.hpp"

namespace ndsnn::sparse {
namespace {

using tensor::Rng;
using tensor::Shape;
using tensor::Tensor;

TEST(BcsrTest, RoundTripDenseWithPadding) {
  // 3x5 with 2x2 blocks: the grid is 2x3 block rows/cols with a padded
  // bottom row and right column.
  Tensor dense(Shape{3, 5}, std::vector<float>{1, 0, 0, 0, 2,  //
                                               0, 0, 0, 0, 0,  //
                                               0, 3, 0, 0, 0});
  const Bcsr bcsr = Bcsr::from_dense(dense, 2, 2);
  EXPECT_EQ(bcsr.rows(), 3);
  EXPECT_EQ(bcsr.cols(), 5);
  EXPECT_EQ(bcsr.nnz(), 3);
  EXPECT_EQ(bcsr.block_count(), 3);        // (0,0), (0,2), (1,0)
  EXPECT_EQ(bcsr.stored_values(), 3 * 4);  // dense 2x2 blocks
  EXPECT_EQ(bcsr.block_row_count(), 2);
  const Tensor back = bcsr.to_dense();
  ASSERT_EQ(back.shape(), dense.shape());
  for (int64_t i = 0; i < dense.numel(); ++i) EXPECT_EQ(back.at(i), dense.at(i));
}

TEST(BcsrTest, BlockStructure) {
  Tensor dense(Shape{4, 8});
  dense.at(0, 0) = 1.0F;  // block (0, 0)
  dense.at(3, 7) = 2.0F;  // block (0, 1) with 4x4 blocks
  const Bcsr bcsr = Bcsr::from_dense(dense, 4, 4);
  ASSERT_EQ(bcsr.block_row_ptr().size(), 2U);
  EXPECT_EQ(bcsr.block_row_ptr()[0], 0);
  EXPECT_EQ(bcsr.block_row_ptr()[1], 2);
  ASSERT_EQ(bcsr.block_col_idx().size(), 2U);
  EXPECT_EQ(bcsr.block_col_idx()[0], 0);
  EXPECT_EQ(bcsr.block_col_idx()[1], 1);
  EXPECT_DOUBLE_EQ(bcsr.occupancy(), 2.0 / 32.0);
  EXPECT_DOUBLE_EQ(bcsr.sparsity(), 30.0 / 32.0);
}

TEST(BcsrTest, CsrAndBcsrAgreeOnThresholdSemantics) {
  // Regression pin: both formats use the STRICT compare |w| > threshold,
  // so entries exactly at the threshold are dropped by both. Keep this
  // in sync with CsrTest.ThresholdDropsTinyEntries.
  Tensor dense(Shape{2, 4}, std::vector<float>{0.5F, 1e-3F, -1e-3F, 0.0F,  //
                                               -0.5F, 0.25F, 2e-2F, 0.0F});
  for (const float threshold : {0.0F, 1e-3F, 2e-2F, 0.25F, 0.5F}) {
    const Csr csr = Csr::from_dense(dense, threshold);
    const Bcsr bcsr = Bcsr::from_dense(dense, 2, 2, threshold);
    EXPECT_EQ(bcsr.nnz(), csr.nnz()) << "threshold=" << threshold;
    const Tensor a = csr.to_dense();
    const Tensor b = bcsr.to_dense();
    for (int64_t i = 0; i < dense.numel(); ++i) {
      EXPECT_EQ(b.at(i), a.at(i)) << "threshold=" << threshold << " i=" << i;
    }
  }
  // |w| == threshold is dropped (strict), in both formats.
  EXPECT_EQ(Csr::from_dense(dense, 0.5F).nnz(), 0);
  EXPECT_EQ(Bcsr::from_dense(dense, 2, 2, 0.5F).nnz(), 0);
  EXPECT_EQ(Bcsr::from_dense(dense, 2, 2, 0.5F).block_count(), 0);
  // Negative thresholds are rejected by both.
  EXPECT_THROW((void)Bcsr::from_dense(dense, 2, 2, -1.0F), std::invalid_argument);
}

TEST(BcsrTest, FromNmPacksAlignedGroups) {
  Rng rng(31);
  Tensor w(Shape{16, 32});
  w.fill_uniform(rng, 0.5F, 1.0F);  // no exact zeros before projection
  const Bcsr bcsr = Bcsr::from_nm(w, {2, 4}, /*block_rows=*/4);
  EXPECT_EQ(bcsr.block_cols(), 4);
  // 32 % 4 == 0: block columns line up with the N:M groups, every block
  // is exactly half full, and every block survives.
  EXPECT_EQ(bcsr.block_count(), 4 * 8);
  EXPECT_DOUBLE_EQ(bcsr.occupancy(), 0.5);
  EXPECT_DOUBLE_EQ(bcsr.sparsity(), 0.5);
  // from_nm projects a copy; the source tensor is untouched.
  EXPECT_EQ(w.count_zeros(), 0);
  // The packed matrix equals the projected source.
  Tensor projected = w;
  project_nm(projected, {2, 4});
  const Tensor back = bcsr.to_dense();
  for (int64_t i = 0; i < w.numel(); ++i) EXPECT_EQ(back.at(i), projected.at(i));
}

TEST(BcsrTest, FromWeightsReshapesConvKernels) {
  Rng rng(13);
  Tensor w(Shape{8, 3, 5, 5});
  w.fill_uniform(rng, -1.0F, 1.0F);
  const Bcsr bcsr = Bcsr::from_weights(w, 4, 4);
  EXPECT_EQ(bcsr.rows(), 8);
  EXPECT_EQ(bcsr.cols(), 75);
  EXPECT_EQ(bcsr.nnz(), w.numel());
  EXPECT_THROW((void)Bcsr::from_weights(Tensor(Shape{5}), 4, 4), std::invalid_argument);
}

TEST(BcsrTest, EmptyAndInvalidInputs) {
  const Bcsr empty = Bcsr::from_dense(Tensor(Shape{6, 6}), 2, 3);
  EXPECT_EQ(empty.nnz(), 0);
  EXPECT_EQ(empty.block_count(), 0);
  EXPECT_DOUBLE_EQ(empty.occupancy(), 0.0);
  EXPECT_DOUBLE_EQ(empty.sparsity(), 1.0);
  const Tensor out = empty.spmm(Tensor(Shape{6, 4}, 1.0F));
  for (int64_t i = 0; i < out.numel(); ++i) EXPECT_EQ(out.at(i), 0.0F);

  EXPECT_THROW((void)Bcsr::from_dense(Tensor(Shape{2, 2, 2}), 2, 2), std::invalid_argument);
  EXPECT_THROW((void)Bcsr::from_dense(Tensor(Shape{2, 2}), 0, 2), std::invalid_argument);
  EXPECT_THROW((void)Bcsr::from_dense(Tensor(Shape{2, 2}), 2, 0), std::invalid_argument);
}

TEST(BcsrTest, SpmmShapeMismatchThrows) {
  const Bcsr bcsr = Bcsr::from_dense(Tensor(Shape{4, 6}, 1.0F), 2, 2);
  EXPECT_THROW((void)bcsr.spmm(Tensor(Shape{5, 3})), std::invalid_argument);
  EXPECT_THROW((void)bcsr.spmm_t(Tensor(Shape{3, 5})), std::invalid_argument);
  EXPECT_THROW((void)bcsr.spmm(Tensor(Shape{6})), std::invalid_argument);
}

TEST(BcsrTest, StorageBitsAccounting) {
  // 2 stored 2x2 blocks, 2 block rows: 2*4 values * 8 bits + 2 block
  // indices * 16 + (2+1) pointers * 16 = 64 + 32 + 48 = 144.
  Tensor dense(Shape{4, 4});
  dense.at(0, 0) = 1.0F;
  dense.at(3, 3) = 2.0F;
  const Bcsr bcsr = Bcsr::from_dense(dense, 2, 2);
  ASSERT_EQ(bcsr.block_count(), 2);
  EXPECT_EQ(bcsr.storage_bits(8, 16), 144);
}

TEST(BcsrTest, MeasureWeightsAgreesWithBuiltFormat) {
  // Regression pin: the allocation-free scan the runtime's backend
  // heuristic uses must report exactly what building the format would
  // (same strict threshold, same padded-edge-block accounting) — a
  // silent divergence would misroute layers to the wrong kernel.
  Rng rng(91);
  for (int round = 0; round < 20; ++round) {
    const int64_t rows = 1 + rng.uniform_int(30);
    const int64_t cols = 1 + rng.uniform_int(30);
    const int64_t br = 1 + rng.uniform_int(5);
    const int64_t bc = 1 + rng.uniform_int(5);
    const float threshold = rng.bernoulli(0.5) ? 0.0F : 0.3F;
    Tensor w(Shape{rows, cols});
    w.fill_uniform(rng, -1.0F, 1.0F);
    for (int64_t i = 0; i < w.numel(); ++i) {
      if (rng.bernoulli(0.6)) w.at(i) = 0.0F;
    }
    const BcsrStats stats = Bcsr::measure_weights(w, br, bc, threshold);
    const Bcsr built = Bcsr::from_dense(w, br, bc, threshold);
    const std::string ctx = "round " + std::to_string(round);
    EXPECT_EQ(stats.nnz, built.nnz()) << ctx;
    EXPECT_EQ(stats.occupied_blocks, built.block_count()) << ctx;
    EXPECT_EQ(stats.occupied_blocks * stats.block_size, built.stored_values()) << ctx;
    EXPECT_DOUBLE_EQ(stats.occupancy(), built.occupancy()) << ctx;
    EXPECT_DOUBLE_EQ(stats.sparsity(), built.sparsity()) << ctx;
  }
  EXPECT_THROW((void)Bcsr::measure_weights(Tensor(Shape{5}), 4, 4), std::invalid_argument);
  EXPECT_THROW((void)Bcsr::measure_weights(Tensor(Shape{4, 4}), 0, 4),
               std::invalid_argument);
}

TEST(BcsrTest, StorageTradeoffVsCsr) {
  // On an aligned 2:4 pattern BCSR stores twice the values of CSR but a
  // quarter of the indices (4x4 blocks, 8 nonzeros per block).
  Rng rng(77);
  Tensor w(Shape{64, 64});
  w.fill_uniform(rng, 0.5F, 1.0F);
  const Bcsr bcsr = Bcsr::from_nm(w, {2, 4}, 4);
  Tensor projected = w;
  project_nm(projected, {2, 4});
  const Csr csr = Csr::from_dense(projected);
  EXPECT_EQ(bcsr.nnz(), csr.nnz());
  EXPECT_EQ(bcsr.stored_values(), 2 * csr.nnz());
  EXPECT_EQ(bcsr.block_count() * 8, csr.nnz());
}

}  // namespace
}  // namespace ndsnn::sparse
