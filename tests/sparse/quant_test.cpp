// Quantised value planes: code round-trips, packing, and the error
// contract of every quantised kernel (spmm / spmm_t / spmv_gather /
// scatter_row, CSR and BCSR).
//
// The contract under test (sparse/quant.hpp): each reconstructed value
// is within scale/2 of its fp32 source, so a quantised kernel output
// differs from the fp32 kernel by at most sum_k (scale_k / 2) * |x_k|
// over the terms it accumulates — a *provable* per-output bound, so
// these randomized checks can run from the CI-varied env seed without
// ever being flaky. The absolute 1e-2 (int8) / 5e-2 (int4) tolerances
// the runtime documents are asserted on the pinned-regime scenario they
// are stated for (binary spikes, LeNet-scale fc1 weights, fixed seed).
#include "sparse/quant.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "../testing_env.hpp"
#include "sparse/bcsr.hpp"
#include "sparse/csr.hpp"
#include "tensor/random.hpp"

namespace ndsnn::sparse {
namespace {

using tensor::Rng;
using tensor::Shape;
using tensor::Tensor;

Tensor random_masked(int64_t rows, int64_t cols, double sparsity, Rng& rng,
                     float amp = 0.5F) {
  Tensor w(Shape{rows, cols});
  w.fill_uniform(rng, -amp, amp);
  for (int64_t i = 0; i < w.numel(); ++i) {
    if (rng.uniform01() < sparsity) w.at(i) = 0.0F;
  }
  return w;
}

Tensor spike_input(int64_t rows, int64_t cols, double rate, Rng& rng) {
  Tensor x(Shape{rows, cols});
  for (int64_t i = 0; i < x.numel(); ++i) {
    if (rng.uniform01() < rate) x.at(i) = 1.0F;
  }
  return x;
}

float max_abs_diff(const Tensor& a, const Tensor& b) {
  float worst = 0.0F;
  for (int64_t i = 0; i < a.numel(); ++i) {
    worst = std::max(worst, std::fabs(a.at(i) - b.at(i)));
  }
  return worst;
}

TEST(QuantPlaneTest, CodesRoundTripWithinHalfScale) {
  Rng rng(difftest::env_seed() ^ 0xDEC0DE01ULL);
  for (const Precision p : {Precision::kInt8, Precision::kInt4}) {
    for (const bool symmetric : {true, false}) {
      std::vector<float> values;
      std::vector<int64_t> group_ptr = {0};
      for (int g = 0; g < 17; ++g) {
        const int64_t count = rng.uniform_int(9);  // includes empty groups
        for (int64_t i = 0; i < count; ++i) {
          // Mix of zeros (pruned entries) and values on varied ranges.
          values.push_back(rng.bernoulli(0.3)
                               ? 0.0F
                               : static_cast<float>(rng.uniform01() * 2.0 - 1.0));
        }
        group_ptr.push_back(static_cast<int64_t>(values.size()));
      }
      float reported_err = -1.0F;
      const QuantPlane plane =
          quantize_grouped(values.data(), group_ptr.data(),
                           static_cast<int64_t>(group_ptr.size()) - 1, p, symmetric,
                           &reported_err);
      ASSERT_TRUE(plane.present());
      EXPECT_EQ(plane.value_count, static_cast<int64_t>(values.size()));
      float worst = 0.0F;
      for (std::size_t g = 0; g + 1 < group_ptr.size(); ++g) {
        const float bound = plane.scale[g] * 0.5F + 1e-6F;
        for (int64_t k = group_ptr[g]; k < group_ptr[g + 1]; ++k) {
          const float v = values[static_cast<std::size_t>(k)];
          const float dq = plane.dequant(static_cast<int64_t>(g), k);
          EXPECT_LE(std::fabs(dq - v), bound)
              << precision_tag(p) << " sym=" << symmetric << " group " << g;
          if (v == 0.0F) {
            // Pruned entries must reconstruct exactly (code == zero-point).
            EXPECT_EQ(dq, 0.0F);
          }
          worst = std::max(worst, std::fabs(dq - v));
        }
      }
      EXPECT_FLOAT_EQ(reported_err, worst);
    }
  }
}

TEST(QuantPlaneTest, Int4PackingHandlesOddCountsAndFullRange) {
  // All 16 int4 codes survive a pack/unpack round trip, odd count.
  std::vector<float> values;
  for (int q = -7; q <= 7; ++q) values.push_back(static_cast<float>(q));
  std::vector<int64_t> group_ptr = {0, static_cast<int64_t>(values.size())};
  const QuantPlane plane =
      quantize_grouped(values.data(), group_ptr.data(), 1, Precision::kInt4);
  ASSERT_EQ(plane.value_count % 2, 1);
  EXPECT_FLOAT_EQ(plane.scale[0], 1.0F);
  for (std::size_t k = 0; k < values.size(); ++k) {
    EXPECT_EQ(static_cast<float>(plane.code(static_cast<int64_t>(k))),
              values[k]);
  }
}

TEST(QuantPlaneTest, ParseAndTags) {
  EXPECT_EQ(parse_precision("int8"), Precision::kInt8);
  EXPECT_EQ(parse_precision("int4"), Precision::kInt4);
  EXPECT_EQ(parse_precision("fp32"), Precision::kFp32);
  EXPECT_THROW(parse_precision("int2"), std::invalid_argument);
  EXPECT_STREQ(precision_tag(Precision::kInt4), "int4");
  EXPECT_EQ(precision_value_bits(Precision::kInt4), 4);
  EXPECT_EQ(precision_value_bits(Precision::kInt8), 8);
}

TEST(QuantTest, RelativeErrorMagnitudesMatchTheHeuristicExpectations) {
  Rng rng(difftest::env_seed() ^ 0xE44ULL);
  const Tensor w = random_masked(64, 96, 0.8, rng);
  EXPECT_EQ(relative_quant_error(w, Precision::kFp32), 0.0F);
  // Per-row symmetric scales: int8 lands near 1/254, int4 near 1/14.
  EXPECT_LE(relative_quant_error(w, Precision::kInt8), 0.01F);
  EXPECT_LE(relative_quant_error(w, Precision::kInt4), 0.1F);
  EXPECT_GT(relative_quant_error(w, Precision::kInt4),
            relative_quant_error(w, Precision::kInt8));
}

TEST(QuantTest, FakeQuantizeRowsIsIdempotentAndMatchesCsrQuantize) {
  Rng rng(difftest::env_seed() ^ 0x1D3ULL);
  Tensor w = random_masked(24, 40, 0.7, rng);
  const std::vector<float> scales = fake_quantize_rows(w, Precision::kInt8);
  Tensor again = w;
  const std::vector<float> scales2 = fake_quantize_rows(again, Precision::kInt8);
  for (int64_t i = 0; i < w.numel(); ++i) {
    // Re-quantising a fake-quantised tensor reproduces the same codes;
    // scales may shift by a rounding ulp, so values agree to ~1e-6 rel.
    EXPECT_NEAR(again.at(i), w.at(i), 2e-6F * std::fabs(w.at(i)) + 1e-12F);
  }
  // Csr::quantize on the original weights produces the same scales and
  // reconstructed values as fake_quantize_rows (shared row grouping).
  Tensor original = random_masked(24, 40, 0.7, rng);
  Tensor faked = original;
  const std::vector<float> fake_scales = fake_quantize_rows(faked, Precision::kInt8);
  Csr csr = Csr::from_dense(original);
  csr.quantize(Precision::kInt8);
  for (int64_t r = 0; r < csr.rows(); ++r) {
    EXPECT_FLOAT_EQ(csr.quant().scale[static_cast<std::size_t>(r)],
                    fake_scales[static_cast<std::size_t>(r)]);
  }
  EXPECT_LE(max_abs_diff(csr.to_dense(), faked), 0.0F);
  (void)scales;
  (void)scales2;
}

TEST(QuantTest, CsrSpmmTWithinAnalyticBoundOfFp32) {
  Rng rng(difftest::env_seed() ^ 0xABCD01ULL);
  for (const Precision p : {Precision::kInt8, Precision::kInt4}) {
    for (const bool symmetric : {true, false}) {
      const Tensor w = random_masked(33, 57, 0.85, rng);
      const Csr fp32 = Csr::from_dense(w);
      Csr q = Csr::from_dense(w);
      q.quantize(p, symmetric);
      Tensor x(Shape{5, 57});
      x.fill_uniform(rng, -1.0F, 1.0F);
      const Tensor want = fp32.spmm_t(x);
      const Tensor got = q.spmm_t(x);
      // Per output [i, r]: |diff| <= (scale_r / 2) * sum_k |x[i, col_k]|.
      for (int64_t i = 0; i < 5; ++i) {
        for (int64_t r = 0; r < fp32.rows(); ++r) {
          double xsum = 0.0;
          for (int64_t k = fp32.row_ptr()[static_cast<std::size_t>(r)];
               k < fp32.row_ptr()[static_cast<std::size_t>(r) + 1]; ++k) {
            xsum += std::fabs(x.at(i, fp32.col_idx()[static_cast<std::size_t>(k)]));
          }
          const double bound =
              0.5 * q.quant().scale[static_cast<std::size_t>(r)] * xsum + 1e-4;
          EXPECT_LE(std::fabs(got.at(i, r) - want.at(i, r)), bound)
              << precision_tag(p) << " sym=" << symmetric << " i=" << i << " r=" << r;
        }
      }
    }
  }
}

/// All kernels of both formats agree with the fp32 kernels running on
/// the *dequantised* weights to reassociation-level precision — the
/// same effective-weights comparison the runtime differential harness
/// makes per op.
TEST(QuantTest, QuantKernelsConsistentWithDequantisedWeights) {
  Rng rng(difftest::env_seed() ^ 0xFEED02ULL);
  for (const Precision p : {Precision::kInt8, Precision::kInt4}) {
    for (const bool symmetric : {true, false}) {
      const Tensor w = random_masked(30, 44, 0.8, rng);
      Csr q = Csr::from_dense(w);
      q.quantize(p, symmetric);
      const Tensor deq = q.to_dense();
      const Csr ref = Csr::from_dense(deq);
      const float wmax = 1.0F;  // |w| <= 0.5, inputs <= 1: slack covers reassociation
      const float tol = 1e-3F * wmax;

      Tensor x(Shape{4, 44});
      x.fill_uniform(rng, -1.0F, 1.0F);
      EXPECT_LE(max_abs_diff(q.spmm_t(x), ref.spmm_t(x)), tol);

      Tensor b(Shape{30, 7});
      b.fill_uniform(rng, -1.0F, 1.0F);
      // spmm consumes B [cols, n] of the *transposed* semantic; build
      // a matching right-hand side for this shape.
      Tensor b2(Shape{44, 7});
      b2.fill_uniform(rng, -1.0F, 1.0F);
      EXPECT_LE(max_abs_diff(q.spmm(b2), ref.spmm(b2)), tol);

      std::vector<float> xv(44);
      for (auto& v : xv) v = static_cast<float>(rng.uniform01() * 2.0 - 1.0);
      const auto y_q = q.matvec(xv);
      const auto y_ref = ref.matvec(xv);
      for (std::size_t i = 0; i < y_q.size(); ++i) {
        EXPECT_NEAR(y_q[i], y_ref[i], tol);
      }

      // Event kernels run on the transposed structure, quantised after
      // the transpose (per-input groups).
      Csr qt = Csr::from_dense(w).transposed();
      qt.quantize(p, symmetric);
      const Csr ref_t = Csr::from_dense(qt.to_dense());
      const Tensor xs = spike_input(3, 30, 0.3, rng);
      std::vector<int32_t> active;
      std::vector<double> acc_q(44), acc_ref(44);
      for (int64_t i = 0; i < 3; ++i) {
        active.clear();
        for (int64_t j = 0; j < 30; ++j) {
          if (xs.at(i, j) != 0.0F) active.push_back(static_cast<int32_t>(j));
        }
        std::fill(acc_q.begin(), acc_q.end(), 0.0);
        std::fill(acc_ref.begin(), acc_ref.end(), 0.0);
        const float* xrow = xs.data() + i * 30;
        qt.spmv_gather(xrow, active.data(), static_cast<int64_t>(active.size()),
                       acc_q.data());
        ref_t.spmv_gather(xrow, active.data(), static_cast<int64_t>(active.size()),
                          acc_ref.data());
        for (std::size_t c = 0; c < acc_q.size(); ++c) {
          EXPECT_NEAR(acc_q[c], acc_ref[c], tol) << "row " << i;
        }
      }

      std::vector<float> out_q(44 * 2, 0.0F), out_ref(44 * 2, 0.0F);
      qt.scatter_row(7, 1.5F, out_q.data(), 2);
      ref_t.scatter_row(7, 1.5F, out_ref.data(), 2);
      for (std::size_t i = 0; i < out_q.size(); ++i) {
        EXPECT_NEAR(out_q[i], out_ref[i], tol);
      }
      (void)b;
    }
  }
}

TEST(QuantTest, BcsrKernelsConsistentWithDequantisedWeights) {
  Rng rng(difftest::env_seed() ^ 0xB5C4ULL);
  for (const Precision p : {Precision::kInt8, Precision::kInt4}) {
    // Odd shapes exercise edge blocks; 4x4 hits the specialized fp32
    // workers on the reference side.
    const Tensor w = random_masked(27, 38, 0.6, rng);
    Bcsr q = Bcsr::from_dense(w, 4, 4);
    const int64_t stored_before = q.stored_values();
    const double occupancy_before = q.occupancy();
    q.quantize(p);
    EXPECT_EQ(q.stored_values(), stored_before);
    EXPECT_DOUBLE_EQ(q.occupancy(), occupancy_before);
    const Bcsr ref = Bcsr::from_dense(q.to_dense(), 4, 4);
    const float tol = 1e-3F;

    Tensor b(Shape{38, 9});
    b.fill_uniform(rng, -1.0F, 1.0F);
    EXPECT_LE(max_abs_diff(q.spmm(b), ref.spmm(b)), tol) << precision_tag(p);

    Tensor x(Shape{3, 38});
    x.fill_uniform(rng, -1.0F, 1.0F);
    EXPECT_LE(max_abs_diff(q.spmm_t(x), ref.spmm_t(x)), tol) << precision_tag(p);

    Bcsr qt = Bcsr::from_dense(w, 4, 4).transposed();
    qt.quantize(p);
    const Bcsr ref_t = Bcsr::from_dense(qt.to_dense(), 4, 4);
    const Tensor xs = spike_input(2, 27, 0.4, rng);
    std::vector<int32_t> active;
    std::vector<double> acc_q(38), acc_ref(38);
    for (int64_t i = 0; i < 2; ++i) {
      active.clear();
      for (int64_t j = 0; j < 27; ++j) {
        if (xs.at(i, j) != 0.0F) active.push_back(static_cast<int32_t>(j));
      }
      std::fill(acc_q.begin(), acc_q.end(), 0.0);
      std::fill(acc_ref.begin(), acc_ref.end(), 0.0);
      const float* xrow = xs.data() + i * 27;
      qt.spmv_gather(xrow, active.data(), static_cast<int64_t>(active.size()), acc_q.data());
      ref_t.spmv_gather(xrow, active.data(), static_cast<int64_t>(active.size()),
                        acc_ref.data());
      for (std::size_t c = 0; c < acc_q.size(); ++c) {
        EXPECT_NEAR(acc_q[c], acc_ref[c], tol);
      }
    }

    std::vector<float> out_q(38 * 3, 0.0F), out_ref(38 * 3, 0.0F);
    qt.scatter_row(5, 2.0F, out_q.data(), 3);
    ref_t.scatter_row(5, 2.0F, out_ref.data(), 3);
    for (std::size_t i = 0; i < out_q.size(); ++i) {
      EXPECT_NEAR(out_q[i], out_ref[i], tol);
    }
  }
}

/// The documented absolute tolerances, asserted in the regime they are
/// stated for: LeNet-scale fc1 weights ([120 x 400], |w| <= 0.12 — the
/// He-init scale of a fan-in-400 layer — at 0.9 sparsity) with binary
/// spike inputs at a 10% firing rate. Fixed seed: tolerance checks
/// against the *original* fp32 weights depend on the realized
/// weight/input draw, so they are pinned, not env-seeded.
TEST(QuantTest, DocumentedTolerancesHoldInTheSpikeRegime) {
  Rng rng(20260728ULL);
  const Tensor w = random_masked(120, 400, 0.9, rng, 0.12F);
  const Csr fp32 = Csr::from_dense(w);
  const Tensor x = spike_input(64, 400, 0.1, rng);
  const Tensor want = fp32.spmm_t(x);
  for (const auto& [p, tol] : {std::pair{Precision::kInt8, 1e-2F},
                               std::pair{Precision::kInt4, 5e-2F}}) {
    Csr q = Csr::from_dense(w);
    q.quantize(p);
    EXPECT_LE(max_abs_diff(q.spmm_t(x), want), tol) << precision_tag(p);
  }
}

TEST(QuantTest, MemoryBytesShrinkWithPrecision) {
  Rng rng(difftest::env_seed() ^ 0x9EEULL);
  const Tensor w = random_masked(64, 128, 0.9, rng);
  const Csr fp32 = Csr::from_dense(w);
  Csr q8 = Csr::from_dense(w);
  q8.quantize(Precision::kInt8);
  Csr q4 = Csr::from_dense(w);
  q4.quantize(Precision::kInt4);
  EXPECT_LT(q8.memory_bytes(), fp32.memory_bytes());
  EXPECT_LT(q4.memory_bytes(), q8.memory_bytes());
  // Values went 4 bytes -> 1: the value-plane delta is ~3 * nnz minus
  // the per-row scale/zero overhead.
  EXPECT_LE(fp32.memory_bytes() - q8.memory_bytes(),
            3 * fp32.nnz());
  EXPECT_GE(fp32.memory_bytes() - q8.memory_bytes(),
            3 * fp32.nnz() - (fp32.rows() * 5 + 8));
  EXPECT_EQ(q8.nnz(), fp32.nnz());  // nnz survives the value-array release

  Bcsr b8 = Bcsr::from_dense(w, 4, 4);
  const Bcsr bfp = Bcsr::from_dense(w, 4, 4);
  b8.quantize(Precision::kInt8);
  EXPECT_LT(b8.memory_bytes(), bfp.memory_bytes());
}

TEST(QuantTest, MisuseThrows) {
  Rng rng(7);
  const Tensor w = random_masked(8, 8, 0.5, rng);
  Csr csr = Csr::from_dense(w);
  csr.quantize(Precision::kInt8);
  EXPECT_THROW(csr.quantize(Precision::kInt8), std::logic_error);
  EXPECT_THROW((void)csr.transposed(), std::logic_error);
  Bcsr bcsr = Bcsr::from_dense(w, 4, 4);
  bcsr.quantize(Precision::kInt4);
  EXPECT_THROW(bcsr.quantize(Precision::kInt4), std::logic_error);
  EXPECT_THROW((void)bcsr.transposed(), std::logic_error);
  // kFp32 is a no-op, not an error.
  Csr plain = Csr::from_dense(w);
  EXPECT_EQ(plain.quantize(Precision::kFp32), 0.0F);
  EXPECT_FALSE(plain.quantized());
}

}  // namespace
}  // namespace ndsnn::sparse
