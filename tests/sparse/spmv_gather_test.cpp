// Event-driven gather/scatter kernels vs naive dense references.
//
// spmv_gather runs on the *transposed* weight structure (Wᵀ), so these
// tests pin three properties: (1) transposed() round-trips exactly,
// (2) gathering only the nonzero entries of x reproduces the full
// dense-activation product bitwise (skipped zero terms are exact
// no-ops), and (3) scatter_row matches a per-row dense reference.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "../testing_env.hpp"
#include "sparse/bcsr.hpp"
#include "sparse/csr.hpp"
#include "tensor/random.hpp"
#include "tensor/tensor.hpp"

namespace ndsnn::sparse {
namespace {

using tensor::Rng;
using tensor::Shape;
using tensor::Tensor;

/// Random [rows, cols] weights with roughly `sparsity` zeros.
Tensor random_sparse(int64_t rows, int64_t cols, double sparsity, Rng& rng) {
  Tensor w(Shape{rows, cols});
  w.fill_uniform(rng, -1.0F, 1.0F);
  for (int64_t i = 0; i < w.numel(); ++i) {
    if (rng.uniform01() < sparsity) w.at(i) = 0.0F;
  }
  return w;
}

/// Random vector with roughly `rate` nonzero entries (spike-like).
std::vector<float> random_sparse_vec(int64_t n, double rate, Rng& rng) {
  std::vector<float> x(static_cast<std::size_t>(n), 0.0F);
  for (auto& v : x) {
    if (rng.uniform01() < rate) v = rng.bernoulli(0.5) ? 1.0F : 0.5F;
  }
  return x;
}

std::vector<int32_t> active_indices(const std::vector<float>& x) {
  std::vector<int32_t> active;
  for (std::size_t j = 0; j < x.size(); ++j) {
    if (x[j] != 0.0F) active.push_back(static_cast<int32_t>(j));
  }
  return active;
}

TEST(SpmvGatherTest, CsrTransposedRoundTrips) {
  Rng rng(difftest::env_seed() ^ 0x7A11ULL);
  for (const auto& dims : {std::pair<int64_t, int64_t>{7, 13}, {16, 16}, {1, 9}, {9, 1}}) {
    const Tensor w = random_sparse(dims.first, dims.second, 0.7, rng);
    const Csr csr = Csr::from_dense(w);
    const Csr t = csr.transposed();
    EXPECT_EQ(t.rows(), csr.cols());
    EXPECT_EQ(t.cols(), csr.rows());
    EXPECT_EQ(t.nnz(), csr.nnz());
    const Tensor back = t.transposed().to_dense();
    for (int64_t i = 0; i < w.numel(); ++i) {
      ASSERT_EQ(back.at(i), csr.to_dense().at(i)) << "flat " << i;
    }
    // Transposed rows must keep ascending column order (the gather
    // kernels rely on it for the bitwise accumulation contract).
    for (int64_t r = 0; r < t.rows(); ++r) {
      for (int64_t k = t.row_ptr()[static_cast<std::size_t>(r)] + 1;
           k < t.row_ptr()[static_cast<std::size_t>(r) + 1]; ++k) {
        ASSERT_LT(t.col_idx()[static_cast<std::size_t>(k - 1)],
                  t.col_idx()[static_cast<std::size_t>(k)]);
      }
    }
  }
}

TEST(SpmvGatherTest, CsrGatherMatchesSpmmTBitwise) {
  Rng rng(difftest::env_seed() ^ 0x6A7EULL);
  for (const double weight_sparsity : {0.0, 0.5, 0.9}) {
    for (const double rate : {0.0, 0.1, 0.5, 1.0}) {
      const int64_t out = 17, in = 29;
      const Tensor w = random_sparse(out, in, weight_sparsity, rng);
      const Csr csr = Csr::from_dense(w);
      const Csr csr_t = csr.transposed();
      const std::vector<float> x = random_sparse_vec(in, rate, rng);
      const auto active = active_indices(x);

      // Dense-activation reference: one-row spmm_t.
      Tensor xrow(Shape{1, in});
      for (int64_t j = 0; j < in; ++j) xrow.at(j) = x[static_cast<std::size_t>(j)];
      const Tensor want = csr.spmm_t(xrow);

      std::vector<double> acc(static_cast<std::size_t>(out), 0.0);
      csr_t.spmv_gather(x.data(), active.data(), static_cast<int64_t>(active.size()),
                        acc.data());
      for (int64_t r = 0; r < out; ++r) {
        ASSERT_EQ(static_cast<float>(acc[static_cast<std::size_t>(r)]), want.at(r))
            << "ws=" << weight_sparsity << " rate=" << rate << " out " << r;
      }
    }
  }
}

TEST(SpmvGatherTest, CsrGatherEmptyActiveListIsZero) {
  Rng rng(difftest::env_seed() ^ 0xE3ULL);
  const Tensor w = random_sparse(5, 8, 0.3, rng);
  const Csr csr_t = Csr::from_dense(w).transposed();
  const std::vector<float> x(8, 0.0F);
  std::vector<double> acc(5, 0.0);
  csr_t.spmv_gather(x.data(), nullptr, 0, acc.data());
  for (const double v : acc) EXPECT_EQ(v, 0.0);
}

TEST(SpmvGatherTest, CsrScatterRowMatchesDenseReference) {
  Rng rng(difftest::env_seed() ^ 0x5CA7ULL);
  const int64_t rows = 11, cols = 6;
  const Tensor w = random_sparse(rows, cols, 0.4, rng);
  const Csr csr = Csr::from_dense(w);
  for (const int64_t stride : {int64_t{1}, int64_t{3}}) {
    for (int64_t r = 0; r < rows; ++r) {
      const float x = 0.75F;
      std::vector<float> got(static_cast<std::size_t>(cols * stride), 0.0F);
      std::vector<float> want = got;
      csr.scatter_row(r, x, got.data(), stride);
      for (int64_t c = 0; c < cols; ++c) {
        if (w.at(r, c) != 0.0F) want[static_cast<std::size_t>(c * stride)] = w.at(r, c) * x;
      }
      for (std::size_t i = 0; i < want.size(); ++i) {
        ASSERT_EQ(got[i], want[i]) << "row " << r << " stride " << stride << " slot " << i;
      }
    }
  }
}

TEST(SpmvGatherTest, BcsrTransposedPreservesNnzAndValues) {
  Rng rng(difftest::env_seed() ^ 0xB5ULL);
  for (const auto& blocks : {std::pair<int64_t, int64_t>{4, 4}, {2, 3}, {1, 4}}) {
    const Tensor w = random_sparse(13, 18, 0.8, rng);
    const Bcsr bcsr = Bcsr::from_dense(w, blocks.first, blocks.second);
    const Bcsr t = bcsr.transposed();
    EXPECT_EQ(t.rows(), bcsr.cols());
    EXPECT_EQ(t.cols(), bcsr.rows());
    EXPECT_EQ(t.nnz(), bcsr.nnz());
    EXPECT_EQ(t.block_rows(), blocks.second);
    EXPECT_EQ(t.block_cols(), blocks.first);
    const Tensor dense = bcsr.to_dense();
    const Tensor dense_t = t.to_dense();
    for (int64_t r = 0; r < dense.dim(0); ++r) {
      for (int64_t c = 0; c < dense.dim(1); ++c) {
        ASSERT_EQ(dense_t.at(c, r), dense.at(r, c)) << r << "," << c;
      }
    }
  }
}

TEST(SpmvGatherTest, BcsrGatherMatchesSpmmTBitwise) {
  Rng rng(difftest::env_seed() ^ 0xBCE5ULL);
  for (const auto& blocks : {std::pair<int64_t, int64_t>{4, 4}, {2, 2}, {3, 5}}) {
    for (const double rate : {0.0, 0.15, 1.0}) {
      const int64_t out = 14, in = 26;  // deliberately ragged vs the blocks
      const Tensor w = random_sparse(out, in, 0.6, rng);
      const Bcsr bcsr = Bcsr::from_dense(w, blocks.first, blocks.second);
      const Bcsr bcsr_t = bcsr.transposed();
      const std::vector<float> x = random_sparse_vec(in, rate, rng);
      const auto active = active_indices(x);

      Tensor xrow(Shape{1, in});
      for (int64_t j = 0; j < in; ++j) xrow.at(j) = x[static_cast<std::size_t>(j)];
      const Tensor want = bcsr.spmm_t(xrow);

      std::vector<double> acc(static_cast<std::size_t>(out), 0.0);
      bcsr_t.spmv_gather(x.data(), active.data(), static_cast<int64_t>(active.size()),
                         acc.data());
      for (int64_t r = 0; r < out; ++r) {
        ASSERT_EQ(static_cast<float>(acc[static_cast<std::size_t>(r)]), want.at(r))
            << blocks.first << "x" << blocks.second << " rate=" << rate << " out " << r;
      }
    }
  }
}

TEST(SpmvGatherTest, BcsrScatterRowMatchesDenseReference) {
  Rng rng(difftest::env_seed() ^ 0xB5CAULL);
  const int64_t rows = 10, cols = 7;
  const Tensor w = random_sparse(rows, cols, 0.5, rng);
  const Bcsr bcsr = Bcsr::from_dense(w, 4, 4);
  const Tensor dense = bcsr.to_dense();
  const int64_t stride = 2;
  for (int64_t r = 0; r < rows; ++r) {
    const float x = -1.25F;
    std::vector<float> got(static_cast<std::size_t>(cols * stride), 0.0F);
    std::vector<float> want = got;
    bcsr.scatter_row(r, x, got.data(), stride);
    for (int64_t c = 0; c < cols; ++c) {
      // BCSR stores whole blocks: explicit zeros scatter 0-contributions,
      // which the reference reproduces by multiplying the stored value.
      want[static_cast<std::size_t>(c * stride)] = dense.at(r, c) * x;
    }
    for (std::size_t i = 0; i < want.size(); ++i) {
      ASSERT_EQ(got[i], want[i]) << "row " << r << " slot " << i;
    }
  }
}

// ------------------------------------------------------------------
// Binary-spike int32 gather fast path (uniform-scale quantised planes)
// and the channel-strip scatter_row_range the parallel conv event path
// dispatches.

TEST(SpmvGatherTest, CsrBinaryGatherMatchesGeneralQuantisedPath) {
  Rng rng(difftest::env_seed() ^ 0xB1A4ULL);
  for (const Precision p : {Precision::kInt8, Precision::kInt4}) {
    const int64_t out = 17, in = 29;
    const Tensor w = random_sparse(out, in, 0.6, rng);
    Csr uniform_t = Csr::from_dense(w).transposed();
    (void)uniform_t.quantize(p, /*symmetric=*/true, /*uniform_scale=*/true);
    ASSERT_TRUE(uniform_t.quant().uniform);
    // All scales identical (replicated per group).
    for (const float s : uniform_t.quant().scale) {
      ASSERT_EQ(s, uniform_t.quant().scale[0]);
    }

    // Binary spikes: every active value is exactly 1.0.
    std::vector<float> x(static_cast<std::size_t>(in), 0.0F);
    for (auto& v : x) {
      if (rng.uniform01() < 0.3) v = 1.0F;
    }
    const auto active = active_indices(x);

    std::vector<double> general(static_cast<std::size_t>(out), 0.0);
    uniform_t.spmv_gather(x.data(), active.data(), static_cast<int64_t>(active.size()),
                          general.data());
    std::vector<double> fast(static_cast<std::size_t>(out), 0.0);
    std::vector<int32_t> iacc(static_cast<std::size_t>(out), -7);  // kernel must zero it
    uniform_t.spmv_gather(x.data(), active.data(), static_cast<int64_t>(active.size()),
                          fast.data(), iacc.data());
    for (int64_t r = 0; r < out; ++r) {
      // scale * code_k is exact in double and the partial integer sums
      // stay far below 2^53/2^24, so summing scale-weighted codes one
      // by one (general) equals scale * (int32 code sum) (fast) exactly
      // at these sizes.
      ASSERT_EQ(fast[static_cast<std::size_t>(r)], general[static_cast<std::size_t>(r)])
          << precision_tag(p) << " out " << r;
    }
  }
}

TEST(SpmvGatherTest, CsrBinaryFastPathDeclinesNonBinaryInput) {
  Rng rng(difftest::env_seed() ^ 0xD2C1ULL);
  const Tensor w = random_sparse(9, 12, 0.4, rng);
  Csr uniform_t = Csr::from_dense(w).transposed();
  (void)uniform_t.quantize(Precision::kInt8, true, /*uniform_scale=*/true);
  // 0.5-valued activations must take the general (scale-folding) path
  // even when iacc is offered — passing iacc must not change results.
  std::vector<float> x(12, 0.0F);
  x[2] = 0.5F;
  x[7] = 1.0F;
  const auto active = active_indices(x);
  std::vector<double> with_iacc(9, 0.0), without(9, 0.0);
  std::vector<int32_t> iacc(9, 0);
  uniform_t.spmv_gather(x.data(), active.data(), 2, without.data());
  uniform_t.spmv_gather(x.data(), active.data(), 2, with_iacc.data(), iacc.data());
  for (int64_t r = 0; r < 9; ++r) {
    ASSERT_EQ(with_iacc[static_cast<std::size_t>(r)], without[static_cast<std::size_t>(r)]);
  }
}

TEST(SpmvGatherTest, BcsrBinaryGatherMatchesGeneralQuantisedPath) {
  Rng rng(difftest::env_seed() ^ 0xBB14ULL);
  const int64_t out = 14, in = 26;
  const Tensor w = random_sparse(out, in, 0.5, rng);
  Bcsr uniform_t = Bcsr::from_dense(w, 4, 4).transposed();
  (void)uniform_t.quantize(Precision::kInt8, true, /*uniform_scale=*/true);
  ASSERT_TRUE(uniform_t.quant().uniform);
  std::vector<float> x(static_cast<std::size_t>(in), 0.0F);
  for (auto& v : x) {
    if (rng.uniform01() < 0.25) v = 1.0F;
  }
  const auto active = active_indices(x);
  std::vector<double> general(static_cast<std::size_t>(out), 0.0);
  uniform_t.spmv_gather(x.data(), active.data(), static_cast<int64_t>(active.size()),
                        general.data());
  std::vector<double> fast(static_cast<std::size_t>(out), 0.0);
  std::vector<int32_t> iacc(static_cast<std::size_t>(out), 99);
  uniform_t.spmv_gather(x.data(), active.data(), static_cast<int64_t>(active.size()),
                        fast.data(), iacc.data());
  for (int64_t r = 0; r < out; ++r) {
    ASSERT_EQ(fast[static_cast<std::size_t>(r)], general[static_cast<std::size_t>(r)]) << r;
  }
}

TEST(SpmvGatherTest, UniformScaleQuantErrorStaysInsideGlobalBound) {
  // Uniform-scale error contract: every reconstructed value within
  // scale/2 of its source, scale = global max|w| / qmax.
  Rng rng(difftest::env_seed() ^ 0x0B0DULL);
  const Tensor w = random_sparse(12, 20, 0.5, rng);
  Csr csr = Csr::from_dense(w);
  const float err = csr.quantize(Precision::kInt8, true, /*uniform_scale=*/true);
  EXPECT_LE(err, csr.quant().scale[0] * 0.5F + 1e-7F);
  EXPECT_LE(err, w.abs_max() / 127.0F * 0.5F + 1e-7F);
  // relative_quant_error's uniform mode is the measurement the kAuto
  // precision heuristic gates event-path layers on: it must equal the
  // error of the plane quantize() actually builds, normalized by the
  // global max.
  const float measured = relative_quant_error(w, Precision::kInt8, 0.0F,
                                              /*uniform_scale=*/true);
  EXPECT_NEAR(measured, err / w.abs_max(), 1e-6F);
}

TEST(SpmvGatherTest, ScatterRowRangeStripsTileTheFullScatter) {
  // Any partition of the columns into strips must reproduce the
  // unrestricted scatter exactly — per output element the strip only
  // selects, never reorders.
  Rng rng(difftest::env_seed() ^ 0x57A1ULL);
  const int64_t rows = 9, cols = 13, stride = 3;
  const Tensor w = random_sparse(rows, cols, 0.4, rng);
  for (const bool quantise : {false, true}) {
    Csr csr = Csr::from_dense(w);
    Bcsr bcsr = Bcsr::from_dense(w, 4, 4);
    if (quantise) {
      (void)csr.quantize(Precision::kInt8);
      (void)bcsr.quantize(Precision::kInt8);
    }
    for (int64_t r = 0; r < rows; ++r) {
      std::vector<float> want_csr(static_cast<std::size_t>(cols * stride), 0.0F);
      std::vector<float> want_bcsr = want_csr;
      csr.scatter_row(r, 0.5F, want_csr.data(), stride);
      bcsr.scatter_row(r, 0.5F, want_bcsr.data(), stride);
      for (const int64_t strip : {int64_t{1}, int64_t{4}, int64_t{5}}) {
        std::vector<float> got_csr(static_cast<std::size_t>(cols * stride), 0.0F);
        std::vector<float> got_bcsr = got_csr;
        for (int64_t c0 = 0; c0 < cols; c0 += strip) {
          const int64_t c1 = std::min(cols, c0 + strip);
          csr.scatter_row_range(r, 0.5F, got_csr.data(), stride, c0, c1);
          bcsr.scatter_row_range(r, 0.5F, got_bcsr.data(), stride, c0, c1);
        }
        for (std::size_t i = 0; i < want_csr.size(); ++i) {
          ASSERT_EQ(got_csr[i], want_csr[i])
              << (quantise ? "quant" : "fp32") << " csr row " << r << " strip " << strip;
          ASSERT_EQ(got_bcsr[i], want_bcsr[i])
              << (quantise ? "quant" : "fp32") << " bcsr row " << r << " strip " << strip;
        }
      }
    }
  }
}

}  // namespace
}  // namespace ndsnn::sparse
