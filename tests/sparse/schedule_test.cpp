#include "sparse/schedule.hpp"

#include <gtest/gtest.h>

namespace ndsnn::sparse {
namespace {

TEST(SparsityRampTest, EndpointsMatchEq4) {
  SparsityRamp ramp(0.5, 0.95, /*t0=*/0, /*delta_t=*/10, /*rounds=*/10);
  EXPECT_DOUBLE_EQ(ramp.at(0), 0.5);
  EXPECT_DOUBLE_EQ(ramp.at(100), 0.95);
  EXPECT_DOUBLE_EQ(ramp.at(1000), 0.95);  // clamped past the end
}

TEST(SparsityRampTest, CubicShapeAtMidpoint) {
  // Eq. 4 at progress 1/2: theta_f + (theta_i - theta_f) * (1/2)^3.
  SparsityRamp ramp(0.5, 0.9, 0, 10, 10);
  const double expected = 0.9 + (0.5 - 0.9) * 0.125;
  EXPECT_NEAR(ramp.at(50), expected, 1e-12);
}

TEST(SparsityRampTest, MonotoneNonDecreasing) {
  SparsityRamp ramp(0.6, 0.99, 0, 5, 20);
  double prev = ramp.at(0);
  for (int64_t t = 1; t <= 100; ++t) {
    const double cur = ramp.at(t);
    EXPECT_GE(cur, prev - 1e-12);
    prev = cur;
  }
}

TEST(SparsityRampTest, LinearExponentOption) {
  SparsityRamp ramp(0.0, 0.8, 0, 10, 10, /*exponent=*/1.0);
  EXPECT_NEAR(ramp.at(50), 0.4, 1e-12);
}

TEST(SparsityRampTest, RejectsDecreasingSparsity) {
  EXPECT_THROW(SparsityRamp(0.9, 0.5, 0, 10, 10), std::invalid_argument);
}

TEST(SparsityRampTest, RejectsBadParameters) {
  EXPECT_THROW(SparsityRamp(0.5, 1.0, 0, 10, 10), std::invalid_argument);
  EXPECT_THROW(SparsityRamp(0.5, 0.9, 0, 0, 10), std::invalid_argument);
  EXPECT_THROW(SparsityRamp(0.5, 0.9, 0, 10, 0), std::invalid_argument);
  EXPECT_THROW(SparsityRamp(0.5, 0.9, 0, 10, 10, 0.0), std::invalid_argument);
}

TEST(DeathRateTest, EndpointsMatchEq5) {
  DeathRateSchedule d(0.5, 0.05, 0, 10, 10);
  EXPECT_DOUBLE_EQ(d.at(0), 0.5);              // cos(0) = 1
  EXPECT_NEAR(d.at(100), 0.05, 1e-12);         // cos(pi) = -1
}

TEST(DeathRateTest, MidpointIsAverage) {
  DeathRateSchedule d(0.4, 0.1, 0, 10, 10);
  EXPECT_NEAR(d.at(50), 0.25, 1e-12);  // cos(pi/2) = 0
}

TEST(DeathRateTest, MonotoneNonIncreasing) {
  DeathRateSchedule d(0.5, 0.0, 0, 7, 13);
  double prev = d.at(0);
  for (int64_t t = 1; t <= 7 * 13; ++t) {
    const double cur = d.at(t);
    EXPECT_LE(cur, prev + 1e-12);
    prev = cur;
  }
}

TEST(DeathRateTest, RejectsBadRates) {
  EXPECT_THROW(DeathRateSchedule(1.5, 0.0, 0, 10, 10), std::invalid_argument);
  EXPECT_THROW(DeathRateSchedule(0.3, 0.4, 0, 10, 10), std::invalid_argument);
}

TEST(DropGrowTest, Equations6Through9) {
  // N = 1000, active = 500, d = 0.2, theta_target = 0.6.
  // Eq. 6: N_pre = 500.  Eq. 7: D = 100.  Eq. 8: N_post = 400.
  // Eq. 9: G = N - N_post - theta*N = 1000 - 400 - 600 = 0.
  const auto c = drop_grow_counts(1000, 500, 0.2, 0.6);
  EXPECT_EQ(c.active_before, 500);
  EXPECT_EQ(c.drop, 100);
  EXPECT_EQ(c.active_after, 400);
  EXPECT_EQ(c.grow, 0);
}

TEST(DropGrowTest, GrowsTowardLooserTarget) {
  // theta_target = 0.55 -> target active = 450 -> grow 50 after dropping 100.
  const auto c = drop_grow_counts(1000, 500, 0.2, 0.55);
  EXPECT_EQ(c.drop, 100);
  EXPECT_EQ(c.grow, 50);
}

TEST(DropGrowTest, GrowNeverExceedsDrop) {
  // Even if the target asks for MORE active weights than before the drop,
  // growth is capped at the drop count (non-zeros never increase).
  const auto c = drop_grow_counts(1000, 500, 0.1, 0.0);
  EXPECT_EQ(c.drop, 50);
  EXPECT_LE(c.grow, c.drop);
}

TEST(DropGrowTest, NetNonzerosNeverIncrease) {
  for (const double d : {0.05, 0.2, 0.5}) {
    for (const double theta : {0.5, 0.7, 0.9, 0.99}) {
      const auto c = drop_grow_counts(10000, 4000, d, theta);
      EXPECT_LE(c.active_after + c.grow, c.active_before)
          << "d=" << d << " theta=" << theta;
    }
  }
}

TEST(DropGrowTest, DropRaisedWhenRampOutpacesDeathRate) {
  // d = 0.05 would only drop 25 of 500, but the target sparsity 0.7
  // requires active to fall to 300: the drop must cover the gap.
  const auto c = drop_grow_counts(1000, 500, 0.05, 0.7);
  EXPECT_EQ(c.drop, 200);
  EXPECT_EQ(c.active_after + c.grow, 300);
}

TEST(DropGrowTest, TinyDeathRateStillTracksSchedule) {
  // Simulate a full ramp with a very small death rate: the final active
  // count must still hit the Eq. 4 target exactly.
  const int64_t n = 10000;
  SparsityRamp ramp(0.5, 0.99, 0, 10, 20);
  DeathRateSchedule death(0.05, 0.0, 0, 10, 20);
  auto active = static_cast<int64_t>(0.5 * n);
  for (int64_t q = 1; q <= 20; ++q) {
    const auto c = drop_grow_counts(n, active, death.at(q * 10), ramp.at(q * 10));
    active = c.active_after + c.grow;
  }
  EXPECT_NEAR(static_cast<double>(active), 0.01 * n, 0.002 * n);
}

TEST(DropGrowTest, RejectsBadInputs) {
  EXPECT_THROW((void)drop_grow_counts(0, 0, 0.1, 0.5), std::invalid_argument);
  EXPECT_THROW((void)drop_grow_counts(10, 11, 0.1, 0.5), std::invalid_argument);
  EXPECT_THROW((void)drop_grow_counts(10, 5, 1.1, 0.5), std::invalid_argument);
  EXPECT_THROW((void)drop_grow_counts(10, 5, 0.1, 1.0), std::invalid_argument);
}

struct ScheduleCase {
  double theta_i, theta_f, d0, dmin;
};

class NdsnnScheduleProperty : public ::testing::TestWithParam<ScheduleCase> {};

TEST_P(NdsnnScheduleProperty, SimulatedMaskSizeConvergesToTarget) {
  // Simulate rounds of drop-and-grow over a single 10k-weight layer and
  // verify the active count lands on (1 - theta_f) * N.
  const auto p = GetParam();
  const int64_t n = 10000;
  const int64_t rounds = 50, delta_t = 10;
  SparsityRamp ramp(p.theta_i, p.theta_f, 0, delta_t, rounds);
  DeathRateSchedule death(p.d0, p.dmin, 0, delta_t, rounds);

  auto active = static_cast<int64_t>((1.0 - p.theta_i) * n + 0.5);
  for (int64_t q = 1; q <= rounds; ++q) {
    const int64_t t = q * delta_t;
    const auto c = drop_grow_counts(n, active, death.at(t), ramp.at(t));
    active = c.active_after + c.grow;
  }
  const auto target = static_cast<int64_t>((1.0 - p.theta_f) * n);
  EXPECT_NEAR(static_cast<double>(active), static_cast<double>(target),
              0.02 * static_cast<double>(n));
}

INSTANTIATE_TEST_SUITE_P(
    PaperConfigs, NdsnnScheduleProperty,
    ::testing::Values(ScheduleCase{0.5, 0.95, 0.5, 0.05},
                      ScheduleCase{0.8, 0.95, 0.5, 0.05},
                      ScheduleCase{0.6, 0.98, 0.3, 0.05},
                      ScheduleCase{0.8, 0.99, 0.5, 0.0},
                      ScheduleCase{0.9, 0.99, 0.2, 0.1}));

}  // namespace
}  // namespace ndsnn::sparse
