#include "sparse/csr.hpp"

#include <gtest/gtest.h>

#include "tensor/random.hpp"

namespace ndsnn::sparse {
namespace {

using tensor::Rng;
using tensor::Shape;
using tensor::Tensor;

TEST(CsrTest, RoundTripDense) {
  Tensor dense(Shape{3, 4}, std::vector<float>{0, 1, 0, 2,  //
                                               0, 0, 0, 0,  //
                                               3, 0, 4, 0});
  const Csr csr = Csr::from_dense(dense);
  EXPECT_EQ(csr.nnz(), 4);
  EXPECT_NEAR(csr.sparsity(), 8.0 / 12.0, 1e-12);
  const Tensor back = csr.to_dense();
  for (int64_t i = 0; i < dense.numel(); ++i) EXPECT_EQ(back.at(i), dense.at(i));
}

TEST(CsrTest, RowPtrStructure) {
  Tensor dense(Shape{2, 2}, std::vector<float>{1, 0, 0, 2});
  const Csr csr = Csr::from_dense(dense);
  ASSERT_EQ(csr.row_ptr().size(), 3U);
  EXPECT_EQ(csr.row_ptr()[0], 0);
  EXPECT_EQ(csr.row_ptr()[1], 1);
  EXPECT_EQ(csr.row_ptr()[2], 2);
  EXPECT_EQ(csr.col_idx()[0], 0);
  EXPECT_EQ(csr.col_idx()[1], 1);
}

TEST(CsrTest, MatvecMatchesDense) {
  Rng rng(6);
  Tensor dense(Shape{8, 10});
  dense.fill_uniform(rng, -1.0F, 1.0F);
  // Sparsify half.
  for (int64_t i = 0; i < dense.numel(); i += 2) dense.at(i) = 0.0F;
  const Csr csr = Csr::from_dense(dense);

  std::vector<float> x(10);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = static_cast<float>(i) * 0.1F;
  const auto y = csr.matvec(x);
  ASSERT_EQ(y.size(), 8U);
  for (int64_t r = 0; r < 8; ++r) {
    double expect = 0.0;
    for (int64_t c = 0; c < 10; ++c) {
      expect += static_cast<double>(dense.at(r, c)) * x[static_cast<std::size_t>(c)];
    }
    EXPECT_NEAR(y[static_cast<std::size_t>(r)], expect, 1e-4);
  }
}

TEST(CsrTest, MatvecSizeMismatchThrows) {
  const Csr csr = Csr::from_dense(Tensor(Shape{2, 3}, 1.0F));
  EXPECT_THROW((void)csr.matvec(std::vector<float>(4)), std::invalid_argument);
}

TEST(CsrTest, EmptyMatrixHandled) {
  const Csr csr = Csr::from_dense(Tensor(Shape{3, 3}));
  EXPECT_EQ(csr.nnz(), 0);
  EXPECT_DOUBLE_EQ(csr.sparsity(), 1.0);
  const auto y = csr.matvec(std::vector<float>(3, 1.0F));
  for (const float v : y) EXPECT_EQ(v, 0.0F);
}

TEST(CsrTest, StorageBitsAccounting) {
  // 4 nnz, 3 rows, 8-bit values, 16-bit indices:
  // 4*(8+16) + (3+1)*16 = 96 + 64 = 160.
  Tensor dense(Shape{3, 4}, std::vector<float>{0, 1, 0, 2, 0, 0, 0, 0, 3, 0, 4, 0});
  const Csr csr = Csr::from_dense(dense);
  EXPECT_EQ(csr.storage_bits(8, 16), 160);
}

TEST(CsrTest, HigherSparsityUsesFewerBits) {
  Rng rng(7);
  Tensor a(Shape{20, 20});
  a.fill_uniform(rng, 0.5F, 1.0F);
  Tensor b = a;
  for (int64_t i = 0; i < b.numel(); ++i) {
    if (i % 10 != 0) b.at(i) = 0.0F;  // 90% sparse
  }
  EXPECT_LT(Csr::from_dense(b).storage_bits(32, 16),
            Csr::from_dense(a).storage_bits(32, 16));
}

TEST(CsrTest, RejectsNonMatrix) {
  EXPECT_THROW((void)Csr::from_dense(Tensor(Shape{2, 2, 2})), std::invalid_argument);
}

TEST(CsrTest, ThresholdDropsTinyEntries) {
  Tensor dense(Shape{2, 3}, std::vector<float>{0.5F, 1e-3F, -1e-3F,  //
                                               -0.5F, 0.0F, 2e-2F});
  // Default threshold 0 keeps every nonzero, however tiny.
  EXPECT_EQ(Csr::from_dense(dense).nnz(), 5);
  // |x| > 1e-2 keeps only the deliberate weights.
  const Csr csr = Csr::from_dense(dense, 1e-2F);
  EXPECT_EQ(csr.nnz(), 3);
  const Tensor back = csr.to_dense();
  EXPECT_EQ(back.at(0, 0), 0.5F);
  EXPECT_EQ(back.at(0, 1), 0.0F);
  EXPECT_EQ(back.at(0, 2), 0.0F);
  EXPECT_EQ(back.at(1, 0), -0.5F);
  EXPECT_EQ(back.at(1, 2), 2e-2F);
  // The threshold is strict: entries exactly at it are dropped. This is
  // pinned behavior — Bcsr::from_dense must agree (see
  // BcsrTest.CsrAndBcsrAgreeOnThresholdSemantics).
  EXPECT_EQ(Csr::from_dense(dense, 0.5F).nnz(), 0);
  // Negative thresholds are rejected.
  EXPECT_THROW((void)Csr::from_dense(dense, -1.0F), std::invalid_argument);
}

}  // namespace
}  // namespace ndsnn::sparse
