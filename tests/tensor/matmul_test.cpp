#include "tensor/matmul.hpp"

#include <gtest/gtest.h>

#include "tensor/random.hpp"

namespace ndsnn::tensor {
namespace {

TEST(MatmulTest, Known2x2) {
  Tensor a(Shape{2, 2}, std::vector<float>{1, 2, 3, 4});
  Tensor b(Shape{2, 2}, std::vector<float>{5, 6, 7, 8});
  const Tensor c = matmul(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 19.0F);
  EXPECT_FLOAT_EQ(c.at(0, 1), 22.0F);
  EXPECT_FLOAT_EQ(c.at(1, 0), 43.0F);
  EXPECT_FLOAT_EQ(c.at(1, 1), 50.0F);
}

TEST(MatmulTest, RectangularShapes) {
  Tensor a(Shape{2, 3}, std::vector<float>{1, 0, 2, 0, 1, 1});
  Tensor b(Shape{3, 1}, std::vector<float>{1, 2, 3});
  const Tensor c = matmul(a, b);
  EXPECT_EQ(c.shape(), Shape({2, 1}));
  EXPECT_FLOAT_EQ(c.at(0, 0), 7.0F);
  EXPECT_FLOAT_EQ(c.at(1, 0), 5.0F);
}

TEST(MatmulTest, MismatchThrows) {
  Tensor a(Shape{2, 3});
  Tensor b(Shape{2, 3});
  EXPECT_THROW((void)matmul(a, b), std::invalid_argument);
}

TEST(MatmulTest, TransposedVariantsAgreeWithExplicitTranspose) {
  Rng rng(11);
  Tensor a(Shape{4, 5});
  Tensor b(Shape{4, 6});
  a.fill_uniform(rng, -1.0F, 1.0F);
  b.fill_uniform(rng, -1.0F, 1.0F);

  // at = transpose(a): [5, 4]
  Tensor at(Shape{5, 4});
  for (int64_t i = 0; i < 4; ++i) {
    for (int64_t j = 0; j < 5; ++j) at.at(j, i) = a.at(i, j);
  }
  const Tensor expect = matmul(at, b);       // [5, 6]
  const Tensor got = matmul_tn(a, b);        // Aᵀ * B
  ASSERT_EQ(got.shape(), expect.shape());
  for (int64_t i = 0; i < got.numel(); ++i) EXPECT_NEAR(got.at(i), expect.at(i), 1e-5F);
}

TEST(MatmulTest, NtVariantAgreesWithExplicitTranspose) {
  Rng rng(12);
  Tensor a(Shape{3, 7});
  Tensor b(Shape{4, 7});
  a.fill_uniform(rng, -1.0F, 1.0F);
  b.fill_uniform(rng, -1.0F, 1.0F);

  Tensor bt(Shape{7, 4});
  for (int64_t i = 0; i < 4; ++i) {
    for (int64_t j = 0; j < 7; ++j) bt.at(j, i) = b.at(i, j);
  }
  const Tensor expect = matmul(a, bt);  // [3, 4]
  const Tensor got = matmul_nt(a, b);
  ASSERT_EQ(got.shape(), expect.shape());
  for (int64_t i = 0; i < got.numel(); ++i) EXPECT_NEAR(got.at(i), expect.at(i), 1e-5F);
}

TEST(MatmulTest, AccumulatingVariantAddsIntoC) {
  Tensor a(Shape{1, 2}, std::vector<float>{1, 1});
  Tensor b(Shape{2, 1}, std::vector<float>{2, 3});
  Tensor c(Shape{1, 1}, std::vector<float>{10});
  matmul_acc(a, b, c);
  EXPECT_FLOAT_EQ(c.at(0, 0), 15.0F);
}

TEST(MatmulTest, SparseZeroRowsSkippedCorrectly) {
  // The kernel short-circuits zero A entries; verify results are exact.
  Tensor a(Shape{2, 3}, std::vector<float>{0, 0, 0, 1, 0, 2});
  Tensor b(Shape{3, 2}, std::vector<float>{1, 2, 3, 4, 5, 6});
  const Tensor c = matmul(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 0.0F);
  EXPECT_FLOAT_EQ(c.at(0, 1), 0.0F);
  EXPECT_FLOAT_EQ(c.at(1, 0), 11.0F);
  EXPECT_FLOAT_EQ(c.at(1, 1), 14.0F);
}

TEST(MatmulTest, IdentityIsNoop) {
  Rng rng(13);
  Tensor a(Shape{5, 5});
  a.fill_uniform(rng, -1.0F, 1.0F);
  Tensor eye(Shape{5, 5});
  for (int64_t i = 0; i < 5; ++i) eye.at(i, i) = 1.0F;
  const Tensor c = matmul(a, eye);
  for (int64_t i = 0; i < a.numel(); ++i) EXPECT_FLOAT_EQ(c.at(i), a.at(i));
}

}  // namespace
}  // namespace ndsnn::tensor
