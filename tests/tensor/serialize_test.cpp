#include "tensor/serialize.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <sstream>

#include "tensor/random.hpp"

namespace ndsnn::tensor {
namespace {

TEST(SerializeTest, RoundTrip) {
  Rng rng(3);
  Tensor t(Shape{3, 4, 5});
  t.fill_uniform(rng, -10.0F, 10.0F);

  std::stringstream buf;
  save_tensor(buf, t);
  const Tensor r = load_tensor(buf);
  ASSERT_EQ(r.shape(), t.shape());
  for (int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(r.at(i), t.at(i));
}

TEST(SerializeTest, ScalarRoundTrip) {
  Tensor t;
  t.at(0) = 42.0F;
  std::stringstream buf;
  save_tensor(buf, t);
  const Tensor r = load_tensor(buf);
  EXPECT_EQ(r.rank(), 0);
  EXPECT_EQ(r.at(0), 42.0F);
}

TEST(SerializeTest, BadMagicThrows) {
  std::stringstream buf("XXXXgarbage");
  EXPECT_THROW((void)load_tensor(buf), std::runtime_error);
}

TEST(SerializeTest, TruncatedStreamThrows) {
  Tensor t(Shape{10}, 1.0F);
  std::stringstream buf;
  save_tensor(buf, t);
  std::string s = buf.str();
  s.resize(s.size() / 2);
  std::stringstream cut(s);
  EXPECT_THROW((void)load_tensor(cut), std::runtime_error);
}

TEST(SerializeTest, EmptyStreamThrows) {
  std::stringstream buf;
  EXPECT_THROW((void)load_tensor(buf), std::runtime_error);
}

// Corrupt dims in the header must be rejected before any allocation:
// a flipped byte in a checkpoint is a clean error, not a terabyte
// std::vector. Header layout: magic(4) + version(4) + rank(4) + dims.
TEST(SerializeTest, CorruptDimsAreRejectedBeforeAllocation) {
  Tensor t(Shape{3, 4, 5}, 1.0F);
  std::stringstream buf;
  save_tensor(buf, t);
  const std::string good = buf.str();
  constexpr std::size_t kDim0Off = 12;

  const auto patch_dim0 = [&](int64_t bad) {
    std::string s = good;
    std::memcpy(&s[kDim0Off], &bad, sizeof(bad));
    return s;
  };

  {  // negative dimension
    std::stringstream cut(patch_dim0(-7));
    EXPECT_THROW((void)load_tensor(cut), std::runtime_error);
  }
  {  // single absurd dimension
    std::stringstream cut(patch_dim0(int64_t{1} << 40));
    EXPECT_THROW((void)load_tensor(cut), std::runtime_error);
  }
  {  // dims individually plausible but product implausible
    std::string s = good;
    const int64_t big = int64_t{1} << 20;
    for (int i = 0; i < 3; ++i) {
      std::memcpy(&s[kDim0Off + sizeof(int64_t) * static_cast<std::size_t>(i)], &big,
                  sizeof(big));
    }
    std::stringstream cut(s);
    EXPECT_THROW((void)load_tensor(cut), std::runtime_error);
  }
}

}  // namespace
}  // namespace ndsnn::tensor
