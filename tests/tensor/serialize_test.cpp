#include "tensor/serialize.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "tensor/random.hpp"

namespace ndsnn::tensor {
namespace {

TEST(SerializeTest, RoundTrip) {
  Rng rng(3);
  Tensor t(Shape{3, 4, 5});
  t.fill_uniform(rng, -10.0F, 10.0F);

  std::stringstream buf;
  save_tensor(buf, t);
  const Tensor r = load_tensor(buf);
  ASSERT_EQ(r.shape(), t.shape());
  for (int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(r.at(i), t.at(i));
}

TEST(SerializeTest, ScalarRoundTrip) {
  Tensor t;
  t.at(0) = 42.0F;
  std::stringstream buf;
  save_tensor(buf, t);
  const Tensor r = load_tensor(buf);
  EXPECT_EQ(r.rank(), 0);
  EXPECT_EQ(r.at(0), 42.0F);
}

TEST(SerializeTest, BadMagicThrows) {
  std::stringstream buf("XXXXgarbage");
  EXPECT_THROW((void)load_tensor(buf), std::runtime_error);
}

TEST(SerializeTest, TruncatedStreamThrows) {
  Tensor t(Shape{10}, 1.0F);
  std::stringstream buf;
  save_tensor(buf, t);
  std::string s = buf.str();
  s.resize(s.size() / 2);
  std::stringstream cut(s);
  EXPECT_THROW((void)load_tensor(cut), std::runtime_error);
}

TEST(SerializeTest, EmptyStreamThrows) {
  std::stringstream buf;
  EXPECT_THROW((void)load_tensor(buf), std::runtime_error);
}

}  // namespace
}  // namespace ndsnn::tensor
