#include "tensor/random.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace ndsnn::tensor {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(RngTest, Uniform01Range) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformIntRangeAndCoverage) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.uniform_int(10);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 10);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10U);
}

TEST(RngTest, UniformIntRejectsNonPositive) {
  Rng rng(1);
  EXPECT_THROW((void)rng.uniform_int(0), std::invalid_argument);
  EXPECT_THROW((void)rng.uniform_int(-3), std::invalid_argument);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(21);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.02);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(31);
  std::vector<int64_t> v(50);
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = static_cast<int64_t>(i);
  auto sorted = v;
  rng.shuffle(v);
  EXPECT_NE(v, sorted);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(55);
  Rng child = a.fork();
  // Parent and child should not track each other.
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == child.next_u64());
  EXPECT_LT(same, 2);
}

TEST(SplitMix64Test, KnownSequenceIsStable) {
  SplitMix64 sm(0);
  const uint64_t first = sm.next();
  SplitMix64 sm2(0);
  EXPECT_EQ(sm2.next(), first);
  EXPECT_NE(sm.next(), first);
}

}  // namespace
}  // namespace ndsnn::tensor
