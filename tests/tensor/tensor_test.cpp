#include "tensor/tensor.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "tensor/random.hpp"

namespace ndsnn::tensor {
namespace {

TEST(TensorTest, ZeroInitialized) {
  Tensor t(Shape{2, 3});
  EXPECT_EQ(t.numel(), 6);
  for (int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t.at(i), 0.0F);
}

TEST(TensorTest, FillValueConstructor) {
  Tensor t(Shape{4}, 2.5F);
  for (int64_t i = 0; i < 4; ++i) EXPECT_EQ(t.at(i), 2.5F);
}

TEST(TensorTest, FromValuesChecksCount) {
  EXPECT_NO_THROW(Tensor(Shape{2, 2}, std::vector<float>{1, 2, 3, 4}));
  EXPECT_THROW(Tensor(Shape{2, 2}, std::vector<float>{1, 2, 3}), std::invalid_argument);
}

TEST(TensorTest, TwoDAccess) {
  Tensor t(Shape{2, 3}, std::vector<float>{1, 2, 3, 4, 5, 6});
  EXPECT_EQ(t.at(0, 0), 1.0F);
  EXPECT_EQ(t.at(0, 2), 3.0F);
  EXPECT_EQ(t.at(1, 0), 4.0F);
  EXPECT_EQ(t.at(1, 2), 6.0F);
}

TEST(TensorTest, FourDAccessRowMajor) {
  Tensor t(Shape{2, 2, 2, 2});
  t.at4(1, 1, 1, 1) = 7.0F;
  EXPECT_EQ(t.at(15), 7.0F);
  t.at4(0, 1, 0, 1) = 3.0F;
  EXPECT_EQ(t.at(5), 3.0F);
}

TEST(TensorTest, ReshapePreservesData) {
  Tensor t(Shape{2, 3}, std::vector<float>{1, 2, 3, 4, 5, 6});
  const Tensor r = t.reshaped(Shape{3, 2});
  EXPECT_EQ(r.shape(), Shape({3, 2}));
  for (int64_t i = 0; i < 6; ++i) EXPECT_EQ(r.at(i), t.at(i));
}

TEST(TensorTest, ReshapeNumelMismatchThrows) {
  Tensor t(Shape{2, 3});
  EXPECT_THROW((void)t.reshaped(Shape{2, 4}), std::invalid_argument);
}

TEST(TensorTest, CopyIsDeep) {
  Tensor a(Shape{3}, 1.0F);
  Tensor b = a;
  b.at(0) = 9.0F;
  EXPECT_EQ(a.at(0), 1.0F);
}

TEST(TensorTest, SumAndZeroCount) {
  Tensor t(Shape{4}, std::vector<float>{0, 1, 0, 2});
  EXPECT_DOUBLE_EQ(t.sum(), 3.0);
  EXPECT_EQ(t.count_zeros(), 2);
}

TEST(TensorTest, AbsMax) {
  Tensor t(Shape{3}, std::vector<float>{-5, 2, 3});
  EXPECT_EQ(t.abs_max(), 5.0F);
}

TEST(TensorTest, FillUniformInRange) {
  Rng rng(1);
  Tensor t(Shape{1000});
  t.fill_uniform(rng, -2.0F, 3.0F);
  for (int64_t i = 0; i < t.numel(); ++i) {
    EXPECT_GE(t.at(i), -2.0F);
    EXPECT_LT(t.at(i), 3.0F);
  }
}

TEST(TensorTest, FillNormalMoments) {
  Rng rng(2);
  Tensor t(Shape{20000});
  t.fill_normal(rng, 1.0F, 2.0F);
  double mean = 0.0;
  for (int64_t i = 0; i < t.numel(); ++i) mean += t.at(i);
  mean /= static_cast<double>(t.numel());
  EXPECT_NEAR(mean, 1.0, 0.1);
  double var = 0.0;
  for (int64_t i = 0; i < t.numel(); ++i) var += (t.at(i) - mean) * (t.at(i) - mean);
  var /= static_cast<double>(t.numel());
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(TensorTest, KaimingStddev) {
  Rng rng(3);
  Tensor t(Shape{10000});
  t.fill_kaiming(rng, 50);
  double var = 0.0;
  for (int64_t i = 0; i < t.numel(); ++i) var += t.at(i) * t.at(i);
  var /= static_cast<double>(t.numel());
  EXPECT_NEAR(var, 2.0 / 50.0, 0.01);
}

TEST(TensorTest, KaimingRejectsBadFanIn) {
  Rng rng(4);
  Tensor t(Shape{4});
  EXPECT_THROW(t.fill_kaiming(rng, 0), std::invalid_argument);
}

}  // namespace
}  // namespace ndsnn::tensor
