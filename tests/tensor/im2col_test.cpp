#include "tensor/im2col.hpp"

#include <gtest/gtest.h>

#include "tensor/random.hpp"

namespace ndsnn::tensor {
namespace {

ConvGeometry simple_geom(int64_t n, int64_t c, int64_t hw, int64_t k, int64_t stride,
                         int64_t pad) {
  ConvGeometry g;
  g.batch = n;
  g.in_channels = c;
  g.in_h = hw;
  g.in_w = hw;
  g.kernel_h = k;
  g.kernel_w = k;
  g.stride = stride;
  g.padding = pad;
  return g;
}

TEST(ConvGeometryTest, OutputDims) {
  const auto g = simple_geom(1, 3, 32, 3, 1, 1);
  EXPECT_EQ(g.out_h(), 32);
  EXPECT_EQ(g.out_w(), 32);
  const auto g2 = simple_geom(1, 3, 32, 3, 2, 1);
  EXPECT_EQ(g2.out_h(), 16);
}

TEST(ConvGeometryTest, FloorDivisionOutputForNonTilingStride) {
  // (5 - 2) / 2 + 1 = 2 outputs; the last input column is unused.
  auto g = simple_geom(1, 1, 5, 2, 2, 0);
  EXPECT_NO_THROW(g.validate());
  EXPECT_EQ(g.out_h(), 2);
}

TEST(ConvGeometryTest, ValidationRejectsKernelTooLarge) {
  auto g = simple_geom(1, 1, 3, 5, 1, 0);
  EXPECT_THROW(g.validate(), std::invalid_argument);
}

TEST(Im2colTest, IdentityKernel1x1) {
  const auto g = simple_geom(2, 3, 4, 1, 1, 0);
  Rng rng(5);
  Tensor x(Shape{2, 3, 4, 4});
  x.fill_uniform(rng, -1.0F, 1.0F);
  const Tensor cols = im2col(x, g);
  EXPECT_EQ(cols.shape(), Shape({3, 2 * 16}));
  // Column (n, y, x) row c must equal x[n, c, y, x].
  for (int64_t n = 0; n < 2; ++n) {
    for (int64_t c = 0; c < 3; ++c) {
      for (int64_t p = 0; p < 16; ++p) {
        EXPECT_FLOAT_EQ(cols.at(c, n * 16 + p), x.at4(n, c, p / 4, p % 4));
      }
    }
  }
}

TEST(Im2colTest, PaddingProducesZeros) {
  const auto g = simple_geom(1, 1, 2, 3, 1, 1);
  Tensor x(Shape{1, 1, 2, 2}, std::vector<float>{1, 2, 3, 4});
  const Tensor cols = im2col(x, g);
  // Top-left output position, kernel (0,0) reads padded zero.
  EXPECT_FLOAT_EQ(cols.at(0, 0), 0.0F);
  // Kernel center (1,1) at output (0,0) reads x[0,0] = 1.
  EXPECT_FLOAT_EQ(cols.at(4, 0), 1.0F);
}

TEST(Im2colTest, Col2imIsAdjoint) {
  // <im2col(x), y> == <x, col2im(y)> for random x, y -- the defining
  // property the conv backward relies on.
  const auto g = simple_geom(2, 3, 6, 3, 1, 1);
  Rng rng(17);
  Tensor x(Shape{2, 3, 6, 6});
  x.fill_uniform(rng, -1.0F, 1.0F);
  Tensor y(Shape{g.patch_rows(), g.patch_cols()});
  y.fill_uniform(rng, -1.0F, 1.0F);

  const Tensor ax = im2col(x, g);
  const Tensor aty = col2im(y, g);

  double lhs = 0.0, rhs = 0.0;
  for (int64_t i = 0; i < ax.numel(); ++i) lhs += static_cast<double>(ax.at(i)) * y.at(i);
  for (int64_t i = 0; i < x.numel(); ++i) rhs += static_cast<double>(x.at(i)) * aty.at(i);
  EXPECT_NEAR(lhs, rhs, 1e-3);
}

TEST(Im2colTest, StridedGeometry) {
  const auto g = simple_geom(1, 1, 4, 2, 2, 0);
  Tensor x(Shape{1, 1, 4, 4});
  for (int64_t i = 0; i < 16; ++i) x.at(i) = static_cast<float>(i);
  const Tensor cols = im2col(x, g);
  EXPECT_EQ(cols.shape(), Shape({4, 4}));
  // Output (0,0) patch = {0, 1, 4, 5}; output (1,1) patch = {10, 11, 14, 15}.
  EXPECT_FLOAT_EQ(cols.at(0, 0), 0.0F);
  EXPECT_FLOAT_EQ(cols.at(3, 0), 5.0F);
  EXPECT_FLOAT_EQ(cols.at(0, 3), 10.0F);
  EXPECT_FLOAT_EQ(cols.at(3, 3), 15.0F);
}

TEST(Im2colTest, ShapeMismatchThrows) {
  const auto g = simple_geom(1, 2, 4, 3, 1, 1);
  Tensor x(Shape{1, 3, 4, 4});
  EXPECT_THROW((void)im2col(x, g), std::invalid_argument);
}

}  // namespace
}  // namespace ndsnn::tensor
