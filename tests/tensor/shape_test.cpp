#include "tensor/shape.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace ndsnn::tensor {
namespace {

TEST(ShapeTest, DefaultIsScalar) {
  Shape s;
  EXPECT_EQ(s.rank(), 0);
  EXPECT_EQ(s.numel(), 1);
}

TEST(ShapeTest, InitializerList) {
  Shape s{2, 3, 4};
  EXPECT_EQ(s.rank(), 3);
  EXPECT_EQ(s.dim(0), 2);
  EXPECT_EQ(s.dim(1), 3);
  EXPECT_EQ(s.dim(2), 4);
  EXPECT_EQ(s.numel(), 24);
}

TEST(ShapeTest, NegativeIndexing) {
  Shape s{2, 3, 4};
  EXPECT_EQ(s.dim(-1), 4);
  EXPECT_EQ(s.dim(-3), 2);
}

TEST(ShapeTest, OutOfRangeThrows) {
  Shape s{2, 3};
  EXPECT_THROW((void)s.dim(2), std::out_of_range);
  EXPECT_THROW((void)s.dim(-3), std::out_of_range);
}

TEST(ShapeTest, ZeroDimRejected) {
  EXPECT_THROW(Shape({2, 0, 3}), std::invalid_argument);
  EXPECT_THROW(Shape({-1}), std::invalid_argument);
}

TEST(ShapeTest, RowMajorStrides) {
  Shape s{2, 3, 4};
  const auto strides = s.strides();
  ASSERT_EQ(strides.size(), 3U);
  EXPECT_EQ(strides[0], 12);
  EXPECT_EQ(strides[1], 4);
  EXPECT_EQ(strides[2], 1);
}

TEST(ShapeTest, Equality) {
  EXPECT_EQ(Shape({2, 3}), Shape({2, 3}));
  EXPECT_NE(Shape({2, 3}), Shape({3, 2}));
  EXPECT_NE(Shape({2, 3}), Shape({2, 3, 1}));
}

TEST(ShapeTest, Str) {
  EXPECT_EQ(Shape({2, 3}).str(), "[2, 3]");
  EXPECT_EQ(Shape().str(), "[]");
}

}  // namespace
}  // namespace ndsnn::tensor
