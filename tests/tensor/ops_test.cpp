#include "tensor/ops.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ndsnn::tensor {
namespace {

Tensor vec(std::vector<float> v) {
  const auto n = static_cast<int64_t>(v.size());
  return Tensor(Shape{n}, std::move(v));
}

TEST(OpsTest, AddSubMul) {
  const Tensor a = vec({1, 2, 3});
  const Tensor b = vec({4, 5, 6});
  const Tensor s = add(a, b);
  EXPECT_EQ(s.at(0), 5.0F);
  EXPECT_EQ(s.at(2), 9.0F);
  const Tensor d = sub(b, a);
  EXPECT_EQ(d.at(0), 3.0F);
  const Tensor p = mul(a, b);
  EXPECT_EQ(p.at(1), 10.0F);
}

TEST(OpsTest, ShapeMismatchThrows) {
  const Tensor a = vec({1, 2, 3});
  const Tensor b(Shape{2});
  EXPECT_THROW((void)add(a, b), std::invalid_argument);
  Tensor c = a;
  EXPECT_THROW(mul_(c, b), std::invalid_argument);
}

TEST(OpsTest, ScaleAndAxpy) {
  Tensor a = vec({1, 2, 3});
  scale_(a, 2.0F);
  EXPECT_EQ(a.at(2), 6.0F);
  const Tensor b = vec({1, 1, 1});
  axpy_(a, -2.0F, b);
  EXPECT_EQ(a.at(0), 0.0F);
  EXPECT_EQ(a.at(2), 4.0F);
}

TEST(OpsTest, Map) {
  const Tensor a = vec({1, 4, 9});
  const Tensor r = map(a, [](float x) { return std::sqrt(x); });
  EXPECT_FLOAT_EQ(r.at(2), 3.0F);
}

TEST(OpsTest, SoftmaxRowsSumToOne) {
  Tensor logits(Shape{2, 3}, std::vector<float>{1, 2, 3, -1, 0, 1});
  const Tensor p = softmax_rows(logits);
  for (int64_t r = 0; r < 2; ++r) {
    double sum = 0.0;
    for (int64_t c = 0; c < 3; ++c) {
      EXPECT_GT(p.at(r, c), 0.0F);
      sum += p.at(r, c);
    }
    EXPECT_NEAR(sum, 1.0, 1e-6);
  }
  // Monotonicity in logits.
  EXPECT_LT(p.at(0, 0), p.at(0, 1));
  EXPECT_LT(p.at(0, 1), p.at(0, 2));
}

TEST(OpsTest, SoftmaxNumericallyStableForLargeLogits) {
  Tensor logits(Shape{1, 2}, std::vector<float>{1000.0F, 1001.0F});
  const Tensor p = softmax_rows(logits);
  EXPECT_FALSE(std::isnan(p.at(0, 0)));
  EXPECT_NEAR(p.at(0, 0) + p.at(0, 1), 1.0F, 1e-5F);
  EXPECT_GT(p.at(0, 1), p.at(0, 0));
}

TEST(OpsTest, ArgmaxRows) {
  Tensor m(Shape{2, 3}, std::vector<float>{1, 5, 2, 7, 0, 3});
  const auto idx = argmax_rows(m);
  ASSERT_EQ(idx.size(), 2U);
  EXPECT_EQ(idx[0], 1);
  EXPECT_EQ(idx[1], 0);
}

TEST(OpsTest, MeanAndL2Norm) {
  const Tensor a = vec({3, 4});
  EXPECT_DOUBLE_EQ(mean(a), 3.5);
  EXPECT_DOUBLE_EQ(l2_norm(a), 5.0);
}

TEST(OpsTest, SoftmaxRejectsNonMatrix) {
  Tensor t(Shape{2, 2, 2});
  EXPECT_THROW((void)softmax_rows(t), std::invalid_argument);
  EXPECT_THROW((void)argmax_rows(t), std::invalid_argument);
}

}  // namespace
}  // namespace ndsnn::tensor
