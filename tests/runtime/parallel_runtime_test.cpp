// Intra-op parallel execution must never change the numbers: a plan
// compiled with CompileOptions::num_threads in {1, 2, 8} partitions its
// kernels by output row / block row / batch row / output channel, and
// every output element is produced by exactly one chunk running the
// identical serial accumulation order — so fp32 plan outputs are
// bitwise identical across lane counts AND to the interpreted
// SpikingNetwork::predict, on every backend x activation pair. This is
// the acceptance gate of the row-partitioned kernel work (PR 5); the
// TSan CI job runs this suite to certify the pool data-race-free.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "testing.hpp"

namespace ndsnn::runtime {
namespace {

TEST(ParallelRuntimeTest, BitwiseIdenticalAcrossThreadCounts) {
  tensor::Rng rng(difftest::env_seed() ^ 0x9A11E7ULL);
  // A handful of harness configs: enough to hit conv + linear, CSR +
  // BCSR + dense, event + dense-activation layers; the full-scale sweep
  // lives in differential_test (serial plans).
  std::vector<difftest::NetConfig> cases;
  difftest::NetConfig pinned;  // big enough that chunks actually dispatch
  pinned.image = 16;
  pinned.batch = 3;
  pinned.sparsity = 0.9;
  pinned.seed = 11;
  cases.push_back(pinned);
  pinned.sparsity = 0.0;  // blocky -> BCSR layers
  pinned.block_keep = 0.25;
  pinned.seed = 12;
  cases.push_back(pinned);
  for (int i = 0; i < 4; ++i) cases.push_back(difftest::random_config(rng));

  for (std::size_t i = 0; i < cases.size(); ++i) {
    const difftest::NetConfig& cfg = cases[i];
    SCOPED_TRACE("config " + std::to_string(i) + ": " + cfg.str());
    const auto net = difftest::build_network(cfg);
    const tensor::Tensor batch = difftest::random_batch(cfg);
    const tensor::Tensor want = net->predict(batch);

    for (const int64_t threads : {int64_t{1}, int64_t{2}, int64_t{8}}) {
      runtime::CompileOptions opts = difftest::options_for(cfg);
      opts.num_threads = threads;
      const CompiledNetwork compiled = CompiledNetwork::compile(*net, opts);
      EXPECT_EQ(compiled.intra_op_threads(), threads);
      difftest::expect_bitwise(compiled.run(batch), want,
                               "num_threads=" + std::to_string(threads));
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

TEST(ParallelRuntimeTest, ForcedBackendsAndActivationsStayBitwiseAtEightLanes) {
  // Deterministic config, every backend x activation forced, 8 lanes:
  // covers the parallel dense fallback, spmm/spmm_t row partitioning,
  // the batch-row-parallel linear gather and the channel-strip conv
  // scatter in one sweep.
  difftest::NetConfig cfg;
  cfg.image = 16;
  cfg.batch = 4;
  cfg.timesteps = 2;
  cfg.sparsity = 0.9;
  cfg.seed = 29;
  const auto net = difftest::build_network(cfg);
  const tensor::Tensor batch = difftest::random_batch(cfg);
  const tensor::Tensor want = net->predict(batch);
  for (const Backend backend : difftest::all_backends()) {
    for (const ActivationMode activation : difftest::all_activation_modes()) {
      runtime::CompileOptions opts = difftest::options_for(cfg, backend, activation);
      opts.num_threads = 8;
      const CompiledNetwork compiled = CompiledNetwork::compile(*net, opts);
      difftest::expect_bitwise(compiled.run(batch), want,
                               std::string("backend=") + difftest::backend_name(backend) +
                                   " activation=" + difftest::activation_name(activation) +
                                   " threads=8");
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

TEST(ParallelRuntimeTest, QuantisedPlansDeterministicAcrossThreadCounts) {
  // Quantised kernels have no bitwise-vs-predict contract, but thread
  // count must still not change their output: compare the 2- and 8-lane
  // plans against the 1-lane plan of the same options, element for
  // element.
  difftest::NetConfig cfg;
  cfg.image = 16;
  cfg.batch = 3;
  cfg.timesteps = 2;
  cfg.sparsity = 0.9;
  cfg.seed = 31;
  const auto net = difftest::build_network(cfg);
  const tensor::Tensor batch = difftest::random_batch(cfg);
  for (const ActivationMode activation :
       {ActivationMode::kDense, ActivationMode::kEvent}) {
    runtime::CompileOptions opts = difftest::options_for(cfg, Backend::kCsr, activation);
    opts.weight_precision = WeightPrecision::kInt8;
    opts.num_threads = 1;
    const CompiledNetwork serial = CompiledNetwork::compile(*net, opts);
    const tensor::Tensor want = serial.run(batch);
    for (const int64_t threads : {int64_t{2}, int64_t{8}}) {
      opts.num_threads = threads;
      const CompiledNetwork pooled = CompiledNetwork::compile(*net, opts);
      difftest::expect_bitwise(pooled.run(batch), want,
                               std::string("int8 ") + difftest::activation_name(activation) +
                                   " threads=" + std::to_string(threads));
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

}  // namespace
}  // namespace ndsnn::runtime
