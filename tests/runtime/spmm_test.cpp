// CSR / BCSR spmm / spmm_t equivalence against the dense GEMM kernels
// and a naive reference on random masked matrices, plus the degenerate
// shapes real plans hit (the runtime's correctness cornerstone).
#include <gtest/gtest.h>

#include "sparse/bcsr.hpp"
#include "sparse/csr.hpp"
#include "sparse/mask.hpp"
#include "tensor/matmul.hpp"
#include "tensor/random.hpp"
#include "testing.hpp"

namespace ndsnn::sparse {
namespace {

using tensor::Rng;
using tensor::Shape;
using tensor::Tensor;

Tensor random_masked(Shape shape, double sparsity, Rng& rng) {
  Tensor dense(shape);
  dense.fill_uniform(rng, -1.0F, 1.0F);
  const auto active =
      static_cast<int64_t>(static_cast<double>(dense.numel()) * (1.0 - sparsity));
  const Mask mask(shape, active, rng);
  mask.apply(dense);
  return dense;
}

/// Naive triple-loop references (double accumulation), deliberately
/// independent of tensor::matmul so kernel and oracle share no code.
Tensor naive_ab(const Tensor& a, const Tensor& b) {
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor c(Shape{m, n});
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (int64_t kk = 0; kk < k; ++kk) {
        acc += static_cast<double>(a.at(i, kk)) * static_cast<double>(b.at(kk, j));
      }
      c.at(i, j) = static_cast<float>(acc);
    }
  }
  return c;
}

Tensor naive_abt(const Tensor& b, const Tensor& a) {  // B * Aᵀ
  const int64_t m = b.dim(0), k = b.dim(1), r = a.dim(0);
  Tensor c(Shape{m, r});
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < r; ++j) {
      double acc = 0.0;
      for (int64_t kk = 0; kk < k; ++kk) {
        acc += static_cast<double>(b.at(i, kk)) * static_cast<double>(a.at(j, kk));
      }
      c.at(i, j) = static_cast<float>(acc);
    }
  }
  return c;
}

void expect_near_all(const Tensor& got, const Tensor& want, double tol,
                     const std::string& context) {
  ASSERT_EQ(got.shape(), want.shape()) << context;
  for (int64_t i = 0; i < want.numel(); ++i) {
    ASSERT_NEAR(got.at(i), want.at(i), tol) << context << " i=" << i;
  }
}

TEST(SpmmTest, MatchesDenseMatmulAcrossSparsities) {
  Rng rng(11);
  for (const double sparsity : {0.0, 0.5, 0.9, 0.99}) {
    const Tensor a = random_masked(Shape{17, 23}, sparsity, rng);
    Tensor b(Shape{23, 9});
    b.fill_uniform(rng, -1.0F, 1.0F);

    const Tensor expect = tensor::matmul(a, b);
    const Tensor got = Csr::from_dense(a).spmm(b);
    ASSERT_EQ(got.shape(), expect.shape());
    for (int64_t i = 0; i < expect.numel(); ++i) {
      EXPECT_NEAR(got.at(i), expect.at(i), 1e-5) << "sparsity=" << sparsity << " i=" << i;
    }
  }
}

TEST(SpmmTest, TransposedMatchesDenseMatmulNt) {
  Rng rng(12);
  for (const double sparsity : {0.0, 0.5, 0.95}) {
    const Tensor w = random_masked(Shape{31, 19}, sparsity, rng);  // [out, in]
    Tensor x(Shape{7, 19});                                       // [M, in]
    x.fill_uniform(rng, -1.0F, 1.0F);

    const Tensor expect = tensor::matmul_nt(x, w);
    const Tensor got = Csr::from_dense(w).spmm_t(x);
    ASSERT_EQ(got.shape(), expect.shape());
    for (int64_t i = 0; i < expect.numel(); ++i) {
      EXPECT_NEAR(got.at(i), expect.at(i), 1e-5) << "sparsity=" << sparsity << " i=" << i;
    }
  }
}

TEST(SpmmTest, EmptyMatrixYieldsZeros) {
  const Csr csr = Csr::from_dense(Tensor(Shape{4, 6}));
  Tensor b(Shape{6, 3}, 1.0F);
  const Tensor c = csr.spmm(b);
  for (int64_t i = 0; i < c.numel(); ++i) EXPECT_EQ(c.at(i), 0.0F);
  Tensor x(Shape{5, 6}, 1.0F);
  const Tensor ct = csr.spmm_t(x);
  for (int64_t i = 0; i < ct.numel(); ++i) EXPECT_EQ(ct.at(i), 0.0F);
}

TEST(SpmmTest, ShapeMismatchThrows) {
  const Csr csr = Csr::from_dense(Tensor(Shape{4, 6}, 1.0F));
  EXPECT_THROW((void)csr.spmm(Tensor(Shape{5, 3})), std::invalid_argument);
  EXPECT_THROW((void)csr.spmm_t(Tensor(Shape{3, 5})), std::invalid_argument);
  EXPECT_THROW((void)csr.spmm(Tensor(Shape{6})), std::invalid_argument);
}

TEST(SpmmTest, FromWeightsReshapesConvKernels) {
  Rng rng(13);
  Tensor w(Shape{8, 3, 5, 5});
  w.fill_uniform(rng, -1.0F, 1.0F);
  const Csr csr = Csr::from_weights(w);
  EXPECT_EQ(csr.rows(), 8);
  EXPECT_EQ(csr.cols(), 75);
  EXPECT_EQ(csr.nnz(), w.numel());
  EXPECT_THROW((void)Csr::from_weights(Tensor(Shape{5})), std::invalid_argument);
}

TEST(SpmmTest, EmptyRowsProduceZeroOutputRows) {
  // Rows 1 and 3 are entirely zero: CSR gets empty row extents, BCSR
  // gets a fully padded block row (rows 2..3 with 2x2 blocks).
  Tensor a(Shape{4, 6});
  for (int64_t c = 0; c < 6; ++c) {
    a.at(0, c) = static_cast<float>(c + 1);
    a.at(2, c) = -static_cast<float>(c + 1);
  }
  Tensor b(Shape{6, 3}, 0.5F);
  const Tensor want = naive_ab(a, b);
  expect_near_all(Csr::from_dense(a).spmm(b), want, 1e-5, "csr empty rows");
  expect_near_all(Bcsr::from_dense(a, 2, 2).spmm(b), want, 1e-5, "bcsr empty rows");
  Tensor x(Shape{2, 6}, 0.25F);
  const Tensor want_t = naive_abt(x, a);
  expect_near_all(Csr::from_dense(a).spmm_t(x), want_t, 1e-5, "csr-t empty rows");
  expect_near_all(Bcsr::from_dense(a, 2, 2).spmm_t(x), want_t, 1e-5, "bcsr-t empty rows");
}

TEST(SpmmTest, SingleRowAndSingleColumnShapes) {
  Rng rng(41);
  for (const auto& shape : {Shape{1, 9}, Shape{9, 1}, Shape{1, 1}}) {
    const Tensor a = random_masked(shape, 0.3, rng);
    Tensor b(Shape{a.dim(1), 2});
    b.fill_uniform(rng, -1.0F, 1.0F);
    Tensor x(Shape{3, a.dim(1)});
    x.fill_uniform(rng, -1.0F, 1.0F);
    const std::string ctx = "shape " + shape.str();
    expect_near_all(Csr::from_dense(a).spmm(b), naive_ab(a, b), 1e-5, "csr " + ctx);
    expect_near_all(Csr::from_dense(a).spmm_t(x), naive_abt(x, a), 1e-5, "csr-t " + ctx);
    expect_near_all(Bcsr::from_dense(a, 4, 4).spmm(b), naive_ab(a, b), 1e-5, "bcsr " + ctx);
    expect_near_all(Bcsr::from_dense(a, 4, 4).spmm_t(x), naive_abt(x, a), 1e-5,
                    "bcsr-t " + ctx);
  }
}

TEST(SpmmTest, AllZeroMatrixAllKernels) {
  const Tensor a(Shape{5, 7});
  Tensor b(Shape{7, 2}, 1.0F);
  Tensor x(Shape{3, 7}, 1.0F);
  for (const Tensor& out :
       {Csr::from_dense(a).spmm(b), Csr::from_dense(a).spmm_t(x),
        Bcsr::from_dense(a, 2, 3).spmm(b), Bcsr::from_dense(a, 2, 3).spmm_t(x)}) {
    for (int64_t i = 0; i < out.numel(); ++i) ASSERT_EQ(out.at(i), 0.0F);
  }
}

TEST(SpmmTest, FuzzAgainstNaiveReference) {
  // Randomized sweep over shapes, sparsities and block geometries for
  // both formats and both kernel variants. Seeded via NDSNN_TEST_SEED.
  Rng rng(difftest::env_seed() ^ 0x5B3CC461ULL);
  const int rounds = difftest::env_int("NDSNN_FUZZ_ROUNDS", 40);
  for (int round = 0; round < rounds; ++round) {
    const int64_t rows = 1 + rng.uniform_int(40);
    const int64_t cols = 1 + rng.uniform_int(40);
    const int64_t n = 1 + rng.uniform_int(12);
    const int64_t m = 1 + rng.uniform_int(6);
    const double sparsity = rng.uniform01();
    const int64_t br = 1 + rng.uniform_int(6);
    const int64_t bc = 1 + rng.uniform_int(6);
    const std::string ctx = "round " + std::to_string(round) + ": " +
                            std::to_string(rows) + "x" + std::to_string(cols) +
                            " sparsity=" + std::to_string(sparsity) + " block=" +
                            std::to_string(br) + "x" + std::to_string(bc);
    const Tensor a = random_masked(Shape{rows, cols}, sparsity, rng);
    Tensor b(Shape{cols, n});
    b.fill_uniform(rng, -1.0F, 1.0F);
    Tensor x(Shape{m, cols});
    x.fill_uniform(rng, -1.0F, 1.0F);

    const Tensor want = naive_ab(a, b);
    const Tensor want_t = naive_abt(x, a);
    const Csr csr = Csr::from_dense(a);
    const Bcsr bcsr = Bcsr::from_dense(a, br, bc);
    ASSERT_EQ(bcsr.nnz(), csr.nnz()) << ctx;
    expect_near_all(csr.spmm(b), want, 1e-4, "csr spmm " + ctx);
    expect_near_all(csr.spmm_t(x), want_t, 1e-4, "csr spmm_t " + ctx);
    expect_near_all(bcsr.spmm(b), want, 1e-4, "bcsr spmm " + ctx);
    expect_near_all(bcsr.spmm_t(x), want_t, 1e-4, "bcsr spmm_t " + ctx);
    if (::testing::Test::HasFatalFailure()) return;

    // The two sparse kernels agree with each other bitwise (identical
    // accumulation order), which is what the runtime's differential
    // harness relies on.
    const Tensor cs = csr.spmm(b), bs = bcsr.spmm(b);
    const Tensor cst = csr.spmm_t(x), bst = bcsr.spmm_t(x);
    for (int64_t i = 0; i < cs.numel(); ++i) ASSERT_EQ(cs.at(i), bs.at(i)) << ctx;
    for (int64_t i = 0; i < cst.numel(); ++i) ASSERT_EQ(cst.at(i), bst.at(i)) << ctx;
  }
}

}  // namespace
}  // namespace ndsnn::sparse
