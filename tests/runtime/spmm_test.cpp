// CSR spmm / spmm_t equivalence against the dense GEMM kernels on random
// masked matrices (the runtime's correctness cornerstone).
#include <gtest/gtest.h>

#include "sparse/csr.hpp"
#include "sparse/mask.hpp"
#include "tensor/matmul.hpp"
#include "tensor/random.hpp"

namespace ndsnn::sparse {
namespace {

using tensor::Rng;
using tensor::Shape;
using tensor::Tensor;

Tensor random_masked(Shape shape, double sparsity, Rng& rng) {
  Tensor dense(shape);
  dense.fill_uniform(rng, -1.0F, 1.0F);
  const auto active =
      static_cast<int64_t>(static_cast<double>(dense.numel()) * (1.0 - sparsity));
  const Mask mask(shape, active, rng);
  mask.apply(dense);
  return dense;
}

TEST(SpmmTest, MatchesDenseMatmulAcrossSparsities) {
  Rng rng(11);
  for (const double sparsity : {0.0, 0.5, 0.9, 0.99}) {
    const Tensor a = random_masked(Shape{17, 23}, sparsity, rng);
    Tensor b(Shape{23, 9});
    b.fill_uniform(rng, -1.0F, 1.0F);

    const Tensor expect = tensor::matmul(a, b);
    const Tensor got = Csr::from_dense(a).spmm(b);
    ASSERT_EQ(got.shape(), expect.shape());
    for (int64_t i = 0; i < expect.numel(); ++i) {
      EXPECT_NEAR(got.at(i), expect.at(i), 1e-5) << "sparsity=" << sparsity << " i=" << i;
    }
  }
}

TEST(SpmmTest, TransposedMatchesDenseMatmulNt) {
  Rng rng(12);
  for (const double sparsity : {0.0, 0.5, 0.95}) {
    const Tensor w = random_masked(Shape{31, 19}, sparsity, rng);  // [out, in]
    Tensor x(Shape{7, 19});                                       // [M, in]
    x.fill_uniform(rng, -1.0F, 1.0F);

    const Tensor expect = tensor::matmul_nt(x, w);
    const Tensor got = Csr::from_dense(w).spmm_t(x);
    ASSERT_EQ(got.shape(), expect.shape());
    for (int64_t i = 0; i < expect.numel(); ++i) {
      EXPECT_NEAR(got.at(i), expect.at(i), 1e-5) << "sparsity=" << sparsity << " i=" << i;
    }
  }
}

TEST(SpmmTest, EmptyMatrixYieldsZeros) {
  const Csr csr = Csr::from_dense(Tensor(Shape{4, 6}));
  Tensor b(Shape{6, 3}, 1.0F);
  const Tensor c = csr.spmm(b);
  for (int64_t i = 0; i < c.numel(); ++i) EXPECT_EQ(c.at(i), 0.0F);
  Tensor x(Shape{5, 6}, 1.0F);
  const Tensor ct = csr.spmm_t(x);
  for (int64_t i = 0; i < ct.numel(); ++i) EXPECT_EQ(ct.at(i), 0.0F);
}

TEST(SpmmTest, ShapeMismatchThrows) {
  const Csr csr = Csr::from_dense(Tensor(Shape{4, 6}, 1.0F));
  EXPECT_THROW((void)csr.spmm(Tensor(Shape{5, 3})), std::invalid_argument);
  EXPECT_THROW((void)csr.spmm_t(Tensor(Shape{3, 5})), std::invalid_argument);
  EXPECT_THROW((void)csr.spmm(Tensor(Shape{6})), std::invalid_argument);
}

TEST(SpmmTest, FromWeightsReshapesConvKernels) {
  Rng rng(13);
  Tensor w(Shape{8, 3, 5, 5});
  w.fill_uniform(rng, -1.0F, 1.0F);
  const Csr csr = Csr::from_weights(w);
  EXPECT_EQ(csr.rows(), 8);
  EXPECT_EQ(csr.cols(), 75);
  EXPECT_EQ(csr.nnz(), w.numel());
  EXPECT_THROW((void)Csr::from_weights(Tensor(Shape{5})), std::invalid_argument);
}

}  // namespace
}  // namespace ndsnn::sparse
