// StreamSession: the streaming execution subsystem's contract.
//
// The load-bearing property is bitwise equivalence: feeding T frames
// through a session — serially via step() or pipelined via run_steps()
// — must reproduce the whole-window Plan::execute pass exactly, per
// step, across every backend x activation mode (and on quantised plans,
// where both sides share the same plan, the contract still holds
// bitwise). On top of that: the delta path must observably skip
// stateless stages on empty input steps (trace span + metric +
// InferenceResult::skipped_ops), reset() must restore first-step
// semantics, and MaxPool must propagate spike-train event views (the
// PR 3 leftover this file pins).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/flatten.hpp"
#include "nn/lif_activation.hpp"
#include "nn/linear.hpp"
#include "nn/pool.hpp"
#include "runtime/stream_session.hpp"
#include "runtime/trace.hpp"
#include "testing.hpp"
#include "util/metrics.hpp"

namespace ndsnn::runtime {
namespace {

using tensor::Shape;
using tensor::Tensor;

/// Stack frames time-major ([F*N, ...], row block t = frame t), the
/// layout DirectEncoder produces and Plan::execute expects.
Tensor concat_time_major(const std::vector<Tensor>& frames) {
  const int64_t per = frames[0].numel();
  std::vector<int64_t> dims{static_cast<int64_t>(frames.size()) * frames[0].dim(0)};
  for (int64_t d = 1; d < frames[0].rank(); ++d) dims.push_back(frames[0].dim(d));
  Tensor out(Shape{dims});
  for (std::size_t t = 0; t < frames.size(); ++t) {
    for (int64_t i = 0; i < per; ++i) {
      out.at(static_cast<int64_t>(t) * per + i) = frames[t].at(i);
    }
  }
  return out;
}

/// Row block t of a time-major output [F*N, C] as its own [N, C] tensor.
Tensor step_slice(const Tensor& window_out, int64_t t, int64_t rows_per_step) {
  const int64_t cols = window_out.numel() / window_out.dim(0);
  Tensor out(Shape{rows_per_step, cols});
  for (int64_t i = 0; i < rows_per_step * cols; ++i) {
    out.at(i) = window_out.at(t * rows_per_step * cols + i);
  }
  return out;
}

/// Per-step input frames for a scenario: one distinctly-salted batch
/// per step, with one all-zero frame mixed in so every scenario crosses
/// the delta path at least once. Always exactly cfg.timesteps frames —
/// LifOp::run splits the whole-window input into the plan's compiled
/// timesteps, so the window pass is the streamed run's sequential
/// reference only when the stream length matches the plan's T.
std::vector<Tensor> scenario_frames(const difftest::NetConfig& cfg) {
  const int64_t steps = cfg.timesteps;
  std::vector<Tensor> frames;
  for (int64_t t = 0; t < steps; ++t) {
    difftest::NetConfig salted = cfg;
    if (t == steps / 2 && cfg.input != difftest::InputKind::kSaturated) {
      salted.input = difftest::InputKind::kSilent;
    }
    frames.push_back(difftest::random_batch(salted, /*salt=*/100 + static_cast<uint64_t>(t)));
  }
  return frames;
}

/// Assert streamed-per-step == whole-window bitwise for one compiled
/// plan (both sides run the SAME plan, so the check is exact even on
/// quantised plans).
void expect_stream_matches_window(const CompiledNetwork& compiled,
                                  const std::vector<Tensor>& frames,
                                  const std::string& context) {
  const Tensor window_out = compiled.plan_ir().execute(concat_time_major(frames));
  const int64_t rows = frames[0].dim(0);

  StreamSession serial(compiled);
  for (std::size_t t = 0; t < frames.size(); ++t) {
    const InferenceResult r = serial.step(frames[t]);
    difftest::expect_bitwise(r.logits, step_slice(window_out, static_cast<int64_t>(t), rows),
                             context + " serial step " + std::to_string(t));
    if (::testing::Test::HasFatalFailure()) return;
  }

  StreamSession piped(compiled, /*pipeline_threads=*/4);
  const std::vector<InferenceResult> results = piped.run_steps(frames);
  ASSERT_EQ(results.size(), frames.size()) << context;
  for (std::size_t t = 0; t < results.size(); ++t) {
    difftest::expect_bitwise(results[t].logits,
                             step_slice(window_out, static_cast<int64_t>(t), rows),
                             context + " pipelined step " + std::to_string(t));
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(StreamSessionTest, StreamedMatchesWholeWindowBitwiseAcrossBackends) {
  const int configs = std::max(4, difftest::env_int("NDSNN_DIFF_CONFIGS", 200) / 8);
  tensor::Rng rng(difftest::env_seed());
  std::vector<difftest::NetConfig> cases;
  // Pinned: an all-silent scenario (every step exercises the delta
  // path) and a saturated one (event views at full rate) regardless of
  // seed and sweep size.
  difftest::NetConfig pinned;
  pinned.image = 8;
  pinned.seed = 97;
  pinned.sparsity = 0.9;
  pinned.timesteps = 4;  // a real multi-step stream, silent frame mid-window
  pinned.input = difftest::InputKind::kSilent;
  cases.push_back(pinned);
  pinned.input = difftest::InputKind::kSaturated;
  cases.push_back(pinned);
  for (int i = 0; i < configs; ++i) cases.push_back(difftest::random_config(rng));

  for (std::size_t i = 0; i < cases.size(); ++i) {
    const difftest::NetConfig& cfg = cases[i];
    SCOPED_TRACE("config " + std::to_string(i) + ": " + cfg.str());
    const auto net = difftest::build_network(cfg);
    const std::vector<Tensor> frames = scenario_frames(cfg);

    for (const Backend backend : difftest::all_backends()) {
      for (const ActivationMode activation : difftest::all_activation_modes()) {
        const CompiledNetwork compiled = CompiledNetwork::compile(
            *net, difftest::options_for(cfg, backend, activation));
        expect_stream_matches_window(
            compiled, frames,
            std::string("backend=") + difftest::backend_name(backend) +
                " activation=" + difftest::activation_name(activation));
        if (::testing::Test::HasFatalFailure()) return;
      }
    }
  }
}

TEST(StreamSessionTest, StreamedMatchesWholeWindowOnQuantisedPlans) {
  // Both sides of the equivalence run the SAME quantised plan, so the
  // bitwise contract survives quantisation (no cross-precision
  // comparison is involved — that axis lives in the lockstep sweep).
  const int configs = std::max(2, difftest::env_int("NDSNN_DIFF_CONFIGS", 200) / 40);
  tensor::Rng rng(difftest::env_seed() ^ 0xABCDULL);
  for (int i = 0; i < configs; ++i) {
    const difftest::NetConfig cfg = difftest::random_config(rng);
    SCOPED_TRACE("config " + std::to_string(i) + ": " + cfg.str());
    const auto net = difftest::build_network(cfg);
    const std::vector<Tensor> frames = scenario_frames(cfg);
    for (const WeightPrecision precision : difftest::quantised_precisions()) {
      CompileOptions opts = difftest::options_for(cfg);
      opts.weight_precision = precision;
      const CompiledNetwork compiled = CompiledNetwork::compile(*net, opts);
      expect_stream_matches_window(
          compiled, frames,
          std::string("precision=") +
              (precision == WeightPrecision::kInt4 ? "int4" : "int8"));
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

TEST(StreamSessionTest, EmptyStepSkipsStatelessStagesObservably) {
  difftest::NetConfig cfg;
  cfg.image = 8;
  cfg.seed = 1234;
  cfg.sparsity = 0.9;
  const auto net = difftest::build_network(cfg);
  const CompiledNetwork compiled = CompiledNetwork::compile(*net, difftest::options_for(cfg));
  StreamSession session(compiled);

  const Tensor zero(Shape{cfg.batch, cfg.channels, cfg.image, cfg.image});
  auto& skip_counter = util::MetricsRegistry::global().counter("stream.delta_skips");

  // First empty step: the zero-input caches are cold, every stage
  // actually runs (cache fill is not a skip).
  const InferenceResult first = session.step(zero);
  EXPECT_EQ(first.skipped_ops, 0);
  EXPECT_EQ(session.delta_skips(), 0);

  // Second empty step: the input stage (and any stage whose input is a
  // provably-empty spike train again) must hit the cache. Observable
  // three ways: the per-step skip count, the session/metric totals, and
  // a "delta-skip" trace span.
  const double metric_before = skip_counter.value();
  trace::set_enabled(true);
  trace::reset();
  const InferenceResult second = session.step(zero);
  trace::set_enabled(false);
  EXPECT_GT(second.skipped_ops, 0);
  EXPECT_EQ(session.delta_skips(), second.skipped_ops);
  EXPECT_EQ(skip_counter.value() - metric_before,
            static_cast<double>(second.skipped_ops));
  int delta_spans = 0;
  for (const trace::Span& s : trace::snapshot()) {
    if (s.name == "delta-skip") {
      ++delta_spans;
      EXPECT_STREQ(s.cat, "stream");
    }
  }
  trace::reset();
  EXPECT_EQ(delta_spans, second.skipped_ops);

  // Skipping must not change the arithmetic: the two empty steps are
  // steps 0 and 1 of an all-zero window.
  const Tensor window_out =
      compiled.plan_ir().execute(concat_time_major({zero, zero}));
  difftest::expect_bitwise(first.logits, step_slice(window_out, 0, cfg.batch),
                           "first empty step");
  difftest::expect_bitwise(second.logits, step_slice(window_out, 1, cfg.batch),
                           "second empty step");
}

TEST(StreamSessionTest, ResetRestoresFirstStepSemantics) {
  difftest::NetConfig cfg;
  cfg.image = 8;
  cfg.seed = 77;
  cfg.sparsity = 0.8;
  cfg.timesteps = 3;
  const auto net = difftest::build_network(cfg);
  const CompiledNetwork compiled = CompiledNetwork::compile(*net, difftest::options_for(cfg));
  const std::vector<Tensor> frames = scenario_frames(cfg);

  StreamSession session(compiled);
  std::vector<Tensor> pass1;
  for (const Tensor& f : frames) pass1.push_back(session.step(f).logits);
  EXPECT_EQ(session.steps(), 3);

  // Without a reset the membrane state carries over: the same frames
  // must now produce a different first output (otherwise the session
  // holds no state at all and streaming is a sham). LIF dynamics on
  // non-trivial inputs diverge from the fresh-state trajectory.
  session.reset();
  EXPECT_EQ(session.steps(), 0);
  std::vector<Tensor> pass2;
  for (const Tensor& f : frames) pass2.push_back(session.step(f).logits);
  for (std::size_t t = 0; t < pass1.size(); ++t) {
    difftest::expect_bitwise(pass2[t], pass1[t], "replay after reset, step " +
                                                     std::to_string(t));
  }

  // reset() must also clear the batch-size pin: a different N succeeds.
  session.reset();
  const Tensor wider(Shape{cfg.batch + 1, cfg.channels, cfg.image, cfg.image});
  EXPECT_NO_THROW((void)session.step(wider));
  // ... and changing N mid-stream (without reset) is rejected.
  EXPECT_THROW((void)session.step(frames[0]), std::invalid_argument);
}

TEST(StreamSessionTest, MaxPoolPropagatesEventViewsBitwise) {
  // No zoo model uses MaxPool2d (both poolers are AvgPool2d), so the
  // PR 3 leftover is pinned on a purpose-built stack: spike trains out
  // of the LIF flow through MaxPool as event views (max of a binary
  // window == OR of its events), and the downstream Linear must see a
  // usable view. Forced-event compile against the interpreted reference
  // pins the arithmetic; the "maxpool-events" phase span proves the
  // event path (not the dense fallback) actually executed.
  nn::ModelSpec spec;
  spec.in_channels = 1;
  spec.image_size = 8;
  spec.timesteps = 3;
  spec.seed = 4242;
  tensor::Rng rng(spec.seed);
  auto body = std::make_unique<nn::Sequential>();
  body->emplace<nn::Conv2d>(1, 4, 3, 1, 1, rng);
  body->emplace<nn::BatchNorm2d>(4);
  body->emplace<nn::LifActivation>(spec.lif, spec.timesteps);
  body->emplace<nn::MaxPool2d>(2);
  body->emplace<nn::Flatten>();
  body->emplace<nn::Linear>(4 * 4 * 4, 32, rng);
  body->emplace<nn::LifActivation>(spec.lif, spec.timesteps);
  body->emplace<nn::Linear>(32, 10, rng);
  auto net = std::make_unique<nn::SpikingNetwork>(std::move(body), spec.timesteps);
  difftest::apply_random_masks(*net, 0.9, spec.seed + 1);

  Tensor batch(Shape{2, 1, 8, 8});
  tensor::Rng batch_rng(spec.seed + 2);
  batch.fill_uniform(batch_rng, 0.0F, 1.0F);
  difftest::warm_up(*net, batch);
  const Tensor want = net->predict(batch);

  CompileOptions opts;
  opts.activation_mode = ActivationMode::kEvent;
  const CompiledNetwork compiled = CompiledNetwork::compile(*net, opts);

  trace::set_enabled(true);
  trace::reset();
  const Tensor got = compiled.run(batch);
  trace::set_enabled(false);
  difftest::expect_bitwise(got, want, "maxpool event plan vs interpreted");
  int maxpool_event_spans = 0;
  for (const trace::Span& s : trace::snapshot()) {
    if (s.name == "maxpool-events") ++maxpool_event_spans;
  }
  trace::reset();
  EXPECT_GT(maxpool_event_spans, 0)
      << "MaxPool never took the event path under forced-event compile";

  // And the streaming contract holds over the same plan.
  std::vector<Tensor> frames;
  for (int64_t t = 0; t < spec.timesteps; ++t) frames.push_back(batch);
  expect_stream_matches_window(compiled, frames, "maxpool stream");
}

}  // namespace
}  // namespace ndsnn::runtime
