// runtime::Autotune: the measured per-layer {backend, block, tier}
// lowering behind CompileOptions::autotune. Covers the decision surface
// (concrete choices, cache behaviour, OpReport plumbing), the guardrails
// (event path and forced backends keep the heuristics, validation of
// quant_group_size), and the correctness contract: whatever backend the
// measurement picks, fp32 execution stays bitwise identical to the
// heuristic plan because every fp32 kernel tier shares one accumulation
// order.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>

#include "nn/models/zoo.hpp"
#include "runtime/autotune.hpp"
#include "runtime/compiled_network.hpp"
#include "snn/encoder.hpp"
#include "sparse/quant.hpp"
#include "testing.hpp"
#include "tensor/random.hpp"
#include "util/stopwatch.hpp"

namespace ndsnn::runtime {
namespace {

using difftest::apply_block_masks;
using difftest::apply_random_masks;
using difftest::expect_bitwise;
using difftest::warm_up;
using tensor::Rng;
using tensor::Shape;
using tensor::Tensor;

/// [rows, cols] weight with a deterministic unstructured mask.
Tensor sparse_weight(int64_t rows, int64_t cols, double sparsity, uint64_t seed) {
  Rng rng(seed);
  Tensor w(Shape{rows, cols});
  w.fill_uniform(rng, -1.0F, 1.0F);
  const auto stride = static_cast<int64_t>(1.0 / std::max(1e-9, 1.0 - sparsity));
  float* d = w.data();
  for (int64_t i = 0; i < w.numel(); ++i) {
    if (stride > 1 && i % stride != 0) d[i] = 0.0F;
  }
  return w;
}

Tensor random_batch(int64_t n, int64_t c, int64_t s, uint64_t seed) {
  Rng rng(seed);
  Tensor batch(Shape{n, c, s, s});
  batch.fill_uniform(rng, 0.0F, 1.0F);
  return batch;
}

TEST(AutotuneTest, LayerChoiceIsConcrete) {
  autotune_cache_clear();
  const Tensor w = sparse_weight(96, 256, 0.9, 7);
  const CompileOptions opts;
  const AutotuneChoice c =
      autotune_layer(w, sparse::Precision::kFp32, AutotuneProbe::kSpmmT, opts);
  EXPECT_FALSE(c.from_cache);
  EXPECT_NE(c.tier, util::simd::Tier::kAuto);
  EXPECT_LE(c.tier, util::simd::detected());
  EXPECT_GT(c.best_us, 0.0);
  EXPECT_TRUE(c.kernel == Kernel::kDense || c.kernel == Kernel::kCsr ||
              c.kernel == Kernel::kBcsr);
  EXPECT_GT(c.block_rows, 0);
  EXPECT_GT(c.block_cols, 0);
}

TEST(AutotuneTest, PinnedTierRestrictsTheTierAxis) {
  autotune_cache_clear();
  const Tensor w = sparse_weight(64, 128, 0.8, 11);
  CompileOptions opts;
  opts.kernel_tier = util::simd::Tier::kScalar;
  const AutotuneChoice c =
      autotune_layer(w, sparse::Precision::kFp32, AutotuneProbe::kSpmm, opts);
  EXPECT_EQ(c.tier, util::simd::Tier::kScalar);
}

TEST(AutotuneTest, CacheHitIsInstantAndIdentical) {
  autotune_cache_clear();
  const Tensor w = sparse_weight(120, 400, 0.9, 13);
  const CompileOptions opts;

  util::Stopwatch cold;
  const AutotuneChoice first =
      autotune_layer(w, sparse::Precision::kInt8, AutotuneProbe::kSpmmT, opts);
  const double cold_s = cold.seconds();
  EXPECT_FALSE(first.from_cache);

  const AutotuneCacheStats after_first = autotune_cache_stats();
  EXPECT_GE(after_first.misses, 1);
  EXPECT_GE(after_first.entries, 1);

  util::Stopwatch warm;
  const AutotuneChoice second =
      autotune_layer(w, sparse::Precision::kInt8, AutotuneProbe::kSpmmT, opts);
  const double warm_s = warm.seconds();
  EXPECT_TRUE(second.from_cache);
  EXPECT_EQ(second.kernel, first.kernel);
  EXPECT_EQ(second.block_rows, first.block_rows);
  EXPECT_EQ(second.block_cols, first.block_cols);
  EXPECT_EQ(second.tier, first.tier);

  const AutotuneCacheStats after_second = autotune_cache_stats();
  EXPECT_EQ(after_second.hits, after_first.hits + 1);

  // The acceptance bar is a 10x recompile speedup; a map lookup vs a
  // multi-candidate probe clears it by orders of magnitude.
  EXPECT_LT(warm_s, cold_s / 10.0);
}

TEST(AutotuneTest, DifferentMasksTuneIndependently) {
  autotune_cache_clear();
  const Tensor a = sparse_weight(64, 96, 0.9, 17);
  const Tensor b = sparse_weight(64, 96, 0.5, 19);  // same shape, other mask
  const CompileOptions opts;
  (void)autotune_layer(a, sparse::Precision::kFp32, AutotuneProbe::kSpmmT, opts);
  const AutotuneChoice c =
      autotune_layer(b, sparse::Precision::kFp32, AutotuneProbe::kSpmmT, opts);
  EXPECT_FALSE(c.from_cache);  // fingerprint differs -> no false sharing
  EXPECT_GE(autotune_cache_stats().entries, 2);
}

TEST(AutotuneTest, AutotunedPlanMatchesHeuristicBitwise) {
  nn::ModelSpec spec;
  spec.in_channels = 1;
  spec.image_size = 12;
  spec.timesteps = 2;
  const auto net = nn::make_lenet5(spec);
  apply_random_masks(*net, 0.9, 31);
  const Tensor batch = random_batch(2, 1, 12, 33);
  warm_up(*net, batch);

  const CompiledNetwork heuristic = CompiledNetwork::compile(*net);
  CompileOptions opts;
  opts.autotune = true;
  const CompiledNetwork tuned = CompiledNetwork::compile(*net, opts);

  // Whatever backends the measurement picked, fp32 results are bitwise:
  // every kernel x tier shares the dense accumulation order.
  expect_bitwise(tuned.run(batch), heuristic.run(batch), "autotuned lenet5");

  bool any_tuned = false;
  for (const auto& r : tuned.plan()) {
    if (r.weights > 0 && !r.event) {
      EXPECT_TRUE(r.autotuned) << r.layer;
      EXPECT_NE(r.tier, util::simd::Tier::kAuto) << r.layer;
      any_tuned = true;
    } else {
      EXPECT_FALSE(r.autotuned) << r.layer;
    }
  }
  EXPECT_TRUE(any_tuned);
  // Measured decisions are flagged in the human-readable summary.
  EXPECT_NE(tuned.summary().find('*'), std::string::npos);

  for (const auto& r : heuristic.plan()) EXPECT_FALSE(r.autotuned) << r.layer;
}

TEST(AutotuneTest, ForcedBackendDisablesAutotune) {
  nn::ModelSpec spec;
  spec.in_channels = 1;
  spec.image_size = 8;
  spec.timesteps = 2;
  const auto net = nn::make_lenet5(spec);
  apply_random_masks(*net, 0.9, 41);
  warm_up(*net, random_batch(2, 1, 8, 43));

  CompileOptions opts;
  opts.autotune = true;
  opts.backend = Backend::kCsr;
  const CompiledNetwork compiled = CompiledNetwork::compile(*net, opts);
  for (const auto& r : compiled.plan()) {
    EXPECT_FALSE(r.autotuned) << r.layer;
    if (r.weights > 0) EXPECT_TRUE(r.kind.rfind("csr-", 0) == 0) << r.kind;
  }
}

TEST(AutotuneTest, EventPathKeepsHeuristicLowering) {
  nn::ModelSpec spec;
  spec.in_channels = 1;
  spec.image_size = 8;
  spec.timesteps = 2;
  const auto net = nn::make_lenet5(spec);
  apply_random_masks(*net, 0.9, 51);
  const Tensor batch = random_batch(2, 1, 8, 53);
  warm_up(*net, batch);

  CompileOptions opts;
  opts.autotune = true;
  opts.activation_mode = ActivationMode::kEvent;
  const CompiledNetwork compiled = CompiledNetwork::compile(*net, opts);
  bool any_event = false;
  for (const auto& r : compiled.plan()) {
    if (r.event) {
      EXPECT_FALSE(r.autotuned) << r.layer;
      any_event = true;
    }
  }
  EXPECT_TRUE(any_event);
  expect_bitwise(compiled.run(batch), net->predict(batch), "autotune + forced event");
}

TEST(AutotuneTest, QuantGroupSizeValidation) {
  nn::ModelSpec spec;
  spec.in_channels = 1;
  spec.image_size = 8;
  spec.timesteps = 1;
  const auto net = nn::make_lenet5(spec);
  for (const int64_t bad : {3LL, 2LL, 48LL, -8LL}) {
    CompileOptions opts;
    opts.quant_group_size = bad;
    EXPECT_THROW((void)CompiledNetwork::compile(*net, opts), std::invalid_argument)
        << "group=" << bad;
  }
}

TEST(AutotuneTest, GroupedInt4PlanRunsWithinTolerance) {
  nn::ModelSpec spec;
  spec.in_channels = 1;
  spec.image_size = 12;
  spec.timesteps = 2;
  const auto net = nn::make_lenet5(spec);
  apply_random_masks(*net, 0.9, 61);
  const Tensor batch = random_batch(2, 1, 12, 63);
  warm_up(*net, batch);

  CompileOptions quant;
  quant.weight_precision = WeightPrecision::kInt4;
  quant.quant_group_size = 32;
  CompileOptions ref = quant;
  ref.fake_quant = true;  // same effective weights, bitwise fp32 kernels

  const CompiledNetwork q = CompiledNetwork::compile(*net, quant);
  const CompiledNetwork f = CompiledNetwork::compile(*net, ref);
  for (const auto& r : q.plan()) {
    if (r.weights > 0 && r.kind.rfind("csr-", 0) == 0 && !r.event) {
      EXPECT_EQ(r.precision, sparse::Precision::kInt4) << r.layer;
    }
  }
  snn::DirectEncoder encoder;
  difftest::expect_lockstep_close(q.plan_ir(), f.plan_ir(),
                                  encoder.encode(batch, q.timesteps()),
                                  difftest::quant_tolerance(WeightPrecision::kInt4),
                                  "grouped int4 lenet5");
}

}  // namespace
}  // namespace ndsnn::runtime
