// CompiledNetwork must reproduce SpikingNetwork::predict on the zoo
// models, dense and sparse, across T timesteps.
#include <gtest/gtest.h>

#include "nn/models/zoo.hpp"
#include "runtime/compiled_network.hpp"
#include "sparse/mask.hpp"
#include "tensor/random.hpp"

namespace ndsnn::runtime {
namespace {

using tensor::Rng;
using tensor::Shape;
using tensor::Tensor;

/// Zero out a fraction of every prunable weight tensor, like the
/// sparse-training methods leave the network after convergence.
void apply_random_masks(nn::SpikingNetwork& net, double sparsity, uint64_t seed) {
  Rng rng(seed);
  for (const auto& p : net.params()) {
    if (!p.prunable) continue;
    const auto active = static_cast<int64_t>(
        static_cast<double>(p.value->numel()) * (1.0 - sparsity));
    const sparse::Mask mask(p.value->shape(), active, rng);
    mask.apply(*p.value);
  }
}

/// One training step to make BatchNorm running statistics non-trivial,
/// so the equivalence test exercises the real eval path.
void warm_up(nn::SpikingNetwork& net, const Tensor& batch) {
  std::vector<int64_t> labels(static_cast<std::size_t>(batch.dim(0)), 0);
  (void)net.train_step(batch, labels);
}

Tensor random_batch(int64_t n, int64_t c, int64_t s, uint64_t seed) {
  Rng rng(seed);
  Tensor batch(Shape{n, c, s, s});
  batch.fill_uniform(rng, 0.0F, 1.0F);
  return batch;
}

void expect_close(const Tensor& a, const Tensor& b, double tol) {
  ASSERT_EQ(a.shape(), b.shape());
  for (int64_t i = 0; i < a.numel(); ++i) {
    ASSERT_NEAR(a.at(i), b.at(i), tol) << "logit " << i;
  }
}

TEST(CompiledNetworkTest, LenetSparseMatchesInterpreted) {
  nn::ModelSpec spec;
  spec.in_channels = 1;
  spec.image_size = 16;
  spec.timesteps = 4;
  const auto net = nn::make_lenet5(spec);
  apply_random_masks(*net, 0.9, 21);
  const Tensor batch = random_batch(3, 1, 16, 22);
  warm_up(*net, batch);

  const Tensor expect = net->predict(batch);
  const CompiledNetwork compiled = CompiledNetwork::compile(*net);
  expect_close(compiled.run(batch), expect, 1e-4);

  // The plan actually went sparse: LeNet has 3 linear + 2 conv layers.
  int64_t csr_ops = 0;
  for (const auto& r : compiled.plan()) {
    if (r.kind == "csr-linear" || r.kind == "csr-conv") ++csr_ops;
  }
  EXPECT_EQ(csr_ops, 5);
  EXPECT_GT(compiled.overall_sparsity(), 0.85);
}

TEST(CompiledNetworkTest, LenetDensePlanMatchesInterpreted) {
  nn::ModelSpec spec;
  spec.in_channels = 1;
  spec.image_size = 16;
  spec.timesteps = 3;
  const auto net = nn::make_lenet5(spec);
  const Tensor batch = random_batch(2, 1, 16, 23);
  warm_up(*net, batch);

  const Tensor expect = net->predict(batch);
  CompileOptions opts;
  opts.force_dense = true;
  const CompiledNetwork compiled = CompiledNetwork::compile(*net, opts);
  expect_close(compiled.run(batch), expect, 1e-4);
  for (const auto& r : compiled.plan()) {
    EXPECT_TRUE(r.kind != "csr-linear" && r.kind != "csr-conv") << r.layer;
  }
}

TEST(CompiledNetworkTest, VggSparseMatchesInterpreted) {
  nn::ModelSpec spec;
  spec.image_size = 32;
  spec.timesteps = 2;
  spec.width_scale = 0.125;
  const auto net = nn::make_vgg16(spec);
  apply_random_masks(*net, 0.95, 31);
  const Tensor batch = random_batch(2, 3, 32, 32);
  warm_up(*net, batch);

  const Tensor expect = net->predict(batch);
  const CompiledNetwork compiled = CompiledNetwork::compile(*net);
  expect_close(compiled.run(batch), expect, 1e-4);
}

TEST(CompiledNetworkTest, ResnetSparseMatchesInterpreted) {
  nn::ModelSpec spec;
  spec.image_size = 16;
  spec.timesteps = 2;
  spec.width_scale = 0.0625;
  const auto net = nn::make_resnet19(spec);
  apply_random_masks(*net, 0.8, 41);
  const Tensor batch = random_batch(2, 3, 16, 42);
  warm_up(*net, batch);

  const Tensor expect = net->predict(batch);
  const CompiledNetwork compiled = CompiledNetwork::compile(*net);
  expect_close(compiled.run(batch), expect, 1e-4);

  // Residual blocks roll their weight ops into one report entry.
  bool has_residual = false;
  for (const auto& r : compiled.plan()) has_residual |= r.kind == "residual";
  EXPECT_TRUE(has_residual);
}

TEST(CompiledNetworkTest, PruneThresholdDropsTinyWeights) {
  nn::ModelSpec spec;
  spec.in_channels = 1;
  spec.image_size = 16;
  spec.timesteps = 1;
  const auto net = nn::make_lenet5(spec);
  apply_random_masks(*net, 0.5, 51);

  CompileOptions strict;
  strict.min_sparsity = 0.0;
  const CompiledNetwork base = CompiledNetwork::compile(*net, strict);

  CompileOptions pruned = strict;
  pruned.prune_threshold = 0.05F;  // drop small surviving weights too
  const CompiledNetwork trimmed = CompiledNetwork::compile(*net, pruned);
  EXPECT_LT(trimmed.stored_weights(), base.stored_weights());
}

TEST(CompiledNetworkTest, SummaryAndReports) {
  nn::ModelSpec spec;
  spec.in_channels = 1;
  spec.image_size = 16;
  spec.timesteps = 2;
  const auto net = nn::make_lenet5(spec);
  apply_random_masks(*net, 0.9, 61);
  const CompiledNetwork compiled = CompiledNetwork::compile(*net);
  EXPECT_EQ(compiled.timesteps(), 2);
  EXPECT_FALSE(compiled.plan().empty());
  const std::string text = compiled.summary();
  EXPECT_NE(text.find("csr-conv"), std::string::npos);
  EXPECT_NE(text.find("csr-linear"), std::string::npos);
}

TEST(CompiledNetworkTest, RejectsBadInputRank) {
  nn::ModelSpec spec;
  spec.in_channels = 1;
  spec.image_size = 16;
  spec.timesteps = 1;
  const auto net = nn::make_lenet5(spec);
  const CompiledNetwork compiled = CompiledNetwork::compile(*net);
  EXPECT_THROW((void)compiled.run(Tensor(Shape{4})), std::invalid_argument);
}

}  // namespace
}  // namespace ndsnn::runtime
