// CompiledNetwork must reproduce SpikingNetwork::predict on the zoo
// models, dense and sparse, across T timesteps — plus the backend
// selection logic: heuristic kernel choice (measured occupancy routes
// blocky masks to BCSR and N:M patterns to CSR), forced backends, and
// the structured deployment paths. Scenario plumbing (masking, warm-up,
// bitwise comparison) comes from the differential harness.
#include <gtest/gtest.h>

#include <string>

#include "core/nm_projection.hpp"
#include "nn/checkpoint.hpp"
#include "nn/models/zoo.hpp"
#include "runtime/compiled_network.hpp"
#include "testing.hpp"
#include "tensor/random.hpp"

namespace ndsnn::runtime {
namespace {

using difftest::apply_random_masks;
using difftest::expect_bitwise;
using difftest::warm_up;
using tensor::Rng;
using tensor::Shape;
using tensor::Tensor;

Tensor random_batch(int64_t n, int64_t c, int64_t s, uint64_t seed) {
  Rng rng(seed);
  Tensor batch(Shape{n, c, s, s});
  batch.fill_uniform(rng, 0.0F, 1.0F);
  return batch;
}

int64_t count_kinds(const CompiledNetwork& plan, const std::string& a,
                    const std::string& b = "") {
  int64_t n = 0;
  for (const auto& r : plan.plan()) n += r.kind == a || (!b.empty() && r.kind == b);
  return n;
}

TEST(CompiledNetworkTest, LenetSparseMatchesInterpreted) {
  nn::ModelSpec spec;
  spec.in_channels = 1;
  spec.image_size = 16;
  spec.timesteps = 4;
  const auto net = nn::make_lenet5(spec);
  apply_random_masks(*net, 0.9, 21);
  const Tensor batch = random_batch(3, 1, 16, 22);
  warm_up(*net, batch);

  const Tensor expect = net->predict(batch);
  const CompiledNetwork compiled = CompiledNetwork::compile(*net);
  expect_bitwise(compiled.run(batch), expect, "lenet 0.9 sparse, auto backend");

  // The plan actually went sparse: LeNet has 3 linear + 2 conv layers.
  // An unstructured 0.9 mask has low block occupancy, so auto = CSR.
  EXPECT_EQ(count_kinds(compiled, "csr-linear", "csr-conv"), 5);
  EXPECT_EQ(count_kinds(compiled, "bcsr-linear", "bcsr-conv"), 0);
  EXPECT_GT(compiled.overall_sparsity(), 0.85);
}

TEST(CompiledNetworkTest, LenetDensePlanMatchesInterpreted) {
  nn::ModelSpec spec;
  spec.in_channels = 1;
  spec.image_size = 16;
  spec.timesteps = 3;
  const auto net = nn::make_lenet5(spec);
  const Tensor batch = random_batch(2, 1, 16, 23);
  warm_up(*net, batch);

  const Tensor expect = net->predict(batch);
  CompileOptions opts;
  opts.force_dense = true;
  const CompiledNetwork compiled = CompiledNetwork::compile(*net, opts);
  expect_bitwise(compiled.run(batch), expect, "lenet dense plan");
  for (const auto& r : compiled.plan()) {
    EXPECT_TRUE(r.kind.find("csr") == std::string::npos) << r.layer << " " << r.kind;
  }
}

TEST(CompiledNetworkTest, VggSparseMatchesInterpreted) {
  nn::ModelSpec spec;
  spec.image_size = 32;
  spec.timesteps = 2;
  spec.width_scale = 0.125;
  const auto net = nn::make_vgg16(spec);
  apply_random_masks(*net, 0.95, 31);
  const Tensor batch = random_batch(2, 3, 32, 32);
  warm_up(*net, batch);

  const Tensor expect = net->predict(batch);
  const CompiledNetwork compiled = CompiledNetwork::compile(*net);
  expect_bitwise(compiled.run(batch), expect, "vgg 0.95 sparse");
}

TEST(CompiledNetworkTest, ResnetSparseMatchesInterpreted) {
  nn::ModelSpec spec;
  spec.image_size = 16;
  spec.timesteps = 2;
  spec.width_scale = 0.0625;
  const auto net = nn::make_resnet19(spec);
  apply_random_masks(*net, 0.8, 41);
  const Tensor batch = random_batch(2, 3, 16, 42);
  warm_up(*net, batch);

  const Tensor expect = net->predict(batch);
  const CompiledNetwork compiled = CompiledNetwork::compile(*net);
  expect_bitwise(compiled.run(batch), expect, "resnet 0.8 sparse");

  // Residual blocks roll their weight ops into one report entry.
  bool has_residual = false;
  for (const auto& r : compiled.plan()) has_residual |= r.kind == "residual";
  EXPECT_TRUE(has_residual);
}

// Heuristic regression pin (PR 5): BENCH_sparse_inference.json measured
// BCSR *losing* to CSR end to end on N:M patterns at these layer sizes
// (2:4 0.78x, 1:4 0.65x) while winning on genuinely blocky ~1.0-occupancy
// masks (+12%), so the measured-occupancy crossover sits above 0.5. This
// test pins both sides of it.
TEST(CompiledNetworkTest, NmProjectedNetworkAutoStaysCsr) {
  nn::ModelSpec spec;
  spec.in_channels = 1;
  spec.image_size = 16;
  spec.timesteps = 2;
  const auto net = nn::make_lenet5(spec);
  const auto report = core::project_network_nm(*net, {2, 4});
  ASSERT_EQ(report.size(), 5U);  // 2 conv + 3 linear prunable weights
  for (const auto& r : report) EXPECT_NEAR(r.sparsity, 0.5, 0.05) << r.param;
  const Tensor batch = random_batch(2, 1, 16, 52);
  warm_up(*net, batch);

  const Tensor expect = net->predict(batch);
  const CompiledNetwork compiled = CompiledNetwork::compile(*net);
  expect_bitwise(compiled.run(batch), expect, "lenet 2:4 projected");

  // A 2:4 pattern fills occupied blocks ~50%: below the measured
  // end-to-end crossover, so every weight layer stays CSR.
  EXPECT_EQ(count_kinds(compiled, "csr-linear", "csr-conv"), 5);
  EXPECT_EQ(count_kinds(compiled, "bcsr-linear", "bcsr-conv"), 0);
}

TEST(CompiledNetworkTest, BlockMaskedNetworkAutoCompilesToBcsr) {
  nn::ModelSpec spec;
  spec.in_channels = 1;
  spec.image_size = 16;
  spec.timesteps = 2;
  const auto net = nn::make_lenet5(spec);
  difftest::apply_block_masks(*net, /*keep=*/0.25, 53);
  const Tensor batch = random_batch(2, 1, 16, 54);
  warm_up(*net, batch);

  const Tensor expect = net->predict(batch);
  const CompiledNetwork compiled = CompiledNetwork::compile(*net);
  expect_bitwise(compiled.run(batch), expect, "lenet 4x4 block mask");

  // Aligned layers (the three fc weights are multiples of 4 on both
  // axes) measure ~1.0 occupancy and go BCSR; layers whose edge-padded
  // blocks drag the measured occupancy under the bar (conv1 [6, 25])
  // legitimately stay CSR — the crossover is per layer, per measurement.
  EXPECT_GE(count_kinds(compiled, "bcsr-linear", "bcsr-conv"), 3);
  const std::string text = compiled.summary();
  EXPECT_NE(text.find("bcsr-"), std::string::npos);
}

TEST(CompiledNetworkTest, ForcedBackendOverridesHeuristic) {
  nn::ModelSpec spec;
  spec.in_channels = 1;
  spec.image_size = 8;
  spec.timesteps = 1;
  const auto net = nn::make_lenet5(spec);
  apply_random_masks(*net, 0.9, 61);  // unstructured: auto would pick CSR
  const Tensor batch = random_batch(2, 1, 8, 62);
  warm_up(*net, batch);
  const Tensor expect = net->predict(batch);

  for (const Backend backend : {Backend::kDense, Backend::kCsr, Backend::kBcsr}) {
    CompileOptions opts;
    opts.backend = backend;
    const CompiledNetwork compiled = CompiledNetwork::compile(*net, opts);
    const std::string tag = difftest::backend_name(backend);
    EXPECT_EQ(count_kinds(compiled, tag + "-linear", tag + "-conv"), 5) << tag;
    expect_bitwise(compiled.run(batch), expect, "forced backend " + tag);
  }
}

TEST(CompiledNetworkTest, ForcedEventActivationMatchesInterpretedOnAllBackends) {
  nn::ModelSpec spec;
  spec.in_channels = 1;
  spec.image_size = 16;
  spec.timesteps = 3;
  const auto net = nn::make_lenet5(spec);
  apply_random_masks(*net, 0.9, 71);
  const Tensor batch = random_batch(2, 1, 16, 72);
  warm_up(*net, batch);
  const Tensor expect = net->predict(batch);

  for (const Backend backend : {Backend::kDense, Backend::kCsr, Backend::kBcsr}) {
    CompileOptions opts;
    opts.backend = backend;
    opts.activation_mode = ActivationMode::kEvent;
    const CompiledNetwork compiled = CompiledNetwork::compile(*net, opts);
    // Every weight op runs the event path, whatever its kernel.
    for (const auto& r : compiled.plan()) {
      if (r.weights > 0) {
        EXPECT_TRUE(r.event) << r.layer << " " << r.kind;
      }
    }
    expect_bitwise(compiled.run(batch), expect,
                   std::string("event activation, backend ") +
                       difftest::backend_name(backend));
  }
}

TEST(CompiledNetworkTest, AutoActivationGoesEventOnlyBehindSpikingInputs) {
  nn::ModelSpec spec;
  spec.in_channels = 1;
  spec.image_size = 16;
  spec.timesteps = 2;
  const auto net = nn::make_lenet5(spec);
  apply_random_masks(*net, 0.9, 81);
  // No warm-up: no recorded rates, so kAuto plans on the fallback
  // estimate (0.15 <= event_max_rate) for every spike-valued input.
  CompileOptions opts;
  const CompiledNetwork compiled = CompiledNetwork::compile(*net, opts);

  // The first conv consumes the direct-encoded analog image — never
  // event-driven under kAuto; the weight layers behind LIF outputs are.
  bool saw_first_weight = false;
  int event_ops = 0;
  for (const auto& r : compiled.plan()) {
    if (r.weights == 0) continue;
    if (!saw_first_weight) {
      EXPECT_FALSE(r.event) << "first weight layer sees analog input: " << r.layer;
      saw_first_weight = true;
    }
    event_ops += r.event;
  }
  EXPECT_GT(event_ops, 0);

  // Forcing dense activations turns the event path off everywhere.
  opts.activation_mode = ActivationMode::kDense;
  const CompiledNetwork dense_act = CompiledNetwork::compile(*net, opts);
  for (const auto& r : dense_act.plan()) EXPECT_FALSE(r.event) << r.layer;

  // Rates above the bar keep the plan on dense activations.
  opts.activation_mode = ActivationMode::kAuto;
  opts.firing_rate_estimate = 0.9;
  const CompiledNetwork busy = CompiledNetwork::compile(*net, opts);
  for (const auto& r : busy.plan()) EXPECT_FALSE(r.event) << r.layer;
}

TEST(CompiledNetworkTest, FromCheckpointServesWithoutATrainingNetwork) {
  nn::ModelSpec spec;
  spec.in_channels = 1;
  spec.image_size = 16;
  spec.timesteps = 2;
  const auto net = nn::make_lenet5(spec);
  apply_random_masks(*net, 0.9, 91);
  const Tensor batch = random_batch(2, 1, 16, 92);
  warm_up(*net, batch);  // make BN running statistics non-trivial
  const Tensor expect = net->predict(batch);

  const std::string path = ::testing::TempDir() + "/compiled_from_checkpoint.ndck";
  nn::save_checkpoint_file(path, *net, nn::CheckpointMeta{"lenet5", spec});

  const CompiledNetwork compiled = CompiledNetwork::from_checkpoint(path);
  expect_bitwise(compiled.run(batch), expect, "compiled from checkpoint");
  EXPECT_GT(compiled.overall_sparsity(), 0.85);

  // v1 checkpoints carry no architecture record and must be rejected.
  const std::string v1_path = ::testing::TempDir() + "/params_only.ndck";
  nn::save_checkpoint_file(v1_path, *net);
  EXPECT_THROW((void)CompiledNetwork::from_checkpoint(v1_path), std::runtime_error);
}

TEST(CompiledNetworkTest, PruneThresholdDropsTinyWeights) {
  nn::ModelSpec spec;
  spec.in_channels = 1;
  spec.image_size = 16;
  spec.timesteps = 1;
  const auto net = nn::make_lenet5(spec);
  apply_random_masks(*net, 0.5, 51);

  CompileOptions strict;
  strict.backend = Backend::kCsr;  // CSR storage counts individual nonzeros
  const CompiledNetwork base = CompiledNetwork::compile(*net, strict);

  CompileOptions pruned = strict;
  pruned.prune_threshold = 0.05F;  // drop small surviving weights too
  const CompiledNetwork trimmed = CompiledNetwork::compile(*net, pruned);
  EXPECT_LT(trimmed.stored_weights(), base.stored_weights());
}

TEST(CompiledNetworkTest, SummaryAndReports) {
  nn::ModelSpec spec;
  spec.in_channels = 1;
  spec.image_size = 16;
  spec.timesteps = 2;
  const auto net = nn::make_lenet5(spec);
  apply_random_masks(*net, 0.9, 61);
  const CompiledNetwork compiled = CompiledNetwork::compile(*net);
  EXPECT_EQ(compiled.timesteps(), 2);
  EXPECT_FALSE(compiled.plan().empty());
  const std::string text = compiled.summary();
  EXPECT_NE(text.find("csr-conv"), std::string::npos);
  EXPECT_NE(text.find("csr-linear"), std::string::npos);
}

TEST(SpikeBatchTest, ScanAndBuilderAgreeOnActiveIndices) {
  Tensor t(Shape{3, 4});
  // Row 0: {1, 3} active; row 1: silent; row 2: all active.
  t.at(0, 1) = 1.0F;
  t.at(0, 3) = 0.5F;
  for (int64_t c = 0; c < 4; ++c) t.at(2, c) = 1.0F;

  const SpikeBatch scanned = SpikeBatch::scan(t);
  EXPECT_EQ(scanned.rows, 3);
  EXPECT_EQ(scanned.row_size, 4);
  EXPECT_NEAR(scanned.rate(), 6.0 / 12.0, 1e-12);
  ASSERT_EQ(scanned.active_count(0), 2);
  EXPECT_EQ(scanned.active_begin(0)[0], 1);
  EXPECT_EQ(scanned.active_begin(0)[1], 3);
  EXPECT_EQ(scanned.active_count(1), 0);
  ASSERT_EQ(scanned.active_count(2), 4);

  // The incremental builder (what neuron ops run) produces the same view
  // from ascending flat pushes.
  SpikeBatchBuilder builder(3, 4);
  for (int64_t i = 0; i < t.numel(); ++i) {
    if (t.at(i) != 0.0F) builder.push(i);
  }
  const SpikeBatch built = builder.finish();
  ASSERT_EQ(built.row_ptr, scanned.row_ptr);
  ASSERT_EQ(built.idx, scanned.idx);
}

TEST(CompiledNetworkTest, RejectsBadInputRank) {
  nn::ModelSpec spec;
  spec.in_channels = 1;
  spec.image_size = 16;
  spec.timesteps = 1;
  const auto net = nn::make_lenet5(spec);
  const CompiledNetwork compiled = CompiledNetwork::compile(*net);
  EXPECT_THROW((void)compiled.run(Tensor(Shape{4})), std::invalid_argument);
}

TEST(CompiledNetworkTest, RejectsBadOptions) {
  nn::ModelSpec spec;
  spec.in_channels = 1;
  spec.image_size = 8;
  spec.timesteps = 1;
  const auto net = nn::make_lenet5(spec);
  CompileOptions opts;
  opts.block_rows = 0;
  EXPECT_THROW((void)CompiledNetwork::compile(*net, opts), std::invalid_argument);
  opts = {};
  opts.bcsr_min_occupancy = 1.5;
  EXPECT_THROW((void)CompiledNetwork::compile(*net, opts), std::invalid_argument);
  opts = {};
  opts.min_sparsity = -0.1;
  EXPECT_THROW((void)CompiledNetwork::compile(*net, opts), std::invalid_argument);
  opts = {};
  opts.prune_threshold = -1.0F;  // would silently compile all-dense under kAuto
  EXPECT_THROW((void)CompiledNetwork::compile(*net, opts), std::invalid_argument);
}

}  // namespace
}  // namespace ndsnn::runtime
