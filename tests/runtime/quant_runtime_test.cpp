// Quantised-value execution through the compiled runtime: precision
// selection (forced / auto error-bound / per-layer overrides / v3
// checkpoint records), report plumbing, byte accounting, and a pinned
// end-to-end sanity run. The tight numeric guarantees live in the
// differential sweep's lockstep precision axis (testing.hpp) and the
// kernel-level tests (tests/sparse/quant_test.cpp).
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "nn/checkpoint.hpp"
#include "testing.hpp"

namespace ndsnn::runtime {
namespace {

difftest::NetConfig pinned_config() {
  difftest::NetConfig cfg;
  cfg.arch = "lenet5";
  cfg.image = 12;
  cfg.sparsity = 0.9;
  cfg.seed = 314159;
  return cfg;
}

/// Weight-op reports (weights > 0), in body order.
std::vector<OpReport> weight_reports(const CompiledNetwork& plan) {
  std::vector<OpReport> out;
  for (const auto& r : plan.plan()) {
    if (r.weights > 0) out.push_back(r);
  }
  return out;
}

TEST(QuantRuntimeTest, ForcedPrecisionQuantisesSparseLayersAndShrinksBytes) {
  const auto net = difftest::build_network(pinned_config());
  CompileOptions fp32_opts;
  fp32_opts.backend = Backend::kCsr;
  const CompiledNetwork fp32 = CompiledNetwork::compile(*net, fp32_opts);
  CompileOptions q_opts = fp32_opts;
  q_opts.weight_precision = WeightPrecision::kInt8;
  const CompiledNetwork q8 = CompiledNetwork::compile(*net, q_opts);
  q_opts.weight_precision = WeightPrecision::kInt4;
  const CompiledNetwork q4 = CompiledNetwork::compile(*net, q_opts);

  for (const auto& r : weight_reports(q8)) {
    EXPECT_EQ(r.precision, sparse::Precision::kInt8) << r.layer;
  }
  // Same structure, smaller value planes: int8 cuts value bytes 4x,
  // int4 8x (index overhead unchanged).
  EXPECT_EQ(q8.stored_weights(), fp32.stored_weights());
  EXPECT_LT(q8.stored_bytes(), fp32.stored_bytes());
  EXPECT_LT(q4.stored_bytes(), q8.stored_bytes());
  // The summary surfaces the precision per op.
  EXPECT_NE(q8.summary().find("int8"), std::string::npos);

  // And the quantised plan still serves: finite logits, right shape.
  const tensor::Tensor batch = difftest::random_batch(pinned_config());
  const tensor::Tensor logits = q8.run(batch);
  EXPECT_EQ(logits.dim(0), batch.dim(0));
  for (int64_t i = 0; i < logits.numel(); ++i) {
    EXPECT_TRUE(std::isfinite(logits.at(i)));
  }
}

TEST(QuantRuntimeTest, DenseKernelLayersAlwaysExecuteFp32) {
  const auto net = difftest::build_network(pinned_config());
  CompileOptions opts;
  opts.backend = Backend::kDense;
  opts.weight_precision = WeightPrecision::kInt8;
  const CompiledNetwork plan = CompiledNetwork::compile(*net, opts);
  for (const auto& r : weight_reports(plan)) {
    EXPECT_EQ(r.precision, sparse::Precision::kFp32) << r.layer;
  }
}

TEST(QuantRuntimeTest, AutoPrecisionFollowsTheMeasuredErrorBound) {
  const auto net = difftest::build_network(pinned_config());
  CompileOptions opts;
  opts.backend = Backend::kCsr;
  opts.weight_precision = WeightPrecision::kAuto;
  // Default bound (0.02): per-row int8 error ~0.4% passes, int4 ~7% is
  // rejected — every sparse layer lands on int8.
  for (const auto& r : weight_reports(CompiledNetwork::compile(*net, opts))) {
    EXPECT_EQ(r.precision, sparse::Precision::kInt8) << r.layer;
  }
  // A generous bound admits int4 (the heuristic prefers the lowest width).
  opts.quant_max_error = 0.2;
  for (const auto& r : weight_reports(CompiledNetwork::compile(*net, opts))) {
    EXPECT_EQ(r.precision, sparse::Precision::kInt4) << r.layer;
  }
  // An unattainable bound keeps everything fp32.
  opts.quant_max_error = 1e-7;
  for (const auto& r : weight_reports(CompiledNetwork::compile(*net, opts))) {
    EXPECT_EQ(r.precision, sparse::Precision::kFp32) << r.layer;
  }
  opts.quant_max_error = -0.5;
  EXPECT_THROW((void)CompiledNetwork::compile(*net, opts), std::invalid_argument);
}

TEST(QuantRuntimeTest, LayerPrecisionOverridesApplyInBodyOrder) {
  const auto net = difftest::build_network(pinned_config());
  CompileOptions opts;
  opts.backend = Backend::kCsr;
  opts.weight_precision = WeightPrecision::kAuto;
  opts.layer_precisions = {sparse::Precision::kInt4, sparse::Precision::kFp32,
                           sparse::Precision::kInt8};
  const auto reports = weight_reports(CompiledNetwork::compile(*net, opts));
  ASSERT_GE(reports.size(), 4U);  // lenet5: conv1 conv2 fc1 fc2 fc3
  EXPECT_EQ(reports[0].precision, sparse::Precision::kInt4);
  EXPECT_EQ(reports[1].precision, sparse::Precision::kFp32);
  EXPECT_EQ(reports[2].precision, sparse::Precision::kInt8);
  // Layers past the override vector fall back to the error-bound
  // heuristic (int8 under the default bound).
  EXPECT_EQ(reports[3].precision, sparse::Precision::kInt8);
}

TEST(QuantRuntimeTest, FakeQuantPlanExecutesFp32KernelsWithQuantisedWeights) {
  const auto net = difftest::build_network(pinned_config());
  CompileOptions opts;
  opts.backend = Backend::kCsr;
  opts.weight_precision = WeightPrecision::kInt8;
  opts.fake_quant = true;
  const CompiledNetwork fake = CompiledNetwork::compile(*net, opts);
  // Reports carry the nominal precision, bytes the actual fp32 storage.
  const auto reports = weight_reports(fake);
  CompileOptions fp32_opts;
  fp32_opts.backend = Backend::kCsr;
  const auto fp32_reports = weight_reports(CompiledNetwork::compile(*net, fp32_opts));
  for (std::size_t i = 0; i < reports.size(); ++i) {
    EXPECT_EQ(reports[i].precision, sparse::Precision::kInt8);
    EXPECT_EQ(reports[i].bytes, fp32_reports[i].bytes);
  }
  // Fake-quant differs from true fp32 (the weights really are
  // quantised). Untrained 0.9-sparse nets go silent before the logits,
  // so the assertion targets the first conv — its analog input is
  // always nonzero.
  const CompiledNetwork fp32 = CompiledNetwork::compile(*net, fp32_opts);
  snn::DirectEncoder encoder;
  const tensor::Tensor batch = difftest::random_batch(pinned_config());
  const Activation a =
      fake.plan_ir().ops[0]->run(Activation(encoder.encode(batch, fake.timesteps())));
  const Activation b =
      fp32.plan_ir().ops[0]->run(Activation(encoder.encode(batch, fp32.timesteps())));
  bool any_diff = false;
  for (int64_t i = 0; i < a.tensor.numel(); ++i) {
    any_diff |= a.tensor.at(i) != b.tensor.at(i);
  }
  EXPECT_TRUE(any_diff);
}

/// Pinned (deterministic) sanity against *true* fp32 weights: the int8
/// first-conv output moves by a real but bounded amount. This guards
/// against gross kernel breakage (wrong scale indexing, nibble-order
/// bugs) with genuine quantisation error in the signal path; the
/// precision contract itself is asserted by the lockstep sweep and
/// tests/sparse/quant_test.cpp.
TEST(QuantRuntimeTest, PinnedFirstOpInt8OutputStaysCloseToFp32) {
  const difftest::NetConfig cfg = pinned_config();
  const auto net = difftest::build_network(cfg);
  const tensor::Tensor batch = difftest::random_batch(cfg);
  CompileOptions opts;
  opts.backend = Backend::kCsr;
  const CompiledNetwork fp32 = CompiledNetwork::compile(*net, opts);
  opts.weight_precision = WeightPrecision::kInt8;
  const CompiledNetwork q8 = CompiledNetwork::compile(*net, opts);
  snn::DirectEncoder encoder;
  const Activation want =
      fp32.plan_ir().ops[0]->run(Activation(encoder.encode(batch, fp32.timesteps())));
  const Activation got =
      q8.plan_ir().ops[0]->run(Activation(encoder.encode(batch, q8.timesteps())));
  double worst = 0.0;
  for (int64_t i = 0; i < want.tensor.numel(); ++i) {
    worst = std::max(worst, static_cast<double>(
                                std::fabs(got.tensor.at(i) - want.tensor.at(i))));
  }
  EXPECT_GT(worst, 0.0);    // quantisation really happened
  EXPECT_LE(worst, 0.05);   // ~0.5 * scale * sum|x| for a 25-term conv row
}

TEST(QuantRuntimeTest, FromCheckpointHonorsV3RecordUnderAuto) {
  const auto net = difftest::build_network(pinned_config());
  const std::string path = ::testing::TempDir() + "/quant_v3.ndck";
  nn::ModelSpec spec;
  spec.in_channels = pinned_config().channels;
  spec.image_size = pinned_config().image;
  spec.timesteps = pinned_config().timesteps;
  spec.seed = pinned_config().seed;
  const nn::QuantRecord record = nn::build_quant_record(*net, sparse::Precision::kInt4);
  nn::save_checkpoint_file(path, *net, nn::CheckpointMeta{"lenet5", spec}, record);

  // kAuto honors the record: every sparse layer serves int4.
  CompileOptions opts;
  opts.backend = Backend::kCsr;
  opts.weight_precision = WeightPrecision::kAuto;
  for (const auto& r : weight_reports(CompiledNetwork::from_checkpoint(path, opts))) {
    EXPECT_EQ(r.precision, sparse::Precision::kInt4) << r.layer;
  }
  // The default (kFp32) ignores it; an explicit precision overrides it.
  CompileOptions fp32_opts;
  fp32_opts.backend = Backend::kCsr;
  for (const auto& r : weight_reports(CompiledNetwork::from_checkpoint(path, fp32_opts))) {
    EXPECT_EQ(r.precision, sparse::Precision::kFp32) << r.layer;
  }
  CompileOptions int8_opts;
  int8_opts.backend = Backend::kCsr;
  int8_opts.weight_precision = WeightPrecision::kInt8;
  for (const auto& r : weight_reports(CompiledNetwork::from_checkpoint(path, int8_opts))) {
    EXPECT_EQ(r.precision, sparse::Precision::kInt8) << r.layer;
  }
}

TEST(QuantRuntimeTest, ParseWeightPrecisionRoundTrips) {
  EXPECT_EQ(parse_weight_precision("auto"), WeightPrecision::kAuto);
  EXPECT_EQ(parse_weight_precision("fp32"), WeightPrecision::kFp32);
  EXPECT_EQ(parse_weight_precision("int8"), WeightPrecision::kInt8);
  EXPECT_EQ(parse_weight_precision("int4"), WeightPrecision::kInt4);
  EXPECT_THROW(parse_weight_precision("bf16"), std::invalid_argument);
  EXPECT_STREQ(weight_precision_name(WeightPrecision::kInt4), "int4");
}

}  // namespace
}  // namespace ndsnn::runtime
