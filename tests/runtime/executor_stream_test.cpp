// BatchExecutor streaming sessions: persistent temporal state behind
// the serving queue. The contract under test: steps of a session run in
// submission order and reproduce a direct StreamSession bitwise (the
// executor adds scheduling, never arithmetic), stream steps are never
// admission-shed mid-stream, and closed/shutdown sessions shed cleanly
// instead of deadlocking or corrupting state.
#include <gtest/gtest.h>

#include <future>
#include <vector>

#include "nn/models/zoo.hpp"
#include "runtime/batch_executor.hpp"
#include "runtime/compiled_network.hpp"
#include "runtime/stream_session.hpp"
#include "sparse/mask.hpp"
#include "tensor/random.hpp"

namespace ndsnn::runtime {
namespace {

using tensor::Rng;
using tensor::Shape;
using tensor::Tensor;

CompiledNetwork make_compiled(uint64_t seed) {
  nn::ModelSpec spec;
  spec.in_channels = 1;
  spec.image_size = 16;
  spec.timesteps = 2;
  spec.seed = seed;
  const auto net = nn::make_lenet5(spec);
  Rng rng(seed + 1);
  for (const auto& p : net->params()) {
    if (!p.prunable) continue;
    const auto active = static_cast<int64_t>(static_cast<double>(p.value->numel()) * 0.1);
    const sparse::Mask mask(p.value->shape(), active, rng);
    mask.apply(*p.value);
  }
  return CompiledNetwork::compile(*net);
}

std::vector<Tensor> make_frames(int64_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<Tensor> frames;
  for (int64_t i = 0; i < count; ++i) {
    Tensor f(Shape{2, 1, 16, 16});
    // Strong currents so LIF state actually evolves across steps and an
    // out-of-order drain could not pass by accident.
    if (i % 3 != 2) f.fill_uniform(rng, 0.0F, 4.0F);
    frames.push_back(std::move(f));
  }
  return frames;
}

void expect_bitwise(const Tensor& got, const Tensor& want, const std::string& ctx) {
  ASSERT_EQ(got.shape(), want.shape()) << ctx;
  for (int64_t i = 0; i < want.numel(); ++i) {
    ASSERT_EQ(got.at(i), want.at(i)) << ctx << " elem " << i;
  }
}

TEST(ExecutorStreamTest, StreamedStepsMatchDirectSessionInOrder) {
  const CompiledNetwork compiled = make_compiled(11);
  const std::vector<Tensor> frames = make_frames(8, 12);

  // Reference: a session driven directly, one step at a time.
  StreamSession reference(compiled);
  std::vector<Tensor> want;
  for (const Tensor& f : frames) want.push_back(reference.step(f).logits);

  // Same frames through the executor: submit everything up front (the
  // worker drains multiple queued steps in one pipelined pass) and the
  // per-step results must come back in temporal order, bitwise equal.
  BatchExecutor exec(compiled, 2);
  const uint64_t sid = exec.open_stream(/*pipeline_threads=*/2);
  EXPECT_EQ(exec.open_streams(), 1);
  std::vector<std::future<InferenceResult>> futures;
  for (const Tensor& f : frames) futures.push_back(exec.submit_stream(sid, f));
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const InferenceResult r = futures[i].get();
    expect_bitwise(r.logits, want[i], "step " + std::to_string(i));
    EXPECT_GE(r.latency_ms, 0.0);
  }
  const ExecutorStats stats = exec.stats();
  EXPECT_EQ(stats.stream_steps, static_cast<int64_t>(frames.size()));
  exec.close_stream(sid);
  EXPECT_EQ(exec.open_streams(), 0);
}

TEST(ExecutorStreamTest, StreamsInterleaveWithOneShotRequests) {
  const CompiledNetwork compiled = make_compiled(21);
  const std::vector<Tensor> frames = make_frames(4, 22);
  Tensor oneshot(Shape{2, 1, 16, 16});
  Rng rng(23);
  oneshot.fill_uniform(rng, 0.0F, 1.0F);

  BatchExecutor exec(compiled, 2);
  const Tensor want_oneshot = compiled.run(oneshot);
  StreamSession reference(compiled);

  const uint64_t sid = exec.open_stream();
  for (std::size_t i = 0; i < frames.size(); ++i) {
    auto stream_future = exec.submit_stream(sid, frames[i]);
    auto request_future = exec.submit(InferenceRequest{oneshot, SloClass::kInteractive});
    expect_bitwise(stream_future.get().logits, reference.step(frames[i]).logits,
                   "interleaved step " + std::to_string(i));
    expect_bitwise(request_future.get().logits, want_oneshot,
                   "interleaved one-shot " + std::to_string(i));
  }
  exec.close_stream(sid);
}

TEST(ExecutorStreamTest, TwoSessionsKeepIndependentState) {
  const CompiledNetwork compiled = make_compiled(31);
  const std::vector<Tensor> frames = make_frames(5, 32);

  StreamSession reference(compiled);
  std::vector<Tensor> want;
  for (const Tensor& f : frames) want.push_back(reference.step(f).logits);

  // Both sessions see the same frames; if their neuron state were
  // shared, the second session's trajectory would diverge from the
  // fresh-state reference.
  BatchExecutor exec(compiled, 2);
  const uint64_t a = exec.open_stream();
  const uint64_t b = exec.open_stream();
  EXPECT_NE(a, b);
  EXPECT_EQ(exec.open_streams(), 2);
  for (std::size_t i = 0; i < frames.size(); ++i) {
    auto fa = exec.submit_stream(a, frames[i]);
    auto fb = exec.submit_stream(b, frames[i]);
    expect_bitwise(fa.get().logits, want[i], "session a step " + std::to_string(i));
    expect_bitwise(fb.get().logits, want[i], "session b step " + std::to_string(i));
  }
  exec.close_stream(a);
  exec.close_stream(b);
  EXPECT_EQ(exec.open_streams(), 0);
}

TEST(ExecutorStreamTest, ClosedAndUnknownStreamsShedCleanly) {
  const CompiledNetwork compiled = make_compiled(41);
  const std::vector<Tensor> frames = make_frames(1, 42);

  BatchExecutor exec(compiled, 1);
  const uint64_t sid = exec.open_stream();
  (void)exec.submit_stream(sid, frames[0]).get();
  exec.close_stream(sid);
  exec.close_stream(sid);  // idempotent

  // A drained, closed stream ceases to exist: a late step is an unknown
  // id, same as an id that never was.
  EXPECT_THROW((void)exec.submit_stream(sid, frames[0]).get(), std::invalid_argument);
  EXPECT_THROW((void)exec.submit_stream(9999, frames[0]).get(), std::invalid_argument);

  // kStream does not belong on the request queue: steps need a session.
  EXPECT_THROW((void)exec.submit(InferenceRequest{frames[0], SloClass::kStream}),
               std::invalid_argument);
}

TEST(ExecutorStreamTest, ShutdownShedsStreamsAndRefusesNewOnes) {
  const CompiledNetwork compiled = make_compiled(51);
  const std::vector<Tensor> frames = make_frames(1, 52);

  BatchExecutor exec(compiled, 1);
  const uint64_t sid = exec.open_stream();
  (void)exec.submit_stream(sid, frames[0]).get();
  exec.shutdown();
  EXPECT_THROW((void)exec.submit_stream(sid, frames[0]).get(), ShedError);
  EXPECT_THROW((void)exec.open_stream(), ShedError);
}

}  // namespace
}  // namespace ndsnn::runtime
