// BatchExecutor streaming sessions: persistent temporal state behind
// the serving queue. The contract under test: steps of a session run in
// submission order and reproduce a direct StreamSession bitwise (the
// executor adds scheduling, never arithmetic), stream steps are never
// admission-shed mid-stream, and closed/shutdown sessions shed cleanly
// instead of deadlocking or corrupting state.
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "nn/models/zoo.hpp"
#include "runtime/batch_executor.hpp"
#include "runtime/compiled_network.hpp"
#include "runtime/stream_session.hpp"
#include "sparse/mask.hpp"
#include "tensor/random.hpp"
#include "util/fault_injection.hpp"

namespace ndsnn::runtime {
namespace {

using tensor::Rng;
using tensor::Shape;
using tensor::Tensor;

CompiledNetwork make_compiled(uint64_t seed) {
  nn::ModelSpec spec;
  spec.in_channels = 1;
  spec.image_size = 16;
  spec.timesteps = 2;
  spec.seed = seed;
  const auto net = nn::make_lenet5(spec);
  Rng rng(seed + 1);
  for (const auto& p : net->params()) {
    if (!p.prunable) continue;
    const auto active = static_cast<int64_t>(static_cast<double>(p.value->numel()) * 0.1);
    const sparse::Mask mask(p.value->shape(), active, rng);
    mask.apply(*p.value);
  }
  return CompiledNetwork::compile(*net);
}

std::vector<Tensor> make_frames(int64_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<Tensor> frames;
  for (int64_t i = 0; i < count; ++i) {
    Tensor f(Shape{2, 1, 16, 16});
    // Strong currents so LIF state actually evolves across steps and an
    // out-of-order drain could not pass by accident.
    if (i % 3 != 2) f.fill_uniform(rng, 0.0F, 4.0F);
    frames.push_back(std::move(f));
  }
  return frames;
}

void expect_bitwise(const Tensor& got, const Tensor& want, const std::string& ctx) {
  ASSERT_EQ(got.shape(), want.shape()) << ctx;
  for (int64_t i = 0; i < want.numel(); ++i) {
    ASSERT_EQ(got.at(i), want.at(i)) << ctx << " elem " << i;
  }
}

TEST(ExecutorStreamTest, StreamedStepsMatchDirectSessionInOrder) {
  const CompiledNetwork compiled = make_compiled(11);
  const std::vector<Tensor> frames = make_frames(8, 12);

  // Reference: a session driven directly, one step at a time.
  StreamSession reference(compiled);
  std::vector<Tensor> want;
  for (const Tensor& f : frames) want.push_back(reference.step(f).logits);

  // Same frames through the executor: submit everything up front (the
  // worker drains multiple queued steps in one pipelined pass) and the
  // per-step results must come back in temporal order, bitwise equal.
  BatchExecutor exec(compiled, 2);
  const uint64_t sid = exec.open_stream(/*pipeline_threads=*/2);
  EXPECT_EQ(exec.open_streams(), 1);
  std::vector<std::future<InferenceResult>> futures;
  for (const Tensor& f : frames) futures.push_back(exec.submit_stream(sid, f));
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const InferenceResult r = futures[i].get();
    expect_bitwise(r.logits, want[i], "step " + std::to_string(i));
    EXPECT_GE(r.latency_ms, 0.0);
  }
  const ExecutorStats stats = exec.stats();
  EXPECT_EQ(stats.stream_steps, static_cast<int64_t>(frames.size()));
  exec.close_stream(sid);
  EXPECT_EQ(exec.open_streams(), 0);
}

TEST(ExecutorStreamTest, StreamsInterleaveWithOneShotRequests) {
  const CompiledNetwork compiled = make_compiled(21);
  const std::vector<Tensor> frames = make_frames(4, 22);
  Tensor oneshot(Shape{2, 1, 16, 16});
  Rng rng(23);
  oneshot.fill_uniform(rng, 0.0F, 1.0F);

  BatchExecutor exec(compiled, 2);
  const Tensor want_oneshot = compiled.run(oneshot);
  StreamSession reference(compiled);

  const uint64_t sid = exec.open_stream();
  for (std::size_t i = 0; i < frames.size(); ++i) {
    auto stream_future = exec.submit_stream(sid, frames[i]);
    auto request_future = exec.submit(InferenceRequest{oneshot, SloClass::kInteractive});
    expect_bitwise(stream_future.get().logits, reference.step(frames[i]).logits,
                   "interleaved step " + std::to_string(i));
    expect_bitwise(request_future.get().logits, want_oneshot,
                   "interleaved one-shot " + std::to_string(i));
  }
  exec.close_stream(sid);
}

TEST(ExecutorStreamTest, TwoSessionsKeepIndependentState) {
  const CompiledNetwork compiled = make_compiled(31);
  const std::vector<Tensor> frames = make_frames(5, 32);

  StreamSession reference(compiled);
  std::vector<Tensor> want;
  for (const Tensor& f : frames) want.push_back(reference.step(f).logits);

  // Both sessions see the same frames; if their neuron state were
  // shared, the second session's trajectory would diverge from the
  // fresh-state reference.
  BatchExecutor exec(compiled, 2);
  const uint64_t a = exec.open_stream();
  const uint64_t b = exec.open_stream();
  EXPECT_NE(a, b);
  EXPECT_EQ(exec.open_streams(), 2);
  for (std::size_t i = 0; i < frames.size(); ++i) {
    auto fa = exec.submit_stream(a, frames[i]);
    auto fb = exec.submit_stream(b, frames[i]);
    expect_bitwise(fa.get().logits, want[i], "session a step " + std::to_string(i));
    expect_bitwise(fb.get().logits, want[i], "session b step " + std::to_string(i));
  }
  exec.close_stream(a);
  exec.close_stream(b);
  EXPECT_EQ(exec.open_streams(), 0);
}

TEST(ExecutorStreamTest, ClosedAndUnknownStreamsShedCleanly) {
  const CompiledNetwork compiled = make_compiled(41);
  const std::vector<Tensor> frames = make_frames(1, 42);

  BatchExecutor exec(compiled, 1);
  const uint64_t sid = exec.open_stream();
  (void)exec.submit_stream(sid, frames[0]).get();
  exec.close_stream(sid);
  exec.close_stream(sid);  // idempotent

  // A drained, closed stream ceases to exist: a late step is an unknown
  // id, same as an id that never was.
  EXPECT_THROW((void)exec.submit_stream(sid, frames[0]).get(), std::invalid_argument);
  EXPECT_THROW((void)exec.submit_stream(9999, frames[0]).get(), std::invalid_argument);

  // kStream does not belong on the request queue: steps need a session.
  EXPECT_THROW((void)exec.submit(InferenceRequest{frames[0], SloClass::kStream}),
               std::invalid_argument);
}

TEST(ExecutorStreamTest, ShutdownShedsStreamsAndRefusesNewOnes) {
  const CompiledNetwork compiled = make_compiled(51);
  const std::vector<Tensor> frames = make_frames(1, 52);

  BatchExecutor exec(compiled, 1);
  const uint64_t sid = exec.open_stream();
  (void)exec.submit_stream(sid, frames[0]).get();
  exec.shutdown();
  EXPECT_THROW((void)exec.submit_stream(sid, frames[0]).get(), ShedError);
  EXPECT_THROW((void)exec.open_stream(), ShedError);
}

TEST(ExecutorStreamTest, StreamQueueCapRejectsWithBackpressureError) {
  const CompiledNetwork compiled = make_compiled(61);
  const std::vector<Tensor> frames = make_frames(4, 62);

  StreamSession reference(compiled);
  std::vector<Tensor> want;
  for (const Tensor& f : frames) want.push_back(reference.step(f).logits);

  ExecutorOptions opts;
  opts.max_stream_queue = 2;
  BatchExecutor exec(compiled, 1, opts);
  const uint64_t sid = exec.open_stream();

  // Hold the single worker mid-drain with an injected 50 ms stall, so
  // steps pile onto the session queue deterministically instead of
  // racing a fast worker.
  util::fault::FaultInjector::global().arm("executor.stall",
                                           util::fault::Rule{1.0, 1, 0});
  auto f0 = exec.submit_stream(sid, frames[0]);
  while (util::fault::FaultInjector::global().fires("executor.stall") < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Worker is sleeping with frame 0 already taken off the queue: these
  // two fill the cap (queued = 2 = max_stream_queue)...
  auto f1 = exec.submit_stream(sid, frames[1]);
  auto f2 = exec.submit_stream(sid, frames[2]);
  // ...and the third is over it. Typed rejection through the future;
  // nothing about the session changed.
  auto f3 = exec.submit_stream(sid, frames[3]);
  EXPECT_THROW((void)f3.get(), BackpressureError);

  expect_bitwise(f0.get().logits, want[0], "capped step 0");
  expect_bitwise(f1.get().logits, want[1], "capped step 1");
  expect_bitwise(f2.get().logits, want[2], "capped step 2");
  EXPECT_EQ(exec.stats().backpressure_rejections, 1);
  exec.close_stream(sid);
  util::fault::FaultInjector::global().reset();
}

TEST(ExecutorStreamTest, BackpressureErrorIsAShedErrorWithItsOwnType) {
  const CompiledNetwork compiled = make_compiled(71);
  const std::vector<Tensor> frames = make_frames(1, 72);

  BatchExecutor exec(compiled, 1);
  const uint64_t sid = exec.open_stream();
  util::fault::FaultInjector::global().arm("executor.backpressure",
                                           util::fault::Rule{1.0, 1, 0});
  auto rejected = exec.submit_stream(sid, frames[0]);
  // Contract both ways: a generic back-pressure handler catches it as
  // ShedError, a retry-aware one distinguishes the subtype.
  try {
    (void)rejected.get();
    FAIL() << "expected BackpressureError";
  } catch (const ShedError& e) {
    EXPECT_NE(dynamic_cast<const BackpressureError*>(&e), nullptr)
        << "kBackpressure must stay a distinct type under ShedError";
  }
  // The rejected step never touched the session: the next submit runs
  // from clean state, matching a fresh reference.
  StreamSession reference(compiled);
  expect_bitwise(exec.submit_stream(sid, frames[0]).get().logits,
                 reference.step(frames[0]).logits, "post-rejection step");
  exec.close_stream(sid);
  util::fault::FaultInjector::global().reset();
}

TEST(ExecutorStreamTest, CloseStreamRacingShutdownNeverHangsOrCrashes) {
  const CompiledNetwork compiled = make_compiled(81);
  const std::vector<Tensor> frames = make_frames(2, 82);

  // The race under test (and under TSan in CI): close_stream and
  // shutdown interleaving arbitrarily with steps in flight. Legal
  // outcomes per step: a value, or ShedError. Never a hang, never an
  // unresolved future, never a crash.
  for (int round = 0; round < 10; ++round) {
    BatchExecutor exec(compiled, 2);
    const uint64_t sid = exec.open_stream();
    auto s0 = exec.submit_stream(sid, frames[0]);
    auto s1 = exec.submit_stream(sid, frames[1]);
    std::thread closer([&] { exec.close_stream(sid); });
    std::thread stopper([&] { exec.shutdown(); });
    for (auto* f : {&s0, &s1}) {
      try {
        (void)f->get();
      } catch (const ShedError&) {
        // shed at shutdown: acceptable
      }
    }
    closer.join();
    stopper.join();
    // Submitting after the dust settled must shed, not crash.
    EXPECT_THROW((void)exec.submit_stream(sid, frames[0]).get(), std::exception)
        << "round " << round;
  }
}

TEST(ExecutorStreamTest, SubmitStreamRacingShutdownResolvesEveryFuture) {
  const CompiledNetwork compiled = make_compiled(91);
  const std::vector<Tensor> frames = make_frames(1, 92);

  for (int round = 0; round < 10; ++round) {
    BatchExecutor exec(compiled, 1);
    const uint64_t sid = exec.open_stream();
    std::vector<std::future<InferenceResult>> futures;
    std::thread submitter([&] {
      for (int i = 0; i < 4; ++i) futures.push_back(exec.submit_stream(sid, frames[0]));
    });
    std::thread stopper([&] { exec.shutdown(); });
    submitter.join();
    stopper.join();
    int resolved = 0;
    for (auto& f : futures) {
      try {
        (void)f.get();
        ++resolved;
      } catch (const ShedError&) {
        ++resolved;
      }
    }
    // The exactly-one-outcome invariant: every submitted step's future
    // resolves with a value or ShedError — none is dropped on the floor.
    EXPECT_EQ(resolved, 4) << "round " << round;
  }
}

}  // namespace
}  // namespace ndsnn::runtime
