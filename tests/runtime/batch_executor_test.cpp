// BatchExecutor: sharded serving must be deterministic — results depend
// only on inputs and the plan, never on worker count or scheduling.
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "nn/models/zoo.hpp"
#include "runtime/batch_executor.hpp"
#include "runtime/compiled_network.hpp"
#include "runtime/trace.hpp"
#include "sparse/mask.hpp"
#include "tensor/random.hpp"
#include "util/metrics.hpp"

namespace ndsnn::runtime {
namespace {

using tensor::Rng;
using tensor::Shape;
using tensor::Tensor;

CompiledNetwork make_compiled(uint64_t seed) {
  nn::ModelSpec spec;
  spec.in_channels = 1;
  spec.image_size = 16;
  spec.timesteps = 2;
  spec.seed = seed;
  const auto net = nn::make_lenet5(spec);
  Rng rng(seed + 1);
  for (const auto& p : net->params()) {
    if (!p.prunable) continue;
    const auto active = static_cast<int64_t>(static_cast<double>(p.value->numel()) * 0.1);
    const sparse::Mask mask(p.value->shape(), active, rng);
    mask.apply(*p.value);
  }
  return CompiledNetwork::compile(*net);
}

std::vector<Tensor> make_requests(int64_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<Tensor> batches;
  for (int64_t i = 0; i < count; ++i) {
    Tensor b(Shape{2 + i % 3, 1, 16, 16});
    b.fill_uniform(rng, 0.0F, 1.0F);
    batches.push_back(std::move(b));
  }
  return batches;
}

TEST(BatchExecutorTest, DeterministicAcrossThreadCounts) {
  const CompiledNetwork compiled = make_compiled(5);
  const std::vector<Tensor> requests = make_requests(12, 6);

  std::vector<Tensor> single;
  {
    BatchExecutor exec(compiled, 1);
    single = exec.run_all(requests);
  }
  std::vector<Tensor> pooled;
  {
    BatchExecutor exec(compiled, 4);
    pooled = exec.run_all(requests);
  }
  ASSERT_EQ(single.size(), pooled.size());
  for (std::size_t i = 0; i < single.size(); ++i) {
    ASSERT_EQ(single[i].shape(), pooled[i].shape()) << "request " << i;
    for (int64_t j = 0; j < single[i].numel(); ++j) {
      // Bit-for-bit: sharding must not change the arithmetic.
      ASSERT_EQ(single[i].at(j), pooled[i].at(j)) << "request " << i << " elem " << j;
    }
  }
}

TEST(BatchExecutorTest, ResultsMatchDirectRunAndPreserveOrder) {
  const CompiledNetwork compiled = make_compiled(7);
  const std::vector<Tensor> requests = make_requests(6, 8);
  BatchExecutor exec(compiled, 3);
  const std::vector<Tensor> results = exec.run_all(requests);
  ASSERT_EQ(results.size(), requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const Tensor expect = compiled.run(requests[i]);
    ASSERT_EQ(results[i].shape(), expect.shape());
    for (int64_t j = 0; j < expect.numel(); ++j) {
      ASSERT_EQ(results[i].at(j), expect.at(j));
    }
  }
}

TEST(BatchExecutorTest, CountsCompletedWork) {
  const CompiledNetwork compiled = make_compiled(9);
  BatchExecutor exec(compiled, 2);
  const std::vector<Tensor> requests = make_requests(5, 10);
  int64_t samples = 0;
  for (const auto& r : requests) samples += r.dim(0);
  (void)exec.run_all(requests);
  EXPECT_EQ(exec.completed_requests(), 5);
  EXPECT_EQ(exec.completed_samples(), samples);
}

TEST(BatchExecutorTest, LatencyPercentilesTrackCompletedRequests) {
  const CompiledNetwork compiled = make_compiled(17);
  BatchExecutor exec(compiled, 2);

  const ExecutorStats empty = exec.stats();
  EXPECT_EQ(empty.requests, 0);
  EXPECT_EQ(empty.p99_ms, 0.0);

  const std::vector<Tensor> requests = make_requests(8, 18);
  int64_t samples = 0;
  for (const auto& r : requests) samples += r.dim(0);
  (void)exec.run_all(requests);

  const ExecutorStats stats = exec.stats();
  EXPECT_EQ(stats.requests, 8);
  EXPECT_EQ(stats.samples, samples);
  // Every request executed real work, and the nearest-rank percentiles
  // must be ordered: p50 <= p95 <= p99 <= max, with the mean inside
  // [min, max] (so also <= max).
  EXPECT_GT(stats.p50_ms, 0.0);
  EXPECT_LE(stats.p50_ms, stats.p95_ms);
  EXPECT_LE(stats.p95_ms, stats.p99_ms);
  EXPECT_LE(stats.p99_ms, stats.max_ms);
  EXPECT_GT(stats.mean_ms, 0.0);
  EXPECT_LE(stats.mean_ms, stats.max_ms);
}

TEST(BatchExecutorTest, ShutdownDrainsQueueAndRejectsNewWork) {
  const CompiledNetwork compiled = make_compiled(11);
  BatchExecutor exec(compiled, 2);
  std::vector<std::future<Tensor>> futures;
  const std::vector<Tensor> requests = make_requests(4, 12);
  futures.reserve(requests.size());
  for (const auto& r : requests) futures.push_back(exec.submit(r));
  exec.shutdown();
  for (auto& f : futures) EXPECT_NO_THROW((void)f.get());
  // submit() itself must never throw after shutdown — a serve loop
  // racing shutdown would die mid-drain. The rejection arrives through
  // the future as ShedError, and is counted as a shed request.
  std::future<Tensor> late;
  EXPECT_NO_THROW(late = exec.submit(requests[0]));
  EXPECT_THROW((void)late.get(), ShedError);
  EXPECT_EQ(exec.stats().shed_requests, 1);
  EXPECT_NO_THROW(exec.shutdown());  // idempotent
}

TEST(BatchExecutorTest, RejectsZeroThreads) {
  const CompiledNetwork compiled = make_compiled(13);
  EXPECT_THROW(BatchExecutor(compiled, 0), std::invalid_argument);
}

TEST(BatchExecutorTest, SplitsBudgetBetweenRequestsAndIntraOp) {
  nn::ModelSpec spec;
  spec.in_channels = 1;
  spec.image_size = 16;
  spec.timesteps = 2;
  spec.seed = 19;
  const auto net = nn::make_lenet5(spec);
  CompileOptions opts;
  opts.num_threads = 4;
  const CompiledNetwork pooled = CompiledNetwork::compile(*net, opts);
  ASSERT_EQ(pooled.intra_op_threads(), 4);
  // 8-thread budget over a 4-lane plan: 2 request workers, not 8.
  BatchExecutor exec(pooled, 8);
  EXPECT_EQ(exec.num_threads(), 2);
  EXPECT_EQ(exec.intra_op_threads(), 4);
  // Budget below the intra width still gets one worker.
  BatchExecutor narrow(pooled, 2);
  EXPECT_EQ(narrow.num_threads(), 1);
}

TEST(BatchExecutorTest, CoalescedResultsMatchSoloRunsBitwise) {
  const CompiledNetwork compiled = make_compiled(23);
  // Single-sample requests: the case coalescing exists for.
  Rng rng(24);
  std::vector<Tensor> requests;
  for (int i = 0; i < 16; ++i) {
    Tensor b(Shape{1, 1, 16, 16});
    b.fill_uniform(rng, 0.0F, 1.0F);
    requests.push_back(std::move(b));
  }
  ExecutorOptions opts;
  opts.max_coalesce = 8;
  opts.max_wait_us = 2000;
  BatchExecutor exec(compiled, 2, opts);
  const std::vector<Tensor> fused = exec.run_all(requests);
  ASSERT_EQ(fused.size(), requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const Tensor solo = compiled.run(requests[i]);
    ASSERT_EQ(fused[i].shape(), solo.shape()) << "request " << i;
    for (int64_t j = 0; j < solo.numel(); ++j) {
      // Ops process batch rows independently, so fusing requests into
      // one time-major pass must not change a single bit.
      ASSERT_EQ(fused[i].at(j), solo.at(j)) << "request " << i << " elem " << j;
    }
  }
  const ExecutorStats stats = exec.stats();
  EXPECT_EQ(stats.requests, 16);
  EXPECT_EQ(stats.samples, 16);
  // With a 2ms hold-open window the queue of 16 back-to-back submits
  // must have fused at least once.
  EXPECT_GT(stats.fused_batches, 0);
  EXPECT_GT(stats.coalesced_requests, 0);
  EXPECT_LE(stats.coalesced_requests, 16);
}

TEST(BatchExecutorTest, CoalescingRespectsSampleCapAndShapeBoundary) {
  const CompiledNetwork compiled = make_compiled(27);
  ExecutorOptions opts;
  opts.max_coalesce = 4;
  opts.max_wait_us = 0;  // fuse only what is already queued
  BatchExecutor exec(compiled, 1, opts);
  Rng rng(28);
  std::vector<std::future<Tensor>> futures;
  // Two sizes interleaved: [1, ...] and [3, ...]; a [3] request cannot
  // join a group already holding 2+ samples under the cap of 4, and
  // different trailing shapes never fuse at all.
  for (int i = 0; i < 6; ++i) {
    Tensor b(Shape{1 + 2 * (i % 2), 1, 16, 16});
    b.fill_uniform(rng, 0.0F, 1.0F);
    futures.push_back(exec.submit(std::move(b)));
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const Tensor logits = futures[i].get();
    EXPECT_EQ(logits.dim(0), 1 + 2 * static_cast<int64_t>(i % 2)) << i;
  }
  const ExecutorStats stats = exec.stats();
  EXPECT_EQ(stats.requests, 6);
  EXPECT_EQ(stats.samples, 12);
}

TEST(BatchExecutorTest, QueueWaitStatsTrackEnqueueToStart) {
  const CompiledNetwork compiled = make_compiled(31);
  // One worker, a burst of 8 requests: everything behind the head of
  // the queue must observe a nonzero enqueue -> start wait, which the
  // service-latency percentiles alone would never show.
  BatchExecutor exec(compiled, 1);
  const std::vector<Tensor> requests = make_requests(8, 32);
  (void)exec.run_all(requests);
  const ExecutorStats stats = exec.stats();
  EXPECT_GT(stats.queue_p95_ms, 0.0);
  EXPECT_LE(stats.queue_p50_ms, stats.queue_p95_ms);
  EXPECT_GE(stats.queue_mean_ms, 0.0);
  // Drained executor: nothing left waiting.
  EXPECT_EQ(stats.queue_depth, 0);
}

TEST(BatchExecutorTest, EmptyExecutorReportsZeroWaitAndDepth) {
  const CompiledNetwork compiled = make_compiled(33);
  BatchExecutor exec(compiled, 2);
  const ExecutorStats stats = exec.stats();
  EXPECT_EQ(stats.queue_depth, 0);
  EXPECT_EQ(stats.queue_mean_ms, 0.0);
  EXPECT_EQ(stats.queue_p50_ms, 0.0);
  EXPECT_EQ(stats.queue_p95_ms, 0.0);
}

TEST(BatchExecutorTest, WorkerUtilizationIsAMeaningfulFraction) {
  const CompiledNetwork compiled = make_compiled(35);
  BatchExecutor exec(compiled, 2);
  (void)exec.run_all(make_requests(8, 36));
  const ExecutorStats stats = exec.stats();
  ASSERT_EQ(stats.utilization_per_worker.size(), 2U);
  EXPECT_GT(stats.worker_utilization, 0.0);
  EXPECT_LE(stats.worker_utilization, 1.0 + 1e-9);
  double sum = 0.0;
  for (const double u : stats.utilization_per_worker) {
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 1.0 + 1e-9);
    sum += u;
  }
  EXPECT_NEAR(stats.worker_utilization, sum / 2.0, 1e-9);
}

TEST(BatchExecutorTest, TracedServingEmitsQueueAndExecuteSpans) {
  trace::reset();
  trace::set_enabled(true);
  {
    const CompiledNetwork compiled = make_compiled(37);
    ExecutorOptions opts;
    opts.max_coalesce = 4;
    opts.max_wait_us = 1000;
    BatchExecutor exec(compiled, 1, opts);
    Rng rng(38);
    std::vector<Tensor> singles;
    for (int i = 0; i < 8; ++i) {
      Tensor b(Shape{1, 1, 16, 16});
      b.fill_uniform(rng, 0.0F, 1.0F);
      singles.push_back(std::move(b));
    }
    (void)exec.run_all(singles);
  }
  trace::set_enabled(false);
  int queue_spans = 0, execute_spans = 0;
  for (const trace::Span& s : trace::snapshot()) {
    const std::string cat(s.cat);
    if (cat == "queue") ++queue_spans;
    if (cat == "serve" && s.name == "execute") ++execute_spans;
  }
  trace::reset();
  // Every request waited in the queue (one span each); every pass —
  // fused or solo — ran under an execute span.
  EXPECT_EQ(queue_spans, 8);
  EXPECT_GE(execute_spans, 1);
  EXPECT_LE(execute_spans, 8);
}

TEST(BatchExecutorTest, ExecutorFeedsProcessMetricsRegistry) {
  auto& reg = util::MetricsRegistry::global();
  const int64_t before = reg.counter("executor.requests").value();
  const CompiledNetwork compiled = make_compiled(39);
  BatchExecutor exec(compiled, 2);
  (void)exec.run_all(make_requests(5, 40));
  EXPECT_EQ(reg.counter("executor.requests").value(), before + 5);
}

// The PR 7 head-of-line pin: two shapes interleaved with coalescing on
// and no hold-open wait. The old single-FIFO take_group stopped at the
// first incompatible head, so strict A/B interleaving fused *nothing*
// (fused_batches == 0 always); per-shape sub-queues fuse the A requests
// with each other and the B requests with each other. Results must
// still match solo runs bitwise.
TEST(BatchExecutorTest, CoalescesAcrossInterleavedShapesWithoutHolBlocking) {
  const CompiledNetwork compiled = make_compiled(41);
  ExecutorOptions opts;
  opts.max_coalesce = 4;
  opts.max_wait_us = 0;  // only fuse what is already queued
  BatchExecutor exec(compiled, 1, opts);
  Rng rng(42);
  // Strictly interleaved single-sample 16px and double-sample requests
  // submitted before any worker can drain (1 worker, queue builds up).
  std::vector<Tensor> requests;
  for (int i = 0; i < 12; ++i) {
    Tensor b(Shape{1 + i % 2, 1, 16, 16});
    b.fill_uniform(rng, 0.0F, 1.0F);
    requests.push_back(b);
  }
  std::vector<std::future<Tensor>> futures;
  futures.reserve(requests.size());
  for (const auto& r : requests) futures.push_back(exec.submit(r));
  std::vector<Tensor> results;
  results.reserve(futures.size());
  for (auto& f : futures) results.push_back(f.get());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const Tensor solo = compiled.run(requests[i]);
    ASSERT_EQ(results[i].shape(), solo.shape()) << "request " << i;
    for (int64_t j = 0; j < solo.numel(); ++j) {
      ASSERT_EQ(results[i].at(j), solo.at(j)) << "request " << i << " elem " << j;
    }
  }
  const ExecutorStats stats = exec.stats();
  EXPECT_EQ(stats.requests, 12);
  // The pin itself: interleaved shapes must not collapse coalescing to
  // zero. (Same-shape requests sit in the same sub-queue and fuse even
  // though a foreign shape arrived between them.)
  EXPECT_GT(stats.fused_batches, 0);
  EXPECT_GT(stats.coalesced_requests, 0);
}

// worker_utilization measures from the FIRST request, not executor
// construction: an executor that idles warm before traffic must not
// dilute its own utilization with the idle prefix.
TEST(BatchExecutorTest, UtilizationIgnoresIdleTimeBeforeFirstRequest) {
  const CompiledNetwork compiled = make_compiled(43);
  BatchExecutor exec(compiled, 1);
  EXPECT_EQ(exec.stats().worker_utilization, 0.0);  // no traffic yet
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  // Two chunky requests queued back-to-back: the single worker is busy
  // for nearly the whole first-submit -> last-completion window, with
  // only one wakeup gap for a contended ctest run to stretch (many
  // small requests would hand the OS a preemption window per group).
  std::vector<std::future<Tensor>> futures;
  Rng rng(44);
  for (int i = 0; i < 2; ++i) {
    Tensor b(Shape{16, 1, 16, 16});
    b.fill_uniform(rng, 0.0F, 1.0F);
    futures.push_back(exec.submit(std::move(b)));
  }
  for (auto& f : futures) (void)f.get();
  const ExecutorStats stats = exec.stats();
  // Counted from construction, the 200 ms idle prefix would push this
  // under ~0.1 (the busy window runs ~10-30 ms); measured from the
  // first request it stays high even on an oversubscribed CI core.
  EXPECT_GT(stats.worker_utilization, 0.3);
  EXPECT_LE(stats.worker_utilization, 1.0 + 1e-9);
}

// Admission control with a minuscule SLO budget: a burst against one
// worker must shed (futures throw ShedError, stats count them) while
// every admitted request still returns bitwise-correct logits.
TEST(BatchExecutorTest, ShedsLoadOnceSloBudgetIsExceeded) {
  const CompiledNetwork compiled = make_compiled(45);
  ExecutorOptions opts;
  opts.slo_ms = 0.01;  // microscopic budget: almost any queueing sheds
  BatchExecutor exec(compiled, 1, opts);
  Rng rng(46);
  std::vector<Tensor> requests;
  std::vector<std::future<Tensor>> futures;
  for (int i = 0; i < 32; ++i) {
    Tensor b(Shape{2, 1, 16, 16});
    b.fill_uniform(rng, 0.0F, 1.0F);
    requests.push_back(b);
    futures.push_back(exec.submit(std::move(b)));
  }
  int64_t ok = 0, shed = 0;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    try {
      const Tensor logits = futures[i].get();
      const Tensor solo = compiled.run(requests[i]);
      ASSERT_EQ(logits.shape(), solo.shape());
      for (int64_t j = 0; j < solo.numel(); ++j) {
        ASSERT_EQ(logits.at(j), solo.at(j)) << "request " << i;
      }
      ++ok;
    } catch (const ShedError&) {
      ++shed;
    }
  }
  const ExecutorStats stats = exec.stats();
  EXPECT_EQ(ok + shed, 32);
  EXPECT_GT(shed, 0);  // the burst cannot fit a 10 us budget
  EXPECT_EQ(stats.shed_requests, shed);
  EXPECT_EQ(stats.requests, ok);
}

// Regression: the admission predictor must not latch shut after a
// spike. A burst of batch-class requests (4x the interactive budget)
// is admitted while the predictor is cold and drains through one
// worker, legitimately recording queue waits far above the
// *interactive* budget. The wait window only refreshes through
// completions, so a predictor that keeps trusting it while the
// executor sits idle sheds every interactive request forever — the
// idle gate (stale window ignored with nothing queued or in flight)
// and the probe admissions are what re-open it.
TEST(BatchExecutorTest, AdmissionRecoversAfterASpikeDrains) {
  const CompiledNetwork compiled = make_compiled(81);
  Rng rng(82);
  Tensor one(Shape{1, 1, 16, 16});
  one.fill_uniform(rng, 0.0F, 1.0F);
  // Calibrate the SLO off one solo request: comfortable when idle,
  // hopeless for the tail of a 256-deep burst.
  double service_ms = 0.0;
  {
    BatchExecutor warm(compiled, 1);
    const auto t0 = std::chrono::steady_clock::now();
    (void)warm.submit(one).get();
    service_ms = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - t0)
                     .count();
  }
  ExecutorOptions opts;
  opts.slo_ms = std::max(5.0, 4.0 * service_ms);
  BatchExecutor exec(compiled, 1, opts);
  std::vector<std::future<Tensor>> futures;
  futures.reserve(256);
  for (int i = 0; i < 256; ++i) {
    futures.push_back(exec.submit(one, SloClass::kBatch));
  }
  int64_t completed = 0;
  for (auto& f : futures) {
    try {
      (void)f.get();
      ++completed;
    } catch (const ShedError&) {
    }
  }
  ASSERT_GT(completed, 0);
  // The spike has fully drained: nothing queued, nothing in flight, so
  // a new request truly waits ~nothing — the stale window must not
  // forecast otherwise...
  EXPECT_EQ(exec.stats().queue_depth, 0);
  EXPECT_LT(exec.stats().predicted_wait_ms, opts.slo_ms);
  // ...and a fresh interactive request is admitted and served instead
  // of being shed against the ghost of the spike.
  EXPECT_NO_THROW((void)exec.submit(one).get());
}

// Scheduler determinism: per-request logits depend only on the input
// and the plan — not on worker count, SLO class, EDF ordering, or
// which other requests were shed around them.
TEST(BatchExecutorTest, DeterministicUnderSloSchedulingAndMixedClasses) {
  const CompiledNetwork compiled = make_compiled(47);
  const std::vector<Tensor> requests = make_requests(10, 48);
  std::vector<Tensor> reference;
  reference.reserve(requests.size());
  for (const auto& r : requests) reference.push_back(compiled.run(r));

  for (const int workers : {1, 3}) {
    ExecutorOptions opts;
    opts.max_coalesce = 4;
    opts.slo_ms = 1e6;  // EDF + admission active, budget never binds
    BatchExecutor exec(compiled, workers, opts);
    std::vector<std::future<Tensor>> futures;
    futures.reserve(requests.size());
    for (std::size_t i = 0; i < requests.size(); ++i) {
      const SloClass slo = i % 3 == 0 ? SloClass::kBatch : SloClass::kInteractive;
      futures.push_back(exec.submit(requests[i], slo));
    }
    for (std::size_t i = 0; i < futures.size(); ++i) {
      const Tensor logits = futures[i].get();
      ASSERT_EQ(logits.shape(), reference[i].shape()) << workers << " workers, " << i;
      for (int64_t j = 0; j < logits.numel(); ++j) {
        ASSERT_EQ(logits.at(j), reference[i].at(j))
            << workers << " workers, request " << i << " elem " << j;
      }
    }
    EXPECT_EQ(exec.stats().slo_violations, 0);  // budget was effectively infinite
  }
}

// End-to-end percentiles: e2e = wait + service per request, so the e2e
// window must dominate the service window under queueing.
TEST(BatchExecutorTest, EndToEndPercentilesIncludeQueueWait) {
  const CompiledNetwork compiled = make_compiled(49);
  BatchExecutor exec(compiled, 1);
  (void)exec.run_all(make_requests(8, 50));
  const ExecutorStats stats = exec.stats();
  EXPECT_GT(stats.e2e_p50_ms, 0.0);
  EXPECT_LE(stats.e2e_p50_ms, stats.e2e_p95_ms);
  EXPECT_LE(stats.e2e_p95_ms, stats.e2e_p99_ms);
  // A 1-worker burst queues everything behind the head: the e2e p95
  // must exceed pure service p95 by the accumulated wait.
  EXPECT_GE(stats.e2e_p95_ms, stats.p95_ms);
}

TEST(BatchExecutorTest, PropagatesRunErrorsThroughFuture) {
  const CompiledNetwork compiled = make_compiled(15);
  BatchExecutor exec(compiled, 1);
  auto bad = exec.submit(Tensor(Shape{3, 3, 3, 3}));  // wrong channel count
  EXPECT_THROW((void)bad.get(), std::invalid_argument);
}

}  // namespace
}  // namespace ndsnn::runtime
