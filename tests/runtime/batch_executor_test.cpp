// BatchExecutor: sharded serving must be deterministic — results depend
// only on inputs and the plan, never on worker count or scheduling.
#include <gtest/gtest.h>

#include <future>
#include <vector>

#include "nn/models/zoo.hpp"
#include "runtime/batch_executor.hpp"
#include "runtime/compiled_network.hpp"
#include "sparse/mask.hpp"
#include "tensor/random.hpp"

namespace ndsnn::runtime {
namespace {

using tensor::Rng;
using tensor::Shape;
using tensor::Tensor;

CompiledNetwork make_compiled(uint64_t seed) {
  nn::ModelSpec spec;
  spec.in_channels = 1;
  spec.image_size = 16;
  spec.timesteps = 2;
  spec.seed = seed;
  const auto net = nn::make_lenet5(spec);
  Rng rng(seed + 1);
  for (const auto& p : net->params()) {
    if (!p.prunable) continue;
    const auto active = static_cast<int64_t>(static_cast<double>(p.value->numel()) * 0.1);
    const sparse::Mask mask(p.value->shape(), active, rng);
    mask.apply(*p.value);
  }
  return CompiledNetwork::compile(*net);
}

std::vector<Tensor> make_requests(int64_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<Tensor> batches;
  for (int64_t i = 0; i < count; ++i) {
    Tensor b(Shape{2 + i % 3, 1, 16, 16});
    b.fill_uniform(rng, 0.0F, 1.0F);
    batches.push_back(std::move(b));
  }
  return batches;
}

TEST(BatchExecutorTest, DeterministicAcrossThreadCounts) {
  const CompiledNetwork compiled = make_compiled(5);
  const std::vector<Tensor> requests = make_requests(12, 6);

  std::vector<Tensor> single;
  {
    BatchExecutor exec(compiled, 1);
    single = exec.run_all(requests);
  }
  std::vector<Tensor> pooled;
  {
    BatchExecutor exec(compiled, 4);
    pooled = exec.run_all(requests);
  }
  ASSERT_EQ(single.size(), pooled.size());
  for (std::size_t i = 0; i < single.size(); ++i) {
    ASSERT_EQ(single[i].shape(), pooled[i].shape()) << "request " << i;
    for (int64_t j = 0; j < single[i].numel(); ++j) {
      // Bit-for-bit: sharding must not change the arithmetic.
      ASSERT_EQ(single[i].at(j), pooled[i].at(j)) << "request " << i << " elem " << j;
    }
  }
}

TEST(BatchExecutorTest, ResultsMatchDirectRunAndPreserveOrder) {
  const CompiledNetwork compiled = make_compiled(7);
  const std::vector<Tensor> requests = make_requests(6, 8);
  BatchExecutor exec(compiled, 3);
  const std::vector<Tensor> results = exec.run_all(requests);
  ASSERT_EQ(results.size(), requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const Tensor expect = compiled.run(requests[i]);
    ASSERT_EQ(results[i].shape(), expect.shape());
    for (int64_t j = 0; j < expect.numel(); ++j) {
      ASSERT_EQ(results[i].at(j), expect.at(j));
    }
  }
}

TEST(BatchExecutorTest, CountsCompletedWork) {
  const CompiledNetwork compiled = make_compiled(9);
  BatchExecutor exec(compiled, 2);
  const std::vector<Tensor> requests = make_requests(5, 10);
  int64_t samples = 0;
  for (const auto& r : requests) samples += r.dim(0);
  (void)exec.run_all(requests);
  EXPECT_EQ(exec.completed_requests(), 5);
  EXPECT_EQ(exec.completed_samples(), samples);
}

TEST(BatchExecutorTest, LatencyPercentilesTrackCompletedRequests) {
  const CompiledNetwork compiled = make_compiled(17);
  BatchExecutor exec(compiled, 2);

  const ExecutorStats empty = exec.stats();
  EXPECT_EQ(empty.requests, 0);
  EXPECT_EQ(empty.p99_ms, 0.0);

  const std::vector<Tensor> requests = make_requests(8, 18);
  int64_t samples = 0;
  for (const auto& r : requests) samples += r.dim(0);
  (void)exec.run_all(requests);

  const ExecutorStats stats = exec.stats();
  EXPECT_EQ(stats.requests, 8);
  EXPECT_EQ(stats.samples, samples);
  // Every request executed real work, and the nearest-rank percentiles
  // must be ordered: p50 <= p95 <= p99 <= max, with the mean inside
  // [min, max] (so also <= max).
  EXPECT_GT(stats.p50_ms, 0.0);
  EXPECT_LE(stats.p50_ms, stats.p95_ms);
  EXPECT_LE(stats.p95_ms, stats.p99_ms);
  EXPECT_LE(stats.p99_ms, stats.max_ms);
  EXPECT_GT(stats.mean_ms, 0.0);
  EXPECT_LE(stats.mean_ms, stats.max_ms);
}

TEST(BatchExecutorTest, ShutdownDrainsQueueAndRejectsNewWork) {
  const CompiledNetwork compiled = make_compiled(11);
  BatchExecutor exec(compiled, 2);
  std::vector<std::future<Tensor>> futures;
  const std::vector<Tensor> requests = make_requests(4, 12);
  futures.reserve(requests.size());
  for (const auto& r : requests) futures.push_back(exec.submit(r));
  exec.shutdown();
  for (auto& f : futures) EXPECT_NO_THROW((void)f.get());
  EXPECT_THROW((void)exec.submit(requests[0]), std::runtime_error);
  EXPECT_NO_THROW(exec.shutdown());  // idempotent
}

TEST(BatchExecutorTest, RejectsZeroThreads) {
  const CompiledNetwork compiled = make_compiled(13);
  EXPECT_THROW(BatchExecutor(compiled, 0), std::invalid_argument);
}

TEST(BatchExecutorTest, PropagatesRunErrorsThroughFuture) {
  const CompiledNetwork compiled = make_compiled(15);
  BatchExecutor exec(compiled, 1);
  auto bad = exec.submit(Tensor(Shape{3, 3, 3, 3}));  // wrong channel count
  EXPECT_THROW((void)bad.get(), std::invalid_argument);
}

}  // namespace
}  // namespace ndsnn::runtime
