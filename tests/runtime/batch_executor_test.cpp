// BatchExecutor: sharded serving must be deterministic — results depend
// only on inputs and the plan, never on worker count or scheduling.
#include <gtest/gtest.h>

#include <future>
#include <string>
#include <vector>

#include "nn/models/zoo.hpp"
#include "runtime/batch_executor.hpp"
#include "runtime/compiled_network.hpp"
#include "runtime/trace.hpp"
#include "sparse/mask.hpp"
#include "tensor/random.hpp"
#include "util/metrics.hpp"

namespace ndsnn::runtime {
namespace {

using tensor::Rng;
using tensor::Shape;
using tensor::Tensor;

CompiledNetwork make_compiled(uint64_t seed) {
  nn::ModelSpec spec;
  spec.in_channels = 1;
  spec.image_size = 16;
  spec.timesteps = 2;
  spec.seed = seed;
  const auto net = nn::make_lenet5(spec);
  Rng rng(seed + 1);
  for (const auto& p : net->params()) {
    if (!p.prunable) continue;
    const auto active = static_cast<int64_t>(static_cast<double>(p.value->numel()) * 0.1);
    const sparse::Mask mask(p.value->shape(), active, rng);
    mask.apply(*p.value);
  }
  return CompiledNetwork::compile(*net);
}

std::vector<Tensor> make_requests(int64_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<Tensor> batches;
  for (int64_t i = 0; i < count; ++i) {
    Tensor b(Shape{2 + i % 3, 1, 16, 16});
    b.fill_uniform(rng, 0.0F, 1.0F);
    batches.push_back(std::move(b));
  }
  return batches;
}

TEST(BatchExecutorTest, DeterministicAcrossThreadCounts) {
  const CompiledNetwork compiled = make_compiled(5);
  const std::vector<Tensor> requests = make_requests(12, 6);

  std::vector<Tensor> single;
  {
    BatchExecutor exec(compiled, 1);
    single = exec.run_all(requests);
  }
  std::vector<Tensor> pooled;
  {
    BatchExecutor exec(compiled, 4);
    pooled = exec.run_all(requests);
  }
  ASSERT_EQ(single.size(), pooled.size());
  for (std::size_t i = 0; i < single.size(); ++i) {
    ASSERT_EQ(single[i].shape(), pooled[i].shape()) << "request " << i;
    for (int64_t j = 0; j < single[i].numel(); ++j) {
      // Bit-for-bit: sharding must not change the arithmetic.
      ASSERT_EQ(single[i].at(j), pooled[i].at(j)) << "request " << i << " elem " << j;
    }
  }
}

TEST(BatchExecutorTest, ResultsMatchDirectRunAndPreserveOrder) {
  const CompiledNetwork compiled = make_compiled(7);
  const std::vector<Tensor> requests = make_requests(6, 8);
  BatchExecutor exec(compiled, 3);
  const std::vector<Tensor> results = exec.run_all(requests);
  ASSERT_EQ(results.size(), requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const Tensor expect = compiled.run(requests[i]);
    ASSERT_EQ(results[i].shape(), expect.shape());
    for (int64_t j = 0; j < expect.numel(); ++j) {
      ASSERT_EQ(results[i].at(j), expect.at(j));
    }
  }
}

TEST(BatchExecutorTest, CountsCompletedWork) {
  const CompiledNetwork compiled = make_compiled(9);
  BatchExecutor exec(compiled, 2);
  const std::vector<Tensor> requests = make_requests(5, 10);
  int64_t samples = 0;
  for (const auto& r : requests) samples += r.dim(0);
  (void)exec.run_all(requests);
  EXPECT_EQ(exec.completed_requests(), 5);
  EXPECT_EQ(exec.completed_samples(), samples);
}

TEST(BatchExecutorTest, LatencyPercentilesTrackCompletedRequests) {
  const CompiledNetwork compiled = make_compiled(17);
  BatchExecutor exec(compiled, 2);

  const ExecutorStats empty = exec.stats();
  EXPECT_EQ(empty.requests, 0);
  EXPECT_EQ(empty.p99_ms, 0.0);

  const std::vector<Tensor> requests = make_requests(8, 18);
  int64_t samples = 0;
  for (const auto& r : requests) samples += r.dim(0);
  (void)exec.run_all(requests);

  const ExecutorStats stats = exec.stats();
  EXPECT_EQ(stats.requests, 8);
  EXPECT_EQ(stats.samples, samples);
  // Every request executed real work, and the nearest-rank percentiles
  // must be ordered: p50 <= p95 <= p99 <= max, with the mean inside
  // [min, max] (so also <= max).
  EXPECT_GT(stats.p50_ms, 0.0);
  EXPECT_LE(stats.p50_ms, stats.p95_ms);
  EXPECT_LE(stats.p95_ms, stats.p99_ms);
  EXPECT_LE(stats.p99_ms, stats.max_ms);
  EXPECT_GT(stats.mean_ms, 0.0);
  EXPECT_LE(stats.mean_ms, stats.max_ms);
}

TEST(BatchExecutorTest, ShutdownDrainsQueueAndRejectsNewWork) {
  const CompiledNetwork compiled = make_compiled(11);
  BatchExecutor exec(compiled, 2);
  std::vector<std::future<Tensor>> futures;
  const std::vector<Tensor> requests = make_requests(4, 12);
  futures.reserve(requests.size());
  for (const auto& r : requests) futures.push_back(exec.submit(r));
  exec.shutdown();
  for (auto& f : futures) EXPECT_NO_THROW((void)f.get());
  EXPECT_THROW((void)exec.submit(requests[0]), std::runtime_error);
  EXPECT_NO_THROW(exec.shutdown());  // idempotent
}

TEST(BatchExecutorTest, RejectsZeroThreads) {
  const CompiledNetwork compiled = make_compiled(13);
  EXPECT_THROW(BatchExecutor(compiled, 0), std::invalid_argument);
}

TEST(BatchExecutorTest, SplitsBudgetBetweenRequestsAndIntraOp) {
  nn::ModelSpec spec;
  spec.in_channels = 1;
  spec.image_size = 16;
  spec.timesteps = 2;
  spec.seed = 19;
  const auto net = nn::make_lenet5(spec);
  CompileOptions opts;
  opts.num_threads = 4;
  const CompiledNetwork pooled = CompiledNetwork::compile(*net, opts);
  ASSERT_EQ(pooled.intra_op_threads(), 4);
  // 8-thread budget over a 4-lane plan: 2 request workers, not 8.
  BatchExecutor exec(pooled, 8);
  EXPECT_EQ(exec.num_threads(), 2);
  EXPECT_EQ(exec.intra_op_threads(), 4);
  // Budget below the intra width still gets one worker.
  BatchExecutor narrow(pooled, 2);
  EXPECT_EQ(narrow.num_threads(), 1);
}

TEST(BatchExecutorTest, CoalescedResultsMatchSoloRunsBitwise) {
  const CompiledNetwork compiled = make_compiled(23);
  // Single-sample requests: the case coalescing exists for.
  Rng rng(24);
  std::vector<Tensor> requests;
  for (int i = 0; i < 16; ++i) {
    Tensor b(Shape{1, 1, 16, 16});
    b.fill_uniform(rng, 0.0F, 1.0F);
    requests.push_back(std::move(b));
  }
  ExecutorOptions opts;
  opts.max_coalesce = 8;
  opts.max_wait_us = 2000;
  BatchExecutor exec(compiled, 2, opts);
  const std::vector<Tensor> fused = exec.run_all(requests);
  ASSERT_EQ(fused.size(), requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const Tensor solo = compiled.run(requests[i]);
    ASSERT_EQ(fused[i].shape(), solo.shape()) << "request " << i;
    for (int64_t j = 0; j < solo.numel(); ++j) {
      // Ops process batch rows independently, so fusing requests into
      // one time-major pass must not change a single bit.
      ASSERT_EQ(fused[i].at(j), solo.at(j)) << "request " << i << " elem " << j;
    }
  }
  const ExecutorStats stats = exec.stats();
  EXPECT_EQ(stats.requests, 16);
  EXPECT_EQ(stats.samples, 16);
  // With a 2ms hold-open window the queue of 16 back-to-back submits
  // must have fused at least once.
  EXPECT_GT(stats.fused_batches, 0);
  EXPECT_GT(stats.coalesced_requests, 0);
  EXPECT_LE(stats.coalesced_requests, 16);
}

TEST(BatchExecutorTest, CoalescingRespectsSampleCapAndShapeBoundary) {
  const CompiledNetwork compiled = make_compiled(27);
  ExecutorOptions opts;
  opts.max_coalesce = 4;
  opts.max_wait_us = 0;  // fuse only what is already queued
  BatchExecutor exec(compiled, 1, opts);
  Rng rng(28);
  std::vector<std::future<Tensor>> futures;
  // Two sizes interleaved: [1, ...] and [3, ...]; a [3] request cannot
  // join a group already holding 2+ samples under the cap of 4, and
  // different trailing shapes never fuse at all.
  for (int i = 0; i < 6; ++i) {
    Tensor b(Shape{1 + 2 * (i % 2), 1, 16, 16});
    b.fill_uniform(rng, 0.0F, 1.0F);
    futures.push_back(exec.submit(std::move(b)));
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const Tensor logits = futures[i].get();
    EXPECT_EQ(logits.dim(0), 1 + 2 * static_cast<int64_t>(i % 2)) << i;
  }
  const ExecutorStats stats = exec.stats();
  EXPECT_EQ(stats.requests, 6);
  EXPECT_EQ(stats.samples, 12);
}

TEST(BatchExecutorTest, QueueWaitStatsTrackEnqueueToStart) {
  const CompiledNetwork compiled = make_compiled(31);
  // One worker, a burst of 8 requests: everything behind the head of
  // the queue must observe a nonzero enqueue -> start wait, which the
  // service-latency percentiles alone would never show.
  BatchExecutor exec(compiled, 1);
  const std::vector<Tensor> requests = make_requests(8, 32);
  (void)exec.run_all(requests);
  const ExecutorStats stats = exec.stats();
  EXPECT_GT(stats.queue_p95_ms, 0.0);
  EXPECT_LE(stats.queue_p50_ms, stats.queue_p95_ms);
  EXPECT_GE(stats.queue_mean_ms, 0.0);
  // Drained executor: nothing left waiting.
  EXPECT_EQ(stats.queue_depth, 0);
}

TEST(BatchExecutorTest, EmptyExecutorReportsZeroWaitAndDepth) {
  const CompiledNetwork compiled = make_compiled(33);
  BatchExecutor exec(compiled, 2);
  const ExecutorStats stats = exec.stats();
  EXPECT_EQ(stats.queue_depth, 0);
  EXPECT_EQ(stats.queue_mean_ms, 0.0);
  EXPECT_EQ(stats.queue_p50_ms, 0.0);
  EXPECT_EQ(stats.queue_p95_ms, 0.0);
}

TEST(BatchExecutorTest, WorkerUtilizationIsAMeaningfulFraction) {
  const CompiledNetwork compiled = make_compiled(35);
  BatchExecutor exec(compiled, 2);
  (void)exec.run_all(make_requests(8, 36));
  const ExecutorStats stats = exec.stats();
  ASSERT_EQ(stats.utilization_per_worker.size(), 2U);
  EXPECT_GT(stats.worker_utilization, 0.0);
  EXPECT_LE(stats.worker_utilization, 1.0 + 1e-9);
  double sum = 0.0;
  for (const double u : stats.utilization_per_worker) {
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 1.0 + 1e-9);
    sum += u;
  }
  EXPECT_NEAR(stats.worker_utilization, sum / 2.0, 1e-9);
}

TEST(BatchExecutorTest, TracedServingEmitsQueueAndExecuteSpans) {
  trace::reset();
  trace::set_enabled(true);
  {
    const CompiledNetwork compiled = make_compiled(37);
    ExecutorOptions opts;
    opts.max_coalesce = 4;
    opts.max_wait_us = 1000;
    BatchExecutor exec(compiled, 1, opts);
    Rng rng(38);
    std::vector<Tensor> singles;
    for (int i = 0; i < 8; ++i) {
      Tensor b(Shape{1, 1, 16, 16});
      b.fill_uniform(rng, 0.0F, 1.0F);
      singles.push_back(std::move(b));
    }
    (void)exec.run_all(singles);
  }
  trace::set_enabled(false);
  int queue_spans = 0, execute_spans = 0;
  for (const trace::Span& s : trace::snapshot()) {
    const std::string cat(s.cat);
    if (cat == "queue") ++queue_spans;
    if (cat == "serve" && s.name == "execute") ++execute_spans;
  }
  trace::reset();
  // Every request waited in the queue (one span each); every pass —
  // fused or solo — ran under an execute span.
  EXPECT_EQ(queue_spans, 8);
  EXPECT_GE(execute_spans, 1);
  EXPECT_LE(execute_spans, 8);
}

TEST(BatchExecutorTest, ExecutorFeedsProcessMetricsRegistry) {
  auto& reg = util::MetricsRegistry::global();
  const int64_t before = reg.counter("executor.requests").value();
  const CompiledNetwork compiled = make_compiled(39);
  BatchExecutor exec(compiled, 2);
  (void)exec.run_all(make_requests(5, 40));
  EXPECT_EQ(reg.counter("executor.requests").value(), before + 5);
}

TEST(BatchExecutorTest, PropagatesRunErrorsThroughFuture) {
  const CompiledNetwork compiled = make_compiled(15);
  BatchExecutor exec(compiled, 1);
  auto bad = exec.submit(Tensor(Shape{3, 3, 3, 3}));  // wrong channel count
  EXPECT_THROW((void)bad.get(), std::invalid_argument);
}

}  // namespace
}  // namespace ndsnn::runtime
