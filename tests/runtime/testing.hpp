// Differential / property test harness for the inference runtime.
//
// The runtime has three kernel backends (dense / CSR / BCSR) and three
// activation modes (auto / dense / event-driven) chosen per layer by
// cost heuristics, which is far too many combinations for hand-written
// cases. This header generates randomized network configurations
// (architecture x sparsity x N:M pattern x batch/timestep shapes x
// input regime, including all-silent and all-firing extremes) from a
// seeded RNG and checks that CompiledNetwork reproduces the interpreted
// SpikingNetwork::predict *bitwise* on every backend x activation-mode
// pair — the compiled ops mirror the interpreted arithmetic term for
// term (skipped zero-activation terms are exact no-ops), so any drift
// at all is a lowering bug, not roundoff.
//
// Reproducibility: every randomized test derives from env_seed(), which
// reads NDSNN_TEST_SEED (decimal) and logs it; a failing CI run prints
// the seed and the offending NetConfig, and exporting the same seed
// locally replays the identical sequence.
#pragma once

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ios>
#include <memory>
#include <string>
#include <vector>

#include "../testing_env.hpp"
#include "core/nm_projection.hpp"
#include "nn/models/zoo.hpp"
#include "runtime/compiled_network.hpp"
#include "snn/encoder.hpp"
#include "sparse/mask.hpp"
#include "sparse/quant.hpp"
#include "sparse/structured.hpp"
#include "tensor/random.hpp"
#include "util/cpuinfo.hpp"

namespace ndsnn::difftest {

/// Input regime of a scenario. Beyond the uniform-random default, the
/// firing-rate extremes matter to the event-driven path: an all-zero
/// batch keeps every spike train silent (empty SpikeBatch views,
/// n_active == 0 kernels), a saturated batch drives LIF layers to fire
/// on every step (event path degenerates to full gather).
enum class InputKind { kRandom, kSilent, kSaturated };

inline const char* input_kind_name(InputKind k) {
  switch (k) {
    case InputKind::kRandom: return "random";
    case InputKind::kSilent: return "silent";
    case InputKind::kSaturated: return "saturated";
  }
  return "?";
}

/// One randomized network scenario. str() is attached to every failure
/// message so a red run identifies the exact configuration.
struct NetConfig {
  std::string arch = "lenet5";
  int64_t image = 12;
  int64_t channels = 1;
  int64_t batch = 2;
  int64_t timesteps = 2;
  double width_scale = 1.0;
  double sparsity = 0.9;  ///< unstructured mask fraction (before projection)
  int64_t nm_n = 0;       ///< 0 = no N:M projection
  int64_t nm_m = 0;
  double block_keep = 0.0;  ///< > 0: 4x4 block mask keeping this fraction of
                            ///< blocks (the ~1.0-occupancy row-block pattern
                            ///< the BCSR heuristic targets); applied instead
                            ///< of the unstructured mask
  int64_t block_rows = 4;  ///< BCSR block shape handed to CompileOptions
  int64_t block_cols = 4;
  InputKind input = InputKind::kRandom;
  uint64_t seed = 1;

  [[nodiscard]] std::string str() const {
    std::string s = "arch=" + arch + " image=" + std::to_string(image) +
                    " ch=" + std::to_string(channels) + " batch=" + std::to_string(batch) +
                    " T=" + std::to_string(timesteps) +
                    " ws=" + std::to_string(width_scale) +
                    " sparsity=" + std::to_string(sparsity);
    if (nm_m > 0) s += " nm=" + std::to_string(nm_n) + ":" + std::to_string(nm_m);
    if (block_keep > 0.0) s += " block_keep=" + std::to_string(block_keep);
    s += " block=" + std::to_string(block_rows) + "x" + std::to_string(block_cols) +
         " input=" + input_kind_name(input) + " seed=" + std::to_string(seed);
    return s;
  }
};

/// Draw a scenario: mostly LeNets (cheap), with VGG/ResNet sprinkled in
/// to cover conv stacks, BN folding, pooling variants and residuals.
inline NetConfig random_config(tensor::Rng& rng) {
  NetConfig cfg;
  const double arch_roll = rng.uniform01();
  if (arch_roll < 0.70) {
    cfg.arch = "lenet5";
    cfg.image = 4 * (2 + rng.uniform_int(3));  // 8 | 12 | 16
    cfg.channels = rng.bernoulli(0.5) ? 1 : 3;
    cfg.width_scale = rng.bernoulli(0.5) ? 1.0 : 0.5;
  } else if (arch_roll < 0.85) {
    cfg.arch = "vgg16";
    cfg.image = 32;
    cfg.channels = 3;
    cfg.width_scale = 0.0625;
  } else {
    cfg.arch = "resnet19";
    cfg.image = 16;
    cfg.channels = 3;
    cfg.width_scale = 0.0625;
  }
  cfg.batch = 1 + rng.uniform_int(3);
  cfg.timesteps = 1 + rng.uniform_int(3);
  // 0.3 sits below the default min_sparsity so the auto heuristic keeps
  // those layers dense; the rest exercise the sparse kernels.
  const double sparsities[] = {0.3, 0.5, 0.8, 0.9, 0.95};
  cfg.sparsity = sparsities[rng.uniform_int(5)];
  if (rng.bernoulli(0.1)) {  // blocky deployment flavour -> BCSR heuristic
    cfg.block_keep = 0.25;
    cfg.sparsity = 0.0;
  } else if (rng.bernoulli(0.6)) {  // structured N:M deployment flavour
    const int64_t patterns[][2] = {{2, 4}, {1, 4}, {2, 8}, {4, 8}};
    const int64_t pick = rng.uniform_int(4);
    cfg.nm_n = patterns[pick][0];
    cfg.nm_m = patterns[pick][1];
  }
  const int64_t blocks[][2] = {{4, 4}, {2, 2}, {8, 4}, {1, 4}, {4, 1}};
  const int64_t pick = rng.uniform_int(5);
  cfg.block_rows = blocks[pick][0];
  cfg.block_cols = blocks[pick][1];
  // Mostly uniform-random inputs, with the firing-rate extremes mixed in
  // so the event path's empty-active-list and full-gather branches stay
  // exercised at every sweep size.
  const double input_roll = rng.uniform01();
  cfg.input = input_roll < 0.85   ? InputKind::kRandom
              : input_roll < 0.93 ? InputKind::kSilent
                                  : InputKind::kSaturated;
  cfg.seed = rng.next_u64() >> 1;
  return cfg;
}

/// Zero out a fraction of every prunable weight tensor, like the
/// sparse-training methods leave the network after convergence.
inline void apply_random_masks(nn::SpikingNetwork& net, double sparsity, uint64_t seed) {
  tensor::Rng rng(seed);
  for (const auto& p : net.params()) {
    if (!p.prunable) continue;
    const auto active = static_cast<int64_t>(
        static_cast<double>(p.value->numel()) * (1.0 - sparsity));
    const sparse::Mask mask(p.value->shape(), active, rng);
    mask.apply(*p.value);
  }
}

/// Zero random 4x4 blocks of every prunable weight's lowered 2-D form,
/// keeping `keep` of them — the row-block pattern of FPGA SNN
/// accelerators, the ~1.0-occupancy structure the BCSR kernel heuristic
/// selects for (aligned layers measure exactly 1.0; edge-padded blocks
/// pull small layers below the bar, which is the intended per-layer
/// behaviour).
inline void apply_block_masks(nn::SpikingNetwork& net, double keep, uint64_t seed) {
  tensor::Rng rng(seed);
  for (const auto& p : net.params()) {
    if (!p.prunable) continue;
    const int64_t rows = p.value->dim(0);
    const int64_t cols = p.value->numel() / rows;
    float* w = p.value->data();
    for (int64_t rb = 0; rb < rows; rb += 4) {
      for (int64_t cb = 0; cb < cols; cb += 4) {
        if (rng.uniform01() < keep) continue;
        for (int64_t r = rb; r < std::min(rb + 4, rows); ++r) {
          for (int64_t c = cb; c < std::min(cb + 4, cols); ++c) w[r * cols + c] = 0.0F;
        }
      }
    }
  }
}

/// One training step to make BatchNorm running statistics non-trivial,
/// so equivalence checks exercise the real eval path. train_step only
/// accumulates gradients (no optimizer), so masks/projections survive.
inline void warm_up(nn::SpikingNetwork& net, const tensor::Tensor& batch) {
  std::vector<int64_t> labels(static_cast<std::size_t>(batch.dim(0)), 0);
  (void)net.train_step(batch, labels);
}

/// Input batch [batch, channels, image, image]: uniform [0, 1) for the
/// random regime, all zeros for silent (no layer ever fires), large
/// positive currents for saturated (LIF layers fire every step).
inline tensor::Tensor random_batch(const NetConfig& cfg, uint64_t salt = 0) {
  tensor::Rng rng(cfg.seed ^ (0x9E3779B97F4A7C15ULL + salt));
  tensor::Tensor batch(tensor::Shape{cfg.batch, cfg.channels, cfg.image, cfg.image});
  switch (cfg.input) {
    case InputKind::kRandom:
      batch.fill_uniform(rng, 0.0F, 1.0F);
      break;
    case InputKind::kSilent:
      break;  // stays zero
    case InputKind::kSaturated:
      batch.fill_uniform(rng, 4.0F, 8.0F);
      break;
  }
  return batch;
}

/// Build the scenario's network: zoo model -> unstructured mask ->
/// optional N:M projection -> BN warm-up step.
inline std::unique_ptr<nn::SpikingNetwork> build_network(const NetConfig& cfg) {
  nn::ModelSpec spec;
  spec.in_channels = cfg.channels;
  spec.image_size = cfg.image;
  spec.timesteps = cfg.timesteps;
  spec.width_scale = cfg.width_scale;
  spec.seed = cfg.seed;
  auto net = nn::make_model(cfg.arch, spec);
  if (cfg.block_keep > 0.0) {
    apply_block_masks(*net, cfg.block_keep, cfg.seed + 1);
  } else {
    apply_random_masks(*net, cfg.sparsity, cfg.seed + 1);
  }
  if (cfg.nm_m > 0) {
    (void)core::project_network_nm(*net, {cfg.nm_n, cfg.nm_m});
  }
  warm_up(*net, random_batch(cfg, /*salt=*/1));
  return net;
}

/// CompileOptions matching the scenario's block shape.
inline runtime::CompileOptions options_for(
    const NetConfig& cfg, runtime::Backend backend = runtime::Backend::kAuto,
    runtime::ActivationMode activation = runtime::ActivationMode::kAuto) {
  runtime::CompileOptions opts;
  opts.backend = backend;
  opts.activation_mode = activation;
  opts.block_rows = cfg.block_rows;
  opts.block_cols = cfg.block_cols;
  return opts;
}

/// Bitwise tensor equality; on the first mismatch reports the flat index
/// and both float values at full precision, then stops.
inline void expect_bitwise(const tensor::Tensor& got, const tensor::Tensor& want,
                           const std::string& context) {
  ASSERT_EQ(got.shape(), want.shape()) << context;
  for (int64_t i = 0; i < want.numel(); ++i) {
    ASSERT_EQ(got.at(i), want.at(i))
        << context << " diverges at flat index " << i << " (got "
        << std::hexfloat << got.at(i) << ", want " << want.at(i) << std::defaultfloat << ")";
  }
}

/// All backends the differential sweep exercises.
inline const std::vector<runtime::Backend>& all_backends() {
  static const std::vector<runtime::Backend> kBackends = {
      runtime::Backend::kAuto, runtime::Backend::kDense, runtime::Backend::kCsr,
      runtime::Backend::kBcsr};
  return kBackends;
}

inline const char* backend_name(runtime::Backend b) {
  switch (b) {
    case runtime::Backend::kAuto: return "auto";
    case runtime::Backend::kDense: return "dense";
    case runtime::Backend::kCsr: return "csr";
    case runtime::Backend::kBcsr: return "bcsr";
  }
  return "?";
}

/// All activation modes the differential sweep crosses with the
/// backends: the heuristic, the dense-activation spmm path, and the
/// forced event-driven gather path.
inline const std::vector<runtime::ActivationMode>& all_activation_modes() {
  static const std::vector<runtime::ActivationMode> kModes = {
      runtime::ActivationMode::kAuto, runtime::ActivationMode::kDense,
      runtime::ActivationMode::kEvent};
  return kModes;
}

inline const char* activation_name(runtime::ActivationMode m) {
  switch (m) {
    case runtime::ActivationMode::kAuto: return "auto";
    case runtime::ActivationMode::kDense: return "dense";
    case runtime::ActivationMode::kEvent: return "event";
  }
  return "?";
}

// ------------------------------------------------------------------
// Kernel-tier axis.
//
// The SIMD tiers (util/cpuinfo.hpp) promise that fp32 execution is
// bitwise identical whichever tier dispatches — the intrinsic bodies
// replicate the scalar accumulation order exactly. The sweep enforces
// that promise by re-compiling scenarios with CompileOptions::
// kernel_tier forced below the detected tier and comparing against the
// same interpreted reference: the default (kAuto) compile already
// exercises the *detected* tier, so forcing kScalar and kVector covers
// every tier the machine can run. On a machine without AVX2 the forced
// tiers clamp (resolve() never exceeds detected()) and the axis
// degenerates to re-checking the portable kernels, which is the
// correct behaviour, not a gap.

/// Tiers the sweep forces explicitly on top of the default compile.
inline const std::vector<util::simd::Tier>& forced_kernel_tiers() {
  static const std::vector<util::simd::Tier> kTiers = {
      util::simd::Tier::kScalar, util::simd::Tier::kVector};
  return kTiers;
}

// ------------------------------------------------------------------
// Precision axis.
//
// Quantised execution (CompileOptions::weight_precision) deliberately
// breaks the bitwise contract: the kernels reassociate and promise only
// a bounded error. An SNN's *logits* are not a sound place to assert
// that bound — quantising a weight can move a membrane potential across
// the firing threshold, and one flipped spike shifts a logit by a whole
// synapse weight, so any fixed end-to-end tolerance is either vacuous
// or flaky. The sweep therefore compares *per op, in lockstep*: the
// quantised plan against a CompileOptions::fake_quant reference plan —
// same precision, but the plane is dequantised back to fp32 storage at
// compile time, so the reference executes the quantised plan's *exact*
// effective weights (whatever the grouping: per CSR row, per transposed
// row on the event path, per BCSR block) on the bitwise fp32 kernels.
// Both plans run every op on the *same* input (the reference op's
// output). Weight-op differences are then pure kernel reassociation,
// orders of magnitude inside the documented 1e-2 / 5e-2 tolerances, and
// neuron ops see identical inputs, so no spike can flip: the check is
// deterministic, tight, and immune to threshold cliffs. The tolerances'
// relationship to *fp32* weights is pinned at the kernel level by
// tests/sparse/quant_test.cpp (analytic bound + the documented spike
// regime).

/// Quantised precisions the sweep crosses with backend x activation.
inline const std::vector<runtime::WeightPrecision>& quantised_precisions() {
  static const std::vector<runtime::WeightPrecision> kPrecisions = {
      runtime::WeightPrecision::kInt8, runtime::WeightPrecision::kInt4};
  return kPrecisions;
}

inline sparse::Precision to_sparse_precision(runtime::WeightPrecision p) {
  switch (p) {
    case runtime::WeightPrecision::kInt8: return sparse::Precision::kInt8;
    case runtime::WeightPrecision::kInt4: return sparse::Precision::kInt4;
    default: return sparse::Precision::kFp32;
  }
}

/// Documented per-op max-abs tolerance of a quantised plan against the
/// fp32 plan sharing its effective weights.
inline double quant_tolerance(runtime::WeightPrecision p) {
  return p == runtime::WeightPrecision::kInt4 ? 5e-2 : 1e-2;
}

/// Run two structurally-identical plans op by op on the same inputs and
/// assert every op's output stays within `tol` max-abs. The reference
/// plan's activation feeds *both* next ops, so errors never compound
/// and neuron ops (identical code, identical input) cannot diverge.
inline void expect_lockstep_close(const runtime::Plan& quant, const runtime::Plan& fp32,
                                  tensor::Tensor encoded, double tol,
                                  const std::string& context) {
  ASSERT_EQ(quant.ops.size(), fp32.ops.size()) << context;
  runtime::Activation x(std::move(encoded));
  for (std::size_t i = 0; i < fp32.ops.size(); ++i) {
    const runtime::Activation got = quant.ops[i]->run(x);
    runtime::Activation want = fp32.ops[i]->run(x);
    ASSERT_EQ(got.tensor.shape(), want.tensor.shape())
        << context << " op " << i << " (" << fp32.reports[i].kind << ")";
    for (int64_t e = 0; e < want.tensor.numel(); ++e) {
      ASSERT_LE(std::fabs(got.tensor.at(e) - want.tensor.at(e)), tol)
          << context << " op " << i << " (" << fp32.reports[i].kind
          << ") diverges at flat index " << e << " (got " << got.tensor.at(e) << ", want "
          << want.tensor.at(e) << ")";
    }
    x = std::move(want);
  }
}

}  // namespace ndsnn::difftest
