// Tracing and plan profiling: the observability layer must never change
// what the runtime computes. Pins the span ring's wraparound contract,
// the bitwise identity of traced vs untraced execution across the
// differential harness, per-op span coverage of a compiled plan, the
// PlanProfile aggregates, and the Chrome trace-event JSON shape.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "runtime/trace.hpp"
#include "testing.hpp"

namespace ndsnn::difftest {
namespace {

using runtime::CompiledNetwork;
using runtime::PlanProfile;
namespace trace = runtime::trace;

/// Every trace test runs against process-global recorder state; the
/// fixture guarantees a clean, disabled recorder on both sides so suites
/// sharing the binary never see leftover spans.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    trace::set_enabled(false);
    trace::reset();
  }
  void TearDown() override {
    trace::set_enabled(false);
    trace::reset();
    trace::set_ring_capacity(std::size_t{1} << 15);
  }
};

TEST_F(TraceTest, DisabledByDefaultAndRecordsNothing) {
  EXPECT_FALSE(trace::enabled());
  {
    trace::ScopedSpan span("noop", "phase");
    span.rows(3);
  }
  EXPECT_TRUE(trace::snapshot().empty());
}

TEST_F(TraceTest, RingWrapsAroundKeepingNewest) {
  trace::Ring ring(4);
  for (int i = 0; i < 6; ++i) {
    trace::Span s;
    s.name = "s" + std::to_string(i);
    s.ts_us = static_cast<double>(i);
    ring.push(std::move(s));
  }
  EXPECT_EQ(ring.size(), 4U);
  EXPECT_EQ(ring.dropped(), 2);
  const std::vector<trace::Span> spans = ring.spans();
  ASSERT_EQ(spans.size(), 4U);
  // Oldest-first window over the newest 4 pushes: s2..s5.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(spans[static_cast<std::size_t>(i)].name, "s" + std::to_string(i + 2));
  }
  ring.clear();
  EXPECT_EQ(ring.size(), 0U);
  EXPECT_EQ(ring.dropped(), 0);
}

TEST_F(TraceTest, RingBelowCapacityKeepsEverythingInOrder) {
  trace::Ring ring(8);
  for (int i = 0; i < 5; ++i) {
    trace::Span s;
    s.name = std::to_string(i);
    ring.push(std::move(s));
  }
  EXPECT_EQ(ring.size(), 5U);
  EXPECT_EQ(ring.dropped(), 0);
  const std::vector<trace::Span> spans = ring.spans();
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(spans[static_cast<std::size_t>(i)].name, std::to_string(i));
  }
}

TEST_F(TraceTest, ScopedSpanRecordsWhenEnabled) {
  trace::set_enabled(true);
  {
    trace::ScopedSpan span("unit-test-span", "phase");
    span.rows(7);
    span.rate(0.25);
    span.bytes(1024);
  }
  trace::set_enabled(false);
  const std::vector<trace::Span> spans = trace::snapshot();
  const auto it = std::find_if(spans.begin(), spans.end(), [](const trace::Span& s) {
    return s.name == "unit-test-span";
  });
  ASSERT_NE(it, spans.end());
  EXPECT_STREQ(it->cat, "phase");
  EXPECT_EQ(it->rows, 7);
  EXPECT_DOUBLE_EQ(it->spike_rate, 0.25);
  EXPECT_EQ(it->bytes, 1024);
  EXPECT_GE(it->dur_us, 0.0);
}

TEST_F(TraceTest, TracedRunIsBitwiseIdenticalToUntraced) {
  tensor::Rng rng(env_seed() ^ 0x7ACEULL);
  const int configs = std::min(env_int("NDSNN_DIFF_CONFIGS", 8), 12);
  for (int c = 0; c < configs; ++c) {
    const NetConfig cfg = random_config(rng);
    const auto net = build_network(cfg);
    const CompiledNetwork plan = CompiledNetwork::compile(*net, options_for(cfg));
    const tensor::Tensor batch = random_batch(cfg);
    const tensor::Tensor untraced = plan.run(batch);
    trace::set_enabled(true);
    const tensor::Tensor traced = plan.run(batch);
    // Profiling on top of tracing must not perturb the output either.
    plan.enable_profiling(true);
    const tensor::Tensor both = plan.run(batch);
    plan.enable_profiling(false);
    trace::set_enabled(false);
    expect_bitwise(traced, untraced, "traced vs untraced: " + cfg.str());
    expect_bitwise(both, untraced, "traced+profiled vs untraced: " + cfg.str());
    trace::reset();
  }
}

TEST_F(TraceTest, EveryPlanOpEmitsASpan) {
  NetConfig cfg;
  cfg.seed = env_seed() ^ 0x5FA7ULL;
  const auto net = build_network(cfg);
  const CompiledNetwork plan = CompiledNetwork::compile(*net, options_for(cfg));
  trace::set_enabled(true);
  (void)plan.run(random_batch(cfg));
  trace::set_enabled(false);
  std::set<std::string> op_span_names;
  for (const trace::Span& s : trace::snapshot()) {
    if (std::string(s.cat) == "op") op_span_names.insert(s.name);
  }
  for (const runtime::OpReport& report : plan.plan()) {
    EXPECT_TRUE(op_span_names.count(report.layer) == 1)
        << "no op span for plan op '" << report.layer << "'";
  }
}

TEST_F(TraceTest, PlanProfileAggregatesRunsAndLatencies) {
  NetConfig cfg;
  cfg.seed = env_seed() ^ 0x90F11EULL;
  const auto net = build_network(cfg);
  const CompiledNetwork plan = CompiledNetwork::compile(*net, options_for(cfg));
  EXPECT_FALSE(plan.profiling_enabled());
  EXPECT_EQ(plan.profiled_executes(), 0);

  plan.enable_profiling(true);
  const tensor::Tensor batch = random_batch(cfg);
  constexpr int kRuns = 3;
  for (int r = 0; r < kRuns; ++r) (void)plan.run(batch);
  plan.enable_profiling(false);

  EXPECT_EQ(plan.profiled_executes(), kRuns);
  const std::vector<PlanProfile::OpStats> stats = plan.profile();
  ASSERT_EQ(stats.size(), plan.plan().size());
  bool saw_rate = false;
  for (std::size_t i = 0; i < stats.size(); ++i) {
    const PlanProfile::OpStats& s = stats[i];
    EXPECT_EQ(s.layer, plan.plan()[i].layer) << i;
    EXPECT_EQ(s.runs, kRuns) << s.layer;
    // Rows are time-major (T * batch) for ops behind the encoder.
    EXPECT_EQ(s.rows, kRuns * cfg.batch * cfg.timesteps) << s.layer;
    EXPECT_GE(s.mean_us, 0.0) << s.layer;
    EXPECT_LE(s.p50_us, s.p95_us) << s.layer;
    if (s.ema_rate >= 0.0) {
      saw_rate = true;
      EXPECT_LE(s.ema_rate, 1.0) << s.layer;
    }
  }
  // A lenet5 plan has LIF layers, so at least one op observed a rate.
  EXPECT_TRUE(saw_rate);

  plan.profile_reset();
  EXPECT_EQ(plan.profiled_executes(), 0);
  for (const PlanProfile::OpStats& s : plan.profile()) {
    EXPECT_EQ(s.runs, 0) << s.layer;
    EXPECT_DOUBLE_EQ(s.ema_rate, -1.0) << s.layer;
  }
}

TEST_F(TraceTest, ProfilingDisabledRecordsNothing) {
  NetConfig cfg;
  cfg.seed = env_seed() ^ 0x0FFULL;
  const auto net = build_network(cfg);
  const CompiledNetwork plan = CompiledNetwork::compile(*net, options_for(cfg));
  (void)plan.run(random_batch(cfg));
  EXPECT_EQ(plan.profiled_executes(), 0);
  for (const PlanProfile::OpStats& s : plan.profile()) EXPECT_EQ(s.runs, 0);
}

TEST_F(TraceTest, ChromeJsonShape) {
  trace::Span s;
  s.name = "conv1";
  s.cat = "op";
  s.ts_us = 10.5;
  s.dur_us = 2.5;
  s.tid = 3;
  s.kind = "conv2d+event";
  s.rows = 8;
  s.spike_rate = 0.125;
  s.bytes = 4096;
  trace::Span bare;
  bare.name = "queue-wait";
  bare.cat = "queue";
  const std::string doc = trace::chrome_json({s, bare});
  EXPECT_NE(doc.find("\"displayTimeUnit\":\"ms\""), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"traceEvents\":["), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"name\":\"conv1\""), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"cat\":\"op\""), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"ph\":\"X\""), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"tid\":3"), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"kind\":\"conv2d+event\""), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"rows\":8"), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"bytes\":4096"), std::string::npos) << doc;
  // Unset args are omitted: the bare span's args object is empty.
  EXPECT_NE(doc.find("\"name\":\"queue-wait\""), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"args\":{}"), std::string::npos) << doc;
}

TEST_F(TraceTest, SnapshotMergesAndSortsByStartTime) {
  trace::set_enabled(true);
  for (int i = 0; i < 3; ++i) {
    trace::ScopedSpan span("ordered", "phase");
  }
  trace::set_enabled(false);
  const std::vector<trace::Span> spans = trace::snapshot();
  ASSERT_GE(spans.size(), 3U);
  for (std::size_t i = 1; i < spans.size(); ++i) {
    EXPECT_LE(spans[i - 1].ts_us, spans[i].ts_us);
  }
}

}  // namespace
}  // namespace ndsnn::difftest
