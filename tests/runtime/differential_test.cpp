// The randomized differential sweep: many generated network scenarios,
// each compiled on every backend (auto / dense / CSR / BCSR) crossed
// with every activation mode (auto / dense / event-driven) and checked
// bitwise against the interpreted SpikingNetwork::predict.
//
// Scale with NDSNN_DIFF_CONFIGS (default 200 configurations, i.e. 200
// per backend x activation pair); reproduce a failure with the
// NDSNN_TEST_SEED it logs.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "testing.hpp"

namespace ndsnn::runtime {
namespace {

TEST(DifferentialTest, CompiledMatchesInterpretedBitwiseOnAllBackends) {
  const int configs = difftest::env_int("NDSNN_DIFF_CONFIGS", 200);
  tensor::Rng rng(difftest::env_seed());
  // How often each op kind appeared across all auto-compiled plans: the
  // sweep must actually exercise every weight kernel, not pass vacuously.
  std::map<std::string, int> auto_kinds;
  int auto_event_ops = 0;
  int quant_ops = 0;  // sparse weight ops that carried a quantised plane

  // Pinned scenarios guarantee each weight kernel and both firing-rate
  // extremes show up under kAuto regardless of seed and sweep size (at
  // the Debug-CI sweep of 40 random configs, dense-eligible draws alone
  // have a few-percent chance of never occurring).
  std::vector<difftest::NetConfig> cases;
  difftest::NetConfig pinned;
  pinned.image = 8;
  pinned.seed = 97;
  pinned.sparsity = 0.3;  // below min_sparsity -> dense
  cases.push_back(pinned);
  pinned.sparsity = 0.9;  // unstructured -> CSR
  cases.push_back(pinned);
  pinned.input = difftest::InputKind::kSilent;  // all-silent spike trains
  cases.push_back(pinned);
  pinned.input = difftest::InputKind::kSaturated;  // all-firing spike trains
  cases.push_back(pinned);
  pinned.input = difftest::InputKind::kRandom;
  pinned.sparsity = 0.5;
  pinned.nm_n = 2;  // 2:4 projection: ~0.5 occupancy -> stays CSR
  pinned.nm_m = 4;
  cases.push_back(pinned);
  pinned.nm_n = 0;  // 4x4 block mask: ~1.0 occupancy -> BCSR
  pinned.nm_m = 0;
  pinned.sparsity = 0.0;
  pinned.block_keep = 0.25;
  cases.push_back(pinned);
  for (int i = 0; i < configs; ++i) cases.push_back(difftest::random_config(rng));

  for (std::size_t i = 0; i < cases.size(); ++i) {
    const difftest::NetConfig& cfg = cases[i];
    SCOPED_TRACE("config " + std::to_string(i) + ": " + cfg.str());
    const auto net = difftest::build_network(cfg);
    const tensor::Tensor batch = difftest::random_batch(cfg);
    const tensor::Tensor want = net->predict(batch);

    for (const Backend backend : difftest::all_backends()) {
      for (const ActivationMode activation : difftest::all_activation_modes()) {
        const CompiledNetwork compiled = CompiledNetwork::compile(
            *net, difftest::options_for(cfg, backend, activation));
        if (backend == Backend::kAuto && activation == ActivationMode::kAuto) {
          for (const auto& r : compiled.plan()) {
            ++auto_kinds[r.kind];
            auto_event_ops += r.event;
          }
        }
        difftest::expect_bitwise(
            compiled.run(batch), want,
            std::string("backend=") + difftest::backend_name(backend) +
                " activation=" + difftest::activation_name(activation));
        if (::testing::Test::HasFatalFailure()) return;  // one config is enough to debug
      }
    }

    // Kernel-tier axis: the default compiles above dispatch the detected
    // tier; forcing the lower tiers onto the same scenario must not move
    // a single bit (see the tier-axis note in testing.hpp).
    for (const util::simd::Tier tier : difftest::forced_kernel_tiers()) {
      CompileOptions topts = difftest::options_for(cfg);
      topts.kernel_tier = tier;
      const CompiledNetwork forced = CompiledNetwork::compile(*net, topts);
      difftest::expect_bitwise(forced.run(batch), want,
                               std::string("kernel_tier=") + util::simd::name(tier));
      if (::testing::Test::HasFatalFailure()) return;
    }

    // Precision axis: quantised plans are compared per op, in lockstep,
    // against a fake-quant reference plan executing the identical
    // effective weights on the fp32 kernels (see the precision-axis
    // note in testing.hpp for why logits are not a sound comparison
    // point). ResidualBlock compiles to one composite op whose internal
    // neuron ops the lockstep walk cannot isolate, so resnet19 configs
    // stay on the fp32 axis (the quantised kernels themselves are
    // architecture-agnostic and fully covered by the lenet/vgg sweeps
    // plus tests/sparse/quant_test.cpp).
    if (cfg.arch != "resnet19") {
      snn::DirectEncoder encoder;
      for (const WeightPrecision p : difftest::quantised_precisions()) {
        for (const Backend backend : difftest::all_backends()) {
          for (const ActivationMode activation : difftest::all_activation_modes()) {
            CompileOptions qopts = difftest::options_for(cfg, backend, activation);
            qopts.weight_precision = p;
            const CompiledNetwork qplan = CompiledNetwork::compile(*net, qopts);
            CompileOptions fopts = qopts;
            fopts.fake_quant = true;
            const CompiledNetwork fplan = CompiledNetwork::compile(*net, fopts);
            if (backend == Backend::kAuto && activation == ActivationMode::kAuto) {
              for (const auto& r : qplan.plan()) {
                quant_ops += r.precision != sparse::Precision::kFp32;
              }
            }
            difftest::expect_lockstep_close(
                qplan.plan_ir(), fplan.plan_ir(),
                encoder.encode(batch, qplan.timesteps()), difftest::quant_tolerance(p),
                std::string("precision=") + weight_precision_name(p) +
                    " backend=" + difftest::backend_name(backend) +
                    " activation=" + difftest::activation_name(activation));
            if (::testing::Test::HasFatalFailure()) return;
            if (backend == Backend::kAuto && activation == ActivationMode::kAuto) {
              // Tier axis on the quantised kernels: unlike fp32 they
              // only promise a bounded error, and the bound must hold
              // at every forced tier, not just the dispatched one.
              for (const util::simd::Tier tier : difftest::forced_kernel_tiers()) {
                CompileOptions topts = qopts;
                topts.kernel_tier = tier;
                const CompiledNetwork tplan = CompiledNetwork::compile(*net, topts);
                difftest::expect_lockstep_close(
                    tplan.plan_ir(), fplan.plan_ir(),
                    encoder.encode(batch, tplan.timesteps()), difftest::quant_tolerance(p),
                    std::string("precision=") + weight_precision_name(p) +
                        " kernel_tier=" + util::simd::name(tier));
                if (::testing::Test::HasFatalFailure()) return;
              }
            }
          }
        }
      }
    }
  }

  // The heuristics must have picked each weight kernel — dense
  // (0.3-sparsity layers), CSR (unstructured masks and N:M patterns),
  // BCSR (block-masked layers) — and the event-driven activation path
  // somewhere in the sweep (the silent pinned config guarantees a
  // measured 0 firing rate, which kAuto maps onto the event path for
  // its sparse spiking-input layers).
  EXPECT_GT(auto_kinds["dense-linear"] + auto_kinds["dense-conv"], 0);
  EXPECT_GT(auto_kinds["csr-linear"] + auto_kinds["csr-conv"], 0);
  EXPECT_GT(auto_kinds["bcsr-linear"] + auto_kinds["bcsr-conv"], 0);
  EXPECT_GT(auto_event_ops, 0);
  // The precision axis must have put real quantised planes on sparse
  // weight ops (forced int8/int4 applies to every non-dense kernel; the
  // pinned 0.9-sparsity config guarantees at least one).
  EXPECT_GT(quant_ops, 0);
}

TEST(DifferentialTest, ClassifyAgreesWithInterpretedArgmax) {
  tensor::Rng rng(difftest::env_seed() ^ 0xC1A551F1ULL);
  for (int i = 0; i < 5; ++i) {
    difftest::NetConfig cfg = difftest::random_config(rng);
    cfg.arch = "lenet5";  // keep this auxiliary check cheap
    cfg.image = 8;
    SCOPED_TRACE(cfg.str());
    const auto net = difftest::build_network(cfg);
    const tensor::Tensor batch = difftest::random_batch(cfg);
    const CompiledNetwork compiled = CompiledNetwork::compile(*net);
    const auto classes = compiled.classify(batch);
    const tensor::Tensor logits = net->predict(batch);
    ASSERT_EQ(static_cast<int64_t>(classes.size()), cfg.batch);
    for (int64_t b = 0; b < cfg.batch; ++b) {
      int64_t best = 0;
      for (int64_t c = 1; c < logits.dim(1); ++c) {
        if (logits.at(b, c) > logits.at(b, best)) best = c;
      }
      EXPECT_EQ(classes[static_cast<std::size_t>(b)], best) << "sample " << b;
    }
  }
}

}  // namespace
}  // namespace ndsnn::runtime
