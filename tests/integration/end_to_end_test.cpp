// End-to-end integration tests: the full paper pipeline at miniature
// scale -- model zoo + synthetic data + every sparse-training method +
// trainer + cost model -- asserting the qualitative results the paper
// claims (ordering of methods, cost reduction, sparsity trajectories).
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "util/logging.hpp"

namespace ndsnn::core {
namespace {

class QuietLogs : public ::testing::Test {
 protected:
  void SetUp() override { util::set_log_level(util::LogLevel::kWarn); }
};

ExperimentConfig base_config() {
  ExperimentConfig c;
  c.arch = "lenet5";
  c.dataset = "cifar10";
  c.sparsity = 0.9;
  c.epochs = 6;
  c.train_samples = 320;
  c.test_samples = 96;
  c.batch_size = 32;
  c.model_scale = 0.5;
  c.data_scale = 0.25;  // 8x8 inputs
  c.timesteps = 2;
  c.learning_rate = 0.2;
  return c;
}

using EndToEndTest = QuietLogs;

TEST_F(EndToEndTest, NdsnnFullPipelineTrainsAndSparsifies) {
  auto c = base_config();
  c.method = "ndsnn";
  const TrainResult r = run_experiment(c);
  EXPECT_NEAR(r.final_sparsity, 0.9, 0.03);
  EXPECT_GT(r.final_test_acc, 10.0);  // clearly above random guessing
  // Sparsity trace is non-decreasing (neurogenesis invariant).
  for (std::size_t i = 1; i < r.epochs.size(); ++i) {
    EXPECT_GE(r.epochs[i].sparsity, r.epochs[i - 1].sparsity - 1e-9);
  }
}

TEST_F(EndToEndTest, AllMethodsRunTheFullPipeline) {
  for (const char* m : {"dense", "ndsnn", "set", "rigl", "lth", "admm"}) {
    auto c = base_config();
    c.method = m;
    c.epochs = 3;
    c.train_samples = 96;
    c.test_samples = 48;
    const TrainResult r = run_experiment(c);
    EXPECT_EQ(r.epochs.size(), 3U) << m;
    EXPECT_GE(r.final_test_acc, 0.0) << m;
  }
}

TEST_F(EndToEndTest, NdsnnTrainingCostBelowLthAndDense) {
  // Fig. 5's qualitative claim at miniature scale.
  auto dense_cfg = base_config();
  dense_cfg.method = "dense";
  auto lth_cfg = base_config();
  lth_cfg.method = "lth";
  auto ndsnn_cfg = base_config();
  ndsnn_cfg.method = "ndsnn";

  const TrainResult dense = run_experiment(dense_cfg);
  const TrainResult lth = run_experiment(lth_cfg);
  const TrainResult ndsnn = run_experiment(ndsnn_cfg);

  const double lth_cost = normalized_training_cost_pct(lth, dense);
  const double ndsnn_cost = normalized_training_cost_pct(ndsnn, dense);
  EXPECT_LT(ndsnn_cost, lth_cost);
  EXPECT_LT(ndsnn_cost, 100.0);
}

TEST_F(EndToEndTest, SparsityTrajectoriesMatchFig1Shapes) {
  // LTH starts dense and steps down in rounds; NDSNN starts sparse and
  // ramps to the target; SET stays flat.
  auto lth_cfg = base_config();
  lth_cfg.method = "lth";
  auto ndsnn_cfg = base_config();
  ndsnn_cfg.method = "ndsnn";
  auto set_cfg = base_config();
  set_cfg.method = "set";

  const TrainResult lth = run_experiment(lth_cfg);
  const TrainResult ndsnn = run_experiment(ndsnn_cfg);
  const TrainResult set = run_experiment(set_cfg);

  EXPECT_LT(lth.epochs.front().sparsity, 0.01);       // dense start
  EXPECT_GT(ndsnn.epochs.front().sparsity, 0.3);      // sparse start (theta_i = 0.45)
  EXPECT_NEAR(set.epochs.front().sparsity, set.epochs.back().sparsity, 1e-6);
  EXPECT_GT(ndsnn.epochs.back().sparsity, ndsnn.epochs.front().sparsity);
}

TEST_F(EndToEndTest, ResNetPipelineWorks) {
  auto c = base_config();
  c.arch = "resnet19";
  c.method = "ndsnn";
  c.model_scale = 0.05;
  c.epochs = 4;
  c.train_samples = 128;
  c.test_samples = 32;
  const TrainResult r = run_experiment(c);
  EXPECT_EQ(r.epochs.size(), 4U);
  // theta_i = 0.45 ramping toward 0.9; with the short iteration budget we
  // only require visible progress along the ramp.
  EXPECT_GT(r.final_sparsity, 0.6);
}

TEST_F(EndToEndTest, SmallerTimestepStillTrains) {
  // Fig. 4 regime: T=2.
  auto c = base_config();
  c.method = "ndsnn";
  c.timesteps = 2;
  const TrainResult r2 = run_experiment(c);
  EXPECT_GT(r2.final_test_acc, 10.0);
}

TEST_F(EndToEndTest, Cifar100StandInRuns) {
  auto c = base_config();
  c.dataset = "cifar100";
  c.method = "ndsnn";
  c.epochs = 2;
  c.train_samples = 200;
  c.test_samples = 100;
  const TrainResult r = run_experiment(c);
  EXPECT_EQ(r.epochs.size(), 2U);
}

}  // namespace
}  // namespace ndsnn::core
