// Pipeline coverage for the extension methods (GMP, SNIP) and the
// FLOPs/checkpoint utilities inside real training runs.
#include <gtest/gtest.h>

#include <sstream>

#include "core/experiment.hpp"
#include "core/flops_model.hpp"
#include "nn/checkpoint.hpp"
#include "util/logging.hpp"

namespace ndsnn::core {
namespace {

class QuietLogs2 : public ::testing::Test {
 protected:
  void SetUp() override { util::set_log_level(util::LogLevel::kWarn); }
};

ExperimentConfig small_config(const char* method) {
  ExperimentConfig c;
  c.arch = "lenet5";
  c.dataset = "cifar10";
  c.method = method;
  c.sparsity = 0.8;
  c.epochs = 4;
  c.train_samples = 128;
  c.test_samples = 64;
  c.model_scale = 0.5;
  c.data_scale = 0.25;
  c.timesteps = 2;
  return c;
}

using MethodsPipelineTest = QuietLogs2;

TEST_F(MethodsPipelineTest, GmpReachesTargetThroughTrainer) {
  const TrainResult r = run_experiment(small_config("gmp"));
  EXPECT_NEAR(r.final_sparsity, 0.8, 0.03);
  // GMP sparsity is monotone within the run.
  for (std::size_t i = 1; i < r.epochs.size(); ++i) {
    EXPECT_GE(r.epochs[i].sparsity, r.epochs[i - 1].sparsity - 1e-9);
  }
}

TEST_F(MethodsPipelineTest, SnipPrunesImmediately) {
  const TrainResult r = run_experiment(small_config("snip"));
  // SNIP prunes on the very first step: epoch 0 already at target.
  EXPECT_NEAR(r.epochs.front().sparsity, 0.8, 0.03);
  EXPECT_NEAR(r.final_sparsity, 0.8, 0.03);
}

TEST_F(MethodsPipelineTest, CheckpointAfterSparseTrainingRoundTrips) {
  auto cfg = small_config("ndsnn");
  Experiment exp = build_experiment(cfg);
  Trainer trainer(*exp.network, *exp.method, *exp.train_set, *exp.test_set, exp.trainer);
  (void)trainer.run();

  std::stringstream buf;
  nn::save_checkpoint(buf, *exp.network);

  Experiment fresh = build_experiment(cfg);
  nn::load_checkpoint(buf, *fresh.network);
  // The reloaded network preserves both values and the sparse pattern.
  const auto pa = exp.network->params();
  const auto pb = fresh.network->params();
  for (std::size_t p = 0; p < pa.size(); ++p) {
    ASSERT_EQ(pa[p].value->count_zeros(), pb[p].value->count_zeros()) << pa[p].name;
  }
}

TEST_F(MethodsPipelineTest, FlopsModelTracksMeasuredSparsity) {
  auto cfg = small_config("ndsnn");
  Experiment exp = build_experiment(cfg);
  Trainer trainer(*exp.network, *exp.method, *exp.train_set, *exp.test_set, exp.trainer);
  const TrainResult r = trainer.run();

  FlopsModel flops(*exp.network, exp.train_set->channels(), exp.train_set->image_size());
  const double dense = flops.training_macs_per_sample(1.0, r.epochs.back().spike_rate,
                                                      cfg.timesteps);
  const double sparse = flops.training_macs_per_sample(
      1.0 - r.final_sparsity, r.epochs.back().spike_rate, cfg.timesteps);
  EXPECT_NEAR(sparse / dense, 1.0 - r.final_sparsity, 1e-9);
  EXPECT_GT(dense, 0.0);
}

}  // namespace
}  // namespace ndsnn::core
