#include "util/json.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ndsnn::util {
namespace {

TEST(JsonWriterTest, NestedDocumentPlacesCommasCorrectly) {
  JsonWriter json;
  json.begin_object();
  json.kv("bench", "sparse_inference");
  json.kv("repeats", 5);
  json.key("rows").begin_array();
  json.begin_object().kv("ms", 1.25).kv("ok", true).end_object();
  json.begin_object().kv("ms", 2.5).kv("ok", false).end_object();
  json.end_array();
  json.key("empty").begin_array().end_array();
  json.end_object();
  EXPECT_EQ(json.str(),
            R"({"bench":"sparse_inference","repeats":5,)"
            R"("rows":[{"ms":1.25,"ok":true},{"ms":2.5,"ok":false}],"empty":[]})");
}

TEST(JsonWriterTest, ScalarsAndEscapes) {
  JsonWriter json;
  json.begin_array();
  json.value("a\"b\\c\nd");
  json.value(static_cast<int64_t>(-7));
  json.value(0.5);
  json.value(std::nan(""));  // non-finite -> null
  json.end_array();
  EXPECT_EQ(json.str(), R"(["a\"b\\c\nd",-7,0.5,null])");
}

TEST(JsonWriterTest, TopLevelArrayOfObjects) {
  JsonWriter json;
  json.begin_array();
  json.begin_object().kv("x", 1).end_object();
  json.begin_object().kv("x", 2).end_object();
  json.end_array();
  EXPECT_EQ(json.str(), R"([{"x":1},{"x":2}])");
}

}  // namespace
}  // namespace ndsnn::util
