#include "util/cpuinfo.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

namespace ndsnn::util::simd {
namespace {

TEST(CpuinfoTest, DetectedIsConcrete) {
  const Tier t = detected();
  EXPECT_NE(t, Tier::kAuto);
  EXPECT_GE(static_cast<int>(t), static_cast<int>(Tier::kScalar));
  EXPECT_LE(static_cast<int>(t), static_cast<int>(Tier::kAvx2));
  // Stable across calls (cached probe).
  EXPECT_EQ(detected(), t);
#if defined(__x86_64__)
  // Any x86-64 box has SSE2, so the baseline is at least kVector.
  EXPECT_GE(static_cast<int>(t), static_cast<int>(Tier::kVector));
#endif
}

TEST(CpuinfoTest, NamesRoundTrip) {
  for (const Tier t : {Tier::kAuto, Tier::kScalar, Tier::kVector, Tier::kAvx2}) {
    Tier parsed = Tier::kScalar;
    ASSERT_TRUE(parse(name(t), &parsed)) << name(t);
    EXPECT_EQ(parsed, t);
  }
  Tier out;
  EXPECT_FALSE(parse("avx512", &out));
  EXPECT_FALSE(parse("", &out));
}

TEST(CpuinfoTest, ResolveClampsToDetected) {
  EXPECT_EQ(resolve(Tier::kAuto), active());
  EXPECT_EQ(resolve(Tier::kScalar), Tier::kScalar);
  // An explicit request never exceeds the hardware.
  EXPECT_LE(static_cast<int>(resolve(Tier::kAvx2)), static_cast<int>(detected()));
  EXPECT_NE(resolve(Tier::kAvx2), Tier::kAuto);
}

TEST(CpuinfoTest, ForceOverridesAndClears) {
  force(Tier::kScalar);
  EXPECT_EQ(active(), Tier::kScalar);
  EXPECT_EQ(resolve(Tier::kAuto), Tier::kScalar);
  // Explicit requests ignore force() — it only redefines kAuto.
  EXPECT_LE(static_cast<int>(resolve(Tier::kVector)), static_cast<int>(detected()));
  force(Tier::kAvx2);  // clamped on non-AVX2 hardware
  EXPECT_LE(static_cast<int>(active()), static_cast<int>(detected()));
  force(Tier::kAuto);  // clear
  EXPECT_LE(static_cast<int>(active()), static_cast<int>(detected()));
}

// CI dispatch smoke: when the runner exports NDSNN_EXPECT_TIER, assert
// the probe actually detected that tier — catches a build or detection
// regression that would silently demote every kernel to a slower tier.
TEST(CpuinfoTest, DetectedMatchesExpectTierEnv) {
  const char* expect = std::getenv("NDSNN_EXPECT_TIER");
  if (expect == nullptr) GTEST_SKIP() << "NDSNN_EXPECT_TIER not set";
  Tier want = Tier::kAuto;
  ASSERT_TRUE(parse(expect, &want)) << "bad NDSNN_EXPECT_TIER: " << expect;
  EXPECT_EQ(detected(), want);
}

}  // namespace
}  // namespace ndsnn::util::simd
