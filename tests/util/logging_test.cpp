#include "util/logging.hpp"

#include <gtest/gtest.h>

namespace ndsnn::util {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(LoggingTest, LevelRoundTrip) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
}

TEST(LoggingTest, SuppressedLevelsDoNotCrash) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kOff);
  log_debug() << "invisible " << 42;
  log_info() << "invisible";
  log_warn() << "invisible";
  log_error() << "invisible";
}

TEST(LoggingTest, StreamBuilderFormatsMixedTypes) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kOff);  // exercise the builder without output
  log_info() << "epoch " << 3 << " acc=" << 91.84 << '%';
}

TEST(LoggingTest, DirectLogCall) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kOff);
  log(LogLevel::kInfo, "direct message");
}

}  // namespace
}  // namespace ndsnn::util
