// FaultInjector: the NDSNN_FAULTS grammar, deterministic seeded
// decisions, max-fires/skip modifiers, and the disabled-process fast
// path that keeps fault sites free on hot paths.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "util/fault_injection.hpp"

namespace ndsnn::util::fault {
namespace {

/// Every test leaves the process-wide injector clean: a leaked schedule
/// would fire faults inside unrelated test cases.
class FaultInjectionTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjector::global().reset(); }
};

TEST_F(FaultInjectionTest, NothingArmedNeverFires) {
  EXPECT_FALSE(FaultInjector::active());
  EXPECT_FALSE(should_fail("wire.reset"));
  // An unarmed should_fail must not even register a check (the fast
  // path bypasses the registry entirely).
  EXPECT_EQ(FaultInjector::global().checks("wire.reset"), 0);
}

TEST_F(FaultInjectionTest, CertainFaultFiresEveryCheck) {
  FaultInjector::global().arm("a.site", Rule{1.0, -1, 0});
  EXPECT_TRUE(FaultInjector::active());
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(should_fail("a.site"));
  EXPECT_EQ(FaultInjector::global().checks("a.site"), 10);
  EXPECT_EQ(FaultInjector::global().fires("a.site"), 10);
}

TEST_F(FaultInjectionTest, ZeroProbabilityNeverFires) {
  FaultInjector::global().arm("a.site", Rule{0.0, -1, 0});
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(should_fail("a.site"));
  EXPECT_EQ(FaultInjector::global().fires("a.site"), 0);
}

TEST_F(FaultInjectionTest, MaxFiresDisarmsAfterTheQuota) {
  FaultInjector::global().arm("a.site", Rule{1.0, 3, 0});
  int fired = 0;
  for (int i = 0; i < 10; ++i) fired += should_fail("a.site") ? 1 : 0;
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(FaultInjector::global().fires("a.site"), 3);
}

TEST_F(FaultInjectionTest, SkipShieldsTheFirstChecks) {
  FaultInjector::global().arm("a.site", Rule{1.0, -1, 4});
  std::vector<bool> got;
  for (int i = 0; i < 6; ++i) got.push_back(should_fail("a.site"));
  EXPECT_EQ(got, (std::vector<bool>{false, false, false, false, true, true}));
}

TEST_F(FaultInjectionTest, DecisionsAreDeterministicInTheSeed) {
  auto& inj = FaultInjector::global();
  const auto schedule = [&](uint64_t seed) {
    inj.reset();
    inj.set_seed(seed);
    inj.arm("a.site", Rule{0.5, -1, 0});
    std::vector<bool> fires;
    for (int i = 0; i < 64; ++i) fires.push_back(should_fail("a.site"));
    return fires;
  };
  const std::vector<bool> first = schedule(7);
  const std::vector<bool> again = schedule(7);
  const std::vector<bool> other = schedule(8);
  EXPECT_EQ(first, again);  // same seed -> identical fault schedule
  EXPECT_NE(first, other);  // a different seed is a different schedule
  // A p=0.5 site over 64 checks fires a plausible share of them.
  int fired = 0;
  for (const bool b : first) fired += b ? 1 : 0;
  EXPECT_GT(fired, 16);
  EXPECT_LT(fired, 48);
}

TEST_F(FaultInjectionTest, SitesDrawIndependentDecisionStreams) {
  auto& inj = FaultInjector::global();
  inj.set_seed(21);
  inj.arm("site.one", Rule{0.5, -1, 0});
  inj.arm("site.two", Rule{0.5, -1, 0});
  std::vector<bool> one, two;
  for (int i = 0; i < 64; ++i) {
    one.push_back(should_fail("site.one"));
    two.push_back(should_fail("site.two"));
  }
  EXPECT_NE(one, two);  // the site name feeds the hash
}

TEST_F(FaultInjectionTest, SpecGrammarParsesAllClauseForms) {
  auto& inj = FaultInjector::global();
  inj.configure("seed=99;plain=1.0,capped=1.0x2;skipped=1+3;both=0.25x5+2");
  EXPECT_EQ(inj.seed(), 99U);
  // plain: unlimited certain fault.
  EXPECT_TRUE(should_fail("plain"));
  // capped: stops after two fires.
  int capped = 0;
  for (int i = 0; i < 5; ++i) capped += should_fail("capped") ? 1 : 0;
  EXPECT_EQ(capped, 2);
  // skipped: quiet for three checks, certain after.
  EXPECT_FALSE(should_fail("skipped"));
  EXPECT_FALSE(should_fail("skipped"));
  EXPECT_FALSE(should_fail("skipped"));
  EXPECT_TRUE(should_fail("skipped"));
  // both: parsed without throwing; counters exist.
  (void)should_fail("both");
  EXPECT_EQ(inj.checks("both"), 1);
}

TEST_F(FaultInjectionTest, MalformedSpecsThrowWithoutArmingTheBadClause) {
  auto& inj = FaultInjector::global();
  EXPECT_THROW(inj.configure("nodash"), std::invalid_argument);
  EXPECT_THROW(inj.configure("site=1.5"), std::invalid_argument);  // p > 1
  EXPECT_THROW(inj.configure("site=abc"), std::invalid_argument);
  EXPECT_THROW(inj.configure("site=0.5x-1"), std::invalid_argument);
  EXPECT_THROW(inj.configure("seed=notanumber"), std::invalid_argument);
  // Clauses before the malformed one stay armed (best-effort left to
  // right), the bad one never arms.
  inj.reset();
  EXPECT_THROW(inj.configure("good=1.0;bad"), std::invalid_argument);
  EXPECT_TRUE(should_fail("good"));
  EXPECT_FALSE(should_fail("bad"));
}

TEST_F(FaultInjectionTest, DisarmStopsASiteAndResetClearsEverything) {
  auto& inj = FaultInjector::global();
  inj.arm("a.site", Rule{1.0, -1, 0});
  EXPECT_TRUE(should_fail("a.site"));
  inj.disarm("a.site");
  EXPECT_FALSE(should_fail("a.site"));
  // Still one registry entry, but nothing armed: active() may stay true
  // only if other sites are armed — here there are none.
  EXPECT_FALSE(FaultInjector::active());
  inj.arm("b.site", Rule{1.0, -1, 0});
  inj.reset();
  EXPECT_FALSE(FaultInjector::active());
  EXPECT_FALSE(should_fail("b.site"));
  EXPECT_EQ(inj.checks("b.site"), 0);
}

TEST_F(FaultInjectionTest, SummaryNamesEveryArmedSiteAndTheSeed) {
  auto& inj = FaultInjector::global();
  inj.set_seed(1234);
  inj.arm("wire.reset", Rule{0.25, -1, 0});
  (void)should_fail("wire.reset");
  const std::string line = inj.summary();
  EXPECT_NE(line.find("seed=1234"), std::string::npos);
  EXPECT_NE(line.find("wire.reset"), std::string::npos);
}

}  // namespace
}  // namespace ndsnn::util::fault
