#include "util/stopwatch.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace ndsnn::util {
namespace {

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(watch.millis(), 15.0);
  EXPECT_LT(watch.seconds(), 5.0);
}

TEST(StopwatchTest, ResetRestarts) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  watch.reset();
  EXPECT_LT(watch.millis(), 15.0);
}

TEST(StopwatchTest, MonotoneNonDecreasing) {
  Stopwatch watch;
  double prev = watch.seconds();
  for (int i = 0; i < 10; ++i) {
    const double cur = watch.seconds();
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

}  // namespace
}  // namespace ndsnn::util
