// ThreadPool: the fork-join primitive every parallel kernel dispatches
// through. Covers chunk coverage (each index computed exactly once),
// weighted range splitting, the serial-work threshold, exception
// propagation, and concurrent fork-joins from many caller threads (the
// BatchExecutor sharing pattern; also the TSan job's main target).
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/thread_pool.hpp"

namespace ndsnn::util {
namespace {

TEST(ThreadPoolTest, ResolveLanes) {
  EXPECT_GE(ThreadPool::resolve_lanes(0), 1);
  EXPECT_EQ(ThreadPool::resolve_lanes(1), 1);
  EXPECT_EQ(ThreadPool::resolve_lanes(7), 7);
}

TEST(ThreadPoolTest, RejectsZeroLanes) {
  EXPECT_THROW(ThreadPool(0), std::invalid_argument);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> marks(1000);
  pool.parallel_for(0, 1000, 8, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) marks[static_cast<std::size_t>(i)]++;
  });
  for (const auto& m : marks) EXPECT_EQ(m.load(), 1);
}

TEST(ThreadPoolTest, SingleLanePoolRunsInline) {
  ThreadPool pool(1);
  int64_t sum = 0;
  // One lane: chunks execute serially on the caller, no races possible.
  pool.parallel_for(0, 100, 4, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) sum += i;
  });
  EXPECT_EQ(sum, 99 * 100 / 2);
}

TEST(ThreadPoolTest, ChunksForRespectsWorkThreshold) {
  ThreadPool pool(8);
  // Tiny work stays serial regardless of lanes.
  EXPECT_EQ(pool.chunks_for(kMinParallelWork - 1, 100), 1);
  // Big work is capped by lanes and by the partitionable extent.
  EXPECT_EQ(pool.chunks_for(kMinParallelWork * 100, 100), 8);
  EXPECT_EQ(pool.chunks_for(kMinParallelWork * 100, 3), 3);
  // Medium work: one chunk per kMinParallelWork.
  EXPECT_EQ(pool.chunks_for(kMinParallelWork * 2, 100), 2);
  // Null pool is always serial.
  EXPECT_EQ(chunks_for(nullptr, kMinParallelWork * 100, 100), 1);
}

TEST(ThreadPoolTest, BalancedBoundsSplitByWeight) {
  // Weights 10, 0, 0, 0, 10, 10: prefix {0, 10, 10, 10, 10, 20, 30}.
  const std::vector<int64_t> prefix = {0, 10, 10, 10, 10, 20, 30};
  const auto bounds = balanced_bounds(prefix.data(), 6, 3);
  ASSERT_EQ(bounds.size(), 4U);
  EXPECT_EQ(bounds.front(), 0);
  EXPECT_EQ(bounds.back(), 6);
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_GT(bounds[i], bounds[i - 1]);  // never an empty range
  }
  // The heavy first row gets its own chunk; the zero-weight rows ride
  // along with a weighted one instead of wasting a chunk.
  EXPECT_EQ(bounds[1], 1);
}

TEST(ThreadPoolTest, BalancedBoundsClampToRowCount) {
  const std::vector<int64_t> prefix = {0, 1, 2, 3};
  const auto bounds = balanced_bounds(prefix.data(), 3, 8);
  ASSERT_EQ(bounds.size(), 4U);  // at most rows chunks
  EXPECT_EQ(bounds.back(), 3);
}

TEST(ThreadPoolTest, EvenBoundsCoverRange) {
  const auto bounds = even_bounds(5, 25, 4);
  ASSERT_EQ(bounds.size(), 5U);
  EXPECT_EQ(bounds.front(), 5);
  EXPECT_EQ(bounds.back(), 25);
  for (std::size_t i = 1; i < bounds.size(); ++i) EXPECT_GT(bounds[i], bounds[i - 1]);
}

TEST(ThreadPoolTest, ChunkExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_chunks(8,
                                    [](int64_t c) {
                                      if (c == 3) throw std::runtime_error("chunk 3");
                                    }),
               std::runtime_error);
  // The pool survives a failed job and keeps serving.
  std::atomic<int> runs{0};
  pool.parallel_chunks(4, [&](int64_t) { runs++; });
  EXPECT_EQ(runs.load(), 4);
}

TEST(ThreadPoolTest, ConcurrentForkJoinsFromManyThreads) {
  // The BatchExecutor pattern: several request workers drive one shared
  // pool at once. Each caller's fork-join must see exactly its own
  // chunks complete.
  ThreadPool pool(4);
  constexpr int kCallers = 4;
  constexpr int kRounds = 25;
  std::vector<std::thread> callers;
  std::vector<int64_t> sums(kCallers, 0);
  callers.reserve(kCallers);
  for (int t = 0; t < kCallers; ++t) {
    callers.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        std::vector<std::atomic<int64_t>> partial(8);
        pool.parallel_for(0, 800, 8, [&](int64_t lo, int64_t hi) {
          int64_t s = 0;
          for (int64_t i = lo; i < hi; ++i) s += i;
          partial[static_cast<std::size_t>(lo / 100)] += s;
        });
        int64_t total = 0;
        for (const auto& p : partial) total += p.load();
        sums[static_cast<std::size_t>(t)] += total;
      }
    });
  }
  for (auto& c : callers) c.join();
  const int64_t expect_per_round = 799 * 800 / 2;
  for (int t = 0; t < kCallers; ++t) {
    EXPECT_EQ(sums[static_cast<std::size_t>(t)], expect_per_round * kRounds) << t;
  }
}

}  // namespace
}  // namespace ndsnn::util
