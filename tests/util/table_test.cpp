#include "util/table.hpp"

#include <gtest/gtest.h>

namespace ndsnn::util {
namespace {

TEST(TableTest, RendersAlignedMarkdown) {
  Table t({"Method", "Acc"});
  t.add_row({"NDSNN", "91.84"});
  t.add_row({"LTH", "89.77"});
  const std::string s = t.str();
  EXPECT_NE(s.find("| Method | Acc   |"), std::string::npos);
  EXPECT_NE(s.find("| NDSNN  | 91.84 |"), std::string::npos);
  EXPECT_NE(s.find("|--------|-------|"), std::string::npos);
}

TEST(TableTest, ArityMismatchThrows) {
  Table t({"A", "B"});
  EXPECT_THROW(t.add_row({"only one"}), std::invalid_argument);
}

TEST(TableTest, EmptyHeaderThrows) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(TableTest, CountsRowsAndCols) {
  Table t({"A", "B", "C"});
  t.add_row({"1", "2", "3"});
  EXPECT_EQ(t.rows(), 1U);
  EXPECT_EQ(t.cols(), 3U);
}

TEST(FmtTest, FixedDecimals) {
  EXPECT_EQ(fmt(91.837), "91.84");
  EXPECT_EQ(fmt(1.0, 1), "1.0");
  EXPECT_EQ(fmt(-0.5, 3), "-0.500");
}

}  // namespace
}  // namespace ndsnn::util
