#include "util/cli.hpp"

#include <gtest/gtest.h>

namespace ndsnn::util {
namespace {

Cli make(std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Cli(static_cast<int>(argv.size()), argv.data());
}

TEST(CliTest, FlagPresence) {
  const Cli cli = make({"--fast", "--epochs", "5"});
  EXPECT_TRUE(cli.has_flag("--fast"));
  EXPECT_TRUE(cli.has_flag("--epochs"));
  EXPECT_FALSE(cli.has_flag("--slow"));
}

TEST(CliTest, TypedGetters) {
  const Cli cli = make({"--epochs", "12", "--lr", "0.25", "--name", "run1"});
  EXPECT_EQ(cli.get_int("--epochs", 0), 12);
  EXPECT_DOUBLE_EQ(cli.get_double("--lr", 0.0), 0.25);
  EXPECT_EQ(cli.get_string("--name", ""), "run1");
}

TEST(CliTest, FallbacksWhenAbsent) {
  const Cli cli = make({});
  EXPECT_EQ(cli.get_int("--epochs", 7), 7);
  EXPECT_DOUBLE_EQ(cli.get_double("--lr", 0.5), 0.5);
  EXPECT_EQ(cli.get_string("--name", "default"), "default");
}

TEST(CliTest, PositionalArgsCollected) {
  const Cli cli = make({"input.bin", "--epochs", "3", "output.bin"});
  ASSERT_EQ(cli.positional().size(), 2U);
  EXPECT_EQ(cli.positional()[0], "input.bin");
  EXPECT_EQ(cli.positional()[1], "output.bin");
}

}  // namespace
}  // namespace ndsnn::util
