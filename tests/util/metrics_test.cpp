// Metrics registry: the counters/gauges/histograms the serving path
// records into. Pins the analytic log-bucket math (index/bounds/mid),
// the nearest-rank percentile against a sorted-vector reference (both
// hand-picked samples and an env-seeded fuzz sweep), concurrent sharded
// recording, and the registry's stable-reference + dump contracts.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "../testing_env.hpp"
#include "tensor/random.hpp"
#include "util/json.hpp"
#include "util/metrics.hpp"

namespace ndsnn::util {
namespace {

TEST(MetricsTest, CounterAddsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42);
  c.reset();
  EXPECT_EQ(c.value(), 0);
}

TEST(MetricsTest, GaugeSetsAndAdds) {
  Gauge g;
  g.set(7);
  EXPECT_EQ(g.value(), 7);
  g.add(-3);
  EXPECT_EQ(g.value(), 4);
  g.set(-2);  // gauges may go negative (e.g. a miscounted depth shows up)
  EXPECT_EQ(g.value(), -2);
}

// -- Analytic bucket math ---------------------------------------------------

TEST(MetricsTest, BucketIndexPinnedValues) {
  using S = HistogramSnapshot;
  // Underflow: everything below 1, plus the non-finite junk.
  EXPECT_EQ(S::bucket_index(0.0), 0);
  EXPECT_EQ(S::bucket_index(0.999), 0);
  EXPECT_EQ(S::bucket_index(-5.0), 0);
  EXPECT_EQ(S::bucket_index(std::numeric_limits<double>::quiet_NaN()), 0);
  // First log bucket starts exactly at 1.
  EXPECT_EQ(S::bucket_index(1.0), 1);
  // kSubBuckets buckets per octave: 2.0 opens bucket kSubBuckets + 1.
  EXPECT_EQ(S::bucket_index(2.0), S::kSubBuckets + 1);
  EXPECT_EQ(S::bucket_index(4.0), 2 * S::kSubBuckets + 1);
  // Just below an octave boundary stays in the previous bucket.
  EXPECT_EQ(S::bucket_index(std::nextafter(2.0, 0.0)), S::kSubBuckets);
  // Overflow: >= 2^30 clamps to the last bucket.
  EXPECT_EQ(S::bucket_index(std::exp2(30.0)), S::kBuckets - 1);
  EXPECT_EQ(S::bucket_index(1e300), S::kBuckets - 1);
  EXPECT_EQ(S::bucket_index(std::numeric_limits<double>::infinity()), S::kBuckets - 1);
}

TEST(MetricsTest, BucketBoundsAndMids) {
  using S = HistogramSnapshot;
  EXPECT_DOUBLE_EQ(S::bucket_lower(1), 1.0);
  EXPECT_DOUBLE_EQ(S::bucket_lower(S::kSubBuckets + 1), 2.0);
  // Geometric mean of the bucket's bounds, so mid(i) lies inside
  // [lower(i), lower(i+1)) and the relative error of reporting mid for
  // any sample in the bucket is bounded by sqrt(growth).
  for (int i = 1; i < S::kBuckets - 1; ++i) {
    const double lo = S::bucket_lower(i), hi = S::bucket_lower(i + 1);
    const double mid = S::bucket_mid(i);
    EXPECT_GE(mid, lo) << "bucket " << i;
    EXPECT_LT(mid, hi) << "bucket " << i;
    EXPECT_NEAR(mid, std::sqrt(lo * hi), 1e-9 * mid) << "bucket " << i;
  }
  EXPECT_DOUBLE_EQ(S::bucket_mid(0), 0.5);
  EXPECT_DOUBLE_EQ(S::bucket_mid(S::kBuckets - 1), S::bucket_lower(S::kBuckets - 1));
}

TEST(MetricsTest, EveryValueLandsInItsBucketRange) {
  using S = HistogramSnapshot;
  tensor::Rng rng(difftest::env_seed() ^ 0xB0C4E75ULL);
  for (int i = 0; i < 2000; ++i) {
    // Log-uniform over the full covered range [1, 2^30).
    const double v = std::exp2(rng.uniform01() * 30.0);
    const int b = S::bucket_index(v);
    ASSERT_GE(b, 1) << v;
    ASSERT_LT(b, S::kBuckets - 1) << v;
    EXPECT_GE(v, S::bucket_lower(b)) << "bucket " << b;
    EXPECT_LT(v, S::bucket_lower(b + 1)) << "bucket " << b;
  }
}

// -- Percentiles ------------------------------------------------------------

TEST(MetricsTest, PercentileEmptyAndSingle) {
  Histogram h;
  EXPECT_DOUBLE_EQ(h.snapshot().percentile(0.5), 0.0);
  h.record(100.0);
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 1);
  // Any quantile of a single sample reports that sample's bucket mid.
  const double mid = HistogramSnapshot::bucket_mid(HistogramSnapshot::bucket_index(100.0));
  EXPECT_DOUBLE_EQ(s.percentile(0.0), mid);
  EXPECT_DOUBLE_EQ(s.percentile(0.5), mid);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), mid);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_DOUBLE_EQ(s.mean(), 100.0);
}

TEST(MetricsTest, PercentilePinnedSmallSample) {
  // 10 samples spread an octave apart: nearest-rank p50 is the 5th
  // sorted sample (2^4 = 16), p90 the 9th (2^8 = 256). Octave spacing
  // keeps every sample in a distinct bucket so the expected bucket is
  // unambiguous.
  Histogram h;
  for (int i = 0; i < 10; ++i) h.record(std::exp2(i));
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 10);
  const auto mid_of = [](double v) {
    return HistogramSnapshot::bucket_mid(HistogramSnapshot::bucket_index(v));
  };
  EXPECT_DOUBLE_EQ(s.percentile(0.5), mid_of(16.0));
  EXPECT_DOUBLE_EQ(s.percentile(0.9), mid_of(256.0));
  EXPECT_DOUBLE_EQ(s.percentile(1.0), mid_of(512.0));
  EXPECT_DOUBLE_EQ(s.max, 512.0);
}

TEST(MetricsTest, PercentileFuzzAgainstSortedReference) {
  // The histogram's contract: nearest-rank percentile lands in exactly
  // the bucket holding the sorted-vector nearest-rank sample
  // (bucket_index is monotone), so the reported mid is within one
  // bucket's relative width (factor 2^(1/4) ~ 1.19) of the exact value.
  tensor::Rng rng(difftest::env_seed() ^ 0xFE22ULL);
  for (int round = 0; round < 20; ++round) {
    Histogram h;
    std::vector<double> ref;
    const int n = 50 + static_cast<int>(rng.uniform_int(2000));
    for (int i = 0; i < n; ++i) {
      // Mix of log-uniform latencies and near-zero underflow values.
      const double v = rng.bernoulli(0.05) ? rng.uniform01() * 0.5
                                           : std::exp2(rng.uniform01() * 20.0);
      h.record(v);
      ref.push_back(v);
    }
    std::sort(ref.begin(), ref.end());
    const HistogramSnapshot s = h.snapshot();
    ASSERT_EQ(s.count, n);
    for (const double q : {0.05, 0.5, 0.9, 0.95, 0.99}) {
      const auto rank = static_cast<std::size_t>(
          std::ceil(q * static_cast<double>(n)));
      const double exact = ref[std::max<std::size_t>(rank, 1) - 1];
      const double got = s.percentile(q);
      if (exact < 1.0) {
        EXPECT_DOUBLE_EQ(got, 0.5) << "q=" << q << " n=" << n;
      } else {
        EXPECT_GE(got, exact / std::exp2(0.25) * (1.0 - 1e-12))
            << "q=" << q << " n=" << n << " exact=" << exact;
        EXPECT_LE(got, exact * std::exp2(0.25) * (1.0 + 1e-12))
            << "q=" << q << " n=" << n << " exact=" << exact;
      }
    }
    EXPECT_DOUBLE_EQ(s.max, ref.back());
  }
}

TEST(MetricsTest, ConcurrentRecordingLosesNothing) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.record(static_cast<double>(1 + (t * kPerThread + i) % 1000));
      }
    });
  }
  for (auto& th : threads) th.join();
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, int64_t{kThreads} * kPerThread);
  int64_t bucket_total = 0;
  for (const int64_t c : s.counts) bucket_total += c;
  EXPECT_EQ(bucket_total, s.count);
  EXPECT_DOUBLE_EQ(s.max, 1000.0);
}

// -- Registry ---------------------------------------------------------------

TEST(MetricsTest, RegistryHandsOutStableReferences) {
  MetricsRegistry reg;
  Counter& c1 = reg.counter("test.counter");
  Counter& c2 = reg.counter("test.counter");
  EXPECT_EQ(&c1, &c2);  // same name -> same metric
  c1.add(3);
  EXPECT_EQ(c2.value(), 3);
  Gauge& g = reg.gauge("test.gauge");
  EXPECT_NE(static_cast<void*>(&g), static_cast<void*>(&c1));
  // reset zeroes values but the references stay live.
  reg.reset();
  EXPECT_EQ(c1.value(), 0);
  c1.add(1);
  EXPECT_EQ(reg.counter("test.counter").value(), 1);
}

TEST(MetricsTest, DumpTextListsEveryMetric) {
  MetricsRegistry reg;
  reg.counter("reqs").add(5);
  reg.gauge("depth").set(2);
  reg.histogram("lat_us").record(100.0);
  const std::string text = reg.dump_text();
  EXPECT_NE(text.find("reqs"), std::string::npos) << text;
  EXPECT_NE(text.find("depth"), std::string::npos) << text;
  EXPECT_NE(text.find("lat_us"), std::string::npos) << text;
  EXPECT_NE(text.find('5'), std::string::npos) << text;
}

TEST(MetricsTest, DumpJsonIsWellFormed) {
  MetricsRegistry reg;
  reg.counter("reqs").add(5);
  reg.histogram("lat_us").record(100.0);
  JsonWriter json;
  json.begin_object();
  json.key("metrics");
  reg.dump_json(json);
  json.end_object();
  const std::string doc = json.str();
  EXPECT_NE(doc.find("\"counters\""), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"gauges\""), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"histograms\""), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"reqs\":5"), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"lat_us\""), std::string::npos) << doc;
}

TEST(MetricsTest, GlobalSingletonIsOneInstance) {
  EXPECT_EQ(&MetricsRegistry::global(), &MetricsRegistry::global());
}

}  // namespace
}  // namespace ndsnn::util
