#include "opt/sgd.hpp"

#include <gtest/gtest.h>

#include "nn/linear.hpp"
#include "tensor/random.hpp"

namespace ndsnn::opt {
namespace {

using tensor::Rng;
using tensor::Shape;
using tensor::Tensor;

struct Harness {
  Tensor w{Shape{4}, std::vector<float>{1, 2, 3, 4}};
  Tensor g{Shape{4}};
  std::vector<nn::ParamRef> refs() {
    return {{"w", &w, &g, /*prunable=*/true}};
  }
};

SgdConfig plain(double lr = 0.1) {
  SgdConfig c;
  c.learning_rate = lr;
  c.momentum = 0.0;
  c.weight_decay = 0.0;
  return c;
}

TEST(SgdConfigTest, Validation) {
  EXPECT_NO_THROW(plain().validate());
  auto c = plain();
  c.learning_rate = 0.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = plain();
  c.momentum = 1.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = plain();
  c.weight_decay = -1.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(SgdTest, VanillaStepIsGradientDescent) {
  Harness h;
  Sgd sgd(h.refs(), plain(0.5));
  h.g.fill(1.0F);
  sgd.step();
  EXPECT_FLOAT_EQ(h.w.at(0), 0.5F);
  EXPECT_FLOAT_EQ(h.w.at(3), 3.5F);
}

TEST(SgdTest, MomentumAccumulates) {
  Harness h;
  auto c = plain(1.0);
  c.momentum = 0.5;
  Sgd sgd(h.refs(), c);
  h.g.fill(1.0F);
  sgd.step();  // v = 1, w -= 1
  EXPECT_FLOAT_EQ(h.w.at(0), 0.0F);
  sgd.step();  // v = 0.5 + 1 = 1.5, w -= 1.5
  EXPECT_FLOAT_EQ(h.w.at(0), -1.5F);
}

TEST(SgdTest, WeightDecayShrinksWeights) {
  Harness h;
  auto c = plain(0.1);
  c.weight_decay = 0.1;
  Sgd sgd(h.refs(), c);
  h.g.zero();
  sgd.step();  // w -= lr * wd * w = 0.01 * w
  EXPECT_FLOAT_EQ(h.w.at(3), 4.0F * 0.99F);
}

TEST(SgdTest, DecaySkipsNonPrunableWhenConfigured) {
  Tensor w(Shape{2}, std::vector<float>{1, 1});
  Tensor g(Shape{2});
  std::vector<nn::ParamRef> refs = {{"bias", &w, &g, /*prunable=*/false}};
  auto c = plain(0.1);
  c.weight_decay = 0.5;
  c.decay_prunable_only = true;
  Sgd sgd(refs, c);
  sgd.step();
  EXPECT_FLOAT_EQ(w.at(0), 1.0F);  // untouched
}

TEST(SgdTest, ZeroGradClearsAll) {
  Harness h;
  Sgd sgd(h.refs(), plain());
  h.g.fill(3.0F);
  sgd.zero_grad();
  EXPECT_EQ(h.g.count_zeros(), 4);
}

TEST(SgdTest, SetLearningRate) {
  Harness h;
  Sgd sgd(h.refs(), plain(0.1));
  sgd.set_learning_rate(0.01);
  EXPECT_DOUBLE_EQ(sgd.learning_rate(), 0.01);
  EXPECT_THROW(sgd.set_learning_rate(0.0), std::invalid_argument);
}

TEST(SgdTest, NullParamRejected) {
  Tensor w(Shape{1});
  std::vector<nn::ParamRef> refs = {{"w", &w, nullptr, true}};
  EXPECT_THROW(Sgd(refs, plain()), std::invalid_argument);
}

TEST(SgdTest, MaskedGradLeavesMaskedWeightAtZeroWithoutMomentum) {
  // The invariant sparse training relies on: zero grad + zero weight +
  // no momentum/decay => weight stays zero.
  Harness h;
  h.w.at(1) = 0.0F;
  auto c = plain(0.3);
  Sgd sgd(h.refs(), c);
  h.g.fill(1.0F);
  h.g.at(1) = 0.0F;  // masked
  sgd.step();
  EXPECT_FLOAT_EQ(h.w.at(1), 0.0F);
}

}  // namespace
}  // namespace ndsnn::opt
