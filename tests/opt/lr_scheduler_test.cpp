#include "opt/lr_scheduler.hpp"

#include <gtest/gtest.h>

namespace ndsnn::opt {
namespace {

TEST(CosineLrTest, Endpoints) {
  CosineLr lr(0.3, 100, 0.0);
  EXPECT_DOUBLE_EQ(lr.lr_at(0), 0.3);
  EXPECT_NEAR(lr.lr_at(100), 0.0, 1e-12);
}

TEST(CosineLrTest, MidpointIsMean) {
  CosineLr lr(0.4, 100, 0.1);
  EXPECT_NEAR(lr.lr_at(50), 0.25, 1e-12);
}

TEST(CosineLrTest, MonotoneNonIncreasing) {
  CosineLr lr(0.3, 37);
  double prev = lr.lr_at(0);
  for (int64_t e = 1; e <= 37; ++e) {
    EXPECT_LE(lr.lr_at(e), prev + 1e-12);
    prev = lr.lr_at(e);
  }
}

TEST(CosineLrTest, ClampsPastEnd) {
  CosineLr lr(0.3, 10, 0.05);
  EXPECT_DOUBLE_EQ(lr.lr_at(1000), 0.05);
  EXPECT_DOUBLE_EQ(lr.lr_at(-5), 0.3);
}

TEST(CosineLrTest, Validation) {
  EXPECT_THROW(CosineLr(0.0, 10), std::invalid_argument);
  EXPECT_THROW(CosineLr(0.1, 0), std::invalid_argument);
  EXPECT_THROW(CosineLr(0.1, 10, 0.2), std::invalid_argument);
}

TEST(StepLrTest, DecaysEveryStep) {
  StepLr lr(1.0, 10, 0.1);
  EXPECT_DOUBLE_EQ(lr.lr_at(0), 1.0);
  EXPECT_DOUBLE_EQ(lr.lr_at(9), 1.0);
  EXPECT_DOUBLE_EQ(lr.lr_at(10), 0.1);
  EXPECT_NEAR(lr.lr_at(20), 0.01, 1e-15);
}

TEST(StepLrTest, NegativeEpochClamped) {
  StepLr lr(1.0, 5, 0.5);
  EXPECT_DOUBLE_EQ(lr.lr_at(-3), 1.0);
}

TEST(StepLrTest, Validation) {
  EXPECT_THROW(StepLr(0.0, 10, 0.5), std::invalid_argument);
  EXPECT_THROW(StepLr(0.1, 0, 0.5), std::invalid_argument);
  EXPECT_THROW(StepLr(0.1, 10, 1.5), std::invalid_argument);
}

}  // namespace
}  // namespace ndsnn::opt
