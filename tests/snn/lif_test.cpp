#include "snn/lif.hpp"

#include <gtest/gtest.h>

#include "tensor/random.hpp"

namespace ndsnn::snn {
namespace {

using tensor::Shape;
using tensor::Tensor;

LifConfig config(float alpha = 0.5F, float theta = 1.0F) {
  LifConfig c;
  c.alpha = alpha;
  c.threshold = theta;
  return c;
}

TEST(LifConfigTest, Validation) {
  EXPECT_NO_THROW(config().validate());
  EXPECT_THROW(config(0.0F).validate(), std::invalid_argument);
  EXPECT_THROW(config(1.5F).validate(), std::invalid_argument);
  EXPECT_THROW(config(0.5F, 0.0F).validate(), std::invalid_argument);
}

TEST(LifTest, SingleStepFiresAtThreshold) {
  LifLayer lif(config(), /*timesteps=*/1);
  Tensor current(Shape{1, 2}, std::vector<float>{0.9F, 1.0F});
  const Tensor spikes = lif.forward(current);
  EXPECT_EQ(spikes.at(0), 0.0F);  // 0.9 < theta
  EXPECT_EQ(spikes.at(1), 1.0F);  // 1.0 >= theta
}

TEST(LifTest, MembraneIntegratesWithLeak) {
  // Hand-computed trace, alpha=0.5, theta=1, I = 0.6 each step:
  //  v1 = 0.6          -> no spike
  //  v2 = 0.3+0.6=0.9  -> no spike
  //  v3 = 0.45+0.6=1.05-> spike
  //  v4 = 0.5*1.05+0.6-1 = 0.125 -> no spike (reset applied at t=4)
  LifLayer lif(config(), 4);
  Tensor current(Shape{4, 1}, std::vector<float>{0.6F, 0.6F, 0.6F, 0.6F});
  const Tensor spikes = lif.forward(current);
  EXPECT_EQ(spikes.at(0), 0.0F);
  EXPECT_EQ(spikes.at(1), 0.0F);
  EXPECT_EQ(spikes.at(2), 1.0F);
  EXPECT_EQ(spikes.at(3), 0.0F);
}

TEST(LifTest, ResetBySubtractionExact) {
  // Large drive: v1 = 2.0 -> spike. v2 = 0.5*2.0 + 0 - 1*1 = 0 -> no spike.
  LifLayer lif(config(), 2);
  Tensor current(Shape{2, 1}, std::vector<float>{2.0F, 0.0F});
  const Tensor spikes = lif.forward(current);
  EXPECT_EQ(spikes.at(0), 1.0F);
  EXPECT_EQ(spikes.at(1), 0.0F);
}

TEST(LifTest, SpikeRateTracked) {
  LifLayer lif(config(), 2);
  Tensor current(Shape{2, 2}, std::vector<float>{2.0F, 0.0F, 2.0F, 0.0F});
  (void)lif.forward(current);
  EXPECT_NEAR(lif.last_spike_rate(), 0.5, 1e-9);
}

TEST(LifTest, NumelNotDivisibleByTimestepsThrows) {
  LifLayer lif(config(), 3);
  Tensor current(Shape{2, 2});
  EXPECT_THROW((void)lif.forward(current), std::invalid_argument);
}

TEST(LifTest, BackwardBeforeForwardThrows) {
  LifLayer lif(config(), 1);
  Tensor g(Shape{1, 1});
  EXPECT_THROW((void)lif.backward(g), std::logic_error);
}

TEST(LifTest, BackwardShapeMismatchThrows) {
  LifLayer lif(config(), 1);
  Tensor current(Shape{1, 2});
  (void)lif.forward(current);
  Tensor g(Shape{1, 3});
  EXPECT_THROW((void)lif.backward(g), std::invalid_argument);
}

TEST(LifTest, BackwardSingleStepIsSurrogateScaled) {
  // T=1: eps = delta * phi(v - theta).
  LifLayer lif(config(), 1);
  Tensor current(Shape{1, 1}, std::vector<float>{0.8F});
  (void)lif.forward(current);
  Tensor g(Shape{1, 1}, std::vector<float>{2.0F});
  const Tensor gin = lif.backward(g);
  const float phi = surrogate_grad(SurrogateKind::kAtan, 0.8F - 1.0F);
  EXPECT_FLOAT_EQ(gin.at(0), 2.0F * phi);
}

TEST(LifTest, BackwardPropagatesThroughTimeWithLeak) {
  // T=2, detach_reset=true:
  //   eps[1] = d1 * phi(v1-theta)
  //   eps[0] = d0 * phi(v0-theta) + alpha * eps[1]
  LifLayer lif(config(), 2);
  Tensor current(Shape{2, 1}, std::vector<float>{0.4F, 0.4F});
  (void)lif.forward(current);
  // v0 = 0.4; v1 = 0.2 + 0.4 = 0.6 (no spikes, no reset).
  Tensor g(Shape{2, 1}, std::vector<float>{1.0F, 1.0F});
  const Tensor gin = lif.backward(g);
  const float phi0 = surrogate_grad(SurrogateKind::kAtan, 0.4F - 1.0F);
  const float phi1 = surrogate_grad(SurrogateKind::kAtan, 0.6F - 1.0F);
  const float eps1 = 1.0F * phi1;
  const float eps0 = 1.0F * phi0 + 0.5F * eps1;
  EXPECT_FLOAT_EQ(gin.at(1), eps1);
  EXPECT_FLOAT_EQ(gin.at(0), eps0);
}

TEST(LifTest, AttachedResetChangesGradient) {
  LifConfig with_reset = config();
  with_reset.detach_reset = false;
  LifLayer a(config(), 3);
  LifLayer b(with_reset, 3);
  // Drive hard enough to spike at t=0 so the reset path is active.
  Tensor current(Shape{3, 1}, std::vector<float>{1.5F, 0.9F, 0.9F});
  (void)a.forward(current);
  (void)b.forward(current);
  Tensor g(Shape{3, 1}, 1.0F);
  const Tensor ga = a.backward(g);
  const Tensor gb = b.backward(g);
  EXPECT_NE(ga.at(0), gb.at(0));
}

TEST(LifTest, ResetStateClearsSaved) {
  LifLayer lif(config(), 1);
  Tensor current(Shape{1, 1});
  (void)lif.forward(current);
  lif.reset_state();
  Tensor g(Shape{1, 1});
  EXPECT_THROW((void)lif.backward(g), std::logic_error);
}

class LifAlphaSweep : public ::testing::TestWithParam<float> {};

TEST_P(LifAlphaSweep, HigherDriveNeverFiresLess) {
  // Property: with any leak, increasing a constant input current can only
  // increase (or keep) the total spike count.
  const float alpha = GetParam();
  int64_t prev_spikes = 0;
  for (const float drive : {0.1F, 0.3F, 0.5F, 0.8F, 1.2F}) {
    LifLayer lif(config(alpha), 8);
    Tensor current(Shape{8, 1}, drive);
    const Tensor spikes = lif.forward(current);
    int64_t count = 0;
    for (int64_t i = 0; i < spikes.numel(); ++i) count += spikes.at(i) != 0.0F;
    EXPECT_GE(count, prev_spikes) << "alpha=" << alpha << " drive=" << drive;
    prev_spikes = count;
  }
}

INSTANTIATE_TEST_SUITE_P(Leaks, LifAlphaSweep, ::testing::Values(0.25F, 0.5F, 0.9F, 1.0F));

}  // namespace
}  // namespace ndsnn::snn
