#include "snn/spike_stats.hpp"

#include <gtest/gtest.h>

namespace ndsnn::snn {
namespace {

TEST(SpikeStatsTest, EmptyIsZero) {
  SpikeStats s;
  EXPECT_EQ(s.average_rate(), 0.0);
}

TEST(SpikeStatsTest, WeightedAverage) {
  SpikeStats s;
  s.record(10, 100);   // 10%
  s.record(90, 100);   // 90%
  EXPECT_NEAR(s.average_rate(), 0.5, 1e-12);
  s.record(0, 800);    // big layer with no spikes drags the average down
  EXPECT_NEAR(s.average_rate(), 0.1, 1e-12);
}

TEST(SpikeStatsTest, RecordRate) {
  SpikeStats s;
  s.record_rate(0.25, 1000);
  EXPECT_NEAR(s.average_rate(), 0.25, 1e-3);
}

TEST(SpikeStatsTest, InvalidInputsThrow) {
  SpikeStats s;
  EXPECT_THROW(s.record(5, 4), std::invalid_argument);
  EXPECT_THROW(s.record(-1, 4), std::invalid_argument);
  EXPECT_THROW(s.record_rate(1.5, 10), std::invalid_argument);
}

TEST(SpikeStatsTest, ResetClears) {
  SpikeStats s;
  s.record(50, 100);
  s.reset();
  EXPECT_EQ(s.total_elements(), 0);
  EXPECT_EQ(s.average_rate(), 0.0);
}

TEST(SpikeRateTraceTest, AccumulatesEpochs) {
  SpikeRateTrace trace;
  trace.push_epoch(0.1);
  trace.push_epoch(0.2);
  ASSERT_EQ(trace.epochs(), 2U);
  EXPECT_EQ(trace.rates()[1], 0.2);
}

}  // namespace
}  // namespace ndsnn::snn
