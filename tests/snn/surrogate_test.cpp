#include "snn/surrogate.hpp"

#include <gtest/gtest.h>

#include <numbers>

namespace ndsnn::snn {
namespace {

TEST(SurrogateTest, HeavisideStep) {
  EXPECT_EQ(heaviside(-1.0F), 0.0F);
  EXPECT_EQ(heaviside(-1e-6F), 0.0F);
  EXPECT_EQ(heaviside(0.0F), 1.0F);
  EXPECT_EQ(heaviside(2.0F), 1.0F);
}

TEST(SurrogateTest, AtanMatchesEq3) {
  // Eq. 3: phi(x) = 1 / (1 + pi^2 x^2)
  const float x = 0.5F;
  const auto pi2 = static_cast<float>(std::numbers::pi * std::numbers::pi);
  EXPECT_FLOAT_EQ(surrogate_grad(SurrogateKind::kAtan, x), 1.0F / (1.0F + pi2 * 0.25F));
  EXPECT_FLOAT_EQ(surrogate_grad(SurrogateKind::kAtan, 0.0F), 1.0F);
}

TEST(SurrogateTest, RectangleWindow) {
  EXPECT_EQ(surrogate_grad(SurrogateKind::kRectangle, 0.49F), 1.0F);
  EXPECT_EQ(surrogate_grad(SurrogateKind::kRectangle, 0.51F), 0.0F);
  EXPECT_EQ(surrogate_grad(SurrogateKind::kRectangle, -0.49F), 1.0F);
}

TEST(SurrogateTest, TriangleShape) {
  EXPECT_FLOAT_EQ(surrogate_grad(SurrogateKind::kTriangle, 0.0F), 1.0F);
  EXPECT_FLOAT_EQ(surrogate_grad(SurrogateKind::kTriangle, 0.5F), 0.5F);
  EXPECT_EQ(surrogate_grad(SurrogateKind::kTriangle, 1.5F), 0.0F);
}

TEST(SurrogateTest, Names) {
  EXPECT_STREQ(surrogate_name(SurrogateKind::kAtan), "atan");
  EXPECT_STREQ(surrogate_name(SurrogateKind::kFastSigmoid), "fast_sigmoid");
}

class SurrogatePropertyTest : public ::testing::TestWithParam<SurrogateKind> {};

TEST_P(SurrogatePropertyTest, PeaksAtThresholdAndSymmetric) {
  const SurrogateKind kind = GetParam();
  const float at_zero = surrogate_grad(kind, 0.0F);
  EXPECT_GT(at_zero, 0.0F);
  for (const float x : {0.1F, 0.3F, 0.7F, 1.5F, 3.0F}) {
    // Symmetric in x.
    EXPECT_FLOAT_EQ(surrogate_grad(kind, x), surrogate_grad(kind, -x));
    // Never exceeds the peak.
    EXPECT_LE(surrogate_grad(kind, x), at_zero);
    // Non-negative everywhere.
    EXPECT_GE(surrogate_grad(kind, x), 0.0F);
  }
}

TEST_P(SurrogatePropertyTest, MonotoneDecayAwayFromThreshold) {
  const SurrogateKind kind = GetParam();
  float prev = surrogate_grad(kind, 0.0F);
  for (const float x : {0.2F, 0.4F, 0.8F, 1.6F, 3.2F}) {
    const float cur = surrogate_grad(kind, x);
    EXPECT_LE(cur, prev + 1e-7F);
    prev = cur;
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, SurrogatePropertyTest,
                         ::testing::Values(SurrogateKind::kAtan,
                                           SurrogateKind::kFastSigmoid,
                                           SurrogateKind::kRectangle,
                                           SurrogateKind::kTriangle));

}  // namespace
}  // namespace ndsnn::snn
