#include "snn/encoder.hpp"

#include <gtest/gtest.h>

namespace ndsnn::snn {
namespace {

using tensor::Shape;
using tensor::Tensor;

TEST(DirectEncoderTest, ReplicatesFrames) {
  DirectEncoder enc;
  Tensor batch(Shape{2, 1, 2, 2});
  for (int64_t i = 0; i < batch.numel(); ++i) batch.at(i) = static_cast<float>(i);
  const Tensor out = enc.encode(batch, 3);
  EXPECT_EQ(out.shape(), Shape({6, 1, 2, 2}));
  for (int64_t t = 0; t < 3; ++t) {
    for (int64_t i = 0; i < batch.numel(); ++i) {
      EXPECT_EQ(out.at(t * batch.numel() + i), batch.at(i));
    }
  }
}

TEST(DirectEncoderTest, RejectsBadTimesteps) {
  DirectEncoder enc;
  Tensor batch(Shape{1, 1, 2, 2});
  EXPECT_THROW((void)enc.encode(batch, 0), std::invalid_argument);
}

TEST(PoissonEncoderTest, OutputIsBinary) {
  PoissonEncoder enc(5);
  Tensor batch(Shape{4, 1, 4, 4}, 0.5F);
  const Tensor out = enc.encode(batch, 8);
  for (int64_t i = 0; i < out.numel(); ++i) {
    EXPECT_TRUE(out.at(i) == 0.0F || out.at(i) == 1.0F);
  }
}

TEST(PoissonEncoderTest, RateMatchesIntensity) {
  PoissonEncoder enc(6);
  Tensor batch(Shape{1, 1, 32, 32}, 0.25F);
  const Tensor out = enc.encode(batch, 64);
  double rate = 0.0;
  for (int64_t i = 0; i < out.numel(); ++i) rate += out.at(i);
  rate /= static_cast<double>(out.numel());
  EXPECT_NEAR(rate, 0.25, 0.02);
}

TEST(PoissonEncoderTest, ClampsOutOfRangeIntensities) {
  PoissonEncoder enc(7);
  Tensor batch(Shape{1, 1, 2, 2}, std::vector<float>{-1.0F, 0.0F, 1.0F, 2.0F});
  const Tensor out = enc.encode(batch, 16);
  // Pixel 0 (clamped to 0) never fires; pixel 3 (clamped to 1) always.
  for (int64_t t = 0; t < 16; ++t) {
    EXPECT_EQ(out.at(t * 4 + 0), 0.0F);
    EXPECT_EQ(out.at(t * 4 + 3), 1.0F);
  }
}

TEST(LatencyEncoderTest, StrongerFiresEarlier) {
  LatencyEncoder enc;
  Tensor batch(Shape{1, 1, 1, 2}, std::vector<float>{1.0F, 0.5F});
  const Tensor out = enc.encode(batch, 4);
  // Intensity 1.0 -> t=0; intensity 0.5 -> t = floor(0.5*3) = 1.
  EXPECT_EQ(out.at(0 * 2 + 0), 1.0F);
  EXPECT_EQ(out.at(1 * 2 + 1), 1.0F);
}

TEST(LatencyEncoderTest, ExactlyOneSpikePerPositivePixel) {
  LatencyEncoder enc;
  Tensor batch(Shape{1, 1, 2, 2}, std::vector<float>{0.9F, 0.1F, 0.0F, 0.6F});
  const Tensor out = enc.encode(batch, 5);
  const int64_t step = batch.numel();
  for (int64_t i = 0; i < step; ++i) {
    int64_t count = 0;
    for (int64_t t = 0; t < 5; ++t) count += out.at(t * step + i) != 0.0F;
    EXPECT_EQ(count, batch.at(i) > 0.0F ? 1 : 0) << "pixel " << i;
  }
}

}  // namespace
}  // namespace ndsnn::snn
