#include "snn/plif.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "snn/lif.hpp"

namespace ndsnn::snn {
namespace {

using tensor::Shape;
using tensor::Tensor;

PlifConfig config(float alpha = 0.5F) {
  PlifConfig c;
  c.initial_alpha = alpha;
  return c;
}

TEST(PlifConfigTest, Validation) {
  EXPECT_NO_THROW(config().validate());
  EXPECT_THROW(config(0.0F).validate(), std::invalid_argument);
  EXPECT_THROW(config(1.0F).validate(), std::invalid_argument);
  auto c = config();
  c.threshold = 0.0F;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(PlifTest, InitialAlphaRoundTripsThroughSigmoid) {
  PlifLayer layer(config(0.7F), 2);
  EXPECT_NEAR(layer.alpha(), 0.7F, 1e-5F);
}

TEST(PlifTest, MatchesLifForwardAtSameLeak) {
  // With alpha fixed, PLIF forward must equal LIF forward exactly.
  PlifLayer plif(config(0.5F), 4);
  LifConfig lc;
  lc.alpha = 0.5F;
  LifLayer lif(lc, 4);
  Tensor current(Shape{4, 3}, std::vector<float>{0.6F, 1.2F, 0.1F, 0.6F, 0.0F, 0.9F,
                                                 0.6F, 0.4F, 0.9F, 0.6F, 0.8F, 0.9F});
  const Tensor a = plif.forward(current);
  const Tensor b = lif.forward(current);
  for (int64_t i = 0; i < a.numel(); ++i) EXPECT_EQ(a.at(i), b.at(i)) << i;
}

TEST(PlifTest, LeakGradientMatchesFiniteDifference) {
  // Probe loss L = sum(spikes * probe) is non-differentiable through the
  // Heaviside, so compare against the *surrogate* expectation instead:
  // perturb alpha, rerun, and check the analytic gradient at least has
  // the sign of the smoothed finite difference on a no-spike trace
  // (below threshold everywhere the surrogate is the only path).
  PlifLayer layer(config(0.6F), 3);
  Tensor current(Shape{3, 1}, std::vector<float>{0.3F, 0.3F, 0.3F});
  (void)layer.forward(current);
  Tensor g(Shape{3, 1}, 1.0F);
  layer.raw_leak_grad() = 0.0F;
  (void)layer.backward(g);
  // Membrane never crosses threshold; higher leak -> higher v -> spikes
  // closer -> surrogate-positive gradient. eps[t] > 0 and v[t-1] > 0 for
  // t >= 1, so the leak gradient must be strictly positive.
  EXPECT_GT(layer.raw_leak_grad(), 0.0F);
}

TEST(PlifTest, BackwardShapeAndOrderingChecks) {
  PlifLayer layer(config(), 2);
  Tensor g(Shape{2, 2});
  EXPECT_THROW((void)layer.backward(g), std::logic_error);
  Tensor current(Shape{2, 2}, 0.4F);
  (void)layer.forward(current);
  Tensor bad(Shape{2, 3});
  EXPECT_THROW((void)layer.backward(bad), std::invalid_argument);
}

TEST(PlifTest, SpikeRateTracked) {
  PlifLayer layer(config(), 1);
  Tensor current(Shape{1, 4}, std::vector<float>{2.0F, 0.0F, 2.0F, 0.0F});
  (void)layer.forward(current);
  EXPECT_NEAR(layer.last_spike_rate(), 0.5, 1e-9);
}

TEST(PlifTest, ResetStateClears) {
  PlifLayer layer(config(), 1);
  Tensor current(Shape{1, 1}, 0.5F);
  (void)layer.forward(current);
  layer.reset_state();
  Tensor g(Shape{1, 1});
  EXPECT_THROW((void)layer.backward(g), std::logic_error);
}

}  // namespace
}  // namespace ndsnn::snn
