#include "snn/alif.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "snn/lif.hpp"

namespace ndsnn::snn {
namespace {

using tensor::Shape;
using tensor::Tensor;

AlifConfig config(float beta = 0.2F) {
  AlifConfig c;
  c.beta = beta;
  return c;
}

TEST(AlifConfigTest, Validation) {
  EXPECT_NO_THROW(config().validate());
  auto c = config();
  c.rho = 1.0F;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = config();
  c.beta = -0.1F;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(AlifTest, ZeroBetaReducesToLif) {
  AlifLayer alif(config(0.0F), 4);
  LifConfig lc;
  lc.alpha = 0.5F;
  LifLayer lif(lc, 4);
  Tensor current(Shape{4, 2},
                 std::vector<float>{0.8F, 1.5F, 0.8F, 0.2F, 0.8F, 1.5F, 0.8F, 0.2F});
  const Tensor a = alif.forward(current);
  const Tensor b = lif.forward(current);
  for (int64_t i = 0; i < a.numel(); ++i) EXPECT_EQ(a.at(i), b.at(i)) << i;
}

TEST(AlifTest, AdaptationSuppressesSustainedFiring) {
  // Constant strong drive: ALIF must fire strictly less than LIF because
  // every spike raises the threshold.
  AlifLayer alif(config(0.5F), 16);
  LifConfig lc;
  lc.alpha = 0.5F;
  LifLayer lif(lc, 16);
  Tensor current(Shape{16, 8}, 1.5F);
  (void)alif.forward(current);
  (void)lif.forward(current);
  EXPECT_LT(alif.last_spike_rate(), lif.last_spike_rate());
  EXPECT_GT(alif.last_spike_rate(), 0.0);
}

TEST(AlifTest, StrongerAdaptationFiresLess) {
  double prev_rate = 1.0;
  for (const float beta : {0.1F, 0.5F, 1.5F}) {
    AlifLayer alif(config(beta), 16);
    Tensor current(Shape{16, 4}, 1.5F);
    (void)alif.forward(current);
    EXPECT_LE(alif.last_spike_rate(), prev_rate + 1e-9) << "beta " << beta;
    prev_rate = alif.last_spike_rate();
  }
}

TEST(AlifTest, BackwardProducesFiniteGrads) {
  AlifLayer alif(config(), 4);
  Tensor current(Shape{4, 3}, 0.9F);
  (void)alif.forward(current);
  Tensor g(Shape{4, 3}, 1.0F);
  const Tensor gin = alif.backward(g);
  for (int64_t i = 0; i < gin.numel(); ++i) {
    EXPECT_TRUE(std::isfinite(gin.at(i)));
  }
}

TEST(AlifTest, OrderingChecks) {
  AlifLayer alif(config(), 2);
  Tensor g(Shape{2, 1});
  EXPECT_THROW((void)alif.backward(g), std::logic_error);
  EXPECT_THROW(AlifLayer(config(), 0), std::invalid_argument);
}

}  // namespace
}  // namespace ndsnn::snn
