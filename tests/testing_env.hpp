// Shared seeded-RNG plumbing for randomized tests (all suites).
//
// Every randomized test derives its randomness from env_seed() so CI
// failures are reproducible: export the logged NDSNN_TEST_SEED locally
// to replay the identical sequence. The heavier differential harness
// (network generation, backend sweeps) lives in runtime/testing.hpp.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstdint>

namespace ndsnn::difftest {

/// Seed for all randomized tests: NDSNN_TEST_SEED when set, else a fixed
/// default. Logged once per test binary so failures are reproducible.
inline uint64_t env_seed() {
  static const uint64_t seed = [] {
    const char* raw = std::getenv("NDSNN_TEST_SEED");
    uint64_t value = 0x5EEDC0DEULL;
    if (raw != nullptr && *raw != '\0') {
      value = std::strtoull(raw, nullptr, 10);
    }
    std::printf("[difftest] NDSNN_TEST_SEED=%llu (export to reproduce)\n",
                static_cast<unsigned long long>(value));
    return value;
  }();
  return seed;
}

/// Positive integer from the environment, e.g. NDSNN_DIFF_CONFIGS to
/// scale the differential sweep down in slow (Debug/sanitizer) CI jobs.
inline int env_int(const char* name, int fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  const int value = std::atoi(raw);
  return value > 0 ? value : fallback;
}

}  // namespace ndsnn::difftest
