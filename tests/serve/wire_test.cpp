// Wire protocol: byte-level encode/decode round trips, defensive
// decoding of malformed payloads, and framed IO over a real fd pair —
// all without a server.
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cstdint>
#include <vector>

#include "serve/wire.hpp"
#include "tensor/random.hpp"
#include "tensor/tensor.hpp"

namespace ndsnn::serve {
namespace {

using tensor::Rng;
using tensor::Shape;
using tensor::Tensor;

Tensor make_tensor(const Shape& shape, uint64_t seed) {
  Tensor t(shape);
  Rng rng(seed);
  t.fill_uniform(rng, -1.0F, 1.0F);
  return t;
}

void expect_bitwise_equal(const Tensor& a, const Tensor& b) {
  ASSERT_EQ(a.shape(), b.shape());
  for (int64_t i = 0; i < a.numel(); ++i) ASSERT_EQ(a.at(i), b.at(i)) << "elem " << i;
}

TEST(WireTest, RequestRoundTripsBitwise) {
  RequestFrame req;
  req.model = "lenet5-int8";
  req.slo_class = 1;
  req.batch = make_tensor(Shape{3, 1, 16, 16}, 7);
  const std::vector<uint8_t> bytes = encode_request(req);
  const RequestFrame back = decode_request(bytes.data(), bytes.size());
  EXPECT_EQ(back.model, req.model);
  EXPECT_EQ(back.slo_class, req.slo_class);
  expect_bitwise_equal(back.batch, req.batch);
}

TEST(WireTest, EmptyModelNameMeansServerDefault) {
  RequestFrame req;
  req.batch = make_tensor(Shape{1, 4}, 9);
  const std::vector<uint8_t> bytes = encode_request(req);
  const RequestFrame back = decode_request(bytes.data(), bytes.size());
  EXPECT_TRUE(back.model.empty());
  EXPECT_EQ(back.slo_class, 0);
}

TEST(WireTest, OkResponseRoundTripsBitwise) {
  ResponseFrame resp;
  resp.status = Status::kOk;
  resp.logits = make_tensor(Shape{3, 10}, 11);
  const std::vector<uint8_t> bytes = encode_response(resp);
  const ResponseFrame back = decode_response(bytes.data(), bytes.size());
  EXPECT_EQ(back.status, Status::kOk);
  expect_bitwise_equal(back.logits, resp.logits);
}

TEST(WireTest, NonOkResponsesCarryTheMessage) {
  // The whole typed-error taxonomy travels the same message path.
  for (const Status status : {Status::kShed, Status::kError, Status::kTimeout,
                              Status::kShedding, Status::kBackpressure}) {
    ResponseFrame resp;
    resp.status = status;
    resp.message = "predicted queue wait above SLO budget";
    const std::vector<uint8_t> bytes = encode_response(resp);
    const ResponseFrame back = decode_response(bytes.data(), bytes.size());
    EXPECT_EQ(back.status, status);
    EXPECT_EQ(back.message, resp.message);
    // No tensor travels with a non-ok status: logits stay at the
    // default (a rank-0 scalar).
    EXPECT_EQ(back.logits.shape(), Tensor().shape());
  }
}

TEST(WireTest, TruncatedPayloadsThrowInsteadOfOverreading) {
  RequestFrame req;
  req.model = "m";
  req.batch = make_tensor(Shape{2, 8}, 13);
  const std::vector<uint8_t> bytes = encode_request(req);
  // Every strict prefix must be rejected cleanly — header, model name,
  // dims and data truncation are all covered by the sweep.
  for (std::size_t n = 0; n < bytes.size(); ++n) {
    EXPECT_THROW((void)decode_request(bytes.data(), n), WireError) << "prefix " << n;
  }
  // Trailing garbage is rejected too.
  std::vector<uint8_t> padded = bytes;
  padded.push_back(0);
  EXPECT_THROW((void)decode_request(padded.data(), padded.size()), WireError);
}

TEST(WireTest, RejectsWrongKindVersionAndAbusiveSizes) {
  RequestFrame req;
  req.batch = make_tensor(Shape{1, 4}, 15);
  std::vector<uint8_t> bytes = encode_request(req);
  {
    std::vector<uint8_t> bad = bytes;
    bad[0] = 99;  // version
    EXPECT_THROW((void)decode_request(bad.data(), bad.size()), WireError);
  }
  {
    std::vector<uint8_t> bad = bytes;
    bad[1] = kKindResponse;  // a response is not a request
    EXPECT_THROW((void)decode_request(bad.data(), bad.size()), WireError);
  }
  // A response payload decoded as a response but with an unknown status.
  ResponseFrame resp;
  resp.status = Status::kOk;
  resp.logits = make_tensor(Shape{1, 2}, 17);
  std::vector<uint8_t> rbytes = encode_response(resp);
  rbytes[2] = 17;  // status byte
  EXPECT_THROW((void)decode_response(rbytes.data(), rbytes.size()), WireError);
}

TEST(WireTest, FramesRoundTripOverAnFdPair) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  RequestFrame req;
  req.model = "default";
  req.batch = make_tensor(Shape{2, 1, 16, 16}, 19);
  send_frame(fds[1], encode_request(req));
  std::vector<uint8_t> payload;
  ASSERT_EQ(recv_frame(fds[0], payload), RecvStatus::kFrame);
  const RequestFrame back = decode_request(payload.data(), payload.size());
  expect_bitwise_equal(back.batch, req.batch);
  // Closing the write end mid-nothing is a clean EOF: recv reports it
  // as a state rather than throwing.
  ::close(fds[1]);
  EXPECT_EQ(recv_frame(fds[0], payload), RecvStatus::kEof);
  ::close(fds[0]);
}

TEST(WireTest, WritingToAVanishedPeerThrowsInsteadOfSigpipe) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ::close(fds[0]);  // the client disconnects before reading its response
  RequestFrame req;
  req.batch = make_tensor(Shape{1, 8}, 21);
  // Without MSG_NOSIGNAL the kernel delivers SIGPIPE here and the
  // default disposition kills the whole process before any EXPECT runs;
  // the contract is an ordinary WireError on this connection only.
  EXPECT_THROW(send_frame(fds[1], encode_request(req)), WireError);
  ::close(fds[1]);
}

TEST(WireTest, MidFrameEofAndBadMagicThrow) {
  {
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    // A length prefix promising bytes that never arrive.
    const std::vector<uint8_t> prefix = {0x4E, 0x44, 0x53, 0x31, 16, 0, 0, 0};
    ASSERT_EQ(::write(fds[1], prefix.data(), prefix.size()),
              static_cast<ssize_t>(prefix.size()));
    ::close(fds[1]);
    std::vector<uint8_t> payload;
    EXPECT_THROW((void)recv_frame(fds[0], payload), WireError);
    ::close(fds[0]);
  }
  {
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    const std::vector<uint8_t> garbage = {1, 2, 3, 4, 5, 6, 7, 8};
    ASSERT_EQ(::write(fds[1], garbage.data(), garbage.size()),
              static_cast<ssize_t>(garbage.size()));
    std::vector<uint8_t> payload;
    EXPECT_THROW((void)recv_frame(fds[0], payload), WireError);
    ::close(fds[0]);
    ::close(fds[1]);
  }
}

TEST(WireTest, ReceiveDeadlinesMapToTimeoutStates) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const timeval tv{0, 50 * 1000};  // 50 ms receive deadline
  ASSERT_EQ(::setsockopt(fds[0], SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)), 0);
  std::vector<uint8_t> payload;
  // Idle at a frame boundary: a reapable state, not an exception.
  EXPECT_EQ(recv_frame(fds[0], payload), RecvStatus::kTimeout);
  // A frame whose payload never arrives: the deadline now expires
  // mid-frame, which is fatal to the connection (typed as WireTimeout,
  // still catchable as WireError).
  const std::vector<uint8_t> prefix = {0x4E, 0x44, 0x53, 0x31, 16, 0, 0, 0};
  ASSERT_EQ(::send(fds[1], prefix.data(), prefix.size(), 0),
            static_cast<ssize_t>(prefix.size()));
  EXPECT_THROW((void)recv_frame(fds[0], payload), WireTimeout);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(WireTest, StreamOpenRoundTripsAndPeeksAsV2) {
  StreamOpenFrame open;
  open.model = "lenet5-int8";
  const std::vector<uint8_t> bytes = encode_stream_open(open);
  const FrameHeader hdr = peek_header(bytes.data(), bytes.size());
  EXPECT_EQ(hdr.version, kWireVersionStream);
  EXPECT_EQ(hdr.kind, kKindStreamOpen);
  EXPECT_EQ(decode_stream_open(bytes.data(), bytes.size()).model, open.model);

  // An empty model name travels too (server resolves its default).
  const std::vector<uint8_t> anon = encode_stream_open(StreamOpenFrame{});
  EXPECT_TRUE(decode_stream_open(anon.data(), anon.size()).model.empty());
}

TEST(WireTest, StreamStepRoundTripsBitwise) {
  StreamStepFrame step;
  step.frame = make_tensor(Shape{2, 1, 16, 16}, 33);
  const std::vector<uint8_t> bytes = encode_stream_step(step);
  const FrameHeader hdr = peek_header(bytes.data(), bytes.size());
  EXPECT_EQ(hdr.version, kWireVersionStream);
  EXPECT_EQ(hdr.kind, kKindStreamStep);
  expect_bitwise_equal(decode_stream_step(bytes.data(), bytes.size()).frame, step.frame);
}

TEST(WireTest, StreamCloseIsATwoByteFrame) {
  const std::vector<uint8_t> bytes = encode_stream_close();
  EXPECT_EQ(bytes.size(), 2U);
  const FrameHeader hdr = peek_header(bytes.data(), bytes.size());
  EXPECT_EQ(hdr.version, kWireVersionStream);
  EXPECT_EQ(hdr.kind, kKindStreamClose);
  EXPECT_NO_THROW(decode_stream_close(bytes.data(), bytes.size()));
  std::vector<uint8_t> padded = bytes;
  padded.push_back(0);  // trailing garbage
  EXPECT_THROW(decode_stream_close(padded.data(), padded.size()), WireError);
}

TEST(WireTest, PeekHeaderDispatchesWithoutValidating) {
  // A v1 request peeks as version 1 / kind request — the server's
  // dispatch relies on this to keep old clients on the one-shot path.
  RequestFrame req;
  req.batch = make_tensor(Shape{1, 4}, 35);
  const std::vector<uint8_t> v1 = encode_request(req);
  const FrameHeader hdr = peek_header(v1.data(), v1.size());
  EXPECT_EQ(hdr.version, kWireVersion);
  EXPECT_EQ(hdr.kind, kKindRequest);
  // Unknown values pass through the peek (full decoding rejects them
  // later); only a payload too short for a header throws.
  const std::vector<uint8_t> junk = {42, 99};
  EXPECT_EQ(peek_header(junk.data(), junk.size()).version, 42);
  EXPECT_THROW((void)peek_header(junk.data(), 1), WireError);
  EXPECT_THROW((void)peek_header(junk.data(), 0), WireError);
}

TEST(WireTest, TruncatedStreamPayloadsThrowInsteadOfOverreading) {
  StreamOpenFrame open;
  open.model = "m";
  const std::vector<uint8_t> obytes = encode_stream_open(open);
  for (std::size_t n = 0; n < obytes.size(); ++n) {
    EXPECT_THROW((void)decode_stream_open(obytes.data(), n), WireError) << "prefix " << n;
  }
  StreamStepFrame step;
  step.frame = make_tensor(Shape{2, 8}, 37);
  const std::vector<uint8_t> sbytes = encode_stream_step(step);
  for (std::size_t n = 0; n < sbytes.size(); ++n) {
    EXPECT_THROW((void)decode_stream_step(sbytes.data(), n), WireError) << "prefix " << n;
  }
  std::vector<uint8_t> padded = sbytes;
  padded.push_back(0);
  EXPECT_THROW((void)decode_stream_step(padded.data(), padded.size()), WireError);
}

TEST(WireTest, StreamDecodersRejectWrongVersionAndKind) {
  StreamStepFrame step;
  step.frame = make_tensor(Shape{1, 4}, 39);
  const std::vector<uint8_t> bytes = encode_stream_step(step);
  {
    std::vector<uint8_t> bad = bytes;
    bad[0] = kWireVersion;  // a v1 header on a v2 payload
    EXPECT_THROW((void)decode_stream_step(bad.data(), bad.size()), WireError);
  }
  {
    std::vector<uint8_t> bad = bytes;
    bad[1] = kKindStreamOpen;  // an open is not a step
    EXPECT_THROW((void)decode_stream_step(bad.data(), bad.size()), WireError);
  }
  // And the v1 decoder keeps rejecting v2 frames outright, so a
  // streaming frame sent at a v1-only server is an error response, not
  // a misparse.
  EXPECT_THROW((void)decode_request(bytes.data(), bytes.size()), WireError);
}

}  // namespace
}  // namespace ndsnn::serve
