// ModelRegistry: lazy loading, LRU memory budgeting (requantise before
// evict), and eviction safety for in-flight holders.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "nn/models/zoo.hpp"
#include "runtime/compiled_network.hpp"
#include "serve/model_registry.hpp"
#include "sparse/mask.hpp"
#include "tensor/random.hpp"

namespace ndsnn::serve {
namespace {

using runtime::CompiledNetwork;
using runtime::CompileOptions;
using tensor::Rng;
using tensor::Shape;
using tensor::Tensor;

/// Shared masked network; each loader compiles its own plan from it
/// with whatever options the registry asks for.
std::shared_ptr<nn::SpikingNetwork> make_net(uint64_t seed, int64_t image_size = 16) {
  nn::ModelSpec spec;
  spec.in_channels = 1;
  spec.image_size = image_size;
  spec.timesteps = 2;
  spec.seed = seed;
  auto net = nn::make_lenet5(spec);
  Rng rng(seed + 1);
  for (const auto& p : net->params()) {
    if (!p.prunable) continue;
    const auto active = static_cast<int64_t>(static_cast<double>(p.value->numel()) * 0.1);
    const sparse::Mask mask(p.value->shape(), active, rng);
    mask.apply(*p.value);
  }
  return net;
}

ModelRegistry::Loader loader_for(const std::shared_ptr<nn::SpikingNetwork>& net) {
  return [net](const CompileOptions& opts) { return CompiledNetwork::compile(*net, opts); };
}

TEST(ModelRegistryTest, LoadsLazilyAndCachesAcrossAcquires) {
  ModelRegistry registry;
  registry.add("a", loader_for(make_net(3)));
  EXPECT_EQ(registry.loads(), 0);
  EXPECT_FALSE(registry.resident("a"));
  const auto first = registry.acquire("a");
  EXPECT_EQ(registry.loads(), 1);
  EXPECT_TRUE(registry.resident("a"));
  const auto second = registry.acquire("a");
  EXPECT_EQ(registry.loads(), 1);  // cached, not reloaded
  EXPECT_EQ(first.get(), second.get());
  EXPECT_GT(registry.resident_bytes(), 0);
}

TEST(ModelRegistryTest, UnknownAndDuplicateNamesThrow) {
  ModelRegistry registry;
  registry.add("a", loader_for(make_net(5)));
  EXPECT_THROW((void)registry.acquire("nope"), std::out_of_range);
  EXPECT_THROW(registry.add("a", loader_for(make_net(5))), std::invalid_argument);
  EXPECT_THROW(registry.add("null", nullptr), std::invalid_argument);
  EXPECT_TRUE(registry.has("a"));
  EXPECT_FALSE(registry.has("nope"));
}

TEST(ModelRegistryTest, BudgetRequantisesThenEvictsTheColdestModel) {
  const auto net = make_net(7);
  // Measure one fp32 plan so the budget can be pinned just above it:
  // two resident fp32 plans cannot fit, forcing pressure on the second
  // acquire.
  const int64_t fp32_bytes = CompiledNetwork::compile(*net).stored_bytes();
  RegistryOptions opts;
  opts.mem_budget_bytes = fp32_bytes + fp32_bytes / 2;
  ModelRegistry registry(opts);
  registry.add("a", loader_for(net));
  registry.add("b", loader_for(make_net(8)));

  const auto a = registry.acquire("a");  // fits alone
  EXPECT_EQ(registry.evictions(), 0);
  EXPECT_EQ(registry.requantisations(), 0);

  const auto b = registry.acquire("b");  // over budget: squeeze "a"
  // Cold "a" is requantised to int8 first; eviction only if the shrink
  // was not enough for this budget (int8 planes are ~4x smaller, so
  // fp32 + int8 fits in 1.5x and "a" must survive as int8).
  EXPECT_GE(registry.requantisations(), 1);
  EXPECT_LE(registry.resident_bytes(), opts.mem_budget_bytes);
  EXPECT_TRUE(registry.resident("b"));

  // The requantised plan still serves (and the registry never touched
  // the shared_ptr the caller holds).
  Rng rng(9);
  Tensor batch(Shape{2, 1, 16, 16});
  batch.fill_uniform(rng, 0.0F, 1.0F);
  const Tensor logits = registry.acquire("a")->executor().submit(batch).get();
  EXPECT_EQ(logits.dim(0), 2);
}

TEST(ModelRegistryTest, EvictsWhenRequantisingCannotFitAndReloadsOnDemand) {
  const auto net = make_net(11);
  CompileOptions int8_opts;
  int8_opts.weight_precision = runtime::WeightPrecision::kInt8;
  const int64_t int8_bytes = CompiledNetwork::compile(*net, int8_opts).stored_bytes();
  // Budget below two *int8* plans: requantising alone can never fit two
  // models, so the second acquire must evict the first outright.
  RegistryOptions opts;
  opts.mem_budget_bytes = int8_bytes + int8_bytes / 2;
  ModelRegistry registry(opts);
  registry.add("a", loader_for(net));
  registry.add("b", loader_for(make_net(12)));

  const auto a = registry.acquire("a");
  (void)registry.acquire("b");
  EXPECT_GE(registry.evictions(), 1);
  EXPECT_FALSE(registry.resident("a"));
  EXPECT_TRUE(registry.resident("b"));

  // The evicted model's holder keeps working: eviction drops the
  // registry's reference, never the plan under in-flight work.
  Rng rng(13);
  Tensor batch(Shape{1, 1, 16, 16});
  batch.fill_uniform(rng, 0.0F, 1.0F);
  EXPECT_EQ(a->executor().submit(batch).get().dim(0), 1);

  // Re-acquiring an evicted model reloads it through the Loader (the
  // budgeter may trigger further loads squeezing "b", hence GE).
  const int64_t loads_before = registry.loads();
  const auto again = registry.acquire("a");
  EXPECT_GE(registry.loads(), loads_before + 1);
  EXPECT_TRUE(registry.resident("a"));
  EXPECT_NE(again.get(), a.get());
}

TEST(ModelRegistryTest, ConcurrentAcquiresOfAColdModelLoadItOnce) {
  ModelRegistry registry;
  registry.add("a", loader_for(make_net(41)));
  // Racing acquires must wait out one shared compile (per-entry loading
  // state), not each run the Loader themselves.
  std::vector<std::shared_ptr<ServedModel>> got(4);
  std::vector<std::thread> threads;
  threads.reserve(got.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    threads.emplace_back([&registry, &got, i] { got[i] = registry.acquire("a"); });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(registry.loads(), 1);
  for (const auto& g : got) {
    ASSERT_NE(g, nullptr);
    EXPECT_EQ(g.get(), got[0].get());
  }
}

TEST(ModelRegistryTest, RestoresRegisteredPrecisionWhenHeadroomReturns) {
  const auto small_a = make_net(31);
  const auto small_c = make_net(32);
  const auto big_b = make_net(33, /*image_size=*/48);
  const int64_t a_fp32 = CompiledNetwork::compile(*small_a).stored_bytes();
  const int64_t c_fp32 = CompiledNetwork::compile(*small_c).stored_bytes();
  const int64_t b_fp32 = CompiledNetwork::compile(*big_b).stored_bytes();
  CompileOptions int8_opts;
  int8_opts.weight_precision = runtime::WeightPrecision::kInt8;
  const int64_t a_int8 = CompiledNetwork::compile(*small_a, int8_opts).stored_bytes();
  const int64_t b_int8 = CompiledNetwork::compile(*big_b, int8_opts).stored_bytes();
  ASSERT_GE(b_fp32, 4 * a_fp32);  // premise: "b" dwarfs the small models

  // Budget admits int8 "a" + fp32 "b" with a sliver to spare — tight
  // enough that fp32 "a" + fp32 "b" does not fit.
  RegistryOptions opts;
  opts.mem_budget_bytes = a_int8 + b_fp32 + (a_fp32 - a_int8) / 2;
  ModelRegistry registry(opts);
  registry.add("a", loader_for(small_a));
  registry.add("b", loader_for(big_b));
  registry.add("c", loader_for(small_c));

  (void)registry.acquire("a");  // fits alone at full precision
  (void)registry.acquire("b");  // over budget: cold "a" -> int8
  EXPECT_EQ(registry.requantisations(), 1);
  EXPECT_EQ(registry.resident_bytes(), a_int8 + b_fp32);

  (void)registry.acquire("c");  // over again: "b" (coldest fp32) -> int8
  EXPECT_EQ(registry.requantisations(), 2);
  EXPECT_EQ(registry.evictions(), 0);
  EXPECT_EQ(registry.resident_bytes(), a_int8 + b_int8 + c_fp32);

  // Squeezing "b" freed far more than "a" needs: the next acquire of
  // "a" restores its registered fp32 precision instead of pinning it at
  // int8 forever.
  (void)registry.acquire("a");
  EXPECT_EQ(registry.resident_bytes(), a_fp32 + b_int8 + c_fp32);
  EXPECT_EQ(registry.requantisations(), 2);  // a restore is not a requantisation
  EXPECT_EQ(registry.evictions(), 0);

  // And it is stable: re-acquiring does not thrash through reloads.
  const int64_t loads_before = registry.loads();
  (void)registry.acquire("a");
  EXPECT_EQ(registry.loads(), loads_before);
}

TEST(ModelRegistryTest, NoBudgetMeansNothingIsEverSquuezed) {
  ModelRegistry registry;  // mem_budget_bytes = 0: unlimited
  registry.add("a", loader_for(make_net(15)));
  registry.add("b", loader_for(make_net(16)));
  registry.add("c", loader_for(make_net(17)));
  (void)registry.acquire("a");
  (void)registry.acquire("b");
  (void)registry.acquire("c");
  EXPECT_EQ(registry.evictions(), 0);
  EXPECT_EQ(registry.requantisations(), 0);
  EXPECT_TRUE(registry.resident("a"));
  EXPECT_TRUE(registry.resident("b"));
  EXPECT_TRUE(registry.resident("c"));
  EXPECT_EQ(registry.names().size(), 3U);
}

}  // namespace
}  // namespace ndsnn::serve
