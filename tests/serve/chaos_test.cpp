// Chaos suite: the serving stack under seeded fault injection
// (util::fault). Every test pins the same four invariants the CI soak
// asserts at scale: no crash, no hang past a deadline, every submitted
// request gets exactly one response or typed error, and fp32 results of
// *successful* requests stay bitwise identical to a no-fault run.
//
// Reproducing a failure: each schedule is deterministic in the injector
// seed — re-arm the same spec with the same seed and the exact same
// checks fire (CONTRIBUTING "Reproducing a chaos-test failure").
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "nn/models/zoo.hpp"
#include "runtime/compiled_network.hpp"
#include "runtime/stream_session.hpp"
#include "serve/model_registry.hpp"
#include "serve/server.hpp"
#include "serve/wire.hpp"
#include "sparse/mask.hpp"
#include "tensor/random.hpp"
#include "util/fault_injection.hpp"
#include "util/metrics.hpp"

namespace ndsnn::serve {
namespace {

using runtime::CompiledNetwork;
using runtime::CompileOptions;
using tensor::Rng;
using tensor::Shape;
using tensor::Tensor;
using util::fault::FaultInjector;
using util::fault::Rule;

std::shared_ptr<nn::SpikingNetwork> make_net(uint64_t seed) {
  nn::ModelSpec spec;
  spec.in_channels = 1;
  spec.image_size = 16;
  spec.timesteps = 2;
  spec.seed = seed;
  auto net = nn::make_lenet5(spec);
  Rng rng(seed + 1);
  for (const auto& p : net->params()) {
    if (!p.prunable) continue;
    const auto active = static_cast<int64_t>(static_cast<double>(p.value->numel()) * 0.1);
    const sparse::Mask mask(p.value->shape(), active, rng);
    mask.apply(*p.value);
  }
  return net;
}

ModelRegistry::Loader loader_for(const std::shared_ptr<nn::SpikingNetwork>& net) {
  return [net](const CompileOptions& opts) { return CompiledNetwork::compile(*net, opts); };
}

Tensor make_batch(int64_t rows, uint64_t seed) {
  Tensor t(Shape{rows, 1, 16, 16});
  Rng rng(seed);
  t.fill_uniform(rng, 0.0F, 1.0F);
  return t;
}

void expect_bitwise_equal(const Tensor& a, const Tensor& b) {
  ASSERT_EQ(a.shape(), b.shape());
  for (int64_t i = 0; i < a.numel(); ++i) ASSERT_EQ(a.at(i), b.at(i)) << "elem " << i;
}

int64_t counter_value(const char* name) {
  return util::MetricsRegistry::global().counter(name).value();
}

/// Every test leaves the process-wide injector clean; a leaked rule
/// would silently fault every later test in this binary.
class ChaosTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjector::global().reset(); }
};

TEST_F(ChaosTest, ShortReadsAndWritesAreInvisibleToResults) {
  ModelRegistry registry;
  registry.add("m", loader_for(make_net(301)));
  ServerOptions sopts;
  sopts.default_model = "m";
  Server server(registry, sopts);
  server.start();

  const Tensor batch = make_batch(2, 302);
  const Tensor reference = registry.acquire("m")->executor().submit(batch).get();

  // Every single syscall on both sides now moves one byte: the resume
  // loops in write_exact/read_exact must absorb it with zero effect on
  // the bytes (only on the syscall count).
  FaultInjector::global().arm("wire.short_read", Rule{1.0, -1, 0});
  FaultInjector::global().arm("wire.short_write", Rule{1.0, -1, 0});

  const int fd = connect_local(server.port());
  RequestFrame req;
  req.batch = batch;
  const ResponseFrame resp = round_trip(fd, req);
  ::close(fd);

  ASSERT_EQ(resp.status, Status::kOk) << resp.message;
  expect_bitwise_equal(resp.logits, reference);
  EXPECT_GT(FaultInjector::global().fires("wire.short_read"), 0);
  EXPECT_GT(FaultInjector::global().fires("wire.short_write"), 0);
  server.stop();
}

TEST_F(ChaosTest, InjectedResetSurfacesAsTypedErrorNotCrash) {
  ModelRegistry registry;
  registry.add("m", loader_for(make_net(303)));
  ServerOptions sopts;
  sopts.default_model = "m";
  Server server(registry, sopts);
  server.start();
  const Tensor batch = make_batch(1, 304);

  // Exactly one reset: the very next wire I/O (the client's own send)
  // dies as if the kernel reported ECONNRESET. The caller must see a
  // typed WireError, and the server must not care.
  FaultInjector::global().arm("wire.reset", Rule{1.0, 1, 0});
  const int fd = connect_local(server.port());
  RequestFrame req;
  req.batch = batch;
  EXPECT_THROW((void)round_trip(fd, req), WireError);
  ::close(fd);
  EXPECT_EQ(FaultInjector::global().fires("wire.reset"), 1);

  // The quota is spent; a fresh connection serves normally.
  const int fd2 = connect_local(server.port());
  const ResponseFrame resp = round_trip(fd2, req);
  ::close(fd2);
  ASSERT_EQ(resp.status, Status::kOk) << resp.message;
  server.stop();
}

TEST_F(ChaosTest, TornServerResponseClosesThatConnectionOnly) {
  ModelRegistry registry;
  registry.add("m", loader_for(make_net(305)));
  ServerOptions sopts;
  sopts.default_model = "m";
  Server server(registry, sopts);
  server.start();
  const Tensor batch = make_batch(1, 306);

  // skip=1 jumps over the client's request send; the one fire lands on
  // the SERVER's response send, which dies after the prefix and half
  // the payload — the client must see a mid-frame EOF as WireError.
  FaultInjector::global().arm("wire.torn_frame", Rule{1.0, 1, 1});
  const int fd = connect_local(server.port());
  RequestFrame req;
  req.batch = batch;
  EXPECT_THROW((void)round_trip(fd, req), WireError);
  ::close(fd);
  EXPECT_EQ(FaultInjector::global().fires("wire.torn_frame"), 1);

  // Only that connection died; the acceptor and registry are fine.
  const int fd2 = connect_local(server.port());
  const ResponseFrame resp = round_trip(fd2, req);
  ::close(fd2);
  ASSERT_EQ(resp.status, Status::kOk) << resp.message;
  server.stop();
}

TEST_F(ChaosTest, RegistryLoaderFaultIsAPerRequestError) {
  ModelRegistry registry;
  registry.add("m", loader_for(make_net(307)));
  ServerOptions sopts;
  sopts.default_model = "m";
  Server server(registry, sopts);
  server.start();
  const Tensor batch = make_batch(1, 308);

  FaultInjector::global().arm("registry.load", Rule{1.0, 1, 0});
  const int fd = connect_local(server.port());
  RequestFrame req;
  req.batch = batch;
  const ResponseFrame failed = round_trip(fd, req);
  ASSERT_EQ(failed.status, Status::kError);
  EXPECT_NE(failed.message.find("registry.load"), std::string::npos) << failed.message;

  // The entry's loading latch must have been released by the failure:
  // the retry (same connection!) loads and serves.
  const ResponseFrame ok = round_trip(fd, req);
  ::close(fd);
  ASSERT_EQ(ok.status, Status::kOk) << ok.message;
  EXPECT_GT(ok.logits.numel(), 0);
  server.stop();
}

TEST_F(ChaosTest, ExecutorFaultMidStreamResetsSessionAndAnswersError) {
  ModelRegistry registry;
  registry.add("m", loader_for(make_net(309)));
  ServerOptions sopts;
  sopts.default_model = "m";
  Server server(registry, sopts);
  server.start();

  const Tensor f0 = make_batch(1, 310);
  const Tensor f1 = make_batch(1, 311);
  const Tensor f2 = make_batch(1, 312);

  const int fd = connect_local(server.port());
  ASSERT_EQ(stream_open(fd, "m").status, Status::kOk);
  ASSERT_EQ(stream_step(fd, f0).status, Status::kOk);

  // The next drain throws mid-sequence. Contract: the step is answered
  // kError AND the session restarts from clean state — continuing from
  // a half-advanced carry would silently corrupt every later step.
  FaultInjector::global().arm("executor.stream", Rule{1.0, 1, 0});
  const ResponseFrame failed = stream_step(fd, f1);
  ASSERT_EQ(failed.status, Status::kError);
  EXPECT_NE(failed.message.find("executor.stream"), std::string::npos) << failed.message;

  const ResponseFrame resumed = stream_step(fd, f2);
  ASSERT_EQ(resumed.status, Status::kOk) << resumed.message;
  ASSERT_EQ(stream_close(fd).status, Status::kOk);
  ::close(fd);

  // Reference: a FRESH session stepping f2 first — the reset dropped
  // f0's carry along with the failed f1.
  const CompiledNetwork plan = CompiledNetwork::compile(*make_net(309));
  runtime::StreamSession fresh(plan);
  expect_bitwise_equal(resumed.logits, fresh.step(f2).logits);
  server.stop();
}

TEST_F(ChaosTest, IdleConnectionIsReapedWithATimeoutStatus) {
  ModelRegistry registry;
  registry.add("m", loader_for(make_net(313)));
  ServerOptions sopts;
  sopts.default_model = "m";
  sopts.conn_timeout_ms = 100;
  Server server(registry, sopts);
  server.start();
  const int64_t timeouts_before = counter_value("serve.conn_timeout");

  // Connect, say nothing. The server must notice the idle deadline,
  // answer kTimeout (the socket is still perfectly writable) and close.
  const int fd = connect_local(server.port());
  std::vector<uint8_t> payload;
  ASSERT_EQ(recv_frame(fd, payload), RecvStatus::kFrame);
  const ResponseFrame resp = decode_response(payload.data(), payload.size());
  EXPECT_EQ(resp.status, Status::kTimeout);
  EXPECT_EQ(recv_frame(fd, payload), RecvStatus::kEof);
  ::close(fd);

  EXPECT_GE(counter_value("serve.conn_timeout"), timeouts_before + 1);
  server.stop();
}

TEST_F(ChaosTest, StalledMidFrameClientIsDisconnected) {
  ModelRegistry registry;
  registry.add("m", loader_for(make_net(315)));
  ServerOptions sopts;
  sopts.default_model = "m";
  sopts.conn_timeout_ms = 100;
  Server server(registry, sopts);
  server.start();

  // Send ONLY the 8-byte prefix (magic + "16 bytes follow") and stall.
  // Mid-frame the server cannot answer — the framing is dangling — so
  // the contract is a plain disconnect, no response frame.
  const int fd = connect_local(server.port());
  const uint8_t prefix[8] = {0x4E, 0x44, 0x53, 0x31, 16, 0, 0, 0};
  ASSERT_EQ(::send(fd, prefix, sizeof(prefix), MSG_NOSIGNAL),
            static_cast<ssize_t>(sizeof(prefix)));
  std::vector<uint8_t> payload;
  EXPECT_EQ(recv_frame(fd, payload), RecvStatus::kEof);
  ::close(fd);
  server.stop();
}

TEST_F(ChaosTest, BackpressureStatusAndRetryHelperPreserveStreamState) {
  ModelRegistry registry;
  registry.add("m", loader_for(make_net(317)));
  ServerOptions sopts;
  sopts.default_model = "m";
  Server server(registry, sopts);
  server.start();

  const Tensor f0 = make_batch(1, 318);
  const Tensor f1 = make_batch(1, 319);

  const int fd = connect_local(server.port());
  ASSERT_EQ(stream_open(fd, "m").status, Status::kOk);
  const ResponseFrame r0 = stream_step(fd, f0);
  ASSERT_EQ(r0.status, Status::kOk);

  // Two forced rejections: the bare step sees kBackpressure (fire 1),
  // then the retry helper eats fire 2 and lands the step on attempt 2.
  FaultInjector::global().arm("executor.backpressure", Rule{1.0, 2, 0});
  const ResponseFrame rejected = stream_step(fd, f1);
  ASSERT_EQ(rejected.status, Status::kBackpressure) << rejected.message;

  const ResponseFrame r1 = stream_step_retry(fd, f1, /*max_retries=*/4,
                                             /*base_backoff_ms=*/0.5, /*seed=*/7);
  ASSERT_EQ(r1.status, Status::kOk) << r1.message;
  ASSERT_EQ(stream_close(fd).status, Status::kOk);
  ::close(fd);
  EXPECT_EQ(FaultInjector::global().fires("executor.backpressure"), 2);

  // The acceptance criterion: both rejections left the session's carry
  // state untouched, so (f0, f1) matches an unfaulted whole-window
  // reference run bitwise.
  const CompiledNetwork plan = CompiledNetwork::compile(*make_net(317));
  runtime::StreamSession reference(plan);
  expect_bitwise_equal(r0.logits, reference.step(f0).logits);
  expect_bitwise_equal(r1.logits, reference.step(f1).logits);

  EXPECT_EQ(registry.acquire("m")->executor().stats().backpressure_rejections, 2);
  server.stop();
}

TEST_F(ChaosTest, DrainFinishesInFlightWorkAndShedsNewRequests) {
  ModelRegistry registry;
  registry.add("m", loader_for(make_net(321)));
  ServerOptions sopts;
  sopts.default_model = "m";
  Server server(registry, sopts);
  server.start();
  const Tensor batch = make_batch(1, 322);
  // Warm the model so the in-flight request below is pure executor time.
  (void)registry.acquire("m");

  // Connection C holds a stream open: drain() cannot settle while it
  // lives, which pins the "still draining" window every assertion below
  // runs inside — no timing games.
  const int stream_fd = connect_local(server.port());
  ASSERT_EQ(stream_open(stream_fd, "m").status, Status::kOk);

  // Connection A: one request made slow by an injected 50 ms stall, sent
  // just before the drain starts — in-flight work that must FINISH.
  FaultInjector::global().arm("executor.stall", Rule{1.0, 1, 0});
  const int slow_fd = connect_local(server.port());
  ResponseFrame slow_resp;
  std::thread slow_client([&] {
    RequestFrame req;
    req.batch = batch;
    slow_resp = round_trip(slow_fd, req);
  });
  // The stall firing proves A's request reached a worker (it is past
  // admission, mid-service) before drain flips the refuse-new-work flag.
  while (FaultInjector::global().fires("executor.stall") < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  // Connection B connects *before* the drain: kShedding is the answer
  // for new work on already-accepted connections (brand-new connects
  // are refused outright once the listen socket is down).
  const int probe_fd = connect_local(server.port());

  std::atomic<bool> drained{false};
  bool settled = false;
  std::thread drainer([&] {
    settled = server.drain(std::chrono::milliseconds(5000));
    drained.store(true);
  });
  while (!server.draining()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // New work during the drain: typed refusal, not an error or a hang.
  RequestFrame probe;
  probe.batch = batch;
  const ResponseFrame shed = round_trip(probe_fd, probe);
  EXPECT_EQ(shed.status, Status::kShedding) << shed.message;
  ::close(probe_fd);

  // A's in-flight request completed normally despite the drain.
  slow_client.join();
  ::close(slow_fd);
  ASSERT_EQ(slow_resp.status, Status::kOk) << slow_resp.message;
  expect_bitwise_equal(slow_resp.logits,
                       registry.acquire("m")->executor().submit(batch).get());

  // Still draining: the stream on C is open. Close it and the drain
  // settles inside the deadline.
  EXPECT_FALSE(drained.load());
  ASSERT_EQ(stream_close(stream_fd).status, Status::kOk);
  ::close(stream_fd);
  drainer.join();
  EXPECT_TRUE(settled);

  // The listen socket is down: new connections are refused.
  EXPECT_THROW((void)connect_local(server.port()), std::runtime_error);
}

TEST_F(ChaosTest, DrainForceClosesALingeringStreamAtTheDeadline) {
  ModelRegistry registry;
  registry.add("m", loader_for(make_net(323)));
  ServerOptions sopts;
  sopts.default_model = "m";
  Server server(registry, sopts);
  server.start();

  // A client that opens a stream and walks away: drain must give up at
  // the deadline, force-close, and report the unclean settle — never
  // hang.
  const int fd = connect_local(server.port());
  ASSERT_EQ(stream_open(fd, "m").status, Status::kOk);

  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(server.drain(std::chrono::milliseconds(200)));
  const auto waited = std::chrono::steady_clock::now() - t0;
  EXPECT_GE(waited, std::chrono::milliseconds(200));
  EXPECT_LT(waited, std::chrono::milliseconds(5000));
  ::close(fd);
}

TEST_F(ChaosTest, AcceptFaultDoesNotWedgeTheAcceptor) {
  ModelRegistry registry;
  registry.add("m", loader_for(make_net(325)));
  ServerOptions sopts;
  sopts.default_model = "m";
  Server server(registry, sopts);
  server.start();
  const Tensor batch = make_batch(1, 326);

  // Three accepts die as if the handshake failed. The TCP connect
  // itself still succeeds (backlog), so each victim only notices at
  // round-trip time: no response, typed WireError.
  FaultInjector::global().arm("server.accept", Rule{1.0, 3, 0});
  for (int i = 0; i < 3; ++i) {
    const int fd = connect_local(server.port());
    RequestFrame req;
    req.batch = batch;
    EXPECT_THROW((void)round_trip(fd, req), WireError) << "victim " << i;
    ::close(fd);
  }
  EXPECT_EQ(FaultInjector::global().fires("server.accept"), 3);

  // Quota spent: the acceptor kept looping and serves the 4th normally.
  const int fd = connect_local(server.port());
  RequestFrame req;
  req.batch = batch;
  const ResponseFrame resp = round_trip(fd, req);
  ::close(fd);
  ASSERT_EQ(resp.status, Status::kOk) << resp.message;
  server.stop();
}

TEST_F(ChaosTest, SeededFaultScheduleKeepsEveryInvariant) {
  ModelRegistry registry;
  registry.add("m", loader_for(make_net(327)));
  ServerOptions sopts;
  sopts.default_model = "m";
  Server server(registry, sopts);
  server.start();
  const Tensor batch = make_batch(2, 328);
  const Tensor reference = registry.acquire("m")->executor().submit(batch).get();

  for (const uint64_t seed : {11ULL, 12ULL, 13ULL}) {
    FaultInjector::global().reset();
    FaultInjector::global().configure(
        "seed=" + std::to_string(seed) +
        ";wire.short_read=0.2;wire.short_write=0.2;wire.reset=0.02;"
        "wire.torn_frame=0.02;executor.run=0.05;server.accept=0.1");

    constexpr int kRequests = 40;
    int ok = 0;
    int typed_error = 0;  // kShed/kError/kTimeout/... — a response arrived
    int dropped = 0;      // connection died: WireError on this side
    int fd = -1;
    for (int i = 0; i < kRequests; ++i) {
      try {
        if (fd < 0) fd = connect_local(server.port());
        RequestFrame req;
        req.batch = batch;
        const ResponseFrame resp = round_trip(fd, req);
        if (resp.status == Status::kOk) {
          // THE invariant: a request either fails in a typed way or
          // returns exactly the unfaulted bits — short reads, torn
          // frames and resets around it change nothing.
          expect_bitwise_equal(resp.logits, reference);
          ++ok;
        } else {
          ++typed_error;
        }
      } catch (const WireError&) {
        ++dropped;
        if (fd >= 0) ::close(fd);
        fd = -1;  // reconnect on the next iteration
      }
    }
    if (fd >= 0) ::close(fd);
    EXPECT_EQ(ok + typed_error + dropped, kRequests) << "seed " << seed;
    EXPECT_GT(ok, 0) << "seed " << seed << ": nothing succeeded — schedule too hot?";

    // The server survived the whole schedule: quiesce the faults and
    // prove it still serves cleanly.
    FaultInjector::global().reset();
    const int clean_fd = connect_local(server.port());
    RequestFrame req;
    req.batch = batch;
    const ResponseFrame resp = round_trip(clean_fd, req);
    ::close(clean_fd);
    ASSERT_EQ(resp.status, Status::kOk) << "seed " << seed << ": " << resp.message;
    expect_bitwise_equal(resp.logits, reference);
  }
  server.stop();
}

}  // namespace
}  // namespace ndsnn::serve
