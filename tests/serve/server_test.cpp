// Socket front-end: framed round trips over a real TCP connection must
// be bitwise identical to in-process submits, and per-request errors
// must come back as statuses without dropping the connection.
#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>

#include "nn/models/zoo.hpp"
#include "runtime/compiled_network.hpp"
#include "runtime/stream_session.hpp"
#include "serve/model_registry.hpp"
#include "serve/server.hpp"
#include "serve/wire.hpp"
#include "sparse/mask.hpp"
#include "tensor/random.hpp"

namespace ndsnn::serve {
namespace {

using runtime::CompiledNetwork;
using runtime::CompileOptions;
using tensor::Rng;
using tensor::Shape;
using tensor::Tensor;

std::shared_ptr<nn::SpikingNetwork> make_net(uint64_t seed) {
  nn::ModelSpec spec;
  spec.in_channels = 1;
  spec.image_size = 16;
  spec.timesteps = 2;
  spec.seed = seed;
  auto net = nn::make_lenet5(spec);
  Rng rng(seed + 1);
  for (const auto& p : net->params()) {
    if (!p.prunable) continue;
    const auto active = static_cast<int64_t>(static_cast<double>(p.value->numel()) * 0.1);
    const sparse::Mask mask(p.value->shape(), active, rng);
    mask.apply(*p.value);
  }
  return net;
}

ModelRegistry::Loader loader_for(const std::shared_ptr<nn::SpikingNetwork>& net) {
  return [net](const CompileOptions& opts) { return CompiledNetwork::compile(*net, opts); };
}

Tensor make_batch(int64_t rows, uint64_t seed) {
  Tensor t(Shape{rows, 1, 16, 16});
  Rng rng(seed);
  t.fill_uniform(rng, 0.0F, 1.0F);
  return t;
}

void expect_bitwise_equal(const Tensor& a, const Tensor& b) {
  ASSERT_EQ(a.shape(), b.shape());
  for (int64_t i = 0; i < a.numel(); ++i) ASSERT_EQ(a.at(i), b.at(i)) << "elem " << i;
}

TEST(ServerTest, SocketRoundTripMatchesInProcessSubmitBitwise) {
  ModelRegistry registry;
  registry.add("a", loader_for(make_net(21)));
  ServerOptions sopts;
  sopts.default_model = "a";
  Server server(registry, sopts);
  server.start();
  ASSERT_GT(server.port(), 0);

  const Tensor batch = make_batch(2, 22);
  // The spiking forward pass is deterministic per plan, so serving the
  // same batch twice (socket and in-process) must agree to the bit.
  const Tensor reference = registry.acquire("a")->executor().submit(batch).get();

  const int fd = connect_local(server.port());
  RequestFrame req;
  req.model = "a";
  req.batch = batch;
  const ResponseFrame resp = round_trip(fd, req);
  ::close(fd);

  ASSERT_EQ(resp.status, Status::kOk) << resp.message;
  expect_bitwise_equal(resp.logits, reference);
  EXPECT_EQ(server.requests_served(), 1);
  EXPECT_EQ(server.connections(), 1);
  server.stop();
}

TEST(ServerTest, EmptyModelNameFallsBackToTheDefaultModel) {
  ModelRegistry registry;
  registry.add("only", loader_for(make_net(23)));
  ServerOptions sopts;
  sopts.default_model = "only";
  Server server(registry, sopts);
  server.start();

  const Tensor batch = make_batch(1, 24);
  const Tensor reference = registry.acquire("only")->executor().submit(batch).get();

  const int fd = connect_local(server.port());
  RequestFrame req;  // model left empty
  req.batch = batch;
  const ResponseFrame resp = round_trip(fd, req);
  ::close(fd);

  ASSERT_EQ(resp.status, Status::kOk) << resp.message;
  expect_bitwise_equal(resp.logits, reference);
}

TEST(ServerTest, UnknownModelIsAPerRequestErrorNotAConnectionDrop) {
  ModelRegistry registry;
  registry.add("a", loader_for(make_net(25)));
  ServerOptions sopts;
  sopts.default_model = "a";
  Server server(registry, sopts);
  server.start();

  const int fd = connect_local(server.port());
  RequestFrame bad;
  bad.model = "no-such-model";
  bad.batch = make_batch(1, 26);
  const ResponseFrame err = round_trip(fd, bad);
  EXPECT_EQ(err.status, Status::kError);
  EXPECT_FALSE(err.message.empty());

  // The connection survives: a good request on the same fd still works.
  RequestFrame good;
  good.model = "a";
  good.batch = make_batch(1, 26);
  const ResponseFrame ok = round_trip(fd, good);
  EXPECT_EQ(ok.status, Status::kOk) << ok.message;
  ::close(fd);
  EXPECT_EQ(server.requests_served(), 2);
}

TEST(ServerTest, ManySequentialRequestsOnOneConnection) {
  ModelRegistry registry;
  registry.add("a", loader_for(make_net(27)));
  ServerOptions sopts;
  sopts.default_model = "a";
  Server server(registry, sopts);
  server.start();

  const auto model = registry.acquire("a");
  const int fd = connect_local(server.port());
  for (int i = 0; i < 6; ++i) {
    const Tensor batch = make_batch(1 + i % 2, 30 + static_cast<uint64_t>(i));
    const Tensor reference = model->executor().submit(batch).get();
    RequestFrame req;
    req.batch = batch;
    const ResponseFrame resp = round_trip(fd, req);
    ASSERT_EQ(resp.status, Status::kOk) << resp.message;
    expect_bitwise_equal(resp.logits, reference);
  }
  ::close(fd);
  EXPECT_EQ(server.requests_served(), 6);
  EXPECT_EQ(server.connections(), 1);
  server.stop();
  // stop() is idempotent and the destructor will call it again.
  server.stop();
}

// Finished connection handlers must be reaped as the server keeps
// accepting — not hoarded as joinable zombie threads until stop(). Each
// accept joins handlers that have finished, so after a run of
// sequential connections the tracked set collapses to the live tail.
TEST(ServerTest, FinishedConnectionThreadsAreReapedWhileServing) {
  ModelRegistry registry;
  registry.add("a", loader_for(make_net(29)));
  ServerOptions sopts;
  sopts.default_model = "a";
  Server server(registry, sopts);
  server.start();

  RequestFrame req;
  req.batch = make_batch(1, 31);
  for (int i = 0; i < 8; ++i) {
    const int fd = connect_local(server.port());
    ASSERT_EQ(round_trip(fd, req).status, Status::kOk);
    ::close(fd);
  }
  // Handlers notice the client's close asynchronously; every new accept
  // reaps the ones that finished, so within a few probe connections the
  // tracked set must shrink to at most the probe itself plus one
  // straggler. Without reaping it only ever grows past the 8 above.
  bool reaped = false;
  for (int attempt = 0; attempt < 100 && !reaped; ++attempt) {
    const int fd = connect_local(server.port());
    ASSERT_EQ(round_trip(fd, req).status, Status::kOk);
    ::close(fd);
    reaped = server.tracked_connections() <= 2;
    if (!reaped) std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_TRUE(reaped);
  EXPECT_GE(server.connections(), 9);  // every connection was accepted...
  EXPECT_LT(server.tracked_connections(), 3U);  // ...but almost none linger
  server.stop();
}

TEST(ServerTest, StreamedStepsOverTheSocketMatchADirectSession) {
  const auto net = make_net(41);
  ModelRegistry registry;
  registry.add("a", loader_for(net));
  ServerOptions sopts;
  sopts.default_model = "a";
  Server server(registry, sopts);
  server.start();

  // Reference trajectory: a fresh session driven in-process. The socket
  // stream must reproduce it step for step, bit for bit — the wire and
  // the executor queue add transport, never arithmetic.
  const auto model = registry.acquire("a");
  runtime::StreamSession reference(model->plan());

  const int fd = connect_local(server.port());
  ASSERT_EQ(stream_open(fd, "a").status, Status::kOk);
  for (int t = 0; t < 5; ++t) {
    Tensor frame(Shape{2, 1, 16, 16});
    if (t != 2) {  // step 2 stays silent: the delta path serves it too
      Rng rng(42 + static_cast<uint64_t>(t));
      frame.fill_uniform(rng, 0.0F, 4.0F);
    }
    const ResponseFrame resp = stream_step(fd, frame);
    ASSERT_EQ(resp.status, Status::kOk) << resp.message;
    expect_bitwise_equal(resp.logits, reference.step(frame).logits);
  }
  EXPECT_EQ(stream_close(fd).status, Status::kOk);
  EXPECT_EQ(model->executor().open_streams(), 0);
  ::close(fd);
  server.stop();
}

TEST(ServerTest, StreamProtocolViolationsAreErrorsNotDisconnects) {
  ModelRegistry registry;
  registry.add("a", loader_for(make_net(43)));
  ServerOptions sopts;
  sopts.default_model = "a";
  Server server(registry, sopts);
  server.start();

  const int fd = connect_local(server.port());
  // A step before any open is a per-frame error...
  const ResponseFrame early = stream_step(fd, make_batch(1, 44));
  EXPECT_EQ(early.status, Status::kError);
  EXPECT_FALSE(early.message.empty());
  // ...as is closing a stream that never opened...
  EXPECT_EQ(stream_close(fd).status, Status::kError);
  // ...and opening a second stream on the same connection.
  ASSERT_EQ(stream_open(fd, "a").status, Status::kOk);
  EXPECT_EQ(stream_open(fd, "a").status, Status::kError);
  // The original stream is untouched by the failed re-open.
  EXPECT_EQ(stream_step(fd, make_batch(2, 45)).status, Status::kOk);

  // v1 one-shot requests interleave with the open stream on the same
  // connection — old-protocol traffic is never locked out.
  RequestFrame req;
  req.batch = make_batch(1, 46);
  EXPECT_EQ(round_trip(fd, req).status, Status::kOk);
  EXPECT_EQ(stream_close(fd).status, Status::kOk);
  ::close(fd);
  server.stop();
}

TEST(ServerTest, DisconnectWithAnOpenStreamDoesNotLeakTheSession) {
  ModelRegistry registry;
  registry.add("a", loader_for(make_net(47)));
  ServerOptions sopts;
  sopts.default_model = "a";
  Server server(registry, sopts);
  server.start();

  const auto model = registry.acquire("a");
  {
    const int fd = connect_local(server.port());
    ASSERT_EQ(stream_open(fd, "").status, Status::kOk);  // default model
    ASSERT_EQ(stream_step(fd, make_batch(1, 48)).status, Status::kOk);
    EXPECT_EQ(model->executor().open_streams(), 1);
    ::close(fd);  // vanish mid-stream, no stream-close
  }
  // The handler notices the EOF asynchronously and closes the executor
  // session on its way out.
  bool reaped = false;
  for (int attempt = 0; attempt < 100 && !reaped; ++attempt) {
    reaped = model->executor().open_streams() == 0;
    if (!reaped) std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_TRUE(reaped);
  server.stop();
}

}  // namespace
}  // namespace ndsnn::serve
