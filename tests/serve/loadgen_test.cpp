// Poisson loadgen: the arrival process must have the right statistics
// and determinism, and an open-loop run must account for every arrival.
#include <gtest/gtest.h>

#include <memory>

#include "nn/models/zoo.hpp"
#include "runtime/batch_executor.hpp"
#include "runtime/compiled_network.hpp"
#include "serve/loadgen.hpp"
#include "sparse/mask.hpp"
#include "tensor/random.hpp"

namespace ndsnn::serve {
namespace {

using runtime::BatchExecutor;
using runtime::CompiledNetwork;
using tensor::Rng;
using tensor::Shape;
using tensor::Tensor;

TEST(LoadgenTest, ArrivalTimesAreStrictlyIncreasingFromZero) {
  const auto times = poisson_arrival_times_ms(200.0, 500, 42);
  ASSERT_EQ(times.size(), 500U);
  EXPECT_GT(times.front(), 0.0);
  for (std::size_t i = 1; i < times.size(); ++i) {
    EXPECT_GT(times[i], times[i - 1]) << "arrival " << i;
  }
}

TEST(LoadgenTest, MeanInterArrivalGapMatchesTheOfferedRate) {
  const double rps = 400.0;
  const int64_t n = 4000;
  const auto times = poisson_arrival_times_ms(rps, n, 7);
  // Mean gap of an exponential process is 1000/rps ms; at n=4000 the
  // sample mean should land well inside 10% of it.
  const double mean_gap = times.back() / static_cast<double>(n);
  const double expected = 1000.0 / rps;
  EXPECT_NEAR(mean_gap, expected, expected * 0.10);
}

TEST(LoadgenTest, ArrivalScheduleIsDeterministicPerSeed) {
  const auto a = poisson_arrival_times_ms(100.0, 64, 9);
  const auto b = poisson_arrival_times_ms(100.0, 64, 9);
  const auto c = poisson_arrival_times_ms(100.0, 64, 10);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]) << "arrival " << i;
  bool any_differ = false;
  for (std::size_t i = 0; i < a.size() && !any_differ; ++i) any_differ = a[i] != c[i];
  EXPECT_TRUE(any_differ) << "different seeds produced identical schedules";
}

TEST(LoadgenTest, OpenLoopRunAccountsForEveryArrival) {
  nn::ModelSpec spec;
  spec.in_channels = 1;
  spec.image_size = 16;
  spec.timesteps = 2;
  spec.seed = 51;
  const auto net = nn::make_lenet5(spec);
  Rng mask_rng(52);
  for (const auto& p : net->params()) {
    if (!p.prunable) continue;
    const auto active = static_cast<int64_t>(static_cast<double>(p.value->numel()) * 0.1);
    const sparse::Mask mask(p.value->shape(), active, mask_rng);
    mask.apply(*p.value);
  }
  const CompiledNetwork compiled = CompiledNetwork::compile(*net);
  runtime::ExecutorOptions eopts;
  eopts.max_coalesce = 4;
  BatchExecutor exec(compiled, 1, eopts);

  Tensor sample(Shape{1, 1, 16, 16});
  Rng rng(53);
  sample.fill_uniform(rng, 0.0F, 1.0F);

  LoadgenOptions lopts;
  lopts.offered_rps = 500.0;  // modest for a sub-ms service time
  lopts.requests = 24;
  lopts.seed = 3;
  const LoadgenResult r = run_open_loop(exec, sample, lopts);

  EXPECT_EQ(r.offered, lopts.requests);
  EXPECT_EQ(r.completed + r.shed, r.offered);
  EXPECT_GT(r.completed, 0);
  EXPECT_GT(r.duration_s, 0.0);
  EXPECT_GT(r.achieved_rps, 0.0);
  // Percentiles over the admitted window are populated and ordered.
  EXPECT_GT(r.e2e_p50_ms, 0.0);
  EXPECT_LE(r.e2e_p50_ms, r.e2e_p95_ms);
  EXPECT_LE(r.e2e_p95_ms, r.e2e_p99_ms);
  EXPECT_DOUBLE_EQ(r.offered_rps, lopts.offered_rps);
}

TEST(LoadgenTest, BatchFractionRoutesArrivalsWithoutLosingAny) {
  nn::ModelSpec spec;
  spec.in_channels = 1;
  spec.image_size = 16;
  spec.timesteps = 2;
  spec.seed = 61;
  const auto net = nn::make_lenet5(spec);
  const CompiledNetwork compiled = CompiledNetwork::compile(*net);
  BatchExecutor exec(compiled, 1);

  Tensor sample(Shape{1, 1, 16, 16});
  Rng rng(62);
  sample.fill_uniform(rng, 0.0F, 1.0F);

  LoadgenOptions lopts;
  lopts.offered_rps = 1000.0;
  lopts.requests = 16;
  lopts.seed = 5;
  lopts.batch_fraction = 0.5;  // mixed classes share one executor
  const LoadgenResult r = run_open_loop(exec, sample, lopts);
  EXPECT_EQ(r.completed + r.shed, r.offered);
  EXPECT_EQ(r.shed, 0);  // no SLO configured, nothing may be shed
}

}  // namespace
}  // namespace ndsnn::serve
