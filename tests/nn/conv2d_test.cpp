#include "nn/conv2d.hpp"

#include <gtest/gtest.h>

#include "tensor/random.hpp"

namespace ndsnn::nn {
namespace {

using tensor::Rng;
using tensor::Shape;
using tensor::Tensor;

TEST(Conv2dTest, IdentityKernelReproducesInput) {
  Rng rng(1);
  Conv2d layer(1, 1, 1, 1, 0, rng);
  layer.weight() = Tensor(Shape{1, 1, 1, 1}, std::vector<float>{1.0F});
  Tensor x(Shape{1, 1, 3, 3});
  for (int64_t i = 0; i < 9; ++i) x.at(i) = static_cast<float>(i);
  const Tensor y = layer.forward(x, true);
  ASSERT_EQ(y.shape(), x.shape());
  for (int64_t i = 0; i < 9; ++i) EXPECT_FLOAT_EQ(y.at(i), x.at(i));
}

TEST(Conv2dTest, BoxKernelComputesNeighborhoodSums) {
  Rng rng(2);
  Conv2d layer(1, 1, 3, 1, 1, rng);
  layer.weight() = Tensor(Shape{1, 1, 3, 3}, std::vector<float>(9, 1.0F));
  Tensor x(Shape{1, 1, 3, 3}, 1.0F);
  const Tensor y = layer.forward(x, true);
  // Center sees all 9 ones; corners see 4.
  EXPECT_FLOAT_EQ(y.at4(0, 0, 1, 1), 9.0F);
  EXPECT_FLOAT_EQ(y.at4(0, 0, 0, 0), 4.0F);
  EXPECT_FLOAT_EQ(y.at4(0, 0, 0, 1), 6.0F);
}

TEST(Conv2dTest, MultiChannelAccumulation) {
  Rng rng(3);
  Conv2d layer(2, 1, 1, 1, 0, rng);
  layer.weight() = Tensor(Shape{1, 2, 1, 1}, std::vector<float>{2.0F, 3.0F});
  Tensor x(Shape{1, 2, 2, 2});
  x.fill(1.0F);
  const Tensor y = layer.forward(x, true);
  for (int64_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(y.at(i), 5.0F);
}

TEST(Conv2dTest, OutputShapeWithStride) {
  Rng rng(4);
  Conv2d layer(3, 8, 3, 2, 1, rng);
  Tensor x(Shape{2, 3, 8, 8});
  const Tensor y = layer.forward(x, true);
  EXPECT_EQ(y.shape(), Shape({2, 8, 4, 4}));
}

TEST(Conv2dTest, BatchOrderPreserved) {
  // Regression test for the GEMM-output transpose: distinct batch entries
  // must not be interleaved.
  Rng rng(5);
  Conv2d layer(1, 1, 1, 1, 0, rng);
  layer.weight() = Tensor(Shape{1, 1, 1, 1}, std::vector<float>{1.0F});
  Tensor x(Shape{2, 1, 2, 2}, std::vector<float>{1, 1, 1, 1, 9, 9, 9, 9});
  const Tensor y = layer.forward(x, true);
  EXPECT_FLOAT_EQ(y.at4(0, 0, 0, 0), 1.0F);
  EXPECT_FLOAT_EQ(y.at4(1, 0, 0, 0), 9.0F);
}

TEST(Conv2dTest, WrongChannelCountThrows) {
  Rng rng(6);
  Conv2d layer(3, 4, 3, 1, 1, rng);
  Tensor x(Shape{1, 2, 8, 8});
  EXPECT_THROW((void)layer.forward(x, true), std::invalid_argument);
}

TEST(Conv2dTest, PrunableWeightExposed) {
  Rng rng(7);
  Conv2d layer(2, 4, 3, 1, 1, rng, /*bias=*/true);
  const auto params = layer.params();
  ASSERT_EQ(params.size(), 2U);
  EXPECT_TRUE(params[0].prunable);
  EXPECT_FALSE(params[1].prunable);
  EXPECT_EQ(params[0].value->shape(), Shape({4, 2, 3, 3}));
}

TEST(Conv2dTest, DefaultHasNoBias) {
  Rng rng(8);
  Conv2d layer(2, 4, 3, 1, 1, rng);
  EXPECT_EQ(layer.params().size(), 1U);
}

}  // namespace
}  // namespace ndsnn::nn
