#include "nn/linear.hpp"

#include <gtest/gtest.h>

#include "tensor/random.hpp"

namespace ndsnn::nn {
namespace {

using tensor::Rng;
using tensor::Shape;
using tensor::Tensor;

TEST(LinearTest, ForwardMatchesManualGemm) {
  Rng rng(1);
  Linear layer(2, 2, rng);
  // Override weights to known values: W = [[1, 2], [3, 4]], b = [0.5, -0.5].
  layer.weight() = Tensor(Shape{2, 2}, std::vector<float>{1, 2, 3, 4});
  auto params = layer.params();
  ASSERT_EQ(params.size(), 2U);
  *params[1].value = Tensor(Shape{2}, std::vector<float>{0.5F, -0.5F});

  Tensor x(Shape{1, 2}, std::vector<float>{1, 1});
  const Tensor y = layer.forward(x, true);
  EXPECT_FLOAT_EQ(y.at(0, 0), 3.5F);   // 1+2+0.5
  EXPECT_FLOAT_EQ(y.at(0, 1), 6.5F);   // 3+4-0.5
}

TEST(LinearTest, ParamsExposedWithPrunability) {
  Rng rng(2);
  Linear layer(3, 4, rng);
  const auto params = layer.params();
  ASSERT_EQ(params.size(), 2U);
  EXPECT_TRUE(params[0].prunable);   // weight
  EXPECT_FALSE(params[1].prunable);  // bias
  EXPECT_EQ(params[0].value->shape(), Shape({4, 3}));
}

TEST(LinearTest, BadInputShapeThrows) {
  Rng rng(3);
  Linear layer(3, 2, rng);
  Tensor x(Shape{1, 4});
  EXPECT_THROW((void)layer.forward(x, true), std::invalid_argument);
}

TEST(LinearTest, BackwardBeforeForwardThrows) {
  Rng rng(4);
  Linear layer(3, 2, rng);
  Tensor g(Shape{1, 2});
  EXPECT_THROW((void)layer.backward(g), std::logic_error);
}

TEST(LinearTest, GradAccumulatesAcrossBackwards) {
  Rng rng(5);
  Linear layer(2, 1, rng, /*bias=*/false);
  Tensor x(Shape{1, 2}, std::vector<float>{1, 2});
  Tensor g(Shape{1, 1}, std::vector<float>{1});
  (void)layer.forward(x, true);
  (void)layer.backward(g);
  (void)layer.forward(x, true);
  (void)layer.backward(g);
  const auto params = layer.params();
  // dW = gᵀx accumulated twice -> [2, 4].
  EXPECT_FLOAT_EQ(params[0].grad->at(0), 2.0F);
  EXPECT_FLOAT_EQ(params[0].grad->at(1), 4.0F);
}

TEST(LinearTest, NameIncludesDims) {
  Rng rng(6);
  Linear layer(7, 9, rng);
  EXPECT_EQ(layer.name(), "Linear(7->9)");
}

TEST(LinearTest, RejectsBadDims) {
  Rng rng(7);
  EXPECT_THROW(Linear(0, 2, rng), std::invalid_argument);
}

}  // namespace
}  // namespace ndsnn::nn
