#include "nn/batchnorm.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/random.hpp"

namespace ndsnn::nn {
namespace {

using tensor::Rng;
using tensor::Shape;
using tensor::Tensor;

TEST(BatchNormTest, NormalizesToZeroMeanUnitVar) {
  Rng rng(1);
  BatchNorm2d bn(2);
  Tensor x(Shape{8, 2, 4, 4});
  x.fill_normal(rng, 5.0F, 3.0F);
  const Tensor y = bn.forward(x, /*training=*/true);

  // Per-channel statistics of the output ~ N(0, 1) (gamma=1, beta=0).
  const int64_t plane = 16;
  for (int64_t c = 0; c < 2; ++c) {
    double mean = 0.0, var = 0.0;
    for (int64_t m = 0; m < 8; ++m) {
      for (int64_t i = 0; i < plane; ++i) mean += y.at4(m, c, i / 4, i % 4);
    }
    mean /= 8.0 * plane;
    for (int64_t m = 0; m < 8; ++m) {
      for (int64_t i = 0; i < plane; ++i) {
        const double d = y.at4(m, c, i / 4, i % 4) - mean;
        var += d * d;
      }
    }
    var /= 8.0 * plane;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(BatchNormTest, AffineParamsApplied) {
  BatchNorm2d bn(1);
  auto params = bn.params();
  ASSERT_EQ(params.size(), 2U);
  params[0].value->fill(2.0F);  // gamma
  params[1].value->fill(3.0F);  // beta
  Rng rng(2);
  Tensor x(Shape{4, 1, 4, 4});
  x.fill_normal(rng, 0.0F, 1.0F);
  const Tensor y = bn.forward(x, true);
  double mean = 0.0;
  for (int64_t i = 0; i < y.numel(); ++i) mean += y.at(i);
  mean /= static_cast<double>(y.numel());
  EXPECT_NEAR(mean, 3.0, 1e-4);
}

TEST(BatchNormTest, EvalUsesRunningStats) {
  Rng rng(3);
  BatchNorm2d bn(1);
  Tensor x(Shape{16, 1, 2, 2});
  x.fill_normal(rng, 2.0F, 1.0F);
  // Many training passes converge the running stats toward the batch's.
  for (int i = 0; i < 50; ++i) (void)bn.forward(x, true);
  const Tensor y = bn.forward(x, /*training=*/false);
  double mean = 0.0;
  for (int64_t i = 0; i < y.numel(); ++i) mean += y.at(i);
  mean /= static_cast<double>(y.numel());
  EXPECT_NEAR(mean, 0.0, 0.05);
}

TEST(BatchNormTest, EvalIsDeterministicWithoutUpdates) {
  Rng rng(4);
  BatchNorm2d bn(1);
  Tensor x(Shape{4, 1, 2, 2});
  x.fill_normal(rng, 0.0F, 1.0F);
  const Tensor y1 = bn.forward(x, false);
  const Tensor y2 = bn.forward(x, false);
  for (int64_t i = 0; i < y1.numel(); ++i) EXPECT_EQ(y1.at(i), y2.at(i));
}

TEST(BatchNormTest, ParamsNotPrunable) {
  BatchNorm2d bn(4);
  for (const auto& p : bn.params()) EXPECT_FALSE(p.prunable);
}

TEST(BatchNormTest, WrongChannelsThrows) {
  BatchNorm2d bn(3);
  Tensor x(Shape{1, 2, 4, 4});
  EXPECT_THROW((void)bn.forward(x, true), std::invalid_argument);
}

TEST(BatchNormTest, RejectsBadConstruction) {
  EXPECT_THROW(BatchNorm2d(0), std::invalid_argument);
  EXPECT_THROW(BatchNorm2d(3, -1.0F), std::invalid_argument);
}

}  // namespace
}  // namespace ndsnn::nn
