#include "nn/network.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "nn/flatten.hpp"
#include "nn/lif_activation.hpp"
#include "nn/linear.hpp"
#include "tensor/random.hpp"

namespace ndsnn::nn {
namespace {

using tensor::Rng;
using tensor::Shape;
using tensor::Tensor;

std::unique_ptr<SpikingNetwork> tiny_net(int64_t timesteps = 2) {
  Rng rng(3);
  auto body = std::make_unique<Sequential>();
  body->emplace<Flatten>();
  body->emplace<Linear>(8, 16, rng);
  body->emplace<LifActivation>(snn::LifConfig{}, timesteps);
  body->emplace<Linear>(16, 3, rng);
  return std::make_unique<SpikingNetwork>(std::move(body), timesteps);
}

TEST(SpikingNetworkTest, PredictShape) {
  auto net = tiny_net();
  Tensor batch(Shape{4, 2, 2, 2}, 0.5F);
  const Tensor logits = net->predict(batch);
  EXPECT_EQ(logits.shape(), Shape({4, 3}));
}

TEST(SpikingNetworkTest, TrainStepReturnsBatchStats) {
  auto net = tiny_net();
  Tensor batch(Shape{4, 2, 2, 2}, 0.5F);
  const StepResult r = net->train_step(batch, {0, 1, 2, 0});
  EXPECT_EQ(r.batch, 4);
  EXPECT_TRUE(std::isfinite(r.loss));
  EXPECT_GE(r.spike_rate, 0.0);
  EXPECT_LE(r.spike_rate, 1.0);
  EXPECT_GE(r.correct, 0);
  EXPECT_LE(r.correct, 4);
}

TEST(SpikingNetworkTest, EvalStepDoesNotTouchGrads) {
  auto net = tiny_net();
  for (auto& p : net->params()) p.grad->zero();
  Tensor batch(Shape{2, 2, 2, 2}, 0.5F);
  (void)net->eval_step(batch, {0, 1});
  for (auto& p : net->params()) {
    EXPECT_EQ(p.grad->count_zeros(), p.grad->numel()) << p.name;
  }
}

TEST(SpikingNetworkTest, TrainStepAccumulatesGrads) {
  auto net = tiny_net();
  for (auto& p : net->params()) p.grad->zero();
  Tensor batch(Shape{4, 2, 2, 2}, 0.9F);
  (void)net->train_step(batch, {0, 1, 2, 0});
  bool any = false;
  for (auto& p : net->params()) {
    if (p.grad->count_zeros() != p.grad->numel()) any = true;
  }
  EXPECT_TRUE(any);
}

TEST(SpikingNetworkTest, PrunableWeightCount) {
  auto net = tiny_net();
  // Linear(8->16) + Linear(16->3): 128 + 48 = 176 prunable weights.
  EXPECT_EQ(net->prunable_weight_count(), 176);
}

TEST(SpikingNetworkTest, RepeatedPredictIsDeterministic) {
  auto net = tiny_net();
  Tensor batch(Shape{2, 2, 2, 2}, 0.7F);
  const Tensor a = net->predict(batch);
  const Tensor b = net->predict(batch);
  for (int64_t i = 0; i < a.numel(); ++i) EXPECT_EQ(a.at(i), b.at(i));
}

TEST(SpikingNetworkTest, TimestepsMustBePositive) {
  Rng rng(4);
  auto body = std::make_unique<Sequential>();
  body->emplace<Flatten>();
  body->emplace<Linear>(8, 3, rng);
  EXPECT_THROW(SpikingNetwork(std::move(body), 0), std::invalid_argument);
}

TEST(SpikingNetworkTest, NullBodyRejected) {
  EXPECT_THROW(SpikingNetwork(nullptr, 2), std::invalid_argument);
}

TEST(SpikingNetworkTest, PoissonEncoderOption) {
  Rng rng(5);
  auto body = std::make_unique<Sequential>();
  body->emplace<Flatten>();
  body->emplace<Linear>(8, 3, rng);
  SpikingNetwork net(std::move(body), 4, std::make_unique<snn::PoissonEncoder>(9));
  Tensor batch(Shape{2, 2, 2, 2}, 0.5F);
  const Tensor logits = net.predict(batch);
  EXPECT_EQ(logits.shape(), Shape({2, 3}));
}

TEST(SpikingNetworkTest, MoreTimestepsSmoothsRateEstimate) {
  // With direct encoding and deterministic LIF, both T produce valid
  // logits; just verify different T values run and differ.
  auto t2 = tiny_net(2);
  auto t8 = tiny_net(8);
  Tensor batch(Shape{1, 2, 2, 2}, 0.6F);
  const Tensor a = t2->predict(batch);
  const Tensor b = t8->predict(batch);
  EXPECT_EQ(a.shape(), b.shape());
}

}  // namespace
}  // namespace ndsnn::nn
