#include "nn/sequential.hpp"

#include <gtest/gtest.h>

#include "nn/flatten.hpp"
#include "nn/lif_activation.hpp"
#include "nn/linear.hpp"
#include "tensor/random.hpp"

namespace ndsnn::nn {
namespace {

using tensor::Rng;
using tensor::Shape;
using tensor::Tensor;

TEST(SequentialTest, ChainsForward) {
  Rng rng(1);
  auto seq = std::make_unique<Sequential>();
  auto& l1 = seq->emplace<Linear>(4, 3, rng);
  auto& l2 = seq->emplace<Linear>(3, 2, rng);
  (void)l1;
  (void)l2;
  Tensor x(Shape{2, 4}, 1.0F);
  const Tensor y = seq->forward(x, true);
  EXPECT_EQ(y.shape(), Shape({2, 2}));
}

TEST(SequentialTest, ParamNamesPrefixedByIndex) {
  Rng rng(2);
  Sequential seq;
  seq.emplace<Linear>(2, 2, rng);
  seq.emplace<Linear>(2, 2, rng);
  const auto params = seq.params();
  ASSERT_EQ(params.size(), 4U);
  EXPECT_EQ(params[0].name, "layer0.weight");
  EXPECT_EQ(params[2].name, "layer1.weight");
}

TEST(SequentialTest, BackwardReversesOrder) {
  Rng rng(3);
  Sequential seq;
  seq.emplace<Linear>(3, 3, rng);
  seq.emplace<Linear>(3, 1, rng);
  Tensor x(Shape{1, 3}, 1.0F);
  (void)seq.forward(x, true);
  Tensor g(Shape{1, 1}, 1.0F);
  const Tensor gin = seq.backward(g);
  EXPECT_EQ(gin.shape(), Shape({1, 3}));
}

TEST(SequentialTest, NullLayerRejected) {
  Sequential seq;
  EXPECT_THROW(seq.add(nullptr), std::invalid_argument);
}

TEST(SequentialTest, SpikeRateFromLifLayers) {
  Rng rng(4);
  snn::LifConfig lif;
  Sequential seq;
  seq.emplace<Linear>(2, 2, rng);
  seq.emplace<LifActivation>(lif, 1);
  Tensor x(Shape{1, 2}, 10.0F);  // drive hard -> all spike
  (void)seq.forward(x, true);
  EXPECT_GE(seq.last_spike_rate(), 0.0);
}

TEST(SequentialTest, NoSpikingLayersReportsNegative) {
  Rng rng(5);
  Sequential seq;
  seq.emplace<Linear>(2, 2, rng);
  Tensor x(Shape{1, 2});
  (void)seq.forward(x, true);
  EXPECT_LT(seq.last_spike_rate(), 0.0);
}

TEST(SequentialTest, SizeAndAccess) {
  Rng rng(6);
  Sequential seq;
  seq.emplace<Linear>(2, 3, rng);
  seq.emplace<Flatten>();
  EXPECT_EQ(seq.size(), 2U);
  EXPECT_EQ(seq.layer(1).name(), "Flatten");
}

}  // namespace
}  // namespace ndsnn::nn
