#include "nn/residual.hpp"

#include <gtest/gtest.h>

#include "tensor/random.hpp"

namespace ndsnn::nn {
namespace {

using tensor::Rng;
using tensor::Shape;
using tensor::Tensor;

snn::LifConfig lif() { return snn::LifConfig{}; }

TEST(ResidualBlockTest, IdentityShortcutPreservesShape) {
  Rng rng(1);
  ResidualBlock block(4, 4, 1, lif(), 2, rng);
  Tensor x(Shape{4, 4, 6, 6});  // T=2, N=2
  x.fill_uniform(rng, 0.0F, 1.0F);
  const Tensor y = block.forward(x, true);
  EXPECT_EQ(y.shape(), x.shape());
}

TEST(ResidualBlockTest, DownsamplingShortcutHalvesResolution) {
  Rng rng(2);
  ResidualBlock block(4, 8, 2, lif(), 2, rng);
  Tensor x(Shape{4, 4, 8, 8});
  x.fill_uniform(rng, 0.0F, 1.0F);
  const Tensor y = block.forward(x, true);
  EXPECT_EQ(y.shape(), Shape({4, 8, 4, 4}));
}

TEST(ResidualBlockTest, OutputsAreSpikes) {
  Rng rng(3);
  ResidualBlock block(2, 2, 1, lif(), 2, rng);
  Tensor x(Shape{2, 2, 4, 4});
  x.fill_uniform(rng, 0.0F, 2.0F);
  const Tensor y = block.forward(x, true);
  for (int64_t i = 0; i < y.numel(); ++i) {
    EXPECT_TRUE(y.at(i) == 0.0F || y.at(i) == 1.0F);
  }
}

TEST(ResidualBlockTest, BackwardReturnsInputShapedGrad) {
  Rng rng(4);
  ResidualBlock block(3, 6, 2, lif(), 2, rng);
  Tensor x(Shape{2, 3, 4, 4});
  x.fill_uniform(rng, 0.0F, 1.0F);
  const Tensor y = block.forward(x, true);
  Tensor g(y.shape(), 1.0F);
  const Tensor gin = block.backward(g);
  EXPECT_EQ(gin.shape(), x.shape());
}

TEST(ResidualBlockTest, ParamCountsIdentityVsProjection) {
  Rng rng(5);
  ResidualBlock identity(4, 4, 1, lif(), 1, rng);
  ResidualBlock projection(4, 8, 2, lif(), 1, rng);
  // identity: conv1(w) bn1(g,b) conv2(w) bn2(g,b) = 6 tensors
  EXPECT_EQ(identity.params().size(), 6U);
  // projection adds shortcut conv(w) + bn(g,b) = 9 tensors
  EXPECT_EQ(projection.params().size(), 9U);
}

TEST(ResidualBlockTest, GradientAccumulatesInAllConvs) {
  Rng rng(6);
  ResidualBlock block(2, 4, 2, lif(), 2, rng);
  Tensor x(Shape{2, 2, 4, 4});
  x.fill_uniform(rng, 0.5F, 1.5F);
  const Tensor y = block.forward(x, true);
  Tensor g(y.shape(), 1.0F);
  (void)block.backward(g);
  int nonzero_grads = 0;
  for (const auto& p : block.params()) {
    double sum = 0.0;
    for (int64_t i = 0; i < p.grad->numel(); ++i) sum += std::abs(p.grad->at(i));
    nonzero_grads += sum > 0.0;
  }
  // At least the BN betas always get gradient; expect most tensors touched.
  EXPECT_GE(nonzero_grads, 5);
}

TEST(ResidualBlockTest, SpikeRateReported) {
  Rng rng(7);
  ResidualBlock block(2, 2, 1, lif(), 1, rng);
  Tensor x(Shape{1, 2, 4, 4}, 2.0F);
  (void)block.forward(x, true);
  EXPECT_GE(block.last_spike_rate(), 0.0);
  EXPECT_LE(block.last_spike_rate(), 1.0);
}

}  // namespace
}  // namespace ndsnn::nn
