#include "nn/loss.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ndsnn::nn {
namespace {

using tensor::Shape;
using tensor::Tensor;

TEST(CrossEntropyTest, UniformLogitsGiveLogC) {
  CrossEntropyLoss loss;
  Tensor logits(Shape{2, 4});
  const LossResult r = loss.compute(logits, {0, 3});
  EXPECT_NEAR(r.loss, std::log(4.0), 1e-5);
}

TEST(CrossEntropyTest, ConfidentCorrectHasLowLoss) {
  CrossEntropyLoss loss;
  Tensor logits(Shape{1, 3}, std::vector<float>{10.0F, 0.0F, 0.0F});
  const LossResult r = loss.compute(logits, {0});
  EXPECT_LT(r.loss, 1e-3);
  EXPECT_EQ(r.correct, 1);
}

TEST(CrossEntropyTest, GradientIsSoftmaxMinusOneHotOverN) {
  CrossEntropyLoss loss;
  Tensor logits(Shape{1, 2}, std::vector<float>{0.0F, 0.0F});
  const LossResult r = loss.compute(logits, {1});
  EXPECT_NEAR(r.grad_logits.at(0, 0), 0.5F, 1e-6F);
  EXPECT_NEAR(r.grad_logits.at(0, 1), -0.5F, 1e-6F);
}

TEST(CrossEntropyTest, GradientSumsToZeroPerRow) {
  CrossEntropyLoss loss;
  Tensor logits(Shape{3, 5}, std::vector<float>{1, 2, 3, 4, 5, -1, 0, 1, 2, 3,
                                                0.5F, 0.5F, 0.5F, 0.5F, 0.5F});
  const LossResult r = loss.compute(logits, {0, 2, 4});
  for (int64_t row = 0; row < 3; ++row) {
    double sum = 0.0;
    for (int64_t c = 0; c < 5; ++c) sum += r.grad_logits.at(row, c);
    EXPECT_NEAR(sum, 0.0, 1e-6);
  }
}

TEST(CrossEntropyTest, CorrectCountsArgmaxMatches) {
  CrossEntropyLoss loss;
  Tensor logits(Shape{2, 2}, std::vector<float>{5, 1, 1, 5});
  EXPECT_EQ(loss.compute(logits, {0, 1}).correct, 2);
  EXPECT_EQ(loss.compute(logits, {1, 0}).correct, 0);
}

TEST(CrossEntropyTest, RejectsBadInputs) {
  CrossEntropyLoss loss;
  Tensor logits(Shape{2, 3});
  EXPECT_THROW((void)loss.compute(logits, {0}), std::invalid_argument);
  EXPECT_THROW((void)loss.compute(logits, {0, 3}), std::invalid_argument);
  EXPECT_THROW((void)loss.compute(logits, {0, -1}), std::invalid_argument);
}

TEST(MeanOverTimeTest, AveragesTimesteps) {
  // T=2, N=1, C=2; steps are [1, 2] and [3, 4] -> mean [2, 3].
  Tensor steps(Shape{2, 2}, std::vector<float>{1, 2, 3, 4});
  const Tensor mean = mean_over_time(steps, 2);
  EXPECT_EQ(mean.shape(), Shape({1, 2}));
  EXPECT_FLOAT_EQ(mean.at(0, 0), 2.0F);
  EXPECT_FLOAT_EQ(mean.at(0, 1), 3.0F);
}

TEST(MeanOverTimeTest, RejectsNonDivisible) {
  Tensor steps(Shape{3, 2});
  EXPECT_THROW((void)mean_over_time(steps, 2), std::invalid_argument);
}

TEST(BroadcastOverTimeTest, IsAdjointOfMean) {
  // broadcast(grad, T)[t] = grad / T; then mean_over_time of broadcast
  // recovers grad exactly.
  Tensor grad(Shape{2, 3}, std::vector<float>{1, 2, 3, 4, 5, 6});
  const Tensor steps = broadcast_over_time(grad, 4);
  EXPECT_EQ(steps.shape(), Shape({8, 3}));
  for (int64_t t = 0; t < 4; ++t) {
    EXPECT_FLOAT_EQ(steps.at(t * 6), 0.25F);
  }
}

}  // namespace
}  // namespace ndsnn::nn
