#include "nn/pool.hpp"

#include <gtest/gtest.h>

namespace ndsnn::nn {
namespace {

using tensor::Shape;
using tensor::Tensor;

TEST(AvgPoolTest, AveragesWindows) {
  AvgPool2d pool(2);
  Tensor x(Shape{1, 1, 2, 2}, std::vector<float>{1, 2, 3, 4});
  const Tensor y = pool.forward(x, true);
  EXPECT_EQ(y.shape(), Shape({1, 1, 1, 1}));
  EXPECT_FLOAT_EQ(y.at(0), 2.5F);
}

TEST(AvgPoolTest, BackwardSpreadsUniformly) {
  AvgPool2d pool(2);
  Tensor x(Shape{1, 1, 2, 2}, std::vector<float>{1, 2, 3, 4});
  (void)pool.forward(x, true);
  Tensor g(Shape{1, 1, 1, 1}, std::vector<float>{4.0F});
  const Tensor gin = pool.backward(g);
  for (int64_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(gin.at(i), 1.0F);
}

TEST(AvgPoolTest, NonDivisibleThrows) {
  AvgPool2d pool(2);
  Tensor x(Shape{1, 1, 3, 3});
  EXPECT_THROW((void)pool.forward(x, true), std::invalid_argument);
}

TEST(MaxPoolTest, PicksMaximum) {
  MaxPool2d pool(2);
  Tensor x(Shape{1, 1, 2, 2}, std::vector<float>{1, 7, 3, 4});
  const Tensor y = pool.forward(x, true);
  EXPECT_FLOAT_EQ(y.at(0), 7.0F);
}

TEST(MaxPoolTest, BackwardRoutesToArgmaxOnly) {
  MaxPool2d pool(2);
  Tensor x(Shape{1, 1, 2, 2}, std::vector<float>{1, 7, 3, 4});
  (void)pool.forward(x, true);
  Tensor g(Shape{1, 1, 1, 1}, std::vector<float>{5.0F});
  const Tensor gin = pool.backward(g);
  EXPECT_FLOAT_EQ(gin.at(0), 0.0F);
  EXPECT_FLOAT_EQ(gin.at(1), 5.0F);
  EXPECT_FLOAT_EQ(gin.at(2), 0.0F);
  EXPECT_FLOAT_EQ(gin.at(3), 0.0F);
}

TEST(MaxPoolTest, MultiChannelIndependentWindows) {
  MaxPool2d pool(2);
  Tensor x(Shape{1, 2, 2, 2}, std::vector<float>{1, 2, 3, 4, 8, 7, 6, 5});
  const Tensor y = pool.forward(x, true);
  EXPECT_FLOAT_EQ(y.at(0), 4.0F);
  EXPECT_FLOAT_EQ(y.at(1), 8.0F);
}

TEST(GlobalAvgPoolTest, ReducesSpatialDims) {
  GlobalAvgPool pool;
  Tensor x(Shape{2, 3, 2, 2}, 2.0F);
  const Tensor y = pool.forward(x, true);
  EXPECT_EQ(y.shape(), Shape({2, 3}));
  for (int64_t i = 0; i < y.numel(); ++i) EXPECT_FLOAT_EQ(y.at(i), 2.0F);
}

TEST(GlobalAvgPoolTest, BackwardDividesByPlane) {
  GlobalAvgPool pool;
  Tensor x(Shape{1, 1, 2, 2});
  (void)pool.forward(x, true);
  Tensor g(Shape{1, 1}, std::vector<float>{8.0F});
  const Tensor gin = pool.backward(g);
  for (int64_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(gin.at(i), 2.0F);
}

TEST(PoolTest, RejectsBadKernel) {
  EXPECT_THROW(AvgPool2d(0), std::invalid_argument);
  EXPECT_THROW(MaxPool2d(-1), std::invalid_argument);
}

}  // namespace
}  // namespace ndsnn::nn
