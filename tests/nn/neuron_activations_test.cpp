#include "nn/neuron_activations.hpp"

#include <gtest/gtest.h>

#include "nn/linear.hpp"
#include "nn/sequential.hpp"
#include "tensor/random.hpp"

namespace ndsnn::nn {
namespace {

using tensor::Rng;
using tensor::Shape;
using tensor::Tensor;

TEST(PlifActivationTest, ExposesTrainableLeakParam) {
  PlifActivation act(snn::PlifConfig{}, 2);
  const auto params = act.params();
  ASSERT_EQ(params.size(), 1U);
  EXPECT_EQ(params[0].name, "leak");
  EXPECT_FALSE(params[0].prunable);
  EXPECT_EQ(params[0].value->numel(), 1);
}

TEST(PlifActivationTest, LeakParamFeedsForward) {
  PlifActivation act(snn::PlifConfig{}, 2);
  auto params = act.params();
  // Push the leak parameter to an extreme and verify alpha follows.
  params[0].value->at(0) = 5.0F;  // sigmoid(5) ~ 0.993
  Tensor current(Shape{2, 2}, 0.4F);
  (void)act.forward(current, true);
  EXPECT_NEAR(act.alpha(), 0.993F, 0.01F);
}

TEST(PlifActivationTest, LeakGradAccumulates) {
  PlifActivation act(snn::PlifConfig{}, 3);
  Tensor current(Shape{3, 2}, 0.3F);
  (void)act.forward(current, true);
  Tensor g(Shape{3, 2}, 1.0F);
  (void)act.backward(g);
  const auto params = act.params();
  EXPECT_NE(params[0].grad->at(0), 0.0F);
}

TEST(PlifActivationTest, TrainsInsideSequential) {
  Rng rng(7);
  Sequential seq;
  seq.emplace<Linear>(4, 4, rng);
  seq.emplace<PlifActivation>(snn::PlifConfig{}, 2);
  seq.emplace<Linear>(4, 2, rng);
  Tensor x(Shape{4, 4}, 0.5F);  // T*N = 4
  const Tensor y = seq.forward(x, true);
  EXPECT_EQ(y.shape(), Shape({4, 2}));
  Tensor g(y.shape(), 1.0F);
  (void)seq.backward(g);
  // PLIF's leak appears among the sequential's params.
  bool found_leak = false;
  for (const auto& p : seq.params()) {
    if (p.name.find("leak") != std::string::npos) found_leak = true;
  }
  EXPECT_TRUE(found_leak);
}

TEST(AlifActivationTest, ForwardBackwardShapes) {
  AlifActivation act(snn::AlifConfig{}, 4);
  Tensor current(Shape{4, 3}, 1.2F);
  const Tensor spikes = act.forward(current, true);
  EXPECT_EQ(spikes.shape(), current.shape());
  Tensor g(current.shape(), 1.0F);
  const Tensor gin = act.backward(g);
  EXPECT_EQ(gin.shape(), current.shape());
  EXPECT_GE(act.last_spike_rate(), 0.0);
}

TEST(AlifActivationTest, NoTrainableParams) {
  AlifActivation act(snn::AlifConfig{}, 2);
  EXPECT_TRUE(act.params().empty());
}

}  // namespace
}  // namespace ndsnn::nn
