// Finite-difference gradient checks for every differentiable layer.
//
// The LIF layer is excluded: its forward is a true Heaviside step while
// the backward uses a surrogate, so numeric and analytic gradients differ
// by design (verified analytically in lif_test.cpp instead).
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <memory>

#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/flatten.hpp"
#include "nn/linear.hpp"
#include "nn/pool.hpp"
#include "nn/sequential.hpp"
#include "tensor/ops.hpp"
#include "tensor/random.hpp"

namespace ndsnn::nn {
namespace {

using tensor::Rng;
using tensor::Shape;
using tensor::Tensor;

/// Scalar test loss: L = sum(out * probe) with a fixed random probe, so
/// dL/dout = probe.
struct Harness {
  Layer& layer;
  Tensor input;
  Tensor probe;

  double loss() {
    const Tensor out = layer.forward(input, /*training=*/true);
    double acc = 0.0;
    for (int64_t i = 0; i < out.numel(); ++i) acc += static_cast<double>(out.at(i)) * probe.at(i);
    return acc;
  }

  /// Analytic input gradient (also accumulates parameter grads).
  Tensor input_grad() {
    (void)layer.forward(input, true);
    return layer.backward(probe);
  }
};

Tensor random_tensor(Shape shape, Rng& rng) {
  Tensor t(std::move(shape));
  t.fill_uniform(rng, -1.0F, 1.0F);
  return t;
}

constexpr float kEps = 1e-2F;     // FP32 + deep reductions: coarse but stable
constexpr float kRelTol = 6e-2F;

void expect_close(float analytic, float numeric, const std::string& what) {
  const float scale = std::max({std::fabs(analytic), std::fabs(numeric), 1e-3F});
  EXPECT_NEAR(analytic, numeric, kRelTol * scale) << what;
}

void check_input_grad(Harness& h) {
  const Tensor analytic = h.input_grad();
  for (int64_t i = 0; i < h.input.numel(); i += std::max<int64_t>(1, h.input.numel() / 17)) {
    const float saved = h.input.at(i);
    h.input.at(i) = saved + kEps;
    const double up = h.loss();
    h.input.at(i) = saved - kEps;
    const double down = h.loss();
    h.input.at(i) = saved;
    const auto numeric = static_cast<float>((up - down) / (2.0 * kEps));
    expect_close(analytic.at(i), numeric, "input grad @" + std::to_string(i));
  }
}

void check_param_grads(Harness& h) {
  for (auto& p : h.layer.params()) {
    p.grad->zero();
  }
  (void)h.input_grad();
  for (auto& p : h.layer.params()) {
    Tensor analytic = *p.grad;  // copy before perturbation reruns
    const int64_t n = p.value->numel();
    for (int64_t i = 0; i < n; i += std::max<int64_t>(1, n / 13)) {
      const float saved = p.value->at(i);
      p.value->at(i) = saved + kEps;
      const double up = h.loss();
      p.value->at(i) = saved - kEps;
      const double down = h.loss();
      p.value->at(i) = saved;
      const auto numeric = static_cast<float>((up - down) / (2.0 * kEps));
      expect_close(analytic.at(i), numeric, p.name + " grad @" + std::to_string(i));
    }
  }
}

TEST(GradCheckTest, Linear) {
  Rng rng(101);
  Linear layer(6, 4, rng);
  Tensor input = random_tensor(Shape{3, 6}, rng);
  Tensor probe = random_tensor(Shape{3, 4}, rng);
  Harness h{layer, std::move(input), std::move(probe)};
  check_input_grad(h);
  check_param_grads(h);
}

TEST(GradCheckTest, LinearNoBias) {
  Rng rng(102);
  Linear layer(5, 3, rng, /*bias=*/false);
  Tensor input = random_tensor(Shape{2, 5}, rng);
  Tensor probe = random_tensor(Shape{2, 3}, rng);
  Harness h{layer, std::move(input), std::move(probe)};
  check_input_grad(h);
  check_param_grads(h);
}

TEST(GradCheckTest, Conv2dStride1Pad1) {
  Rng rng(103);
  Conv2d layer(2, 3, 3, 1, 1, rng, /*bias=*/true);
  Tensor input = random_tensor(Shape{2, 2, 5, 5}, rng);
  Tensor probe = random_tensor(Shape{2, 3, 5, 5}, rng);
  Harness h{layer, std::move(input), std::move(probe)};
  check_input_grad(h);
  check_param_grads(h);
}

TEST(GradCheckTest, Conv2dStride2) {
  Rng rng(104);
  Conv2d layer(1, 2, 3, 2, 1, rng);
  Tensor input = random_tensor(Shape{1, 1, 7, 7}, rng);
  Tensor probe = random_tensor(Shape{1, 2, 4, 4}, rng);
  Harness h{layer, std::move(input), std::move(probe)};
  check_input_grad(h);
  check_param_grads(h);
}

TEST(GradCheckTest, Conv2d1x1) {
  Rng rng(105);
  Conv2d layer(3, 2, 1, 1, 0, rng);
  Tensor input = random_tensor(Shape{2, 3, 4, 4}, rng);
  Tensor probe = random_tensor(Shape{2, 2, 4, 4}, rng);
  Harness h{layer, std::move(input), std::move(probe)};
  check_input_grad(h);
  check_param_grads(h);
}

TEST(GradCheckTest, AvgPool) {
  Rng rng(106);
  AvgPool2d layer(2);
  Tensor input = random_tensor(Shape{2, 3, 4, 4}, rng);
  Tensor probe = random_tensor(Shape{2, 3, 2, 2}, rng);
  Harness h{layer, std::move(input), std::move(probe)};
  check_input_grad(h);
}

TEST(GradCheckTest, GlobalAvgPool) {
  Rng rng(107);
  GlobalAvgPool layer;
  Tensor input = random_tensor(Shape{2, 3, 4, 4}, rng);
  Tensor probe = random_tensor(Shape{2, 3}, rng);
  Harness h{layer, std::move(input), std::move(probe)};
  check_input_grad(h);
}

TEST(GradCheckTest, BatchNorm) {
  Rng rng(108);
  BatchNorm2d layer(3);
  Tensor input = random_tensor(Shape{4, 3, 3, 3}, rng);
  Tensor probe = random_tensor(Shape{4, 3, 3, 3}, rng);
  Harness h{layer, std::move(input), std::move(probe)};
  check_input_grad(h);
  check_param_grads(h);
}

TEST(GradCheckTest, SequentialConvBnPoolLinear) {
  Rng rng(109);
  auto seq = std::make_unique<Sequential>();
  seq->emplace<Conv2d>(1, 2, 3, 1, 1, rng);
  seq->emplace<BatchNorm2d>(2);
  seq->emplace<AvgPool2d>(2);
  seq->emplace<Flatten>();
  seq->emplace<Linear>(2 * 2 * 2, 3, rng);
  Tensor input = random_tensor(Shape{2, 1, 4, 4}, rng);
  Tensor probe = random_tensor(Shape{2, 3}, rng);
  Harness h{*seq, std::move(input), std::move(probe)};
  check_input_grad(h);
  check_param_grads(h);
}

}  // namespace
}  // namespace ndsnn::nn
