#include "nn/models/zoo.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ndsnn::nn {
namespace {

using tensor::Shape;
using tensor::Tensor;

ModelSpec tiny_spec(int64_t image_size, double width = 0.1) {
  ModelSpec spec;
  spec.num_classes = 10;
  spec.image_size = image_size;
  spec.timesteps = 2;
  spec.width_scale = width;
  return spec;
}

TEST(ModelSpecTest, Validation) {
  EXPECT_NO_THROW(tiny_spec(32).validate());
  ModelSpec bad = tiny_spec(32);
  bad.num_classes = 1;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = tiny_spec(32);
  bad.width_scale = 0.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

TEST(ModelSpecTest, ScaledNeverBelowOne) {
  ModelSpec spec = tiny_spec(32, 0.001);
  EXPECT_EQ(spec.scaled(64), 1);
  spec.width_scale = 0.5;
  EXPECT_EQ(spec.scaled(64), 32);
}

TEST(ModelZooTest, Vgg16ForwardShape) {
  auto net = make_vgg16(tiny_spec(32));
  Tensor batch(Shape{2, 3, 32, 32}, 0.5F);
  const Tensor logits = net->predict(batch);
  EXPECT_EQ(logits.shape(), Shape({2, 10}));
}

TEST(ModelZooTest, Vgg16RejectsBadResolution) {
  EXPECT_THROW((void)make_vgg16(tiny_spec(24)), std::invalid_argument);
}

TEST(ModelZooTest, Resnet19ForwardShape) {
  auto net = make_resnet19(tiny_spec(16));
  Tensor batch(Shape{2, 3, 16, 16}, 0.5F);
  const Tensor logits = net->predict(batch);
  EXPECT_EQ(logits.shape(), Shape({2, 10}));
}

TEST(ModelZooTest, Resnet19Has19NamedWeightLayersPlus2Shortcuts) {
  // 17 main-path convs + 2 FC = the 19 weight layers of ResNet-19, plus
  // the two 1x1 projection shortcuts (stage transitions) that are also
  // prunable tensors.
  auto net = make_resnet19(tiny_spec(16, 0.05));
  int64_t weight_layers = 0;
  for (const auto& p : net->params()) {
    if (p.prunable) ++weight_layers;
  }
  EXPECT_EQ(weight_layers, 21);
}

TEST(ModelZooTest, Vgg16Has14WeightLayers) {
  // 13 convs + classifier linear.
  auto net = make_vgg16(tiny_spec(32, 0.05));
  int64_t weight_layers = 0;
  for (const auto& p : net->params()) {
    if (p.prunable) ++weight_layers;
  }
  EXPECT_EQ(weight_layers, 14);
}

TEST(ModelZooTest, Lenet5ForwardShape) {
  auto net = make_lenet5(tiny_spec(32, 1.0));
  Tensor batch(Shape{2, 3, 32, 32}, 0.5F);
  const Tensor logits = net->predict(batch);
  EXPECT_EQ(logits.shape(), Shape({2, 10}));
}

TEST(ModelZooTest, Lenet5Has5WeightLayers) {
  auto net = make_lenet5(tiny_spec(32, 1.0));
  int64_t weight_layers = 0;
  for (const auto& p : net->params()) {
    if (p.prunable) ++weight_layers;
  }
  EXPECT_EQ(weight_layers, 5);
}

TEST(ModelZooTest, MakeModelByName) {
  EXPECT_NO_THROW((void)make_model("lenet5", tiny_spec(16, 0.5)));
  EXPECT_THROW((void)make_model("alexnet", tiny_spec(32)), std::invalid_argument);
}

TEST(ModelZooTest, TrainStepProducesFiniteLossAndGrads) {
  auto net = make_lenet5(tiny_spec(16, 0.5));
  Tensor batch(Shape{4, 3, 16, 16}, 0.5F);
  const StepResult r = net->train_step(batch, {0, 1, 2, 3});
  EXPECT_TRUE(std::isfinite(r.loss));
  EXPECT_GT(r.loss, 0.0);
  bool any_grad = false;
  for (const auto& p : net->params()) {
    for (int64_t i = 0; i < p.grad->numel(); ++i) {
      if (p.grad->at(i) != 0.0F) {
        any_grad = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_grad);
}

TEST(ModelZooTest, WidthScaleReducesParamCount) {
  auto big = make_lenet5(tiny_spec(16, 1.0));
  auto small = make_lenet5(tiny_spec(16, 0.5));
  EXPECT_GT(big->prunable_weight_count(), small->prunable_weight_count());
}

TEST(ModelZooTest, SeedReproducibility) {
  auto a = make_lenet5(tiny_spec(16, 0.5));
  auto b = make_lenet5(tiny_spec(16, 0.5));
  Tensor batch(Shape{1, 3, 16, 16}, 0.7F);
  const Tensor la = a->predict(batch);
  const Tensor lb = b->predict(batch);
  for (int64_t i = 0; i < la.numel(); ++i) EXPECT_EQ(la.at(i), lb.at(i));
}

}  // namespace
}  // namespace ndsnn::nn
