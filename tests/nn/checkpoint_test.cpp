#include "nn/checkpoint.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "nn/models/zoo.hpp"
#include "util/fault_injection.hpp"

namespace ndsnn::nn {
namespace {

using tensor::Shape;
using tensor::Tensor;

ModelSpec spec(uint64_t seed = 42) {
  ModelSpec s;
  s.num_classes = 4;
  s.in_channels = 1;
  s.image_size = 8;
  s.timesteps = 2;
  s.width_scale = 0.5;
  s.seed = seed;
  return s;
}

TEST(CheckpointTest, RoundTripRestoresExactPredictions) {
  auto a = make_lenet5(spec(1));
  auto b = make_lenet5(spec(2));  // different init

  // Different seeds -> different weights (predictions may coincide on a
  // weak input if no neuron fires, so compare the weights directly).
  bool differ = false;
  {
    const auto pa = a->params();
    const auto pb = b->params();
    for (int64_t i = 0; i < pa[0].value->numel(); ++i) {
      if (pa[0].value->at(i) != pb[0].value->at(i)) differ = true;
    }
  }
  ASSERT_TRUE(differ);

  std::stringstream buf;
  save_checkpoint(buf, *a);
  load_checkpoint(buf, *b);

  Tensor batch(Shape{2, 1, 8, 8}, 0.9F);
  const Tensor pred_a = a->predict(batch);
  const Tensor pred_b = b->predict(batch);
  for (int64_t i = 0; i < pred_a.numel(); ++i) {
    EXPECT_EQ(pred_b.at(i), pred_a.at(i));
  }
  // And the weights themselves are identical.
  const auto pa = a->params();
  const auto pb = b->params();
  for (std::size_t p = 0; p < pa.size(); ++p) {
    for (int64_t i = 0; i < pa[p].value->numel(); ++i) {
      ASSERT_EQ(pb[p].value->at(i), pa[p].value->at(i)) << pa[p].name;
    }
  }
}

TEST(CheckpointTest, PreservesSparsePattern) {
  auto net = make_lenet5(spec());
  // Zero half the first conv's weights, save, reload into a fresh net.
  auto params = net->params();
  for (int64_t i = 0; i < params[0].value->numel(); i += 2) params[0].value->at(i) = 0.0F;
  const int64_t zeros = params[0].value->count_zeros();

  std::stringstream buf;
  save_checkpoint(buf, *net);
  auto fresh = make_lenet5(spec(99));
  load_checkpoint(buf, *fresh);
  EXPECT_EQ(fresh->params()[0].value->count_zeros(), zeros);
}

TEST(CheckpointTest, ArchitectureMismatchRejected) {
  auto lenet = make_lenet5(spec());
  auto other_spec = spec();
  other_spec.width_scale = 1.0;  // different shapes
  auto wide = make_lenet5(other_spec);

  std::stringstream buf;
  save_checkpoint(buf, *lenet);
  EXPECT_THROW(load_checkpoint(buf, *wide), std::runtime_error);
}

TEST(CheckpointTest, MetaRoundTripsThroughV2Format) {
  auto net = make_lenet5(spec(7));
  CheckpointMeta meta;
  meta.arch = "lenet5";
  meta.spec = spec(7);
  meta.spec.lif.alpha = 0.625F;
  meta.spec.lif.threshold = 1.25F;
  meta.spec.lif.detach_reset = false;
  meta.spec.lif.surrogate = snn::SurrogateKind::kTriangle;

  std::stringstream buf;
  save_checkpoint(buf, *net, meta);
  const CheckpointMeta got = read_checkpoint_meta(buf);
  EXPECT_EQ(got.arch, "lenet5");
  EXPECT_EQ(got.spec.num_classes, meta.spec.num_classes);
  EXPECT_EQ(got.spec.in_channels, meta.spec.in_channels);
  EXPECT_EQ(got.spec.image_size, meta.spec.image_size);
  EXPECT_EQ(got.spec.timesteps, meta.spec.timesteps);
  EXPECT_EQ(got.spec.width_scale, meta.spec.width_scale);
  EXPECT_EQ(got.spec.lif.alpha, meta.spec.lif.alpha);
  EXPECT_EQ(got.spec.lif.threshold, meta.spec.lif.threshold);
  EXPECT_EQ(got.spec.lif.detach_reset, meta.spec.lif.detach_reset);
  EXPECT_EQ(got.spec.lif.surrogate, meta.spec.lif.surrogate);
}

TEST(CheckpointTest, V2RestoresIntoLiveNetworkAndRebuildsStandalone) {
  auto a = make_lenet5(spec(3));
  const std::string path = ::testing::TempDir() + "/ckpt_v2.ndck";
  save_checkpoint_file(path, *a, CheckpointMeta{"lenet5", spec(3)});

  // load_checkpoint skips the meta block for a live network...
  auto b = make_lenet5(spec(4));
  load_checkpoint_file(path, *b);
  // ...and load_checkpoint_network rebuilds the architecture itself.
  auto c = load_checkpoint_network(path);

  Tensor batch(Shape{2, 1, 8, 8}, 0.9F);
  const Tensor pred_a = a->predict(batch);
  const Tensor pred_b = b->predict(batch);
  const Tensor pred_c = c->predict(batch);
  for (int64_t i = 0; i < pred_a.numel(); ++i) {
    EXPECT_EQ(pred_b.at(i), pred_a.at(i));
    EXPECT_EQ(pred_c.at(i), pred_a.at(i));
  }
}

TEST(CheckpointTest, V3RoundTripsQuantRecordExactly) {
  auto net = make_lenet5(spec(11));
  const QuantRecord record = build_quant_record(*net, sparse::Precision::kInt4);
  ASSERT_FALSE(record.layers.empty());
  // One entry per prunable parameter, scales per lowered weight row.
  int prunable = 0;
  for (const auto& p : net->params()) prunable += p.prunable;
  EXPECT_EQ(static_cast<int>(record.layers.size()), prunable);

  std::stringstream buf;
  save_checkpoint(buf, *net, CheckpointMeta{"lenet5", spec(11)}, record);
  const QuantRecord got = read_checkpoint_quant(buf);
  ASSERT_EQ(got.layers.size(), record.layers.size());
  for (std::size_t i = 0; i < got.layers.size(); ++i) {
    EXPECT_EQ(got.layers[i].param, record.layers[i].param);
    EXPECT_EQ(got.layers[i].precision, sparse::Precision::kInt4);
    ASSERT_EQ(got.layers[i].scales.size(), record.layers[i].scales.size());
    for (std::size_t g = 0; g < got.layers[i].scales.size(); ++g) {
      EXPECT_EQ(got.layers[i].scales[g], record.layers[i].scales[g]);
      EXPECT_EQ(got.layers[i].zeros[g], 0);
    }
  }
  // Scales regenerate deterministically from the stored fp32 weights.
  const QuantRecord regen = build_quant_record(*net, sparse::Precision::kInt4);
  for (std::size_t i = 0; i < got.layers.size(); ++i) {
    EXPECT_EQ(regen.layers[i].scales, got.layers[i].scales) << got.layers[i].param;
  }
}

/// Cross-version load matrix: every writer version against every
/// reader. Old files keep loading; new sections are skipped by the
/// restore-into-live-network path and surfaced by the dedicated readers.
TEST(CheckpointTest, CrossVersionLoadMatrix) {
  auto net = make_lenet5(spec(21));
  const Tensor batch(Shape{2, 1, 8, 8}, 0.9F);
  const Tensor want = net->predict(batch);
  const CheckpointMeta meta{"lenet5", spec(21)};
  const QuantRecord record = build_quant_record(*net, sparse::Precision::kInt8);

  for (int version = 1; version <= 3; ++version) {
    SCOPED_TRACE("writer v" + std::to_string(version));
    const std::string path =
        ::testing::TempDir() + "/cross_v" + std::to_string(version) + ".ndck";
    if (version == 1) {
      save_checkpoint_file(path, *net);
    } else if (version == 2) {
      save_checkpoint_file(path, *net, meta);
    } else {
      save_checkpoint_file(path, *net, meta, record);
    }

    // load_checkpoint restores parameters from every version.
    auto fresh = make_lenet5(spec(99));
    load_checkpoint_file(path, *fresh);
    const Tensor pred = fresh->predict(batch);
    for (int64_t i = 0; i < want.numel(); ++i) ASSERT_EQ(pred.at(i), want.at(i));

    // Meta: v2+. Quant record: v3 only. Standalone rebuild: v2+.
    if (version >= 2) {
      EXPECT_EQ(read_checkpoint_meta_file(path).arch, "lenet5");
      QuantRecord quant;
      quant.layers.resize(7);  // stale content must be cleared for v2
      auto rebuilt = load_checkpoint_network(path, &quant);
      const Tensor pred2 = rebuilt->predict(batch);
      for (int64_t i = 0; i < want.numel(); ++i) ASSERT_EQ(pred2.at(i), want.at(i));
      EXPECT_EQ(quant.layers.size(), version == 3 ? record.layers.size() : 0U);
    } else {
      EXPECT_THROW((void)read_checkpoint_meta_file(path), std::runtime_error);
      EXPECT_THROW((void)load_checkpoint_network(path), std::runtime_error);
    }
    if (version == 3) {
      EXPECT_EQ(read_checkpoint_quant_file(path).layers.size(), record.layers.size());
    } else {
      EXPECT_THROW((void)read_checkpoint_quant_file(path), std::runtime_error);
    }
  }
}

TEST(CheckpointTest, V1HasNoMetaRecord) {
  auto net = make_lenet5(spec());
  std::stringstream buf;
  save_checkpoint(buf, *net);
  EXPECT_THROW((void)read_checkpoint_meta(buf), std::runtime_error);
}

TEST(CheckpointTest, CorruptStreamRejected) {
  auto net = make_lenet5(spec());
  std::stringstream buf("not a checkpoint at all");
  EXPECT_THROW(load_checkpoint(buf, *net), std::runtime_error);
}

TEST(CheckpointTest, TruncatedStreamRejected) {
  auto net = make_lenet5(spec());
  std::stringstream buf;
  save_checkpoint(buf, *net);
  std::string s = buf.str();
  s.resize(s.size() / 3);
  std::stringstream cut(s);
  EXPECT_THROW(load_checkpoint(cut, *net), std::runtime_error);
}

/// Every strict prefix of a v3 file must be rejected with a clear
/// runtime_error — never undefined behavior, never a giant allocation
/// from garbage dims, never a silent partial restore. Sampled stride
/// keeps the sweep fast; the first 256 byte-lengths are covered
/// exhaustively because every header/meta boundary lives there.
TEST(CheckpointTest, TruncatedFileSweepFailsCleanlyAtEveryPrefix) {
  auto net = make_lenet5(spec(31));
  const CheckpointMeta meta{"lenet5", spec(31)};
  const QuantRecord record = build_quant_record(*net, sparse::Precision::kInt8);
  const std::string path = ::testing::TempDir() + "/trunc_sweep.ndck";
  save_checkpoint_file(path, *net, meta, record);

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in);
  std::stringstream whole;
  whole << in.rdbuf();
  const std::string bytes = whole.str();
  ASSERT_GT(bytes.size(), 512U);

  const std::string cut_path = ::testing::TempDir() + "/trunc_cut.ndck";
  for (std::size_t len = 0; len < bytes.size();
       len += (len < 256 ? 1 : bytes.size() / 64)) {
    SCOPED_TRACE("prefix length " + std::to_string(len));
    {
      std::ofstream out(cut_path, std::ios::binary | std::ios::trunc);
      out.write(bytes.data(), static_cast<std::streamsize>(len));
    }
    auto fresh = make_lenet5(spec(99));
    EXPECT_THROW(load_checkpoint_file(cut_path, *fresh), std::runtime_error);
    EXPECT_THROW((void)load_checkpoint_network(cut_path), std::runtime_error);
  }
}

TEST(CheckpointTest, SaveIsAtomicUnderAnInjectedWriteFault) {
  auto net = make_lenet5(spec(41));
  const CheckpointMeta meta{"lenet5", spec(41)};
  const std::string path = ::testing::TempDir() + "/atomic.ndck";
  save_checkpoint_file(path, *net, meta);

  std::ifstream before_in(path, std::ios::binary);
  std::stringstream before;
  before << before_in.rdbuf();
  ASSERT_FALSE(before.str().empty());

  // A save that dies mid-write (crash, full disk — here injected) must
  // leave the previous checkpoint byte-identical and no .tmp litter.
  auto changed = make_lenet5(spec(43));  // different weights
  util::fault::FaultInjector::global().arm("checkpoint.write",
                                           util::fault::Rule{1.0, 1, 0});
  EXPECT_THROW(save_checkpoint_file(path, *changed, meta), std::runtime_error);
  util::fault::FaultInjector::global().reset();

  std::ifstream after_in(path, std::ios::binary);
  std::stringstream after;
  after << after_in.rdbuf();
  EXPECT_EQ(after.str(), before.str()) << "original checkpoint was damaged";
  EXPECT_FALSE(std::ifstream(path + ".tmp").good()) << ".tmp left behind";

  // And the failed writer can succeed on retry.
  save_checkpoint_file(path, *changed, meta);
  auto rebuilt = load_checkpoint_network(path);
  const Tensor batch(Shape{2, 1, 8, 8}, 0.9F);
  const Tensor want = changed->predict(batch);
  const Tensor got = rebuilt->predict(batch);
  for (int64_t i = 0; i < want.numel(); ++i) ASSERT_EQ(got.at(i), want.at(i));
  EXPECT_FALSE(std::ifstream(path + ".tmp").good()) << ".tmp survived a clean save";
}

}  // namespace
}  // namespace ndsnn::nn
