#include "nn/checkpoint.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "nn/models/zoo.hpp"

namespace ndsnn::nn {
namespace {

using tensor::Shape;
using tensor::Tensor;

ModelSpec spec(uint64_t seed = 42) {
  ModelSpec s;
  s.num_classes = 4;
  s.in_channels = 1;
  s.image_size = 8;
  s.timesteps = 2;
  s.width_scale = 0.5;
  s.seed = seed;
  return s;
}

TEST(CheckpointTest, RoundTripRestoresExactPredictions) {
  auto a = make_lenet5(spec(1));
  auto b = make_lenet5(spec(2));  // different init

  // Different seeds -> different weights (predictions may coincide on a
  // weak input if no neuron fires, so compare the weights directly).
  bool differ = false;
  {
    const auto pa = a->params();
    const auto pb = b->params();
    for (int64_t i = 0; i < pa[0].value->numel(); ++i) {
      if (pa[0].value->at(i) != pb[0].value->at(i)) differ = true;
    }
  }
  ASSERT_TRUE(differ);

  std::stringstream buf;
  save_checkpoint(buf, *a);
  load_checkpoint(buf, *b);

  Tensor batch(Shape{2, 1, 8, 8}, 0.9F);
  const Tensor pred_a = a->predict(batch);
  const Tensor pred_b = b->predict(batch);
  for (int64_t i = 0; i < pred_a.numel(); ++i) {
    EXPECT_EQ(pred_b.at(i), pred_a.at(i));
  }
  // And the weights themselves are identical.
  const auto pa = a->params();
  const auto pb = b->params();
  for (std::size_t p = 0; p < pa.size(); ++p) {
    for (int64_t i = 0; i < pa[p].value->numel(); ++i) {
      ASSERT_EQ(pb[p].value->at(i), pa[p].value->at(i)) << pa[p].name;
    }
  }
}

TEST(CheckpointTest, PreservesSparsePattern) {
  auto net = make_lenet5(spec());
  // Zero half the first conv's weights, save, reload into a fresh net.
  auto params = net->params();
  for (int64_t i = 0; i < params[0].value->numel(); i += 2) params[0].value->at(i) = 0.0F;
  const int64_t zeros = params[0].value->count_zeros();

  std::stringstream buf;
  save_checkpoint(buf, *net);
  auto fresh = make_lenet5(spec(99));
  load_checkpoint(buf, *fresh);
  EXPECT_EQ(fresh->params()[0].value->count_zeros(), zeros);
}

TEST(CheckpointTest, ArchitectureMismatchRejected) {
  auto lenet = make_lenet5(spec());
  auto other_spec = spec();
  other_spec.width_scale = 1.0;  // different shapes
  auto wide = make_lenet5(other_spec);

  std::stringstream buf;
  save_checkpoint(buf, *lenet);
  EXPECT_THROW(load_checkpoint(buf, *wide), std::runtime_error);
}

TEST(CheckpointTest, CorruptStreamRejected) {
  auto net = make_lenet5(spec());
  std::stringstream buf("not a checkpoint at all");
  EXPECT_THROW(load_checkpoint(buf, *net), std::runtime_error);
}

TEST(CheckpointTest, TruncatedStreamRejected) {
  auto net = make_lenet5(spec());
  std::stringstream buf;
  save_checkpoint(buf, *net);
  std::string s = buf.str();
  s.resize(s.size() / 3);
  std::stringstream cut(s);
  EXPECT_THROW(load_checkpoint(cut, *net), std::runtime_error);
}

}  // namespace
}  // namespace ndsnn::nn
