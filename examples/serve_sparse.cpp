// Serving demo: train a sparse SNN with NDSNN, optionally project it
// onto an N:M structured pattern for deployment, compile it to sparse
// kernels (CSR for unstructured masks, block-CSR for structured ones,
// event-driven gather behind low-rate spike trains — the compiler's
// heuristics pick per layer), and serve classification requests through
// the multi-threaded BatchExecutor, reporting p50/p95/p99 latency.
//
//   ./examples/serve_sparse [--sparsity 0.95] [--epochs 4] [--threads 4]
//                           [--requests 32] [--batch 8] [--nm 2:4]
//                           [--activation auto|dense|event]
//                           [--precision auto|fp32|int8|int4]
//                           [--kernel-tier auto|scalar|vector|avx2]
//                           [--autotune]
//                           [--intra-threads 1] [--coalesce 0]
//                           [--coalesce-wait-us 200] [--slo-ms 0]
//                           [--save-checkpoint model.ndck]
//                           [--checkpoint model.ndck]
//                           [--trace out.json] [--metrics-every 8]
//                           [--profile]
//                           [--listen PORT] [--models name=a.ndck,name2=b.ndck]
//                           [--mem-budget-mb 0] [--serve-seconds 0]
//                           [--conn-timeout-ms 0] [--drain-ms 5000]
//                           [--metrics-dump metrics.json]
//
// --threads is the executor's *total* worker budget; --intra-threads
// compiles the plan with a shared intra-op pool (0 = hardware
// concurrency, 1 = serial plan) and the executor divides the budget by
// it. --coalesce N fuses queued small requests into one time-major pass
// of up to N samples (waiting up to --coalesce-wait-us for stragglers);
// fused results are bitwise identical to solo runs.
//
// With --save-checkpoint the trained network is written as an
// architecture-tagged checkpoint; with --checkpoint the training stage
// is skipped entirely and the plan comes straight from
// CompiledNetwork::from_checkpoint — the checkpoint-driven serving path
// (no training network is ever instantiated by this binary).
//
// --listen PORT switches from the in-process CLI demo loop to the real
// socket front-end: a blocking TCP server (src/serve/) answering
// length-prefixed binary frames (README "Serving"). Besides v1 one-shot
// requests the server speaks the wire v2 streaming extension: a client
// opens a stream on its connection, feeds one timestep frame at a time
// through a persistent StreamSession and gets per-step logits back
// (README "Streaming inference"). Models come from
// --models name=checkpoint pairs (or --checkpoint as model "default"),
// live behind a ModelRegistry whose --mem-budget-mb budgeter
// requantises (int8) then evicts cold plans, and are scheduled with
// --slo-ms admission control. --serve-seconds bounds the run (0 =
// until stdin closes). Port 0 asks the kernel for a free port and
// prints it. Without --listen, the CLI loop below is the fallback.
//
// --precision selects the stored bit width of the sparse weight value
// planes (default auto: per layer, the lowest width whose measured
// quantisation error stays bounded — int8 in practice). An explicit
// int8/int4 with --save-checkpoint writes a v3 checkpoint whose
// quantisation record (per-layer precision + per-row scales) a later
// `--checkpoint --precision auto` serve reproduces exactly.
//
// Observability (README "Observability" section): --trace out.json
// records every op run, queue wait, coalesce wait and fused split as
// Chrome trace-event JSON (open at chrome://tracing or
// https://ui.perfetto.dev); --metrics-every N prints a serving stats
// line every N completed requests plus a final metrics-registry dump;
// --profile prints the measured per-op latency/firing-rate table at
// the end. Any of the three enables plan profiling; traced outputs are
// bitwise identical to untraced ones.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/experiment.hpp"
#include "core/nm_projection.hpp"
#include "nn/checkpoint.hpp"
#include "runtime/batch_executor.hpp"
#include "runtime/compiled_network.hpp"
#include "runtime/trace.hpp"
#include "serve/model_registry.hpp"
#include "serve/server.hpp"
#include "sparse/structured.hpp"
#include "tensor/ops.hpp"
#include "tensor/random.hpp"
#include "util/cli.hpp"
#include "util/cpuinfo.hpp"
#include "util/fault_injection.hpp"
#include "util/json.hpp"
#include "util/logging.hpp"
#include "util/metrics.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace {

/// Set by the SIGTERM/SIGINT handler; the serve loop polls it and runs
/// the graceful drain. sig_atomic_t + no locks: handler-safe.
volatile std::sig_atomic_t g_shutdown_signal = 0;

void on_shutdown_signal(int sig) { g_shutdown_signal = sig; }

ndsnn::runtime::ActivationMode parse_activation(const std::string& s) {
  if (s == "dense") return ndsnn::runtime::ActivationMode::kDense;
  if (s == "event") return ndsnn::runtime::ActivationMode::kEvent;
  return ndsnn::runtime::ActivationMode::kAuto;
}

/// Observability knobs for serve() — see the header comment.
struct ServeTelemetry {
  std::string trace_path;  ///< non-empty: record + export a Chrome trace
  int metrics_every = 0;   ///< > 0: stats line every N completed requests
  bool profile = false;    ///< print the per-op profile table at the end
  [[nodiscard]] bool any() const {
    return !trace_path.empty() || metrics_every > 0 || profile;
  }
};

void print_profile(const ndsnn::runtime::CompiledNetwork& plan) {
  std::printf("\nper-op profile (%lld plan runs):\n",
              static_cast<long long>(plan.profiled_executes()));
  ndsnn::util::Table table({"op", "kind", "runs", "mean us", "p50 us", "p95 us", "rate"});
  for (const auto& op : plan.profile()) {
    table.add_row({op.layer, op.kind, std::to_string(op.runs),
                   ndsnn::util::fmt(op.mean_us, 1), ndsnn::util::fmt(op.p50_us, 1),
                   ndsnn::util::fmt(op.p95_us, 1),
                   op.ema_rate >= 0 ? ndsnn::util::fmt(op.ema_rate, 3) : "-"});
  }
  table.print();
}

void serve(const ndsnn::runtime::CompiledNetwork& plan,
           const std::vector<ndsnn::tensor::Tensor>& requests,
           const std::vector<std::vector<int64_t>>& labels, int threads, int batch_size,
           const ndsnn::runtime::ExecutorOptions& exec_opts, const ServeTelemetry& tel) {
  namespace trace = ndsnn::runtime::trace;
  std::printf("serving %zu requests (batch %d) on a %d-thread budget...\n", requests.size(),
              batch_size, threads);
  if (tel.any()) plan.enable_profiling(true);
  if (!tel.trace_path.empty()) {
    trace::reset();
    trace::set_enabled(true);
  }
  ndsnn::runtime::BatchExecutor exec(plan, threads, exec_opts);
  std::printf("  %lld request worker(s) x %lld intra-op lane(s)%s\n",
              static_cast<long long>(exec.num_threads()),
              static_cast<long long>(exec.intra_op_threads()),
              exec_opts.max_coalesce > 1 ? ", request coalescing on" : "");
  const ndsnn::util::Stopwatch sw;
  // Submit everything up front (the run_all pattern), then collect in
  // order so --metrics-every can narrate progress between completions.
  std::vector<std::future<ndsnn::tensor::Tensor>> futures;
  futures.reserve(requests.size());
  for (const auto& batch : requests) futures.push_back(exec.submit(batch));
  std::vector<ndsnn::tensor::Tensor> logits;
  logits.reserve(futures.size());
  for (std::size_t i = 0; i < futures.size(); ++i) {
    logits.push_back(futures[i].get());
    if (tel.metrics_every > 0 && (i + 1) % static_cast<std::size_t>(tel.metrics_every) == 0) {
      const auto s = exec.stats();
      std::printf(
          "  [%zu/%zu] service p50 %.2f ms p95 %.2f | queue p50 %.2f ms p95 %.2f "
          "depth %lld | utilization %.0f%%\n",
          i + 1, futures.size(), s.p50_ms, s.p95_ms, s.queue_p50_ms, s.queue_p95_ms,
          static_cast<long long>(s.queue_depth), 100.0 * s.worker_utilization);
    }
  }
  const double ms = sw.millis();

  int64_t correct = 0, total = 0;
  for (std::size_t r = 0; r < logits.size(); ++r) {
    const auto pred = ndsnn::tensor::argmax_rows(logits[r]);
    for (std::size_t b = 0; b < pred.size(); ++b) {
      if (!labels.empty()) correct += pred[b] == labels[r][b];
      ++total;
    }
  }
  const ndsnn::runtime::ExecutorStats stats = exec.stats();
  std::printf("served %lld samples in %.1f ms (%.0f samples/s)\n",
              static_cast<long long>(total), ms, 1e3 * static_cast<double>(total) / ms);
  std::printf("service latency: mean %.2f ms, p50 %.2f, p95 %.2f, p99 %.2f, max %.2f\n",
              stats.mean_ms, stats.p50_ms, stats.p95_ms, stats.p99_ms, stats.max_ms);
  std::printf(
      "queue wait: mean %.2f ms, p50 %.2f, p95 %.2f (end-to-end = wait + service); "
      "worker utilization %.0f%%\n",
      stats.queue_mean_ms, stats.queue_p50_ms, stats.queue_p95_ms,
      100.0 * stats.worker_utilization);
  if (stats.fused_batches > 0) {
    std::printf("coalescing: %lld requests fused into %lld passes\n",
                static_cast<long long>(stats.coalesced_requests),
                static_cast<long long>(stats.fused_batches));
  }
  if (!labels.empty()) {
    std::printf("accuracy %.2f%%\n",
                100.0 * static_cast<double>(correct) / static_cast<double>(total));
  }
  if (tel.any()) print_profile(plan);
  if (!tel.trace_path.empty()) {
    trace::set_enabled(false);
    trace::write_chrome_file(tel.trace_path);
    std::printf("\nwrote %zu trace spans to %s (%lld dropped); open at chrome://tracing "
                "or https://ui.perfetto.dev\n",
                trace::snapshot().size(), tel.trace_path.c_str(),
                static_cast<long long>(trace::dropped()));
  }
  if (tel.metrics_every > 0) {
    std::printf("\nmetrics registry:\n%s",
                ndsnn::util::MetricsRegistry::global().dump_text().c_str());
  }
}

}  // namespace

namespace {

/// --help text, grouped to mirror CompileOptions' nested structure
/// (BackendOptions / QuantOptions / ExecOptions) so the CLI surface and
/// the API present the same mental model.
void print_help() {
  std::printf(
      "serve_sparse — train/load a sparse SNN and serve it\n"
      "\n"
      "backend options (runtime::BackendOptions):\n"
      "  --kernel-tier auto|scalar|vector|avx2   pin the SIMD dispatch tier\n"
      "  --autotune                              measure per-layer lowering choices\n"
      "\n"
      "quantisation options (runtime::QuantOptions):\n"
      "  --precision auto|fp32|int8|int4         stored weight precision\n"
      "\n"
      "execution options (runtime::ExecOptions):\n"
      "  --activation auto|dense|event           activation representation\n"
      "  --intra-threads N                       intra-op lanes (0 = hw concurrency)\n"
      "\n"
      "executor / scheduling:\n"
      "  --threads N        total request-worker budget (default 4)\n"
      "  --coalesce N       fuse up to N queued requests into one pass\n"
      "  --coalesce-wait-us US   straggler wait when coalescing (default 200)\n"
      "  --slo-ms MS        admission-control latency target (0 = off)\n"
      "\n"
      "workload / training:\n"
      "  --sparsity F --epochs N --requests N --batch N --nm N:M\n"
      "  --save-checkpoint FILE | --checkpoint FILE\n"
      "\n"
      "serving front-end (--listen):\n"
      "  --listen PORT      TCP server (0 = kernel-picked port); wire v1\n"
      "                     one-shot requests and v2 streaming sessions\n"
      "                     (one open stream per connection)\n"
      "  --models name=a.ndck,name2=b.ndck   registry contents\n"
      "  --mem-budget-mb N  requantise/evict budget (0 = unlimited)\n"
      "  --serve-seconds N  bound the run (0 = until stdin closes)\n"
      "  --conn-timeout-ms N  per-connection socket deadline (0 = none)\n"
      "  --drain-ms N       SIGTERM/SIGINT graceful-drain deadline "
      "(default 5000)\n"
      "  --metrics-dump F   write the metrics registry as JSON at exit\n"
      "\n"
      "observability:\n"
      "  --trace out.json --metrics-every N --profile\n");
}

}  // namespace

int main(int argc, char** argv) {
  ndsnn::util::set_log_level(ndsnn::util::LogLevel::kWarn);
  const ndsnn::util::Cli cli(argc, argv);
  if (cli.has_flag("--help")) {
    print_help();
    return 0;
  }
  const int threads = cli.get_int("--threads", 4);
  const int num_requests = cli.get_int("--requests", 32);
  const int batch_size = cli.get_int("--batch", 8);
  const std::string nm_spec = cli.get_string("--nm", "");
  const std::string checkpoint = cli.get_string("--checkpoint", "");
  const std::string save_checkpoint = cli.get_string("--save-checkpoint", "");

  ndsnn::runtime::CompileOptions opts;
  opts.activation_mode = parse_activation(cli.get_string("--activation", "auto"));
  const std::string precision_spec = cli.get_string("--precision", "auto");
  opts.weight_precision = ndsnn::runtime::parse_weight_precision(precision_spec);
  opts.num_threads = cli.get_int("--intra-threads", 1);
  // --kernel-tier pins the SIMD dispatch tier (scalar|vector|avx2|auto)
  // for reproducible serving across heterogeneous fleets; --autotune
  // replaces the lowering heuristics with measured per-layer decisions
  // (cached, so checkpoint reloads decide instantly).
  const std::string tier_spec = cli.get_string("--kernel-tier", "auto");
  if (!ndsnn::util::simd::parse(tier_spec, &opts.kernel_tier)) {
    std::fprintf(stderr, "unknown --kernel-tier '%s' (want scalar|vector|avx2|auto)\n",
                 tier_spec.c_str());
    return 1;
  }
  opts.autotune = cli.has_flag("--autotune");

  ndsnn::runtime::ExecutorOptions exec_opts;
  exec_opts.max_coalesce = cli.get_int("--coalesce", 0);
  exec_opts.max_wait_us = cli.get_int("--coalesce-wait-us", 200);
  exec_opts.slo_ms = cli.get_double("--slo-ms", 0.0);

  ServeTelemetry tel;
  tel.trace_path = cli.get_string("--trace", "");
  tel.metrics_every = cli.get_int("--metrics-every", 0);
  tel.profile = cli.has_flag("--profile");

  // Socket front-end: --listen replaces the demo loop with the real
  // TCP server over a ModelRegistry (see the header comment).
  const int listen_port = cli.get_int("--listen", -1);
  if (listen_port >= 0) {
    std::vector<std::pair<std::string, std::string>> models;
    std::string spec_list = cli.get_string("--models", "");
    while (!spec_list.empty()) {
      const std::size_t comma = spec_list.find(',');
      const std::string pair = spec_list.substr(0, comma);
      spec_list = comma == std::string::npos ? "" : spec_list.substr(comma + 1);
      const std::size_t eq = pair.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 >= pair.size()) {
        std::fprintf(stderr, "--models entries must be name=checkpoint, got '%s'\n",
                     pair.c_str());
        return 1;
      }
      models.emplace_back(pair.substr(0, eq), pair.substr(eq + 1));
    }
    if (!checkpoint.empty()) models.emplace_back("default", checkpoint);
    if (models.empty()) {
      std::fprintf(stderr,
                   "--listen needs at least one model: --checkpoint file.ndck or "
                   "--models name=file.ndck[,name2=other.ndck]\n");
      return 1;
    }

    ndsnn::serve::RegistryOptions ropts;
    ropts.mem_budget_bytes =
        static_cast<int64_t>(cli.get_int("--mem-budget-mb", 0)) * (1 << 20);
    ropts.executor_threads = threads;
    ropts.executor = exec_opts;
    ndsnn::serve::ModelRegistry registry(ropts);
    for (const auto& [name, path] : models) {
      registry.add(
          name,
          [path](const ndsnn::runtime::CompileOptions& o) {
            return ndsnn::runtime::CompiledNetwork::from_checkpoint(path, o);
          },
          opts);
    }

    ndsnn::serve::ServerOptions sopts;
    sopts.port = static_cast<uint16_t>(listen_port);
    sopts.default_model = models.front().first;
    sopts.conn_timeout_ms = cli.get_int("--conn-timeout-ms", 0);
    const auto drain_ms =
        std::chrono::milliseconds(cli.get_int("--drain-ms", 5000));
    const std::string metrics_dump = cli.get_string("--metrics-dump", "");
    ndsnn::serve::Server server(registry, sopts);
    server.start();
    std::printf("listening on 127.0.0.1:%u — %zu model(s), default '%s', "
                "budget %lld MiB, slo %.1f ms\n",
                server.port(), models.size(), sopts.default_model.c_str(),
                static_cast<long long>(ropts.mem_budget_bytes >> 20), exec_opts.slo_ms);
    if (ndsnn::util::fault::FaultInjector::active()) {
      // Print the seed up front: reproducing a chaos failure needs it
      // (CONTRIBUTING "Reproducing a chaos-test failure").
      std::printf("fault injection ARMED (NDSNN_FAULTS), seed=%llu\n",
                  static_cast<unsigned long long>(
                      ndsnn::util::fault::FaultInjector::global().seed()));
    }
    // SIGTERM/SIGINT trigger the graceful drain below instead of
    // killing the process: in-flight work finishes (up to --drain-ms)
    // and the exit code reports whether everything settled.
    std::signal(SIGTERM, on_shutdown_signal);
    std::signal(SIGINT, on_shutdown_signal);
    const int serve_seconds = cli.get_int("--serve-seconds", 0);
    const auto serve_until = std::chrono::steady_clock::now() +
                             std::chrono::seconds(serve_seconds);
    // shared_ptr, not a stack flag: the watcher is detached at exit
    // (it may sit in getchar() forever) and must not touch a dead frame.
    auto stdin_closed = std::make_shared<std::atomic<bool>>(false);
    std::thread stdin_watch;
    if (serve_seconds <= 0) {
      // Foreground service: also exit when the operator closes stdin.
      // Watched from a side thread so the main loop stays free to poll
      // for signals (a blocking getchar() would delay drain by one
      // keypress).
      stdin_watch = std::thread([stdin_closed] {
        while (std::getchar() != EOF) {
        }
        stdin_closed->store(true);
      });
    }
    while (g_shutdown_signal == 0) {
      if (serve_seconds > 0) {
        if (std::chrono::steady_clock::now() >= serve_until) break;
      } else if (stdin_closed->load()) {
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    bool settled = true;
    if (g_shutdown_signal != 0) {
      std::printf("signal %d: draining (deadline %lld ms)\n",
                  static_cast<int>(g_shutdown_signal),
                  static_cast<long long>(drain_ms.count()));
      settled = server.drain(drain_ms);
      if (!settled) {
        std::fprintf(stderr, "drain deadline expired: stragglers force-closed\n");
      }
    } else {
      server.stop();
    }
    if (stdin_watch.joinable()) stdin_watch.detach();  // blocked in getchar()
    std::printf("served %lld request(s) over %lld connection(s); "
                "%lld load(s), %lld requantisation(s), %lld eviction(s)\n",
                static_cast<long long>(server.requests_served()),
                static_cast<long long>(server.connections()),
                static_cast<long long>(registry.loads()),
                static_cast<long long>(registry.requantisations()),
                static_cast<long long>(registry.evictions()));
    if (ndsnn::util::fault::FaultInjector::active()) {
      std::printf("%s\n",
                  ndsnn::util::fault::FaultInjector::global().summary().c_str());
    }
    if (!metrics_dump.empty()) {
      ndsnn::util::JsonWriter json;
      ndsnn::util::MetricsRegistry::global().dump_json(json);
      json.write_file(metrics_dump);
      std::printf("metrics written to %s\n", metrics_dump.c_str());
    }
    return settled ? 0 : 1;
  }

  // Checkpoint-driven serving: no experiment, no training network —
  // the architecture record inside the checkpoint rebuilds everything.
  if (!checkpoint.empty()) {
    const auto meta = ndsnn::nn::read_checkpoint_meta_file(checkpoint);
    std::printf("serving %s from checkpoint %s (%lldpx, T=%lld)\n", meta.arch.c_str(),
                checkpoint.c_str(), static_cast<long long>(meta.spec.image_size),
                static_cast<long long>(meta.spec.timesteps));
    const auto plan = ndsnn::runtime::CompiledNetwork::from_checkpoint(checkpoint, opts);
    std::printf("%s\n", plan.summary().c_str());

    ndsnn::tensor::Rng rng(123);
    std::vector<ndsnn::tensor::Tensor> requests;
    for (int r = 0; r < num_requests; ++r) {
      ndsnn::tensor::Tensor batch(ndsnn::tensor::Shape{
          batch_size, meta.spec.in_channels, meta.spec.image_size, meta.spec.image_size});
      batch.fill_uniform(rng, 0.0F, 1.0F);
      requests.push_back(std::move(batch));
    }
    serve(plan, requests, {}, threads, batch_size, exec_opts, tel);
    return 0;
  }

  // 1. Train a sparse network (tiny synthetic run, like edge_deployment).
  ndsnn::core::ExperimentConfig cfg;
  cfg.arch = "lenet5";
  cfg.dataset = "cifar10";
  cfg.method = "ndsnn";
  cfg.sparsity = cli.get_double("--sparsity", 0.95);
  cfg.epochs = cli.get_int("--epochs", 8);
  cfg.train_samples = 320;
  cfg.test_samples = 128;
  cfg.data_scale = 0.5;
  cfg.timesteps = 2;
  cfg.learning_rate = 0.2;

  std::printf("training sparse SNN (target %.0f%% sparsity)...\n", 100.0 * cfg.sparsity);
  ndsnn::core::Experiment exp = ndsnn::core::build_experiment(cfg);
  ndsnn::core::Trainer trainer(*exp.network, *exp.method, *exp.train_set, *exp.test_set,
                               exp.trainer);
  const auto result = trainer.run();
  std::printf("trained: %.2f%% accuracy at %.1f%% sparsity\n\n", result.best_test_acc,
              100.0 * result.final_sparsity);

  // 2. (Optional) Deployment projection: snap the unstructured trained
  // mask onto an N:M pattern so structured-sparsity hardware — and the
  // runtime's block-CSR kernels — can execute it.
  if (!nm_spec.empty()) {
    const auto pattern = ndsnn::sparse::parse_nm(nm_spec);
    const auto report = ndsnn::core::project_network_nm(*exp.network, pattern);
    std::printf("projected onto %lld:%lld — mean |w| mass lost %.2f%%\n",
                static_cast<long long>(pattern.n), static_cast<long long>(pattern.m),
                100.0 * ndsnn::core::mean_projection_loss(report));
  }

  // 3. (Optional) Persist as an architecture-tagged checkpoint a later
  // `--checkpoint` run can serve without retraining. An explicit
  // quantised --precision makes it a v3 checkpoint carrying the
  // deployment's per-layer precision + per-row scales.
  if (!save_checkpoint.empty()) {
    const ndsnn::nn::CheckpointMeta meta{exp.arch, exp.model_spec};
    if (opts.weight_precision == ndsnn::runtime::WeightPrecision::kInt8 ||
        opts.weight_precision == ndsnn::runtime::WeightPrecision::kInt4) {
      const auto precision =
          opts.weight_precision == ndsnn::runtime::WeightPrecision::kInt8
              ? ndsnn::sparse::Precision::kInt8
              : ndsnn::sparse::Precision::kInt4;
      ndsnn::nn::save_checkpoint_file(
          save_checkpoint, *exp.network, meta,
          ndsnn::nn::build_quant_record(*exp.network, precision));
      std::printf("saved v3 checkpoint (quant record: %s) to %s\n",
                  precision_spec.c_str(), save_checkpoint.c_str());
    } else {
      ndsnn::nn::save_checkpoint_file(save_checkpoint, *exp.network, meta);
      std::printf("saved checkpoint to %s\n", save_checkpoint.c_str());
    }
  }

  // 4. Compile the masked network into an immutable sparse inference
  // plan; the kernel heuristic lowers structured layers to BCSR,
  // unstructured ones to CSR, and spike-fed layers to the event path
  // (the training run recorded per-layer firing rates it plans on).
  const auto plan = ndsnn::runtime::CompiledNetwork::compile(*exp.network, opts);
  std::printf("%s\n", plan.summary().c_str());

  // 5. Serve requests from the test distribution through a worker pool.
  std::vector<ndsnn::tensor::Tensor> requests;
  std::vector<std::vector<int64_t>> labels;
  for (int r = 0; r < num_requests; ++r) {
    std::vector<int64_t> batch_labels;
    const int64_t image = exp.test_set->image_size();
    ndsnn::tensor::Tensor batch(ndsnn::tensor::Shape{
        batch_size, exp.test_set->channels(), image, image});
    for (int b = 0; b < batch_size; ++b) {
      const auto sample = exp.test_set->get((r * batch_size + b) % exp.test_set->size());
      const int64_t numel = sample.image.numel();
      for (int64_t i = 0; i < numel; ++i) {
        batch.at(b * numel + i) = sample.image.at(i);
      }
      batch_labels.push_back(sample.label);
    }
    requests.push_back(std::move(batch));
    labels.push_back(std::move(batch_labels));
  }
  serve(plan, requests, labels, threads, batch_size, exec_opts, tel);
  return 0;
}
