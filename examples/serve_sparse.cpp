// Serving demo: train a sparse SNN with NDSNN, optionally project it
// onto an N:M structured pattern for deployment, compile it to sparse
// kernels (CSR for unstructured masks, block-CSR for structured ones —
// the compiler's heuristic picks per layer), and serve classification
// requests through the multi-threaded BatchExecutor.
//
//   ./examples/serve_sparse [--sparsity 0.95] [--epochs 4] [--threads 4]
//                           [--requests 32] [--batch 8] [--nm 2:4]
//
// With --nm the summary reports how much |w| mass the projection
// discarded, and the plan shows which kernel each layer landed on: at
// moderate trained sparsity (e.g. --sparsity 0.5 --nm 2:4) the block
// occupancy is high and layers compile to bcsr-* ops; at 0.95 the
// projected mask is still occupancy-poor and the heuristic correctly
// keeps element-wise CSR.
#include <cstdio>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/nm_projection.hpp"
#include "runtime/batch_executor.hpp"
#include "runtime/compiled_network.hpp"
#include "sparse/structured.hpp"
#include "tensor/ops.hpp"
#include "util/cli.hpp"
#include "util/logging.hpp"
#include "util/stopwatch.hpp"

int main(int argc, char** argv) {
  ndsnn::util::set_log_level(ndsnn::util::LogLevel::kWarn);
  const ndsnn::util::Cli cli(argc, argv);
  const int threads = cli.get_int("--threads", 4);
  const int num_requests = cli.get_int("--requests", 32);
  const int batch_size = cli.get_int("--batch", 8);
  const std::string nm_spec = cli.get_string("--nm", "");

  // 1. Train a sparse network (tiny synthetic run, like edge_deployment).
  ndsnn::core::ExperimentConfig cfg;
  cfg.arch = "lenet5";
  cfg.dataset = "cifar10";
  cfg.method = "ndsnn";
  cfg.sparsity = cli.get_double("--sparsity", 0.95);
  cfg.epochs = cli.get_int("--epochs", 8);
  cfg.train_samples = 320;
  cfg.test_samples = 128;
  cfg.data_scale = 0.5;
  cfg.timesteps = 2;
  cfg.learning_rate = 0.2;

  std::printf("training sparse SNN (target %.0f%% sparsity)...\n", 100.0 * cfg.sparsity);
  ndsnn::core::Experiment exp = ndsnn::core::build_experiment(cfg);
  ndsnn::core::Trainer trainer(*exp.network, *exp.method, *exp.train_set, *exp.test_set,
                               exp.trainer);
  const auto result = trainer.run();
  std::printf("trained: %.2f%% accuracy at %.1f%% sparsity\n\n", result.best_test_acc,
              100.0 * result.final_sparsity);

  // 2. (Optional) Deployment projection: snap the unstructured trained
  // mask onto an N:M pattern so structured-sparsity hardware — and the
  // runtime's block-CSR kernels — can execute it.
  if (!nm_spec.empty()) {
    const auto pattern = ndsnn::sparse::parse_nm(nm_spec);
    const auto report = ndsnn::core::project_network_nm(*exp.network, pattern);
    std::printf("projected onto %lld:%lld — mean |w| mass lost %.2f%%\n",
                static_cast<long long>(pattern.n), static_cast<long long>(pattern.m),
                100.0 * ndsnn::core::mean_projection_loss(report));
  }

  // 3. Compile the masked network into an immutable sparse inference
  // plan; the kernel heuristic lowers structured layers to BCSR and
  // unstructured ones to CSR.
  const auto plan = ndsnn::runtime::CompiledNetwork::compile(*exp.network);
  std::printf("%s\n", plan.summary().c_str());

  // 4. Serve requests from the test distribution through a worker pool.
  std::vector<ndsnn::tensor::Tensor> requests;
  std::vector<std::vector<int64_t>> labels;
  for (int r = 0; r < num_requests; ++r) {
    std::vector<int64_t> batch_labels;
    const int64_t image = exp.test_set->image_size();
    ndsnn::tensor::Tensor batch(ndsnn::tensor::Shape{
        batch_size, exp.test_set->channels(), image, image});
    for (int b = 0; b < batch_size; ++b) {
      const auto sample = exp.test_set->get((r * batch_size + b) % exp.test_set->size());
      const int64_t numel = sample.image.numel();
      for (int64_t i = 0; i < numel; ++i) {
        batch.at(b * numel + i) = sample.image.at(i);
      }
      batch_labels.push_back(sample.label);
    }
    requests.push_back(std::move(batch));
    labels.push_back(std::move(batch_labels));
  }

  std::printf("serving %d requests (batch %d) on %d worker threads...\n", num_requests,
              batch_size, threads);
  ndsnn::runtime::BatchExecutor exec(plan, threads);
  const ndsnn::util::Stopwatch sw;
  const auto logits = exec.run_all(requests);
  const double ms = sw.millis();

  int64_t correct = 0, total = 0;
  for (std::size_t r = 0; r < logits.size(); ++r) {
    const auto pred = ndsnn::tensor::argmax_rows(logits[r]);
    for (std::size_t b = 0; b < pred.size(); ++b) {
      correct += pred[b] == labels[r][b];
      ++total;
    }
  }
  std::printf("served %lld samples in %.1f ms (%.0f samples/s), accuracy %.2f%%\n",
              static_cast<long long>(total), ms, 1e3 * static_cast<double>(total) / ms,
              100.0 * static_cast<double>(correct) / static_cast<double>(total));
  return 0;
}
