// Method comparison: the long-form API walkthrough. Builds each sparse
// training method explicitly (no ExperimentConfig sugar), trains them on
// the same model/data, and prints an accuracy + cost comparison -- a
// miniature of the paper's whole evaluation.
#include <cstdio>
#include <memory>

#include "core/cost_model.hpp"
#include "core/dense_method.hpp"
#include "core/lth_method.hpp"
#include "core/ndsnn_method.hpp"
#include "core/rigl_method.hpp"
#include "core/set_method.hpp"
#include "core/trainer.hpp"
#include "data/synthetic.hpp"
#include "nn/models/zoo.hpp"
#include "util/cli.hpp"
#include "util/logging.hpp"
#include "util/table.hpp"

namespace {

std::unique_ptr<ndsnn::core::SparseTrainingMethod> build_method(const std::string& name,
                                                                double sparsity,
                                                                int64_t total_iters) {
  const int64_t delta_t = 2;
  const int64_t t_end = std::max<int64_t>(delta_t, total_iters * 3 / 4);
  if (name == "dense") return std::make_unique<ndsnn::core::DenseMethod>();
  if (name == "ndsnn") {
    ndsnn::core::NdsnnConfig c;
    c.initial_sparsity = 0.8 * sparsity;
    c.final_sparsity = sparsity;
    c.delta_t = delta_t;
    c.t_end = t_end;
    return std::make_unique<ndsnn::core::NdsnnMethod>(c);
  }
  if (name == "set") {
    ndsnn::core::SetConfig c;
    c.sparsity = sparsity;
    c.delta_t = delta_t;
    c.t_end = t_end;
    return std::make_unique<ndsnn::core::SetMethod>(c);
  }
  if (name == "rigl") {
    ndsnn::core::RiglConfig c;
    c.sparsity = sparsity;
    c.delta_t = delta_t;
    c.t_end = t_end;
    return std::make_unique<ndsnn::core::RiglMethod>(c);
  }
  ndsnn::core::LthConfig c;
  c.final_sparsity = sparsity;
  c.rounds = 3;
  c.epochs_per_round = 2;
  return std::make_unique<ndsnn::core::LthMethod>(c);
}

}  // namespace

int main(int argc, char** argv) {
  ndsnn::util::set_log_level(ndsnn::util::LogLevel::kWarn);
  const ndsnn::util::Cli cli(argc, argv);
  const double sparsity = cli.get_double("--sparsity", 0.9);
  const int64_t epochs = cli.get_int("--epochs", 8);

  // Shared dataset: the synthetic CIFAR-10 stand-in at 8x8.
  ndsnn::data::SyntheticSpec train_spec = ndsnn::data::synthetic_cifar10(0.5, 320);
  ndsnn::data::SyntheticSpec test_spec = train_spec;
  test_spec.train_size = 128;
  test_spec.sample_offset = train_spec.train_size + (int64_t{1} << 20);
  ndsnn::data::SyntheticVision train(train_spec), test(test_spec);

  ndsnn::core::TrainerConfig tcfg;
  tcfg.epochs = epochs;
  tcfg.batch_size = 32;
  tcfg.learning_rate = 0.2;

  std::printf("method comparison: spiking LeNet-5, %.0f%% sparsity, %lld epochs\n\n",
              100.0 * sparsity, static_cast<long long>(epochs));

  const int64_t iters = (train.size() + tcfg.batch_size - 1) / tcfg.batch_size * epochs;

  ndsnn::core::TrainResult dense_result;
  ndsnn::util::Table table({"method", "best acc %", "final sparsity", "mean density",
                            "cost vs dense %"});
  for (const char* name : {"dense", "lth", "set", "rigl", "ndsnn"}) {
    // Fresh model per method (same seed -> identical initialization).
    ndsnn::nn::ModelSpec mspec;
    mspec.num_classes = train.num_classes();
    mspec.in_channels = train.channels();
    mspec.image_size = train.image_size();
    mspec.timesteps = 2;
    mspec.lif.alpha = 0.75F;
    mspec.width_scale = 1.0;
    auto net = ndsnn::nn::make_lenet5(mspec);

    auto method = build_method(name, sparsity, iters);
    ndsnn::core::Trainer trainer(*net, *method, train, test, tcfg);
    const auto result = trainer.run();
    if (std::string(name) == "dense") dense_result = result;

    const double cost = dense_result.epochs.empty()
                            ? 100.0
                            : ndsnn::core::normalized_training_cost_pct(result, dense_result);
    table.add_row({name, ndsnn::util::fmt(result.best_acc_at_final_sparsity),
                   ndsnn::util::fmt(result.final_sparsity, 3),
                   ndsnn::util::fmt(ndsnn::core::mean_density(result), 3),
                   ndsnn::util::fmt(cost, 1)});
    std::printf("  %-6s done (%.1fs)\n", name, result.wall_seconds);
  }
  std::printf("\n");
  table.print();
  std::printf("\nexpected shape (paper): NDSNN >= RigL/SET > LTH in accuracy;\n");
  std::printf("NDSNN lowest training cost among sparse methods.\n");
  return 0;
}
