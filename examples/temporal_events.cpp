// Temporal event-stream classification: the genuinely-temporal path.
//
// A DVS-style synthetic dataset emits ON/OFF event planes of a class
// prototype DRIFTING in a class-specific direction -- the label is only
// decodable from WHEN/WHERE events fire, not from any single frame. The
// model uses trainable-leak PLIF neurons (Fang et al., the paper's ref
// [18] lineage) and trains sparsely with NDSNN.
#include <cstdio>
#include <memory>

#include "core/ndsnn_method.hpp"
#include "core/trainer.hpp"
#include "data/event_synthetic.hpp"
#include "nn/conv2d.hpp"
#include "nn/batchnorm.hpp"
#include "nn/flatten.hpp"
#include "nn/linear.hpp"
#include "nn/neuron_activations.hpp"
#include "nn/pool.hpp"
#include "util/cli.hpp"
#include "util/logging.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  ndsnn::util::set_log_level(ndsnn::util::LogLevel::kWarn);
  const ndsnn::util::Cli cli(argc, argv);
  const int64_t epochs = cli.get_int("--epochs", 8);
  const double sparsity = cli.get_double("--sparsity", 0.8);

  // Event data: [2*T_ev, S, S] channels carry the whole stream; the SNN
  // then runs its own T timesteps over it (direct encoding of the event
  // volume -- the first conv learns a spatio-temporal filter bank).
  ndsnn::data::EventSpec train_spec;
  train_spec.num_classes = 4;
  train_spec.image_size = 12;
  train_spec.timesteps = 6;
  train_spec.train_size = 256;
  auto test_spec = train_spec;
  test_spec.train_size = 96;
  test_spec.sample_offset = train_spec.train_size + 4096;
  ndsnn::data::SyntheticEvents train(train_spec), test(test_spec);
  std::printf("event dataset: %lld train samples, event rate %.3f\n",
              static_cast<long long>(train.size()), train.measure_event_rate(16));

  // A compact spiking conv net with PLIF nonlinearities.
  const int64_t snn_t = 2;
  ndsnn::tensor::Rng rng(5);
  auto body = std::make_unique<ndsnn::nn::Sequential>();
  body->emplace<ndsnn::nn::Conv2d>(train.channels(), 16, 3, 1, 1, rng);
  body->emplace<ndsnn::nn::BatchNorm2d>(16);
  body->emplace<ndsnn::nn::PlifActivation>(ndsnn::snn::PlifConfig{}, snn_t);
  body->emplace<ndsnn::nn::AvgPool2d>(2);
  body->emplace<ndsnn::nn::Conv2d>(16, 32, 3, 1, 1, rng);
  body->emplace<ndsnn::nn::BatchNorm2d>(32);
  body->emplace<ndsnn::nn::PlifActivation>(ndsnn::snn::PlifConfig{}, snn_t);
  body->emplace<ndsnn::nn::AvgPool2d>(2);
  body->emplace<ndsnn::nn::Flatten>();
  body->emplace<ndsnn::nn::Linear>(32 * 3 * 3, train.num_classes(), rng);
  ndsnn::nn::SpikingNetwork net(std::move(body), snn_t);

  // NDSNN sparse training.
  const int64_t iters = (train.size() + 31) / 32 * epochs;
  ndsnn::core::NdsnnConfig nc;
  nc.initial_sparsity = 0.5 * sparsity;
  nc.final_sparsity = sparsity;
  nc.delta_t = std::max<int64_t>(2, iters / 48);
  nc.t_end = iters * 3 / 4;
  ndsnn::core::NdsnnMethod method(nc);

  ndsnn::core::TrainerConfig tc;
  tc.epochs = epochs;
  tc.batch_size = 32;
  tc.learning_rate = 0.1;
  tc.augment = false;  // temporal data: spatial crop/flip would break labels
  ndsnn::core::Trainer trainer(net, method, train, test, tc);
  const auto result = trainer.run();

  ndsnn::util::Table table({"epoch", "train acc %", "test acc %", "sparsity"});
  for (std::size_t e = 0; e < result.epochs.size(); ++e) {
    const auto& s = result.epochs[e];
    table.add_row({std::to_string(e), ndsnn::util::fmt(s.train_acc),
                   ndsnn::util::fmt(s.test_acc), ndsnn::util::fmt(s.sparsity, 3)});
  }
  table.print();

  // The learned PLIF leaks (started at 0.5).
  std::printf("\nlearned PLIF leaks:");
  for (std::size_t i = 0; i < net.body().size(); ++i) {
    if (const auto* plif = dynamic_cast<const ndsnn::nn::PlifActivation*>(&net.body().layer(i))) {
      std::printf(" %.3f", plif->alpha());
    }
  }
  std::printf("\nbest test accuracy: %.2f%% at %.1f%% sparsity (chance %.1f%%)\n",
              result.best_test_acc, 100.0 * result.final_sparsity,
              100.0 / static_cast<double>(train.num_classes()));
  return 0;
}
