// Quickstart: train a sparse spiking LeNet-5 with NDSNN in ~30 seconds.
//
//   ./quickstart [--epochs N] [--sparsity S]
//
// Walks through the full public API: synthetic dataset, model zoo,
// NDSNN method, trainer, and the per-epoch trace.
#include <cstdio>

#include "core/experiment.hpp"
#include "util/cli.hpp"
#include "util/logging.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  ndsnn::util::set_log_level(ndsnn::util::LogLevel::kWarn);
  const ndsnn::util::Cli cli(argc, argv);

  // 1. Describe the experiment: a width-scaled spiking LeNet-5 on the
  //    synthetic CIFAR-10 stand-in, trained from scratch with NDSNN's
  //    decreasing-nonzeros drop-and-grow schedule.
  ndsnn::core::ExperimentConfig cfg;
  cfg.arch = "lenet5";
  cfg.dataset = "cifar10";
  cfg.method = "ndsnn";
  cfg.sparsity = cli.get_double("--sparsity", 0.9);
  cfg.epochs = cli.get_int("--epochs", 8);
  cfg.train_samples = 320;
  cfg.test_samples = 128;
  cfg.batch_size = 32;
  cfg.model_scale = 1.0;
  cfg.data_scale = 0.5;
  cfg.timesteps = 2;
  cfg.learning_rate = 0.2;

  std::printf("NDSNN quickstart: spiking LeNet-5, target sparsity %.0f%%, T=%lld\n\n",
              100.0 * cfg.sparsity, static_cast<long long>(cfg.timesteps));

  // 2. Build the pieces (also available individually -- see
  //    examples/method_comparison.cpp for the long form).
  ndsnn::core::Experiment exp = ndsnn::core::build_experiment(cfg);
  std::printf("model: %lld prunable weights across %zu parameter tensors\n",
              static_cast<long long>(exp.network->prunable_weight_count()),
              exp.network->params().size());

  // 3. Train.
  ndsnn::core::Trainer trainer(*exp.network, *exp.method, *exp.train_set, *exp.test_set,
                               exp.trainer);
  const ndsnn::core::TrainResult result = trainer.run();

  // 4. Inspect the trace: sparsity ramps up while accuracy climbs.
  ndsnn::util::Table table({"epoch", "train loss", "train acc %", "test acc %",
                            "sparsity", "spike rate"});
  for (std::size_t e = 0; e < result.epochs.size(); ++e) {
    const auto& s = result.epochs[e];
    table.add_row({std::to_string(e), ndsnn::util::fmt(s.train_loss, 3),
                   ndsnn::util::fmt(s.train_acc), ndsnn::util::fmt(s.test_acc),
                   ndsnn::util::fmt(s.sparsity, 3), ndsnn::util::fmt(s.spike_rate, 3)});
  }
  table.print();
  std::printf("\nbest test accuracy: %.2f%% at %.1f%% sparsity (%.1fs)\n",
              result.best_test_acc, 100.0 * result.final_sparsity, result.wall_seconds);
  return 0;
}
