// Schedule explorer: visualize how Eq. 4 (cubic sparsity ramp) and Eq. 5
// (cosine death rate) interact, and how ERK distributes sparsity across
// the layers of the real architectures -- without any training.
#include <cstdio>

#include "nn/models/zoo.hpp"
#include "sparse/distribution.hpp"
#include "sparse/schedule.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  const ndsnn::util::Cli cli(argc, argv);
  const double theta_i = cli.get_double("--initial", 0.5);
  const double theta_f = cli.get_double("--final", 0.95);
  const int64_t rounds = cli.get_int("--rounds", 20);
  const std::string arch = cli.get_string("--arch", "resnet19");

  // 1. The two schedules over training (Eq. 4 and Eq. 5).
  std::printf("NDSNN schedules: theta %.2f -> %.2f over %lld rounds\n\n", theta_i, theta_f,
              static_cast<long long>(rounds));
  ndsnn::sparse::SparsityRamp ramp(theta_i, theta_f, 0, 1, rounds);
  ndsnn::sparse::DeathRateSchedule death(0.5, 0.05, 0, 1, rounds);

  ndsnn::util::Table sched({"round", "sparsity (Eq.4)", "death rate (Eq.5)",
                            "drop", "grow", "active"});
  const int64_t n = 100000;
  auto active = static_cast<int64_t>((1.0 - theta_i) * n);
  for (int64_t q = 0; q <= rounds; ++q) {
    const auto counts =
        ndsnn::sparse::drop_grow_counts(n, active, death.at(q), ramp.at(q));
    sched.add_row({std::to_string(q), ndsnn::util::fmt(ramp.at(q), 3),
                   ndsnn::util::fmt(death.at(q), 3), std::to_string(counts.drop),
                   std::to_string(counts.grow),
                   std::to_string(counts.active_after + counts.grow)});
    active = counts.active_after + counts.grow;
  }
  sched.print();

  // 2. ERK distribution over the chosen architecture's prunable layers.
  ndsnn::nn::ModelSpec spec;
  spec.num_classes = 10;
  spec.image_size = 32;
  spec.width_scale = 0.25;  // keep construction fast
  auto net = ndsnn::nn::make_model(arch, spec);

  std::vector<ndsnn::sparse::LayerDims> dims;
  std::vector<std::string> names;
  for (const auto& p : net->params()) {
    if (!p.prunable) continue;
    dims.push_back(ndsnn::sparse::LayerDims::from_shape(p.value->shape()));
    names.push_back(p.name);
  }
  const auto erk = ndsnn::sparse::erk_distribution(dims, theta_f);
  const auto uni = ndsnn::sparse::uniform_distribution(dims, theta_f);

  std::printf("\nERK vs uniform layer sparsities for %s at %.0f%% overall:\n", arch.c_str(),
              100.0 * theta_f);
  ndsnn::util::Table dist({"layer", "weights", "ERK sparsity", "uniform"});
  for (std::size_t i = 0; i < dims.size(); ++i) {
    dist.add_row({names[i], std::to_string(dims[i].numel), ndsnn::util::fmt(erk[i], 3),
                  ndsnn::util::fmt(uni[i], 3)});
  }
  dist.print();
  std::printf("\noverall check: ERK-weighted sparsity = %.4f (target %.4f)\n",
              ndsnn::sparse::overall_sparsity(dims, erk), theta_f);
  return 0;
}
