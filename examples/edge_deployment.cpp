// Edge deployment: train sparse with NDSNN, export to CSR, and report the
// memory footprint at the bit-widths of real neuromorphic targets
// (Loihi 8-bit, HICANN 4-bit, FPGA 16-bit -- Sec. III-D).
#include <cstdio>

#include "core/experiment.hpp"
#include "sparse/csr.hpp"
#include "sparse/memory_model.hpp"
#include "util/cli.hpp"
#include "util/logging.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  ndsnn::util::set_log_level(ndsnn::util::LogLevel::kWarn);
  const ndsnn::util::Cli cli(argc, argv);

  ndsnn::core::ExperimentConfig cfg;
  cfg.arch = "lenet5";
  cfg.dataset = "cifar10";
  cfg.method = "ndsnn";
  cfg.sparsity = cli.get_double("--sparsity", 0.95);
  cfg.epochs = cli.get_int("--epochs", 8);
  cfg.train_samples = 320;
  cfg.test_samples = 128;
  cfg.model_scale = 1.0;
  cfg.data_scale = 0.5;
  cfg.timesteps = 2;
  cfg.learning_rate = 0.2;

  std::printf("edge deployment: training sparse SNN (target %.0f%%)...\n",
              100.0 * cfg.sparsity);
  ndsnn::core::Experiment exp = ndsnn::core::build_experiment(cfg);
  ndsnn::core::Trainer trainer(*exp.network, *exp.method, *exp.train_set, *exp.test_set,
                               exp.trainer);
  const auto result = trainer.run();
  std::printf("trained: %.2f%% accuracy at %.1f%% sparsity\n\n", result.best_test_acc,
              100.0 * result.final_sparsity);

  // Export every prunable weight tensor to CSR (reshaping conv weights to
  // [F, C*K*K] as in Sec. III-D) and account the storage.
  std::printf("per-layer CSR export:\n");
  ndsnn::util::Table table({"layer", "shape", "nnz", "sparsity", "dense KB (fp32)",
                            "CSR KB (8b w / 16b idx)"});
  int64_t total_dense_bits = 0, total_csr_bits = 0;
  for (const auto& p : exp.network->params()) {
    if (!p.prunable) continue;
    const auto& w = *p.value;
    const auto csr = ndsnn::sparse::Csr::from_weights(w);
    const int64_t dense_bits = w.numel() * 32;
    const int64_t csr_bits = csr.storage_bits(/*value_bits=*/8, /*index_bits=*/16);
    total_dense_bits += dense_bits;
    total_csr_bits += csr_bits;
    table.add_row({p.name, w.shape().str(), std::to_string(csr.nnz()),
                   ndsnn::util::fmt(csr.sparsity(), 3),
                   ndsnn::util::fmt(static_cast<double>(dense_bits) / 8192.0, 1),
                   ndsnn::util::fmt(static_cast<double>(csr_bits) / 8192.0, 1)});
  }
  table.print();
  std::printf("\ntotal: %.1f KB dense fp32 -> %.1f KB CSR (%.1fx smaller)\n",
              static_cast<double>(total_dense_bits) / 8192.0,
              static_cast<double>(total_csr_bits) / 8192.0,
              static_cast<double>(total_dense_bits) / static_cast<double>(total_csr_bits));

  // Footprint on the platforms the paper cites.
  std::printf("\ninference footprint by platform (Sec. III-D bit widths):\n");
  ndsnn::util::Table plat({"platform", "weight bits", "footprint KB"});
  for (const auto& [name, bits] : std::vector<std::pair<const char*, int64_t>>{
           {"Intel Loihi", 8}, {"HICANN (mixed-signal)", 4}, {"FPGA (SyncNN)", 16}}) {
    int64_t total = 0;
    for (const auto& p : exp.network->params()) {
      if (!p.prunable) continue;
      total += ndsnn::sparse::Csr::from_weights(*p.value).storage_bits(bits, 16);
    }
    plat.add_row({name, std::to_string(bits),
                  ndsnn::util::fmt(static_cast<double>(total) / 8192.0, 1)});
  }
  plat.print();
  return 0;
}
