// Learning-rate schedules (cosine annealing per Loshchilov & Hutter,
// used by the paper for both the LR and the death rate; plus step decay).
#pragma once

#include <cstdint>

namespace ndsnn::opt {

/// Interface: LR as a function of the epoch index.
class LrScheduler {
 public:
  virtual ~LrScheduler() = default;
  [[nodiscard]] virtual double lr_at(int64_t epoch) const = 0;
};

/// lr(e) = lr_min + 0.5 (lr0 - lr_min)(1 + cos(pi e / total)).
class CosineLr final : public LrScheduler {
 public:
  CosineLr(double initial_lr, int64_t total_epochs, double min_lr = 0.0);
  [[nodiscard]] double lr_at(int64_t epoch) const override;

 private:
  double lr0_, lr_min_;
  int64_t total_;
};

/// lr(e) = lr0 * gamma^(floor(e / step)).
class StepLr final : public LrScheduler {
 public:
  StepLr(double initial_lr, int64_t step_epochs, double gamma);
  [[nodiscard]] double lr_at(int64_t epoch) const override;

 private:
  double lr0_, gamma_;
  int64_t step_;
};

}  // namespace ndsnn::opt
