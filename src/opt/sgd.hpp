// SGD with momentum and weight decay (paper setup: momentum 0.9,
// weight decay 5e-4, initial LR 0.3).
#pragma once

#include <vector>

#include "nn/layer.hpp"

namespace ndsnn::opt {

struct SgdConfig {
  double learning_rate = 0.3;
  double momentum = 0.9;
  double weight_decay = 5e-4;
  /// Skip weight decay on non-prunable params (biases / BN), standard
  /// practice and what SpikingJelly models use.
  bool decay_prunable_only = true;

  void validate() const;
};

/// Momentum SGD over ParamRef views. Velocity buffers are keyed by the
/// parameter order, so the ParamRef list must be stable across steps
/// (it is: layer structure never changes during training).
class Sgd {
 public:
  Sgd(std::vector<nn::ParamRef> params, SgdConfig config);

  /// v = mu*v + (grad + wd*w);  w -= lr * v
  void step();

  /// Zero all gradients.
  void zero_grad();

  void set_learning_rate(double lr);
  [[nodiscard]] double learning_rate() const { return config_.learning_rate; }
  [[nodiscard]] const std::vector<nn::ParamRef>& params() const { return params_; }

 private:
  std::vector<nn::ParamRef> params_;
  SgdConfig config_;
  std::vector<tensor::Tensor> velocity_;
};

}  // namespace ndsnn::opt
