#include "opt/sgd.hpp"

#include <stdexcept>

namespace ndsnn::opt {

void SgdConfig::validate() const {
  if (learning_rate <= 0.0) throw std::invalid_argument("SgdConfig: learning_rate must be > 0");
  if (momentum < 0.0 || momentum >= 1.0) {
    throw std::invalid_argument("SgdConfig: momentum must be in [0, 1)");
  }
  if (weight_decay < 0.0) throw std::invalid_argument("SgdConfig: weight_decay must be >= 0");
}

Sgd::Sgd(std::vector<nn::ParamRef> params, SgdConfig config)
    : params_(std::move(params)), config_(config) {
  config_.validate();
  velocity_.reserve(params_.size());
  for (const auto& p : params_) {
    if (p.value == nullptr || p.grad == nullptr) {
      throw std::invalid_argument("Sgd: null parameter/grad pointer for " + p.name);
    }
    velocity_.emplace_back(p.value->shape());
  }
}

void Sgd::step() {
  const auto lr = static_cast<float>(config_.learning_rate);
  const auto mu = static_cast<float>(config_.momentum);
  const auto wd = static_cast<float>(config_.weight_decay);
  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto& p = params_[i];
    auto& v = velocity_[i];
    const bool decay = wd > 0.0F && (!config_.decay_prunable_only || p.prunable);
    float* w = p.value->data();
    const float* g = p.grad->data();
    float* vel = v.data();
    const int64_t n = p.value->numel();
    for (int64_t j = 0; j < n; ++j) {
      const float grad = g[j] + (decay ? wd * w[j] : 0.0F);
      vel[j] = mu * vel[j] + grad;
      w[j] -= lr * vel[j];
    }
  }
}

void Sgd::zero_grad() {
  for (const auto& p : params_) p.grad->zero();
}

void Sgd::set_learning_rate(double lr) {
  if (lr <= 0.0) throw std::invalid_argument("Sgd::set_learning_rate: lr must be > 0");
  config_.learning_rate = lr;
}

}  // namespace ndsnn::opt
