#include "opt/lr_scheduler.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace ndsnn::opt {

CosineLr::CosineLr(double initial_lr, int64_t total_epochs, double min_lr)
    : lr0_(initial_lr), lr_min_(min_lr), total_(total_epochs) {
  if (initial_lr <= 0.0 || min_lr < 0.0 || min_lr > initial_lr) {
    throw std::invalid_argument("CosineLr: need 0 <= min_lr <= initial_lr, initial_lr > 0");
  }
  if (total_epochs < 1) throw std::invalid_argument("CosineLr: total_epochs must be >= 1");
}

double CosineLr::lr_at(int64_t epoch) const {
  double progress = static_cast<double>(epoch) / static_cast<double>(total_);
  progress = std::min(std::max(progress, 0.0), 1.0);
  return lr_min_ + 0.5 * (lr0_ - lr_min_) * (1.0 + std::cos(std::numbers::pi * progress));
}

StepLr::StepLr(double initial_lr, int64_t step_epochs, double gamma)
    : lr0_(initial_lr), gamma_(gamma), step_(step_epochs) {
  if (initial_lr <= 0.0) throw std::invalid_argument("StepLr: initial_lr must be > 0");
  if (step_epochs < 1) throw std::invalid_argument("StepLr: step_epochs must be >= 1");
  if (gamma <= 0.0 || gamma > 1.0) throw std::invalid_argument("StepLr: gamma must be in (0, 1]");
}

double StepLr::lr_at(int64_t epoch) const {
  const int64_t k = epoch < 0 ? 0 : epoch / step_;
  return lr0_ * std::pow(gamma_, static_cast<double>(k));
}

}  // namespace ndsnn::opt
