#include "serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <thread>

#include "util/fault_injection.hpp"
#include "util/logging.hpp"
#include "util/metrics.hpp"

namespace ndsnn::serve {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

/// Decrement-on-every-exit for the drain bookkeeping: a handler that
/// throws mid-response must not leave drain() waiting forever on a
/// phantom in-flight request.
/// Internal marker: a frame asked for new work while drain() was
/// refusing it. Caught in the handler and answered Status::kShedding;
/// deliberately not a std::exception so no generic catch can eat it.
struct DrainShed {};

class ScopedCount {
 public:
  explicit ScopedCount(std::atomic<int64_t>& counter) : counter_(counter) {
    counter_.fetch_add(1);
  }
  ~ScopedCount() { counter_.fetch_sub(1); }
  ScopedCount(const ScopedCount&) = delete;
  ScopedCount& operator=(const ScopedCount&) = delete;

 private:
  std::atomic<int64_t>& counter_;
};

}  // namespace

Server::Server(ModelRegistry& registry, const ServerOptions& opts)
    : registry_(registry), opts_(opts) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw_errno("serve: socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(opts.port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int saved = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    errno = saved;
    throw_errno("serve: bind");
  }
  if (::listen(listen_fd_, 64) != 0) {
    const int saved = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    errno = saved;
    throw_errno("serve: listen");
  }
  // Read the port back: with opts.port == 0 the kernel picked one.
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    throw_errno("serve: getsockname");
  }
  port_ = ntohs(bound.sin_port);
}

Server::~Server() {
  stop();
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void Server::start() {
  if (acceptor_.joinable()) return;
  acceptor_ = std::thread([this] { accept_loop(); });
}

void Server::stop() {
  if (stopping_.exchange(true)) {
    if (acceptor_.joinable()) acceptor_.join();
    return;
  }
  // Unblock accept() and every connection's blocking read.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  {
    std::lock_guard<std::mutex> lk(conn_mu_);
    for (const auto& conn : conns_) {
      if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RDWR);
    }
  }
  if (acceptor_.joinable()) acceptor_.join();
  std::vector<std::unique_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lk(conn_mu_);
    conns.swap(conns_);
  }
  for (auto& conn : conns) {
    if (conn->thread.joinable()) conn->thread.join();
  }
}

bool Server::drain(std::chrono::milliseconds deadline) {
  draining_.store(true);
  // Stop accepting right away: shutting the listen socket down pops the
  // acceptor out of accept() without tearing live connections down.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  const auto until = std::chrono::steady_clock::now() + deadline;
  bool settled = false;
  for (;;) {
    if (inflight_requests_.load() == 0 && open_wire_streams_.load() == 0) {
      settled = true;
      break;
    }
    if (std::chrono::steady_clock::now() >= until) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  // Either way stop() now force-closes whatever remains; when settled,
  // there is nothing left to force.
  stop();
  return settled;
}

std::size_t Server::tracked_connections() const {
  std::lock_guard<std::mutex> lk(conn_mu_);
  return conns_.size();
}

void Server::reap_finished() {
  std::vector<std::unique_ptr<Connection>> finished;
  {
    std::lock_guard<std::mutex> lk(conn_mu_);
    auto keep = conns_.begin();
    for (auto& conn : conns_) {
      if (conn->done.load(std::memory_order_acquire)) {
        finished.push_back(std::move(conn));
      } else {
        *keep++ = std::move(conn);
      }
    }
    conns_.erase(keep, conns_.end());
  }
  // Join outside the lock: a done handler is past its last conn_mu_
  // critical section, so these joins return ~immediately and can never
  // deadlock against a handler waiting for the mutex.
  for (auto& conn : finished) {
    if (conn->thread.joinable()) conn->thread.join();
  }
}

void Server::accept_loop() {
  while (!stopping_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    // Reap between accepts: without this, a long-running server leaks
    // one joinable zombie thread per connection it ever served.
    reap_finished();
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listen socket shut down (stop()) or fatal — exit either way
    }
    if (util::fault::should_fail("server.accept")) {
      // As if the kernel ran out of fds / the handshake died: the
      // acceptor must shrug and keep accepting.
      util::MetricsRegistry::global().counter("serve.accept_faults").add();
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (opts_.conn_timeout_ms > 0) {
      timeval tv{};
      tv.tv_sec = opts_.conn_timeout_ms / 1000;
      tv.tv_usec = static_cast<suseconds_t>((opts_.conn_timeout_ms % 1000) * 1000);
      ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
      ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    }
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    Connection* raw = conn.get();
    // Publish and spawn under one critical section, re-checking
    // stopping_ inside it: stop() flips the flag before walking conns_
    // to shut their sockets down, so either this connection is refused
    // here or stop() sees it published — a socket can never slip
    // between the two and leave its handler blocked forever.
    std::lock_guard<std::mutex> lk(conn_mu_);
    if (stopping_.load()) {
      ::close(fd);
      break;
    }
    connections_.fetch_add(1);
    conns_.push_back(std::move(conn));
    raw->thread = std::thread([this, raw] { handle_connection(*raw); });
  }
}

void Server::handle_connection(Connection& conn) {
  const int fd = conn.fd;
  std::vector<uint8_t> payload;
  // The connection's open stream, if any: holding the ServedModel
  // shared_ptr keeps the executor (and its StreamSession) alive even if
  // the registry evicts the model mid-stream.
  std::shared_ptr<ServedModel> stream_model;
  uint64_t stream_id = 0;
  try {
    while (!stopping_.load()) {
      const RecvStatus rs = recv_frame(fd, payload);
      if (rs == RecvStatus::kEof) {
        util::MetricsRegistry::global().counter("serve.conn_eof").add();
        break;
      }
      if (rs == RecvStatus::kTimeout) {
        // Idle past --conn-timeout-ms at a frame boundary: the socket is
        // still healthy, so tell the client why before reaping it.
        util::MetricsRegistry::global().counter("serve.conn_timeout").add();
        try {
          ResponseFrame timeout;
          timeout.status = Status::kTimeout;
          timeout.message = "serve: connection idle past deadline";
          send_frame(fd, encode_response(timeout));
        } catch (const WireError&) {
          // Best effort — the reap happens either way.
        }
        break;
      }
      ResponseFrame resp;
      const ScopedCount inflight(inflight_requests_);
      try {
        const FrameHeader hdr = peek_header(payload.data(), payload.size());
        if (hdr.kind == kKindStreamOpen) {
          const StreamOpenFrame open =
              decode_stream_open(payload.data(), payload.size());
          if (stream_model) {
            throw std::invalid_argument(
                "serve: a stream is already open on this connection");
          }
          if (draining_.load()) {
            throw DrainShed();
          }
          const std::string& name =
              open.model.empty() ? opts_.default_model : open.model;
          auto model = registry_.acquire(name);
          const uint64_t sid = model->executor().open_stream();
          stream_model = std::move(model);
          stream_id = sid;
          open_wire_streams_.fetch_add(1);
          resp.status = Status::kOk;
          resp.logits = tensor::Tensor(tensor::Shape{1});  // bare ack
        } else if (hdr.kind == kKindStreamStep) {
          const StreamStepFrame step =
              decode_stream_step(payload.data(), payload.size());
          if (!stream_model) {
            throw std::invalid_argument("serve: stream-step before stream-open");
          }
          resp.logits = stream_model->executor()
                            .submit_stream(stream_id, step.frame)
                            .get()
                            .logits;
          resp.status = Status::kOk;
        } else if (hdr.kind == kKindStreamClose) {
          decode_stream_close(payload.data(), payload.size());
          if (!stream_model) {
            throw std::invalid_argument(
                "serve: stream-close without an open stream");
          }
          stream_model->executor().close_stream(stream_id);
          stream_model.reset();
          stream_id = 0;
          open_wire_streams_.fetch_sub(1);
          resp.status = Status::kOk;
          resp.logits = tensor::Tensor(tensor::Shape{1});  // bare ack
        } else {
          // v1 one-shot path; decode_request validates version/kind, so
          // an unknown kind answers kError here without dropping the
          // connection (the framing itself was intact).
          if (draining_.load()) {
            throw DrainShed();
          }
          const RequestFrame req = decode_request(payload.data(), payload.size());
          const std::string& name =
              req.model.empty() ? opts_.default_model : req.model;
          if (req.slo_class > static_cast<uint8_t>(runtime::SloClass::kBatch)) {
            throw std::invalid_argument("serve: unknown SLO class");
          }
          auto model = registry_.acquire(name);
          resp.logits =
              model->executor()
                  .submit(req.batch, static_cast<runtime::SloClass>(req.slo_class))
                  .get();
          resp.status = Status::kOk;
        }
      } catch (const DrainShed&) {
        resp.status = Status::kShedding;
        resp.message = "serve: draining — not accepting new work";
        util::MetricsRegistry::global().counter("serve.drain_shed").add();
      } catch (const runtime::BackpressureError& e) {
        // Must precede the ShedError catch — it subclasses ShedError,
        // and collapsing it to kShed would hide the retry-same-frame
        // contract from the client.
        resp.status = Status::kBackpressure;
        resp.message = e.what();
      } catch (const runtime::ShedError& e) {
        resp.status = Status::kShed;
        resp.message = e.what();
      } catch (const std::exception& e) {
        resp.status = Status::kError;
        resp.message = e.what();
      }
      if (util::fault::should_fail("server.stall")) {
        // A handler wedged before its response: the client's receive
        // deadline, not our goodwill, must bound the wait.
        std::this_thread::sleep_for(std::chrono::milliseconds(25));
      }
      // Count before the bytes go out: a client that has seen the
      // response must also see it counted (tests rely on this order).
      requests_served_.fetch_add(1);
      util::MetricsRegistry::global().counter("serve.requests").add();
      send_frame(fd, encode_response(resp));
    }
  } catch (const WireTimeout& e) {
    // Peer stalled mid-frame (reading or writing): the stream cannot be
    // re-synced, so disconnect. Counted apart from protocol errors.
    util::MetricsRegistry::global().counter("serve.conn_timeout").add();
    util::log_debug() << "serve: closing stalled connection: " << e.what();
  } catch (const WireError& e) {
    // Malformed stream or peer vanished mid-frame: nothing to answer.
    util::MetricsRegistry::global().counter("serve.conn_error").add();
    util::log_debug() << "serve: closing connection: " << e.what();
  }
  // A client that vanished (or was shut down) with a stream open must
  // not leak the executor-side session.
  if (stream_model) {
    try {
      stream_model->executor().close_stream(stream_id);
    } catch (const std::exception& e) {
      util::log_debug() << "serve: stream teardown: " << e.what();
    }
    open_wire_streams_.fetch_sub(1);
  }
  {
    // Clear the record BEFORE closing: once close() returns the kernel
    // may recycle this fd number for an unrelated descriptor (or a new
    // connection), and a concurrent stop() walking conns_ must never
    // shut that stranger down.
    std::lock_guard<std::mutex> lk(conn_mu_);
    conn.fd = -1;
  }
  ::close(fd);
  // Last touch of the record: after this flips, the reaper may join the
  // thread and destroy `conn`.
  conn.done.store(true, std::memory_order_release);
}

namespace {

ResponseFrame await_response(int fd) {
  std::vector<uint8_t> payload;
  if (recv_frame(fd, payload) != RecvStatus::kFrame) {
    throw WireError("serve: server closed before responding");
  }
  return decode_response(payload.data(), payload.size());
}

}  // namespace

ResponseFrame round_trip(int fd, const RequestFrame& req) {
  send_frame(fd, encode_request(req));
  return await_response(fd);
}

ResponseFrame stream_open(int fd, const std::string& model) {
  send_frame(fd, encode_stream_open(StreamOpenFrame{model}));
  return await_response(fd);
}

ResponseFrame stream_step(int fd, const tensor::Tensor& frame) {
  send_frame(fd, encode_stream_step(StreamStepFrame{frame}));
  return await_response(fd);
}

ResponseFrame stream_close(int fd) {
  send_frame(fd, encode_stream_close());
  return await_response(fd);
}

ResponseFrame stream_step_retry(int fd, const tensor::Tensor& frame,
                                int max_retries, double base_backoff_ms,
                                uint64_t seed) {
  ResponseFrame resp = stream_step(fd, frame);
  for (int attempt = 0; attempt < max_retries; ++attempt) {
    if (resp.status != Status::kBackpressure) return resp;
    // Jitter to 50-150% of the exponential step, deterministically from
    // the caller's seed (splitmix64 finalizer) so tests can replay it.
    uint64_t z = seed + 0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(attempt + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    const double jitter = 0.5 + static_cast<double>(z >> 11) * 0x1.0p-53;
    const double delay_ms =
        base_backoff_ms * static_cast<double>(1 << attempt) * jitter;
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(delay_ms));
    resp = stream_step(fd, frame);
  }
  return resp;
}

int connect_local(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("serve: socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("serve: connect");
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

}  // namespace ndsnn::serve
