#include "serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "util/logging.hpp"
#include "util/metrics.hpp"

namespace ndsnn::serve {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

}  // namespace

Server::Server(ModelRegistry& registry, const ServerOptions& opts)
    : registry_(registry), opts_(opts) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw_errno("serve: socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(opts.port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int saved = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    errno = saved;
    throw_errno("serve: bind");
  }
  if (::listen(listen_fd_, 64) != 0) {
    const int saved = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    errno = saved;
    throw_errno("serve: listen");
  }
  // Read the port back: with opts.port == 0 the kernel picked one.
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    throw_errno("serve: getsockname");
  }
  port_ = ntohs(bound.sin_port);
}

Server::~Server() {
  stop();
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void Server::start() {
  if (acceptor_.joinable()) return;
  acceptor_ = std::thread([this] { accept_loop(); });
}

void Server::stop() {
  if (stopping_.exchange(true)) {
    if (acceptor_.joinable()) acceptor_.join();
    return;
  }
  // Unblock accept() and every connection's blocking read.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  {
    std::lock_guard<std::mutex> lk(conn_mu_);
    for (const int fd : conn_fds_) {
      if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
    }
  }
  if (acceptor_.joinable()) acceptor_.join();
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lk(conn_mu_);
    threads.swap(conn_threads_);
  }
  for (auto& t : threads) t.join();
}

void Server::accept_loop() {
  while (!stopping_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listen socket shut down (stop()) or fatal — exit either way
    }
    if (stopping_.load()) {
      ::close(fd);
      break;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    connections_.fetch_add(1);
    std::lock_guard<std::mutex> lk(conn_mu_);
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back([this, fd] { handle_connection(fd); });
  }
}

void Server::handle_connection(int fd) {
  std::vector<uint8_t> payload;
  try {
    while (!stopping_.load() && recv_frame(fd, payload)) {
      ResponseFrame resp;
      try {
        const RequestFrame req = decode_request(payload.data(), payload.size());
        const std::string& name =
            req.model.empty() ? opts_.default_model : req.model;
        if (req.slo_class > static_cast<uint8_t>(runtime::SloClass::kBatch)) {
          throw std::invalid_argument("serve: unknown SLO class");
        }
        auto model = registry_.acquire(name);
        resp.logits = model->executor()
                          .submit(req.batch, static_cast<runtime::SloClass>(req.slo_class))
                          .get();
        resp.status = Status::kOk;
      } catch (const runtime::ShedError& e) {
        resp.status = Status::kShed;
        resp.message = e.what();
      } catch (const std::exception& e) {
        resp.status = Status::kError;
        resp.message = e.what();
      }
      // Count before the bytes go out: a client that has seen the
      // response must also see it counted (tests rely on this order).
      requests_served_.fetch_add(1);
      util::MetricsRegistry::global().counter("serve.requests").add();
      send_frame(fd, encode_response(resp));
    }
  } catch (const WireError& e) {
    // Malformed stream or peer vanished mid-frame: nothing to answer.
    util::log_debug() << "serve: closing connection: " << e.what();
  }
  ::close(fd);
  std::lock_guard<std::mutex> lk(conn_mu_);
  for (int& recorded : conn_fds_) {
    if (recorded == fd) recorded = -1;  // stop() must not shut down a reused fd
  }
}

ResponseFrame round_trip(int fd, const RequestFrame& req) {
  send_frame(fd, encode_request(req));
  std::vector<uint8_t> payload;
  if (!recv_frame(fd, payload)) {
    throw WireError("serve: server closed before responding");
  }
  return decode_response(payload.data(), payload.size());
}

int connect_local(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("serve: socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("serve: connect");
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

}  // namespace ndsnn::serve
