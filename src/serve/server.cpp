#include "serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "util/logging.hpp"
#include "util/metrics.hpp"

namespace ndsnn::serve {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

}  // namespace

Server::Server(ModelRegistry& registry, const ServerOptions& opts)
    : registry_(registry), opts_(opts) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw_errno("serve: socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(opts.port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int saved = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    errno = saved;
    throw_errno("serve: bind");
  }
  if (::listen(listen_fd_, 64) != 0) {
    const int saved = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    errno = saved;
    throw_errno("serve: listen");
  }
  // Read the port back: with opts.port == 0 the kernel picked one.
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    throw_errno("serve: getsockname");
  }
  port_ = ntohs(bound.sin_port);
}

Server::~Server() {
  stop();
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void Server::start() {
  if (acceptor_.joinable()) return;
  acceptor_ = std::thread([this] { accept_loop(); });
}

void Server::stop() {
  if (stopping_.exchange(true)) {
    if (acceptor_.joinable()) acceptor_.join();
    return;
  }
  // Unblock accept() and every connection's blocking read.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  {
    std::lock_guard<std::mutex> lk(conn_mu_);
    for (const auto& conn : conns_) {
      if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RDWR);
    }
  }
  if (acceptor_.joinable()) acceptor_.join();
  std::vector<std::unique_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lk(conn_mu_);
    conns.swap(conns_);
  }
  for (auto& conn : conns) {
    if (conn->thread.joinable()) conn->thread.join();
  }
}

std::size_t Server::tracked_connections() const {
  std::lock_guard<std::mutex> lk(conn_mu_);
  return conns_.size();
}

void Server::reap_finished() {
  std::vector<std::unique_ptr<Connection>> finished;
  {
    std::lock_guard<std::mutex> lk(conn_mu_);
    auto keep = conns_.begin();
    for (auto& conn : conns_) {
      if (conn->done.load(std::memory_order_acquire)) {
        finished.push_back(std::move(conn));
      } else {
        *keep++ = std::move(conn);
      }
    }
    conns_.erase(keep, conns_.end());
  }
  // Join outside the lock: a done handler is past its last conn_mu_
  // critical section, so these joins return ~immediately and can never
  // deadlock against a handler waiting for the mutex.
  for (auto& conn : finished) {
    if (conn->thread.joinable()) conn->thread.join();
  }
}

void Server::accept_loop() {
  while (!stopping_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    // Reap between accepts: without this, a long-running server leaks
    // one joinable zombie thread per connection it ever served.
    reap_finished();
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listen socket shut down (stop()) or fatal — exit either way
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    Connection* raw = conn.get();
    // Publish and spawn under one critical section, re-checking
    // stopping_ inside it: stop() flips the flag before walking conns_
    // to shut their sockets down, so either this connection is refused
    // here or stop() sees it published — a socket can never slip
    // between the two and leave its handler blocked forever.
    std::lock_guard<std::mutex> lk(conn_mu_);
    if (stopping_.load()) {
      ::close(fd);
      break;
    }
    connections_.fetch_add(1);
    conns_.push_back(std::move(conn));
    raw->thread = std::thread([this, raw] { handle_connection(*raw); });
  }
}

void Server::handle_connection(Connection& conn) {
  const int fd = conn.fd;
  std::vector<uint8_t> payload;
  // The connection's open stream, if any: holding the ServedModel
  // shared_ptr keeps the executor (and its StreamSession) alive even if
  // the registry evicts the model mid-stream.
  std::shared_ptr<ServedModel> stream_model;
  uint64_t stream_id = 0;
  try {
    while (!stopping_.load() && recv_frame(fd, payload)) {
      ResponseFrame resp;
      try {
        const FrameHeader hdr = peek_header(payload.data(), payload.size());
        if (hdr.kind == kKindStreamOpen) {
          const StreamOpenFrame open =
              decode_stream_open(payload.data(), payload.size());
          if (stream_model) {
            throw std::invalid_argument(
                "serve: a stream is already open on this connection");
          }
          const std::string& name =
              open.model.empty() ? opts_.default_model : open.model;
          auto model = registry_.acquire(name);
          const uint64_t sid = model->executor().open_stream();
          stream_model = std::move(model);
          stream_id = sid;
          resp.status = Status::kOk;
          resp.logits = tensor::Tensor(tensor::Shape{1});  // bare ack
        } else if (hdr.kind == kKindStreamStep) {
          const StreamStepFrame step =
              decode_stream_step(payload.data(), payload.size());
          if (!stream_model) {
            throw std::invalid_argument("serve: stream-step before stream-open");
          }
          resp.logits = stream_model->executor()
                            .submit_stream(stream_id, step.frame)
                            .get()
                            .logits;
          resp.status = Status::kOk;
        } else if (hdr.kind == kKindStreamClose) {
          decode_stream_close(payload.data(), payload.size());
          if (!stream_model) {
            throw std::invalid_argument(
                "serve: stream-close without an open stream");
          }
          stream_model->executor().close_stream(stream_id);
          stream_model.reset();
          stream_id = 0;
          resp.status = Status::kOk;
          resp.logits = tensor::Tensor(tensor::Shape{1});  // bare ack
        } else {
          // v1 one-shot path; decode_request validates version/kind, so
          // an unknown kind answers kError here without dropping the
          // connection (the framing itself was intact).
          const RequestFrame req = decode_request(payload.data(), payload.size());
          const std::string& name =
              req.model.empty() ? opts_.default_model : req.model;
          if (req.slo_class > static_cast<uint8_t>(runtime::SloClass::kBatch)) {
            throw std::invalid_argument("serve: unknown SLO class");
          }
          auto model = registry_.acquire(name);
          resp.logits =
              model->executor()
                  .submit(req.batch, static_cast<runtime::SloClass>(req.slo_class))
                  .get();
          resp.status = Status::kOk;
        }
      } catch (const runtime::ShedError& e) {
        resp.status = Status::kShed;
        resp.message = e.what();
      } catch (const std::exception& e) {
        resp.status = Status::kError;
        resp.message = e.what();
      }
      // Count before the bytes go out: a client that has seen the
      // response must also see it counted (tests rely on this order).
      requests_served_.fetch_add(1);
      util::MetricsRegistry::global().counter("serve.requests").add();
      send_frame(fd, encode_response(resp));
    }
  } catch (const WireError& e) {
    // Malformed stream or peer vanished mid-frame: nothing to answer.
    util::log_debug() << "serve: closing connection: " << e.what();
  }
  // A client that vanished (or was shut down) with a stream open must
  // not leak the executor-side session.
  if (stream_model) {
    try {
      stream_model->executor().close_stream(stream_id);
    } catch (const std::exception& e) {
      util::log_debug() << "serve: stream teardown: " << e.what();
    }
  }
  {
    // Clear the record BEFORE closing: once close() returns the kernel
    // may recycle this fd number for an unrelated descriptor (or a new
    // connection), and a concurrent stop() walking conns_ must never
    // shut that stranger down.
    std::lock_guard<std::mutex> lk(conn_mu_);
    conn.fd = -1;
  }
  ::close(fd);
  // Last touch of the record: after this flips, the reaper may join the
  // thread and destroy `conn`.
  conn.done.store(true, std::memory_order_release);
}

namespace {

ResponseFrame await_response(int fd) {
  std::vector<uint8_t> payload;
  if (!recv_frame(fd, payload)) {
    throw WireError("serve: server closed before responding");
  }
  return decode_response(payload.data(), payload.size());
}

}  // namespace

ResponseFrame round_trip(int fd, const RequestFrame& req) {
  send_frame(fd, encode_request(req));
  return await_response(fd);
}

ResponseFrame stream_open(int fd, const std::string& model) {
  send_frame(fd, encode_stream_open(StreamOpenFrame{model}));
  return await_response(fd);
}

ResponseFrame stream_step(int fd, const tensor::Tensor& frame) {
  send_frame(fd, encode_stream_step(StreamStepFrame{frame}));
  return await_response(fd);
}

ResponseFrame stream_close(int fd) {
  send_frame(fd, encode_stream_close());
  return await_response(fd);
}

int connect_local(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("serve: socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("serve: connect");
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

}  // namespace ndsnn::serve
