// Open-loop Poisson load generator for the serving bench and tests.
//
// Closed-loop driving (submit, wait, submit) can never observe queueing
// collapse: the client self-throttles to the server's pace and p99
// looks flat however overloaded the scheduler is. An open-loop
// generator fires requests at the arrival times of a Poisson process of
// a chosen offered rate, regardless of completions — exactly the
// coordinated-omission-free discipline serving benchmarks need. The
// e2e percentiles come from the executor's own per-request stats window
// (enqueue -> completion), so collection order cannot skew them.
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/batch_executor.hpp"
#include "tensor/tensor.hpp"

namespace ndsnn::serve {

struct LoadgenOptions {
  double offered_rps = 100.0;  ///< mean arrival rate (requests/second)
  int64_t requests = 100;      ///< arrivals to generate
  uint64_t seed = 1;           ///< arrival-process RNG seed
  /// Fraction of arrivals submitted as SloClass::kBatch (0 = all
  /// interactive), drawn from the same seeded stream.
  double batch_fraction = 0.0;
};

/// One measurement point of an offered-load sweep.
struct LoadgenResult {
  double offered_rps = 0.0;
  double achieved_rps = 0.0;  ///< completed / wall duration
  int64_t offered = 0;        ///< arrivals generated
  int64_t completed = 0;      ///< futures that resolved with logits
  int64_t shed = 0;           ///< futures that threw ShedError
  /// Futures that threw anything else (an execution failure, e.g. an
  /// injected executor fault under chaos testing). Kept apart from
  /// `shed`: these were admitted and then died, which is an error
  /// taxonomy difference a soak run must be able to see.
  int64_t failed = 0;
  int64_t slo_violations = 0; ///< from ExecutorStats (admitted, late)
  double duration_s = 0.0;    ///< first submit -> last completion
  /// End-to-end (queue wait + service) percentiles of admitted
  /// requests, from the executor's sliding window.
  double e2e_p50_ms = 0.0;
  double e2e_p95_ms = 0.0;
  double e2e_p99_ms = 0.0;
  double shed_rate = 0.0;          ///< shed / offered
  double violation_rate = 0.0;     ///< slo_violations / completed
};

/// The arrival schedule itself: cumulative exponential inter-arrival
/// gaps (mean 1000/rps ms), deterministic in `seed`. Exposed so tests
/// can pin the process's statistics without running an executor.
[[nodiscard]] std::vector<double> poisson_arrival_times_ms(double rps, int64_t n,
                                                           uint64_t seed);

/// Replay a Poisson arrival schedule against an executor: submit a copy
/// of `sample` at each arrival time (sleeping between arrivals), then
/// wait for every future and fold the executor's stats window into a
/// LoadgenResult. The executor should be freshly constructed so the
/// stats window holds exactly this run.
[[nodiscard]] LoadgenResult run_open_loop(runtime::BatchExecutor& exec,
                                          const tensor::Tensor& sample,
                                          const LoadgenOptions& opts);

}  // namespace ndsnn::serve
