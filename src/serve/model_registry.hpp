// ModelRegistry: multi-model residency for the serving front-end.
//
// Each registered model is a named Loader — a factory that compiles a
// CompiledNetwork from given CompileOptions (typically a thin wrapper
// around CompiledNetwork::from_checkpoint). The registry materialises a
// model lazily on first acquire() into a ServedModel (the plan plus its
// own BatchExecutor) and keeps it resident until the memory budgeter
// pushes it out.
//
// Budgeter: Plan::stored_bytes() of every resident plan is summed
// against mem_budget_bytes. When an acquire() pushes the total over
// budget, the registry walks resident models coldest-first (LRU by
// acquire tick, never the model just acquired) and first *requantises*
// a model still storing fp32 sparse planes — reloads it with
// weight_precision = int8, usually a 4x shrink of the value planes —
// and only evicts outright (drops the ServedModel) once requantising
// is exhausted or insufficient. Eviction is safe mid-flight: callers
// hold a shared_ptr<ServedModel>, so in-flight requests finish on the
// old instance while the registry forgets it; the next acquire()
// reloads from the Loader. When later evictions/requantisations free
// enough headroom, the next acquire() of a requantised model restores
// it to its registered precision (conservatively: only when the fp32
// reload fits without squeezing anyone else, so two hot models can
// never requantise-thrash each other).
//
// Locking: the registry mutex covers only the bookkeeping. Compilation
// (initial load, requantise, restore) runs OUTSIDE the lock behind a
// per-entry `loading` flag — one cold load must not stall requests to
// every other resident model, and concurrent acquires of the same cold
// model wait on a condvar instead of compiling it twice.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "runtime/batch_executor.hpp"
#include "runtime/compiled_network.hpp"

namespace ndsnn::serve {

/// A resident model: the immutable compiled plan plus the executor
/// serving it. Holders keep it alive across registry eviction.
class ServedModel {
 public:
  ServedModel(runtime::CompiledNetwork net, int64_t num_threads,
              const runtime::ExecutorOptions& opts)
      : net_(std::move(net)), exec_(net_, num_threads, opts) {}

  [[nodiscard]] const runtime::CompiledNetwork& plan() const { return net_; }
  [[nodiscard]] runtime::BatchExecutor& executor() { return exec_; }

 private:
  runtime::CompiledNetwork net_;  // must outlive exec_ (declared first)
  runtime::BatchExecutor exec_;
};

struct RegistryOptions {
  /// Total Plan::stored_bytes() budget across resident models;
  /// 0 = unlimited (nothing is ever requantised or evicted).
  int64_t mem_budget_bytes = 0;
  /// Worker-thread budget for each model's BatchExecutor.
  int64_t executor_threads = 1;
  /// Scheduling options for each model's BatchExecutor.
  runtime::ExecutorOptions executor;
};

class ModelRegistry {
 public:
  /// Compiles (or recompiles) the model; the registry passes the
  /// CompileOptions it wants — in particular weight_precision when
  /// requantising a cold model to int8.
  using Loader = std::function<runtime::CompiledNetwork(const runtime::CompileOptions&)>;

  explicit ModelRegistry(const RegistryOptions& opts = {}) : opts_(opts) {}

  /// Register a model under `name`. `base` is the loader's baseline
  /// CompileOptions; the budgeter only ever changes weight_precision.
  /// Throws std::invalid_argument on a duplicate name.
  void add(const std::string& name, Loader loader,
           const runtime::CompileOptions& base = {});

  /// Fetch a model, loading it if it is not resident (restoring its
  /// registered precision first when the budget has headroom for it),
  /// then enforce the memory budget against every *other* resident
  /// model. Compilation happens outside the registry lock, so requests
  /// to other models never stall behind a cold load. Throws
  /// std::out_of_range for unknown names.
  [[nodiscard]] std::shared_ptr<ServedModel> acquire(const std::string& name);

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] bool resident(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> names() const;

  /// Sum of stored_bytes() over resident models.
  [[nodiscard]] int64_t resident_bytes() const;
  /// Models dropped from residency by the budgeter (all-time).
  [[nodiscard]] int64_t evictions() const;
  /// Models reloaded at int8 by the budgeter (all-time).
  [[nodiscard]] int64_t requantisations() const;
  /// Loader invocations, initial loads and requantisations included.
  [[nodiscard]] int64_t loads() const;

 private:
  struct Entry {
    Loader loader;
    runtime::CompileOptions base;  ///< as registered (the restore target)
    runtime::CompileOptions opts;  ///< current (precision may be downgraded)
    std::shared_ptr<ServedModel> model;  ///< null when not resident
    uint64_t last_used = 0;              ///< LRU tick of the last acquire
    bool requantised = false;
    /// stored_bytes() at base precision, recorded on the first full-
    /// precision load; lets the restore check size an fp32 reload
    /// without doing it.
    int64_t full_bytes = 0;
    /// A thread is compiling this entry outside the lock; waiters block
    /// on load_cv_ instead of duplicating the load, and the budgeter
    /// skips the entry.
    bool loading = false;
  };

  /// Load (or reload) an entry with its current options. Caller holds
  /// `lk`; the compile itself runs unlocked behind e.loading, and the
  /// lock is re-held on return (and on throw).
  void load_entry(std::unique_lock<std::mutex>& lk, Entry& e);
  /// Requantise/evict cold models until the budget holds (or only
  /// `keep` is left resident). Caller holds `lk`; requantisation
  /// compiles unlocked via load_entry.
  void enforce_budget(std::unique_lock<std::mutex>& lk, const std::string& keep);
  [[nodiscard]] int64_t resident_bytes_locked() const;

  const RegistryOptions opts_;
  mutable std::mutex mu_;
  std::condition_variable load_cv_;  ///< signalled when an entry's load ends
  std::unordered_map<std::string, Entry> entries_;
  uint64_t tick_ = 0;
  int64_t evictions_ = 0;
  int64_t requantisations_ = 0;
  int64_t loads_ = 0;
};

}  // namespace ndsnn::serve
