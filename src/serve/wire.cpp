#include "serve/wire.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "util/fault_injection.hpp"

namespace ndsnn::serve {

using tensor::Shape;
using tensor::Tensor;

namespace {

/// Little-endian primitive append/read. Byte-by-byte so the format is
/// host-endianness independent.
void put_u8(std::vector<uint8_t>& out, uint8_t v) { out.push_back(v); }

void put_u16(std::vector<uint8_t>& out, uint16_t v) {
  out.push_back(static_cast<uint8_t>(v & 0xFF));
  out.push_back(static_cast<uint8_t>(v >> 8));
}

void put_u32(std::vector<uint8_t>& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void put_i64(std::vector<uint8_t>& out, int64_t v) {
  auto u = static_cast<uint64_t>(v);
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<uint8_t>(u >> (8 * i)));
}

void put_f32(std::vector<uint8_t>& out, float v) {
  uint32_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u32(out, bits);
}

/// Bounds-checked cursor over an incoming payload.
struct Reader {
  const uint8_t* data;
  std::size_t n;
  std::size_t pos = 0;

  void need(std::size_t k) const {
    if (pos + k > n) throw WireError("wire: truncated payload");
  }
  uint8_t u8() {
    need(1);
    return data[pos++];
  }
  uint16_t u16() {
    need(2);
    uint16_t v = static_cast<uint16_t>(data[pos]) |
                 static_cast<uint16_t>(static_cast<uint16_t>(data[pos + 1]) << 8);
    pos += 2;
    return v;
  }
  uint32_t u32() {
    need(4);
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(data[pos + i]) << (8 * i);
    pos += 4;
    return v;
  }
  int64_t i64() {
    need(8);
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(data[pos + i]) << (8 * i);
    pos += 8;
    return static_cast<int64_t>(v);
  }
  float f32() {
    const uint32_t bits = u32();
    float v = 0.0F;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::string bytes(std::size_t k) {
    need(k);
    std::string s(reinterpret_cast<const char*>(data + pos), k);
    pos += k;
    return s;
  }
};

void put_tensor(std::vector<uint8_t>& out, const Tensor& t) {
  put_u32(out, static_cast<uint32_t>(t.rank()));
  for (int64_t d = 0; d < t.rank(); ++d) put_i64(out, t.dim(d));
  for (int64_t i = 0; i < t.numel(); ++i) put_f32(out, t.at(i));
}

Tensor read_tensor(Reader& r) {
  const uint32_t rank = r.u32();
  if (rank > 8) throw WireError("wire: tensor rank above 8");
  std::vector<int64_t> dims;
  int64_t numel = 1;
  for (uint32_t d = 0; d < rank; ++d) {
    const int64_t dim = r.i64();
    if (dim < 1 || dim > static_cast<int64_t>(kMaxFrameBytes)) {
      throw WireError("wire: bad tensor dimension");
    }
    numel *= dim;
    if (numel * 4 > static_cast<int64_t>(kMaxFrameBytes)) {
      throw WireError("wire: tensor above frame size cap");
    }
    dims.push_back(dim);
  }
  // The floats must actually be present before allocating for them.
  r.need(static_cast<std::size_t>(numel) * 4);
  std::vector<float> values(static_cast<std::size_t>(numel));
  for (auto& v : values) v = r.f32();
  return Tensor(Shape(dims), std::move(values));
}

}  // namespace

FrameHeader peek_header(const uint8_t* data, std::size_t n) {
  if (n < 2) throw WireError("wire: payload too short for a header");
  return FrameHeader{data[0], data[1]};
}

std::vector<uint8_t> encode_request(const RequestFrame& req) {
  std::vector<uint8_t> out;
  out.reserve(16 + req.model.size() + static_cast<std::size_t>(req.batch.numel()) * 4);
  put_u8(out, kWireVersion);
  put_u8(out, kKindRequest);
  put_u8(out, req.slo_class);
  put_u16(out, static_cast<uint16_t>(req.model.size()));
  out.insert(out.end(), req.model.begin(), req.model.end());
  put_tensor(out, req.batch);
  return out;
}

RequestFrame decode_request(const uint8_t* data, std::size_t n) {
  Reader r{data, n};
  if (r.u8() != kWireVersion) throw WireError("wire: unknown protocol version");
  if (r.u8() != kKindRequest) throw WireError("wire: expected a request frame");
  RequestFrame req;
  req.slo_class = r.u8();
  const uint16_t model_len = r.u16();
  req.model = r.bytes(model_len);
  req.batch = read_tensor(r);
  if (r.pos != n) throw WireError("wire: trailing bytes after request");
  return req;
}

std::vector<uint8_t> encode_response(const ResponseFrame& resp) {
  std::vector<uint8_t> out;
  put_u8(out, kWireVersion);
  put_u8(out, kKindResponse);
  put_u8(out, static_cast<uint8_t>(resp.status));
  if (resp.status == Status::kOk) {
    put_tensor(out, resp.logits);
  } else {
    put_u32(out, static_cast<uint32_t>(resp.message.size()));
    out.insert(out.end(), resp.message.begin(), resp.message.end());
  }
  return out;
}

ResponseFrame decode_response(const uint8_t* data, std::size_t n) {
  Reader r{data, n};
  if (r.u8() != kWireVersion) throw WireError("wire: unknown protocol version");
  if (r.u8() != kKindResponse) throw WireError("wire: expected a response frame");
  ResponseFrame resp;
  const uint8_t status = r.u8();
  if (status > static_cast<uint8_t>(Status::kBackpressure)) {
    throw WireError("wire: unknown response status");
  }
  resp.status = static_cast<Status>(status);
  if (resp.status == Status::kOk) {
    resp.logits = read_tensor(r);
  } else {
    const uint32_t msg_len = r.u32();
    resp.message = r.bytes(msg_len);
  }
  if (r.pos != n) throw WireError("wire: trailing bytes after response");
  return resp;
}

std::vector<uint8_t> encode_stream_open(const StreamOpenFrame& open) {
  std::vector<uint8_t> out;
  out.reserve(4 + open.model.size());
  put_u8(out, kWireVersionStream);
  put_u8(out, kKindStreamOpen);
  put_u16(out, static_cast<uint16_t>(open.model.size()));
  out.insert(out.end(), open.model.begin(), open.model.end());
  return out;
}

StreamOpenFrame decode_stream_open(const uint8_t* data, std::size_t n) {
  Reader r{data, n};
  if (r.u8() != kWireVersionStream) throw WireError("wire: unknown protocol version");
  if (r.u8() != kKindStreamOpen) throw WireError("wire: expected a stream-open frame");
  StreamOpenFrame open;
  const uint16_t model_len = r.u16();
  open.model = r.bytes(model_len);
  if (r.pos != n) throw WireError("wire: trailing bytes after stream-open");
  return open;
}

std::vector<uint8_t> encode_stream_step(const StreamStepFrame& step) {
  std::vector<uint8_t> out;
  out.reserve(8 + static_cast<std::size_t>(step.frame.numel()) * 4);
  put_u8(out, kWireVersionStream);
  put_u8(out, kKindStreamStep);
  put_tensor(out, step.frame);
  return out;
}

StreamStepFrame decode_stream_step(const uint8_t* data, std::size_t n) {
  Reader r{data, n};
  if (r.u8() != kWireVersionStream) throw WireError("wire: unknown protocol version");
  if (r.u8() != kKindStreamStep) throw WireError("wire: expected a stream-step frame");
  StreamStepFrame step;
  step.frame = read_tensor(r);
  if (r.pos != n) throw WireError("wire: trailing bytes after stream-step");
  return step;
}

std::vector<uint8_t> encode_stream_close() {
  std::vector<uint8_t> out;
  put_u8(out, kWireVersionStream);
  put_u8(out, kKindStreamClose);
  return out;
}

void decode_stream_close(const uint8_t* data, std::size_t n) {
  Reader r{data, n};
  if (r.u8() != kWireVersionStream) throw WireError("wire: unknown protocol version");
  if (r.u8() != kKindStreamClose) throw WireError("wire: expected a stream-close frame");
  if (r.pos != n) throw WireError("wire: trailing bytes after stream-close");
}

namespace {

/// Loop a full write over partial writes and EINTR. MSG_NOSIGNAL: a
/// client that disconnects before reading its response must surface as
/// EPIPE -> WireError on this connection, never as a process-killing
/// SIGPIPE. A send deadline expiring (SO_SNDTIMEO, EAGAIN) means the
/// reader stalled with the socket buffer full -> WireTimeout.
void write_exact(int fd, const uint8_t* buf, std::size_t n) {
  while (n > 0) {
    if (util::fault::should_fail("wire.reset")) {
      throw WireError("wire: write failed: injected connection reset");
    }
    // A short-write fault caps the syscall at one byte; the loop must
    // make partial writes invisible to the peer.
    const std::size_t chunk = util::fault::should_fail("wire.short_write")
                                  ? std::min<std::size_t>(1, n)
                                  : n;
    ssize_t w = ::send(fd, buf, chunk, MSG_NOSIGNAL);
    if (w < 0 && errno == ENOTSOCK) w = ::write(fd, buf, chunk);  // plain pipe fd
    if (w < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        throw WireTimeout("wire: write deadline expired (peer stalled reading)");
      }
      throw WireError("wire: write failed: " + std::string(std::strerror(errno)));
    }
    buf += w;
    n -= static_cast<std::size_t>(w);
  }
}

/// What one read_exact call observed (internal; recv_frame folds it
/// into RecvStatus). kEof/kTimeout are only returned at the `eof_ok`
/// position — mid-buffer, both throw (the stream cannot be re-synced).
enum class ReadResult : uint8_t { kOk, kEof, kTimeout };

ReadResult read_exact(int fd, uint8_t* buf, std::size_t n, bool eof_ok) {
  std::size_t got = 0;
  while (got < n) {
    if (util::fault::should_fail("wire.reset")) {
      throw WireError("wire: read failed: injected connection reset");
    }
    if (util::fault::should_fail("wire.eof")) {
      // Simulated peer close at an arbitrary point in the stream.
      if (got == 0 && eof_ok) return ReadResult::kEof;
      throw WireError("wire: connection closed mid-frame (injected)");
    }
    const std::size_t chunk = util::fault::should_fail("wire.short_read")
                                  ? std::min<std::size_t>(1, n - got)
                                  : n - got;
    const ssize_t r = ::read(fd, buf + got, chunk);
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // SO_RCVTIMEO expired. Idle at a frame boundary is a reapable
        // state the caller decides about; a stall mid-frame is fatal to
        // the connection.
        if (got == 0 && eof_ok) return ReadResult::kTimeout;
        throw WireTimeout("wire: read deadline expired mid-frame (peer stalled)");
      }
      throw WireError("wire: read failed: " + std::string(std::strerror(errno)));
    }
    if (r == 0) {
      if (got == 0 && eof_ok) return ReadResult::kEof;
      throw WireError("wire: connection closed mid-frame");
    }
    got += static_cast<std::size_t>(r);
  }
  return ReadResult::kOk;
}

}  // namespace

void send_frame(int fd, const std::vector<uint8_t>& payload) {
  if (payload.size() > kMaxFrameBytes) throw WireError("wire: frame above size cap");
  std::vector<uint8_t> prefix;
  prefix.reserve(8);
  put_u32(prefix, kFrameMagic);
  put_u32(prefix, static_cast<uint32_t>(payload.size()));
  if (util::fault::should_fail("wire.torn_frame")) {
    // Die mid-frame after committing the prefix and half the payload:
    // the peer is left holding a length promise that never completes —
    // the hardest partial-failure shape for a framed protocol.
    write_exact(fd, prefix.data(), prefix.size());
    write_exact(fd, payload.data(), payload.size() / 2);
    throw WireError("wire: injected torn frame (writer died mid-payload)");
  }
  write_exact(fd, prefix.data(), prefix.size());
  write_exact(fd, payload.data(), payload.size());
}

RecvStatus recv_frame(int fd, std::vector<uint8_t>& payload) {
  uint8_t prefix[8];
  switch (read_exact(fd, prefix, sizeof(prefix), /*eof_ok=*/true)) {
    case ReadResult::kEof:
      return RecvStatus::kEof;
    case ReadResult::kTimeout:
      return RecvStatus::kTimeout;
    case ReadResult::kOk:
      break;
  }
  Reader r{prefix, sizeof(prefix)};
  if (r.u32() != kFrameMagic) throw WireError("wire: bad frame magic");
  const uint32_t len = r.u32();
  if (len > kMaxFrameBytes) throw WireError("wire: frame above size cap");
  payload.resize(len);
  if (len > 0) (void)read_exact(fd, payload.data(), len, /*eof_ok=*/false);
  return RecvStatus::kFrame;
}

}  // namespace ndsnn::serve
