#include "serve/model_registry.hpp"

#include <limits>

#include "util/fault_injection.hpp"
#include "util/metrics.hpp"

namespace ndsnn::serve {

void ModelRegistry::add(const std::string& name, Loader loader,
                        const runtime::CompileOptions& base) {
  if (!loader) throw std::invalid_argument("ModelRegistry::add: null loader");
  std::lock_guard<std::mutex> lk(mu_);
  if (entries_.count(name) != 0) {
    throw std::invalid_argument("ModelRegistry::add: duplicate model '" + name + "'");
  }
  Entry e;
  e.loader = std::move(loader);
  e.base = base;
  e.opts = base;
  entries_.emplace(name, std::move(e));
}

std::shared_ptr<ServedModel> ModelRegistry::acquire(const std::string& name) {
  std::unique_lock<std::mutex> lk(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    throw std::out_of_range("ModelRegistry: unknown model '" + name + "'");
  }
  Entry& e = it->second;
  // A concurrent acquire is already compiling this entry: wait for its
  // result instead of duplicating the work (entries_ nodes are stable,
  // so `e` survives the wait).
  load_cv_.wait(lk, [&e] { return !e.loading; });
  // Precision restore: a model the budgeter once squeezed to int8 goes
  // back to its registered precision when the swap fits today's
  // residency — conservatively, without squeezing anyone else, so two
  // hot models can never requantise-thrash each other.
  if (e.requantised && e.full_bytes > 0 && opts_.mem_budget_bytes > 0) {
    const int64_t current = e.model ? e.model->plan().stored_bytes() : 0;
    if (resident_bytes_locked() - current + e.full_bytes <= opts_.mem_budget_bytes) {
      e.opts = e.base;
      e.requantised = false;
      e.model.reset();
    }
  }
  if (!e.model) load_entry(lk, e);
  e.last_used = ++tick_;
  // Snapshot before enforcing: the budgeter drops the lock while
  // requantising, and a concurrent acquire could evict this (briefly
  // cold-looking) entry in that window — the caller's shared_ptr keeps
  // the plan alive either way.
  std::shared_ptr<ServedModel> model = e.model;
  enforce_budget(lk, name);
  return model;
}

bool ModelRegistry::has(const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  return entries_.count(name) != 0;
}

bool ModelRegistry::resident(const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = entries_.find(name);
  return it != entries_.end() && it->second.model != nullptr;
}

std::vector<std::string> ModelRegistry::names() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, _] : entries_) out.push_back(name);
  return out;
}

int64_t ModelRegistry::resident_bytes() const {
  std::lock_guard<std::mutex> lk(mu_);
  return resident_bytes_locked();
}

int64_t ModelRegistry::evictions() const {
  std::lock_guard<std::mutex> lk(mu_);
  return evictions_;
}

int64_t ModelRegistry::requantisations() const {
  std::lock_guard<std::mutex> lk(mu_);
  return requantisations_;
}

int64_t ModelRegistry::loads() const {
  std::lock_guard<std::mutex> lk(mu_);
  return loads_;
}

void ModelRegistry::load_entry(std::unique_lock<std::mutex>& lk, Entry& e) {
  e.loading = true;
  const Loader loader = e.loader;
  const runtime::CompileOptions opts = e.opts;
  lk.unlock();
  std::shared_ptr<ServedModel> model;
  try {
    if (util::fault::should_fail("registry.load")) {
      throw std::runtime_error("injected fault: registry.load");
    }
    // The expensive part — Loader compilation — runs with the registry
    // unlocked: requests to every other model proceed meanwhile.
    model = std::make_shared<ServedModel>(loader(opts), opts_.executor_threads,
                                          opts_.executor);
  } catch (...) {
    lk.lock();
    e.loading = false;
    load_cv_.notify_all();
    throw;
  }
  lk.lock();
  e.model = std::move(model);
  e.loading = false;
  if (!e.requantised) e.full_bytes = e.model->plan().stored_bytes();
  ++loads_;
  util::MetricsRegistry::global().counter("registry.loads").add();
  load_cv_.notify_all();
}

int64_t ModelRegistry::resident_bytes_locked() const {
  int64_t total = 0;
  for (const auto& [_, e] : entries_) {
    if (e.model) total += e.model->plan().stored_bytes();
  }
  return total;
}

void ModelRegistry::enforce_budget(std::unique_lock<std::mutex>& lk,
                                   const std::string& keep) {
  if (opts_.mem_budget_bytes <= 0) return;
  auto& metrics = util::MetricsRegistry::global();
  // Two rounds of cold-first pressure: requantise, then evict.
  for (const bool evicting : {false, true}) {
    while (resident_bytes_locked() > opts_.mem_budget_bytes) {
      Entry* coldest = nullptr;
      uint64_t coldest_tick = std::numeric_limits<uint64_t>::max();
      for (auto& [name, e] : entries_) {
        if (!e.model || e.loading || name == keep) continue;
        if (!evicting && e.requantised) continue;  // nothing left to shrink
        if (e.last_used < coldest_tick) {
          coldest_tick = e.last_used;
          coldest = &e;
        }
      }
      if (coldest == nullptr) break;  // only `keep` (or nothing) left to squeeze
      if (evicting) {
        coldest->model.reset();
        ++evictions_;
        metrics.counter("registry.evictions").add();
      } else {
        coldest->opts.weight_precision = runtime::WeightPrecision::kInt8;
        coldest->requantised = true;
        // Drop the fp32 plan before compiling its int8 replacement: the
        // peak never holds both, and the entry sits behind its loading
        // flag (skipped above, waited on in acquire) meanwhile.
        coldest->model.reset();
        ++requantisations_;
        metrics.counter("registry.requantisations").add();
        load_entry(lk, *coldest);
      }
    }
  }
  metrics.gauge("registry.resident_bytes").set(resident_bytes_locked());
}

}  // namespace ndsnn::serve
