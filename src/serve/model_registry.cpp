#include "serve/model_registry.hpp"

#include <limits>

#include "util/metrics.hpp"

namespace ndsnn::serve {

void ModelRegistry::add(const std::string& name, Loader loader,
                        const runtime::CompileOptions& base) {
  if (!loader) throw std::invalid_argument("ModelRegistry::add: null loader");
  std::lock_guard<std::mutex> lk(mu_);
  if (entries_.count(name) != 0) {
    throw std::invalid_argument("ModelRegistry::add: duplicate model '" + name + "'");
  }
  Entry e;
  e.loader = std::move(loader);
  e.opts = base;
  entries_.emplace(name, std::move(e));
}

std::shared_ptr<ServedModel> ModelRegistry::acquire(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    throw std::out_of_range("ModelRegistry: unknown model '" + name + "'");
  }
  Entry& e = it->second;
  if (!e.model) load_locked(e);
  e.last_used = ++tick_;
  enforce_budget_locked(name);
  return e.model;
}

bool ModelRegistry::has(const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  return entries_.count(name) != 0;
}

bool ModelRegistry::resident(const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = entries_.find(name);
  return it != entries_.end() && it->second.model != nullptr;
}

std::vector<std::string> ModelRegistry::names() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, _] : entries_) out.push_back(name);
  return out;
}

int64_t ModelRegistry::resident_bytes() const {
  std::lock_guard<std::mutex> lk(mu_);
  return resident_bytes_locked();
}

int64_t ModelRegistry::evictions() const {
  std::lock_guard<std::mutex> lk(mu_);
  return evictions_;
}

int64_t ModelRegistry::requantisations() const {
  std::lock_guard<std::mutex> lk(mu_);
  return requantisations_;
}

int64_t ModelRegistry::loads() const {
  std::lock_guard<std::mutex> lk(mu_);
  return loads_;
}

void ModelRegistry::load_locked(Entry& e) {
  e.model = std::make_shared<ServedModel>(e.loader(e.opts), opts_.executor_threads,
                                          opts_.executor);
  ++loads_;
  util::MetricsRegistry::global().counter("registry.loads").add();
}

int64_t ModelRegistry::resident_bytes_locked() const {
  int64_t total = 0;
  for (const auto& [_, e] : entries_) {
    if (e.model) total += e.model->plan().stored_bytes();
  }
  return total;
}

void ModelRegistry::enforce_budget_locked(const std::string& keep) {
  if (opts_.mem_budget_bytes <= 0) return;
  auto& metrics = util::MetricsRegistry::global();
  // Two rounds of cold-first pressure: requantise, then evict.
  for (const bool evicting : {false, true}) {
    while (resident_bytes_locked() > opts_.mem_budget_bytes) {
      Entry* coldest = nullptr;
      uint64_t coldest_tick = std::numeric_limits<uint64_t>::max();
      for (auto& [name, e] : entries_) {
        if (!e.model || name == keep) continue;
        if (!evicting && e.requantised) continue;  // nothing left to shrink
        if (e.last_used < coldest_tick) {
          coldest_tick = e.last_used;
          coldest = &e;
        }
      }
      if (coldest == nullptr) break;  // only `keep` (or nothing) left to squeeze
      if (evicting) {
        coldest->model.reset();
        ++evictions_;
        metrics.counter("registry.evictions").add();
      } else {
        coldest->opts.weight_precision = runtime::WeightPrecision::kInt8;
        coldest->requantised = true;
        load_locked(*coldest);
        ++requantisations_;
        metrics.counter("registry.requantisations").add();
      }
    }
  }
  metrics.gauge("registry.resident_bytes")
      .set(resident_bytes_locked());
}

}  // namespace ndsnn::serve
