// Blocking-socket TCP front-end over a ModelRegistry.
//
// One acceptor thread listens on a TCP port; each accepted connection
// gets a handler thread that loops recv_frame -> decode_request ->
// ModelRegistry::acquire -> BatchExecutor::submit -> encode_response ->
// send_frame until the client closes. The actual request parallelism
// stays in the executors' worker pools — connection threads only block
// on sockets and futures, so even many idle connections cost nothing
// but a thread apiece.
//
// Error surface, per request: BackpressureError (a stream step over
// ExecutorOptions::max_stream_queue) maps to Status::kBackpressure,
// any other ShedError (admission control or shutdown) to Status::kShed;
// any other server-side exception (unknown model, bad input shape) maps
// to Status::kError with the exception message. Only a protocol-level
// WireError (bad magic, truncated frame) closes the connection — a
// malformed stream cannot be re-synced.
//
// Robustness (PR 10): ServerOptions::conn_timeout_ms arms per-socket
// deadlines — idle connections are answered kTimeout and reaped,
// mid-frame stalls disconnect, and a stalled reader bounds the write
// path; clean EOFs, read errors and deadline reaps are counted in the
// serve.conn_eof / serve.conn_error / serve.conn_timeout metrics.
// drain(deadline) is the graceful SIGTERM path: refuse new work with
// kShedding, finish in-flight one-shots and open streams, force-close
// at the deadline.
//
// Streaming (wire v2): a connection may hold at most one open stream.
// stream-open acquires the model and opens an executor StreamSession;
// each stream-step frame advances it by one timestep (answered with
// that step's logits, FIFO per stream); stream-close — or the client
// disconnecting — closes the session. v1 one-shot requests keep working
// on the same connection, interleaved with stream frames.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/model_registry.hpp"
#include "serve/wire.hpp"

namespace ndsnn::serve {

struct ServerOptions {
  /// TCP port to listen on; 0 lets the kernel pick (see port()).
  uint16_t port = 0;
  /// Model served when a request's model name is empty.
  std::string default_model;
  /// Per-connection socket deadline (SO_RCVTIMEO + SO_SNDTIMEO) in
  /// milliseconds; 0 disables. With a deadline set, a connection idle
  /// at a frame boundary past it is answered Status::kTimeout and
  /// reaped, a peer that stalls mid-frame (reading or writing) is
  /// disconnected without an answer, and a stalled *reader* can pin its
  /// handler thread for at most one deadline — the bounded write path.
  int64_t conn_timeout_ms = 0;
};

class Server {
 public:
  /// Binds and listens on 127.0.0.1:<port> immediately (throws
  /// std::runtime_error on bind failure); start() begins accepting.
  /// The registry must outlive the server.
  Server(ModelRegistry& registry, const ServerOptions& opts);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Spawn the acceptor thread. Idempotent.
  void start();
  /// Stop accepting, unblock and join every connection thread.
  /// In-flight requests finish; blocked reads see the socket shut down.
  /// Idempotent; also called by the destructor.
  void stop();

  /// Graceful shutdown: stop accepting immediately, answer frames that
  /// ask for *new* work (one-shot requests, stream-opens) with
  /// Status::kShedding, and give in-flight requests and open streams up
  /// to `deadline` to finish — stream steps and closes on an
  /// already-open stream keep being served meanwhile. Then stop()
  /// force-closes whatever remains. Returns true when everything
  /// settled inside the deadline (the clean SIGTERM exit-0 path of
  /// serve_sparse), false when stragglers were force-closed.
  bool drain(std::chrono::milliseconds deadline);
  /// True once drain() (or stop()) has begun refusing new work.
  [[nodiscard]] bool draining() const { return draining_.load(); }

  /// The bound port (the kernel's choice when opts.port was 0).
  [[nodiscard]] uint16_t port() const { return port_; }
  /// Requests answered with any status (all-time).
  [[nodiscard]] int64_t requests_served() const { return requests_served_.load(); }
  /// Connections accepted (all-time).
  [[nodiscard]] int64_t connections() const { return connections_.load(); }
  /// Connection records currently tracked (live handlers plus finished
  /// ones not yet reaped). Each accept reaps finished handlers, so this
  /// stays bounded by the number of *concurrent* connections — a
  /// long-running server must not hoard one zombie thread per
  /// connection it ever served (pinned by the server test).
  [[nodiscard]] std::size_t tracked_connections() const;

 private:
  /// One accepted connection: its socket and handler thread. `fd` is
  /// cleared to -1 (under conn_mu_) by the handler *before* the socket
  /// is closed, so stop() can never shut down a recycled descriptor;
  /// `done` flips after the handler's last touch of the record, making
  /// the thread joinable-without-blocking for the reaper.
  struct Connection {
    int fd = -1;
    std::atomic<bool> done{false};
    std::thread thread;
  };

  void accept_loop();
  void handle_connection(Connection& conn);
  /// Join and drop every connection whose handler has finished.
  void reap_finished();

  ModelRegistry& registry_;
  const ServerOptions opts_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  /// drain() refuses new work before stop() tears connections down.
  std::atomic<bool> draining_{false};
  std::atomic<int64_t> requests_served_{0};
  std::atomic<int64_t> connections_{0};
  /// Frames being processed right now (decode -> respond); drain()
  /// waits for this to reach zero.
  std::atomic<int64_t> inflight_requests_{0};
  /// Streams open on live connections; drain() waits for their closes
  /// (or the deadline). Distinct from executor open_streams(): this is
  /// the wire-side count.
  std::atomic<int64_t> open_wire_streams_{0};
  std::thread acceptor_;
  mutable std::mutex conn_mu_;
  std::vector<std::unique_ptr<Connection>> conns_;
};

/// Client-side convenience for tests and the loadgen: one framed
/// request/response round trip over a connected fd. Throws WireError on
/// protocol failure (EOF before the response included).
[[nodiscard]] ResponseFrame round_trip(int fd, const RequestFrame& req);

/// Client-side streaming round trips (wire v2): each sends one frame
/// and blocks for the server's response. open/close acks carry a
/// placeholder scalar; each step's logits ride the kOk response.
[[nodiscard]] ResponseFrame stream_open(int fd, const std::string& model);
[[nodiscard]] ResponseFrame stream_step(int fd, const tensor::Tensor& frame);
[[nodiscard]] ResponseFrame stream_close(int fd);

/// stream_step that answers kBackpressure by resubmitting the SAME
/// frame after jittered exponential backoff (base_backoff_ms * 2^try,
/// jittered to 50-150% from `seed`), up to `max_retries` resubmissions.
/// Safe because a backpressure rejection never touched the session's
/// carry state — the step simply has not happened yet. Returns the
/// first non-backpressure response (which can still be kShed/kError),
/// or the last kBackpressure response once retries are exhausted.
[[nodiscard]] ResponseFrame stream_step_retry(int fd, const tensor::Tensor& frame,
                                              int max_retries = 6,
                                              double base_backoff_ms = 1.0,
                                              uint64_t seed = 1);

/// Connect a blocking TCP socket to 127.0.0.1:<port>; throws
/// std::runtime_error on failure. Caller owns (closes) the fd.
[[nodiscard]] int connect_local(uint16_t port);

}  // namespace ndsnn::serve
