#include "serve/loadgen.hpp"

#include <chrono>
#include <cmath>
#include <future>
#include <stdexcept>
#include <thread>

#include "tensor/random.hpp"

namespace ndsnn::serve {

std::vector<double> poisson_arrival_times_ms(double rps, int64_t n, uint64_t seed) {
  if (rps <= 0.0) throw std::invalid_argument("loadgen: offered_rps must be > 0");
  if (n < 0) throw std::invalid_argument("loadgen: negative request count");
  tensor::Rng rng(seed);
  std::vector<double> times;
  times.reserve(static_cast<std::size_t>(n));
  const double mean_gap_ms = 1000.0 / rps;
  double t = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    // Inverse-CDF exponential gap; clamp u away from 0 (log blows up).
    double u = rng.uniform01();
    if (u < 1e-12) u = 1e-12;
    t += -std::log(u) * mean_gap_ms;
    times.push_back(t);
  }
  return times;
}

LoadgenResult run_open_loop(runtime::BatchExecutor& exec, const tensor::Tensor& sample,
                            const LoadgenOptions& opts) {
  using clock = std::chrono::steady_clock;
  const std::vector<double> arrivals =
      poisson_arrival_times_ms(opts.offered_rps, opts.requests, opts.seed);
  // Independent stream for class assignment so adding batch traffic
  // does not perturb the arrival times.
  tensor::Rng class_rng(opts.seed ^ 0x9E3779B97F4A7C15ULL);

  LoadgenResult res;
  res.offered_rps = opts.offered_rps;
  res.offered = opts.requests;

  std::vector<std::future<tensor::Tensor>> futures;
  futures.reserve(arrivals.size());
  const clock::time_point start = clock::now();
  for (const double at_ms : arrivals) {
    const auto at = start + std::chrono::microseconds(static_cast<int64_t>(at_ms * 1e3));
    // Open loop: pace to the schedule even if the server is drowning.
    std::this_thread::sleep_until(at);
    const runtime::SloClass slo = (opts.batch_fraction > 0.0 &&
                                   class_rng.uniform01() < opts.batch_fraction)
                                      ? runtime::SloClass::kBatch
                                      : runtime::SloClass::kInteractive;
    futures.push_back(exec.submit(sample, slo));
  }
  for (auto& f : futures) {
    try {
      (void)f.get();
      ++res.completed;
    } catch (const runtime::ShedError&) {
      ++res.shed;
    } catch (const std::exception&) {
      // Admitted but died executing (e.g. an injected executor fault):
      // the sweep must survive and report it, not crash the bench.
      ++res.failed;
    }
  }
  const double wall_s =
      std::chrono::duration<double>(clock::now() - start).count();

  const runtime::ExecutorStats stats = exec.stats();
  res.slo_violations = stats.slo_violations;
  res.duration_s = wall_s;
  res.achieved_rps = wall_s > 0.0 ? static_cast<double>(res.completed) / wall_s : 0.0;
  res.e2e_p50_ms = stats.e2e_p50_ms;
  res.e2e_p95_ms = stats.e2e_p95_ms;
  res.e2e_p99_ms = stats.e2e_p99_ms;
  res.shed_rate =
      res.offered > 0 ? static_cast<double>(res.shed) / static_cast<double>(res.offered)
                      : 0.0;
  res.violation_rate = res.completed > 0 ? static_cast<double>(res.slo_violations) /
                                               static_cast<double>(res.completed)
                                         : 0.0;
  return res;
}

}  // namespace ndsnn::serve
