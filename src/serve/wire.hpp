// Wire protocol of the socket serving front-end: length-prefixed binary
// frames over a byte stream (TCP).
//
// Every frame is [u32 magic "NDS1"][u32 payload length][payload]; both
// prefix fields and all multi-byte payload fields are little-endian
// (the encode/decode helpers serialize byte by byte, so the format is
// endian-safe even on a big-endian host). Payload layouts:
//
//   request:  u8 version | u8 kind=1 | u8 slo_class | u16 model_len |
//             model bytes | u32 rank | i64 dims[rank] | f32 data[numel]
//   response: u8 version | u8 kind=2 | u8 status |
//             ok:   u32 rank | i64 dims[rank] | f32 data[numel]
//             else: u32 msg_len | msg bytes
//
// Version 2 adds three streaming frame kinds (one-shot requests keep
// version 1 — a v1 client talks to a v2 server unchanged):
//
//   stream-open:  u8 version=2 | u8 kind=3 | u16 model_len | model bytes
//   stream-step:  u8 version=2 | u8 kind=4 | u32 rank | i64 dims | f32 data
//   stream-close: u8 version=2 | u8 kind=5
//
// All three are answered with an ordinary v1 response frame: open and
// close acknowledge with a placeholder scalar tensor, each step returns
// that step's logits [N, classes]. A connection holds at most one
// stream; temporal order is the arrival order of its step frames.
//
// One request maps to one BatchExecutor::submit: the tensor is the
// input batch [N, ...], the response tensor the mean logits
// [N, classes]. Non-ok statuses form a typed error taxonomy (README
// "Operational robustness"): kShed is ordinary back-pressure (admission
// control refused the request; retry later), kError carries the
// server-side exception message, kTimeout is the server reaping an
// idle/stalled connection (sent only when the socket is still
// writable), kShedding marks a draining server refusing *new* work
// (reconnect elsewhere; in-flight work still completes), and
// kBackpressure is a stream step rejected because the session's queue
// is at ExecutorOptions::max_stream_queue (session state untouched —
// resubmit the same frame, see stream_step_retry).
//
// The encode/decode half works on byte buffers and is testable without
// sockets; the send/recv half moves whole frames over a blocking fd.
// Decoding is defensive: truncated or oversized frames and bad magic
// raise WireError instead of reading out of bounds — the server must
// survive a confused or malicious client.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace ndsnn::serve {

constexpr uint32_t kFrameMagic = 0x3153444E;  // "NDS1" little-endian
constexpr uint8_t kWireVersion = 1;
/// Protocol revision that introduced the streaming frame kinds below.
constexpr uint8_t kWireVersionStream = 2;
constexpr uint8_t kKindRequest = 1;
constexpr uint8_t kKindResponse = 2;
constexpr uint8_t kKindStreamOpen = 3;
constexpr uint8_t kKindStreamStep = 4;
constexpr uint8_t kKindStreamClose = 5;
/// Frames above this are rejected before allocation (256 MiB: far above
/// any sane batch, far below an allocation-of-doom).
constexpr uint32_t kMaxFrameBytes = 256u << 20;

/// Malformed frame (bad magic/version/kind, truncation, size abuse) or
/// a broken connection mid-frame.
class WireError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A socket deadline (SO_RCVTIMEO/SO_SNDTIMEO) expired mid-frame: the
/// peer stalled. Subclasses WireError — existing catch sites treat it
/// as a broken connection; the server additionally counts it in
/// serve.conn_timeout.
class WireTimeout : public WireError {
 public:
  using WireError::WireError;
};

enum class Status : uint8_t {
  kOk = 0,
  kShed = 1,     ///< admission control refused the request (back-pressure)
  kError = 2,    ///< server-side failure; message carries the reason
  kTimeout = 3,  ///< connection idle past the server's deadline; being reaped
  kShedding = 4,     ///< server draining: new work refused, reconnect elsewhere
  kBackpressure = 5, ///< stream queue full: resubmit this frame with backoff
};

struct RequestFrame {
  std::string model;      ///< registry name; empty = server default model
  uint8_t slo_class = 0;  ///< runtime::SloClass numeric value
  tensor::Tensor batch;   ///< input batch [N, ...]
};

struct ResponseFrame {
  Status status = Status::kOk;
  tensor::Tensor logits;  ///< mean logits [N, classes] when kOk
  std::string message;    ///< shed/error reason otherwise
};

/// v2: opens a streaming session for one model on this connection.
struct StreamOpenFrame {
  std::string model;  ///< registry name; empty = server default model
};

/// v2: one timestep's frame [N, ...] for the connection's open stream.
struct StreamStepFrame {
  tensor::Tensor frame;
};

/// First two payload bytes, readable without knowing the frame kind —
/// the server peeks these to dispatch one-shot vs. streaming paths.
struct FrameHeader {
  uint8_t version = 0;
  uint8_t kind = 0;
};

/// Peek version/kind from a raw payload (throws WireError when shorter
/// than the two header bytes). Does not validate either value: the
/// caller decides which (version, kind) pairs it speaks.
[[nodiscard]] FrameHeader peek_header(const uint8_t* data, std::size_t n);

/// Payload (no magic/length prefix) encode/decode.
[[nodiscard]] std::vector<uint8_t> encode_request(const RequestFrame& req);
[[nodiscard]] RequestFrame decode_request(const uint8_t* data, std::size_t n);
[[nodiscard]] std::vector<uint8_t> encode_response(const ResponseFrame& resp);
[[nodiscard]] ResponseFrame decode_response(const uint8_t* data, std::size_t n);

/// v2 streaming payloads. Responses to all three kinds reuse the v1
/// response frame (encode_response / decode_response above).
[[nodiscard]] std::vector<uint8_t> encode_stream_open(const StreamOpenFrame& open);
[[nodiscard]] StreamOpenFrame decode_stream_open(const uint8_t* data, std::size_t n);
[[nodiscard]] std::vector<uint8_t> encode_stream_step(const StreamStepFrame& step);
[[nodiscard]] StreamStepFrame decode_stream_step(const uint8_t* data, std::size_t n);
[[nodiscard]] std::vector<uint8_t> encode_stream_close();
void decode_stream_close(const uint8_t* data, std::size_t n);

/// What recv_frame observed at the frame boundary. A clean EOF and an
/// idle-deadline expiry are *states of the connection*, not protocol
/// errors — the server reacts differently to each (count serve.conn_eof
/// vs. answer kTimeout and reap), which a bool could not express.
enum class RecvStatus : uint8_t {
  kFrame = 0,    ///< one whole frame read into `payload`
  kEof = 1,      ///< peer closed cleanly before the first prefix byte
  kTimeout = 2,  ///< SO_RCVTIMEO expired while idle at the boundary
};

/// Blocking framed I/O over a connected socket/pipe fd. send_frame
/// writes prefix + payload; a peer that disconnected surfaces as
/// WireError, never SIGPIPE (socket writes use MSG_NOSIGNAL, so a
/// client that vanishes before reading its response cannot kill the
/// server process). A send deadline (SO_SNDTIMEO) expiring — a reader
/// stalled long enough to fill the socket buffer — throws WireTimeout.
/// recv_frame reads one whole frame into `payload`; EOF or a receive
/// deadline *mid-frame* throws (WireError/WireTimeout: the stream can
/// no longer be re-synced), as do bad magic and lengths above
/// kMaxFrameBytes.
///
/// Fault sites (util::fault, armed via NDSNN_FAULTS — zero cost
/// otherwise): `wire.short_read` / `wire.short_write` cap one syscall
/// to a single byte (the resume loops must hide this entirely),
/// `wire.reset` throws as if the kernel reported ECONNRESET/EPIPE, and
/// `wire.torn_frame` makes send_frame die after emitting the prefix and
/// half the payload — the peer sees a mid-frame EOF.
void send_frame(int fd, const std::vector<uint8_t>& payload);
[[nodiscard]] RecvStatus recv_frame(int fd, std::vector<uint8_t>& payload);

}  // namespace ndsnn::serve
