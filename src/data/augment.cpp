#include "data/augment.hpp"

#include <algorithm>
#include <stdexcept>

namespace ndsnn::data {

void AugmentConfig::validate() const {
  if (crop_padding < 0) throw std::invalid_argument("AugmentConfig: crop_padding must be >= 0");
}

namespace {
/// Random shifted crop of one [C, H, W] image: shift in [-pad, pad] with
/// edge clamping (equivalent to pad-then-crop).
void shift_image(float* img, int64_t c, int64_t h, int64_t w, int64_t dy, int64_t dx) {
  std::vector<float> tmp(static_cast<std::size_t>(c * h * w));
  for (int64_t ch = 0; ch < c; ++ch) {
    for (int64_t y = 0; y < h; ++y) {
      for (int64_t x = 0; x < w; ++x) {
        const int64_t sy = std::clamp<int64_t>(y + dy, 0, h - 1);
        const int64_t sx = std::clamp<int64_t>(x + dx, 0, w - 1);
        tmp[static_cast<std::size_t>((ch * h + y) * w + x)] = img[(ch * h + sy) * w + sx];
      }
    }
  }
  std::copy(tmp.begin(), tmp.end(), img);
}

void flip_image(float* img, int64_t c, int64_t h, int64_t w) {
  for (int64_t ch = 0; ch < c; ++ch) {
    for (int64_t y = 0; y < h; ++y) {
      float* row = img + (ch * h + y) * w;
      std::reverse(row, row + w);
    }
  }
}
}  // namespace

void augment_batch(tensor::Tensor& images, const AugmentConfig& config, tensor::Rng& rng) {
  config.validate();
  if (images.rank() != 4) {
    throw std::invalid_argument("augment_batch: expected [N, C, H, W], got " +
                                images.shape().str());
  }
  const int64_t n = images.dim(0), c = images.dim(1), h = images.dim(2), w = images.dim(3);
  const int64_t pad = config.crop_padding;
  for (int64_t i = 0; i < n; ++i) {
    float* img = images.data() + i * c * h * w;
    if (pad > 0) {
      const int64_t dy = rng.uniform_int(2 * pad + 1) - pad;
      const int64_t dx = rng.uniform_int(2 * pad + 1) - pad;
      if (dy != 0 || dx != 0) shift_image(img, c, h, w, dy, dx);
    }
    if (config.horizontal_flip && rng.bernoulli(0.5)) flip_image(img, c, h, w);
  }
}

}  // namespace ndsnn::data
