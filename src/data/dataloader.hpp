// Mini-batch loader with per-epoch shuffling.
#pragma once

#include <optional>

#include "data/dataset.hpp"
#include "tensor/random.hpp"

namespace ndsnn::data {

/// Iterates a dataset in shuffled mini-batches. Call start_epoch() to
/// reshuffle, then next() until it returns nullopt. The final partial
/// batch is dropped when `drop_last` (keeps batch statistics uniform).
class DataLoader {
 public:
  DataLoader(const Dataset& dataset, int64_t batch_size, uint64_t seed,
             bool shuffle = true, bool drop_last = false);

  void start_epoch();
  [[nodiscard]] std::optional<Batch> next();

  [[nodiscard]] int64_t batches_per_epoch() const;
  [[nodiscard]] int64_t batch_size() const { return batch_size_; }

 private:
  const Dataset& dataset_;
  int64_t batch_size_;
  bool shuffle_;
  bool drop_last_;
  tensor::Rng rng_;
  std::vector<int64_t> order_;
  int64_t cursor_ = 0;
};

}  // namespace ndsnn::data
