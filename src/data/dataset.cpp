#include "data/dataset.hpp"

#include <algorithm>
#include <stdexcept>

namespace ndsnn::data {

Batch make_batch(const Dataset& dataset, const std::vector<int64_t>& indices) {
  if (indices.empty()) throw std::invalid_argument("make_batch: empty index list");
  const int64_t c = dataset.channels();
  const int64_t s = dataset.image_size();
  Batch batch;
  batch.images = tensor::Tensor(
      tensor::Shape{static_cast<int64_t>(indices.size()), c, s, s});
  batch.labels.reserve(indices.size());
  const int64_t sample_elems = c * s * s;
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const Sample sample = dataset.get(indices[i]);
    if (sample.image.numel() != sample_elems) {
      throw std::logic_error("make_batch: sample size mismatch");
    }
    std::copy(sample.image.data(), sample.image.data() + sample_elems,
              batch.images.data() + static_cast<int64_t>(i) * sample_elems);
    batch.labels.push_back(sample.label);
  }
  return batch;
}

}  // namespace ndsnn::data
