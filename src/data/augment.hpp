// Training-time augmentation: random crop (with padding) and horizontal
// flip, the standard CIFAR recipe the paper's training uses.
#pragma once

#include "data/dataset.hpp"
#include "tensor/random.hpp"

namespace ndsnn::data {

struct AugmentConfig {
  int64_t crop_padding = 4;  ///< reflect-pad then random-crop back
  bool horizontal_flip = true;

  void validate() const;
};

/// Apply augmentation in place to a batch [N, C, H, W].
void augment_batch(tensor::Tensor& images, const AugmentConfig& config, tensor::Rng& rng);

}  // namespace ndsnn::data
