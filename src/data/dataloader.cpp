#include "data/dataloader.hpp"

#include <numeric>
#include <stdexcept>

namespace ndsnn::data {

DataLoader::DataLoader(const Dataset& dataset, int64_t batch_size, uint64_t seed,
                       bool shuffle, bool drop_last)
    : dataset_(dataset),
      batch_size_(batch_size),
      shuffle_(shuffle),
      drop_last_(drop_last),
      rng_(seed) {
  if (batch_size_ < 1) throw std::invalid_argument("DataLoader: batch_size must be >= 1");
  order_.resize(static_cast<std::size_t>(dataset_.size()));
  std::iota(order_.begin(), order_.end(), 0);
  start_epoch();
}

void DataLoader::start_epoch() {
  cursor_ = 0;
  if (shuffle_) rng_.shuffle(order_);
}

std::optional<Batch> DataLoader::next() {
  const int64_t n = dataset_.size();
  if (cursor_ >= n) return std::nullopt;
  const int64_t remaining = n - cursor_;
  const int64_t take = std::min(batch_size_, remaining);
  if (take < batch_size_ && drop_last_) return std::nullopt;
  std::vector<int64_t> indices(order_.begin() + cursor_, order_.begin() + cursor_ + take);
  cursor_ += take;
  return make_batch(dataset_, indices);
}

int64_t DataLoader::batches_per_epoch() const {
  const int64_t n = dataset_.size();
  if (drop_last_) return n / batch_size_;
  return (n + batch_size_ - 1) / batch_size_;
}

}  // namespace ndsnn::data
