#include "data/synthetic.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ndsnn::data {

void SyntheticSpec::validate() const {
  if (num_classes < 2) throw std::invalid_argument("SyntheticSpec: num_classes must be >= 2");
  if (channels < 1) throw std::invalid_argument("SyntheticSpec: channels must be >= 1");
  if (image_size < 4) throw std::invalid_argument("SyntheticSpec: image_size must be >= 4");
  if (train_size < 1) throw std::invalid_argument("SyntheticSpec: train_size must be >= 1");
  if (noise_std < 0.0F) throw std::invalid_argument("SyntheticSpec: noise_std must be >= 0");
  if (max_jitter < 0 || max_jitter >= image_size) {
    throw std::invalid_argument("SyntheticSpec: max_jitter out of range");
  }
  if (label_noise < 0.0 || label_noise >= 1.0) {
    throw std::invalid_argument("SyntheticSpec: label_noise must be in [0, 1)");
  }
}

namespace {
/// Smooth a [C, S, S] image with one 3x3 box-blur pass (keeps prototypes
/// low-frequency so small conv kernels can pick them up).
tensor::Tensor box_blur(const tensor::Tensor& img) {
  const int64_t c = img.dim(0), s = img.dim(1);
  tensor::Tensor out(img.shape());
  for (int64_t ch = 0; ch < c; ++ch) {
    for (int64_t y = 0; y < s; ++y) {
      for (int64_t x = 0; x < s; ++x) {
        float acc = 0.0F;
        int count = 0;
        for (int64_t dy = -1; dy <= 1; ++dy) {
          for (int64_t dx = -1; dx <= 1; ++dx) {
            const int64_t yy = y + dy, xx = x + dx;
            if (yy >= 0 && yy < s && xx >= 0 && xx < s) {
              acc += img.data()[(ch * s + yy) * s + xx];
              ++count;
            }
          }
        }
        out.data()[(ch * s + y) * s + x] = acc / static_cast<float>(count);
      }
    }
  }
  return out;
}
}  // namespace

SyntheticVision::SyntheticVision(SyntheticSpec spec) : spec_(spec) {
  spec_.validate();
  prototypes_.reserve(static_cast<std::size_t>(spec_.num_classes));
  const int64_t s = spec_.image_size;
  for (int64_t k = 0; k < spec_.num_classes; ++k) {
    tensor::Rng rng(spec_.seed * 0x9E3779B97F4A7C15ULL + static_cast<uint64_t>(k) + 1);
    tensor::Tensor proto(tensor::Shape{spec_.channels, s, s});
    proto.fill_uniform(rng, 0.0F, 1.0F);
    // Two blur passes -> smooth blobs; then add a class-coded sinusoid so
    // classes differ in both local texture and global structure.
    proto = box_blur(box_blur(proto));
    const auto fx = static_cast<float>(1 + (k % 4));
    const auto fy = static_cast<float>(1 + ((k / 4) % 4));
    const float phase = static_cast<float>(k) * 0.7F;
    for (int64_t ch = 0; ch < spec_.channels; ++ch) {
      for (int64_t y = 0; y < s; ++y) {
        for (int64_t x = 0; x < s; ++x) {
          const float wave =
              0.25F * std::sin(2.0F * 3.14159265F * (fx * static_cast<float>(x) +
                                                     fy * static_cast<float>(y)) /
                                   static_cast<float>(s) +
                               phase + static_cast<float>(ch));
          float& p = proto.data()[(ch * s + y) * s + x];
          p = std::clamp(p + wave, 0.0F, 1.0F);
        }
      }
    }
    prototypes_.push_back(std::move(proto));
  }
}

const tensor::Tensor& SyntheticVision::prototype(int64_t label) const {
  if (label < 0 || label >= spec_.num_classes) {
    throw std::out_of_range("SyntheticVision::prototype: bad label");
  }
  return prototypes_[static_cast<std::size_t>(label)];
}

Sample SyntheticVision::get(int64_t index) const {
  if (index < 0 || index >= spec_.train_size) {
    throw std::out_of_range("SyntheticVision::get: index out of range");
  }
  // Per-sample deterministic stream.
  const int64_t stream_index = index + spec_.sample_offset;
  tensor::Rng rng(spec_.seed ^ (0xD1B54A32D192ED03ULL +
                                static_cast<uint64_t>(stream_index) * 0x2545F4914F6CDD1DULL));
  const int64_t true_label = stream_index % spec_.num_classes;
  const auto& proto = prototypes_[static_cast<std::size_t>(true_label)];
  const int64_t s = spec_.image_size;

  Sample sample;
  sample.image = tensor::Tensor(proto.shape());
  const int64_t jx = spec_.max_jitter > 0 ? rng.uniform_int(2 * spec_.max_jitter + 1) - spec_.max_jitter : 0;
  const int64_t jy = spec_.max_jitter > 0 ? rng.uniform_int(2 * spec_.max_jitter + 1) - spec_.max_jitter : 0;
  for (int64_t ch = 0; ch < spec_.channels; ++ch) {
    for (int64_t y = 0; y < s; ++y) {
      for (int64_t x = 0; x < s; ++x) {
        const int64_t sy = std::clamp<int64_t>(y + jy, 0, s - 1);
        const int64_t sx = std::clamp<int64_t>(x + jx, 0, s - 1);
        const float base = proto.data()[(ch * s + sy) * s + sx];
        const float noisy = base + spec_.noise_std * rng.normal();
        sample.image.data()[(ch * s + y) * s + x] = std::clamp(noisy, 0.0F, 1.0F);
      }
    }
  }

  sample.label = true_label;
  if (spec_.label_noise > 0.0 && rng.bernoulli(spec_.label_noise)) {
    sample.label = rng.uniform_int(spec_.num_classes);
  }
  return sample;
}

namespace {
int64_t scaled_size(int64_t base, double scale) {
  auto s = static_cast<int64_t>(static_cast<double>(base) * scale + 0.5);
  s = std::max<int64_t>(4, s);
  return (s + 3) / 4 * 4;  // keep divisible by 4 for the pooling stacks
}
}  // namespace

SyntheticSpec synthetic_cifar10(double size_scale, int64_t samples, uint64_t seed) {
  SyntheticSpec spec;
  spec.num_classes = 10;
  spec.channels = 3;
  spec.image_size = scaled_size(32, size_scale);
  spec.train_size = samples;
  // Difficulty calibrated so CPU-scale models reach 60-90% dense accuracy
  // with clear degradation at 98-99% sparsity (the Table I regime).
  spec.noise_std = 0.2F;
  spec.max_jitter = std::max<int64_t>(1, spec.image_size / 16);
  spec.seed = seed;
  return spec;
}

SyntheticSpec synthetic_cifar100(double size_scale, int64_t samples, uint64_t seed) {
  SyntheticSpec spec = synthetic_cifar10(size_scale, samples, seed + 1);
  spec.num_classes = 100;
  // 100 visually similar prototypes -> harder; extra noise narrows margins.
  spec.noise_std = 0.25F;
  return spec;
}

SyntheticSpec synthetic_tiny_imagenet(double size_scale, int64_t samples, uint64_t seed) {
  SyntheticSpec spec;
  spec.num_classes = 200;
  spec.channels = 3;
  spec.image_size = scaled_size(64, size_scale);
  spec.train_size = samples;
  spec.noise_std = 0.3F;
  spec.max_jitter = std::max<int64_t>(1, spec.image_size / 16);
  spec.seed = seed + 2;
  return spec;
}

SyntheticSpec synthetic_by_name(const std::string& name, double size_scale, int64_t samples,
                                uint64_t seed) {
  if (name == "cifar10") return synthetic_cifar10(size_scale, samples, seed);
  if (name == "cifar100") return synthetic_cifar100(size_scale, samples, seed);
  if (name == "tiny_imagenet") return synthetic_tiny_imagenet(size_scale, samples, seed);
  throw std::invalid_argument("synthetic_by_name: unknown dataset '" + name + "'");
}

}  // namespace ndsnn::data
