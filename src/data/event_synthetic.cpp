#include "data/event_synthetic.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ndsnn::data {

void EventSpec::validate() const {
  if (num_classes < 2) throw std::invalid_argument("EventSpec: num_classes must be >= 2");
  if (image_size < 4) throw std::invalid_argument("EventSpec: image_size must be >= 4");
  if (timesteps < 2) throw std::invalid_argument("EventSpec: timesteps must be >= 2");
  if (train_size < 1) throw std::invalid_argument("EventSpec: train_size must be >= 1");
  if (event_threshold <= 0.0F) {
    throw std::invalid_argument("EventSpec: event_threshold must be > 0");
  }
  if (noise_events < 0.0F || noise_events >= 1.0F) {
    throw std::invalid_argument("EventSpec: noise_events must be in [0, 1)");
  }
}

SyntheticEvents::SyntheticEvents(EventSpec spec) : spec_(spec) {
  spec_.validate();
  const int64_t s = spec_.image_size;
  prototypes_.reserve(static_cast<std::size_t>(spec_.num_classes));
  for (int64_t k = 0; k < spec_.num_classes; ++k) {
    tensor::Rng rng(spec_.seed * 0xA24BAED4963EE407ULL + static_cast<uint64_t>(k) + 1);
    tensor::Tensor proto(tensor::Shape{s, s});
    // A bright blob with class-dependent aspect/orientation.
    const float cx = 0.3F + 0.4F * static_cast<float>(rng.uniform01());
    const float cy = 0.3F + 0.4F * static_cast<float>(rng.uniform01());
    const float sx = 0.08F + 0.05F * static_cast<float>(k % 3);
    const float sy = 0.08F + 0.05F * static_cast<float>((k / 3) % 3);
    for (int64_t y = 0; y < s; ++y) {
      for (int64_t x = 0; x < s; ++x) {
        const float dx = static_cast<float>(x) / static_cast<float>(s) - cx;
        const float dy = static_cast<float>(y) / static_cast<float>(s) - cy;
        proto.at(y * s + x) =
            std::exp(-dx * dx / (2 * sx * sx) - dy * dy / (2 * sy * sy));
      }
    }
    prototypes_.push_back(std::move(proto));
  }
}

Sample SyntheticEvents::get(int64_t index) const {
  if (index < 0 || index >= spec_.train_size) {
    throw std::out_of_range("SyntheticEvents::get: index out of range");
  }
  const int64_t stream_index = index + spec_.sample_offset;
  tensor::Rng rng(spec_.seed ^ (0x9E6C63D0876A9ULL + static_cast<uint64_t>(stream_index) *
                                                         0x2545F4914F6CDD1DULL));
  const int64_t label = stream_index % spec_.num_classes;
  const auto& proto = prototypes_[static_cast<std::size_t>(label)];
  const int64_t s = spec_.image_size;
  const int64_t t_count = spec_.timesteps;

  // Class determines drift direction (one of 8 compass directions, plus
  // the blob shape); sample noise perturbs speed and start.
  const double angle = 2.0 * 3.14159265358979 * static_cast<double>(label) /
                       static_cast<double>(spec_.num_classes);
  const double speed = (1.0 + rng.uniform01()) * static_cast<double>(s) /
                       (4.0 * static_cast<double>(t_count));
  const double x0 = rng.uniform01() * 2.0 - 1.0;
  const double y0 = rng.uniform01() * 2.0 - 1.0;

  Sample sample;
  sample.label = label;
  sample.image = tensor::Tensor(tensor::Shape{2 * t_count, s, s});

  auto intensity_at = [&](int64_t t, int64_t y, int64_t x) -> float {
    const auto ox = static_cast<int64_t>(std::lround(x0 + std::cos(angle) * speed *
                                                     static_cast<double>(t)));
    const auto oy = static_cast<int64_t>(std::lround(y0 + std::sin(angle) * speed *
                                                     static_cast<double>(t)));
    const int64_t sx = std::clamp<int64_t>(x - ox, 0, s - 1);
    const int64_t sy = std::clamp<int64_t>(y - oy, 0, s - 1);
    return proto.at(sy * s + sx);
  };

  for (int64_t t = 1; t <= t_count; ++t) {
    float* on_plane = sample.image.data() + (2 * (t - 1)) * s * s;
    float* off_plane = sample.image.data() + (2 * (t - 1) + 1) * s * s;
    for (int64_t y = 0; y < s; ++y) {
      for (int64_t x = 0; x < s; ++x) {
        const float delta = intensity_at(t, y, x) - intensity_at(t - 1, y, x);
        if (delta > spec_.event_threshold) on_plane[y * s + x] = 1.0F;
        if (delta < -spec_.event_threshold) off_plane[y * s + x] = 1.0F;
        if (spec_.noise_events > 0.0F && rng.bernoulli(spec_.noise_events)) {
          (rng.bernoulli(0.5) ? on_plane : off_plane)[y * s + x] = 1.0F;
        }
      }
    }
  }
  return sample;
}

double SyntheticEvents::measure_event_rate(int64_t samples) const {
  samples = std::min(samples, size());
  double fired = 0.0, total = 0.0;
  for (int64_t i = 0; i < samples; ++i) {
    const Sample s = get(i);
    fired += static_cast<double>(s.image.numel() - s.image.count_zeros());
    total += static_cast<double>(s.image.numel());
  }
  return total > 0 ? fired / total : 0.0;
}

}  // namespace ndsnn::data
