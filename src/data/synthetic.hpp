// Synthetic class-conditional vision datasets.
//
// Stand-ins for CIFAR-10 / CIFAR-100 / Tiny-ImageNet (which cannot be
// shipped offline). Each class k owns a smooth random prototype image;
// a sample is the prototype under random translation, per-sample Gaussian
// noise, and optional label noise. Samples are generated lazily and
// deterministically from (seed, index), so a dataset of any size costs
// O(classes) memory and two datasets with the same seed are identical.
//
// The difficulty knobs (noise_std, jitter, label_noise) are tuned so that
// accuracy degrades smoothly as sparsity rises -- the property Tables I-III
// measure. See DESIGN.md section 2 for the substitution argument.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.hpp"
#include "tensor/random.hpp"

namespace ndsnn::data {

struct SyntheticSpec {
  int64_t num_classes = 10;
  int64_t channels = 3;
  int64_t image_size = 32;
  int64_t train_size = 1024;
  float noise_std = 0.35F;      ///< per-pixel Gaussian noise
  int64_t max_jitter = 2;       ///< random translation in pixels
  double label_noise = 0.0;     ///< probability of a uniformly wrong label
  uint64_t seed = 7;
  /// Offset added to the sample index stream. Two datasets with the same
  /// seed share class prototypes; disjoint offsets give disjoint samples
  /// (how train/test splits are made).
  int64_t sample_offset = 0;

  void validate() const;
};

class SyntheticVision final : public Dataset {
 public:
  explicit SyntheticVision(SyntheticSpec spec);

  [[nodiscard]] int64_t size() const override { return spec_.train_size; }
  [[nodiscard]] Sample get(int64_t index) const override;
  [[nodiscard]] int64_t num_classes() const override { return spec_.num_classes; }
  [[nodiscard]] int64_t channels() const override { return spec_.channels; }
  [[nodiscard]] int64_t image_size() const override { return spec_.image_size; }

  [[nodiscard]] const SyntheticSpec& spec() const { return spec_; }
  /// The noiseless prototype of one class (for tests / visualization).
  [[nodiscard]] const tensor::Tensor& prototype(int64_t label) const;

 private:
  SyntheticSpec spec_;
  std::vector<tensor::Tensor> prototypes_;  // one [C, S, S] per class
};

/// Dataset presets mirroring the paper's three benchmarks, scaled by
/// `size_scale` (1.0 = full resolution) and `samples` per split.
[[nodiscard]] SyntheticSpec synthetic_cifar10(double size_scale = 1.0, int64_t samples = 1024,
                                              uint64_t seed = 7);
[[nodiscard]] SyntheticSpec synthetic_cifar100(double size_scale = 1.0, int64_t samples = 1024,
                                               uint64_t seed = 7);
[[nodiscard]] SyntheticSpec synthetic_tiny_imagenet(double size_scale = 1.0,
                                                    int64_t samples = 1024,
                                                    uint64_t seed = 7);
/// Preset by name: "cifar10" | "cifar100" | "tiny_imagenet".
[[nodiscard]] SyntheticSpec synthetic_by_name(const std::string& name, double size_scale,
                                              int64_t samples, uint64_t seed = 7);

}  // namespace ndsnn::data
