// Dataset interface: indexed access to (image, label) pairs.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace ndsnn::data {

/// One labelled sample; image is [C, H, W].
struct Sample {
  tensor::Tensor image;
  int64_t label = 0;
};

class Dataset {
 public:
  virtual ~Dataset() = default;
  [[nodiscard]] virtual int64_t size() const = 0;
  [[nodiscard]] virtual Sample get(int64_t index) const = 0;
  [[nodiscard]] virtual int64_t num_classes() const = 0;
  [[nodiscard]] virtual int64_t channels() const = 0;
  [[nodiscard]] virtual int64_t image_size() const = 0;
};

/// Stack samples [indices] into a batch tensor [N, C, H, W] + labels.
struct Batch {
  tensor::Tensor images;
  std::vector<int64_t> labels;
  [[nodiscard]] int64_t size() const { return static_cast<int64_t>(labels.size()); }
};

[[nodiscard]] Batch make_batch(const Dataset& dataset, const std::vector<int64_t>& indices);

}  // namespace ndsnn::data
