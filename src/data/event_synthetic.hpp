// Synthetic event-stream (DVS-style) dataset.
//
// Neuromorphic vision sensors emit sparse ON/OFF events rather than
// frames. This generator produces class-conditional *moving* patterns: a
// class prototype drifts across the frame over T timesteps and each step
// emits binary events where intensity changed. Samples are returned as a
// time-major tensor [T, 2, S, S] (ON / OFF polarity channels) flattened
// into the Sample.image as [2*T, S, S] -- models consume it with the
// DirectEncoder disabled (the data is already temporal).
//
// This exercises the pipeline's genuinely-temporal path: unlike the
// static datasets, information here lives in WHEN events fire.
#pragma once

#include "data/dataset.hpp"
#include "tensor/random.hpp"

namespace ndsnn::data {

struct EventSpec {
  int64_t num_classes = 4;
  int64_t image_size = 12;
  int64_t timesteps = 6;
  int64_t train_size = 256;
  float event_threshold = 0.08F;  ///< intensity delta that fires an event
  float noise_events = 0.01F;     ///< probability of a spurious event
  uint64_t seed = 11;
  int64_t sample_offset = 0;

  void validate() const;
};

class SyntheticEvents final : public Dataset {
 public:
  explicit SyntheticEvents(EventSpec spec);

  [[nodiscard]] int64_t size() const override { return spec_.train_size; }
  /// image is [2*T, S, S]: T ON-polarity planes then T OFF-polarity planes
  /// interleaved as channel = 2*t + polarity.
  [[nodiscard]] Sample get(int64_t index) const override;
  [[nodiscard]] int64_t num_classes() const override { return spec_.num_classes; }
  [[nodiscard]] int64_t channels() const override { return 2 * spec_.timesteps; }
  [[nodiscard]] int64_t image_size() const override { return spec_.image_size; }

  [[nodiscard]] const EventSpec& spec() const { return spec_; }
  /// Mean fraction of pixels firing per timestep (sanity metric).
  [[nodiscard]] double measure_event_rate(int64_t samples) const;

 private:
  EventSpec spec_;
  std::vector<tensor::Tensor> prototypes_;  // [S, S] intensity per class
};

}  // namespace ndsnn::data
