// Streaming temporal inference over a compiled plan.
//
// CompiledNetwork::run() is whole-window: every call direct-encodes T
// timesteps, runs them to completion and throws the membrane state
// away. A StreamSession turns the same plan into an always-on temporal
// pipeline: it owns persistent per-layer neuron state (the v /
// adaptation carries the neuron ops keep across Op::step() calls),
// accepts ONE timestep's frame at a time, and returns that step's
// output with per-event latency instead of per-window.
//
// Pipelined execution: run_steps() schedules (stage s, step t) tasks in
// wavefronts w = s + t on the session's util::ThreadPool — stage l
// processes step t while stage l+1 processes step t-1. Within one
// wavefront every task has a distinct stage AND a distinct step, so
// per-stage state and per-step outputs are touched by exactly one lane;
// the barrier between wavefronts makes the schedule — and therefore the
// fp32 results — bitwise independent of the lane count.
//
// Delta path: a stateless stage whose input SpikeBatch is empty this
// step reuses a cached zero-input output (computed once per input
// shape by actually running the op — a linear layer's bias replicated
// over rows, exactly what running it would produce) instead of
// executing its kernels. Each reuse is observable: a "delta-skip" trace
// span, the stream.delta_skips metric, and InferenceResult::
// skipped_ops. Stateful stages (neuron dynamics, residual blocks)
// always run — membranes decay even on silent steps.
//
// Correctness contract: feeding T frames through a session — streamed
// one by one or pipelined via run_steps() — produces per-step outputs
// whose time-major concatenation is bitwise identical to
// plan_ir().execute() over the same window (the differential harness
// pins this across backend x activation x precision).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "runtime/compiled_network.hpp"
#include "runtime/inference.hpp"
#include "runtime/plan.hpp"
#include "tensor/tensor.hpp"

namespace ndsnn::util {
class ThreadPool;
}

namespace ndsnn::runtime {

class StreamSession {
 public:
  /// Create a session over `net`'s plan. `net` must outlive the session
  /// and must not be moved while it is live (the session keeps a
  /// pointer to the plan, not a copy).
  ///
  /// `pipeline_threads` sizes the session's own inter-layer pipeline
  /// pool (distinct from the plan's intra-op pool, which keeps serving
  /// whatever ops borrow it): 1 (default) executes stages serially on
  /// the calling thread, 0 resolves to hardware concurrency, N > 1
  /// runs up to N (stage, step) tasks of a wavefront concurrently.
  /// Results are bitwise identical for any value.
  explicit StreamSession(const CompiledNetwork& net, int64_t pipeline_threads = 1);
  ~StreamSession();

  StreamSession(const StreamSession&) = delete;
  StreamSession& operator=(const StreamSession&) = delete;

  /// Advance the session by one timestep. `request.batch` is one frame
  /// [N, ...] (the shape run() would encode per step; N is pinned at
  /// the first step until reset()). Returns that step's output
  /// activation [N, classes] — NOT a mean-over-time readout; averaging
  /// the step logits over a window reproduces run()'s logits — with
  /// the call's wall time and this step's delta-skip count.
  [[nodiscard]] InferenceResult step(const InferenceRequest& request);

  /// Tensor-only convenience wrapper over step(InferenceRequest).
  [[nodiscard]] InferenceResult step(const tensor::Tensor& frame);

  /// Feed a whole sequence of frames through the layer pipeline. Output
  /// k is bitwise identical to calling step() on frames[k] in order,
  /// but stages overlap across steps on the pipeline pool; each
  /// result's latency_ms measures call start -> that step's completion
  /// (per-event latency: early steps resolve while later ones are
  /// still in flight).
  [[nodiscard]] std::vector<InferenceResult> run_steps(
      const std::vector<tensor::Tensor>& frames);

  /// Drop all persistent neuron state: the next step() behaves exactly
  /// like the first step of a fresh window. Cached zero-input outputs
  /// survive (they are shape-keyed compile artifacts, not state).
  void reset();

  /// Steps advanced since construction / the last reset().
  [[nodiscard]] int64_t steps() const { return steps_; }
  /// Stage executions skipped by the delta path since construction
  /// (never reset — it is a telemetry total, mirrored by the
  /// stream.delta_skips metric).
  [[nodiscard]] int64_t delta_skips() const {
    return delta_skips_.load(std::memory_order_relaxed);
  }
  /// Pipeline lanes the session schedules wavefronts on (1 = serial).
  [[nodiscard]] int64_t pipeline_threads() const;

 private:
  /// One plan op plus this session's slice of it: the op's persistent
  /// streaming state and the shape-keyed zero-input output cache the
  /// delta path reuses.
  struct Stage {
    const Op* op = nullptr;
    std::unique_ptr<OpState> state;
    bool zero_cached = false;
    tensor::Shape zero_in_shape;
    Activation zero_out;
  };

  /// Wrap one frame as the stage-0 input: attaches the scanned
  /// SpikeBatch view so an all-zero frame is recognisably empty to the
  /// delta path (bitwise-neutral — non-event ops ignore the view, and
  /// event kernels multiply by the actual values).
  [[nodiscard]] static Activation make_input(const tensor::Tensor& frame);

  /// Run (or delta-skip) one stage for one step; bumps *skips on skip.
  [[nodiscard]] Activation run_stage(Stage& stage, const Activation& input,
                                     int64_t* skips);

  const Plan* plan_;
  std::vector<Stage> stages_;
  std::unique_ptr<util::ThreadPool> pool_;  ///< null = serial session
  int64_t steps_ = 0;
  /// Relaxed atomic: wavefront lanes skip different stages concurrently.
  std::atomic<int64_t> delta_skips_{0};
};

}  // namespace ndsnn::runtime
