#include "runtime/autotune.hpp"

#include <algorithm>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>
#include <utility>
#include <vector>

#include "runtime/compiled_network.hpp"
#include "runtime/trace.hpp"
#include "sparse/bcsr.hpp"
#include "sparse/csr.hpp"
#include "tensor/matmul.hpp"
#include "tensor/random.hpp"
#include "util/metrics.hpp"
#include "util/stopwatch.hpp"

namespace ndsnn::runtime {

using tensor::Shape;
using tensor::Tensor;
using util::simd::Tier;

namespace {

/// FNV-1a over the row-major positions of surviving entries — the mask
/// identity of the layer. Value magnitudes don't enter: two layers
/// with the same pattern have the same memory traffic and branch
/// behaviour, which is all the probe measures.
uint64_t mask_fingerprint(const Tensor& w2, float threshold) {
  uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (b * 8)) & 0xFFU;
      h *= 1099511628211ULL;
    }
  };
  const float* p = w2.data();
  const int64_t n = w2.numel();
  for (int64_t i = 0; i < n; ++i) {
    const float a = p[i] < 0.0F ? -p[i] : p[i];
    if (a > threshold) mix(static_cast<uint64_t>(i));
  }
  mix(static_cast<uint64_t>(n));
  return h;
}

struct CacheKey {
  int64_t rows;
  int64_t cols;
  sparse::Precision precision;
  AutotuneProbe probe;
  uint64_t fingerprint;
  Tier tier_limit;          ///< resolve(opts.kernel_tier): the tier axis probed
  int64_t block_rows;       ///< opts block shape (part of the candidate set)
  int64_t block_cols;
  int64_t quant_group_size;

  bool operator<(const CacheKey& o) const {
    return std::tie(rows, cols, precision, probe, fingerprint, tier_limit, block_rows,
                    block_cols, quant_group_size) <
           std::tie(o.rows, o.cols, o.precision, o.probe, o.fingerprint, o.tier_limit,
                    o.block_rows, o.block_cols, o.quant_group_size);
  }
};

struct Cache {
  std::mutex mu;
  std::map<CacheKey, AutotuneChoice> entries;
  int64_t hits = 0;
  int64_t misses = 0;
};

Cache& cache() {
  static Cache c;
  return c;
}

/// Warmup once (faults pages, warms icache), then min over repeats.
/// The min is the right statistic for a quiet-box microbenchmark: every
/// perturbation (preemption, frequency ramp) only ever adds time.
double time_candidate_us(const std::function<void()>& fn) {
  fn();
  double best_s = 1e30;
  double total_s = 0.0;
  for (int rep = 0; rep < 5 && total_s < 2e-3; ++rep) {
    util::Stopwatch sw;
    fn();
    const double s = sw.seconds();
    best_s = std::min(best_s, s);
    total_s += s;
  }
  return best_s * 1e6;
}

struct Candidate {
  Kernel kernel;
  int64_t block_rows;
  int64_t block_cols;
  Tier tier;
  std::function<void()> run;
};

}  // namespace

AutotuneChoice autotune_layer(const Tensor& weight, sparse::Precision precision,
                              AutotuneProbe probe, const CompileOptions& opts) {
  const int64_t rows = weight.dim(0);
  const int64_t cols = weight.numel() / rows;
  const Tensor w2 =
      weight.rank() == 2 ? weight : weight.reshaped(Shape{rows, cols});

  const Tier tier_limit = util::simd::resolve(opts.kernel_tier);
  const CacheKey key{rows,
                     cols,
                     precision,
                     probe,
                     mask_fingerprint(w2, opts.prune_threshold),
                     tier_limit,
                     opts.block_rows,
                     opts.block_cols,
                     opts.quant_group_size};

  static util::Counter& hit_counter =
      util::MetricsRegistry::global().counter("autotune.cache_hits");
  static util::Counter& miss_counter =
      util::MetricsRegistry::global().counter("autotune.cache_misses");
  {
    std::lock_guard<std::mutex> lock(cache().mu);
    const auto it = cache().entries.find(key);
    if (it != cache().entries.end()) {
      cache().hits++;
      hit_counter.add();
      AutotuneChoice choice = it->second;
      choice.from_cache = true;
      return choice;
    }
    cache().misses++;
    miss_counter.add();
  }

  trace::ScopedSpan span("autotune-probe", "compile");
  span.rows(rows);

  // Tier axis: a pinned CompileOptions::kernel_tier probes only that
  // tier; kAuto probes the autovectorised baseline against the best
  // intrinsic tier the box executes (equal on non-AVX2 hosts, where
  // the axis collapses to one entry).
  std::vector<Tier> tiers{Tier::kVector};
  if (opts.kernel_tier != Tier::kAuto) {
    tiers = {tier_limit};
  } else if (tier_limit != Tier::kVector) {
    tiers.push_back(tier_limit);
  }

  // Synthetic dense operand at the shape the op will see. The linear
  // probe (spmm_t) uses 32 batch rows: past every kernel's vector-path
  // gate (m >= 8), close to real serving batch*T row counts, and cheap.
  // The conv probe (spmm) must be much wider: the real operand is an
  // im2col matrix whose column count is the number of output positions
  // (hundreds), and winners measured on an overhead-dominated 32-wide
  // operand routinely lose at im2col width. 256 columns is in the
  // regime every lenet/convnet layer actually runs while keeping the
  // whole probe in the few-ms range.
  constexpr int64_t kProbeBatch = 32;
  constexpr int64_t kProbeIm2colCols = 256;
  tensor::Rng rng(0x5eed);
  Tensor b(probe == AutotuneProbe::kSpmmT ? Shape{kProbeBatch, cols}
                                          : Shape{cols, kProbeIm2colCols});
  b.fill_uniform(rng, -1.0F, 1.0F);

  // Build each candidate's real structure once (construction cost is
  // not what we measure: it is paid once per compile regardless of the
  // winner), then time the GEMM the op would run.
  std::vector<Candidate> candidates;

  // Dense GEMM always executes fp32 (quantised planes live on the
  // sparse formats), so it joins the tier axis but not the precision
  // one.
  const auto dense_w = std::make_shared<Tensor>(w2);
  for (const Tier tier : tiers) {
    candidates.push_back({Kernel::kDense, 0, 0, tier, [dense_w, &b, probe, tier] {
                            (void)(probe == AutotuneProbe::kSpmmT
                                       ? tensor::matmul_nt(b, *dense_w, nullptr, tier)
                                       : tensor::matmul(*dense_w, b, nullptr, tier));
                          }});
  }

  const auto csr = std::make_shared<sparse::Csr>(
      sparse::Csr::from_weights(weight, opts.prune_threshold));
  if (precision != sparse::Precision::kFp32) {
    (void)csr->quantize(precision, /*symmetric=*/true, /*uniform_scale=*/false,
                        opts.quant_group_size);
  }
  for (const Tier tier : tiers) {
    candidates.push_back({Kernel::kCsr, 0, 0, tier, [csr, &b, probe, tier] {
                            (void)(probe == AutotuneProbe::kSpmmT
                                       ? csr->spmm_t(b, nullptr, tier)
                                       : csr->spmm(b, nullptr, tier));
                          }});
  }

  // Block-shape axis: the configured shape plus the two shapes the
  // structured-sparsity paths produce (4x4 N:M tiles, 8x4 row blocks).
  std::vector<std::pair<int64_t, int64_t>> shapes{{opts.block_rows, opts.block_cols}};
  for (const auto& s : {std::pair<int64_t, int64_t>{4, 4}, {8, 4}}) {
    if (std::find(shapes.begin(), shapes.end(), s) == shapes.end()) shapes.push_back(s);
  }
  for (const auto& [br, bc] : shapes) {
    const auto bcsr = std::make_shared<sparse::Bcsr>(
        sparse::Bcsr::from_weights(weight, br, bc, opts.prune_threshold));
    if (precision != sparse::Precision::kFp32) {
      (void)bcsr->quantize(precision);
    }
    for (const Tier tier : tiers) {
      candidates.push_back({Kernel::kBcsr, br, bc, tier, [bcsr, &b, probe, tier] {
                              (void)(probe == AutotuneProbe::kSpmmT
                                         ? bcsr->spmm_t(b, nullptr, tier)
                                         : bcsr->spmm(b, nullptr, tier));
                            }});
    }
  }

  AutotuneChoice best;
  best.best_us = 1e30;
  for (const Candidate& c : candidates) {
    const double us = time_candidate_us(c.run);
    if (us < best.best_us) {
      best = AutotuneChoice{c.kernel, c.block_rows, c.block_cols, c.tier, false, us};
    }
  }
  if (best.kernel != Kernel::kBcsr) {
    // Normalize so equal decisions cache/report identically.
    best.block_rows = opts.block_rows;
    best.block_cols = opts.block_cols;
  }

  std::lock_guard<std::mutex> lock(cache().mu);
  cache().entries.emplace(key, best);
  return best;
}

AutotuneCacheStats autotune_cache_stats() {
  std::lock_guard<std::mutex> lock(cache().mu);
  return {cache().hits, cache().misses,
          static_cast<int64_t>(cache().entries.size())};
}

void autotune_cache_clear() {
  std::lock_guard<std::mutex> lock(cache().mu);
  cache().entries.clear();
  cache().hits = 0;
  cache().misses = 0;
}

}  // namespace ndsnn::runtime
