// BatchExecutor: throughput-oriented serving front-end for a
// CompiledNetwork.
//
// A small pool of worker threads drains a FIFO of inference requests;
// each request is one input batch [N, ...] and resolves to the mean
// logits [N, classes] through a std::future. The CompiledNetwork plan is
// immutable, so workers share it without synchronization — requests are
// sharded across workers, never split within one.
//
// Determinism: a request's result depends only on its input and the
// plan, never on which worker ran it or how many workers exist, so a
// 1-thread and an N-thread executor produce identical outputs (tested in
// tests/runtime/batch_executor_test.cpp).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/compiled_network.hpp"
#include "tensor/tensor.hpp"

namespace ndsnn::runtime {

/// Serving statistics snapshot. Latency is measured per request from
/// execution start to completion on the worker (queue wait excluded),
/// with nearest-rank percentiles over a sliding window of the most
/// recent requests (kLatencyWindow) so a long-lived executor's memory
/// and stats() cost stay bounded; requests/samples are all-time totals.
struct ExecutorStats {
  int64_t requests = 0;  ///< requests fully processed
  int64_t samples = 0;   ///< batch rows fully processed
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
};

class BatchExecutor {
 public:
  /// Spin up `num_threads` workers (>= 1) over a compiled plan. The plan
  /// must outlive the executor.
  BatchExecutor(const CompiledNetwork& net, int64_t num_threads);

  /// Drains the queue, then joins the workers.
  ~BatchExecutor();

  BatchExecutor(const BatchExecutor&) = delete;
  BatchExecutor& operator=(const BatchExecutor&) = delete;

  /// Enqueue one inference request; the future resolves to the mean
  /// logits [N, classes]. Throws std::runtime_error after shutdown().
  [[nodiscard]] std::future<tensor::Tensor> submit(tensor::Tensor batch);

  /// Convenience: submit every batch, wait for all, return results in
  /// submission order.
  [[nodiscard]] std::vector<tensor::Tensor> run_all(
      const std::vector<tensor::Tensor>& batches);

  /// Stop accepting work, finish queued requests, join workers.
  /// Idempotent; also called by the destructor.
  void shutdown();

  [[nodiscard]] int64_t num_threads() const {
    return static_cast<int64_t>(workers_.size());
  }

  /// Requests fully processed so far.
  [[nodiscard]] int64_t completed_requests() const;
  /// Samples (batch rows) fully processed so far.
  [[nodiscard]] int64_t completed_samples() const;

  /// Throughput totals + per-request latency percentiles over the most
  /// recent kLatencyWindow requests (p50/p95/p99 by nearest rank).
  [[nodiscard]] ExecutorStats stats() const;

  /// Latency samples retained for percentile estimation.
  static constexpr std::size_t kLatencyWindow = 8192;

 private:
  void worker_loop();

  const CompiledNetwork& net_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::packaged_task<tensor::Tensor()>> queue_;
  bool stopping_ = false;
  int64_t completed_requests_ = 0;
  int64_t completed_samples_ = 0;
  std::vector<double> latencies_ms_;     ///< ring of the last kLatencyWindow requests
  std::size_t latency_next_ = 0;         ///< ring write cursor

  std::vector<std::thread> workers_;
};

}  // namespace ndsnn::runtime
