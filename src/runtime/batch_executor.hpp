// BatchExecutor: SLO-aware serving scheduler for a CompiledNetwork.
//
// A small pool of request workers drains inference requests; each
// request is one input batch [N, ...] and resolves to the mean logits
// [N, classes] through a std::future. The CompiledNetwork plan is
// immutable, so workers share it without synchronization.
//
// Scheduling (PR 7): the queue is not a single FIFO. Requests are
// binned into per-(SLO class, sample shape) sub-queues, and a free
// worker always picks the sub-queue whose *head* is most urgent:
// interactive class before batch class, earliest deadline first (EDF)
// within a class. A request's deadline is its enqueue time plus its
// class's SLO budget (ExecutorOptions::slo_ms, scaled by
// batch_slo_factor for the batch class); with no SLO configured the
// deadline degenerates to the enqueue time and EDF is exactly
// arrival-order FIFO.
//
// Coalescing without head-of-line blocking: with max_coalesce > 1 a
// worker that picks a sub-queue keeps popping follow-up requests *from
// that same sub-queue* (same shape by construction, so always fusable)
// into one time-major pass of up to max_coalesce samples, splitting the
// logits back per request afterwards. It holds the group open for up to
// max_wait_us waiting for stragglers ONLY while no other request of any
// shape is runnable; the moment an incompatible request arrives the
// group runs with what it has. The previous design popped from one
// global FIFO and could neither fuse same-shape requests separated by
// an incompatible one (interleaved shapes collapsed coalescing to
// nothing) nor stop holding a partial group when foreign work queued
// behind it — tests/runtime/batch_executor_test.cpp pins both fixes.
//
// Admission control: with slo_ms > 0, submit() predicts the end-to-end
// latency a new request would see — predicted queue wait plus the
// request's expected service time — and sheds it immediately (the
// future throws ShedError) once that exceeds the request's SLO budget.
// The wait predictor is the larger of (a) a drain-time estimate, queued
// samples times an EMA of observed per-sample service time divided by
// the worker count, and (b) the recent queue-wait histogram's p90 (the
// PR 6 log-bucket histogram machinery over a short sliding window):
// (a) reacts instantly to bursts, (b) remembers steady-state queueing
// that an instantaneous depth reading misses, and a tail percentile —
// not the median — is what keeps admitted p99 inside the budget.
// Shedding at admission keeps the queue short enough that admitted
// requests meet their budget instead of everyone timing out together.
//
// The predictor can only learn from completions, so two guards stop it
// from latching permanently shut after a spike fills the wait window
// with above-budget samples: the histogram term is ignored while the
// executor is fully idle (no queued or in-flight samples — a new
// request then truly waits ~nothing), and every kShedProbeInterval-th
// consecutive would-shed request is admitted anyway as a probe whose
// completion refreshes the window and the service EMA.
//
// Streaming (PR 9): open_stream() attaches a StreamSession — persistent
// per-layer neuron state, one timestep per submit_stream() — to the
// executor. Stream steps live on per-session FIFOs (temporal order is
// part of the semantics, so they never mix into the shape-binned
// sub-queues and are never shed by admission control), outrank every
// queued request (slo_priority: kStream < kInteractive < kBatch), and a
// free worker drains ALL queued steps of a session in one pipelined
// StreamSession::run_steps pass.
//
// Thread budget: the constructor's num_threads is the *total* worker
// budget. When the plan was compiled with an intra-op pool
// (CompileOptions::num_threads > 1), the executor spawns
// max(1, num_threads / intra_op_threads) request workers so
// inter-request and intra-op parallelism split the budget instead of
// oversubscribing the machine.
//
// Determinism: a request's logits depend only on its input and the
// plan — never on which worker ran it, how many workers exist, which
// requests it was fused with, or which other requests were shed
// (fusing is bitwise-exact because every op processes batch rows
// independently). Shedding affects only *whether* a request runs.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "runtime/compiled_network.hpp"
#include "runtime/inference.hpp"
#include "tensor/tensor.hpp"
#include "util/metrics.hpp"

namespace ndsnn::runtime {

// SloClass and ShedError moved to runtime/inference.hpp with the
// consolidated InferenceRequest/InferenceResult pair; included above so
// existing code naming them through this header keeps compiling.

class StreamSession;

/// Serving statistics snapshot. Service latency (mean/p50/p95/p99/max)
/// is measured per request from execution start to completion on the
/// worker; queue wait (queue_*) from enqueue to the moment a worker
/// pops the request; e2e_* is their per-request sum — the latency a
/// client actually observes and the quantity SLO violations are counted
/// against. Every request of a fused pass reports that pass's service
/// latency and its own queue wait. Percentiles are nearest-rank over a
/// sliding window of the most recent requests (kLatencyWindow) so a
/// long-lived executor's memory and stats() cost stay bounded;
/// requests/samples/shed/violation counts are all-time totals.
struct ExecutorStats {
  int64_t requests = 0;  ///< requests fully processed (admitted only)
  int64_t samples = 0;   ///< batch rows fully processed
  int64_t fused_batches = 0;       ///< coalesced passes (>= 2 requests each)
  int64_t coalesced_requests = 0;  ///< requests served inside a fused pass
  /// Requests that never executed: refused by admission control at
  /// submit, dropped at dispatch once their deadline became
  /// unreachable, or submitted after shutdown. Their futures throw
  /// ShedError.
  int64_t shed_requests = 0;
  /// Admitted requests whose end-to-end latency (wait + service)
  /// exceeded their SLO budget. Only counted while slo_ms > 0.
  int64_t slo_violations = 0;
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
  /// Enqueue -> execution-start wait over the same sliding window.
  double queue_mean_ms = 0.0;
  double queue_p50_ms = 0.0;
  double queue_p95_ms = 0.0;
  /// End-to-end (wait + service) per request over the same window.
  double e2e_p50_ms = 0.0;
  double e2e_p95_ms = 0.0;
  double e2e_p99_ms = 0.0;
  /// Requests waiting in the sub-queues at snapshot time.
  int64_t queue_depth = 0;
  /// Streaming sessions currently open (open_stream - closed/drained).
  int64_t open_streams = 0;
  /// Stream timesteps fully processed (all-time; separate from
  /// `requests` — stream steps never enter the request sub-queues).
  int64_t stream_steps = 0;
  /// Stream steps refused at submit because their session's queue was
  /// at ExecutorOptions::max_stream_queue (futures threw
  /// BackpressureError). Counted apart from shed_requests: these steps
  /// are expected to be *resubmitted*, not abandoned.
  int64_t backpressure_rejections = 0;
  /// Admission predictor's current queue-wait estimate (ms).
  double predicted_wait_ms = 0.0;
  /// Mean fraction of wall time the request workers spent executing:
  /// busy time / (elapsed * workers), where elapsed is measured from
  /// the FIRST submitted request — a warm executor that idled before
  /// traffic arrived no longer dilutes its own utilization. Zero until
  /// the first request.
  double worker_utilization = 0.0;
  /// Per-worker busy fraction (index = worker spawn order).
  std::vector<double> utilization_per_worker;
};

/// Scheduling knobs (defaults: coalescing off, no SLO — plain FIFO).
struct ExecutorOptions {
  /// Maximum *samples* (batch rows) per fused pass; <= 1 disables
  /// coalescing. A request bigger than the cap still runs alone.
  int64_t max_coalesce = 1;
  /// How long a worker holding fewer than max_coalesce samples waits
  /// for more same-shape requests before running what it has. The wait
  /// only happens while no other request is runnable; foreign arrivals
  /// end it immediately. 0 = only fuse what is already queued.
  int64_t max_wait_us = 0;
  /// Interactive-class SLO budget in milliseconds. > 0 enables EDF
  /// deadlines, admission control (shedding) and SLO-violation
  /// accounting; 0 disables all three (nothing is ever shed).
  double slo_ms = 0.0;
  /// The batch class's budget is slo_ms * batch_slo_factor.
  double batch_slo_factor = 4.0;
  /// Per-session cap on *queued* stream steps (the step being executed
  /// no longer counts). A submit_stream() that would exceed it resolves
  /// with BackpressureError instead of queueing — session state
  /// untouched, resubmit the same frame. 0 = unbounded (the
  /// pre-robustness behavior; a stalled worker then lets one session
  /// queue without limit).
  int64_t max_stream_queue = 0;
};

class BatchExecutor {
 public:
  /// Spin up workers over a compiled plan with a total thread budget of
  /// `num_threads` (>= 1; see the header comment for the inter/intra
  /// split). The plan must outlive the executor.
  BatchExecutor(const CompiledNetwork& net, int64_t num_threads,
                const ExecutorOptions& opts = {});

  /// Drains the queue, then joins the workers.
  ~BatchExecutor();

  BatchExecutor(const BatchExecutor&) = delete;
  BatchExecutor& operator=(const BatchExecutor&) = delete;

  /// Enqueue one inference request (the consolidated entry point); the
  /// future resolves to an InferenceResult whose latency_ms is the
  /// request's end-to-end time (queue wait + service). Never throws for
  /// queue-state reasons: a request shed by admission control or
  /// submitted after shutdown() gets a future that throws ShedError
  /// instead — the caller decides whether that is an error, mid-drain
  /// races included. Throws std::invalid_argument for SloClass::kStream
  /// — stream steps belong to a session (open_stream / submit_stream),
  /// not the request queue.
  [[nodiscard]] std::future<InferenceResult> submit(InferenceRequest request);

  /// Thin wrapper over submit(InferenceRequest) keeping the original
  /// tensor-in/tensor-out signature: the returned future yields just
  /// the logits (deferred unwrap; get() blocks on the same underlying
  /// result and rethrows the same errors).
  [[nodiscard]] std::future<tensor::Tensor> submit(
      tensor::Tensor batch, SloClass slo = SloClass::kInteractive);

  /// Open a streaming session over the served plan: persistent neuron
  /// state on the executor, one timestep per submit_stream() call.
  /// `pipeline_threads` sizes the session's layer pipeline (1 = serial;
  /// see StreamSession) — serial by default so many concurrent sessions
  /// do not multiply thread counts. Returns the session id. Throws
  /// ShedError after shutdown().
  [[nodiscard]] uint64_t open_stream(int64_t pipeline_threads = 1);

  /// Enqueue one timestep frame [N, ...] for an open stream. Steps of a
  /// session run in submission order; a worker drains every queued step
  /// of the session in one pipelined pass (StreamSession::run_steps).
  /// Stream steps outrank interactive requests (slo_priority) and are
  /// never shed by admission control — dropping a middle timestep would
  /// corrupt the temporal state — but steps queued at shutdown() or
  /// after close_stream() resolve with ShedError. latency_ms of each
  /// result covers enqueue -> step completion. Unknown ids resolve with
  /// std::invalid_argument through the future.
  [[nodiscard]] std::future<InferenceResult> submit_stream(uint64_t stream,
                                                          tensor::Tensor frame);

  /// Close a stream: queued steps still run, then the session and its
  /// neuron state are dropped. Idempotent; unknown ids are a no-op.
  void close_stream(uint64_t stream);

  /// Streaming sessions currently open.
  [[nodiscard]] int64_t open_streams() const;

  /// Convenience: submit every batch, wait for all, return results in
  /// submission order. Rethrows the first ShedError/execution error.
  [[nodiscard]] std::vector<tensor::Tensor> run_all(
      const std::vector<tensor::Tensor>& batches);

  /// Stop accepting work, finish queued requests, join workers.
  /// Idempotent; also called by the destructor.
  void shutdown();

  /// Request workers actually spawned (the budget divided by the plan's
  /// intra-op lanes).
  [[nodiscard]] int64_t num_threads() const {
    return static_cast<int64_t>(workers_.size());
  }
  /// Intra-op lanes of the served plan (1 = serial plan).
  [[nodiscard]] int64_t intra_op_threads() const { return intra_op_threads_; }

  /// Requests fully processed so far.
  [[nodiscard]] int64_t completed_requests() const;
  /// Samples (batch rows) fully processed so far.
  [[nodiscard]] int64_t completed_samples() const;

  /// Throughput totals, service / queue-wait / end-to-end percentiles
  /// over the most recent kLatencyWindow requests (nearest rank), shed
  /// and SLO-violation counts, queue depth, the admission predictor's
  /// current estimate, and per-worker utilization since first request.
  [[nodiscard]] ExecutorStats stats() const;

  /// Latency samples retained for percentile estimation.
  static constexpr std::size_t kLatencyWindow = 8192;
  /// Queue waits retained by the admission predictor's histogram; a
  /// short window so the prediction decays quickly after a load spike.
  /// The window only refreshes through completions — the idle gate and
  /// probe admissions (kShedProbeInterval) guarantee completions keep
  /// happening even out of a shed-everything regime.
  static constexpr std::size_t kPredictorWindow = 512;
  /// Every Nth consecutive request the admission predictor would shed
  /// is admitted anyway, so the predictor keeps observing reality and
  /// can re-open once the overload has passed.
  static constexpr int64_t kShedProbeInterval = 32;

 private:
  struct Request {
    tensor::Tensor batch;
    int64_t samples = 0;
    std::promise<InferenceResult> promise;
    SloClass slo = SloClass::kInteractive;
    /// When submit() enqueued the request: the queue-wait clock.
    std::chrono::steady_clock::time_point enqueued;
    /// enqueued + the class's SLO budget (== enqueued when slo_ms == 0,
    /// making EDF identical to arrival order).
    std::chrono::steady_clock::time_point deadline;
    /// Same instant on the trace clock (only filled while tracing).
    double trace_ts_us = 0.0;
    /// Enqueue -> pop wait, filled when a worker takes the request.
    double wait_ms = 0.0;
  };

  /// One scheduling bin: every queued request with this SLO class and
  /// per-sample shape (trailing dims; dim 0 is the batch axis). Within
  /// a bin, arrival order == deadline order, so the head is the bin's
  /// most urgent request. Empty bins are erased.
  struct SubQueue {
    SloClass slo = SloClass::kInteractive;
    std::vector<int64_t> shape;
    std::deque<Request> q;
  };

  /// One timestep waiting on a stream's own FIFO (never in the request
  /// sub-queues: per-session order is part of the semantics).
  struct StreamStep {
    tensor::Tensor frame;
    std::promise<InferenceResult> promise;
    std::chrono::steady_clock::time_point enqueued;
  };

  /// One open streaming session: the state-carrying StreamSession plus
  /// its step FIFO. `busy` marks a worker mid-drain (exactly one worker
  /// serves a session at a time — temporal order); `closed` defers the
  /// erase to that worker when set mid-drain.
  struct StreamEntry {
    std::unique_ptr<StreamSession> session;
    std::deque<StreamStep> steps;
    bool busy = false;
    bool closed = false;
  };

  void worker_loop(std::size_t worker);
  /// Lowest-id stream with runnable steps and no worker on it, or 0.
  /// Caller holds mu_.
  [[nodiscard]] uint64_t pick_stream_locked() const;
  /// Drain every queued step of stream `sid` in one pipelined pass and
  /// resolve the promises. Called by a worker that holds `lock`;
  /// releases it around execution, reacquires before returning.
  void drain_stream(uint64_t sid, std::unique_lock<std::mutex>& lock,
                    std::size_t worker);
  /// Index of the sub-queue whose head is most urgent ((class,
  /// deadline) lexicographic min), or -1 when nothing is queued.
  /// Caller holds mu_.
  [[nodiscard]] int pick_queue() const;
  /// Sub-queue index for (slo, shape), or -1. Caller holds mu_.
  [[nodiscard]] int find_queue(SloClass slo, const std::vector<int64_t>& shape) const;
  /// Admission predictor (ms). Caller holds mu_.
  [[nodiscard]] double predicted_wait_ms_locked() const;
  /// SLO budget of a class in ms (infinity semantics via slo_ms == 0
  /// are handled by the callers). Requires opts_.slo_ms > 0.
  [[nodiscard]] double budget_ms(SloClass slo) const;
  /// Pop the most urgent request plus same-shape followers up to the
  /// coalesce cap, holding the group open for stragglers only while
  /// nothing else is runnable (caller holds mu_ via `lock`). With an
  /// SLO configured, heads that are already doomed — expected finish
  /// past their deadline even if started now — are popped into `doomed`
  /// instead (lazy shed at dispatch; the caller resolves them with
  /// ShedError outside the lock). May return an empty group when every
  /// queued head was doomed.
  std::vector<Request> take_group(std::unique_lock<std::mutex>& lock,
                                  std::vector<Request>& doomed);
  /// Pop the head of queues_[qi] with wait bookkeeping. Caller holds mu_.
  Request pop_head(int qi);
  void run_group(std::vector<Request>& group, std::size_t worker);
  void record(const std::vector<Request>& group, int64_t samples, double ms, bool fused,
              std::size_t worker);
  /// Resolve a request's future with ShedError. Caller must NOT hold mu_.
  static void shed(Request& req, const char* why);
  /// Same for a stream step.
  static void shed_step(StreamStep& step, const char* why);

  const CompiledNetwork& net_;
  const ExecutorOptions opts_;
  int64_t intra_op_threads_ = 1;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  /// unique_ptr: SubQueue holds promises (move-only) and vector
  /// reallocation must not try to copy them.
  std::vector<std::unique_ptr<SubQueue>> queues_;
  int64_t queued_requests_ = 0;  ///< total across sub-queues
  int64_t queued_samples_ = 0;   ///< total batch rows across sub-queues
  /// Open streaming sessions by id (std::map: pick_stream_locked scans
  /// in id order, so stream service order is deterministic).
  std::map<uint64_t, StreamEntry> streams_;
  uint64_t next_stream_id_ = 1;
  int64_t queued_stream_steps_ = 0;  ///< steps waiting across all streams
  int64_t stream_steps_ = 0;         ///< steps fully processed (all-time)
  /// Samples taken by workers but not yet finished: the admission
  /// predictor's drain term counts them too (a running fused pass
  /// delays new arrivals just like queued work does).
  int64_t inflight_samples_ = 0;
  bool stopping_ = false;
  bool has_first_request_ = false;
  std::chrono::steady_clock::time_point first_request_;  ///< utilization denominator
  int64_t completed_requests_ = 0;
  int64_t completed_samples_ = 0;
  int64_t fused_batches_ = 0;
  int64_t coalesced_requests_ = 0;
  int64_t shed_requests_ = 0;
  int64_t backpressure_rejections_ = 0;
  int64_t slo_violations_ = 0;
  /// EMA of observed service time per sample (ms); the drain-time term
  /// of the admission predictor.
  double ema_service_per_sample_ms_ = 0.0;
  /// Consecutive would-shed submits since the last admission; at
  /// kShedProbeInterval the next one is admitted as a probe.
  int64_t sheds_since_probe_ = 0;
  std::vector<double> latencies_ms_;  ///< ring of the last kLatencyWindow requests
  std::size_t latency_next_ = 0;      ///< ring write cursor
  std::vector<double> waits_ms_;      ///< queue-wait ring, same window
  std::size_t wait_next_ = 0;
  std::vector<double> e2e_ms_;        ///< wait + service ring, same window
  std::size_t e2e_next_ = 0;
  /// Admission predictor: log-bucket counts (util::HistogramSnapshot
  /// bucket math) over the last kPredictorWindow queue waits in us.
  std::array<int32_t, util::HistogramSnapshot::kBuckets> recent_wait_counts_{};
  std::vector<int16_t> recent_wait_buckets_;  ///< ring of bucket indices
  std::size_t recent_wait_next_ = 0;
  std::vector<double> busy_ms_;       ///< per-worker execution time

  std::vector<std::thread> workers_;
};

}  // namespace ndsnn::runtime
