// BatchExecutor: throughput-oriented serving front-end for a
// CompiledNetwork.
//
// A small pool of request workers drains a FIFO of inference requests;
// each request is one input batch [N, ...] and resolves to the mean
// logits [N, classes] through a std::future. The CompiledNetwork plan is
// immutable, so workers share it without synchronization.
//
// Thread budget: the constructor's num_threads is the *total* worker
// budget. When the plan was compiled with an intra-op pool
// (CompileOptions::num_threads > 1), the executor spawns
// max(1, num_threads / intra_op_threads) request workers so
// inter-request and intra-op parallelism split the budget instead of
// oversubscribing the machine; a serial plan keeps the historical
// one-worker-per-thread behaviour.
//
// Adaptive coalescing (ExecutorOptions): many concurrent *small*
// requests are the worst case for per-run fixed costs (per-op dispatch,
// im2col setup, activation allocation). With max_coalesce > 1 a worker
// that pops a request keeps popping shape-compatible ones — waiting up
// to max_wait_us for stragglers — and fuses them into one time-major
// pass over the concatenated batch, then splits the logits back per
// request. Every op processes batch rows independently, so the fused
// logits are bitwise identical to running each request alone
// (tests/runtime/batch_executor_test.cpp pins this).
//
// Determinism: a request's result depends only on its input and the
// plan — never on which worker ran it, how many workers exist, or which
// requests it was fused with.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/compiled_network.hpp"
#include "tensor/tensor.hpp"

namespace ndsnn::runtime {

/// Serving statistics snapshot. Service latency (mean/p50/p95/p99/max)
/// is measured per request from execution start to completion on the
/// worker; queue wait (queue_*) is measured separately from enqueue to
/// the moment a worker pops the request, so the end-to-end latency a
/// client observes is *wait + service* — under load the queue side is
/// the latency frontier and was previously invisible. Every request of
/// a fused pass reports that pass's service latency and its own queue
/// wait. Percentiles are nearest-rank over a sliding window of the
/// most recent requests (kLatencyWindow) so a long-lived executor's
/// memory and stats() cost stay bounded; requests/samples are all-time
/// totals.
struct ExecutorStats {
  int64_t requests = 0;  ///< requests fully processed
  int64_t samples = 0;   ///< batch rows fully processed
  int64_t fused_batches = 0;       ///< coalesced passes (>= 2 requests each)
  int64_t coalesced_requests = 0;  ///< requests served inside a fused pass
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
  /// Enqueue -> execution-start wait over the same sliding window.
  double queue_mean_ms = 0.0;
  double queue_p50_ms = 0.0;
  double queue_p95_ms = 0.0;
  /// Requests waiting in the queue at snapshot time.
  int64_t queue_depth = 0;
  /// Mean fraction of wall time the request workers spent executing
  /// (busy time / (elapsed * workers) since construction).
  double worker_utilization = 0.0;
  /// Per-worker busy fraction (index = worker spawn order).
  std::vector<double> utilization_per_worker;
};

/// Request-coalescing knobs (defaults: coalescing off).
struct ExecutorOptions {
  /// Maximum *samples* (batch rows) per fused pass; <= 1 disables
  /// coalescing. A request bigger than the cap still runs alone.
  int64_t max_coalesce = 1;
  /// How long a worker holding fewer than max_coalesce samples waits
  /// for more compatible requests before running what it has. 0 = only
  /// fuse what is already queued.
  int64_t max_wait_us = 0;
};

class BatchExecutor {
 public:
  /// Spin up workers over a compiled plan with a total thread budget of
  /// `num_threads` (>= 1; see the header comment for the inter/intra
  /// split). The plan must outlive the executor.
  BatchExecutor(const CompiledNetwork& net, int64_t num_threads,
                const ExecutorOptions& opts = {});

  /// Drains the queue, then joins the workers.
  ~BatchExecutor();

  BatchExecutor(const BatchExecutor&) = delete;
  BatchExecutor& operator=(const BatchExecutor&) = delete;

  /// Enqueue one inference request; the future resolves to the mean
  /// logits [N, classes]. Throws std::runtime_error after shutdown().
  [[nodiscard]] std::future<tensor::Tensor> submit(tensor::Tensor batch);

  /// Convenience: submit every batch, wait for all, return results in
  /// submission order.
  [[nodiscard]] std::vector<tensor::Tensor> run_all(
      const std::vector<tensor::Tensor>& batches);

  /// Stop accepting work, finish queued requests, join workers.
  /// Idempotent; also called by the destructor.
  void shutdown();

  /// Request workers actually spawned (the budget divided by the plan's
  /// intra-op lanes).
  [[nodiscard]] int64_t num_threads() const {
    return static_cast<int64_t>(workers_.size());
  }
  /// Intra-op lanes of the served plan (1 = serial plan).
  [[nodiscard]] int64_t intra_op_threads() const { return intra_op_threads_; }

  /// Requests fully processed so far.
  [[nodiscard]] int64_t completed_requests() const;
  /// Samples (batch rows) fully processed so far.
  [[nodiscard]] int64_t completed_samples() const;

  /// Throughput totals, per-request service latency and queue-wait
  /// percentiles over the most recent kLatencyWindow requests
  /// (p50/p95/p99 by nearest rank), queue depth, and per-worker
  /// utilization. End-to-end = queue wait + service.
  [[nodiscard]] ExecutorStats stats() const;

  /// Latency samples retained for percentile estimation.
  static constexpr std::size_t kLatencyWindow = 8192;

 private:
  struct Request {
    tensor::Tensor batch;
    int64_t samples = 0;
    std::promise<tensor::Tensor> promise;
    /// When submit() enqueued the request: the queue-wait clock.
    std::chrono::steady_clock::time_point enqueued;
    /// Same instant on the trace clock (only filled while tracing).
    double trace_ts_us = 0.0;
    /// Enqueue -> pop wait, filled by take_group.
    double wait_ms = 0.0;
  };

  void worker_loop(std::size_t worker);
  /// Pop one request plus any coalescable followers (caller holds mu_);
  /// stamps each popped request's queue wait and emits its queue-wait
  /// trace span.
  std::vector<Request> take_group(std::unique_lock<std::mutex>& lock);
  void run_group(std::vector<Request>& group, std::size_t worker);
  void record(const std::vector<Request>& group, int64_t samples, double ms, bool fused,
              std::size_t worker);

  const CompiledNetwork& net_;
  const ExecutorOptions opts_;
  int64_t intra_op_threads_ = 1;
  std::chrono::steady_clock::time_point start_;  ///< utilization denominator

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Request> queue_;
  bool stopping_ = false;
  int64_t completed_requests_ = 0;
  int64_t completed_samples_ = 0;
  int64_t fused_batches_ = 0;
  int64_t coalesced_requests_ = 0;
  std::vector<double> latencies_ms_;  ///< ring of the last kLatencyWindow requests
  std::size_t latency_next_ = 0;      ///< ring write cursor
  std::vector<double> waits_ms_;      ///< queue-wait ring, same window
  std::size_t wait_next_ = 0;
  std::vector<double> busy_ms_;       ///< per-worker execution time

  std::vector<std::thread> workers_;
};

}  // namespace ndsnn::runtime
