// Compile-time microbenchmark autotuner (CompileOptions::autotune).
//
// The static lowering heuristics (min_sparsity, bcsr_min_occupancy)
// are hand-calibrated crossovers: right on the zoo models they were
// tuned on, wrong whenever a new mask pattern, block shape, or kernel
// tier moves the real crossover. autotune_layer replaces the guess
// with a measurement: for one weight layer it builds every candidate
// execution config — {dense GEMM, CSR, BCSR x block shapes} x {kernel
// tiers} — on the layer's *actual extracted weights*, times the GEMM
// the op would really run (spmm_t for linear layers, spmm for conv
// lowering) on a synthetic batch with warmup + min-of-repeats, and
// returns the measured winner.
//
// Probing costs a few ms per layer, so results are cached process-wide
// keyed by (rows, cols, precision, probe kind, mask fingerprint,
// resolved tier): recompiling the same network — the serving front-end
// re-loading a checkpoint, tests compiling the same model repeatedly —
// hits the cache and decides instantly. The fingerprint hashes the
// surviving-entry pattern (FNV-1a over row-major nonzero positions
// after prune_threshold), so two layers with equal shapes but
// different masks tune independently, while reloading identical
// weights reuses the entry.
#pragma once

#include <cstdint>

#include "runtime/plan.hpp"
#include "sparse/quant.hpp"
#include "tensor/tensor.hpp"
#include "util/cpuinfo.hpp"

namespace ndsnn::runtime {

struct CompileOptions;

/// Which GEMM shape the probe times — the one the lowered op will run.
enum class AutotuneProbe {
  kSpmmT,  ///< linear layers: C[m, rows] = B * Wᵀ (Csr/Bcsr::spmm_t, matmul_nt)
  kSpmm,   ///< conv lowering: C[rows, n] = W * patches (Csr/Bcsr::spmm, matmul)
};

/// The measured winner for one layer.
struct AutotuneChoice {
  Kernel kernel = Kernel::kCsr;
  int64_t block_rows = 4;  ///< meaningful when kernel == kBcsr
  int64_t block_cols = 4;
  util::simd::Tier tier = util::simd::Tier::kScalar;  ///< never kAuto
  bool from_cache = false;  ///< decided by cache lookup, no probes ran
  double best_us = 0.0;     ///< winner's min-of-repeats per-call time
};

/// Measure the candidates for one weight layer and return the winner.
/// `weight` is the layer's weight tensor (any rank >= 2, lowered to
/// [dim(0), numel/dim(0)] exactly like sparse::Csr::from_weights).
/// `precision` is the value-plane precision the sparse candidates will
/// deploy with (the dense candidate always runs fp32 — quantised
/// planes only exist on the sparse formats, matching the compiler's
/// contract). Honors opts.prune_threshold, opts.quant_group_size and
/// opts.kernel_tier (a pinned tier restricts the tier axis to it).
/// Thread-safe; probes run serially on the calling thread.
[[nodiscard]] AutotuneChoice autotune_layer(const tensor::Tensor& weight,
                                            sparse::Precision precision,
                                            AutotuneProbe probe,
                                            const CompileOptions& opts);

/// Process-wide cache observability (tests, metrics endpoints).
struct AutotuneCacheStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t entries = 0;
};

[[nodiscard]] AutotuneCacheStats autotune_cache_stats();

/// Drop every cached decision (tests that need cold-cache behaviour).
void autotune_cache_clear();

}  // namespace ndsnn::runtime
