#include "runtime/plan.hpp"

#include <sstream>
#include <utility>

#include "runtime/trace.hpp"
#include "util/thread_pool.hpp"

namespace ndsnn::runtime {

int64_t Plan::intra_op_threads() const { return pool ? pool->lanes() : 1; }

const char* kernel_tag(Kernel k) {
  switch (k) {
    case Kernel::kDense: return "dense";
    case Kernel::kCsr: return "csr";
    case Kernel::kBcsr: return "bcsr";
  }
  return "?";
}

SpikeBatch SpikeBatch::scan(const tensor::Tensor& t) {
  const int64_t rows = t.rank() >= 1 ? t.dim(0) : 1;
  const int64_t row_size = rows > 0 ? t.numel() / rows : 0;
  SpikeBatchBuilder builder(rows, row_size);
  const float* p = t.data();
  const int64_t total = t.numel();
  for (int64_t i = 0; i < total; ++i) {
    if (p[i] != 0.0F) builder.push(i);
  }
  return builder.finish();
}

double SpikeBatch::rate() const {
  const int64_t total = rows * row_size;
  if (total == 0) return 0.0;
  return static_cast<double>(idx.size()) / static_cast<double>(total);
}

tensor::Tensor Plan::execute(tensor::Tensor encoded) const {
  Activation x(std::move(encoded));
  PlanProfile* prof = profile && profile->enabled() ? profile.get() : nullptr;
  if (prof == nullptr && !trace::enabled()) {
    // Fast path: with tracing and profiling off (the default), the only
    // instrumentation cost is the two relaxed loads above — the branch
    // predicts perfectly across a serving run.
    for (const auto& op : ops) x = op->run(x);
    return std::move(x.tensor);
  }
  if (prof != nullptr) prof->count_execute();
  for (std::size_t i = 0; i < ops.size(); ++i) {
    x = trace::run_op_instrumented(*ops[i], reports[i], x, prof, i);
  }
  return std::move(x.tensor);
}

int64_t Plan::stored_weights() const {
  int64_t total = 0;
  for (const auto& r : reports) total += r.nnz;
  return total;
}

int64_t Plan::stored_bytes() const {
  int64_t total = 0;
  for (const auto& r : reports) total += r.bytes;
  return total;
}

double Plan::overall_sparsity() const {
  int64_t weights = 0;
  double zero_weighted = 0.0;
  for (const auto& r : reports) {
    weights += r.weights;
    zero_weighted += r.sparsity * static_cast<double>(r.weights);
  }
  if (weights == 0) return 0.0;
  return zero_weighted / static_cast<double>(weights);
}

std::string Plan::summary() const {
  std::ostringstream os;
  os << "CompiledNetwork: T=" << timesteps << ", " << ops.size() << " ops, "
     << stored_weights() << " stored weights ("
     << static_cast<int>(100.0 * overall_sparsity() + 0.5) << "% source sparsity, est. "
     << static_cast<int>(100.0 * estimated_spike_rate + 0.5) << "% firing rate)\n";
  for (const auto& r : reports) {
    os << "  [" << r.kind << (r.event ? "+event" : "");
    if (r.precision != sparse::Precision::kFp32) {
      os << " " << sparse::precision_tag(r.precision);
    }
    if (r.weights > 0) {
      os << " " << util::simd::name(r.tier) << (r.autotuned ? "*" : "");
    }
    os << "] " << r.layer;
    if (r.weights > 0) {
      os << "  nnz=" << r.nnz << "/" << r.weights << " (" << r.bytes << " B)";
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace ndsnn::runtime
