#include "runtime/stream_session.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "runtime/trace.hpp"
#include "util/metrics.hpp"
#include "util/thread_pool.hpp"

namespace ndsnn::runtime {

using tensor::Tensor;

namespace {

/// Registry references resolved once (lookups lock; hot path must not).
struct StreamMetrics {
  util::Counter& steps;
  util::Counter& delta_skips;

  static StreamMetrics& get() {
    static StreamMetrics m{
        util::MetricsRegistry::global().counter("stream.steps"),
        util::MetricsRegistry::global().counter("stream.delta_skips"),
    };
    return m;
  }
};

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                   start)
      .count();
}

}  // namespace

StreamSession::StreamSession(const CompiledNetwork& net, int64_t pipeline_threads)
    : plan_(&net.plan_ir()) {
  if (plan_->ops.empty()) {
    throw std::invalid_argument("StreamSession: plan has no ops");
  }
  stages_.reserve(plan_->ops.size());
  for (const auto& op : plan_->ops) {
    Stage stage;
    stage.op = op.get();
    stage.state = op->make_state();
    stages_.push_back(std::move(stage));
  }
  const int64_t lanes = util::ThreadPool::resolve_lanes(pipeline_threads);
  if (lanes > 1) pool_ = std::make_unique<util::ThreadPool>(lanes);
}

StreamSession::~StreamSession() = default;

int64_t StreamSession::pipeline_threads() const { return pool_ ? pool_->lanes() : 1; }

Activation StreamSession::make_input(const Tensor& frame) {
  if (frame.rank() < 2) {
    throw std::invalid_argument("StreamSession: expected a frame [N, ...], got " +
                                frame.shape().str());
  }
  return {frame, SpikeBatch::scan(frame)};
}

Activation StreamSession::run_stage(Stage& stage, const Activation& input,
                                    int64_t* skips) {
  const bool silent = input.has_events && input.events.idx.empty();
  if (silent && !stage.state) {
    // Delta path: a stateless op on an all-zero input always produces
    // the same output for a given shape — cache it the first time (by
    // actually running the op, so e.g. a bias lands in the cache
    // exactly as computed) and reuse it afterwards.
    if (stage.zero_cached && stage.zero_in_shape == input.tensor.shape()) {
      trace::ScopedSpan span("delta-skip", "stream");
      span.rows(input.tensor.dim(0));
      StreamMetrics::get().delta_skips.add(1);
      delta_skips_.fetch_add(1, std::memory_order_relaxed);
      ++*skips;
      return stage.zero_out;
    }
    Activation out = stage.op->step(input, nullptr);
    stage.zero_in_shape = input.tensor.shape();
    stage.zero_out = out;
    stage.zero_cached = true;
    return out;
  }
  return stage.op->step(input, stage.state.get());
}

InferenceResult StreamSession::step(const InferenceRequest& request) {
  const auto start = std::chrono::steady_clock::now();
  int64_t skips = 0;
  Activation x = make_input(request.batch);
  for (auto& stage : stages_) x = run_stage(stage, x, &skips);
  ++steps_;
  StreamMetrics::get().steps.add(1);
  InferenceResult result;
  result.logits = std::move(x.tensor);
  result.skipped_ops = skips;
  result.latency_ms = ms_since(start);
  return result;
}

InferenceResult StreamSession::step(const Tensor& frame) {
  return step(InferenceRequest{frame, SloClass::kStream});
}

std::vector<InferenceResult> StreamSession::run_steps(const std::vector<Tensor>& frames) {
  if (frames.empty()) return {};
  const auto start = std::chrono::steady_clock::now();
  const auto num_frames = static_cast<int64_t>(frames.size());
  const auto num_stages = static_cast<int64_t>(stages_.size());
  std::vector<Activation> cur(frames.size());
  std::vector<int64_t> skips(frames.size(), 0);
  std::vector<InferenceResult> results(frames.size());
  trace::ScopedSpan window_span("stream-window", "stream");
  window_span.rows(num_frames);
  // Wavefront schedule: all (stage s, step t) with s + t == w run in
  // one fork-join. Distinct tasks of a wavefront touch distinct stages
  // (per-stage state) and distinct steps (cur/skips/results slots), so
  // lanes never race; the barrier between wavefronts orders every
  // stage's steps, which keeps the results bitwise identical to the
  // serial step() loop for any lane count.
  for (int64_t w = 0; w < num_stages + num_frames - 1; ++w) {
    const int64_t t_lo = std::max<int64_t>(0, w - num_stages + 1);
    const int64_t t_hi = std::min<int64_t>(num_frames - 1, w);
    const auto run_task = [&](int64_t k) {
      const int64_t t = t_lo + k;
      const int64_t s = w - t;
      const Activation in =
          s == 0 ? make_input(frames[static_cast<std::size_t>(t)])
                 : std::move(cur[static_cast<std::size_t>(t)]);
      cur[static_cast<std::size_t>(t)] =
          run_stage(stages_[static_cast<std::size_t>(s)], in,
                    &skips[static_cast<std::size_t>(t)]);
      if (s == num_stages - 1) {
        auto& result = results[static_cast<std::size_t>(t)];
        result.logits = std::move(cur[static_cast<std::size_t>(t)].tensor);
        result.skipped_ops = skips[static_cast<std::size_t>(t)];
        result.latency_ms = ms_since(start);
      }
    };
    const int64_t tasks = t_hi - t_lo + 1;
    if (pool_ && tasks > 1) {
      pool_->parallel_chunks(tasks, run_task);
    } else {
      for (int64_t k = 0; k < tasks; ++k) run_task(k);
    }
  }
  steps_ += num_frames;
  StreamMetrics::get().steps.add(num_frames);
  return results;
}

void StreamSession::reset() {
  for (auto& stage : stages_) stage.state = stage.op->make_state();
  steps_ = 0;
}

}  // namespace ndsnn::runtime
