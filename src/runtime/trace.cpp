#include "runtime/trace.hpp"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <stdexcept>

#include "util/json.hpp"

namespace ndsnn::runtime {

namespace trace {

namespace detail {
std::atomic<bool> g_enabled{false};
}

namespace {

/// Registry of every thread's ring: owns a shared_ptr alongside the
/// thread_local one, so spans recorded by a thread survive its exit
/// until the next reset().
struct RingRegistry {
  std::mutex mu;
  std::vector<std::shared_ptr<Ring>> rings;
  std::atomic<std::size_t> capacity{std::size_t{1} << 15};

  static RingRegistry& get() {
    static RingRegistry registry;
    return registry;
  }

  std::shared_ptr<Ring> make_ring() {
    auto ring = std::make_shared<Ring>(capacity.load(std::memory_order_relaxed));
    const std::lock_guard<std::mutex> lock(mu);
    rings.push_back(ring);
    return ring;
  }
};

Ring& thread_ring() {
  thread_local const std::shared_ptr<Ring> ring = RingRegistry::get().make_ring();
  return *ring;
}

std::chrono::steady_clock::time_point epoch() {
  static const auto t0 = std::chrono::steady_clock::now();
  return t0;
}

}  // namespace

Ring::Ring(std::size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {
  buf_.reserve(std::min<std::size_t>(capacity_, 1024));
}

void Ring::push(Span&& s) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (buf_.size() < capacity_) {
    buf_.push_back(std::move(s));
  } else {
    buf_[static_cast<std::size_t>(total_) % capacity_] = std::move(s);
  }
  ++total_;
}

std::vector<Span> Ring::spans() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<Span> out;
  out.reserve(buf_.size());
  if (buf_.size() < capacity_) {
    out = buf_;
  } else {
    // Wrapped: the oldest retained span sits at the write cursor.
    const std::size_t start = static_cast<std::size_t>(total_) % capacity_;
    for (std::size_t i = 0; i < capacity_; ++i) {
      out.push_back(buf_[(start + i) % capacity_]);
    }
  }
  return out;
}

std::size_t Ring::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return buf_.size();
}

int64_t Ring::dropped() const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto cap = static_cast<int64_t>(capacity_);
  return total_ > cap ? total_ - cap : 0;
}

void Ring::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  buf_.clear();
  total_ = 0;
}

void set_enabled(bool on) { detail::g_enabled.store(on, std::memory_order_relaxed); }

double now_us() {
  const auto dt = std::chrono::steady_clock::now() - epoch();
  return std::chrono::duration<double, std::micro>(dt).count();
}

uint32_t thread_id() {
  static std::atomic<uint32_t> next{1};
  thread_local const uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void record(Span&& s) {
  s.tid = thread_id();
  thread_ring().push(std::move(s));
}

std::vector<Span> snapshot() {
  std::vector<std::shared_ptr<Ring>> rings;
  {
    RingRegistry& reg = RingRegistry::get();
    const std::lock_guard<std::mutex> lock(reg.mu);
    rings = reg.rings;
  }
  std::vector<Span> all;
  for (const auto& ring : rings) {
    std::vector<Span> part = ring->spans();
    all.insert(all.end(), std::make_move_iterator(part.begin()),
               std::make_move_iterator(part.end()));
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const Span& a, const Span& b) { return a.ts_us < b.ts_us; });
  return all;
}

int64_t dropped() {
  RingRegistry& reg = RingRegistry::get();
  const std::lock_guard<std::mutex> lock(reg.mu);
  int64_t total = 0;
  for (const auto& ring : reg.rings) total += ring->dropped();
  return total;
}

void reset() {
  RingRegistry& reg = RingRegistry::get();
  const std::lock_guard<std::mutex> lock(reg.mu);
  for (const auto& ring : reg.rings) ring->clear();
}

void set_ring_capacity(std::size_t capacity) {
  RingRegistry::get().capacity.store(capacity == 0 ? 1 : capacity,
                                     std::memory_order_relaxed);
}

std::string chrome_json(const std::vector<Span>& spans) {
  util::JsonWriter json;
  json.begin_object();
  json.kv("displayTimeUnit", "ms");
  json.key("traceEvents").begin_array();
  for (const Span& s : spans) {
    json.begin_object();
    json.kv("name", s.name);
    json.kv("cat", s.cat);
    json.kv("ph", "X");  // complete event: start + duration in one record
    json.kv("pid", 1);
    json.kv("tid", static_cast<int64_t>(s.tid));
    json.kv("ts", s.ts_us);
    json.kv("dur", s.dur_us);
    json.key("args").begin_object();
    if (!s.kind.empty()) json.kv("kind", s.kind);
    if (s.rows >= 0) json.kv("rows", s.rows);
    if (s.spike_rate >= 0) json.kv("spike_rate", s.spike_rate);
    if (s.bytes >= 0) json.kv("bytes", s.bytes);
    json.end_object();
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return json.str();
}

void write_chrome_file(const std::string& path) {
  const std::string doc = chrome_json(snapshot());
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw std::runtime_error("trace::write_chrome_file: cannot open " + path);
  }
  out << doc;
}

}  // namespace trace

PlanProfile::PlanProfile(const std::vector<OpReport>& reports) {
  labels_.reserve(reports.size());
  for (const OpReport& r : reports) {
    std::string kind = r.kind;
    if (r.event) kind += "+event";
    if (r.precision != sparse::Precision::kFp32) {
      kind += std::string(" ") + sparse::precision_tag(r.precision);
    }
    labels_.emplace_back(r.layer, std::move(kind));
  }
  slots_ = std::make_unique<Slot[]>(labels_.size());
}

void PlanProfile::record(std::size_t op, double dur_us, int64_t rows, double rate) {
  if (op >= labels_.size()) return;
  Slot& slot = slots_[op];
  slot.hist.record(dur_us);
  slot.runs.fetch_add(1, std::memory_order_relaxed);
  slot.rows.fetch_add(rows, std::memory_order_relaxed);
  if (rate >= 0.0) {
    double cur = slot.ema.load(std::memory_order_relaxed);
    for (;;) {
      const double next = cur < 0.0 ? rate : cur * (1.0 - kEmaAlpha) + rate * kEmaAlpha;
      if (slot.ema.compare_exchange_weak(cur, next, std::memory_order_relaxed)) break;
    }
  }
}

std::vector<PlanProfile::OpStats> PlanProfile::snapshot() const {
  std::vector<OpStats> out;
  out.reserve(labels_.size());
  for (std::size_t i = 0; i < labels_.size(); ++i) {
    const Slot& slot = slots_[i];
    const util::HistogramSnapshot h = slot.hist.snapshot();
    OpStats s;
    s.layer = labels_[i].first;
    s.kind = labels_[i].second;
    s.runs = slot.runs.load(std::memory_order_relaxed);
    s.rows = slot.rows.load(std::memory_order_relaxed);
    s.mean_us = h.mean();
    s.p50_us = h.percentile(0.50);
    s.p95_us = h.percentile(0.95);
    s.ema_rate = slot.ema.load(std::memory_order_relaxed);
    out.push_back(std::move(s));
  }
  return out;
}

void PlanProfile::reset() {
  executes_.store(0, std::memory_order_relaxed);
  for (std::size_t i = 0; i < labels_.size(); ++i) {
    Slot& slot = slots_[i];
    slot.hist.reset();
    slot.runs.store(0, std::memory_order_relaxed);
    slot.rows.store(0, std::memory_order_relaxed);
    slot.ema.store(-1.0, std::memory_order_relaxed);
  }
}

namespace trace {

namespace {

/// Observed nonzero fraction of a dense tensor (the spike rate of a
/// neuron op's output when no event view was built).
double nonzero_fraction(const tensor::Tensor& t) {
  const int64_t n = t.numel();
  if (n == 0) return 0.0;
  const float* p = t.data();
  int64_t nz = 0;
  for (int64_t i = 0; i < n; ++i) nz += p[i] != 0.0F;
  return static_cast<double>(nz) / static_cast<double>(n);
}

}  // namespace

Activation run_op_instrumented(const Op& op, const OpReport& report, const Activation& in,
                               PlanProfile* profile, std::size_t index) {
  const bool traced = enabled();
  const int64_t in_bytes = in.tensor.numel() * static_cast<int64_t>(sizeof(float));
  const double t0 = now_us();
  Activation out = op.run(in);
  const double dur = now_us() - t0;

  const int64_t rows = out.tensor.rank() >= 1 ? out.tensor.dim(0) : 1;
  double rate = -1.0;
  if (out.has_events) {
    rate = out.events.rate();
  } else if (report.kind == "lif" || report.kind == "alif") {
    rate = nonzero_fraction(out.tensor);
  }
  if (profile != nullptr) profile->record(index, dur, rows, rate);
  if (traced) {
    Span s;
    s.name = report.layer;
    s.cat = "op";
    s.ts_us = t0;
    s.dur_us = dur;
    s.kind = report.kind;
    if (report.event) s.kind += "+event";
    if (report.precision != sparse::Precision::kFp32) {
      s.kind += std::string(" ") + sparse::precision_tag(report.precision);
    }
    s.rows = rows;
    s.spike_rate = rate;
    // Approximate bytes touched: weight structure + input + output
    // activations (each read/written once per run).
    s.bytes = report.bytes + in_bytes +
              out.tensor.numel() * static_cast<int64_t>(sizeof(float));
    record(std::move(s));
  }
  return out;
}

}  // namespace trace

}  // namespace ndsnn::runtime
