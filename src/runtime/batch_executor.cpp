#include "runtime/batch_executor.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "util/stopwatch.hpp"

namespace ndsnn::runtime {

BatchExecutor::BatchExecutor(const CompiledNetwork& net, int64_t num_threads) : net_(net) {
  if (num_threads < 1) {
    throw std::invalid_argument("BatchExecutor: num_threads must be >= 1");
  }
  workers_.reserve(static_cast<std::size_t>(num_threads));
  for (int64_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

BatchExecutor::~BatchExecutor() { shutdown(); }

std::future<tensor::Tensor> BatchExecutor::submit(tensor::Tensor batch) {
  const int64_t samples = batch.rank() >= 1 ? batch.dim(0) : 1;
  std::packaged_task<tensor::Tensor()> task(
      [this, batch = std::move(batch), samples]() mutable {
        const util::Stopwatch sw;
        tensor::Tensor logits = net_.run(batch);
        const double ms = sw.millis();
        {
          const std::lock_guard<std::mutex> lock(mu_);
          ++completed_requests_;
          completed_samples_ += samples;
          if (latencies_ms_.size() < kLatencyWindow) {
            latencies_ms_.push_back(ms);
          } else {
            latencies_ms_[latency_next_] = ms;
          }
          latency_next_ = (latency_next_ + 1) % kLatencyWindow;
        }
        return logits;
      });
  std::future<tensor::Tensor> future = task.get_future();
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) throw std::runtime_error("BatchExecutor: submit after shutdown");
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return future;
}

std::vector<tensor::Tensor> BatchExecutor::run_all(
    const std::vector<tensor::Tensor>& batches) {
  std::vector<std::future<tensor::Tensor>> futures;
  futures.reserve(batches.size());
  for (const auto& batch : batches) futures.push_back(submit(batch));
  std::vector<tensor::Tensor> results;
  results.reserve(batches.size());
  for (auto& f : futures) results.push_back(f.get());
  return results;
}

void BatchExecutor::shutdown() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ && workers_.empty()) return;
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

int64_t BatchExecutor::completed_requests() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return completed_requests_;
}

int64_t BatchExecutor::completed_samples() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return completed_samples_;
}

ExecutorStats BatchExecutor::stats() const {
  std::vector<double> sorted;
  ExecutorStats s;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    s.requests = completed_requests_;
    s.samples = completed_samples_;
    sorted = latencies_ms_;
  }
  if (sorted.empty()) return s;
  std::sort(sorted.begin(), sorted.end());
  double total = 0.0;
  for (const double v : sorted) total += v;
  const auto n = static_cast<int64_t>(sorted.size());
  // Nearest-rank percentile: smallest value with at least q*n samples at
  // or below it.
  const auto rank = [&](double q) {
    auto r = static_cast<int64_t>(std::ceil(q * static_cast<double>(n)));
    if (r < 1) r = 1;
    if (r > n) r = n;
    return sorted[static_cast<std::size_t>(r - 1)];
  };
  s.mean_ms = total / static_cast<double>(n);
  s.p50_ms = rank(0.50);
  s.p95_ms = rank(0.95);
  s.p99_ms = rank(0.99);
  s.max_ms = sorted.back();
  return s;
}

void BatchExecutor::worker_loop() {
  for (;;) {
    std::packaged_task<tensor::Tensor()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // exceptions propagate through the future
  }
}

}  // namespace ndsnn::runtime
