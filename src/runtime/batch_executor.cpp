#include "runtime/batch_executor.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "runtime/stream_session.hpp"
#include "runtime/trace.hpp"
#include "util/fault_injection.hpp"
#include "util/metrics.hpp"
#include "util/stopwatch.hpp"

namespace ndsnn::runtime {

using tensor::Shape;
using tensor::Tensor;

namespace {

/// Per-sample layout of a request: every dim after the batch axis.
/// Requests with equal keys (and equal SLO class) share a sub-queue and
/// are always fusable.
std::vector<int64_t> shape_key(const Tensor& t) {
  std::vector<int64_t> key;
  for (int64_t d = 1; d < t.rank(); ++d) key.push_back(t.dim(d));
  return key;
}

double ms_between(std::chrono::steady_clock::time_point a,
                  std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

/// Process-wide serving metrics (util::MetricsRegistry). Looked up once;
/// the references stay valid for the process lifetime.
struct ExecutorMetrics {
  util::Counter& requests;
  util::Counter& coalesced;
  util::Counter& shed;
  util::Gauge& queue_depth;
  util::Histogram& queue_wait_us;
  util::Histogram& service_us;

  static ExecutorMetrics& get() {
    auto& reg = util::MetricsRegistry::global();
    static ExecutorMetrics m{reg.counter("executor.requests"),
                             reg.counter("executor.coalesced_requests"),
                             reg.counter("executor.shed_requests"),
                             reg.gauge("executor.queue_depth"),
                             reg.histogram("executor.queue_wait_us"),
                             reg.histogram("executor.service_us")};
    return m;
  }
};

/// Concatenate request batches along dim 0.
Tensor concat_rows(const std::vector<Tensor*>& parts) {
  int64_t total = 0;
  for (const Tensor* t : parts) total += t->dim(0);
  std::vector<int64_t> dims;
  dims.push_back(total);
  for (int64_t d = 1; d < parts[0]->rank(); ++d) dims.push_back(parts[0]->dim(d));
  Tensor fused((Shape(dims)));
  float* dst = fused.data();
  for (const Tensor* t : parts) {
    std::copy(t->data(), t->data() + t->numel(), dst);
    dst += t->numel();
  }
  return fused;
}

}  // namespace

BatchExecutor::BatchExecutor(const CompiledNetwork& net, int64_t num_threads,
                             const ExecutorOptions& opts)
    : net_(net), opts_(opts), intra_op_threads_(net.intra_op_threads()) {
  if (num_threads < 1) {
    throw std::invalid_argument("BatchExecutor: num_threads must be >= 1");
  }
  recent_wait_buckets_.reserve(kPredictorWindow);
  // Split the budget: a plan with an intra-op pool already fans each
  // request across intra_op_threads lanes, so spawning num_threads
  // request workers on top would oversubscribe the machine.
  const int64_t request_workers = std::max<int64_t>(1, num_threads / intra_op_threads_);
  busy_ms_.assign(static_cast<std::size_t>(request_workers), 0.0);
  workers_.reserve(static_cast<std::size_t>(request_workers));
  for (int64_t i = 0; i < request_workers; ++i) {
    workers_.emplace_back([this, i] { worker_loop(static_cast<std::size_t>(i)); });
  }
}

BatchExecutor::~BatchExecutor() { shutdown(); }

double BatchExecutor::budget_ms(SloClass slo) const {
  return slo == SloClass::kBatch ? opts_.slo_ms * opts_.batch_slo_factor : opts_.slo_ms;
}

double BatchExecutor::predicted_wait_ms_locked() const {
  // Drain-time term: how long the queued work takes the worker pool at
  // the observed per-sample service rate. Reacts instantly to bursts.
  double depth_ms = 0.0;
  if (ema_service_per_sample_ms_ > 0.0 && !workers_.empty()) {
    depth_ms = static_cast<double>(queued_samples_ + inflight_samples_) *
               ema_service_per_sample_ms_ / static_cast<double>(workers_.size());
  }
  // Histogram term: p90 of the last kPredictorWindow observed queue
  // waits (log-bucket counts, util::HistogramSnapshot bucket math).
  // Remembers steady-state queueing a momentary depth dip hides. A high
  // percentile, not the median: admission protects the SLO of the
  // *tail*, and at 80% utilization the p90 wait runs several times the
  // median — a median predictor admits a tail that then violates.
  //
  // Only consulted while work is actually outstanding: the window
  // refreshes exclusively through completions, so with the executor
  // fully idle the entries are leftovers from the last spike and the
  // true wait of a new request is ~zero. Without this gate a spike that
  // fills the window with above-budget waits latches admission shut
  // forever — every submit sheds, nothing completes, the window never
  // decays (the probe admissions in submit() cover the non-idle version
  // of the same trap).
  double hist_ms = 0.0;
  const auto n = static_cast<int64_t>(recent_wait_buckets_.size());
  if (n > 0 && queued_samples_ + inflight_samples_ > 0) {
    const auto target =
        std::max<int64_t>(1, static_cast<int64_t>(std::ceil(0.90 * static_cast<double>(n))));
    int64_t seen = 0;
    for (int b = 0; b < util::HistogramSnapshot::kBuckets; ++b) {
      seen += recent_wait_counts_[static_cast<std::size_t>(b)];
      if (seen >= target) {
        hist_ms = util::HistogramSnapshot::bucket_mid(b) / 1e3;  // us -> ms
        break;
      }
    }
  }
  return std::max(depth_ms, hist_ms);
}

void BatchExecutor::shed(Request& req, const char* why) {
  req.promise.set_exception(std::make_exception_ptr(ShedError(why)));
}

void BatchExecutor::shed_step(StreamStep& step, const char* why) {
  step.promise.set_exception(std::make_exception_ptr(ShedError(why)));
}

std::future<InferenceResult> BatchExecutor::submit(InferenceRequest request) {
  if (request.slo == SloClass::kStream) {
    throw std::invalid_argument(
        "BatchExecutor::submit: kStream steps belong to a session — use "
        "open_stream/submit_stream");
  }
  const SloClass slo = request.slo;
  Request req;
  req.samples = request.batch.rank() >= 1 ? request.batch.dim(0) : 1;
  req.batch = std::move(request.batch);
  req.slo = slo;
  req.enqueued = std::chrono::steady_clock::now();
  req.deadline = req.enqueued;
  if (opts_.slo_ms > 0.0) {
    req.deadline += std::chrono::microseconds(
        static_cast<int64_t>(budget_ms(slo) * 1e3));
  }
  if (trace::enabled()) req.trace_ts_us = trace::now_us();
  std::future<InferenceResult> future = req.promise.get_future();
  bool rejected = false;
  const char* why = "";
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      rejected = true;
      why = "BatchExecutor: submit after shutdown";
      ++shed_requests_;
    } else if (opts_.slo_ms > 0.0 &&
               predicted_wait_ms_locked() +
                       ema_service_per_sample_ms_ * static_cast<double>(req.samples) >
                   budget_ms(slo) &&
               ++sheds_since_probe_ < kShedProbeInterval) {
      // The SLO is on end-to-end latency, so admission charges the
      // request its own expected service time on top of the queue wait.
      // Every kShedProbeInterval-th consecutive would-shed request is
      // admitted anyway (the probe): completions are the only thing
      // that refreshes the predictor's wait window and service EMA, so
      // a shed-everything regime would otherwise never observe the load
      // dropping and could latch shut permanently.
      rejected = true;
      why = "BatchExecutor: shed — predicted queue wait above SLO budget";
      ++shed_requests_;
    } else {
      sheds_since_probe_ = 0;
      if (!has_first_request_) {
        has_first_request_ = true;
        first_request_ = req.enqueued;
      }
      const std::vector<int64_t> key = shape_key(req.batch);
      int qi = find_queue(slo, key);
      if (qi < 0) {
        queues_.push_back(std::make_unique<SubQueue>(SubQueue{slo, key, {}}));
        qi = static_cast<int>(queues_.size()) - 1;
      }
      ++queued_requests_;
      queued_samples_ += req.samples;
      queues_[static_cast<std::size_t>(qi)]->q.push_back(std::move(req));
      ExecutorMetrics::get().queue_depth.set(queued_requests_);
    }
  }
  if (rejected) {
    ExecutorMetrics::get().shed.add(1);
    shed(req, why);
  } else {
    cv_.notify_one();
  }
  return future;
}

std::future<Tensor> BatchExecutor::submit(Tensor batch, SloClass slo) {
  // Deferred unwrap: get()/wait() on the returned future blocks on the
  // same underlying promise (and rethrows the same ShedError/execution
  // errors), it just drops the InferenceResult envelope.
  auto inner = submit(InferenceRequest{std::move(batch), slo});
  return std::async(std::launch::deferred, [inner = std::move(inner)]() mutable {
    return std::move(inner.get().logits);
  });
}

std::vector<Tensor> BatchExecutor::run_all(const std::vector<Tensor>& batches) {
  std::vector<std::future<InferenceResult>> futures;
  futures.reserve(batches.size());
  for (const auto& batch : batches) {
    futures.push_back(submit(InferenceRequest{batch, SloClass::kInteractive}));
  }
  std::vector<Tensor> results;
  results.reserve(batches.size());
  for (auto& f : futures) results.push_back(std::move(f.get().logits));
  return results;
}

uint64_t BatchExecutor::open_stream(int64_t pipeline_threads) {
  auto session = std::make_unique<StreamSession>(net_, pipeline_threads);
  const std::lock_guard<std::mutex> lock(mu_);
  if (stopping_) throw ShedError("BatchExecutor: open_stream after shutdown");
  const uint64_t sid = next_stream_id_++;
  StreamEntry entry;
  entry.session = std::move(session);
  streams_.emplace(sid, std::move(entry));
  return sid;
}

std::future<InferenceResult> BatchExecutor::submit_stream(uint64_t stream,
                                                         Tensor frame) {
  StreamStep step;
  step.frame = std::move(frame);
  step.enqueued = std::chrono::steady_clock::now();
  std::future<InferenceResult> future = step.promise.get_future();
  const char* reject = nullptr;
  bool invalid = false;
  bool backpressure = false;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = streams_.find(stream);
    if (it == streams_.end()) {
      invalid = true;
      reject = "BatchExecutor: submit_stream on unknown stream id";
    } else if (stopping_ || it->second.closed) {
      reject = stopping_ ? "BatchExecutor: stream step after shutdown"
                         : "BatchExecutor: stream step after close_stream";
      ++shed_requests_;
    } else if ((opts_.max_stream_queue > 0 &&
                static_cast<int64_t>(it->second.steps.size()) >=
                    opts_.max_stream_queue) ||
               util::fault::should_fail("executor.backpressure")) {
      // Rejected BEFORE the step touches the session: its carry state is
      // exactly what it was, so resubmitting the same frame is safe and
      // required (dropping the timestep would corrupt temporal order).
      backpressure = true;
      reject = "BatchExecutor: stream queue full — resubmit this frame "
               "after backoff";
      ++backpressure_rejections_;
    } else {
      it->second.steps.push_back(std::move(step));
      ++queued_stream_steps_;
    }
  }
  if (invalid) {
    step.promise.set_exception(std::make_exception_ptr(std::invalid_argument(reject)));
  } else if (backpressure) {
    util::MetricsRegistry::global().counter("executor.backpressure").add();
    step.promise.set_exception(std::make_exception_ptr(BackpressureError(reject)));
  } else if (reject != nullptr) {
    ExecutorMetrics::get().shed.add(1);
    shed_step(step, reject);
  } else {
    cv_.notify_one();
  }
  return future;
}

void BatchExecutor::close_stream(uint64_t stream) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = streams_.find(stream);
  if (it == streams_.end()) return;
  it->second.closed = true;
  // Queued steps still run (a worker will drain and then erase); only a
  // fully idle session can be dropped on the spot.
  if (!it->second.busy && it->second.steps.empty()) streams_.erase(it);
}

int64_t BatchExecutor::open_streams() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(streams_.size());
}

void BatchExecutor::shutdown() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ && workers_.empty()) return;
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

int64_t BatchExecutor::completed_requests() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return completed_requests_;
}

int64_t BatchExecutor::completed_samples() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return completed_samples_;
}

namespace {

/// Nearest-rank percentile of an unsorted copy (smallest value with at
/// least q*n samples at or below it).
struct WindowStats {
  double mean = 0.0, p50 = 0.0, p95 = 0.0, p99 = 0.0, max = 0.0;
};

WindowStats window_stats(std::vector<double> sorted) {
  WindowStats w;
  if (sorted.empty()) return w;
  std::sort(sorted.begin(), sorted.end());
  double total = 0.0;
  for (const double v : sorted) total += v;
  const auto n = static_cast<int64_t>(sorted.size());
  const auto rank = [&](double q) {
    auto r = static_cast<int64_t>(std::ceil(q * static_cast<double>(n)));
    if (r < 1) r = 1;
    if (r > n) r = n;
    return sorted[static_cast<std::size_t>(r - 1)];
  };
  w.mean = total / static_cast<double>(n);
  w.p50 = rank(0.50);
  w.p95 = rank(0.95);
  w.p99 = rank(0.99);
  w.max = sorted.back();
  return w;
}

}  // namespace

ExecutorStats BatchExecutor::stats() const {
  std::vector<double> latencies;
  std::vector<double> waits;
  std::vector<double> e2e;
  std::vector<double> busy;
  ExecutorStats s;
  bool has_first = false;
  std::chrono::steady_clock::time_point first{};
  {
    const std::lock_guard<std::mutex> lock(mu_);
    s.requests = completed_requests_;
    s.samples = completed_samples_;
    s.fused_batches = fused_batches_;
    s.coalesced_requests = coalesced_requests_;
    s.shed_requests = shed_requests_;
    s.backpressure_rejections = backpressure_rejections_;
    s.slo_violations = slo_violations_;
    s.queue_depth = queued_requests_;
    s.open_streams = static_cast<int64_t>(streams_.size());
    s.stream_steps = stream_steps_;
    s.predicted_wait_ms = predicted_wait_ms_locked();
    latencies = latencies_ms_;
    waits = waits_ms_;
    e2e = e2e_ms_;
    busy = busy_ms_;
    has_first = has_first_request_;
    first = first_request_;
  }
  const WindowStats service = window_stats(std::move(latencies));
  s.mean_ms = service.mean;
  s.p50_ms = service.p50;
  s.p95_ms = service.p95;
  s.p99_ms = service.p99;
  s.max_ms = service.max;
  const WindowStats wait = window_stats(std::move(waits));
  s.queue_mean_ms = wait.mean;
  s.queue_p50_ms = wait.p50;
  s.queue_p95_ms = wait.p95;
  const WindowStats end_to_end = window_stats(std::move(e2e));
  s.e2e_p50_ms = end_to_end.p50;
  s.e2e_p95_ms = end_to_end.p95;
  s.e2e_p99_ms = end_to_end.p99;
  // Utilization denominator: wall time since the FIRST request, not
  // since construction — a warm executor that idled before traffic
  // used to report misleadingly low utilization.
  const double elapsed_ms =
      has_first ? ms_between(first, std::chrono::steady_clock::now()) : 0.0;
  s.utilization_per_worker.reserve(busy.size());
  double busy_total = 0.0;
  for (const double b : busy) {
    s.utilization_per_worker.push_back(elapsed_ms > 0.0 ? b / elapsed_ms : 0.0);
    busy_total += b;
  }
  if (!busy.empty() && elapsed_ms > 0.0) {
    s.worker_utilization = busy_total / (elapsed_ms * static_cast<double>(busy.size()));
  }
  return s;
}

void BatchExecutor::record(const std::vector<Request>& group, int64_t samples, double ms,
                           bool fused, std::size_t worker) {
  ExecutorMetrics& metrics = ExecutorMetrics::get();
  metrics.requests.add(static_cast<int64_t>(group.size()));
  metrics.service_us.record(ms * 1e3);
  const std::lock_guard<std::mutex> lock(mu_);
  inflight_samples_ -= samples;
  completed_requests_ += static_cast<int64_t>(group.size());
  completed_samples_ += samples;
  if (fused) {
    ++fused_batches_;
    coalesced_requests_ += static_cast<int64_t>(group.size());
    metrics.coalesced.add(static_cast<int64_t>(group.size()));
  }
  if (worker < busy_ms_.size()) busy_ms_[worker] += ms;
  // Admission predictor input: EMA of per-sample service time.
  if (samples > 0) {
    const double per_sample = ms / static_cast<double>(samples);
    constexpr double kAlpha = 0.2;
    ema_service_per_sample_ms_ = ema_service_per_sample_ms_ > 0.0
                                     ? (1.0 - kAlpha) * ema_service_per_sample_ms_ +
                                           kAlpha * per_sample
                                     : per_sample;
  }
  for (const Request& r : group) {
    if (latencies_ms_.size() < kLatencyWindow) {
      latencies_ms_.push_back(ms);
    } else {
      latencies_ms_[latency_next_] = ms;
    }
    latency_next_ = (latency_next_ + 1) % kLatencyWindow;
    if (waits_ms_.size() < kLatencyWindow) {
      waits_ms_.push_back(r.wait_ms);
    } else {
      waits_ms_[wait_next_] = r.wait_ms;
    }
    wait_next_ = (wait_next_ + 1) % kLatencyWindow;
    const double e2e = r.wait_ms + ms;
    if (e2e_ms_.size() < kLatencyWindow) {
      e2e_ms_.push_back(e2e);
    } else {
      e2e_ms_[e2e_next_] = e2e;
    }
    e2e_next_ = (e2e_next_ + 1) % kLatencyWindow;
    if (opts_.slo_ms > 0.0 && e2e > budget_ms(r.slo)) ++slo_violations_;
    // Sliding predictor histogram: add this wait's bucket, retire the
    // oldest once the window is full.
    const int bucket = util::HistogramSnapshot::bucket_index(r.wait_ms * 1e3);
    if (recent_wait_buckets_.size() < kPredictorWindow) {
      recent_wait_buckets_.push_back(static_cast<int16_t>(bucket));
    } else {
      const int old = recent_wait_buckets_[recent_wait_next_];
      --recent_wait_counts_[static_cast<std::size_t>(old)];
      recent_wait_buckets_[recent_wait_next_] = static_cast<int16_t>(bucket);
    }
    ++recent_wait_counts_[static_cast<std::size_t>(bucket)];
    recent_wait_next_ = (recent_wait_next_ + 1) % kPredictorWindow;
    metrics.queue_wait_us.record(r.wait_ms * 1e3);
  }
}

int BatchExecutor::find_queue(SloClass slo, const std::vector<int64_t>& shape) const {
  for (std::size_t i = 0; i < queues_.size(); ++i) {
    if (queues_[i]->slo == slo && queues_[i]->shape == shape) return static_cast<int>(i);
  }
  return -1;
}

int BatchExecutor::pick_queue() const {
  int best = -1;
  for (std::size_t i = 0; i < queues_.size(); ++i) {
    if (queues_[i]->q.empty()) continue;
    if (best < 0) {
      best = static_cast<int>(i);
      continue;
    }
    const Request& head = queues_[i]->q.front();
    const Request& incumbent = queues_[static_cast<std::size_t>(best)]->q.front();
    // Interactive before batch (slo_priority rank, not raw enum value);
    // EDF within a class. With slo_ms == 0 every deadline equals its
    // enqueue time, so this is arrival-order FIFO across sub-queues.
    if (head.slo != incumbent.slo) {
      if (slo_priority(head.slo) < slo_priority(incumbent.slo)) best = static_cast<int>(i);
    } else if (head.deadline < incumbent.deadline) {
      best = static_cast<int>(i);
    }
  }
  return best;
}

BatchExecutor::Request BatchExecutor::pop_head(int qi) {
  SubQueue& sq = *queues_[static_cast<std::size_t>(qi)];
  Request req = std::move(sq.q.front());
  sq.q.pop_front();
  --queued_requests_;
  queued_samples_ -= req.samples;
  const auto now = std::chrono::steady_clock::now();
  req.wait_ms = ms_between(req.enqueued, now);
  if (trace::enabled() && req.trace_ts_us > 0.0) {
    trace::Span span;
    span.name = "queue-wait";
    span.cat = "queue";
    span.ts_us = req.trace_ts_us;
    span.dur_us = trace::now_us() - req.trace_ts_us;
    span.rows = req.samples;
    trace::record(std::move(span));
  }
  return req;
}

std::vector<BatchExecutor::Request> BatchExecutor::take_group(
    std::unique_lock<std::mutex>& lock, std::vector<Request>& doomed) {
  std::vector<Request> group;
  int first = pick_queue();
  // Lazy shed: a head whose expected finish is already past its
  // deadline would execute only to violate — drop it at dispatch so the
  // capacity serves requests that can still make their budget. (The
  // admission predictor bounds the queue, but a load spike between
  // admit and dispatch can still doom requests; EDF puts them at the
  // head, where they would otherwise delay every follower too.)
  if (opts_.slo_ms > 0.0) {
    while (first >= 0) {
      const Request& head = queues_[static_cast<std::size_t>(first)]->q.front();
      const double service_ms =
          ema_service_per_sample_ms_ * static_cast<double>(head.samples);
      const auto finish = std::chrono::steady_clock::now() +
                          std::chrono::microseconds(static_cast<int64_t>(service_ms * 1e3));
      if (finish <= head.deadline) break;
      doomed.push_back(pop_head(first));
      ++shed_requests_;
      if (queues_[static_cast<std::size_t>(first)]->q.empty()) {
        queues_.erase(queues_.begin() + first);
      }
      first = pick_queue();
    }
    if (first < 0) {
      ExecutorMetrics::get().queue_depth.set(queued_requests_);
      return group;  // everything queued was doomed
    }
  }
  group.push_back(pop_head(first));
  const SloClass slo = group.front().slo;
  const std::vector<int64_t> key = shape_key(group.front().batch);
  // Drop the bin if that pop emptied it — sub-queues are transient.
  if (queues_[static_cast<std::size_t>(first)]->q.empty()) {
    queues_.erase(queues_.begin() + first);
  }
  if (opts_.max_coalesce <= 1) {
    ExecutorMetrics::get().queue_depth.set(queued_requests_);
    return group;
  }
  int64_t samples = group.front().samples;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::microseconds(opts_.max_wait_us);
  double hold_open_start_us = -1.0;  // first straggler wait, trace clock
  while (samples < opts_.max_coalesce) {
    // Fuse whatever same-class same-shape requests are already queued.
    // They are compatible by construction; other bins are untouched, so
    // interleaved foreign shapes no longer break a group apart (the old
    // single-FIFO design stopped at the first incompatible request and
    // fused nothing under interleaving).
    const int qi = find_queue(slo, key);
    if (qi >= 0) {
      SubQueue& sq = *queues_[static_cast<std::size_t>(qi)];
      if (samples + sq.q.front().samples > opts_.max_coalesce) break;
      samples += sq.q.front().samples;
      group.push_back(pop_head(qi));
      if (sq.q.empty()) queues_.erase(queues_.begin() + qi);
      continue;
    }
    if (stopping_ || opts_.max_wait_us <= 0) break;
    // Hold the group open for stragglers ONLY while nothing else is
    // runnable: if any other bin has work, run immediately — a partial
    // group must never make unrelated requests wait behind its timer.
    if (queued_requests_ > 0) break;
    if (trace::enabled() && hold_open_start_us < 0.0) hold_open_start_us = trace::now_us();
    if (cv_.wait_until(lock, deadline,
                       [this] { return stopping_ || queued_requests_ > 0; })) {
      if (stopping_ && queued_requests_ == 0) break;
      continue;  // something arrived: fuse it or run (loop re-checks)
    }
    break;  // timed out
  }
  if (hold_open_start_us >= 0.0 && trace::enabled()) {
    trace::Span span;
    span.name = "coalesce-wait";
    span.cat = "coalesce";
    span.ts_us = hold_open_start_us;
    span.dur_us = trace::now_us() - hold_open_start_us;
    span.rows = samples;
    trace::record(std::move(span));
  }
  ExecutorMetrics::get().queue_depth.set(queued_requests_);
  return group;
}

void BatchExecutor::run_group(std::vector<Request>& group, std::size_t worker) {
  int64_t samples = 0;
  for (const Request& r : group) samples += r.samples;
  const bool fused = group.size() > 1;
  bool recorded = false;
  try {
    if (util::fault::should_fail("executor.stall")) {
      // A slow pass: long enough for tests to observe queueing behind
      // it, short enough to never threaten a deadline.
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    if (util::fault::should_fail("executor.run")) {
      throw std::runtime_error("injected fault: executor.run");
    }
    const util::Stopwatch sw;
    Tensor logits;
    {
      trace::ScopedSpan span("execute", "serve");
      span.rows(samples);
      if (!fused) {
        logits = net_.run(group.front().batch);
      } else {
        // One time-major pass over the concatenated batch. Every op
        // treats batch rows independently, so slicing the fused logits
        // reproduces each request's solo result bitwise.
        std::vector<Tensor*> parts;
        parts.reserve(group.size());
        for (Request& r : group) parts.push_back(&r.batch);
        logits = net_.run(concat_rows(parts));
      }
    }
    const double ms = sw.millis();
    record(group, samples, ms, fused, worker);
    recorded = true;
    // latency_ms is the request's end-to-end time: its own queue wait
    // plus the (possibly fused) pass's service time.
    if (!fused) {
      Request& r = group.front();
      r.promise.set_value(InferenceResult{std::move(logits), r.wait_ms + ms, 0});
    } else {
      trace::ScopedSpan span("fused-split", "split");
      span.rows(samples);
      const int64_t classes = logits.dim(1);
      const float* src = logits.data();
      int64_t row = 0;
      for (Request& r : group) {
        Tensor slice(Shape{r.samples, classes});
        std::copy(src + row * classes, src + (row + r.samples) * classes, slice.data());
        row += r.samples;
        r.promise.set_value(InferenceResult{std::move(slice), r.wait_ms + ms, 0});
      }
    }
  } catch (...) {
    if (!recorded) {
      // record() never ran for this group; release its in-flight claim.
      const std::lock_guard<std::mutex> lock(mu_);
      inflight_samples_ -= samples;
    }
    for (Request& r : group) r.promise.set_exception(std::current_exception());
  }
}

uint64_t BatchExecutor::pick_stream_locked() const {
  for (const auto& [sid, entry] : streams_) {
    if (!entry.busy && !entry.steps.empty()) return sid;
  }
  return 0;
}

void BatchExecutor::drain_stream(uint64_t sid, std::unique_lock<std::mutex>& lock,
                                 std::size_t worker) {
  StreamEntry& entry = streams_.at(sid);  // map nodes are stable; only
                                          // this (busy-holding) worker
                                          // may erase the entry
  entry.busy = true;
  std::deque<StreamStep> steps = std::move(entry.steps);
  entry.steps.clear();
  queued_stream_steps_ -= static_cast<int64_t>(steps.size());
  StreamSession* session = entry.session.get();
  lock.unlock();

  const auto run_start = std::chrono::steady_clock::now();
  std::vector<Tensor> frames;
  frames.reserve(steps.size());
  for (StreamStep& s : steps) frames.push_back(std::move(s.frame));
  const util::Stopwatch sw;
  std::vector<InferenceResult> results;
  std::exception_ptr error;
  try {
    if (util::fault::should_fail("executor.stall")) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    if (util::fault::should_fail("executor.stream")) {
      throw std::runtime_error("injected fault: executor.stream");
    }
    trace::ScopedSpan span("stream-drain", "serve");
    span.rows(static_cast<int64_t>(steps.size()));
    results = session->run_steps(frames);
    // Each step's pipeline latency is relative to run_start; the client
    // observes queue wait on top.
    for (std::size_t i = 0; i < steps.size(); ++i) {
      results[i].latency_ms += ms_between(steps[i].enqueued, run_start);
    }
  } catch (...) {
    error = std::current_exception();
    // The pipeline died mid-sequence: per-layer state is part-way
    // through an undefined step. Reset so the session restarts clean
    // rather than silently continuing from a corrupt carry.
    session->reset();
  }
  const double ms = sw.millis();

  lock.lock();
  if (worker < busy_ms_.size()) busy_ms_[worker] += ms;
  if (!error) stream_steps_ += static_cast<int64_t>(steps.size());
  entry.busy = false;
  if (entry.closed && entry.steps.empty()) {
    streams_.erase(sid);
  } else if (!entry.steps.empty()) {
    cv_.notify_one();  // steps arrived while draining
  }
  // Fulfil the promises only after the books are settled, still under
  // the lock: a client that has observed a resolved step future must
  // see stats()/open_streams() reflect this drain (and a close_stream
  // racing in cannot find the entry busy after its last step resolved).
  if (!error) {
    for (std::size_t i = 0; i < steps.size(); ++i) {
      steps[i].promise.set_value(std::move(results[i]));
    }
  } else {
    for (StreamStep& s : steps) s.promise.set_exception(error);
  }
}

void BatchExecutor::worker_loop(std::size_t worker) {
  for (;;) {
    std::vector<Request> group;
    std::vector<Request> doomed;
    bool more = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] {
        return stopping_ || queued_requests_ > 0 || pick_stream_locked() != 0;
      });
      // Streams outrank every queued request (slo_priority): drain one
      // session completely, then loop for the next unit of work.
      if (const uint64_t sid = pick_stream_locked(); sid != 0) {
        drain_stream(sid, lock, worker);
        continue;
      }
      if (queued_requests_ == 0) return;  // stopping_ and drained
      group = take_group(lock, doomed);
      for (const Request& r : group) inflight_samples_ += r.samples;
      more = queued_requests_ > 0;
    }
    // A hold-open wait can swallow the notify_one meant for an idle
    // worker (the waiter wakes, sees a foreign shape and runs its own
    // group) — re-arm a peer whenever work remains queued.
    if (more) cv_.notify_one();
    if (!doomed.empty()) {
      ExecutorMetrics::get().shed.add(static_cast<int64_t>(doomed.size()));
      for (Request& r : doomed) {
        shed(r, "BatchExecutor: shed — deadline unreachable at dispatch");
      }
    }
    if (!group.empty()) run_group(group, worker);
  }
}

}  // namespace ndsnn::runtime
