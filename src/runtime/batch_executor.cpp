#include "runtime/batch_executor.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "runtime/trace.hpp"
#include "util/metrics.hpp"
#include "util/stopwatch.hpp"

namespace ndsnn::runtime {

using tensor::Shape;
using tensor::Tensor;

namespace {

/// Requests fuse when their per-sample layout matches: same rank and
/// identical trailing dimensions (dim 0 is the batch axis being
/// concatenated).
bool coalescable(const Tensor& a, const Tensor& b) {
  if (a.rank() != b.rank() || a.rank() < 1) return false;
  for (int64_t d = 1; d < a.rank(); ++d) {
    if (a.dim(d) != b.dim(d)) return false;
  }
  return true;
}

double ms_between(std::chrono::steady_clock::time_point a,
                  std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

/// Process-wide serving metrics (util::MetricsRegistry). Looked up once;
/// the references stay valid for the process lifetime.
struct ExecutorMetrics {
  util::Counter& requests;
  util::Counter& coalesced;
  util::Gauge& queue_depth;
  util::Histogram& queue_wait_us;
  util::Histogram& service_us;

  static ExecutorMetrics& get() {
    auto& reg = util::MetricsRegistry::global();
    static ExecutorMetrics m{reg.counter("executor.requests"),
                             reg.counter("executor.coalesced_requests"),
                             reg.gauge("executor.queue_depth"),
                             reg.histogram("executor.queue_wait_us"),
                             reg.histogram("executor.service_us")};
    return m;
  }
};

/// Concatenate request batches along dim 0.
Tensor concat_rows(const std::vector<Tensor*>& parts) {
  int64_t total = 0;
  for (const Tensor* t : parts) total += t->dim(0);
  std::vector<int64_t> dims;
  dims.push_back(total);
  for (int64_t d = 1; d < parts[0]->rank(); ++d) dims.push_back(parts[0]->dim(d));
  Tensor fused((Shape(dims)));
  float* dst = fused.data();
  for (const Tensor* t : parts) {
    std::copy(t->data(), t->data() + t->numel(), dst);
    dst += t->numel();
  }
  return fused;
}

}  // namespace

BatchExecutor::BatchExecutor(const CompiledNetwork& net, int64_t num_threads,
                             const ExecutorOptions& opts)
    : net_(net),
      opts_(opts),
      intra_op_threads_(net.intra_op_threads()),
      start_(std::chrono::steady_clock::now()) {
  if (num_threads < 1) {
    throw std::invalid_argument("BatchExecutor: num_threads must be >= 1");
  }
  // Split the budget: a plan with an intra-op pool already fans each
  // request across intra_op_threads lanes, so spawning num_threads
  // request workers on top would oversubscribe the machine.
  const int64_t request_workers = std::max<int64_t>(1, num_threads / intra_op_threads_);
  busy_ms_.assign(static_cast<std::size_t>(request_workers), 0.0);
  workers_.reserve(static_cast<std::size_t>(request_workers));
  for (int64_t i = 0; i < request_workers; ++i) {
    workers_.emplace_back([this, i] { worker_loop(static_cast<std::size_t>(i)); });
  }
}

BatchExecutor::~BatchExecutor() { shutdown(); }

std::future<Tensor> BatchExecutor::submit(Tensor batch) {
  Request req;
  req.samples = batch.rank() >= 1 ? batch.dim(0) : 1;
  req.batch = std::move(batch);
  req.enqueued = std::chrono::steady_clock::now();
  if (trace::enabled()) req.trace_ts_us = trace::now_us();
  std::future<Tensor> future = req.promise.get_future();
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) throw std::runtime_error("BatchExecutor: submit after shutdown");
    queue_.push_back(std::move(req));
    ExecutorMetrics::get().queue_depth.set(static_cast<int64_t>(queue_.size()));
  }
  cv_.notify_one();
  return future;
}

std::vector<Tensor> BatchExecutor::run_all(const std::vector<Tensor>& batches) {
  std::vector<std::future<Tensor>> futures;
  futures.reserve(batches.size());
  for (const auto& batch : batches) futures.push_back(submit(batch));
  std::vector<Tensor> results;
  results.reserve(batches.size());
  for (auto& f : futures) results.push_back(f.get());
  return results;
}

void BatchExecutor::shutdown() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ && workers_.empty()) return;
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

int64_t BatchExecutor::completed_requests() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return completed_requests_;
}

int64_t BatchExecutor::completed_samples() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return completed_samples_;
}

namespace {

/// Nearest-rank percentile of an unsorted copy (smallest value with at
/// least q*n samples at or below it).
struct WindowStats {
  double mean = 0.0, p50 = 0.0, p95 = 0.0, p99 = 0.0, max = 0.0;
};

WindowStats window_stats(std::vector<double> sorted) {
  WindowStats w;
  if (sorted.empty()) return w;
  std::sort(sorted.begin(), sorted.end());
  double total = 0.0;
  for (const double v : sorted) total += v;
  const auto n = static_cast<int64_t>(sorted.size());
  const auto rank = [&](double q) {
    auto r = static_cast<int64_t>(std::ceil(q * static_cast<double>(n)));
    if (r < 1) r = 1;
    if (r > n) r = n;
    return sorted[static_cast<std::size_t>(r - 1)];
  };
  w.mean = total / static_cast<double>(n);
  w.p50 = rank(0.50);
  w.p95 = rank(0.95);
  w.p99 = rank(0.99);
  w.max = sorted.back();
  return w;
}

}  // namespace

ExecutorStats BatchExecutor::stats() const {
  std::vector<double> latencies;
  std::vector<double> waits;
  std::vector<double> busy;
  ExecutorStats s;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    s.requests = completed_requests_;
    s.samples = completed_samples_;
    s.fused_batches = fused_batches_;
    s.coalesced_requests = coalesced_requests_;
    s.queue_depth = static_cast<int64_t>(queue_.size());
    latencies = latencies_ms_;
    waits = waits_ms_;
    busy = busy_ms_;
  }
  const WindowStats service = window_stats(std::move(latencies));
  s.mean_ms = service.mean;
  s.p50_ms = service.p50;
  s.p95_ms = service.p95;
  s.p99_ms = service.p99;
  s.max_ms = service.max;
  const WindowStats wait = window_stats(std::move(waits));
  s.queue_mean_ms = wait.mean;
  s.queue_p50_ms = wait.p50;
  s.queue_p95_ms = wait.p95;
  const double elapsed_ms = ms_between(start_, std::chrono::steady_clock::now());
  s.utilization_per_worker.reserve(busy.size());
  double busy_total = 0.0;
  for (const double b : busy) {
    s.utilization_per_worker.push_back(elapsed_ms > 0.0 ? b / elapsed_ms : 0.0);
    busy_total += b;
  }
  if (!busy.empty() && elapsed_ms > 0.0) {
    s.worker_utilization = busy_total / (elapsed_ms * static_cast<double>(busy.size()));
  }
  return s;
}

void BatchExecutor::record(const std::vector<Request>& group, int64_t samples, double ms,
                           bool fused, std::size_t worker) {
  ExecutorMetrics& metrics = ExecutorMetrics::get();
  metrics.requests.add(static_cast<int64_t>(group.size()));
  metrics.service_us.record(ms * 1e3);
  const std::lock_guard<std::mutex> lock(mu_);
  completed_requests_ += static_cast<int64_t>(group.size());
  completed_samples_ += samples;
  if (fused) {
    ++fused_batches_;
    coalesced_requests_ += static_cast<int64_t>(group.size());
    metrics.coalesced.add(static_cast<int64_t>(group.size()));
  }
  if (worker < busy_ms_.size()) busy_ms_[worker] += ms;
  for (const Request& r : group) {
    if (latencies_ms_.size() < kLatencyWindow) {
      latencies_ms_.push_back(ms);
    } else {
      latencies_ms_[latency_next_] = ms;
    }
    latency_next_ = (latency_next_ + 1) % kLatencyWindow;
    if (waits_ms_.size() < kLatencyWindow) {
      waits_ms_.push_back(r.wait_ms);
    } else {
      waits_ms_[wait_next_] = r.wait_ms;
    }
    wait_next_ = (wait_next_ + 1) % kLatencyWindow;
    metrics.queue_wait_us.record(r.wait_ms * 1e3);
  }
}

std::vector<BatchExecutor::Request> BatchExecutor::take_group(
    std::unique_lock<std::mutex>& lock) {
  // Stamp the queue wait (enqueue -> pop) the moment a request leaves
  // the queue, and emit its queue-wait span while tracing.
  const auto pop = [this](Request&& req) {
    const auto now = std::chrono::steady_clock::now();
    req.wait_ms = ms_between(req.enqueued, now);
    if (trace::enabled() && req.trace_ts_us > 0.0) {
      trace::Span span;
      span.name = "queue-wait";
      span.cat = "queue";
      span.ts_us = req.trace_ts_us;
      span.dur_us = trace::now_us() - req.trace_ts_us;
      span.rows = req.samples;
      trace::record(std::move(span));
    }
    return std::move(req);
  };
  std::vector<Request> group;
  group.push_back(pop(std::move(queue_.front())));
  queue_.pop_front();
  if (opts_.max_coalesce <= 1) {
    ExecutorMetrics::get().queue_depth.set(static_cast<int64_t>(queue_.size()));
    return group;
  }
  int64_t samples = group.front().samples;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::microseconds(opts_.max_wait_us);
  double hold_open_start_us = -1.0;  // first straggler wait, trace clock
  while (samples < opts_.max_coalesce) {
    if (!queue_.empty()) {
      Request& head = queue_.front();
      // Stop at the first incompatible or overflowing request: FIFO
      // order is preserved, nothing is reordered around it.
      if (!coalescable(group.front().batch, head.batch) ||
          samples + head.samples > opts_.max_coalesce) {
        break;
      }
      samples += head.samples;
      group.push_back(pop(std::move(head)));
      queue_.pop_front();
      continue;
    }
    if (stopping_ || opts_.max_wait_us <= 0) break;
    // Briefly hold the batch open for stragglers.
    if (trace::enabled() && hold_open_start_us < 0.0) hold_open_start_us = trace::now_us();
    if (cv_.wait_until(lock, deadline, [this] { return stopping_ || !queue_.empty(); })) {
      if (stopping_ && queue_.empty()) break;
      continue;
    }
    break;  // timed out
  }
  if (hold_open_start_us >= 0.0 && trace::enabled()) {
    trace::Span span;
    span.name = "coalesce-wait";
    span.cat = "coalesce";
    span.ts_us = hold_open_start_us;
    span.dur_us = trace::now_us() - hold_open_start_us;
    span.rows = samples;
    trace::record(std::move(span));
  }
  ExecutorMetrics::get().queue_depth.set(static_cast<int64_t>(queue_.size()));
  return group;
}

void BatchExecutor::run_group(std::vector<Request>& group, std::size_t worker) {
  int64_t samples = 0;
  for (const Request& r : group) samples += r.samples;
  const bool fused = group.size() > 1;
  try {
    const util::Stopwatch sw;
    Tensor logits;
    {
      trace::ScopedSpan span("execute", "serve");
      span.rows(samples);
      if (!fused) {
        logits = net_.run(group.front().batch);
      } else {
        // One time-major pass over the concatenated batch. Every op
        // treats batch rows independently, so slicing the fused logits
        // reproduces each request's solo result bitwise.
        std::vector<Tensor*> parts;
        parts.reserve(group.size());
        for (Request& r : group) parts.push_back(&r.batch);
        logits = net_.run(concat_rows(parts));
      }
    }
    const double ms = sw.millis();
    record(group, samples, ms, fused, worker);
    if (!fused) {
      group.front().promise.set_value(std::move(logits));
    } else {
      trace::ScopedSpan span("fused-split", "split");
      span.rows(samples);
      const int64_t classes = logits.dim(1);
      const float* src = logits.data();
      int64_t row = 0;
      for (Request& r : group) {
        Tensor slice(Shape{r.samples, classes});
        std::copy(src + row * classes, src + (row + r.samples) * classes, slice.data());
        row += r.samples;
        r.promise.set_value(std::move(slice));
      }
    }
  } catch (...) {
    for (Request& r : group) r.promise.set_exception(std::current_exception());
  }
}

void BatchExecutor::worker_loop(std::size_t worker) {
  for (;;) {
    std::vector<Request> group;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      group = take_group(lock);
    }
    run_group(group, worker);
  }
}

}  // namespace ndsnn::runtime
