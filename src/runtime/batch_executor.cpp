#include "runtime/batch_executor.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "util/stopwatch.hpp"

namespace ndsnn::runtime {

using tensor::Shape;
using tensor::Tensor;

namespace {

/// Requests fuse when their per-sample layout matches: same rank and
/// identical trailing dimensions (dim 0 is the batch axis being
/// concatenated).
bool coalescable(const Tensor& a, const Tensor& b) {
  if (a.rank() != b.rank() || a.rank() < 1) return false;
  for (int64_t d = 1; d < a.rank(); ++d) {
    if (a.dim(d) != b.dim(d)) return false;
  }
  return true;
}

/// Concatenate request batches along dim 0.
Tensor concat_rows(const std::vector<Tensor*>& parts) {
  int64_t total = 0;
  for (const Tensor* t : parts) total += t->dim(0);
  std::vector<int64_t> dims;
  dims.push_back(total);
  for (int64_t d = 1; d < parts[0]->rank(); ++d) dims.push_back(parts[0]->dim(d));
  Tensor fused((Shape(dims)));
  float* dst = fused.data();
  for (const Tensor* t : parts) {
    std::copy(t->data(), t->data() + t->numel(), dst);
    dst += t->numel();
  }
  return fused;
}

}  // namespace

BatchExecutor::BatchExecutor(const CompiledNetwork& net, int64_t num_threads,
                             const ExecutorOptions& opts)
    : net_(net), opts_(opts), intra_op_threads_(net.intra_op_threads()) {
  if (num_threads < 1) {
    throw std::invalid_argument("BatchExecutor: num_threads must be >= 1");
  }
  // Split the budget: a plan with an intra-op pool already fans each
  // request across intra_op_threads lanes, so spawning num_threads
  // request workers on top would oversubscribe the machine.
  const int64_t request_workers = std::max<int64_t>(1, num_threads / intra_op_threads_);
  workers_.reserve(static_cast<std::size_t>(request_workers));
  for (int64_t i = 0; i < request_workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

BatchExecutor::~BatchExecutor() { shutdown(); }

std::future<Tensor> BatchExecutor::submit(Tensor batch) {
  Request req;
  req.samples = batch.rank() >= 1 ? batch.dim(0) : 1;
  req.batch = std::move(batch);
  std::future<Tensor> future = req.promise.get_future();
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) throw std::runtime_error("BatchExecutor: submit after shutdown");
    queue_.push_back(std::move(req));
  }
  cv_.notify_one();
  return future;
}

std::vector<Tensor> BatchExecutor::run_all(const std::vector<Tensor>& batches) {
  std::vector<std::future<Tensor>> futures;
  futures.reserve(batches.size());
  for (const auto& batch : batches) futures.push_back(submit(batch));
  std::vector<Tensor> results;
  results.reserve(batches.size());
  for (auto& f : futures) results.push_back(f.get());
  return results;
}

void BatchExecutor::shutdown() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ && workers_.empty()) return;
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

int64_t BatchExecutor::completed_requests() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return completed_requests_;
}

int64_t BatchExecutor::completed_samples() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return completed_samples_;
}

ExecutorStats BatchExecutor::stats() const {
  std::vector<double> sorted;
  ExecutorStats s;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    s.requests = completed_requests_;
    s.samples = completed_samples_;
    s.fused_batches = fused_batches_;
    s.coalesced_requests = coalesced_requests_;
    sorted = latencies_ms_;
  }
  if (sorted.empty()) return s;
  std::sort(sorted.begin(), sorted.end());
  double total = 0.0;
  for (const double v : sorted) total += v;
  const auto n = static_cast<int64_t>(sorted.size());
  // Nearest-rank percentile: smallest value with at least q*n samples at
  // or below it.
  const auto rank = [&](double q) {
    auto r = static_cast<int64_t>(std::ceil(q * static_cast<double>(n)));
    if (r < 1) r = 1;
    if (r > n) r = n;
    return sorted[static_cast<std::size_t>(r - 1)];
  };
  s.mean_ms = total / static_cast<double>(n);
  s.p50_ms = rank(0.50);
  s.p95_ms = rank(0.95);
  s.p99_ms = rank(0.99);
  s.max_ms = sorted.back();
  return s;
}

void BatchExecutor::record(int64_t requests, int64_t samples, double ms, bool fused) {
  const std::lock_guard<std::mutex> lock(mu_);
  completed_requests_ += requests;
  completed_samples_ += samples;
  if (fused) {
    ++fused_batches_;
    coalesced_requests_ += requests;
  }
  for (int64_t i = 0; i < requests; ++i) {
    if (latencies_ms_.size() < kLatencyWindow) {
      latencies_ms_.push_back(ms);
    } else {
      latencies_ms_[latency_next_] = ms;
    }
    latency_next_ = (latency_next_ + 1) % kLatencyWindow;
  }
}

std::vector<BatchExecutor::Request> BatchExecutor::take_group(
    std::unique_lock<std::mutex>& lock) {
  std::vector<Request> group;
  group.push_back(std::move(queue_.front()));
  queue_.pop_front();
  if (opts_.max_coalesce <= 1) return group;
  int64_t samples = group.front().samples;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::microseconds(opts_.max_wait_us);
  while (samples < opts_.max_coalesce) {
    if (!queue_.empty()) {
      Request& head = queue_.front();
      // Stop at the first incompatible or overflowing request: FIFO
      // order is preserved, nothing is reordered around it.
      if (!coalescable(group.front().batch, head.batch) ||
          samples + head.samples > opts_.max_coalesce) {
        break;
      }
      samples += head.samples;
      group.push_back(std::move(head));
      queue_.pop_front();
      continue;
    }
    if (stopping_ || opts_.max_wait_us <= 0) break;
    // Briefly hold the batch open for stragglers.
    if (cv_.wait_until(lock, deadline, [this] { return stopping_ || !queue_.empty(); })) {
      if (stopping_ && queue_.empty()) break;
      continue;
    }
    break;  // timed out
  }
  return group;
}

void BatchExecutor::run_group(std::vector<Request>& group) {
  int64_t samples = 0;
  for (const Request& r : group) samples += r.samples;
  const bool fused = group.size() > 1;
  try {
    const util::Stopwatch sw;
    Tensor logits;
    if (!fused) {
      logits = net_.run(group.front().batch);
    } else {
      // One time-major pass over the concatenated batch. Every op
      // treats batch rows independently, so slicing the fused logits
      // reproduces each request's solo result bitwise.
      std::vector<Tensor*> parts;
      parts.reserve(group.size());
      for (Request& r : group) parts.push_back(&r.batch);
      logits = net_.run(concat_rows(parts));
    }
    const double ms = sw.millis();
    record(static_cast<int64_t>(group.size()), samples, ms, fused);
    if (!fused) {
      group.front().promise.set_value(std::move(logits));
    } else {
      const int64_t classes = logits.dim(1);
      const float* src = logits.data();
      int64_t row = 0;
      for (Request& r : group) {
        Tensor slice(Shape{r.samples, classes});
        std::copy(src + row * classes, src + (row + r.samples) * classes, slice.data());
        row += r.samples;
        r.promise.set_value(std::move(slice));
      }
    }
  } catch (...) {
    for (Request& r : group) r.promise.set_exception(std::current_exception());
  }
}

void BatchExecutor::worker_loop() {
  for (;;) {
    std::vector<Request> group;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      group = take_group(lock);
    }
    run_group(group);
  }
}

}  // namespace ndsnn::runtime
