// BatchNormOp: BatchNorm2d folded to eval statistics at compile time.
// Keeps the eval-path arithmetic of nn::BatchNorm2d::forward (same
// operation order, precomputed inv_std) so compiled outputs match
// interpreted eval outputs bitwise. The affine shift makes zeros
// non-zero, so any incoming event view is dropped.
#pragma once

#include <string>

#include "nn/batchnorm.hpp"
#include "runtime/plan.hpp"

namespace ndsnn::runtime {

class BatchNormOp final : public Op {
 public:
  explicit BatchNormOp(const nn::BatchNorm2d& src);

  [[nodiscard]] Activation run(const Activation& input) const override;
  [[nodiscard]] OpReport report() const override;

 private:
  std::string layer_name_;
  int64_t channels_;
  tensor::Tensor mean_, gamma_, beta_, inv_std_;
};

}  // namespace ndsnn::runtime
