// Shape/structure ops of the compiled plan: pooling, flatten and the
// residual block container.
//
// Event-view propagation: FlattenOp forwards an incoming SpikeBatch
// untouched (reshaping neither the rows nor the per-row flat indices).
// MaxPoolOp pools the view itself when the input is a spike train
// (Activation::spikes): max over a k x k window of binary values is the
// OR of its events, so each active input index scatters to one output
// cell and the pooled train plus its SpikeBatch come out exactly —
// pooled layers stay on the event path. AvgPool mixes values and drops
// the view (an event consumer downstream rescans, cheap next to its
// GEMM). ResidualOp threads Activations through its compiled
// sub-chains, so events flow into the block's convs and out of its
// output LIF.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "runtime/plan.hpp"

namespace ndsnn::runtime {

class AvgPoolOp final : public Op {
 public:
  AvgPoolOp(std::string layer_name, int64_t k)
      : layer_name_(std::move(layer_name)), k_(k) {}

  [[nodiscard]] Activation run(const Activation& input) const override;
  [[nodiscard]] OpReport report() const override;

 private:
  std::string layer_name_;
  int64_t k_;
};

class MaxPoolOp final : public Op {
 public:
  MaxPoolOp(std::string layer_name, int64_t k)
      : layer_name_(std::move(layer_name)), k_(k) {}

  [[nodiscard]] Activation run(const Activation& input) const override;
  [[nodiscard]] OpReport report() const override;

 private:
  std::string layer_name_;
  int64_t k_;
};

class GlobalAvgPoolOp final : public Op {
 public:
  [[nodiscard]] Activation run(const Activation& input) const override;
  [[nodiscard]] OpReport report() const override;
};

class FlattenOp final : public Op {
 public:
  [[nodiscard]] Activation run(const Activation& input) const override;
  [[nodiscard]] OpReport report() const override;
};

/// Residual block: compiled main and shortcut chains plus the output LIF.
class ResidualOp final : public Op {
 public:
  ResidualOp(std::string layer_name, std::vector<std::unique_ptr<Op>> main,
             std::vector<std::unique_ptr<Op>> shortcut, std::unique_ptr<Op> out_lif)
      : layer_name_(std::move(layer_name)),
        main_(std::move(main)),
        shortcut_(std::move(shortcut)),
        out_lif_(std::move(out_lif)) {}

  [[nodiscard]] Activation run(const Activation& input) const override;
  [[nodiscard]] OpReport report() const override;

  /// Streaming: nested per-sub-op states (the block's BN-LIF chains and
  /// output LIF each carry their own membranes). Non-null even when
  /// every sub-op is stateless — the block must never be delta-skipped
  /// wholesale, its neurons decay on empty steps.
  [[nodiscard]] std::unique_ptr<OpState> make_state() const override;
  [[nodiscard]] Activation step(const Activation& input,
                                OpState* state) const override;

 private:
  std::string layer_name_;
  std::vector<std::unique_ptr<Op>> main_;
  std::vector<std::unique_ptr<Op>> shortcut_;
  std::unique_ptr<Op> out_lif_;
};

}  // namespace ndsnn::runtime
