// Shape/structure ops of the compiled plan: pooling, flatten and the
// residual block container.
//
// Event-view propagation: FlattenOp forwards an incoming SpikeBatch
// untouched (reshaping neither the rows nor the per-row flat indices);
// pooling ops drop it (their output indexes a different grid — an
// event consumer downstream rescans, which is cheap next to its GEMM).
// ResidualOp threads Activations through its compiled sub-chains, so
// events flow into the block's convs and out of its output LIF.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "runtime/plan.hpp"

namespace ndsnn::runtime {

class AvgPoolOp final : public Op {
 public:
  AvgPoolOp(std::string layer_name, int64_t k)
      : layer_name_(std::move(layer_name)), k_(k) {}

  [[nodiscard]] Activation run(const Activation& input) const override;
  [[nodiscard]] OpReport report() const override;

 private:
  std::string layer_name_;
  int64_t k_;
};

class MaxPoolOp final : public Op {
 public:
  MaxPoolOp(std::string layer_name, int64_t k)
      : layer_name_(std::move(layer_name)), k_(k) {}

  [[nodiscard]] Activation run(const Activation& input) const override;
  [[nodiscard]] OpReport report() const override;

 private:
  std::string layer_name_;
  int64_t k_;
};

class GlobalAvgPoolOp final : public Op {
 public:
  [[nodiscard]] Activation run(const Activation& input) const override;
  [[nodiscard]] OpReport report() const override;
};

class FlattenOp final : public Op {
 public:
  [[nodiscard]] Activation run(const Activation& input) const override;
  [[nodiscard]] OpReport report() const override;
};

/// Residual block: compiled main and shortcut chains plus the output LIF.
class ResidualOp final : public Op {
 public:
  ResidualOp(std::string layer_name, std::vector<std::unique_ptr<Op>> main,
             std::vector<std::unique_ptr<Op>> shortcut, std::unique_ptr<Op> out_lif)
      : layer_name_(std::move(layer_name)),
        main_(std::move(main)),
        shortcut_(std::move(shortcut)),
        out_lif_(std::move(out_lif)) {}

  [[nodiscard]] Activation run(const Activation& input) const override;
  [[nodiscard]] OpReport report() const override;

 private:
  std::string layer_name_;
  std::vector<std::unique_ptr<Op>> main_;
  std::vector<std::unique_ptr<Op>> shortcut_;
  std::unique_ptr<Op> out_lif_;
};

}  // namespace ndsnn::runtime
