#include "runtime/ops/linear_op.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

#include "runtime/trace.hpp"
#include "tensor/matmul.hpp"
#include "tensor/ops.hpp"

namespace ndsnn::runtime {

using tensor::Shape;
using tensor::Tensor;

LinearOp::LinearOp(const nn::Linear& src, Kernel kernel, sparse::Precision precision,
                   bool event, const CompileOptions& opts,
                   std::shared_ptr<util::ThreadPool> pool)
    : layer_name_(src.name()),
      kernel_(kernel),
      pool_(std::move(pool)),
      tier_(util::simd::resolve(opts.kernel_tier)),
      autotuned_(opts.autotune),
      precision_(kernel == Kernel::kDense ? sparse::Precision::kFp32 : precision),
      event_(event),
      has_bias_(src.has_bias()),
      in_features_(src.in_features()),
      out_features_(src.out_features()),
      weights_(src.weight().numel()),
      source_sparsity_(src.masked_view()->sparsity()) {
  // Only the structures the chosen path touches are materialized; the
  // event path keeps Wᵀ so an active input index selects one contiguous
  // weight row. Event-path planes quantise with a uniform plane-wide
  // scale: binary spike batches then gather raw codes in int32 and
  // dequantise once per output (sparse::Csr::spmv_gather fast path).
  switch (kernel_) {
    case Kernel::kCsr:
      if (event_) {
        csr_t_ = sparse::Csr::from_weights(src.weight(), opts.prune_threshold).transposed();
        (void)csr_t_.quantize(precision_, /*symmetric=*/true, /*uniform_scale=*/true);
        if (opts.fake_quant) csr_t_.dequantize();
        stored_ = csr_t_.nnz();
        bytes_ = csr_t_.memory_bytes();
      } else {
        csr_ = sparse::Csr::from_weights(src.weight(), opts.prune_threshold);
        // Dense-activation planes take the grouped-scale knob; the
        // event plane above must stay uniform (int32 gather contract).
        (void)csr_.quantize(precision_, /*symmetric=*/true, /*uniform_scale=*/false,
                            opts.quant_group_size);
        if (opts.fake_quant) csr_.dequantize();
        stored_ = csr_.nnz();
        bytes_ = csr_.memory_bytes();
      }
      break;
    case Kernel::kBcsr:
      if (event_) {
        bcsr_t_ = sparse::Bcsr::from_weights(src.weight(), opts.block_rows, opts.block_cols,
                                             opts.prune_threshold)
                      .transposed();
        (void)bcsr_t_.quantize(precision_, /*symmetric=*/true, /*uniform_scale=*/true);
        if (opts.fake_quant) bcsr_t_.dequantize();
        stored_ = bcsr_t_.stored_values();
        bytes_ = bcsr_t_.memory_bytes();
      } else {
        bcsr_ = sparse::Bcsr::from_weights(src.weight(), opts.block_rows, opts.block_cols,
                                           opts.prune_threshold);
        (void)bcsr_.quantize(precision_);
        if (opts.fake_quant) bcsr_.dequantize();
        stored_ = bcsr_.stored_values();
        bytes_ = bcsr_.memory_bytes();
      }
      break;
    case Kernel::kDense:
      if (event_) {
        dense_t_ = Tensor(Shape{in_features_, out_features_});
        const float* w = src.weight().data();
        float* wt = dense_t_.data();
        for (int64_t r = 0; r < out_features_; ++r) {
          for (int64_t c = 0; c < in_features_; ++c) {
            wt[c * out_features_ + r] = w[r * in_features_ + c];
          }
        }
      } else {
        dense_ = src.weight();
      }
      stored_ = weights_;
      bytes_ = weights_ * 4;
      break;
  }
  if (has_bias_) bias_ = src.bias();
  // Rough gather work per active input — the parallel-dispatch estimate
  // for run_event (events touch one Wᵀ row each).
  switch (kernel_) {
    case Kernel::kCsr:
      event_cost_per_active_ =
          std::max<int64_t>(1, csr_t_.nnz() / std::max<int64_t>(1, in_features_));
      break;
    case Kernel::kBcsr:
      event_cost_per_active_ =
          std::max<int64_t>(1, bcsr_t_.stored_values() / std::max<int64_t>(1, in_features_));
      break;
    case Kernel::kDense:
      event_cost_per_active_ = out_features_;
      break;
  }
}

Tensor LinearOp::run_dense(const Tensor& input) const {
  util::ThreadPool* pool = pool_.get();
  return kernel_ == Kernel::kCsr    ? csr_.spmm_t(input, pool, tier_)
         : kernel_ == Kernel::kBcsr ? bcsr_.spmm_t(input, pool, tier_)
                                    : tensor::matmul_nt(input, dense_, pool, tier_);
}

void LinearOp::event_rows(const Activation& input, Tensor& out, int64_t i0, int64_t i1,
                          bool use_events) const {
  const Tensor& in = input.tensor;
  const float* inp = in.data();
  float* outp = out.data();
  std::vector<int32_t> scratch;
  if (!use_events) scratch.reserve(static_cast<std::size_t>(in_features_));
  std::vector<double> acc(static_cast<std::size_t>(out_features_));
  // int32 scratch for the binary-spike quantised gather fast path; only
  // allocated when a uniform-scale plane can actually use it.
  std::vector<int32_t> iacc;
  if ((kernel_ == Kernel::kCsr && csr_t_.quantized() && csr_t_.quant().uniform) ||
      (kernel_ == Kernel::kBcsr && bcsr_t_.quantized() && bcsr_t_.quant().uniform)) {
    iacc.resize(static_cast<std::size_t>(out_features_));
  }
  int32_t* iaccp = iacc.empty() ? nullptr : iacc.data();

  for (int64_t i = i0; i < i1; ++i) {
    const float* x = inp + i * in_features_;
    const int32_t* active;
    int64_t n_active;
    if (use_events) {
      active = input.events.active_begin(i);
      n_active = input.events.active_count(i);
    } else {
      scratch.clear();
      for (int64_t j = 0; j < in_features_; ++j) {
        if (x[j] != 0.0F) scratch.push_back(static_cast<int32_t>(j));
      }
      active = scratch.data();
      n_active = static_cast<int64_t>(scratch.size());
    }
    std::fill(acc.begin(), acc.end(), 0.0);
    switch (kernel_) {
      case Kernel::kCsr:
        csr_t_.spmv_gather(x, active, n_active, acc.data(), iaccp);
        break;
      case Kernel::kBcsr:
        bcsr_t_.spmv_gather(x, active, n_active, acc.data(), iaccp);
        break;
      case Kernel::kDense: {
        const float* wt = dense_t_.data();
        for (int64_t a = 0; a < n_active; ++a) {
          const int64_t j = active[a];
          const double xj = static_cast<double>(x[j]);
          const float* wrow = wt + j * out_features_;
          for (int64_t r = 0; r < out_features_; ++r) {
            acc[static_cast<std::size_t>(r)] += static_cast<double>(wrow[r]) * xj;
          }
        }
        break;
      }
    }
    float* orow = outp + i * out_features_;
    for (int64_t r = 0; r < out_features_; ++r) {
      orow[r] = static_cast<float>(acc[static_cast<std::size_t>(r)]);
    }
  }
}

Tensor LinearOp::run_event(const Activation& input) const {
  const Tensor& in = input.tensor;
  const int64_t m = in.dim(0);
  Tensor out(Shape{m, out_features_});

  // The event view is usable only when it indexes exactly this layout
  // (it survives flatten, not pooling / batch norm); otherwise scan.
  const bool use_events =
      input.has_events && input.events.rows == m && input.events.row_size == in_features_;

  trace::ScopedSpan span("event-gather", "phase");
  span.rows(m);
  if (use_events) span.rate(input.events.rate());
  span.bytes(bytes_);

  // Batch rows are independent: partition them across the pool (each
  // chunk keeps its own scratch/accumulators). The work estimate counts
  // active inputs times the per-active gather cost; the no-view case
  // adds the dense rescan.
  const int64_t active_estimate =
      use_events ? static_cast<int64_t>(input.events.idx.size()) : in.numel();
  util::parallel_even(pool_.get(), 0, m, active_estimate * event_cost_per_active_,
                      [&](int64_t i0, int64_t i1) {
                        event_rows(input, out, i0, i1, use_events);
                      });
  return out;
}

Activation LinearOp::run(const Activation& input) const {
  // The dense kernels validate shapes themselves; check up front so the
  // event path rejects the same inputs instead of reading out of bounds.
  if (input.tensor.rank() != 2 || input.tensor.dim(1) != in_features_) {
    throw std::invalid_argument("LinearOp: expected [M, " + std::to_string(in_features_) +
                                "], got " + input.tensor.shape().str());
  }
  Tensor out = event_ ? run_event(input) : run_dense(input.tensor);
  if (has_bias_) tensor::add_row_bias_(out, bias_);
  return Activation(std::move(out));
}

OpReport LinearOp::report() const {
  OpReport r{layer_name_, std::string(kernel_tag(kernel_)) + "-linear", weights_, stored_,
             source_sparsity_, event_, precision_, bytes_};
  r.tier = tier_;
  r.autotuned = autotuned_;
  return r;
}

}  // namespace ndsnn::runtime
