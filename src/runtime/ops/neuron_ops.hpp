// Neuron ops of the compiled plan: LIF (also PLIF at inference, whose
// trained leak folds into a LifConfig) and ALIF dynamics over the T
// timesteps of one call. Inference-only: membrane state lives in rolling
// per-step buffers instead of the full saved trace BPTT needs, and the
// arithmetic matches snn::LifLayer / snn::AlifLayer::forward term for
// term so compiled and interpreted paths agree bitwise.
//
// When `emit_events` is set the op additionally produces the SpikeBatch
// active-index view of its spike train while writing it (the write loop
// already touches every element in ascending flat order), so downstream
// event-driven weight ops skip even the dense nonzero scan.
#pragma once

#include <string>

#include "runtime/plan.hpp"
#include "snn/alif.hpp"
#include "snn/lif.hpp"

namespace ndsnn::runtime {

class LifOp final : public Op {
 public:
  LifOp(std::string layer_name, const snn::LifConfig& config, int64_t timesteps,
        bool emit_events);

  [[nodiscard]] Activation run(const Activation& input) const override;
  [[nodiscard]] OpReport report() const override;

  /// Streaming: carries v - theta per neuron across step() calls and
  /// replays run()'s t==0 / t>0 branches exactly, so T step() calls are
  /// bitwise identical to one run() over the time-major window.
  [[nodiscard]] std::unique_ptr<OpState> make_state() const override;
  [[nodiscard]] Activation step(const Activation& input,
                                OpState* state) const override;

 private:
  std::string layer_name_;
  float alpha_, theta_;
  int64_t timesteps_;
  bool emit_events_;
};

class AlifOp final : public Op {
 public:
  AlifOp(std::string layer_name, const snn::AlifConfig& config, int64_t timesteps,
         bool emit_events);

  [[nodiscard]] Activation run(const Activation& input) const override;
  [[nodiscard]] OpReport report() const override;

  /// Streaming: carries {v, adaptation trace, previous spike} per
  /// neuron. ALIF's recurrence is uniform in t (zero-initialised state
  /// reproduces the first window step), so step() is run()'s inner loop
  /// verbatim.
  [[nodiscard]] std::unique_ptr<OpState> make_state() const override;
  [[nodiscard]] Activation step(const Activation& input,
                                OpState* state) const override;

 private:
  std::string layer_name_;
  snn::AlifConfig config_;
  int64_t timesteps_;
  bool emit_events_;
};

}  // namespace ndsnn::runtime
