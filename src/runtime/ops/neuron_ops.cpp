#include "runtime/ops/neuron_ops.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "runtime/trace.hpp"
#include "snn/surrogate.hpp"

namespace ndsnn::runtime {

using tensor::Tensor;

LifOp::LifOp(std::string layer_name, const snn::LifConfig& config, int64_t timesteps,
             bool emit_events)
    : layer_name_(std::move(layer_name)),
      alpha_(config.alpha),
      theta_(config.threshold),
      timesteps_(timesteps),
      emit_events_(emit_events) {}

Activation LifOp::run(const Activation& input) const {
  const Tensor& in_t = input.tensor;
  const int64_t total = in_t.numel();
  if (total % timesteps_ != 0) {
    throw std::invalid_argument("LifOp: numel " + std::to_string(total) +
                                " not divisible by T=" + std::to_string(timesteps_));
  }
  const int64_t step = total / timesteps_;
  const int64_t rows = in_t.dim(0);
  trace::ScopedSpan span("lif-dynamics", "phase");
  span.rows(rows);
  Tensor out(in_t.shape());
  SpikeBatchBuilder builder(rows, rows > 0 ? total / rows : 0);
  std::vector<float> vmt(static_cast<std::size_t>(step), 0.0F);  // v[t] - theta
  const float* in = in_t.data();
  float* spk = out.data();
  for (int64_t t = 0; t < timesteps_; ++t) {
    const float* it = in + t * step;
    float* ot = spk + t * step;
    if (t == 0) {
      for (int64_t i = 0; i < step; ++i) {
        const float v = it[i];
        vmt[static_cast<std::size_t>(i)] = v - theta_;
        ot[i] = snn::heaviside(v - theta_);
        if (emit_events_ && ot[i] != 0.0F) builder.push(t * step + i);
      }
    } else {
      const float* oprev = spk + (t - 1) * step;
      for (int64_t i = 0; i < step; ++i) {
        const float v =
            alpha_ * (vmt[static_cast<std::size_t>(i)] + theta_) + it[i] - theta_ * oprev[i];
        vmt[static_cast<std::size_t>(i)] = v - theta_;
        ot[i] = snn::heaviside(v - theta_);
        if (emit_events_ && ot[i] != 0.0F) builder.push(t * step + i);
      }
    }
  }
  if (!emit_events_) {
    Activation plain(std::move(out));
    plain.spikes = true;
    return plain;
  }
  Activation result(std::move(out), builder.finish());
  result.spikes = true;
  span.rate(result.events.rate());  // observed firing rate, free from the view
  return result;
}

namespace {

/// Streaming carry of a LifOp: run()'s vmt buffer plus the previous
/// step's spike train (run() reads it back out of the output tensor;
/// across calls it has to be kept explicitly). `first` replays the
/// t==0 branch — run() computes the first step as `v = it[i]` with no
/// decay term, and matching it bitwise means taking the same branch,
/// not simulating it with pre-seeded state.
struct LifStreamState final : OpState {
  std::vector<float> vmt;   // v[t] - theta per neuron
  std::vector<float> prev;  // previous step's spikes
  bool first = true;
};

/// Streaming carry of an AlifOp: the three per-neuron recurrence
/// buffers of run(), zero-initialised exactly like a fresh window.
struct AlifStreamState final : OpState {
  std::vector<float> v;
  std::vector<float> trace;
  std::vector<float> prev_spike;
};

void ensure_stream_size(std::vector<float>& buf, int64_t step) {
  if (std::cmp_equal(buf.size(), step)) return;
  if (!buf.empty()) {
    throw std::invalid_argument(
        "neuron stream state sized for " + std::to_string(buf.size()) +
        " elements, got a " + std::to_string(step) +
        "-element frame; call StreamSession::reset() before changing shape");
  }
  buf.assign(static_cast<std::size_t>(step), 0.0F);
}

}  // namespace

std::unique_ptr<OpState> LifOp::make_state() const {
  return std::make_unique<LifStreamState>();
}

Activation LifOp::step(const Activation& input, OpState* state) const {
  auto* st = static_cast<LifStreamState*>(state);
  const Tensor& in_t = input.tensor;
  const int64_t step = in_t.numel();
  const int64_t rows = in_t.dim(0);
  ensure_stream_size(st->vmt, step);
  ensure_stream_size(st->prev, step);
  trace::ScopedSpan span("lif-dynamics", "phase");
  span.rows(rows);
  Tensor out(in_t.shape());
  SpikeBatchBuilder builder(rows, rows > 0 ? step / rows : 0);
  const float* it = in_t.data();
  float* ot = out.data();
  if (st->first) {
    st->first = false;
    for (int64_t i = 0; i < step; ++i) {
      const float v = it[i];
      st->vmt[static_cast<std::size_t>(i)] = v - theta_;
      ot[i] = snn::heaviside(v - theta_);
      if (emit_events_ && ot[i] != 0.0F) builder.push(i);
    }
  } else {
    for (int64_t i = 0; i < step; ++i) {
      const auto idx = static_cast<std::size_t>(i);
      const float v = alpha_ * (st->vmt[idx] + theta_) + it[i] - theta_ * st->prev[idx];
      st->vmt[idx] = v - theta_;
      ot[i] = snn::heaviside(v - theta_);
      if (emit_events_ && ot[i] != 0.0F) builder.push(i);
    }
  }
  std::copy(ot, ot + step, st->prev.begin());
  if (!emit_events_) {
    Activation plain(std::move(out));
    plain.spikes = true;
    return plain;
  }
  Activation result(std::move(out), builder.finish());
  result.spikes = true;
  span.rate(result.events.rate());
  return result;
}

OpReport LifOp::report() const { return {layer_name_, "lif", 0, 0, 0.0, false}; }

AlifOp::AlifOp(std::string layer_name, const snn::AlifConfig& config, int64_t timesteps,
               bool emit_events)
    : layer_name_(std::move(layer_name)),
      config_(config),
      timesteps_(timesteps),
      emit_events_(emit_events) {}

Activation AlifOp::run(const Activation& input) const {
  const Tensor& in_t = input.tensor;
  const int64_t total = in_t.numel();
  if (total % timesteps_ != 0) {
    throw std::invalid_argument("AlifOp: numel not divisible by T");
  }
  const int64_t step = total / timesteps_;
  const int64_t rows = in_t.dim(0);
  trace::ScopedSpan span("alif-dynamics", "phase");
  span.rows(rows);
  Tensor out(in_t.shape());
  SpikeBatchBuilder builder(rows, rows > 0 ? total / rows : 0);
  std::vector<float> v(static_cast<std::size_t>(step), 0.0F);
  std::vector<float> trace(static_cast<std::size_t>(step), 0.0F);
  std::vector<float> prev_spike(static_cast<std::size_t>(step), 0.0F);
  const float* in = in_t.data();
  float* spk = out.data();
  for (int64_t t = 0; t < timesteps_; ++t) {
    const float* it = in + t * step;
    float* ot = spk + t * step;
    for (int64_t i = 0; i < step; ++i) {
      const auto idx = static_cast<std::size_t>(i);
      trace[idx] = config_.rho * trace[idx] + prev_spike[idx];
      const float theta_t = config_.threshold + config_.beta * trace[idx];
      v[idx] = config_.alpha * v[idx] + it[i] - theta_t * prev_spike[idx];
      ot[i] = snn::heaviside(v[idx] - theta_t);
      prev_spike[idx] = ot[i];
      if (emit_events_ && ot[i] != 0.0F) builder.push(t * step + i);
    }
  }
  if (!emit_events_) {
    Activation plain(std::move(out));
    plain.spikes = true;
    return plain;
  }
  Activation result(std::move(out), builder.finish());
  result.spikes = true;
  span.rate(result.events.rate());
  return result;
}

std::unique_ptr<OpState> AlifOp::make_state() const {
  return std::make_unique<AlifStreamState>();
}

Activation AlifOp::step(const Activation& input, OpState* state) const {
  auto* st = static_cast<AlifStreamState*>(state);
  const Tensor& in_t = input.tensor;
  const int64_t step = in_t.numel();
  const int64_t rows = in_t.dim(0);
  ensure_stream_size(st->v, step);
  ensure_stream_size(st->trace, step);
  ensure_stream_size(st->prev_spike, step);
  trace::ScopedSpan span("alif-dynamics", "phase");
  span.rows(rows);
  Tensor out(in_t.shape());
  SpikeBatchBuilder builder(rows, rows > 0 ? step / rows : 0);
  const float* it = in_t.data();
  float* ot = out.data();
  for (int64_t i = 0; i < step; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    st->trace[idx] = config_.rho * st->trace[idx] + st->prev_spike[idx];
    const float theta_t = config_.threshold + config_.beta * st->trace[idx];
    st->v[idx] = config_.alpha * st->v[idx] + it[i] - theta_t * st->prev_spike[idx];
    ot[i] = snn::heaviside(st->v[idx] - theta_t);
    st->prev_spike[idx] = ot[i];
    if (emit_events_ && ot[i] != 0.0F) builder.push(i);
  }
  if (!emit_events_) {
    Activation plain(std::move(out));
    plain.spikes = true;
    return plain;
  }
  Activation result(std::move(out), builder.finish());
  result.spikes = true;
  span.rate(result.events.rate());
  return result;
}

OpReport AlifOp::report() const { return {layer_name_, "alif", 0, 0, 0.0, false}; }

}  // namespace ndsnn::runtime
