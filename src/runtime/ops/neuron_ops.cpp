#include "runtime/ops/neuron_ops.hpp"

#include <stdexcept>
#include <utility>
#include <vector>

#include "runtime/trace.hpp"
#include "snn/surrogate.hpp"

namespace ndsnn::runtime {

using tensor::Tensor;

LifOp::LifOp(std::string layer_name, const snn::LifConfig& config, int64_t timesteps,
             bool emit_events)
    : layer_name_(std::move(layer_name)),
      alpha_(config.alpha),
      theta_(config.threshold),
      timesteps_(timesteps),
      emit_events_(emit_events) {}

Activation LifOp::run(const Activation& input) const {
  const Tensor& in_t = input.tensor;
  const int64_t total = in_t.numel();
  if (total % timesteps_ != 0) {
    throw std::invalid_argument("LifOp: numel " + std::to_string(total) +
                                " not divisible by T=" + std::to_string(timesteps_));
  }
  const int64_t step = total / timesteps_;
  const int64_t rows = in_t.dim(0);
  trace::ScopedSpan span("lif-dynamics", "phase");
  span.rows(rows);
  Tensor out(in_t.shape());
  SpikeBatchBuilder builder(rows, rows > 0 ? total / rows : 0);
  std::vector<float> vmt(static_cast<std::size_t>(step), 0.0F);  // v[t] - theta
  const float* in = in_t.data();
  float* spk = out.data();
  for (int64_t t = 0; t < timesteps_; ++t) {
    const float* it = in + t * step;
    float* ot = spk + t * step;
    if (t == 0) {
      for (int64_t i = 0; i < step; ++i) {
        const float v = it[i];
        vmt[static_cast<std::size_t>(i)] = v - theta_;
        ot[i] = snn::heaviside(v - theta_);
        if (emit_events_ && ot[i] != 0.0F) builder.push(t * step + i);
      }
    } else {
      const float* oprev = spk + (t - 1) * step;
      for (int64_t i = 0; i < step; ++i) {
        const float v =
            alpha_ * (vmt[static_cast<std::size_t>(i)] + theta_) + it[i] - theta_ * oprev[i];
        vmt[static_cast<std::size_t>(i)] = v - theta_;
        ot[i] = snn::heaviside(v - theta_);
        if (emit_events_ && ot[i] != 0.0F) builder.push(t * step + i);
      }
    }
  }
  if (!emit_events_) return Activation(std::move(out));
  Activation result(std::move(out), builder.finish());
  span.rate(result.events.rate());  // observed firing rate, free from the view
  return result;
}

OpReport LifOp::report() const { return {layer_name_, "lif", 0, 0, 0.0, false}; }

AlifOp::AlifOp(std::string layer_name, const snn::AlifConfig& config, int64_t timesteps,
               bool emit_events)
    : layer_name_(std::move(layer_name)),
      config_(config),
      timesteps_(timesteps),
      emit_events_(emit_events) {}

Activation AlifOp::run(const Activation& input) const {
  const Tensor& in_t = input.tensor;
  const int64_t total = in_t.numel();
  if (total % timesteps_ != 0) {
    throw std::invalid_argument("AlifOp: numel not divisible by T");
  }
  const int64_t step = total / timesteps_;
  const int64_t rows = in_t.dim(0);
  trace::ScopedSpan span("alif-dynamics", "phase");
  span.rows(rows);
  Tensor out(in_t.shape());
  SpikeBatchBuilder builder(rows, rows > 0 ? total / rows : 0);
  std::vector<float> v(static_cast<std::size_t>(step), 0.0F);
  std::vector<float> trace(static_cast<std::size_t>(step), 0.0F);
  std::vector<float> prev_spike(static_cast<std::size_t>(step), 0.0F);
  const float* in = in_t.data();
  float* spk = out.data();
  for (int64_t t = 0; t < timesteps_; ++t) {
    const float* it = in + t * step;
    float* ot = spk + t * step;
    for (int64_t i = 0; i < step; ++i) {
      const auto idx = static_cast<std::size_t>(i);
      trace[idx] = config_.rho * trace[idx] + prev_spike[idx];
      const float theta_t = config_.threshold + config_.beta * trace[idx];
      v[idx] = config_.alpha * v[idx] + it[i] - theta_t * prev_spike[idx];
      ot[i] = snn::heaviside(v[idx] - theta_t);
      prev_spike[idx] = ot[i];
      if (emit_events_ && ot[i] != 0.0F) builder.push(t * step + i);
    }
  }
  if (!emit_events_) return Activation(std::move(out));
  Activation result(std::move(out), builder.finish());
  span.rate(result.events.rate());
  return result;
}

OpReport AlifOp::report() const { return {layer_name_, "alif", 0, 0, 0.0, false}; }

}  // namespace ndsnn::runtime
