// ConvOp: 2-D convolution weight op of the compiled plan.
//
// Dense-activation path: im2col then CSR/BCSR/dense GEMM, identical to
// nn::Conv2d::forward with the GEMM swapped. Event path: no patch
// matrix at all — for each active (nonzero) input pixel, enumerate the
// kernel offsets it reaches (the im2col mapping evaluated on the fly)
// and scatter value * Wᵀ[patch-column] into the output plane
// (sparse::Csr/Bcsr::scatter_row). For any fixed output element the
// active pixels arrive in ascending patch-column order, so the float
// accumulation sequence equals the dense paths' minus exact-zero terms:
// bitwise identical.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/conv2d.hpp"
#include "runtime/compiled_network.hpp"
#include "runtime/plan.hpp"
#include "sparse/bcsr.hpp"
#include "sparse/csr.hpp"
#include "util/thread_pool.hpp"

namespace ndsnn::runtime {

class ConvOp final : public Op {
 public:
  /// `precision` mirrors LinearOp: quantises the sparse value plane on
  /// the execution orientation; ignored for the dense kernel.
  /// `pool` (null = serial) is the plan's shared intra-op pool: the
  /// dense-activation path partitions the GEMM by output row (filter),
  /// the event path partitions the scatter by *output channel* — each
  /// chunk owns a channel strip, replays the event stream, and scatters
  /// only its own channels (scatter_row_range), so per-output-element
  /// accumulation order is unchanged and results stay bitwise.
  ConvOp(const nn::Conv2d& src, Kernel kernel, sparse::Precision precision, bool event,
         const CompileOptions& opts, std::shared_ptr<util::ThreadPool> pool = nullptr);

  [[nodiscard]] Activation run(const Activation& input) const override;
  [[nodiscard]] OpReport report() const override;

 private:
  [[nodiscard]] tensor::Tensor run_dense(const tensor::Tensor& input) const;
  [[nodiscard]] tensor::Tensor run_event(const Activation& input) const;
  void event_scatter(const tensor::Tensor& in, const SpikeBatch& events, tensor::Tensor& out,
                     int64_t oh, int64_t ow, int64_t f0, int64_t f1) const;

  std::string layer_name_;
  Kernel gemm_;
  std::shared_ptr<util::ThreadPool> pool_;
  /// Event path only: per-output-channel weight counts (prefix sums) of
  /// the transposed structure, so channel strips are nnz-balanced.
  std::vector<int64_t> channel_weight_prefix_;
  /// Kernel tier resolved once at construction (see LinearOp::tier_).
  util::simd::Tier tier_;
  bool autotuned_;  ///< {kernel, block, tier} came from runtime::Autotune
  sparse::Precision precision_;
  int64_t bytes_ = 0;
  bool event_;
  bool has_bias_;
  int64_t in_channels_, out_channels_, kernel_, stride_, padding_;
  int64_t weights_;
  int64_t stored_;
  double source_sparsity_;
  sparse::Csr csr_;      // W [F, CKK], dense-activation kCsr
  sparse::Bcsr bcsr_;    // W [F, CKK], dense-activation kBcsr
  tensor::Tensor dense_; // W [F, CKK], dense-activation kDense
  sparse::Csr csr_t_;    // Wᵀ [CKK, F], event kCsr / kDense
  sparse::Bcsr bcsr_t_;  // Wᵀ [CKK, F], event kBcsr
  tensor::Tensor dense_t_;  // Wᵀ [CKK, F], event kDense
  tensor::Tensor bias_;
};

}  // namespace ndsnn::runtime
