// LinearOp: fully-connected weight op of the compiled plan.
//
// Dense-activation path: CSR/BCSR spmm_t or matmul_nt over the whole
// input matrix. Event path: per input row, gather only the active
// (nonzero) input features through the transposed weight structure
// (sparse::Csr/Bcsr::spmv_gather, or contiguous Wᵀ rows for the dense
// kernel) into per-output double accumulators — the identical
// ascending-index double accumulation the dense paths run, restricted
// to the terms that are not exact no-ops, so both paths agree bitwise.
#pragma once

#include <memory>
#include <string>

#include "nn/linear.hpp"
#include "runtime/compiled_network.hpp"
#include "runtime/plan.hpp"
#include "sparse/bcsr.hpp"
#include "sparse/csr.hpp"
#include "util/thread_pool.hpp"

namespace ndsnn::runtime {

class LinearOp final : public Op {
 public:
  /// `precision` != kFp32 quantises the value plane of the chosen
  /// sparse structure; ignored for the dense kernel. Dense-activation
  /// structures keep per-row scales; the event path quantises Wᵀ with
  /// one *uniform* plane-wide scale so binary spike batches take the
  /// int32 code-summing gather (see sparse::Csr::spmv_gather). See
  /// sparse::Csr::quantize for the error contract the quantised kernels
  /// carry instead of bitwise equality.
  /// `pool` (may be null = serial) is the plan's shared intra-op pool:
  /// the dense-activation path partitions the GEMM by output row, the
  /// event path partitions the gather by batch row.
  LinearOp(const nn::Linear& src, Kernel kernel, sparse::Precision precision, bool event,
           const CompileOptions& opts, std::shared_ptr<util::ThreadPool> pool = nullptr);

  [[nodiscard]] Activation run(const Activation& input) const override;
  [[nodiscard]] OpReport report() const override;

 private:
  [[nodiscard]] tensor::Tensor run_dense(const tensor::Tensor& input) const;
  [[nodiscard]] tensor::Tensor run_event(const Activation& input) const;
  void event_rows(const Activation& input, tensor::Tensor& out, int64_t i0, int64_t i1,
                  bool use_events) const;

  std::string layer_name_;
  Kernel kernel_;
  std::shared_ptr<util::ThreadPool> pool_;
  int64_t event_cost_per_active_ = 1;  ///< gather work per active input
  /// Kernel tier resolved once at construction (CompileOptions::
  /// kernel_tier), so the op's dispatch never shifts under a later env
  /// or force() change — a compiled plan executes reproducibly.
  util::simd::Tier tier_;
  bool autotuned_;  ///< {kernel, block, tier} came from runtime::Autotune
  sparse::Precision precision_;
  int64_t bytes_ = 0;
  bool event_;
  bool has_bias_;
  int64_t in_features_, out_features_;
  int64_t weights_;
  int64_t stored_;
  double source_sparsity_;
  sparse::Csr csr_;      // W [out, in], dense-activation kCsr
  sparse::Bcsr bcsr_;    // W [out, in], dense-activation kBcsr
  tensor::Tensor dense_; // W [out, in], dense-activation kDense
  sparse::Csr csr_t_;    // Wᵀ [in, out], event kCsr
  sparse::Bcsr bcsr_t_;  // Wᵀ [in, out], event kBcsr
  tensor::Tensor dense_t_;  // Wᵀ [in, out], event kDense
  tensor::Tensor bias_;
};

}  // namespace ndsnn::runtime
