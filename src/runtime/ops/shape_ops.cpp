#include "runtime/ops/shape_ops.hpp"

#include <stdexcept>
#include <utility>

#include "runtime/trace.hpp"
#include "tensor/ops.hpp"

namespace ndsnn::runtime {

using tensor::Shape;
using tensor::Tensor;

Activation AvgPoolOp::run(const Activation& input) const {
  const Tensor& in = input.tensor;
  if (in.rank() != 4 || in.dim(2) % k_ != 0 || in.dim(3) % k_ != 0) {
    throw std::invalid_argument("AvgPoolOp: bad input " + in.shape().str());
  }
  const int64_t m = in.dim(0), c = in.dim(1), h = in.dim(2), w = in.dim(3);
  const int64_t oh = h / k_, ow = w / k_;
  Tensor out(Shape{m, c, oh, ow});
  const float inv = 1.0F / static_cast<float>(k_ * k_);
  const float* src = in.data();
  float* dst = out.data();
  for (int64_t mc = 0; mc < m * c; ++mc) {
    const float* plane = src + mc * h * w;
    float* oplane = dst + mc * oh * ow;
    for (int64_t oy = 0; oy < oh; ++oy) {
      for (int64_t ox = 0; ox < ow; ++ox) {
        float acc = 0.0F;
        for (int64_t dy = 0; dy < k_; ++dy) {
          for (int64_t dx = 0; dx < k_; ++dx) {
            acc += plane[(oy * k_ + dy) * w + (ox * k_ + dx)];
          }
        }
        oplane[oy * ow + ox] = acc * inv;
      }
    }
  }
  return Activation(std::move(out));
}

OpReport AvgPoolOp::report() const { return {layer_name_, "pool", 0, 0, 0.0, false}; }

Activation MaxPoolOp::run(const Activation& input) const {
  const Tensor& in = input.tensor;
  if (in.rank() != 4 || in.dim(2) % k_ != 0 || in.dim(3) % k_ != 0) {
    throw std::invalid_argument("MaxPoolOp: bad input " + in.shape().str());
  }
  const int64_t m = in.dim(0), c = in.dim(1), h = in.dim(2), w = in.dim(3);
  const int64_t oh = h / k_, ow = w / k_;
  Tensor out(Shape{m, c, oh, ow});
  const float* src = in.data();
  float* dst = out.data();
  for (int64_t mc = 0; mc < m * c; ++mc) {
    const float* plane = src + mc * h * w;
    float* oplane = dst + mc * oh * ow;
    for (int64_t oy = 0; oy < oh; ++oy) {
      for (int64_t ox = 0; ox < ow; ++ox) {
        float best = plane[(oy * k_) * w + ox * k_];
        for (int64_t dy = 0; dy < k_; ++dy) {
          for (int64_t dx = 0; dx < k_; ++dx) {
            const float v = plane[(oy * k_ + dy) * w + (ox * k_ + dx)];
            if (v > best) best = v;
          }
        }
        oplane[oy * ow + ox] = best;
      }
    }
  }
  return Activation(std::move(out));
}

OpReport MaxPoolOp::report() const { return {layer_name_, "pool", 0, 0, 0.0, false}; }

Activation GlobalAvgPoolOp::run(const Activation& input) const {
  const Tensor& in = input.tensor;
  if (in.rank() != 4) {
    throw std::invalid_argument("GlobalAvgPoolOp: expected rank-4, got " + in.shape().str());
  }
  const int64_t m = in.dim(0), c = in.dim(1), plane = in.dim(2) * in.dim(3);
  Tensor out(Shape{m, c});
  const float inv = 1.0F / static_cast<float>(plane);
  const float* src = in.data();
  for (int64_t mc = 0; mc < m * c; ++mc) {
    double acc = 0.0;
    const float* p = src + mc * plane;
    for (int64_t i = 0; i < plane; ++i) acc += p[i];
    out.at(mc) = static_cast<float>(acc) * inv;
  }
  return Activation(std::move(out));
}

OpReport GlobalAvgPoolOp::report() const { return {"GlobalAvgPool", "pool", 0, 0, 0.0, false}; }

Activation FlattenOp::run(const Activation& input) const {
  const Tensor& in = input.tensor;
  if (in.rank() < 2) {
    throw std::invalid_argument("FlattenOp: expected rank >= 2, got " + in.shape().str());
  }
  const int64_t m = in.dim(0);
  Tensor out = in.reshaped(Shape{m, in.numel() / m});
  // The event view indexes [row, flat-within-row] — invariant under the
  // reshape — so it passes straight through to the linear layers behind.
  if (input.has_events) return Activation(std::move(out), input.events);
  return Activation(std::move(out));
}

OpReport FlattenOp::report() const { return {"Flatten", "reshape", 0, 0, 0.0, false}; }

Activation ResidualOp::run(const Activation& input) const {
  // The block's sub-ops are invisible to Plan::execute (only the
  // residual op itself gets a plan-level span), so when tracing is on
  // each sub-op records its own "op" span here — that is where most of
  // a resnet plan's time actually goes.
  const bool traced = trace::enabled();
  const auto run_sub = [traced](const std::unique_ptr<Op>& op, const Activation& in) {
    return traced ? trace::run_op_instrumented(*op, op->report(), in, nullptr, 0)
                  : op->run(in);
  };
  // Chain through pointers so the identity shortcut never copies the
  // input activation (main_ is never empty: conv1..bn2).
  Activation main;
  const Activation* cur = &input;
  for (const auto& op : main_) {
    main = run_sub(op, *cur);
    cur = &main;
  }
  Activation shortcut;
  const Activation* scur = &input;
  for (const auto& op : shortcut_) {
    shortcut = run_sub(op, *scur);
    scur = &shortcut;
  }
  tensor::add_(main.tensor, scur->tensor);
  const Activation summed(std::move(main.tensor));
  return traced
             ? trace::run_op_instrumented(*out_lif_, out_lif_->report(), summed, nullptr, 0)
             : out_lif_->run(summed);
}

OpReport ResidualOp::report() const {
  OpReport r{layer_name_, "residual", 0, 0, 0.0, false};
  double zero_weighted = 0.0;
  for (const auto* chain : {&main_, &shortcut_}) {
    for (const auto& op : *chain) {
      const OpReport sub = op->report();
      r.weights += sub.weights;
      r.nnz += sub.nnz;
      r.event |= sub.event;
      zero_weighted += sub.sparsity * static_cast<double>(sub.weights);
    }
  }
  if (r.weights > 0) r.sparsity = zero_weighted / static_cast<double>(r.weights);
  return r;
}

}  // namespace ndsnn::runtime
