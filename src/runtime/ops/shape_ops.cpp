#include "runtime/ops/shape_ops.hpp"

#include <stdexcept>
#include <utility>

#include "runtime/trace.hpp"
#include "tensor/ops.hpp"

namespace ndsnn::runtime {

using tensor::Shape;
using tensor::Tensor;

Activation AvgPoolOp::run(const Activation& input) const {
  const Tensor& in = input.tensor;
  if (in.rank() != 4 || in.dim(2) % k_ != 0 || in.dim(3) % k_ != 0) {
    throw std::invalid_argument("AvgPoolOp: bad input " + in.shape().str());
  }
  const int64_t m = in.dim(0), c = in.dim(1), h = in.dim(2), w = in.dim(3);
  const int64_t oh = h / k_, ow = w / k_;
  Tensor out(Shape{m, c, oh, ow});
  const float inv = 1.0F / static_cast<float>(k_ * k_);
  const float* src = in.data();
  float* dst = out.data();
  for (int64_t mc = 0; mc < m * c; ++mc) {
    const float* plane = src + mc * h * w;
    float* oplane = dst + mc * oh * ow;
    for (int64_t oy = 0; oy < oh; ++oy) {
      for (int64_t ox = 0; ox < ow; ++ox) {
        float acc = 0.0F;
        for (int64_t dy = 0; dy < k_; ++dy) {
          for (int64_t dx = 0; dx < k_; ++dx) {
            acc += plane[(oy * k_ + dy) * w + (ox * k_ + dx)];
          }
        }
        oplane[oy * ow + ox] = acc * inv;
      }
    }
  }
  return Activation(std::move(out));
}

OpReport AvgPoolOp::report() const { return {layer_name_, "pool", 0, 0, 0.0, false}; }

Activation MaxPoolOp::run(const Activation& input) const {
  const Tensor& in = input.tensor;
  if (in.rank() != 4 || in.dim(2) % k_ != 0 || in.dim(3) % k_ != 0) {
    throw std::invalid_argument("MaxPoolOp: bad input " + in.shape().str());
  }
  const int64_t m = in.dim(0), c = in.dim(1), h = in.dim(2), w = in.dim(3);
  const int64_t oh = h / k_, ow = w / k_;
  // Event path: for a spike train (binary values), max over a window is
  // the OR of its events, so each active input index scatters 1.0F into
  // its output cell and the pooled SpikeBatch falls out of a rescan of
  // the k*k-smaller output rows. Bitwise identical to the dense max:
  // windows with any spike produce exactly 1.0F either way, windows
  // without produce the zero-initialised 0.0F. Gated on `spikes` —
  // on non-binary data max != OR and this transform would be wrong.
  if (input.has_events && input.spikes && input.events.rows == m &&
      input.events.row_size == c * h * w) {
    Tensor out(Shape{m, c, oh, ow});
    float* dst = out.data();
    const int64_t orow = c * oh * ow;
    trace::ScopedSpan span("maxpool-events", "phase");
    span.rows(m);
    for (int64_t row = 0; row < m; ++row) {
      float* obase = dst + row * orow;
      const int32_t* act = input.events.active_begin(row);
      const int64_t count = input.events.active_count(row);
      for (int64_t e = 0; e < count; ++e) {
        const int64_t flat = act[e];
        const int64_t ch = flat / (h * w);
        const int64_t y = (flat / w) % h;
        const int64_t x = flat % w;
        obase[ch * oh * ow + (y / k_) * ow + (x / k_)] = 1.0F;
      }
    }
    SpikeBatchBuilder builder(m, orow);
    for (int64_t flat = 0; flat < m * orow; ++flat) {
      if (dst[flat] != 0.0F) builder.push(flat);
    }
    Activation result(std::move(out), builder.finish());
    result.spikes = true;
    span.rate(result.events.rate());
    return result;
  }
  Tensor out(Shape{m, c, oh, ow});
  const float* src = in.data();
  float* dst = out.data();
  for (int64_t mc = 0; mc < m * c; ++mc) {
    const float* plane = src + mc * h * w;
    float* oplane = dst + mc * oh * ow;
    for (int64_t oy = 0; oy < oh; ++oy) {
      for (int64_t ox = 0; ox < ow; ++ox) {
        float best = plane[(oy * k_) * w + ox * k_];
        for (int64_t dy = 0; dy < k_; ++dy) {
          for (int64_t dx = 0; dx < k_; ++dx) {
            const float v = plane[(oy * k_ + dy) * w + (ox * k_ + dx)];
            if (v > best) best = v;
          }
        }
        oplane[oy * ow + ox] = best;
      }
    }
  }
  Activation result(std::move(out));
  result.spikes = input.spikes;  // max of binary values is binary
  return result;
}

OpReport MaxPoolOp::report() const { return {layer_name_, "pool", 0, 0, 0.0, false}; }

Activation GlobalAvgPoolOp::run(const Activation& input) const {
  const Tensor& in = input.tensor;
  if (in.rank() != 4) {
    throw std::invalid_argument("GlobalAvgPoolOp: expected rank-4, got " + in.shape().str());
  }
  const int64_t m = in.dim(0), c = in.dim(1), plane = in.dim(2) * in.dim(3);
  Tensor out(Shape{m, c});
  const float inv = 1.0F / static_cast<float>(plane);
  const float* src = in.data();
  for (int64_t mc = 0; mc < m * c; ++mc) {
    double acc = 0.0;
    const float* p = src + mc * plane;
    for (int64_t i = 0; i < plane; ++i) acc += p[i];
    out.at(mc) = static_cast<float>(acc) * inv;
  }
  return Activation(std::move(out));
}

OpReport GlobalAvgPoolOp::report() const { return {"GlobalAvgPool", "pool", 0, 0, 0.0, false}; }

Activation FlattenOp::run(const Activation& input) const {
  const Tensor& in = input.tensor;
  if (in.rank() < 2) {
    throw std::invalid_argument("FlattenOp: expected rank >= 2, got " + in.shape().str());
  }
  const int64_t m = in.dim(0);
  Tensor out = in.reshaped(Shape{m, in.numel() / m});
  // The event view indexes [row, flat-within-row] — invariant under the
  // reshape — so it passes straight through to the linear layers behind.
  // Values are untouched, so the spike-train marker survives too.
  Activation result = input.has_events ? Activation(std::move(out), input.events)
                                       : Activation(std::move(out));
  result.spikes = input.spikes;
  return result;
}

OpReport FlattenOp::report() const { return {"Flatten", "reshape", 0, 0, 0.0, false}; }

Activation ResidualOp::run(const Activation& input) const {
  // The block's sub-ops are invisible to Plan::execute (only the
  // residual op itself gets a plan-level span), so when tracing is on
  // each sub-op records its own "op" span here — that is where most of
  // a resnet plan's time actually goes.
  const bool traced = trace::enabled();
  const auto run_sub = [traced](const std::unique_ptr<Op>& op, const Activation& in) {
    return traced ? trace::run_op_instrumented(*op, op->report(), in, nullptr, 0)
                  : op->run(in);
  };
  // Chain through pointers so the identity shortcut never copies the
  // input activation (main_ is never empty: conv1..bn2).
  Activation main;
  const Activation* cur = &input;
  for (const auto& op : main_) {
    main = run_sub(op, *cur);
    cur = &main;
  }
  Activation shortcut;
  const Activation* scur = &input;
  for (const auto& op : shortcut_) {
    shortcut = run_sub(op, *scur);
    scur = &shortcut;
  }
  tensor::add_(main.tensor, scur->tensor);
  const Activation summed(std::move(main.tensor));
  return traced
             ? trace::run_op_instrumented(*out_lif_, out_lif_->report(), summed, nullptr, 0)
             : out_lif_->run(summed);
}

namespace {

/// Streaming state of a residual block: one nested slot per sub-op (in
/// chain order) plus the output LIF's. Slots of stateless sub-ops hold
/// nullptr, mirroring make_state()'s contract.
struct ResidualStreamState final : OpState {
  std::vector<std::unique_ptr<OpState>> main;
  std::vector<std::unique_ptr<OpState>> shortcut;
  std::unique_ptr<OpState> out;
};

}  // namespace

std::unique_ptr<OpState> ResidualOp::make_state() const {
  auto st = std::make_unique<ResidualStreamState>();
  st->main.reserve(main_.size());
  for (const auto& op : main_) st->main.push_back(op->make_state());
  st->shortcut.reserve(shortcut_.size());
  for (const auto& op : shortcut_) st->shortcut.push_back(op->make_state());
  st->out = out_lif_->make_state();
  return st;
}

Activation ResidualOp::step(const Activation& input, OpState* state) const {
  auto* st = static_cast<ResidualStreamState*>(state);
  // Same pointer-chained dataflow as run(), one timestep wide; sub-ops
  // get their nested state slots. No per-sub-op instrumentation here —
  // the session's per-stage span already brackets the whole block.
  Activation main;
  const Activation* cur = &input;
  for (std::size_t i = 0; i < main_.size(); ++i) {
    main = main_[i]->step(*cur, st->main[i].get());
    cur = &main;
  }
  Activation shortcut;
  const Activation* scur = &input;
  for (std::size_t i = 0; i < shortcut_.size(); ++i) {
    shortcut = shortcut_[i]->step(*scur, st->shortcut[i].get());
    scur = &shortcut;
  }
  tensor::add_(main.tensor, scur->tensor);
  const Activation summed(std::move(main.tensor));
  return out_lif_->step(summed, st->out.get());
}

OpReport ResidualOp::report() const {
  OpReport r{layer_name_, "residual", 0, 0, 0.0, false};
  double zero_weighted = 0.0;
  for (const auto* chain : {&main_, &shortcut_}) {
    for (const auto& op : *chain) {
      const OpReport sub = op->report();
      r.weights += sub.weights;
      r.nnz += sub.nnz;
      r.event |= sub.event;
      zero_weighted += sub.sparsity * static_cast<double>(sub.weights);
    }
  }
  if (r.weights > 0) r.sparsity = zero_weighted / static_cast<double>(r.weights);
  return r;
}

}  // namespace ndsnn::runtime
