#include "runtime/ops/conv_op.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "runtime/trace.hpp"
#include "tensor/im2col.hpp"
#include "tensor/matmul.hpp"
#include "tensor/ops.hpp"

namespace ndsnn::runtime {

using tensor::Shape;
using tensor::Tensor;

ConvOp::ConvOp(const nn::Conv2d& src, Kernel kernel, sparse::Precision precision,
               bool event, const CompileOptions& opts,
               std::shared_ptr<util::ThreadPool> pool)
    : layer_name_(src.name()),
      gemm_(kernel),
      pool_(std::move(pool)),
      tier_(util::simd::resolve(opts.kernel_tier)),
      autotuned_(opts.autotune),
      precision_(kernel == Kernel::kDense ? sparse::Precision::kFp32 : precision),
      event_(event),
      has_bias_(src.has_bias()),
      in_channels_(src.in_channels()),
      out_channels_(src.out_channels()),
      kernel_(src.kernel()),
      stride_(src.stride()),
      padding_(src.padding()),
      weights_(src.weight().numel()),
      source_sparsity_(src.masked_view()->sparsity()) {
  switch (gemm_) {
    case Kernel::kCsr:
      if (event_) {
        csr_t_ = sparse::Csr::from_weights(src.weight(), opts.prune_threshold).transposed();
        (void)csr_t_.quantize(precision_);
        if (opts.fake_quant) csr_t_.dequantize();
        stored_ = csr_t_.nnz();
        bytes_ = csr_t_.memory_bytes();
      } else {
        csr_ = sparse::Csr::from_weights(src.weight(), opts.prune_threshold);
        // The dense-activation plane takes the grouped-scale knob; the
        // event plane keeps per-row scales (scatter dequantises per
        // stored entry either way, but grouping the transposed storage
        // would regroup across filters — not the calibrated scheme).
        (void)csr_.quantize(precision_, /*symmetric=*/true, /*uniform_scale=*/false,
                            opts.quant_group_size);
        if (opts.fake_quant) csr_.dequantize();
        stored_ = csr_.nnz();
        bytes_ = csr_.memory_bytes();
      }
      break;
    case Kernel::kBcsr:
      if (event_) {
        bcsr_t_ = sparse::Bcsr::from_weights(src.weight(), opts.block_rows, opts.block_cols,
                                             opts.prune_threshold)
                      .transposed();
        (void)bcsr_t_.quantize(precision_);
        if (opts.fake_quant) bcsr_t_.dequantize();
        stored_ = bcsr_t_.stored_values();
        bytes_ = bcsr_t_.memory_bytes();
      } else {
        bcsr_ = sparse::Bcsr::from_weights(src.weight(), opts.block_rows, opts.block_cols,
                                           opts.prune_threshold);
        (void)bcsr_.quantize(precision_);
        if (opts.fake_quant) bcsr_.dequantize();
        stored_ = bcsr_.stored_values();
        bytes_ = bcsr_.memory_bytes();
      }
      break;
    case Kernel::kDense: {
      const int64_t ckk = in_channels_ * kernel_ * kernel_;
      if (event_) {
        dense_t_ = Tensor(Shape{ckk, out_channels_});
        const float* w = src.weight().data();
        float* wt = dense_t_.data();
        for (int64_t f = 0; f < out_channels_; ++f) {
          for (int64_t c = 0; c < ckk; ++c) wt[c * out_channels_ + f] = w[f * ckk + c];
        }
      } else {
        dense_ = src.weight().reshaped(Shape{out_channels_, ckk});
      }
      stored_ = weights_;
      bytes_ = weights_ * 4;
      break;
    }
  }
  if (has_bias_) bias_ = src.bias();
  if (event_) {
    // Per-output-channel weight histogram of the transposed structure:
    // the prefix sums that let the parallel event path hand each chunk a
    // channel strip with balanced scatter work.
    channel_weight_prefix_.assign(static_cast<std::size_t>(out_channels_) + 1, 0);
    auto& prefix = channel_weight_prefix_;
    switch (gemm_) {
      case Kernel::kCsr:
        for (const int32_t f : csr_t_.col_idx()) ++prefix[static_cast<std::size_t>(f) + 1];
        break;
      case Kernel::kBcsr: {
        const int64_t bc = bcsr_t_.block_cols();
        for (const int32_t jb : bcsr_t_.block_col_idx()) {
          const int64_t f_begin = static_cast<int64_t>(jb) * bc;
          const int64_t f_end = std::min(f_begin + bc, out_channels_);
          for (int64_t f = f_begin; f < f_end; ++f) {
            prefix[static_cast<std::size_t>(f) + 1] += bcsr_t_.block_rows();
          }
        }
        break;
      }
      case Kernel::kDense:
        for (int64_t f = 0; f < out_channels_; ++f) {
          prefix[static_cast<std::size_t>(f) + 1] = in_channels_ * kernel_ * kernel_;
        }
        break;
    }
    for (int64_t f = 0; f < out_channels_; ++f) {
      prefix[static_cast<std::size_t>(f) + 1] += prefix[static_cast<std::size_t>(f)];
    }
  }
}

Tensor ConvOp::run_dense(const Tensor& input) const {
  tensor::ConvGeometry g;
  g.batch = input.dim(0);
  g.in_channels = in_channels_;
  g.in_h = input.dim(2);
  g.in_w = input.dim(3);
  g.kernel_h = kernel_;
  g.kernel_w = kernel_;
  g.stride = stride_;
  g.padding = padding_;
  g.validate();

  Tensor cols;
  {
    trace::ScopedSpan span("im2col", "phase");
    span.rows(g.batch);
    cols = tensor::im2col(input, g);
    span.bytes(cols.numel() * static_cast<int64_t>(sizeof(float)));
  }
  const int64_t m = g.batch, oh = g.out_h(), ow = g.out_w();
  const int64_t plane = oh * ow;
  Tensor out(Shape{m, out_channels_, oh, ow});
  trace::ScopedSpan gemm_span("conv-gemm", "phase");
  gemm_span.rows(m);
  gemm_span.bytes(bytes_);

  if (gemm_ == Kernel::kCsr && !csr_.quantized()) {
    // Fused spmm + transpose: accumulate each CSR row f straight into
    // the [m, F, oy, ox] layout, skipping the [F, L] intermediate. Per
    // output element the nonzeros are visited in the same order as
    // Csr::spmm, so results stay bitwise identical. (A quantised plane
    // takes the spmm + transpose route below: Csr::spmm dispatches to
    // the dequantise-once-per-output-row kernel internally.) Filters are
    // independent output rows: the pool partitions them nnz-balanced.
    const int64_t l = m * plane;
    const auto& row_ptr = csr_.row_ptr();
    const auto& col_idx = csr_.col_idx();
    const auto& values = csr_.values();
    const float* colsp = cols.data();
    float* dst = out.data();
    const auto filters = [&](int64_t f0, int64_t f1) {
      for (int64_t f = f0; f < f1; ++f) {
        for (int64_t k = row_ptr[static_cast<std::size_t>(f)];
             k < row_ptr[static_cast<std::size_t>(f) + 1]; ++k) {
          const float v = values[static_cast<std::size_t>(k)];
          const float* brow =
              colsp + static_cast<int64_t>(col_idx[static_cast<std::size_t>(k)]) * l;
          for (int64_t mm = 0; mm < m; ++mm) {
            float* drow = dst + (mm * out_channels_ + f) * plane;
            const float* s = brow + mm * plane;
            for (int64_t p = 0; p < plane; ++p) drow[p] += v * s[p];
          }
        }
      }
    };
    util::parallel_balanced(pool_.get(), row_ptr.data(), out_channels_, csr_.nnz() * l,
                            filters);
  } else {
    util::ThreadPool* pool = pool_.get();
    const Tensor yflat = gemm_ == Kernel::kCsr    ? csr_.spmm(cols, pool, tier_)
                         : gemm_ == Kernel::kBcsr ? bcsr_.spmm(cols, pool, tier_)
                                                  : tensor::matmul(dense_, cols, pool, tier_);
    // Transpose [F, (m, oy, ox)] -> [m, F, oy, ox].
    const float* src = yflat.data();
    float* dst = out.data();
    for (int64_t f = 0; f < out_channels_; ++f) {
      const float* srow = src + f * (m * plane);
      for (int64_t mm = 0; mm < m; ++mm) {
        float* drow = dst + (mm * out_channels_ + f) * plane;
        const float* s = srow + mm * plane;
        for (int64_t p = 0; p < plane; ++p) drow[p] = s[p];
      }
    }
  }
  return out;
}

void ConvOp::event_scatter(const Tensor& in, const SpikeBatch& events, Tensor& out,
                           int64_t oh, int64_t ow, int64_t f0, int64_t f1) const {
  const int64_t m = in.dim(0), h = in.dim(2), w = in.dim(3);
  const int64_t in_plane = h * w;
  const int64_t row_size = in_channels_ * in_plane;
  const int64_t plane = oh * ow;
  const bool full = f0 == 0 && f1 == out_channels_;
  const float* inp = in.data();
  float* dst = out.data();
  for (int64_t mm = 0; mm < m; ++mm) {
    const float* xrow = inp + mm * row_size;
    const int32_t* active = events.active_begin(mm);
    const int64_t n_active = events.active_count(mm);
    float* obase = dst + mm * out_channels_ * plane;
    for (int64_t a = 0; a < n_active; ++a) {
      const int64_t j = active[a];
      const float v = xrow[j];
      const int64_t c = j / in_plane;
      const int64_t y = (j % in_plane) / w;
      const int64_t x = j % w;
      // Every kernel offset (ky, kx) that maps pixel (y, x) onto a valid
      // output position; for a fixed output element exactly one offset
      // matches, so ascending (c, y, x) scatters in ascending
      // patch-column order per output — the dense GEMM's order. A
      // channel strip [f0, f1) only restricts *which* outputs a chunk
      // owns, never the order of their contributions.
      for (int64_t ky = 0; ky < kernel_; ++ky) {
        const int64_t oy_num = y + padding_ - ky;
        if (oy_num < 0 || oy_num % stride_ != 0) continue;
        const int64_t oy = oy_num / stride_;
        if (oy >= oh) continue;
        for (int64_t kx = 0; kx < kernel_; ++kx) {
          const int64_t ox_num = x + padding_ - kx;
          if (ox_num < 0 || ox_num % stride_ != 0) continue;
          const int64_t ox = ox_num / stride_;
          if (ox >= ow) continue;
          const int64_t col = (c * kernel_ + ky) * kernel_ + kx;
          float* obegin = obase + oy * ow + ox;
          switch (gemm_) {
            case Kernel::kCsr:
              if (full) {
                csr_t_.scatter_row(col, v, obegin, plane);
              } else {
                csr_t_.scatter_row_range(col, v, obegin, plane, f0, f1);
              }
              break;
            case Kernel::kBcsr:
              if (full) {
                bcsr_t_.scatter_row(col, v, obegin, plane);
              } else {
                bcsr_t_.scatter_row_range(col, v, obegin, plane, f0, f1);
              }
              break;
            case Kernel::kDense: {
              const float* wrow = dense_t_.data() + col * out_channels_;
              for (int64_t f = f0; f < f1; ++f) {
                obegin[f * plane] += wrow[f] * v;
              }
              break;
            }
          }
        }
      }
    }
  }
}

Tensor ConvOp::run_event(const Activation& input) const {
  const Tensor& in = input.tensor;
  const int64_t m = in.dim(0), h = in.dim(2), w = in.dim(3);
  const int64_t oh = (h + 2 * padding_ - kernel_) / stride_ + 1;
  const int64_t ow = (w + 2 * padding_ - kernel_) / stride_ + 1;
  if (oh < 1 || ow < 1) {
    throw std::invalid_argument("ConvOp: kernel larger than padded input " +
                                in.shape().str());
  }
  const int64_t row_size = in_channels_ * h * w;
  Tensor out(Shape{m, out_channels_, oh, ow});

  const bool use_events =
      input.has_events && input.events.rows == m && input.events.row_size == row_size;
  // Without a usable view the event stream is rebuilt once up front (the
  // scan is shared by every channel chunk).
  SpikeBatch scanned;
  if (!use_events) scanned = SpikeBatch::scan(in);
  const SpikeBatch& events = use_events ? input.events : scanned;

  trace::ScopedSpan span("event-scatter", "phase");
  span.rows(m);
  span.rate(events.rate());
  span.bytes(bytes_);

  // Output channels partition the scatter: each chunk replays the whole
  // event stream but writes only its own channel strip, nnz-balanced by
  // the per-channel weight histogram. Work per event ~ k*k offsets times
  // the average weights per patch column.
  const int64_t ckk = in_channels_ * kernel_ * kernel_;
  const int64_t cost_per_active =
      kernel_ * kernel_ * std::max<int64_t>(1, stored_ / std::max<int64_t>(1, ckk));
  const int64_t total_active = static_cast<int64_t>(events.idx.size());
  util::parallel_balanced(pool_.get(), channel_weight_prefix_.data(), out_channels_,
                          total_active * cost_per_active, [&](int64_t f0, int64_t f1) {
                            event_scatter(in, events, out, oh, ow, f0, f1);
                          });
  return out;
}

Activation ConvOp::run(const Activation& input) const {
  if (input.tensor.rank() != 4 || input.tensor.dim(1) != in_channels_) {
    throw std::invalid_argument("ConvOp: expected [M, " + std::to_string(in_channels_) +
                                ", H, W], got " + input.tensor.shape().str());
  }
  Tensor out = event_ ? run_event(input) : run_dense(input.tensor);
  if (has_bias_) tensor::add_channel_bias_(out, bias_);
  return Activation(std::move(out));
}

OpReport ConvOp::report() const {
  OpReport r{layer_name_, std::string(kernel_tag(gemm_)) + "-conv", weights_, stored_,
             source_sparsity_, event_, precision_, bytes_};
  r.tier = tier_;
  r.autotuned = autotuned_;
  return r;
}

}  // namespace ndsnn::runtime
