#include "runtime/ops/batchnorm_op.hpp"

#include <cmath>
#include <stdexcept>

#include "runtime/trace.hpp"

namespace ndsnn::runtime {

using tensor::Shape;
using tensor::Tensor;

BatchNormOp::BatchNormOp(const nn::BatchNorm2d& src)
    : layer_name_(src.name()),
      channels_(src.channels()),
      mean_(src.running_mean()),
      gamma_(src.gamma()),
      beta_(src.beta()),
      inv_std_(Shape{src.channels()}) {
  for (int64_t c = 0; c < channels_; ++c) {
    inv_std_.at(c) = 1.0F / std::sqrt(src.running_var().at(c) + src.eps());
  }
}

Activation BatchNormOp::run(const Activation& input) const {
  const Tensor& in = input.tensor;
  if (in.rank() != 4 || in.dim(1) != channels_) {
    throw std::invalid_argument("BatchNormOp: expected [M, " + std::to_string(channels_) +
                                ", H, W], got " + in.shape().str());
  }
  const int64_t m = in.dim(0), plane = in.dim(2) * in.dim(3);
  trace::ScopedSpan span("bn-normalize", "phase");
  span.rows(m);
  span.bytes(channels_ * 4 * static_cast<int64_t>(sizeof(float)));
  Tensor out(in.shape());
  const float* src = in.data();
  float* dst = out.data();
  for (int64_t c = 0; c < channels_; ++c) {
    const float mean = mean_.at(c), inv_std = inv_std_.at(c);
    const float g = gamma_.at(c), b = beta_.at(c);
    for (int64_t mm = 0; mm < m; ++mm) {
      const int64_t base = (mm * channels_ + c) * plane;
      for (int64_t i = 0; i < plane; ++i) {
        dst[base + i] = g * ((src[base + i] - mean) * inv_std) + b;
      }
    }
  }
  return Activation(std::move(out));
}

OpReport BatchNormOp::report() const { return {layer_name_, "bn", 0, 0, 0.0, false}; }

}  // namespace ndsnn::runtime
