// Plan IR of the sparse inference runtime.
//
// CompiledNetwork::compile lowers a trained SpikingNetwork into a Plan:
// an immutable sequence of Ops (src/runtime/ops/) plus per-op reports.
// Ops exchange `Activation` values — the dense time-major tensor the
// interpreted network would produce, optionally annotated with a
// `SpikeBatch` event view (per-row active-index lists) that neuron ops
// emit directly while writing their spike trains. Event-driven weight
// ops consume the view to skip work proportional to the firing rate;
// every op still produces the bitwise-identical dense tensor, so the
// event path stays pinned against SpikingNetwork::predict by the
// differential harness.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sparse/quant.hpp"
#include "tensor/tensor.hpp"
#include "util/cpuinfo.hpp"

namespace ndsnn::util {
class ThreadPool;
}

namespace ndsnn::runtime {

class PlanProfile;  // runtime/trace.hpp: per-op latency/firing-rate aggregation

/// Which GEMM kernel a weight op was lowered onto (resolved from
/// CompileOptions::backend by the compiler's cost heuristic).
enum class Kernel { kDense, kCsr, kBcsr };

[[nodiscard]] const char* kernel_tag(Kernel k);

/// Sparse view of a time-major activation [M, features]: for each row m
/// the ascending list of feature indices whose value is nonzero. Neuron
/// ops build this for free while writing their spike trains (spikes are
/// mostly zeros at typical 5-20% firing rates); event-driven weight ops
/// iterate it instead of scanning the dense tensor.
struct SpikeBatch {
  int64_t rows = 0;              ///< M = T * N (time-major batch rows)
  int64_t row_size = 0;          ///< features per row
  std::vector<int64_t> row_ptr;  ///< rows + 1 offsets into idx
  std::vector<int32_t> idx;      ///< active indices, ascending per row

  /// Build by scanning a dense [M, ...] tensor (rows = dim(0)).
  /// Utility for tests and tools; the event-driven ops themselves scan
  /// row by row into a reused scratch buffer instead of materializing a
  /// whole-tensor view when their input arrives without one.
  [[nodiscard]] static SpikeBatch scan(const tensor::Tensor& t);

  /// Fraction of nonzero elements over everything indexed.
  [[nodiscard]] double rate() const;

  [[nodiscard]] int64_t active_count(int64_t row) const {
    return row_ptr[static_cast<std::size_t>(row) + 1] -
           row_ptr[static_cast<std::size_t>(row)];
  }
  [[nodiscard]] const int32_t* active_begin(int64_t row) const {
    return idx.data() + row_ptr[static_cast<std::size_t>(row)];
  }
};

/// Incremental SpikeBatch construction for producers that visit elements
/// in ascending flat order (the neuron ops' t-major write loop). push()
/// takes the flat index into the [M * row_size] tensor.
class SpikeBatchBuilder {
 public:
  SpikeBatchBuilder(int64_t rows, int64_t row_size) {
    batch_.rows = rows;
    batch_.row_size = row_size;
    batch_.row_ptr.assign(static_cast<std::size_t>(rows) + 1, 0);
  }

  void push(int64_t flat) {
    const int64_t row = flat / batch_.row_size;
    while (cur_row_ < row) {
      batch_.row_ptr[static_cast<std::size_t>(++cur_row_)] =
          static_cast<int64_t>(batch_.idx.size());
    }
    batch_.idx.push_back(static_cast<int32_t>(flat % batch_.row_size));
  }

  [[nodiscard]] SpikeBatch finish() {
    while (cur_row_ < batch_.rows) {
      batch_.row_ptr[static_cast<std::size_t>(++cur_row_)] =
          static_cast<int64_t>(batch_.idx.size());
    }
    return std::move(batch_);
  }

 private:
  SpikeBatch batch_;
  int64_t cur_row_ = 0;
};

/// What flows between ops: the dense activation plus an optional event
/// view. `has_events` is false whenever the producing op cannot cheaply
/// maintain the view (weight ops, batch norm, pooling) — consumers that
/// want events then rescan the dense tensor row by row.
struct Activation {
  tensor::Tensor tensor;
  SpikeBatch events;
  bool has_events = false;
  /// True when every element is exactly 0.0F or 1.0F (a spike train):
  /// set by the neuron ops, forwarded by shape-preserving-value ops
  /// (Flatten) and by MaxPool (max of binary values is binary), cleared
  /// by everything that mixes values (weight ops, BN, AvgPool). Gates
  /// transforms that are only exact on binary data, e.g. MaxPool's
  /// event-scatter path.
  bool spikes = false;

  Activation() = default;
  explicit Activation(tensor::Tensor t) : tensor(std::move(t)) {}
  Activation(tensor::Tensor t, SpikeBatch e)
      : tensor(std::move(t)), events(std::move(e)), has_events(true) {}
};

/// What one compiled op is and how sparse its weights are (for plan
/// summaries and the bench reports). Weightless ops report weights == 0.
struct OpReport {
  std::string layer;     ///< source layer name(), e.g. "Conv2d(3->64, ...)"
  std::string kind;      ///< "{dense,csr,bcsr}-{linear,conv}" |
                         ///< "lif" | "alif" | "bn" | "pool" | "reshape" | "residual"
  int64_t weights = 0;   ///< total weight elements
  int64_t nnz = 0;       ///< values the kernel stores (CSR nonzeros, BCSR
                         ///< dense block values, == weights for dense ops)
  double sparsity = 0.0; ///< zero fraction of the source weights
  bool event = false;    ///< weight op executes the event-driven path
  /// Stored bit width of the value plane (kFp32 for dense kernels and
  /// unquantised sparse ones).
  sparse::Precision precision = sparse::Precision::kFp32;
  /// Bytes the weight structure occupies (values or quantised plane +
  /// indices); 0 for weightless ops. What the bench bytes-touched
  /// column sums.
  int64_t bytes = 0;
  /// SIMD kernel tier the op's GEMM/gather kernels dispatch with —
  /// resolved once at compile time from CompileOptions::kernel_tier.
  /// Weightless ops have no tiered kernels and keep the kScalar
  /// default; the plan summary only prints the tier for weight ops.
  util::simd::Tier tier = util::simd::Tier::kScalar;
  /// True when the op's {kernel, block shape, tier} came from a
  /// measured runtime::Autotune decision rather than the static
  /// heuristics (false for event-path and weightless ops even when
  /// CompileOptions::autotune was set).
  bool autotuned = false;
};

/// Opaque per-session mutable state of one op for streaming execution
/// (StreamSession): the membrane/adaptation carry of a neuron op, the
/// nested states of a residual block. Ops that keep no state across
/// timesteps (weight ops, BN, pooling, reshape — all row-independent)
/// have none. Owned by the session, one instance per (session, op);
/// never shared between sessions, so step() may mutate it freely while
/// the op itself stays immutable and thread-safe.
struct OpState {
  virtual ~OpState() = default;
};

/// One inference op of the compiled plan. Implementations are immutable
/// after construction; run() must be safe to call from many threads.
///
/// Streaming: make_state()/step() execute the op one timestep at a time
/// over [N, ...] frames instead of a whole [T*N, ...] window. The
/// default covers every stateless op exactly — their math is
/// row-independent, so running one step's rows alone is bitwise
/// identical to running them inside the window. Stateful ops (neuron
/// dynamics, residual blocks) override both; the contract is that
/// feeding T frames through step() in order reproduces run() on the
/// time-major concatenation bitwise, slice for slice.
class Op {
 public:
  virtual ~Op() = default;
  Op() = default;
  Op(const Op&) = delete;
  Op& operator=(const Op&) = delete;

  [[nodiscard]] virtual Activation run(const Activation& input) const = 0;
  [[nodiscard]] virtual OpReport report() const = 0;

  /// Fresh streaming state, or nullptr for stateless ops. A nullptr
  /// also tells the session the op is safe to delta-skip on empty input
  /// steps (stateful ops must run every step — membranes decay even
  /// with no input spikes).
  [[nodiscard]] virtual std::unique_ptr<OpState> make_state() const {
    return nullptr;
  }

  /// Run one timestep. `input.tensor` is one frame [N, ...]; `state` is
  /// the instance make_state() returned (nullptr for stateless ops,
  /// which must not touch it).
  [[nodiscard]] virtual Activation step(const Activation& input,
                                        OpState* state) const {
    (void)state;
    return run(input);
  }
};

/// The compiled program: op sequence, per-op reports, and the timestep
/// count the neuron ops were staged for. Immutable after compilation and
/// free of mutable execution state, so one Plan serves many threads.
struct Plan {
  std::vector<std::unique_ptr<Op>> ops;
  std::vector<OpReport> reports;
  int64_t timesteps = 1;
  double estimated_spike_rate = 0.0;  ///< mean over spiking layers (compile-time estimate)
  /// Shared intra-op execution pool (CompileOptions::num_threads > 1 or
  /// 0 = hardware concurrency): weight ops borrow it for row-partitioned
  /// kernel dispatch. Null for serial plans. The pool never changes what
  /// is computed — fp32 outputs are bitwise identical for any lane count
  /// — and it is safe to drive from many threads at once (the
  /// BatchExecutor's request workers share it).
  std::shared_ptr<util::ThreadPool> pool;
  /// Per-op profiling slots (runtime/trace.hpp), allocated by compile()
  /// and disabled by default: execute() folds per-op durations and
  /// observed firing rates into it when enabled. Shared so the const
  /// serving surfaces (CompiledNetwork, BatchExecutor) can toggle and
  /// snapshot it without mutating the immutable plan itself.
  std::shared_ptr<PlanProfile> profile;

  /// Lanes of the intra-op pool (1 for serial plans). What the
  /// BatchExecutor divides its thread budget by.
  [[nodiscard]] int64_t intra_op_threads() const;

  /// Run the op sequence over an already-encoded time-major batch
  /// (taken by value: callers move the encoder temporary in, so no op
  /// input is ever deep-copied).
  [[nodiscard]] tensor::Tensor execute(tensor::Tensor encoded) const;

  /// Weight elements stored by the plan (CSR nnz + dense fallback sizes).
  [[nodiscard]] int64_t stored_weights() const;
  /// Bytes the plan's weight structures occupy (values / quantised
  /// planes + indices, summed over all ops).
  [[nodiscard]] int64_t stored_bytes() const;
  /// Parameter-weighted sparsity over all weight ops.
  [[nodiscard]] double overall_sparsity() const;
  /// Multi-line human-readable description.
  [[nodiscard]] std::string summary() const;
};

}  // namespace ndsnn::runtime
