// The consolidated inference request/result pair shared by every
// serving entry point:
//
//   - one-shot:   CompiledNetwork::infer(InferenceRequest)
//   - batched:    BatchExecutor::submit(InferenceRequest)
//   - streaming:  StreamSession::step(InferenceRequest) and the
//                 executor's submit_stream()
//
// The older call shapes (CompiledNetwork::run, BatchExecutor::submit
// taking a bare Tensor) remain as thin documented wrappers over these
// types, so code written against PR 1-8 keeps compiling while new code
// has a single vocabulary for "an inference" across all three paths.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "tensor/tensor.hpp"

namespace ndsnn::runtime {

/// Priority tier of a request. Stream steps schedule before everything
/// (their latency budget is per event, not per window), interactive
/// requests before batch requests; the batch class also gets a longer
/// SLO budget (ExecutorOptions::batch_slo_factor) before admission
/// control sheds it. Numeric values are wire-stable (serve/wire.*
/// carries them as a byte); scheduling order is defined by
/// slo_priority(), not by the enum values.
enum class SloClass : uint8_t {
  kInteractive = 0,
  kBatch = 1,
  kStream = 2,
};

/// Scheduling rank of a class: lower runs first. Streams outrank
/// interactive — a stream step is one timestep of an open session and
/// sits on the per-event latency path.
[[nodiscard]] constexpr int slo_priority(SloClass c) {
  switch (c) {
    case SloClass::kStream: return 0;
    case SloClass::kInteractive: return 1;
    case SloClass::kBatch: return 2;
  }
  return 3;
}

/// Thrown through the future of a request the admission controller
/// refused (predicted queue wait above the SLO budget) or that was
/// submitted after shutdown(). Clients treat it as back-pressure:
/// retry later or against another replica, don't escalate.
class ShedError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown through the future of a stream step rejected because its
/// session's queue already holds ExecutorOptions::max_stream_queue
/// steps. Subclasses ShedError — generic handlers keep treating it as
/// back-pressure — but carries a stronger contract: the rejection never
/// touched the session's carry state, so the client must resubmit the
/// SAME frame (after backoff) rather than drop the timestep. The wire
/// layer maps it to Status::kBackpressure; serve::stream_step_retry is
/// the reference client loop.
class BackpressureError : public ShedError {
 public:
  using ShedError::ShedError;
};

/// One unit of inference work. For the one-shot and batched paths
/// `batch` is a static input batch [N, ...]; for the streaming path it
/// is ONE timestep's frame [N, ...] of an open session.
struct InferenceRequest {
  tensor::Tensor batch;
  SloClass slo = SloClass::kInteractive;
};

/// What an inference resolved to. One-shot and batched paths fill
/// `logits` with the mean-over-time logits [N, classes]; the streaming
/// path fills it with ONE step's logits [N, classes] (the caller owns
/// any across-step readout). `latency_ms` is end-to-end as observed by
/// the serving layer that produced the result (queue wait + service for
/// the executor paths, call latency for the direct ones).
struct InferenceResult {
  tensor::Tensor logits;
  double latency_ms = 0.0;
  /// Streaming only: plan stages skipped by the delta path for this
  /// step (empty input SpikeBatch -> cached zero-input output reused).
  int64_t skipped_ops = 0;
};

}  // namespace ndsnn::runtime
