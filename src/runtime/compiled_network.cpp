#include "runtime/compiled_network.hpp"

#include <algorithm>
#include <chrono>
#include <initializer_list>
#include <memory>
#include <stdexcept>
#include <utility>

#include "nn/batchnorm.hpp"
#include "nn/checkpoint.hpp"
#include "runtime/autotune.hpp"
#include "nn/conv2d.hpp"
#include "nn/flatten.hpp"
#include "nn/lif_activation.hpp"
#include "nn/linear.hpp"
#include "nn/loss.hpp"
#include "nn/neuron_activations.hpp"
#include "nn/pool.hpp"
#include "nn/residual.hpp"
#include "nn/sequential.hpp"
#include "runtime/ops/batchnorm_op.hpp"
#include "runtime/ops/conv_op.hpp"
#include "runtime/ops/linear_op.hpp"
#include "runtime/ops/neuron_ops.hpp"
#include "runtime/ops/shape_ops.hpp"
#include "snn/spike_stats.hpp"
#include "sparse/bcsr.hpp"
#include "tensor/ops.hpp"
#include "util/thread_pool.hpp"

namespace ndsnn::runtime {

using tensor::Tensor;

namespace {

/// Forward dataflow the compiler tracks while walking the body: whether
/// the activation entering the next layer is spike-valued (mostly-zero),
/// and the best available estimate of its nonzero fraction. Neuron-layer
/// rates come from the network's recorded firing rates when a forward
/// pass ran (Layer::last_spike_rate), else from the CompileOptions
/// fallback; all of them aggregate into a snn::SpikeStats summary the
/// plan reports.
struct Lowering {
  const CompileOptions& opts;
  bool spiking = false;  ///< next layer's input is a spike train
  double rate = 1.0;     ///< estimated nonzero fraction of that input
  snn::SpikeStats stats; ///< per-neuron-layer rate aggregate
  bool emit_events = false;  ///< neuron ops produce SpikeBatch views
  bool dry = false;       ///< walk state only, build no ops (pre-pass)
  bool any_event = false; ///< some weight layer decided event-driven
  std::size_t weight_index = 0;  ///< weight layers seen, in body order
                                 ///< (indexes CompileOptions::layer_precisions)
  /// Shared intra-op pool the built weight ops borrow (null = serial).
  std::shared_ptr<util::ThreadPool> pool;

  explicit Lowering(const CompileOptions& o) : opts(o) {}

  void now_dense() {
    spiking = false;
    rate = 1.0;
  }

  void now_spiking(double measured_rate) {
    spiking = true;
    // last_spike_rate() is 0.0 both before any forward pass and for a
    // genuinely silent layer; either way the fallback estimate is the
    // safer planning number (a silent input favours the event path too).
    rate = measured_rate > 0.0 ? measured_rate : opts.firing_rate_estimate;
    // SpikeStats counts elements; layer shapes are unknown at compile
    // time, so weight every layer equally at a fixed resolution (the
    // summary only needs ~1e-6 precision on the mean).
    stats.record_rate(rate, int64_t{1} << 20);
  }

  /// Pooling a spike train: a window output is nonzero when any of its
  /// k*k inputs is, so the union bound k*k*rate caps the outgoing rate.
  void pooled(int64_t k) {
    if (spiking) rate = std::min(1.0, rate * static_cast<double>(k * k));
  }

  /// Should the weight layer consuming the current activation run
  /// event-driven?
  [[nodiscard]] bool event_for_weight_layer() const {
    switch (opts.activation_mode) {
      case ActivationMode::kDense: return false;
      case ActivationMode::kEvent: return true;
      case ActivationMode::kAuto: return spiking && rate <= opts.event_max_rate;
    }
    return false;
  }
};

/// The weight-kernel cost heuristic: dense below the sparsity bar, then
/// BCSR when the measured pattern (sparse::Bcsr::measure_weights — the
/// same scan the format itself uses, without materializing block
/// storage) is blocky enough that dense micro-blocks beat per-element
/// indexing, else CSR. A forced CompileOptions::backend short-circuits
/// the measurement.
Kernel pick_kernel(const Tensor& weight, const CompileOptions& opts) {
  if (opts.force_dense || opts.backend == Backend::kDense) return Kernel::kDense;
  if (opts.backend == Backend::kCsr) return Kernel::kCsr;
  if (opts.backend == Backend::kBcsr) return Kernel::kBcsr;
  const sparse::BcsrStats stats = sparse::Bcsr::measure_weights(
      weight, opts.block_rows, opts.block_cols, opts.prune_threshold);
  if (stats.sparsity() < opts.min_sparsity) return Kernel::kDense;
  return stats.occupancy() >= opts.bcsr_min_occupancy ? Kernel::kBcsr : Kernel::kCsr;
}

/// The value-plane precision heuristic. Quantised planes live on the
/// sparse formats, so dense-kernel layers always execute fp32. Under
/// kAuto a per-layer override vector (filled from a v3 checkpoint's
/// quantisation record) wins; otherwise the layer takes the lowest bit
/// width whose measured per-row reconstruction error stays under
/// quant_max_error — a calibration on the actual weight values, not a
/// fixed bitwidth-based rule, so outlier-heavy layers stay fp32. The
/// weight-layer counter advances for *every* weight layer (dense ones
/// included) to keep the override indexing aligned with the prunable
/// parameter order. The measurement matches the scheme the op will
/// actually emit: event-path linear layers quantise Wᵀ with a *uniform*
/// plane-wide scale (the binary-spike int32 gather's precondition), so
/// `uniform_error` measures that scheme instead of the per-row one —
/// both share the 1/(2*qmax) worst case on the global-relative metric,
/// but the measured values differ and the bound must gate the real
/// plane.
sparse::Precision pick_precision(const Tensor& weight, Kernel kernel, bool uniform_error,
                                 Lowering& lw) {
  const CompileOptions& opts = lw.opts;
  const std::size_t index = lw.weight_index++;
  if (kernel == Kernel::kDense) return sparse::Precision::kFp32;
  switch (opts.weight_precision) {
    case WeightPrecision::kFp32: return sparse::Precision::kFp32;
    case WeightPrecision::kInt8: return sparse::Precision::kInt8;
    case WeightPrecision::kInt4: return sparse::Precision::kInt4;
    case WeightPrecision::kAuto: break;
  }
  if (index < opts.layer_precisions.size()) return opts.layer_precisions[index];
  // Grouped scales only deploy on non-uniform CSR planes; the error
  // measurement mirrors exactly the scheme the plane will carry, so a
  // group size that lets int4 clear the bound also quantises that way.
  const int64_t group =
      (kernel == Kernel::kCsr && !uniform_error) ? opts.quant_group_size : 0;
  for (const sparse::Precision p : {sparse::Precision::kInt4, sparse::Precision::kInt8}) {
    if (sparse::relative_quant_error(weight, p, opts.prune_threshold, uniform_error,
                                     group) <= static_cast<float>(opts.quant_max_error)) {
      return p;
    }
  }
  return sparse::Precision::kFp32;
}

/// The {kernel, precision, per-layer options} one weight layer lowers
/// with. Bundled because autotuning overrides pieces of the
/// CompileOptions copy the op receives (block shape, kernel tier) and
/// the report must stay truthful about whether a measurement decided.
struct WeightLowering {
  Kernel kernel = Kernel::kDense;
  sparse::Precision precision = sparse::Precision::kFp32;
  CompileOptions opts;  ///< per-layer copy the op constructor consumes
};

/// Static-heuristic or measured lowering for one weight layer.
/// Autotune applies only where the probe measures what the op will run:
/// dense-activation layers under an unforced backend. Everything else
/// (event path, forced backends) takes the heuristics, with the copied
/// autotune flag cleared so OpReport::autotuned never lies.
WeightLowering lower_weight_layer(const Tensor& weight, bool event, bool uniform_error,
                                  AutotuneProbe probe, Lowering& lw) {
  const CompileOptions& opts = lw.opts;
  WeightLowering out;
  out.opts = opts;
  const bool tune =
      opts.autotune && !event && !opts.force_dense && opts.backend == Backend::kAuto;
  if (tune) {
    // Calibrate the value-plane precision first (against the CSR
    // scheme — the dense candidate ignores precision, and the grouped
    // knob only deploys on CSR), then measure the candidates with it.
    out.precision = pick_precision(weight, Kernel::kCsr, uniform_error, lw);
    const AutotuneChoice choice = autotune_layer(weight, out.precision, probe, opts);
    out.kernel = choice.kernel;
    out.opts.block_rows = choice.block_rows;
    out.opts.block_cols = choice.block_cols;
    out.opts.kernel_tier = choice.tier;
    return out;
  }
  out.opts.autotune = false;
  out.kernel = pick_kernel(weight, opts);
  out.precision = pick_precision(weight, out.kernel, uniform_error, lw);
  return out;
}

std::unique_ptr<Op> compile_layer(const nn::Layer& layer, Lowering& lw);

std::vector<std::unique_ptr<Op>> compile_chain(
    std::initializer_list<const nn::Layer*> layers, Lowering& lw) {
  std::vector<std::unique_ptr<Op>> ops;
  for (const nn::Layer* layer : layers) {
    if (layer != nullptr) ops.push_back(compile_layer(*layer, lw));
  }
  return ops;
}

/// One function serves both passes of the staged compile: the dry
/// pre-pass walks the identical dataflow-state transitions (so the
/// event decisions cannot diverge between passes) but skips the weight
/// measurement and op construction, only recording into Lowering
/// whether any weight layer chooses the event path — which is what
/// decides if the neuron ops pay for SpikeBatch emission at all.
std::unique_ptr<Op> compile_layer(const nn::Layer& layer, Lowering& lw) {
  if (const auto* linear = dynamic_cast<const nn::Linear*>(&layer)) {
    const bool event = lw.event_for_weight_layer();
    lw.any_event |= event;
    lw.now_dense();
    if (lw.dry) return nullptr;
    // Event-path LinearOp builds a uniform-scale plane; measure that.
    const WeightLowering wl = lower_weight_layer(linear->weight(), event,
                                                 /*uniform_error=*/event,
                                                 AutotuneProbe::kSpmmT, lw);
    return std::make_unique<LinearOp>(*linear, wl.kernel, wl.precision, event, wl.opts,
                                      lw.pool);
  }
  if (const auto* conv = dynamic_cast<const nn::Conv2d*>(&layer)) {
    const bool event = lw.event_for_weight_layer();
    lw.any_event |= event;
    lw.now_dense();
    if (lw.dry) return nullptr;
    // Conv structures keep per-row/per-block scales on every path.
    const WeightLowering wl = lower_weight_layer(conv->weight(), event,
                                                 /*uniform_error=*/false,
                                                 AutotuneProbe::kSpmm, lw);
    return std::make_unique<ConvOp>(*conv, wl.kernel, wl.precision, event, wl.opts,
                                    lw.pool);
  }
  if (const auto* bn = dynamic_cast<const nn::BatchNorm2d*>(&layer)) {
    lw.now_dense();  // the affine shift makes zeros non-zero
    if (lw.dry) return nullptr;
    return std::make_unique<BatchNormOp>(*bn);
  }
  if (const auto* lif = dynamic_cast<const nn::LifActivation*>(&layer)) {
    lw.now_spiking(lif->last_spike_rate());
    if (lw.dry) return nullptr;
    return std::make_unique<LifOp>(lif->name(), lif->lif().config(),
                                   lif->lif().timesteps(), lw.emit_events);
  }
  if (const auto* plif = dynamic_cast<const nn::PlifActivation*>(&layer)) {
    // PLIF at inference is a LIF with the trained leak alpha = sigmoid(a).
    snn::LifConfig cfg;
    cfg.alpha = plif->plif().alpha();
    cfg.threshold = plif->plif().config().threshold;
    lw.now_spiking(plif->last_spike_rate());
    if (lw.dry) return nullptr;
    return std::make_unique<LifOp>(plif->name(), cfg, plif->plif().timesteps(),
                                   lw.emit_events);
  }
  if (const auto* alif = dynamic_cast<const nn::AlifActivation*>(&layer)) {
    lw.now_spiking(alif->last_spike_rate());
    if (lw.dry) return nullptr;
    return std::make_unique<AlifOp>(alif->name(), alif->alif().config(),
                                    alif->alif().timesteps(), lw.emit_events);
  }
  if (const auto* avg = dynamic_cast<const nn::AvgPool2d*>(&layer)) {
    lw.pooled(avg->k());
    if (lw.dry) return nullptr;
    return std::make_unique<AvgPoolOp>(avg->name(), avg->k());
  }
  if (const auto* max = dynamic_cast<const nn::MaxPool2d*>(&layer)) {
    lw.pooled(max->k());
    if (lw.dry) return nullptr;
    return std::make_unique<MaxPoolOp>(max->name(), max->k());
  }
  if (dynamic_cast<const nn::GlobalAvgPool*>(&layer) != nullptr) {
    lw.now_dense();  // whole-plane averages are rarely exactly zero
    if (lw.dry) return nullptr;
    return std::make_unique<GlobalAvgPoolOp>();
  }
  if (dynamic_cast<const nn::Flatten*>(&layer) != nullptr) {
    if (lw.dry) return nullptr;
    return std::make_unique<FlattenOp>();  // spiking-ness passes through
  }
  if (const auto* res = dynamic_cast<const nn::ResidualBlock*>(&layer)) {
    // Both chains fork off the same incoming activation state.
    const bool in_spiking = lw.spiking;
    const double in_rate = lw.rate;
    auto main = compile_chain(
        {&res->conv1(), &res->bn1(), &res->lif1(), &res->conv2(), &res->bn2()}, lw);
    lw.spiking = in_spiking;
    lw.rate = in_rate;
    auto shortcut = compile_chain({res->shortcut_conv(), res->shortcut_bn()}, lw);
    // The output LIF consumes main + shortcut (dense sums).
    lw.now_dense();
    auto out_lif = compile_layer(res->lif_out(), lw);
    if (lw.dry) return nullptr;
    return std::make_unique<ResidualOp>(res->name(), std::move(main), std::move(shortcut),
                                        std::move(out_lif));
  }
  throw std::invalid_argument("CompiledNetwork: cannot lower layer '" + layer.name() + "'");
}

}  // namespace

const char* weight_precision_name(WeightPrecision p) {
  switch (p) {
    case WeightPrecision::kAuto: return "auto";
    case WeightPrecision::kFp32: return "fp32";
    case WeightPrecision::kInt8: return "int8";
    case WeightPrecision::kInt4: return "int4";
  }
  return "?";
}

WeightPrecision parse_weight_precision(const std::string& s) {
  if (s == "auto") return WeightPrecision::kAuto;
  if (s == "fp32") return WeightPrecision::kFp32;
  if (s == "int8") return WeightPrecision::kInt8;
  if (s == "int4") return WeightPrecision::kInt4;
  throw std::invalid_argument("parse_weight_precision: expected auto|fp32|int8|int4, got '" +
                              s + "'");
}

CompiledNetwork CompiledNetwork::compile(const nn::SpikingNetwork& net,
                                         const CompileOptions& opts) {
  if (opts.min_sparsity < 0.0 || opts.min_sparsity > 1.0) {
    throw std::invalid_argument("CompiledNetwork: min_sparsity must be in [0, 1]");
  }
  if (opts.block_rows < 1 || opts.block_cols < 1) {
    throw std::invalid_argument("CompiledNetwork: block dims must be >= 1");
  }
  if (opts.bcsr_min_occupancy < 0.0 || opts.bcsr_min_occupancy > 1.0) {
    throw std::invalid_argument("CompiledNetwork: bcsr_min_occupancy must be in [0, 1]");
  }
  if (opts.prune_threshold < 0.0F) {
    // Reject up front: under kAuto a negative threshold would otherwise
    // measure every layer as fully dense and silently compile no sparse
    // kernels at all, instead of failing in Csr/Bcsr::from_dense.
    throw std::invalid_argument("CompiledNetwork: prune_threshold must be >= 0");
  }
  if (opts.event_max_rate < 0.0 || opts.event_max_rate > 1.0 ||
      opts.firing_rate_estimate < 0.0 || opts.firing_rate_estimate > 1.0) {
    throw std::invalid_argument(
        "CompiledNetwork: event_max_rate and firing_rate_estimate must be in [0, 1]");
  }
  if (opts.quant_max_error < 0.0) {
    throw std::invalid_argument("CompiledNetwork: quant_max_error must be >= 0");
  }
  if (opts.quant_group_size != 0 &&
      (opts.quant_group_size < 4 ||
       (opts.quant_group_size & (opts.quant_group_size - 1)) != 0)) {
    throw std::invalid_argument(
        "CompiledNetwork: quant_group_size must be 0 or a power of two >= 4");
  }
  if (opts.num_threads < 0) {
    throw std::invalid_argument("CompiledNetwork: num_threads must be >= 0 (0 = hardware)");
  }
  if (dynamic_cast<const snn::DirectEncoder*>(&net.encoder()) == nullptr) {
    throw std::invalid_argument(
        "CompiledNetwork: only direct encoding is supported (encoder '" +
        std::string(net.encoder().name()) + "')");
  }
  CompiledNetwork compiled;
  compiled.plan_.timesteps = net.timesteps();
  const nn::Sequential& body = net.body();
  // Stage 1 (dry): walk the dataflow state to learn whether any weight
  // layer picks the event path. Stage 2 builds the ops; neuron ops emit
  // SpikeBatch views only when stage 1 found a consumer for them.
  Lowering dry_walk(opts);
  dry_walk.dry = true;
  for (std::size_t i = 0; i < body.size(); ++i) {
    (void)compile_layer(body.layer(i), dry_walk);
  }
  Lowering lw(opts);
  lw.emit_events = dry_walk.any_event;
  // One shared pool per plan: ops borrow it for intra-op dispatch, the
  // BatchExecutor reads its lane count to split inter-request vs
  // intra-op parallelism instead of oversubscribing.
  const int64_t lanes = util::ThreadPool::resolve_lanes(opts.num_threads);
  if (lanes > 1) lw.pool = std::make_shared<util::ThreadPool>(lanes);
  for (std::size_t i = 0; i < body.size(); ++i) {
    compiled.plan_.ops.push_back(compile_layer(body.layer(i), lw));
    compiled.plan_.reports.push_back(compiled.plan_.ops.back()->report());
  }
  compiled.plan_.estimated_spike_rate = lw.stats.average_rate();
  compiled.plan_.pool = std::move(lw.pool);
  compiled.plan_.profile = std::make_shared<PlanProfile>(compiled.plan_.reports);
  return compiled;
}

CompiledNetwork CompiledNetwork::from_checkpoint(const std::string& path,
                                                 const CompileOptions& opts) {
  // The architecture-tagged checkpoint rebuilds its own zoo network; the
  // caller only ever sees the compiled plan. The freshly-built network
  // has no recorded firing rates, so kAuto activation decisions run on
  // CompileOptions::firing_rate_estimate.
  nn::QuantRecord record;
  const auto net = nn::load_checkpoint_network(path, &record);
  // A v3 quantisation record pins the deployed per-layer precisions;
  // it applies under kAuto (explicit fp32/int8/int4 always wins), and
  // caller-supplied overrides are respected.
  if (opts.weight_precision == WeightPrecision::kAuto && opts.layer_precisions.empty() &&
      !record.layers.empty()) {
    CompileOptions effective = opts;
    effective.layer_precisions.reserve(record.layers.size());
    for (const nn::QuantRecordLayer& layer : record.layers) {
      effective.layer_precisions.push_back(layer.precision);
    }
    return compile(*net, effective);
  }
  return compile(*net, opts);
}

InferenceResult CompiledNetwork::infer(const InferenceRequest& request) const {
  const Tensor& batch = request.batch;
  if (batch.rank() < 2) {
    throw std::invalid_argument("CompiledNetwork::infer: expected [N, ...], got " +
                                batch.shape().str());
  }
  const auto start = std::chrono::steady_clock::now();
  // Direct encoding (compile() rejected every other encoder kind).
  snn::DirectEncoder encoder;
  const Tensor x = plan_.execute(encoder.encode(batch, plan_.timesteps));
  if (x.rank() != 2) {
    throw std::invalid_argument("CompiledNetwork::infer: body produced non-matrix logits " +
                                x.shape().str());
  }
  InferenceResult result;
  result.logits = nn::mean_over_time(x, plan_.timesteps);
  result.latency_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

Tensor CompiledNetwork::run(const Tensor& batch) const {
  return infer({batch, SloClass::kInteractive}).logits;
}

std::vector<int64_t> CompiledNetwork::classify(const Tensor& batch) const {
  return tensor::argmax_rows(run(batch));
}

}  // namespace ndsnn::runtime
