#include "runtime/compiled_network.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/flatten.hpp"
#include "nn/lif_activation.hpp"
#include "nn/linear.hpp"
#include "nn/loss.hpp"
#include "nn/neuron_activations.hpp"
#include "nn/pool.hpp"
#include "nn/residual.hpp"
#include "nn/sequential.hpp"
#include "snn/surrogate.hpp"
#include "sparse/bcsr.hpp"
#include "sparse/csr.hpp"
#include "tensor/im2col.hpp"
#include "tensor/matmul.hpp"
#include "tensor/ops.hpp"

namespace ndsnn::runtime {

using tensor::Shape;
using tensor::Tensor;

namespace {

// ------------------------------------------------------------ weight ops

/// The kernel a weight op was lowered onto (resolved from
/// CompileOptions::backend by the cost heuristic below).
enum class Kernel { kDense, kCsr, kBcsr };

const char* kernel_tag(Kernel k) {
  switch (k) {
    case Kernel::kDense: return "dense";
    case Kernel::kCsr: return "csr";
    case Kernel::kBcsr: return "bcsr";
  }
  return "?";
}

/// Linear layer: CSR/BCSR spmm_t when sparse, matmul_nt fallback when dense.
class LinearOp final : public Op {
 public:
  LinearOp(const nn::Linear& src, Kernel kernel, const CompileOptions& opts)
      : layer_name_(src.name()),
        kernel_(kernel),
        has_bias_(src.has_bias()),
        weights_(src.weight().numel()),
        source_sparsity_(src.masked_view()->sparsity()) {
    switch (kernel_) {
      case Kernel::kCsr:
        csr_ = sparse::Csr::from_weights(src.weight(), opts.prune_threshold);
        break;
      case Kernel::kBcsr:
        bcsr_ = sparse::Bcsr::from_weights(src.weight(), opts.block_rows, opts.block_cols,
                                           opts.prune_threshold);
        break;
      case Kernel::kDense:
        dense_ = src.weight();
        break;
    }
    if (has_bias_) bias_ = src.bias();
  }

  [[nodiscard]] Tensor run(const Tensor& input) const override {
    Tensor out = kernel_ == Kernel::kCsr    ? csr_.spmm_t(input)
                 : kernel_ == Kernel::kBcsr ? bcsr_.spmm_t(input)
                                            : tensor::matmul_nt(input, dense_);
    if (has_bias_) tensor::add_row_bias_(out, bias_);
    return out;
  }

  [[nodiscard]] OpReport report() const override {
    const int64_t stored = kernel_ == Kernel::kCsr    ? csr_.nnz()
                           : kernel_ == Kernel::kBcsr ? bcsr_.stored_values()
                                                      : weights_;
    return {layer_name_, std::string(kernel_tag(kernel_)) + "-linear", weights_, stored,
            source_sparsity_};
  }

 private:
  std::string layer_name_;
  Kernel kernel_;
  bool has_bias_;
  int64_t weights_;
  double source_sparsity_;
  sparse::Csr csr_;
  sparse::Bcsr bcsr_;
  Tensor dense_;  // [out, in], only when kernel_ == kDense
  Tensor bias_;
};

/// Conv2d via im2col: the lowering is identical to nn::Conv2d::forward,
/// only the GEMM is swapped for Csr::spmm on sparse plans.
class ConvOp final : public Op {
 public:
  ConvOp(const nn::Conv2d& src, Kernel kernel, const CompileOptions& opts)
      : layer_name_(src.name()),
        gemm_(kernel),
        has_bias_(src.has_bias()),
        in_channels_(src.in_channels()),
        out_channels_(src.out_channels()),
        kernel_(src.kernel()),
        stride_(src.stride()),
        padding_(src.padding()),
        weights_(src.weight().numel()),
        source_sparsity_(src.masked_view()->sparsity()) {
    switch (gemm_) {
      case Kernel::kCsr:
        csr_ = sparse::Csr::from_weights(src.weight(), opts.prune_threshold);
        break;
      case Kernel::kBcsr:
        bcsr_ = sparse::Bcsr::from_weights(src.weight(), opts.block_rows, opts.block_cols,
                                           opts.prune_threshold);
        break;
      case Kernel::kDense:
        dense_ = src.weight().reshaped(
            Shape{out_channels_, in_channels_ * kernel_ * kernel_});
        break;
    }
    if (has_bias_) bias_ = src.bias();
  }

  [[nodiscard]] Tensor run(const Tensor& input) const override {
    if (input.rank() != 4 || input.dim(1) != in_channels_) {
      throw std::invalid_argument("ConvOp: expected [M, " + std::to_string(in_channels_) +
                                  ", H, W], got " + input.shape().str());
    }
    tensor::ConvGeometry g;
    g.batch = input.dim(0);
    g.in_channels = in_channels_;
    g.in_h = input.dim(2);
    g.in_w = input.dim(3);
    g.kernel_h = kernel_;
    g.kernel_w = kernel_;
    g.stride = stride_;
    g.padding = padding_;
    g.validate();

    const Tensor cols = tensor::im2col(input, g);
    const int64_t m = g.batch, oh = g.out_h(), ow = g.out_w();
    const int64_t plane = oh * ow;
    Tensor out(Shape{m, out_channels_, oh, ow});

    if (gemm_ == Kernel::kCsr) {
      // Fused spmm + transpose: accumulate each CSR row f straight into
      // the [m, F, oy, ox] layout, skipping the [F, L] intermediate. Per
      // output element the nonzeros are visited in the same order as
      // Csr::spmm, so results stay bitwise identical.
      const int64_t l = m * plane;
      const auto& row_ptr = csr_.row_ptr();
      const auto& col_idx = csr_.col_idx();
      const auto& values = csr_.values();
      const float* colsp = cols.data();
      float* dst = out.data();
      for (int64_t f = 0; f < out_channels_; ++f) {
        for (int64_t k = row_ptr[static_cast<std::size_t>(f)];
             k < row_ptr[static_cast<std::size_t>(f) + 1]; ++k) {
          const float v = values[static_cast<std::size_t>(k)];
          const float* brow =
              colsp + static_cast<int64_t>(col_idx[static_cast<std::size_t>(k)]) * l;
          for (int64_t mm = 0; mm < m; ++mm) {
            float* drow = dst + (mm * out_channels_ + f) * plane;
            const float* s = brow + mm * plane;
            for (int64_t p = 0; p < plane; ++p) drow[p] += v * s[p];
          }
        }
      }
    } else {
      const Tensor yflat =
          gemm_ == Kernel::kBcsr ? bcsr_.spmm(cols) : tensor::matmul(dense_, cols);
      // Transpose [F, (m, oy, ox)] -> [m, F, oy, ox].
      const float* src = yflat.data();
      float* dst = out.data();
      for (int64_t f = 0; f < out_channels_; ++f) {
        const float* srow = src + f * (m * plane);
        for (int64_t mm = 0; mm < m; ++mm) {
          float* drow = dst + (mm * out_channels_ + f) * plane;
          const float* s = srow + mm * plane;
          for (int64_t p = 0; p < plane; ++p) drow[p] = s[p];
        }
      }
    }
    if (has_bias_) tensor::add_channel_bias_(out, bias_);
    return out;
  }

  [[nodiscard]] OpReport report() const override {
    const int64_t stored = gemm_ == Kernel::kCsr    ? csr_.nnz()
                           : gemm_ == Kernel::kBcsr ? bcsr_.stored_values()
                                                    : weights_;
    return {layer_name_, std::string(kernel_tag(gemm_)) + "-conv", weights_, stored,
            source_sparsity_};
  }

 private:
  std::string layer_name_;
  Kernel gemm_;
  bool has_bias_;
  int64_t in_channels_, out_channels_, kernel_, stride_, padding_;
  int64_t weights_;
  double source_sparsity_;
  sparse::Csr csr_;
  sparse::Bcsr bcsr_;
  Tensor dense_;  // [F, C*K*K], only when gemm_ == kDense
  Tensor bias_;
};

// ------------------------------------------------------------ neuron ops

/// LIF dynamics over the T timesteps of one call (Eq. 1), inference-only:
/// membrane state is carried in rolling per-step buffers instead of the
/// full saved trace BPTT needs. Arithmetic matches snn::LifLayer::forward
/// term for term so compiled and interpreted paths agree bitwise.
class LifOp final : public Op {
 public:
  LifOp(std::string layer_name, const snn::LifConfig& config, int64_t timesteps)
      : layer_name_(std::move(layer_name)), alpha_(config.alpha),
        theta_(config.threshold), timesteps_(timesteps) {}

  [[nodiscard]] Tensor run(const Tensor& input) const override {
    const int64_t total = input.numel();
    if (total % timesteps_ != 0) {
      throw std::invalid_argument("LifOp: numel " + std::to_string(total) +
                                  " not divisible by T=" + std::to_string(timesteps_));
    }
    const int64_t step = total / timesteps_;
    Tensor out(input.shape());
    std::vector<float> vmt(static_cast<std::size_t>(step), 0.0F);  // v[t] - theta
    const float* in = input.data();
    float* spk = out.data();
    for (int64_t t = 0; t < timesteps_; ++t) {
      const float* it = in + t * step;
      float* ot = spk + t * step;
      if (t == 0) {
        for (int64_t i = 0; i < step; ++i) {
          const float v = it[i];
          vmt[static_cast<std::size_t>(i)] = v - theta_;
          ot[i] = snn::heaviside(v - theta_);
        }
      } else {
        const float* oprev = spk + (t - 1) * step;
        for (int64_t i = 0; i < step; ++i) {
          const float v =
              alpha_ * (vmt[static_cast<std::size_t>(i)] + theta_) + it[i] - theta_ * oprev[i];
          vmt[static_cast<std::size_t>(i)] = v - theta_;
          ot[i] = snn::heaviside(v - theta_);
        }
      }
    }
    return out;
  }

  [[nodiscard]] OpReport report() const override { return {layer_name_, "lif", 0, 0, 0.0}; }

 private:
  std::string layer_name_;
  float alpha_, theta_;
  int64_t timesteps_;
};

/// ALIF dynamics (adaptive threshold), inference-only; mirrors
/// snn::AlifLayer::forward.
class AlifOp final : public Op {
 public:
  AlifOp(std::string layer_name, const snn::AlifConfig& config, int64_t timesteps)
      : layer_name_(std::move(layer_name)), config_(config), timesteps_(timesteps) {}

  [[nodiscard]] Tensor run(const Tensor& input) const override {
    const int64_t total = input.numel();
    if (total % timesteps_ != 0) {
      throw std::invalid_argument("AlifOp: numel not divisible by T");
    }
    const int64_t step = total / timesteps_;
    Tensor out(input.shape());
    std::vector<float> v(static_cast<std::size_t>(step), 0.0F);
    std::vector<float> trace(static_cast<std::size_t>(step), 0.0F);
    std::vector<float> prev_spike(static_cast<std::size_t>(step), 0.0F);
    const float* in = input.data();
    float* spk = out.data();
    for (int64_t t = 0; t < timesteps_; ++t) {
      const float* it = in + t * step;
      float* ot = spk + t * step;
      for (int64_t i = 0; i < step; ++i) {
        const auto idx = static_cast<std::size_t>(i);
        trace[idx] = config_.rho * trace[idx] + prev_spike[idx];
        const float theta_t = config_.threshold + config_.beta * trace[idx];
        v[idx] = config_.alpha * v[idx] + it[i] - theta_t * prev_spike[idx];
        ot[i] = snn::heaviside(v[idx] - theta_t);
        prev_spike[idx] = ot[i];
      }
    }
    return out;
  }

  [[nodiscard]] OpReport report() const override { return {layer_name_, "alif", 0, 0, 0.0}; }

 private:
  std::string layer_name_;
  snn::AlifConfig config_;
  int64_t timesteps_;
};

// ------------------------------------------------------- stateless ops

/// BatchNorm folded to eval statistics. Keeps the eval-path arithmetic of
/// nn::BatchNorm2d::forward (same operation order, precomputed inv_std)
/// so compiled outputs match interpreted eval outputs bitwise.
class BatchNormOp final : public Op {
 public:
  explicit BatchNormOp(const nn::BatchNorm2d& src)
      : layer_name_(src.name()),
        channels_(src.channels()),
        mean_(src.running_mean()),
        gamma_(src.gamma()),
        beta_(src.beta()),
        inv_std_(Shape{src.channels()}) {
    for (int64_t c = 0; c < channels_; ++c) {
      inv_std_.at(c) = 1.0F / std::sqrt(src.running_var().at(c) + src.eps());
    }
  }

  [[nodiscard]] Tensor run(const Tensor& input) const override {
    if (input.rank() != 4 || input.dim(1) != channels_) {
      throw std::invalid_argument("BatchNormOp: expected [M, " + std::to_string(channels_) +
                                  ", H, W], got " + input.shape().str());
    }
    const int64_t m = input.dim(0), plane = input.dim(2) * input.dim(3);
    Tensor out(input.shape());
    const float* src = input.data();
    float* dst = out.data();
    for (int64_t c = 0; c < channels_; ++c) {
      const float mean = mean_.at(c), inv_std = inv_std_.at(c);
      const float g = gamma_.at(c), b = beta_.at(c);
      for (int64_t mm = 0; mm < m; ++mm) {
        const int64_t base = (mm * channels_ + c) * plane;
        for (int64_t i = 0; i < plane; ++i) {
          dst[base + i] = g * ((src[base + i] - mean) * inv_std) + b;
        }
      }
    }
    return out;
  }

  [[nodiscard]] OpReport report() const override { return {layer_name_, "bn", 0, 0, 0.0}; }

 private:
  std::string layer_name_;
  int64_t channels_;
  Tensor mean_, gamma_, beta_, inv_std_;
};

class AvgPoolOp final : public Op {
 public:
  AvgPoolOp(std::string layer_name, int64_t k) : layer_name_(std::move(layer_name)), k_(k) {}

  [[nodiscard]] Tensor run(const Tensor& input) const override {
    if (input.rank() != 4 || input.dim(2) % k_ != 0 || input.dim(3) % k_ != 0) {
      throw std::invalid_argument("AvgPoolOp: bad input " + input.shape().str());
    }
    const int64_t m = input.dim(0), c = input.dim(1), h = input.dim(2), w = input.dim(3);
    const int64_t oh = h / k_, ow = w / k_;
    Tensor out(Shape{m, c, oh, ow});
    const float inv = 1.0F / static_cast<float>(k_ * k_);
    const float* src = input.data();
    float* dst = out.data();
    for (int64_t mc = 0; mc < m * c; ++mc) {
      const float* plane = src + mc * h * w;
      float* oplane = dst + mc * oh * ow;
      for (int64_t oy = 0; oy < oh; ++oy) {
        for (int64_t ox = 0; ox < ow; ++ox) {
          float acc = 0.0F;
          for (int64_t dy = 0; dy < k_; ++dy) {
            for (int64_t dx = 0; dx < k_; ++dx) {
              acc += plane[(oy * k_ + dy) * w + (ox * k_ + dx)];
            }
          }
          oplane[oy * ow + ox] = acc * inv;
        }
      }
    }
    return out;
  }

  [[nodiscard]] OpReport report() const override { return {layer_name_, "pool", 0, 0, 0.0}; }

 private:
  std::string layer_name_;
  int64_t k_;
};

class MaxPoolOp final : public Op {
 public:
  MaxPoolOp(std::string layer_name, int64_t k) : layer_name_(std::move(layer_name)), k_(k) {}

  [[nodiscard]] Tensor run(const Tensor& input) const override {
    if (input.rank() != 4 || input.dim(2) % k_ != 0 || input.dim(3) % k_ != 0) {
      throw std::invalid_argument("MaxPoolOp: bad input " + input.shape().str());
    }
    const int64_t m = input.dim(0), c = input.dim(1), h = input.dim(2), w = input.dim(3);
    const int64_t oh = h / k_, ow = w / k_;
    Tensor out(Shape{m, c, oh, ow});
    const float* src = input.data();
    float* dst = out.data();
    for (int64_t mc = 0; mc < m * c; ++mc) {
      const float* plane = src + mc * h * w;
      float* oplane = dst + mc * oh * ow;
      for (int64_t oy = 0; oy < oh; ++oy) {
        for (int64_t ox = 0; ox < ow; ++ox) {
          float best = plane[(oy * k_) * w + ox * k_];
          for (int64_t dy = 0; dy < k_; ++dy) {
            for (int64_t dx = 0; dx < k_; ++dx) {
              const float v = plane[(oy * k_ + dy) * w + (ox * k_ + dx)];
              if (v > best) best = v;
            }
          }
          oplane[oy * ow + ox] = best;
        }
      }
    }
    return out;
  }

  [[nodiscard]] OpReport report() const override { return {layer_name_, "pool", 0, 0, 0.0}; }

 private:
  std::string layer_name_;
  int64_t k_;
};

class GlobalAvgPoolOp final : public Op {
 public:
  [[nodiscard]] Tensor run(const Tensor& input) const override {
    if (input.rank() != 4) {
      throw std::invalid_argument("GlobalAvgPoolOp: expected rank-4, got " +
                                  input.shape().str());
    }
    const int64_t m = input.dim(0), c = input.dim(1), plane = input.dim(2) * input.dim(3);
    Tensor out(Shape{m, c});
    const float inv = 1.0F / static_cast<float>(plane);
    const float* src = input.data();
    for (int64_t mc = 0; mc < m * c; ++mc) {
      double acc = 0.0;
      const float* p = src + mc * plane;
      for (int64_t i = 0; i < plane; ++i) acc += p[i];
      out.at(mc) = static_cast<float>(acc) * inv;
    }
    return out;
  }

  [[nodiscard]] OpReport report() const override {
    return {"GlobalAvgPool", "pool", 0, 0, 0.0};
  }
};

class FlattenOp final : public Op {
 public:
  [[nodiscard]] Tensor run(const Tensor& input) const override {
    if (input.rank() < 2) {
      throw std::invalid_argument("FlattenOp: expected rank >= 2, got " +
                                  input.shape().str());
    }
    const int64_t m = input.dim(0);
    return input.reshaped(Shape{m, input.numel() / m});
  }

  [[nodiscard]] OpReport report() const override { return {"Flatten", "reshape", 0, 0, 0.0}; }
};

/// Residual block: compiled main and shortcut chains plus the output LIF.
class ResidualOp final : public Op {
 public:
  ResidualOp(std::string layer_name, std::vector<std::unique_ptr<Op>> main,
             std::vector<std::unique_ptr<Op>> shortcut, std::unique_ptr<Op> out_lif)
      : layer_name_(std::move(layer_name)),
        main_(std::move(main)),
        shortcut_(std::move(shortcut)),
        out_lif_(std::move(out_lif)) {}

  [[nodiscard]] Tensor run(const Tensor& input) const override {
    // Chain through pointers so the identity shortcut never copies the
    // input activation (main_ is never empty: conv1..bn2).
    Tensor main;
    const Tensor* cur = &input;
    for (const auto& op : main_) {
      main = op->run(*cur);
      cur = &main;
    }
    Tensor shortcut;
    const Tensor* scur = &input;
    for (const auto& op : shortcut_) {
      shortcut = op->run(*scur);
      scur = &shortcut;
    }
    tensor::add_(main, *scur);
    return out_lif_->run(main);
  }

  [[nodiscard]] OpReport report() const override {
    OpReport r{layer_name_, "residual", 0, 0, 0.0};
    double zero_weighted = 0.0;
    for (const auto* chain : {&main_, &shortcut_}) {
      for (const auto& op : *chain) {
        const OpReport sub = op->report();
        r.weights += sub.weights;
        r.nnz += sub.nnz;
        zero_weighted += sub.sparsity * static_cast<double>(sub.weights);
      }
    }
    if (r.weights > 0) r.sparsity = zero_weighted / static_cast<double>(r.weights);
    return r;
  }

 private:
  std::string layer_name_;
  std::vector<std::unique_ptr<Op>> main_;
  std::vector<std::unique_ptr<Op>> shortcut_;
  std::unique_ptr<Op> out_lif_;
};

// ------------------------------------------------------------- compiler

/// The cost heuristic: dense below the sparsity bar, then BCSR when the
/// measured pattern (sparse::Bcsr::measure_weights — the same scan the
/// format itself uses, without materializing block storage) is blocky
/// enough that dense micro-blocks beat per-element indexing, else CSR.
/// A forced CompileOptions::backend short-circuits the measurement.
Kernel pick_kernel(const Tensor& weight, const CompileOptions& opts) {
  if (opts.force_dense || opts.backend == Backend::kDense) return Kernel::kDense;
  if (opts.backend == Backend::kCsr) return Kernel::kCsr;
  if (opts.backend == Backend::kBcsr) return Kernel::kBcsr;
  const sparse::BcsrStats stats = sparse::Bcsr::measure_weights(
      weight, opts.block_rows, opts.block_cols, opts.prune_threshold);
  if (stats.sparsity() < opts.min_sparsity) return Kernel::kDense;
  return stats.occupancy() >= opts.bcsr_min_occupancy ? Kernel::kBcsr : Kernel::kCsr;
}

std::unique_ptr<Op> compile_layer(const nn::Layer& layer, const CompileOptions& opts);

std::vector<std::unique_ptr<Op>> compile_chain(
    std::initializer_list<const nn::Layer*> layers, const CompileOptions& opts) {
  std::vector<std::unique_ptr<Op>> ops;
  for (const nn::Layer* layer : layers) {
    if (layer != nullptr) ops.push_back(compile_layer(*layer, opts));
  }
  return ops;
}

std::unique_ptr<Op> compile_layer(const nn::Layer& layer, const CompileOptions& opts) {
  if (const auto* linear = dynamic_cast<const nn::Linear*>(&layer)) {
    return std::make_unique<LinearOp>(*linear, pick_kernel(linear->weight(), opts), opts);
  }
  if (const auto* conv = dynamic_cast<const nn::Conv2d*>(&layer)) {
    return std::make_unique<ConvOp>(*conv, pick_kernel(conv->weight(), opts), opts);
  }
  if (const auto* bn = dynamic_cast<const nn::BatchNorm2d*>(&layer)) {
    return std::make_unique<BatchNormOp>(*bn);
  }
  if (const auto* lif = dynamic_cast<const nn::LifActivation*>(&layer)) {
    return std::make_unique<LifOp>(lif->name(), lif->lif().config(), lif->lif().timesteps());
  }
  if (const auto* plif = dynamic_cast<const nn::PlifActivation*>(&layer)) {
    // PLIF at inference is a LIF with the trained leak alpha = sigmoid(a).
    snn::LifConfig cfg;
    cfg.alpha = plif->plif().alpha();
    cfg.threshold = plif->plif().config().threshold;
    return std::make_unique<LifOp>(plif->name(), cfg, plif->plif().timesteps());
  }
  if (const auto* alif = dynamic_cast<const nn::AlifActivation*>(&layer)) {
    return std::make_unique<AlifOp>(alif->name(), alif->alif().config(),
                                    alif->alif().timesteps());
  }
  if (const auto* avg = dynamic_cast<const nn::AvgPool2d*>(&layer)) {
    return std::make_unique<AvgPoolOp>(avg->name(), avg->k());
  }
  if (const auto* max = dynamic_cast<const nn::MaxPool2d*>(&layer)) {
    return std::make_unique<MaxPoolOp>(max->name(), max->k());
  }
  if (dynamic_cast<const nn::GlobalAvgPool*>(&layer) != nullptr) {
    return std::make_unique<GlobalAvgPoolOp>();
  }
  if (dynamic_cast<const nn::Flatten*>(&layer) != nullptr) {
    return std::make_unique<FlattenOp>();
  }
  if (const auto* res = dynamic_cast<const nn::ResidualBlock*>(&layer)) {
    auto main = compile_chain({&res->conv1(), &res->bn1(), &res->lif1(), &res->conv2(),
                               &res->bn2()},
                              opts);
    auto shortcut = compile_chain({res->shortcut_conv(), res->shortcut_bn()}, opts);
    auto out_lif = compile_layer(res->lif_out(), opts);
    return std::make_unique<ResidualOp>(res->name(), std::move(main), std::move(shortcut),
                                        std::move(out_lif));
  }
  throw std::invalid_argument("CompiledNetwork: cannot lower layer '" + layer.name() + "'");
}

}  // namespace

CompiledNetwork CompiledNetwork::compile(const nn::SpikingNetwork& net,
                                         const CompileOptions& opts) {
  if (opts.min_sparsity < 0.0 || opts.min_sparsity > 1.0) {
    throw std::invalid_argument("CompiledNetwork: min_sparsity must be in [0, 1]");
  }
  if (opts.block_rows < 1 || opts.block_cols < 1) {
    throw std::invalid_argument("CompiledNetwork: block dims must be >= 1");
  }
  if (opts.bcsr_min_occupancy < 0.0 || opts.bcsr_min_occupancy > 1.0) {
    throw std::invalid_argument("CompiledNetwork: bcsr_min_occupancy must be in [0, 1]");
  }
  if (opts.prune_threshold < 0.0F) {
    // Reject up front: under kAuto a negative threshold would otherwise
    // measure every layer as fully dense and silently compile no sparse
    // kernels at all, instead of failing in Csr/Bcsr::from_dense.
    throw std::invalid_argument("CompiledNetwork: prune_threshold must be >= 0");
  }
  if (dynamic_cast<const snn::DirectEncoder*>(&net.encoder()) == nullptr) {
    throw std::invalid_argument(
        "CompiledNetwork: only direct encoding is supported (encoder '" +
        std::string(net.encoder().name()) + "')");
  }
  CompiledNetwork compiled;
  compiled.timesteps_ = net.timesteps();
  const nn::Sequential& body = net.body();
  for (std::size_t i = 0; i < body.size(); ++i) {
    compiled.ops_.push_back(compile_layer(body.layer(i), opts));
    compiled.reports_.push_back(compiled.ops_.back()->report());
  }
  return compiled;
}

Tensor CompiledNetwork::run(const Tensor& batch) const {
  if (batch.rank() < 2) {
    throw std::invalid_argument("CompiledNetwork::run: expected [N, ...], got " +
                                batch.shape().str());
  }
  // Direct encoding (compile() rejected every other encoder kind).
  snn::DirectEncoder encoder;
  Tensor x = encoder.encode(batch, timesteps_);
  for (const auto& op : ops_) x = op->run(x);
  if (x.rank() != 2) {
    throw std::invalid_argument("CompiledNetwork::run: body produced non-matrix logits " +
                                x.shape().str());
  }
  return nn::mean_over_time(x, timesteps_);
}

std::vector<int64_t> CompiledNetwork::classify(const Tensor& batch) const {
  return tensor::argmax_rows(run(batch));
}

int64_t CompiledNetwork::stored_weights() const {
  int64_t total = 0;
  for (const auto& r : reports_) total += r.nnz;
  return total;
}

double CompiledNetwork::overall_sparsity() const {
  int64_t weights = 0;
  double zero_weighted = 0.0;
  for (const auto& r : reports_) {
    weights += r.weights;
    zero_weighted += r.sparsity * static_cast<double>(r.weights);
  }
  if (weights == 0) return 0.0;
  return zero_weighted / static_cast<double>(weights);
}

std::string CompiledNetwork::summary() const {
  std::ostringstream os;
  os << "CompiledNetwork: T=" << timesteps_ << ", " << ops_.size() << " ops, "
     << stored_weights() << " stored weights ("
     << static_cast<int>(100.0 * overall_sparsity() + 0.5) << "% source sparsity)\n";
  for (const auto& r : reports_) {
    os << "  [" << r.kind << "] " << r.layer;
    if (r.weights > 0) {
      os << "  nnz=" << r.nnz << "/" << r.weights;
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace ndsnn::runtime
