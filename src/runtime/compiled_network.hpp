// CompiledNetwork: ahead-of-time compilation of a trained (masked)
// SpikingNetwork into an immutable sparse inference plan.
//
// Training keeps weights dense and re-applies binary masks after every
// optimizer step, so a "95% sparse" network still runs dense GEMM over
// mostly-zero matrices. compile() walks the network body once and lowers
// every weight layer:
//
//   - Linear/Conv2d whose weight sparsity >= CompileOptions::min_sparsity
//     become CSR kernels (sparse::Csr::spmm / spmm_t); conv keeps the
//     im2col lowering and only swaps the GEMM.
//   - Layers below the threshold keep a dense GEMM fallback (a CSR matrix
//     with low sparsity is slower than dense).
//   - LIF/ALIF dynamics, BatchNorm (folded to eval statistics), pooling,
//     flatten and residual blocks are lowered to stateless inference ops.
//
// The resulting plan is immutable and shares no mutable state across
// run() calls, so one CompiledNetwork can serve many threads concurrently
// (see runtime::BatchExecutor). Neuron membrane state lives on the stack
// of each run(): activations are time-major [T*N, ...] and the LIF op
// carries v/o across the T timesteps inside one call, exactly like
// snn::LifLayer::forward.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/network.hpp"
#include "tensor/tensor.hpp"

namespace ndsnn::runtime {

/// Knobs for the network -> plan lowering.
struct CompileOptions {
  /// Lower a weight layer to CSR when its weight sparsity is >= this.
  /// Below it, the dense GEMM wins (CSR pays an index per value).
  double min_sparsity = 0.5;
  /// Entries with |w| <= prune_threshold are dropped when building CSR
  /// kernels (forwarded to sparse::Csr::from_dense).
  float prune_threshold = 0.0F;
  /// Keep every layer dense regardless of sparsity (baseline plans).
  bool force_dense = false;
};

/// What one compiled op is and how sparse its weights are (for plan
/// summaries and the bench reports). Weightless ops report weights == 0.
struct OpReport {
  std::string layer;     ///< source layer name(), e.g. "Conv2d(3->64, ...)"
  std::string kind;      ///< "csr-linear" | "dense-linear" | "csr-conv" | "dense-conv" |
                         ///< "lif" | "alif" | "bn" | "pool" | "reshape" | "residual"
  int64_t weights = 0;   ///< total weight elements
  int64_t nnz = 0;       ///< stored nonzeros (== weights for dense ops)
  double sparsity = 0.0; ///< zero fraction of the source weights
};

/// One inference op of the compiled plan. Implementations are immutable
/// after construction; run() must be safe to call from many threads.
class Op {
 public:
  virtual ~Op() = default;
  Op() = default;
  Op(const Op&) = delete;
  Op& operator=(const Op&) = delete;

  [[nodiscard]] virtual tensor::Tensor run(const tensor::Tensor& input) const = 0;
  [[nodiscard]] virtual OpReport report() const = 0;
};

class CompiledNetwork {
 public:
  /// Lower `net` (its body and current weights) into an executable plan.
  /// Weights are copied: later training steps do not affect the plan.
  /// Throws std::invalid_argument for layers the runtime cannot lower or
  /// when the network uses a non-direct input encoder.
  [[nodiscard]] static CompiledNetwork compile(const nn::SpikingNetwork& net,
                                               const CompileOptions& opts = {});

  /// Mean logits [N, classes] for a static input batch [N, ...]; direct
  /// encoding over `timesteps()` then rate readout, matching
  /// SpikingNetwork::predict. Thread-safe.
  [[nodiscard]] tensor::Tensor run(const tensor::Tensor& batch) const;

  /// argmax class per sample. Thread-safe.
  [[nodiscard]] std::vector<int64_t> classify(const tensor::Tensor& batch) const;

  [[nodiscard]] const std::vector<OpReport>& plan() const { return reports_; }
  [[nodiscard]] int64_t timesteps() const { return timesteps_; }

  /// Weight elements stored by the plan (CSR nnz + dense fallback sizes).
  [[nodiscard]] int64_t stored_weights() const;
  /// Parameter-weighted sparsity over all weight ops.
  [[nodiscard]] double overall_sparsity() const;
  /// Multi-line human-readable description of the plan.
  [[nodiscard]] std::string summary() const;

  CompiledNetwork(CompiledNetwork&&) = default;
  CompiledNetwork& operator=(CompiledNetwork&&) = default;

 private:
  CompiledNetwork() = default;

  std::vector<std::unique_ptr<Op>> ops_;
  std::vector<OpReport> reports_;
  int64_t timesteps_ = 1;
};

}  // namespace ndsnn::runtime
