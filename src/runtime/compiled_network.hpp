// CompiledNetwork: ahead-of-time compilation of a trained (masked)
// SpikingNetwork into an immutable sparse inference plan.
//
// Training keeps weights dense and re-applies binary masks after every
// optimizer step, so a "95% sparse" network still runs dense GEMM over
// mostly-zero matrices. compile() walks the network body once and lowers
// every weight layer onto the best of three kernel backends:
//
//   - dense GEMM for layers below CompileOptions::min_sparsity (sparse
//     formats pay indexing overhead that only amortizes with enough
//     zeros);
//   - element-wise CSR (sparse::Csr::spmm / spmm_t) for unstructured
//     masks; conv keeps the im2col lowering and only swaps the GEMM;
//   - block-CSR (sparse::Bcsr) when the measured pattern structure is
//     blocky enough — N:M-projected or block-masked weights — so the
//     spmm inner loops run dense over each micro-block and vectorize.
//
//   The per-layer choice is a small cost heuristic on the measured block
//   occupancy (see CompileOptions); CompileOptions::backend forces one
//   backend for every weight layer instead.
//   LIF/ALIF dynamics, BatchNorm (folded to eval statistics), pooling,
//   flatten and residual blocks are lowered to stateless inference ops.
//
// The resulting plan is immutable and shares no mutable state across
// run() calls, so one CompiledNetwork can serve many threads concurrently
// (see runtime::BatchExecutor). Neuron membrane state lives on the stack
// of each run(): activations are time-major [T*N, ...] and the LIF op
// carries v/o across the T timesteps inside one call, exactly like
// snn::LifLayer::forward.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/network.hpp"
#include "tensor/tensor.hpp"

namespace ndsnn::runtime {

/// Which GEMM kernel a weight layer executes with.
enum class Backend {
  kAuto,   ///< per-layer cost heuristic (sparsity + block occupancy)
  kDense,  ///< force dense GEMM everywhere (baseline plans)
  kCsr,    ///< force element-wise CSR on every weight layer
  kBcsr,   ///< force block-CSR on every weight layer
};

/// Knobs for the network -> plan lowering.
struct CompileOptions {
  /// kAuto lowers a weight layer to a sparse kernel when its weight
  /// sparsity is >= this. Below it, the dense GEMM wins (sparse formats
  /// pay indexing overhead per value/block).
  double min_sparsity = 0.5;
  /// Entries with |w| <= prune_threshold are dropped when building
  /// sparse kernels (forwarded to sparse::Csr/Bcsr::from_dense).
  float prune_threshold = 0.0F;
  /// Keep every layer dense regardless of sparsity (baseline plans).
  /// Legacy spelling of backend = Backend::kDense; either wins.
  bool force_dense = false;
  /// Force one kernel backend for every weight layer, or kAuto to let
  /// the cost heuristic decide per layer.
  Backend backend = Backend::kAuto;
  /// Block shape used for BCSR lowering (4x4 suits both 2:4/1:4 groups
  /// and row-block accelerator tiles).
  int64_t block_rows = 4;
  int64_t block_cols = 4;
  /// kAuto picks BCSR over CSR when the fraction of nonzeros inside the
  /// occupied block storage is at least this. Calibrated with
  /// bench/micro_kernels: at 0.5 occupancy (2:4) the dense micro-block
  /// kernels beat CSR ~2x, at 0.25 (1:4) the padding FLOPs make them
  /// lose, so the crossover sits between; unstructured high-sparsity
  /// masks measure ~0.1 and stay CSR.
  double bcsr_min_occupancy = 0.3;
};

/// What one compiled op is and how sparse its weights are (for plan
/// summaries and the bench reports). Weightless ops report weights == 0.
struct OpReport {
  std::string layer;     ///< source layer name(), e.g. "Conv2d(3->64, ...)"
  std::string kind;      ///< "{dense,csr,bcsr}-{linear,conv}" |
                         ///< "lif" | "alif" | "bn" | "pool" | "reshape" | "residual"
  int64_t weights = 0;   ///< total weight elements
  int64_t nnz = 0;       ///< values the kernel stores (CSR nonzeros, BCSR
                         ///< dense block values, == weights for dense ops)
  double sparsity = 0.0; ///< zero fraction of the source weights
};

/// One inference op of the compiled plan. Implementations are immutable
/// after construction; run() must be safe to call from many threads.
class Op {
 public:
  virtual ~Op() = default;
  Op() = default;
  Op(const Op&) = delete;
  Op& operator=(const Op&) = delete;

  [[nodiscard]] virtual tensor::Tensor run(const tensor::Tensor& input) const = 0;
  [[nodiscard]] virtual OpReport report() const = 0;
};

class CompiledNetwork {
 public:
  /// Lower `net` (its body and current weights) into an executable plan.
  /// Weights are copied: later training steps do not affect the plan.
  /// Throws std::invalid_argument for layers the runtime cannot lower or
  /// when the network uses a non-direct input encoder.
  [[nodiscard]] static CompiledNetwork compile(const nn::SpikingNetwork& net,
                                               const CompileOptions& opts = {});

  /// Mean logits [N, classes] for a static input batch [N, ...]; direct
  /// encoding over `timesteps()` then rate readout, matching
  /// SpikingNetwork::predict. Thread-safe.
  [[nodiscard]] tensor::Tensor run(const tensor::Tensor& batch) const;

  /// argmax class per sample. Thread-safe.
  [[nodiscard]] std::vector<int64_t> classify(const tensor::Tensor& batch) const;

  [[nodiscard]] const std::vector<OpReport>& plan() const { return reports_; }
  [[nodiscard]] int64_t timesteps() const { return timesteps_; }

  /// Weight elements stored by the plan (CSR nnz + dense fallback sizes).
  [[nodiscard]] int64_t stored_weights() const;
  /// Parameter-weighted sparsity over all weight ops.
  [[nodiscard]] double overall_sparsity() const;
  /// Multi-line human-readable description of the plan.
  [[nodiscard]] std::string summary() const;

  CompiledNetwork(CompiledNetwork&&) = default;
  CompiledNetwork& operator=(CompiledNetwork&&) = default;

 private:
  CompiledNetwork() = default;

  std::vector<std::unique_ptr<Op>> ops_;
  std::vector<OpReport> reports_;
  int64_t timesteps_ = 1;
};

}  // namespace ndsnn::runtime
