// CompiledNetwork: ahead-of-time compilation of a trained (masked)
// SpikingNetwork into an immutable sparse inference plan.
//
// Training keeps weights dense and re-applies binary masks after every
// optimizer step, so a "95% sparse" network still runs dense GEMM over
// mostly-zero matrices — and its spike trains, typically 5-20% ones,
// still multiply through as dense activation tensors. compile() is a
// staged lowering that exploits both sides of every matmul:
//
//   1. Walk the network body and pick a *weight kernel* per layer:
//      dense GEMM below CompileOptions::min_sparsity, element-wise CSR
//      for unstructured masks, block-CSR when the measured block
//      occupancy says the pattern is blocky enough (N:M-projected or
//      block-masked weights) for dense micro-block execution.
//   2. Pick an *activation path* per weight layer: the classic
//      dense-activation spmm, or the event-driven gather path that
//      iterates only the active (nonzero) entries of the input spike
//      train (sparse::Csr/Bcsr::spmv_gather, plus an on-the-fly
//      event-driven im2col for conv). The choice keys on whether the
//      input is spike-valued and on a firing-rate estimate taken from
//      the layers' recorded rates (aggregated with snn::SpikeStats);
//      CompileOptions::activation_mode forces one path everywhere.
//   3. Emit the Plan IR (src/runtime/plan.hpp): per-op kernels under
//      src/runtime/ops/, with neuron ops producing SpikeBatch
//      active-index views alongside their spike tensors so downstream
//      event ops skip even the nonzero scan.
//
// Every path — any backend x any activation mode — produces bitwise
// identical logits to the interpreted SpikingNetwork::predict: linear
// kernels accumulate per output in doubles over ascending input index,
// conv kernels in floats over ascending patch-column index, and skipped
// zero-activation terms are exact no-ops (tests/runtime/testing.hpp
// pins this across the full differential matrix).
//
// The resulting plan is immutable and shares no mutable state across
// run() calls, so one CompiledNetwork can serve many threads concurrently
// (see runtime::BatchExecutor). Neuron membrane state lives on the stack
// of each run(): activations are time-major [T*N, ...] and the LIF op
// carries v/o across the T timesteps inside one call, exactly like
// snn::LifLayer::forward.
#pragma once

#include <string>
#include <vector>

#include "nn/network.hpp"
#include "runtime/inference.hpp"
#include "runtime/plan.hpp"
#include "runtime/trace.hpp"
#include "sparse/quant.hpp"
#include "tensor/tensor.hpp"
#include "util/cpuinfo.hpp"

namespace ndsnn::runtime {

/// Which GEMM kernel a weight layer executes with.
enum class Backend {
  kAuto,   ///< per-layer cost heuristic (sparsity + block occupancy)
  kDense,  ///< force dense GEMM everywhere (baseline plans)
  kCsr,    ///< force element-wise CSR on every weight layer
  kBcsr,   ///< force block-CSR on every weight layer
};

/// How weight layers consume their input activation.
enum class ActivationMode {
  kAuto,   ///< event-driven when the input is spike-valued and its
           ///< estimated firing rate is <= event_max_rate
  kDense,  ///< always the dense-activation spmm path (PR-2 behaviour)
  kEvent,  ///< force the event-driven gather path on every weight layer
};

/// Stored bit width of the sparse weight value planes (Sec. III-D).
/// Dense-kernel layers always execute fp32 — the quantised planes live
/// on sparse::Csr/Bcsr — so a forced kInt8/kInt4 applies to every
/// *sparse* weight layer and leaves dense fallbacks untouched.
enum class WeightPrecision {
  kAuto,   ///< per layer: the lowest bit width whose measured weight
           ///< reconstruction error stays <= quant_max_error; a v3
           ///< checkpoint's recorded per-layer precisions win when
           ///< compiling via from_checkpoint
  kFp32,   ///< no quantisation (default: keeps the bitwise contract)
  kInt8,
  kInt4,
};

[[nodiscard]] const char* weight_precision_name(WeightPrecision p);
/// Parse "auto" | "fp32" | "int8" | "int4" (CLI surface); throws
/// std::invalid_argument otherwise.
[[nodiscard]] WeightPrecision parse_weight_precision(const std::string& s);

/// Kernel/backend selection knobs: which storage format and GEMM kernel
/// each weight layer lowers onto. One of the three groups CompileOptions
/// aggregates (serve_sparse --help mirrors this grouping).
struct BackendOptions {
  /// kAuto lowers a weight layer to a sparse kernel when its weight
  /// sparsity is >= this. Below it, the dense GEMM wins (sparse formats
  /// pay indexing overhead per value/block).
  double min_sparsity = 0.5;
  /// Entries with |w| <= prune_threshold are dropped when building
  /// sparse kernels (forwarded to sparse::Csr/Bcsr::from_dense).
  float prune_threshold = 0.0F;
  /// Keep every layer dense regardless of sparsity (baseline plans).
  /// Legacy spelling of backend = Backend::kDense; either wins.
  bool force_dense = false;
  /// Force one kernel backend for every weight layer, or kAuto to let
  /// the cost heuristic decide per layer.
  Backend backend = Backend::kAuto;
  /// Block shape used for BCSR lowering (4x4 suits both 2:4/1:4 groups
  /// and row-block accelerator tiles).
  int64_t block_rows = 4;
  int64_t block_cols = 4;
  /// kAuto picks BCSR over CSR when the fraction of nonzeros inside the
  /// occupied block storage (sparse::Bcsr::measure_weights — the same
  /// measured pattern occupancy the built format reports) is at least
  /// this. Calibrated end to end with bench/sparse_inference on the zoo
  /// models: at 0.5 occupancy (an aligned 2:4 pattern) the padding
  /// FLOPs of the dense micro-blocks already lose to CSR at these layer
  /// sizes (bcsr_speedup 0.78 in BENCH_sparse_inference.json), at 0.25
  /// (1:4) they lose badly (0.65), and only genuinely blocky patterns
  /// (~1.0 occupancy row/block masks, +12%) win — so the crossover sits
  /// between 0.5 and 1.0. Unstructured high-sparsity masks measure ~0.1
  /// and stay CSR regardless. The heuristic regression test in
  /// tests/runtime/compiled_network_test.cpp pins both sides.
  double bcsr_min_occupancy = 0.75;
  /// Measure instead of guess: microbenchmark each prunable weight
  /// layer's candidate configurations {dense, CSR, BCSR x block shapes}
  /// x {kVector, detected tier} on the layer's real extracted weights
  /// and lower onto the measured winner, overriding the min_sparsity /
  /// bcsr_min_occupancy heuristics (a forced `backend` still wins).
  /// Results are cached process-wide keyed by (shape, precision, mask
  /// fingerprint, CPU tier), so recompiling the same network — or
  /// loading it again via from_checkpoint — skips the probes entirely.
  /// Event-path layers keep the heuristic: their gather kernels are not
  /// what the probe measures. Off by default (compile stays instant).
  bool autotune = false;
};

/// Weight quantisation knobs: stored bit width of the sparse value
/// planes and the calibration that picks it per layer.
struct QuantOptions {
  /// Stored bit width of the sparse value planes (see WeightPrecision).
  /// Anything other than kFp32 trades the bitwise-vs-predict contract
  /// for the documented quantisation error bound (README, runtime
  /// precision section).
  WeightPrecision weight_precision = WeightPrecision::kFp32;
  /// kAuto precision bar: quantise a layer only when its per-row
  /// symmetric reconstruction error (max |dequant - w| / max |w|,
  /// sparse::relative_quant_error) stays at or under this. The default
  /// 0.02 admits int8 everywhere (~0.4% per-row error) and rejects int4
  /// (~7%) — int4 is an explicit opt-in.
  double quant_max_error = 0.02;
  /// kAuto only: per-weight-layer precision overrides in body order
  /// (the order Plan::reports lists weight ops, == the order of
  /// prunable parameters). from_checkpoint fills this from a v3
  /// checkpoint's quantisation record; layers beyond the vector fall
  /// back to the error-bound heuristic.
  std::vector<sparse::Precision> layer_precisions;
  /// Fake-quant evaluation: quantise each sparse value plane, then
  /// dequantise it back to fp32 storage, so the plan executes the
  /// *exact effective weights* of the quantised deployment on the
  /// bitwise fp32 kernels (QAT-style accuracy evaluation; the
  /// differential harness's per-op reference plans). Reports still
  /// carry the nominal precision; bytes reflect the fp32 storage the
  /// fake plan actually holds.
  bool fake_quant = false;
  /// Quantisation group size for *CSR* value planes under int8/int4: 0
  /// (default) keeps one scale per row; a power of two G >= 4 scales
  /// each run of G stored codes independently (sparse::QuantPlane::
  /// group_size), shrinking per-group dynamic range so int4 passes the
  /// quant_max_error bar on layers per-row scaling rejects. The kAuto
  /// precision calibration measures the same grouped scheme. Ignored by
  /// BCSR (per-block scales are already finer) and by event-path planes
  /// (the binary-spike int32 gather needs one uniform scale).
  int64_t quant_group_size = 0;
};

/// Execution knobs: how the lowered plan runs — activation path,
/// threading, SIMD tier.
struct ExecOptions {
  /// Activation path selection (see ActivationMode).
  ActivationMode activation_mode = ActivationMode::kAuto;
  /// kAuto goes event-driven when the estimated firing rate of a weight
  /// layer's spike-valued input is <= this. Calibrated with
  /// bench/activation_sparsity: the gather kernels beat dense-activation
  /// CSR below ~0.25-0.3 firing and win >2x at <=0.1.
  double event_max_rate = 0.25;
  /// Fallback input-rate estimate for spike-valued activations when the
  /// source network has no recorded firing rates (e.g. compiled straight
  /// from a checkpoint, before any forward pass ran). Typical LIF/PLIF/
  /// ALIF layers fire 5-20% of the time.
  double firing_rate_estimate = 0.15;
  /// Intra-op execution lanes: 1 (default) compiles a serial plan, 0
  /// resolves to std::thread::hardware_concurrency(), N > 1 builds a
  /// shared util::ThreadPool the plan owns and every hot kernel
  /// dispatches through (CSR/BCSR spmm/spmm_t partitioned by output
  /// row/block row with nnz-balanced splits, the event path over batch
  /// rows / output channels, dense fallbacks by output row). Layers
  /// whose work sits below util::kMinParallelWork stay serial — thread
  /// handoff costs more than e.g. lenet5's fc2 [84 x 120]. fp32 outputs
  /// stay bitwise identical to the serial plan for any value here.
  int64_t num_threads = 1;
  /// SIMD kernel tier every weight op dispatches with (resolved once at
  /// compile time via util::simd::resolve, so a plan's execution is
  /// reproducible regardless of later NDSNN_KERNEL_TIER / force()
  /// changes). kAuto takes the detected tier; explicit tiers clamp to
  /// it (requesting kAvx2 on a non-AVX2 host runs kVector, never
  /// SIGILLs). fp32 results are bitwise identical across tiers, so this
  /// is purely a performance knob — pin kScalar to reproduce the
  /// reference kernels, or kVector to benchmark against the
  /// autovectorised baseline.
  util::simd::Tier kernel_tier = util::simd::Tier::kAuto;
};

/// Knobs for the network -> plan lowering, grouped by concern:
/// BackendOptions (kernel/format selection), QuantOptions (stored bit
/// widths), ExecOptions (activation path, threads, SIMD tier). The
/// bases keep member access flat — `opts.min_sparsity`,
/// `opts.num_threads` etc. compile exactly as before the grouping — and
/// aggregate init takes one brace list per group:
///
///   CompileOptions o{{.min_sparsity = 0.9}, {}, {.num_threads = 0}};
///
/// Group views (backend_opts() etc.) hand a whole group to code that
/// only cares about one concern.
struct CompileOptions : BackendOptions, QuantOptions, ExecOptions {
  [[nodiscard]] BackendOptions& backend_opts() { return *this; }
  [[nodiscard]] const BackendOptions& backend_opts() const { return *this; }
  [[nodiscard]] QuantOptions& quant_opts() { return *this; }
  [[nodiscard]] const QuantOptions& quant_opts() const { return *this; }
  [[nodiscard]] ExecOptions& exec_opts() { return *this; }
  [[nodiscard]] const ExecOptions& exec_opts() const { return *this; }
};

class CompiledNetwork {
 public:
  /// Lower `net` (its body and current weights) into an executable plan.
  /// Weights are copied: later training steps do not affect the plan.
  /// Throws std::invalid_argument for layers the runtime cannot lower or
  /// when the network uses a non-direct input encoder.
  [[nodiscard]] static CompiledNetwork compile(const nn::SpikingNetwork& net,
                                               const CompileOptions& opts = {});

  /// Compile straight from an architecture-tagged checkpoint file
  /// (nn::save_checkpoint with CheckpointMeta, format v2): rebuilds the
  /// recorded zoo architecture internally, restores every parameter
  /// (BN statistics included) and lowers it — the caller never touches a
  /// training network. Throws std::runtime_error for v1 checkpoints
  /// (no architecture record) or on any parameter mismatch.
  [[nodiscard]] static CompiledNetwork from_checkpoint(const std::string& path,
                                                       const CompileOptions& opts = {});

  /// One-shot inference through the consolidated request/result pair
  /// (runtime/inference.hpp) — the same vocabulary the batched
  /// (BatchExecutor::submit) and streaming (StreamSession::step) paths
  /// speak. Mean logits over `timesteps()` of direct encoding, matching
  /// SpikingNetwork::predict; `latency_ms` is the call's wall time, the
  /// SLO class is ignored (no queue on the direct path). Thread-safe.
  [[nodiscard]] InferenceResult infer(const InferenceRequest& request) const;

  /// Mean logits [N, classes] for a static input batch [N, ...]. Thin
  /// wrapper over infer() for callers that only want the tensor — the
  /// original PR-2 signature. Thread-safe.
  [[nodiscard]] tensor::Tensor run(const tensor::Tensor& batch) const;

  /// argmax class per sample. Thread-safe.
  [[nodiscard]] std::vector<int64_t> classify(const tensor::Tensor& batch) const;

  /// Per-op reports of the compiled plan.
  [[nodiscard]] const std::vector<OpReport>& plan() const { return plan_.reports; }
  /// The full plan IR, ops included — what the differential harness
  /// walks to compare two plans op by op (run() stays the serving API).
  [[nodiscard]] const Plan& plan_ir() const { return plan_; }
  [[nodiscard]] int64_t timesteps() const { return plan_.timesteps; }
  /// Intra-op lanes of the plan's shared thread pool (1 = serial plan).
  [[nodiscard]] int64_t intra_op_threads() const { return plan_.intra_op_threads(); }
  /// Compile-time mean firing-rate estimate over the spiking layers
  /// (recorded rates where available, CompileOptions fallback otherwise).
  [[nodiscard]] double estimated_spike_rate() const { return plan_.estimated_spike_rate; }

  /// Toggle per-op profiling (durations + observed firing rates folded
  /// into the plan's PlanProfile on every run). Off by default; while
  /// off, run() takes the uninstrumented fast path. Safe to flip while
  /// other threads are serving. Const: profiling observes execution,
  /// it never changes what is computed.
  void enable_profiling(bool on) const {
    if (plan_.profile) plan_.profile->set_enabled(on);
  }
  [[nodiscard]] bool profiling_enabled() const {
    return plan_.profile && plan_.profile->enabled();
  }
  /// Measured per-op stats since compile (or the last profile_reset()):
  /// p50/p95/mean latency, run/row counts, EMA firing rate. All zeros /
  /// -1 rates until profiling ran enabled.
  [[nodiscard]] std::vector<PlanProfile::OpStats> profile() const {
    return plan_.profile ? plan_.profile->snapshot() : std::vector<PlanProfile::OpStats>{};
  }
  /// Plan runs recorded by the profile.
  [[nodiscard]] int64_t profiled_executes() const {
    return plan_.profile ? plan_.profile->executes() : 0;
  }
  void profile_reset() const {
    if (plan_.profile) plan_.profile->reset();
  }

  /// Weight elements stored by the plan (CSR nnz + dense fallback sizes).
  [[nodiscard]] int64_t stored_weights() const { return plan_.stored_weights(); }
  /// Bytes the plan's weight structures occupy (quantised planes included).
  [[nodiscard]] int64_t stored_bytes() const { return plan_.stored_bytes(); }
  /// Parameter-weighted sparsity over all weight ops.
  [[nodiscard]] double overall_sparsity() const { return plan_.overall_sparsity(); }
  /// Multi-line human-readable description of the plan.
  [[nodiscard]] std::string summary() const { return plan_.summary(); }

  CompiledNetwork(CompiledNetwork&&) = default;
  CompiledNetwork& operator=(CompiledNetwork&&) = default;

 private:
  CompiledNetwork() = default;

  Plan plan_;
};

}  // namespace ndsnn::runtime
