// Runtime tracing and plan profiling.
//
// trace:: is a per-thread ring-buffer span recorder compiled into every
// build but disabled by default behind one branch-predictable atomic
// flag — the fast path of an untraced run pays a single relaxed load
// per Plan::execute. When enabled, every op run records a span {layer,
// kind+backend+precision, duration_us, batch rows, observed spike
// rate, bytes touched, thread id}, the ops add phase sub-spans
// (im2col, gemm, event-scatter, ...), and the BatchExecutor adds
// queue-wait / coalesce-wait / fused-split spans. Spans land in a
// fixed-capacity ring per thread (oldest overwritten, drops counted),
// so a long serving run keeps the most recent window instead of
// growing without bound. chrome_json() exports the merged snapshot as
// Chrome trace-event JSON — load it at chrome://tracing or
// https://ui.perfetto.dev.
//
// Tracing never changes what is computed: the instrumented execute
// path calls the exact same op->run sequence, so traced outputs are
// bitwise identical to untraced ones (pinned by
// tests/runtime/trace_test.cpp across the differential harness).
//
// PlanProfile is the aggregation side: per-op duration histograms,
// run/row counters, and an EMA of the observed firing rate — the
// measured-calibration input the adaptive-runtime roadmap item needs.
// One profile is attached to every compiled Plan (disabled by default;
// CompiledNetwork::enable_profiling flips it) and is safe to record
// into from many request workers at once.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "runtime/plan.hpp"
#include "util/metrics.hpp"

namespace ndsnn::runtime {

namespace trace {

/// One completed span. `cat` must point at a string literal ("op",
/// "phase", "queue", "coalesce", "split", "serve").
struct Span {
  std::string name;        ///< op layer name or phase label
  const char* cat = "op";
  double ts_us = 0.0;      ///< start, microseconds since the trace epoch
  double dur_us = 0.0;
  uint32_t tid = 0;        ///< small per-thread id (registration order)
  std::string kind;        ///< op kind/backend/precision tag ("" = none)
  int64_t rows = -1;       ///< batch rows processed (-1 = n/a)
  double spike_rate = -1;  ///< observed nonzero fraction (-1 = n/a)
  int64_t bytes = -1;      ///< approx bytes touched (-1 = n/a)
};

/// Fixed-capacity span ring: push() overwrites the oldest span once
/// full and counts the overwrite. Each thread records into its own
/// ring, so the per-span mutex is uncontended except against snapshot
/// readers.
class Ring {
 public:
  explicit Ring(std::size_t capacity);

  void push(Span&& s);
  /// Oldest-first copy of the retained spans.
  [[nodiscard]] std::vector<Span> spans() const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] int64_t dropped() const;  ///< spans overwritten so far
  void clear();

 private:
  mutable std::mutex mu_;
  std::vector<Span> buf_;
  std::size_t capacity_;
  int64_t total_ = 0;  ///< pushes ever; write cursor = total_ % capacity_
};

namespace detail {
extern std::atomic<bool> g_enabled;
}

/// The branch-predictable hot-path check.
[[nodiscard]] inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}
void set_enabled(bool on);

/// Microseconds since the process-wide trace epoch (steady clock).
[[nodiscard]] double now_us();
/// Small dense id of the calling thread (stable for its lifetime).
[[nodiscard]] uint32_t thread_id();

/// Append a span to the calling thread's ring (registering the ring on
/// first use). Fills `tid`. Call only when enabled() — the recorder
/// does not re-check.
void record(Span&& s);

/// Merged oldest-first snapshot across all thread rings, sorted by
/// start time. Safe while other threads keep recording.
[[nodiscard]] std::vector<Span> snapshot();
/// Total spans overwritten across all rings.
[[nodiscard]] int64_t dropped();
/// Clear every ring and the drop counts (capacity keeps its value).
void reset();
/// Capacity for rings created after this call (default 1 << 15 spans).
void set_ring_capacity(std::size_t capacity);

/// Chrome trace-event JSON ({"traceEvents": [...]}) for a span list.
[[nodiscard]] std::string chrome_json(const std::vector<Span>& spans);
/// snapshot() -> chrome_json -> file. Throws on unwritable path.
void write_chrome_file(const std::string& path);

/// RAII phase span for the op internals: zero-cost when tracing is
/// disabled (no allocation, one relaxed load).
class ScopedSpan {
 public:
  ScopedSpan(const char* name, const char* cat) {
    if (enabled()) {
      active_ = true;
      span_.name = name;
      span_.cat = cat;
      span_.ts_us = now_us();
    }
  }
  ~ScopedSpan() {
    if (active_) {
      span_.dur_us = now_us() - span_.ts_us;
      record(std::move(span_));
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  void rows(int64_t r) {
    if (active_) span_.rows = r;
  }
  void rate(double r) {
    if (active_) span_.spike_rate = r;
  }
  void bytes(int64_t b) {
    if (active_) span_.bytes = b;
  }

 private:
  Span span_;
  bool active_ = false;
};

}  // namespace trace

/// Per-op aggregation attached to a compiled Plan: duration histograms
/// (p50/p95), run/row counters, and an EMA of the observed output
/// firing rate. Recording is lock-free (sharded histograms + atomics)
/// and keyed by op index, so many request workers fold into one
/// profile concurrently. Disabled by default; when disabled,
/// Plan::execute takes its untouched fast path.
class PlanProfile {
 public:
  /// EMA weight of the newest observation (new = 0.8 old + 0.2 obs).
  static constexpr double kEmaAlpha = 0.2;

  struct OpStats {
    std::string layer;
    std::string kind;
    int64_t runs = 0;
    int64_t rows = 0;        ///< batch rows processed, summed over runs
    double mean_us = 0.0;
    double p50_us = 0.0;
    double p95_us = 0.0;
    double ema_rate = -1.0;  ///< EMA firing rate; -1 = never observed
  };

  explicit PlanProfile(const std::vector<OpReport>& reports);

  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  [[nodiscard]] bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Fold one op run into slot `op`. `rate` < 0 means not observed.
  void record(std::size_t op, double dur_us, int64_t rows, double rate);
  void count_execute() { executes_.fetch_add(1, std::memory_order_relaxed); }

  [[nodiscard]] std::vector<OpStats> snapshot() const;
  [[nodiscard]] int64_t executes() const { return executes_.load(std::memory_order_relaxed); }
  [[nodiscard]] std::size_t size() const { return labels_.size(); }
  void reset();

 private:
  struct Slot {
    util::Histogram hist;  ///< duration_us
    std::atomic<int64_t> runs{0};
    std::atomic<int64_t> rows{0};
    std::atomic<double> ema{-1.0};
  };

  std::atomic<bool> enabled_{false};
  std::atomic<int64_t> executes_{0};
  std::vector<std::pair<std::string, std::string>> labels_;  ///< (layer, kind)
  std::unique_ptr<Slot[]> slots_;
};

namespace trace {
/// Run one op through the instrumented path: times the run, records an
/// "op" span when tracing is enabled (kind/backend/precision, rows,
/// observed spike rate, approximate bytes touched) and folds the
/// sample into `profile` slot `index` when non-null. The op sees the
/// exact same input either way, so outputs stay bitwise identical.
[[nodiscard]] Activation run_op_instrumented(const Op& op, const OpReport& report,
                                             const Activation& in, PlanProfile* profile,
                                             std::size_t index);
}  // namespace trace

}  // namespace ndsnn::runtime
