// Layer: the base abstraction of the manual-backprop NN stack.
//
// Every layer transforms a time-major activation tensor [T*N, d...] in
// forward() and propagates gradients in backward() (reverse order of the
// forward calls). Parameters are exposed through ParamRef views so the
// optimizer and the sparse-training methods can iterate over them without
// knowing layer internals.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace ndsnn::nn {

/// Non-owning view of one parameter tensor and its gradient.
///
/// `prunable` marks weights that participate in sparse training (conv and
/// linear weight matrices); biases and BatchNorm affine parameters are
/// never pruned, matching the paper's setup.
struct ParamRef {
  std::string name;
  tensor::Tensor* value = nullptr;
  tensor::Tensor* grad = nullptr;
  bool prunable = false;
};

/// Abstract layer with manual forward/backward.
class Layer {
 public:
  virtual ~Layer() = default;
  Layer() = default;
  Layer(const Layer&) = delete;
  Layer& operator=(const Layer&) = delete;

  /// Compute outputs; `training` toggles behaviours like BN statistics.
  [[nodiscard]] virtual tensor::Tensor forward(const tensor::Tensor& input, bool training) = 0;

  /// Propagate dL/d(output) to dL/d(input), accumulating parameter grads.
  [[nodiscard]] virtual tensor::Tensor backward(const tensor::Tensor& grad_output) = 0;

  /// Parameter views (empty for stateless layers).
  [[nodiscard]] virtual std::vector<ParamRef> params() { return {}; }

  /// Layer type name for logging / model summaries.
  [[nodiscard]] virtual std::string name() const = 0;

  /// Clear temporal state and saved activations (between batches).
  virtual void reset_state() {}

  /// Firing fraction of the last forward if this layer spikes, else < 0.
  [[nodiscard]] virtual double last_spike_rate() const { return -1.0; }
};

using LayerPtr = std::unique_ptr<Layer>;

/// Zero all parameter gradients reachable from `layers`.
void zero_grads(const std::vector<ParamRef>& params);

}  // namespace ndsnn::nn
