// Layer: the base abstraction of the manual-backprop NN stack.
//
// Every layer transforms a time-major activation tensor [T*N, d...] in
// forward() and propagates gradients in backward() (reverse order of the
// forward calls). Parameters are exposed through ParamRef views so the
// optimizer and the sparse-training methods can iterate over them without
// knowing layer internals.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace ndsnn::nn {

/// Non-owning view of one parameter tensor and its gradient.
///
/// `prunable` marks weights that participate in sparse training (conv and
/// linear weight matrices); biases and BatchNorm affine parameters are
/// never pruned, matching the paper's setup.
struct ParamRef {
  std::string name;
  tensor::Tensor* value = nullptr;
  tensor::Tensor* grad = nullptr;
  bool prunable = false;
};

/// Uniform view of a layer's maskable weight tensor and optional bias,
/// so the inference-runtime compiler can measure sparsity and extract
/// weights without per-layer-type plumbing (conv weights lower to their
/// 2-D GEMM form via sparse::Csr::from_weights).
struct MaskedLayerView {
  const tensor::Tensor* weight = nullptr;  ///< dense weight tensor (any rank)
  const tensor::Tensor* bias = nullptr;    ///< nullptr when the layer has no bias

  /// Fraction of exactly-zero weight entries (mask-pruned weights are
  /// zeroed in place by the training methods).
  [[nodiscard]] double sparsity() const;
};

/// Abstract layer with manual forward/backward.
class Layer {
 public:
  virtual ~Layer() = default;
  Layer() = default;
  Layer(const Layer&) = delete;
  Layer& operator=(const Layer&) = delete;

  /// Compute outputs; `training` toggles behaviours like BN statistics.
  [[nodiscard]] virtual tensor::Tensor forward(const tensor::Tensor& input, bool training) = 0;

  /// Propagate dL/d(output) to dL/d(input), accumulating parameter grads.
  [[nodiscard]] virtual tensor::Tensor backward(const tensor::Tensor& grad_output) = 0;

  /// Parameter views (empty for stateless layers).
  [[nodiscard]] virtual std::vector<ParamRef> params() { return {}; }

  /// Layer type name for logging / model summaries.
  [[nodiscard]] virtual std::string name() const = 0;

  /// Clear temporal state and saved activations (between batches).
  virtual void reset_state() {}

  /// Firing fraction of the last forward if this layer spikes, else < 0.
  [[nodiscard]] virtual double last_spike_rate() const { return -1.0; }

  /// View of this layer's prunable weight matrix, or nullopt for layers
  /// without one (activations, pooling, normalization, containers).
  [[nodiscard]] virtual std::optional<MaskedLayerView> masked_view() const {
    return std::nullopt;
  }
};

using LayerPtr = std::unique_ptr<Layer>;

/// Zero all parameter gradients reachable from `layers`.
void zero_grads(const std::vector<ParamRef>& params);

}  // namespace ndsnn::nn
