#include "nn/linear.hpp"

#include <stdexcept>

#include "tensor/matmul.hpp"
#include "tensor/ops.hpp"

namespace ndsnn::nn {

Linear::Linear(int64_t in_features, int64_t out_features, tensor::Rng& rng, bool bias)
    : in_features_(in_features),
      out_features_(out_features),
      has_bias_(bias),
      weight_(tensor::Shape{out_features, in_features}),
      weight_grad_(tensor::Shape{out_features, in_features}),
      bias_(tensor::Shape{out_features}),
      bias_grad_(tensor::Shape{out_features}) {
  if (in_features < 1 || out_features < 1) {
    throw std::invalid_argument("Linear: features must be >= 1");
  }
  weight_.fill_kaiming(rng, in_features);
}

tensor::Tensor Linear::forward(const tensor::Tensor& input, bool /*training*/) {
  if (input.rank() != 2 || input.dim(1) != in_features_) {
    throw std::invalid_argument("Linear::forward: expected [M, " +
                                std::to_string(in_features_) + "], got " + input.shape().str());
  }
  saved_input_ = input;
  has_saved_ = true;
  // y[M, out] = x[M, in] * Wᵀ
  tensor::Tensor out = tensor::matmul_nt(input, weight_);
  if (has_bias_) tensor::add_row_bias_(out, bias_);
  return out;
}

tensor::Tensor Linear::backward(const tensor::Tensor& grad_output) {
  if (!has_saved_) throw std::logic_error("Linear::backward before forward");
  if (grad_output.rank() != 2 || grad_output.dim(1) != out_features_ ||
      grad_output.dim(0) != saved_input_.dim(0)) {
    throw std::invalid_argument("Linear::backward: bad grad shape " +
                                grad_output.shape().str());
  }
  // dW[out, in] += gyᵀ[out, M] * x[M, in]
  tensor::matmul_tn_acc(grad_output, saved_input_, weight_grad_);
  if (has_bias_) {
    const int64_t m = grad_output.dim(0);
    for (int64_t r = 0; r < m; ++r) {
      for (int64_t c = 0; c < out_features_; ++c) bias_grad_.at(c) += grad_output.at(r, c);
    }
  }
  // dx[M, in] = gy[M, out] * W[out, in]
  return tensor::matmul(grad_output, weight_);
}

std::vector<ParamRef> Linear::params() {
  std::vector<ParamRef> refs;
  refs.push_back({"weight", &weight_, &weight_grad_, /*prunable=*/true});
  if (has_bias_) refs.push_back({"bias", &bias_, &bias_grad_, /*prunable=*/false});
  return refs;
}

std::optional<MaskedLayerView> Linear::masked_view() const {
  MaskedLayerView view;
  view.weight = &weight_;
  view.bias = has_bias_ ? &bias_ : nullptr;
  return view;
}

std::string Linear::name() const {
  return "Linear(" + std::to_string(in_features_) + "->" + std::to_string(out_features_) + ")";
}

void Linear::reset_state() {
  saved_input_ = tensor::Tensor();
  has_saved_ = false;
}

}  // namespace ndsnn::nn
