#include "nn/conv2d.hpp"

#include <stdexcept>

#include "tensor/matmul.hpp"
#include "tensor/ops.hpp"

namespace ndsnn::nn {

Conv2d::Conv2d(int64_t in_channels, int64_t out_channels, int64_t kernel, int64_t stride,
               int64_t padding, tensor::Rng& rng, bool bias)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      padding_(padding),
      has_bias_(bias),
      weight_(tensor::Shape{out_channels, in_channels, kernel, kernel}),
      weight_grad_(tensor::Shape{out_channels, in_channels, kernel, kernel}),
      bias_(tensor::Shape{out_channels}),
      bias_grad_(tensor::Shape{out_channels}) {
  if (in_channels < 1 || out_channels < 1 || kernel < 1 || stride < 1 || padding < 0) {
    throw std::invalid_argument("Conv2d: bad constructor arguments");
  }
  weight_.fill_kaiming(rng, in_channels * kernel * kernel);
}

tensor::Tensor Conv2d::forward(const tensor::Tensor& input, bool /*training*/) {
  if (input.rank() != 4 || input.dim(1) != in_channels_) {
    throw std::invalid_argument("Conv2d::forward: expected [M, " +
                                std::to_string(in_channels_) + ", H, W], got " +
                                input.shape().str());
  }
  tensor::ConvGeometry g;
  g.batch = input.dim(0);
  g.in_channels = in_channels_;
  g.in_h = input.dim(2);
  g.in_w = input.dim(3);
  g.kernel_h = kernel_;
  g.kernel_w = kernel_;
  g.stride = stride_;
  g.padding = padding_;
  g.validate();

  saved_cols_ = tensor::im2col(input, g);
  saved_geom_ = g;
  has_saved_ = true;

  // yflat[F, L] = W[F, CKK] * cols[CKK, L],  L = M*OH*OW
  const tensor::Tensor wmat = weight_.reshaped(
      tensor::Shape{out_channels_, in_channels_ * kernel_ * kernel_});
  tensor::Tensor yflat = tensor::matmul(wmat, saved_cols_);

  // Transpose [F, (m, oy, ox)] -> [m, F, oy, ox].
  const int64_t m = g.batch, oh = g.out_h(), ow = g.out_w();
  const int64_t plane = oh * ow;
  tensor::Tensor out(tensor::Shape{m, out_channels_, oh, ow});
  const float* src = yflat.data();
  float* dst = out.data();
  for (int64_t f = 0; f < out_channels_; ++f) {
    const float* srow = src + f * (m * plane);
    for (int64_t mm = 0; mm < m; ++mm) {
      float* drow = dst + (mm * out_channels_ + f) * plane;
      const float* s = srow + mm * plane;
      for (int64_t p = 0; p < plane; ++p) drow[p] = s[p];
    }
  }
  if (has_bias_) tensor::add_channel_bias_(out, bias_);
  return out;
}

tensor::Tensor Conv2d::backward(const tensor::Tensor& grad_output) {
  if (!has_saved_) throw std::logic_error("Conv2d::backward before forward");
  const auto& g = saved_geom_;
  const int64_t m = g.batch, oh = g.out_h(), ow = g.out_w();
  if (grad_output.rank() != 4 || grad_output.dim(0) != m ||
      grad_output.dim(1) != out_channels_ || grad_output.dim(2) != oh ||
      grad_output.dim(3) != ow) {
    throw std::invalid_argument("Conv2d::backward: bad grad shape " +
                                grad_output.shape().str());
  }
  const int64_t plane = oh * ow;
  const int64_t l = m * plane;

  // gyflat[F, L] is the transpose of grad_output's [m, F] leading dims.
  tensor::Tensor gyflat(tensor::Shape{out_channels_, l});
  {
    const float* src = grad_output.data();
    float* dst = gyflat.data();
    for (int64_t mm = 0; mm < m; ++mm) {
      for (int64_t f = 0; f < out_channels_; ++f) {
        const float* s = src + (mm * out_channels_ + f) * plane;
        float* d = dst + f * l + mm * plane;
        for (int64_t p = 0; p < plane; ++p) d[p] = s[p];
      }
    }
  }

  // dW[F, CKK] += gy[F, L] * colsᵀ[L, CKK]
  {
    tensor::Tensor wgrad_mat = weight_grad_.reshaped(
        tensor::Shape{out_channels_, in_channels_ * kernel_ * kernel_});
    tensor::matmul_nt_acc(gyflat, saved_cols_, wgrad_mat);
    // reshaped() copies; fold the accumulation back into the 4-D grad.
    weight_grad_ = wgrad_mat.reshaped(weight_grad_.shape());
  }

  if (has_bias_) {
    const float* src = gyflat.data();
    for (int64_t f = 0; f < out_channels_; ++f) {
      double acc = 0.0;
      const float* row = src + f * l;
      for (int64_t p = 0; p < l; ++p) acc += row[p];
      bias_grad_.at(f) += static_cast<float>(acc);
    }
  }

  // gcols[CKK, L] = Wᵀ[CKK, F] * gy[F, L]
  const tensor::Tensor wmat = weight_.reshaped(
      tensor::Shape{out_channels_, in_channels_ * kernel_ * kernel_});
  const tensor::Tensor gcols = tensor::matmul_tn(wmat, gyflat);
  return tensor::col2im(gcols, g);
}

std::vector<ParamRef> Conv2d::params() {
  std::vector<ParamRef> refs;
  refs.push_back({"weight", &weight_, &weight_grad_, /*prunable=*/true});
  if (has_bias_) refs.push_back({"bias", &bias_, &bias_grad_, /*prunable=*/false});
  return refs;
}

std::optional<MaskedLayerView> Conv2d::masked_view() const {
  MaskedLayerView view;
  view.weight = &weight_;
  view.bias = has_bias_ ? &bias_ : nullptr;
  return view;
}

std::string Conv2d::name() const {
  return "Conv2d(" + std::to_string(in_channels_) + "->" + std::to_string(out_channels_) +
         ", k=" + std::to_string(kernel_) + ", s=" + std::to_string(stride_) +
         ", p=" + std::to_string(padding_) + ")";
}

void Conv2d::reset_state() {
  saved_cols_ = tensor::Tensor();
  has_saved_ = false;
}

}  // namespace ndsnn::nn
