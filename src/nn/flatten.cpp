#include "nn/flatten.hpp"

#include <stdexcept>

namespace ndsnn::nn {

tensor::Tensor Flatten::forward(const tensor::Tensor& input, bool /*training*/) {
  if (input.rank() < 2) {
    throw std::invalid_argument("Flatten: expected rank >= 2, got " + input.shape().str());
  }
  saved_in_shape_ = input.shape();
  has_saved_ = true;
  const int64_t m = input.dim(0);
  return input.reshaped(tensor::Shape{m, input.numel() / m});
}

tensor::Tensor Flatten::backward(const tensor::Tensor& grad_output) {
  if (!has_saved_) throw std::logic_error("Flatten::backward before forward");
  return grad_output.reshaped(saved_in_shape_);
}

void Flatten::reset_state() { has_saved_ = false; }

}  // namespace ndsnn::nn
