// Sequential container of layers.
#pragma once

#include <memory>
#include <vector>

#include "nn/layer.hpp"

namespace ndsnn::nn {

/// Runs layers in order on forward, reverse order on backward. Owns them.
class Sequential final : public Layer {
 public:
  Sequential() = default;

  /// Append a layer; returns *this for chaining.
  Sequential& add(LayerPtr layer);

  /// Emplace-construct a layer of type T.
  template <typename T, typename... Args>
  T& emplace(Args&&... args) {
    auto layer = std::make_unique<T>(std::forward<Args>(args)...);
    T& ref = *layer;
    layers_.push_back(std::move(layer));
    return ref;
  }

  [[nodiscard]] tensor::Tensor forward(const tensor::Tensor& input, bool training) override;
  [[nodiscard]] tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  [[nodiscard]] std::vector<ParamRef> params() override;
  [[nodiscard]] std::string name() const override;
  void reset_state() override;
  [[nodiscard]] double last_spike_rate() const override;

  [[nodiscard]] std::size_t size() const { return layers_.size(); }
  [[nodiscard]] Layer& layer(std::size_t i) { return *layers_.at(i); }
  [[nodiscard]] const Layer& layer(std::size_t i) const { return *layers_.at(i); }

  /// Collect spike rates of all spiking sub-layers (recursing into nested
  /// containers), weighted summary for the cost model.
  void collect_spike_rates(std::vector<double>& rates) const;

 private:
  std::vector<LayerPtr> layers_;
};

}  // namespace ndsnn::nn
