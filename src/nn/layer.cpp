#include "nn/layer.hpp"

namespace ndsnn::nn {

void zero_grads(const std::vector<ParamRef>& params) {
  for (const auto& p : params) {
    if (p.grad != nullptr) p.grad->zero();
  }
}

}  // namespace ndsnn::nn
