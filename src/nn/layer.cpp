#include "nn/layer.hpp"

namespace ndsnn::nn {

double MaskedLayerView::sparsity() const {
  if (weight == nullptr || weight->numel() == 0) return 0.0;
  return static_cast<double>(weight->count_zeros()) /
         static_cast<double>(weight->numel());
}

void zero_grads(const std::vector<ParamRef>& params) {
  for (const auto& p : params) {
    if (p.grad != nullptr) p.grad->zero();
  }
}

}  // namespace ndsnn::nn
