#include "nn/checkpoint.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <stdexcept>

#include "tensor/serialize.hpp"
#include "util/fault_injection.hpp"

namespace ndsnn::nn {

namespace {
constexpr char kMagic[4] = {'N', 'D', 'C', 'K'};
constexpr uint32_t kVersionParamsOnly = 1;
constexpr uint32_t kVersionWithMeta = 2;
constexpr uint32_t kVersionWithQuant = 3;

void write_string(std::ostream& out, const std::string& s) {
  const auto len = static_cast<uint32_t>(s.size());
  out.write(reinterpret_cast<const char*>(&len), sizeof(len));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string read_string(std::istream& in) {
  uint32_t len = 0;
  in.read(reinterpret_cast<char*>(&len), sizeof(len));
  if (!in || len > (1u << 20)) throw std::runtime_error("checkpoint: bad string length");
  std::string s(len, '\0');
  in.read(s.data(), len);
  if (!in) throw std::runtime_error("checkpoint: truncated string");
  return s;
}

template <typename T>
void write_pod(std::ostream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

template <typename T>
T read_pod(std::istream& in) {
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!in) throw std::runtime_error("checkpoint: truncated header");
  return v;
}

void write_meta(std::ostream& out, const CheckpointMeta& meta) {
  write_string(out, meta.arch);
  const ModelSpec& s = meta.spec;
  write_pod(out, s.num_classes);
  write_pod(out, s.in_channels);
  write_pod(out, s.image_size);
  write_pod(out, s.timesteps);
  write_pod(out, s.width_scale);
  write_pod(out, s.lif.alpha);
  write_pod(out, s.lif.threshold);
  write_pod(out, static_cast<uint8_t>(s.lif.detach_reset));
  write_pod(out, static_cast<uint8_t>(s.lif.surrogate));
  write_pod(out, s.seed);
}

CheckpointMeta read_meta(std::istream& in) {
  CheckpointMeta meta;
  meta.arch = read_string(in);
  ModelSpec& s = meta.spec;
  s.num_classes = read_pod<int64_t>(in);
  s.in_channels = read_pod<int64_t>(in);
  s.image_size = read_pod<int64_t>(in);
  s.timesteps = read_pod<int64_t>(in);
  s.width_scale = read_pod<double>(in);
  s.lif.alpha = read_pod<float>(in);
  s.lif.threshold = read_pod<float>(in);
  s.lif.detach_reset = read_pod<uint8_t>(in) != 0;
  s.lif.surrogate = static_cast<snn::SurrogateKind>(read_pod<uint8_t>(in));
  s.seed = read_pod<uint64_t>(in);
  return meta;
}

/// Reads and validates magic + version; returns the version.
uint32_t read_header(std::istream& in) {
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("load_checkpoint: bad magic");
  }
  const auto version = read_pod<uint32_t>(in);
  if (version != kVersionParamsOnly && version != kVersionWithMeta &&
      version != kVersionWithQuant) {
    throw std::runtime_error("load_checkpoint: unsupported version");
  }
  return version;
}

void write_quant_record(std::ostream& out, const QuantRecord& quant) {
  // Validate the whole record before emitting a single byte: a throw
  // mid-write would leave a corrupt, partially-written v3 file behind.
  for (const QuantRecordLayer& layer : quant.layers) {
    if (layer.zeros.size() != layer.scales.size()) {
      throw std::runtime_error("save_checkpoint: quant record scales/zeros mismatch for " +
                               layer.param);
    }
  }
  write_pod(out, static_cast<uint32_t>(quant.layers.size()));
  for (const QuantRecordLayer& layer : quant.layers) {
    write_string(out, layer.param);
    write_pod(out, static_cast<uint8_t>(layer.precision));
    const auto groups = static_cast<uint64_t>(layer.scales.size());
    write_pod(out, groups);
    out.write(reinterpret_cast<const char*>(layer.scales.data()),
              static_cast<std::streamsize>(groups * sizeof(float)));
    out.write(reinterpret_cast<const char*>(layer.zeros.data()),
              static_cast<std::streamsize>(groups));
  }
}

/// read_header + the v2 floor every architecture-record reader shares.
uint32_t read_header_with_meta(std::istream& in) {
  const uint32_t version = read_header(in);
  if (version < kVersionWithMeta) {
    throw std::runtime_error(
        "checkpoint: v1 file has no architecture record "
        "(re-save with save_checkpoint(..., CheckpointMeta) to serve it directly)");
  }
  return version;
}

QuantRecord read_quant_record(std::istream& in) {
  QuantRecord quant;
  const auto count = read_pod<uint32_t>(in);
  if (count > (1U << 16)) throw std::runtime_error("checkpoint: bad quant layer count");
  quant.layers.resize(count);
  for (QuantRecordLayer& layer : quant.layers) {
    layer.param = read_string(in);
    const auto p = read_pod<uint8_t>(in);
    if (p > static_cast<uint8_t>(sparse::Precision::kInt4)) {
      throw std::runtime_error("checkpoint: bad precision tag for " + layer.param);
    }
    layer.precision = static_cast<sparse::Precision>(p);
    const auto groups = read_pod<uint64_t>(in);
    if (groups > (1ULL << 24)) throw std::runtime_error("checkpoint: bad quant group count");
    layer.scales.resize(groups);
    layer.zeros.resize(groups);
    in.read(reinterpret_cast<char*>(layer.scales.data()),
            static_cast<std::streamsize>(groups * sizeof(float)));
    in.read(reinterpret_cast<char*>(layer.zeros.data()),
            static_cast<std::streamsize>(groups));
    if (!in) throw std::runtime_error("checkpoint: truncated quant record");
  }
  return quant;
}

void write_params(std::ostream& out, SpikingNetwork& network) {
  const auto params = network.params();
  const auto count = static_cast<uint64_t>(params.size());
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const auto& p : params) {
    write_string(out, p.name);
    tensor::save_tensor(out, *p.value);
  }
  if (!out) throw std::runtime_error("save_checkpoint: stream write failed");
}

/// Crash-safe file write: serialize into `<path>.tmp`, fsync, then
/// rename over `path`. A crash (or the injected `checkpoint.write`
/// fault) at ANY point leaves the original checkpoint untouched — a
/// half-written .tmp is removed on failure and harmless if the process
/// died before that. rename(2) on the same filesystem is atomic, so a
/// reader never observes a torn checkpoint.
void atomic_write_file(const std::string& path,
                       const std::function<void(std::ostream&)>& write) {
  const std::string tmp = path + ".tmp";
  try {
    {
      std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
      if (!out) {
        throw std::runtime_error("save_checkpoint_file: cannot open " + tmp);
      }
      write(out);
      if (util::fault::should_fail("checkpoint.write")) {
        throw std::runtime_error("injected fault: checkpoint.write");
      }
      out.flush();
      if (!out) {
        throw std::runtime_error("save_checkpoint_file: write failed for " + tmp);
      }
    }
    // Flush the data to disk BEFORE the rename: otherwise a power cut
    // can leave the rename durable but the bytes not — the original
    // gone and its replacement empty.
    const int fd = ::open(tmp.c_str(), O_WRONLY);
    if (fd < 0) {
      throw std::runtime_error("save_checkpoint_file: cannot reopen " + tmp);
    }
    const int sync_rc = ::fsync(fd);
    ::close(fd);
    if (sync_rc != 0) {
      throw std::runtime_error("save_checkpoint_file: fsync failed for " + tmp);
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
      throw std::runtime_error("save_checkpoint_file: rename to " + path + " failed");
    }
  } catch (...) {
    std::remove(tmp.c_str());
    throw;
  }
}

void read_params(std::istream& in, SpikingNetwork& network) {
  uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  auto params = network.params();
  if (!in || count != params.size()) {
    throw std::runtime_error("load_checkpoint: parameter count mismatch");
  }
  for (auto& p : params) {
    const std::string name = read_string(in);
    if (name != p.name) {
      throw std::runtime_error("load_checkpoint: parameter name mismatch: expected '" +
                               p.name + "', found '" + name + "'");
    }
    tensor::Tensor loaded = tensor::load_tensor(in);
    if (loaded.shape() != p.value->shape()) {
      throw std::runtime_error("load_checkpoint: shape mismatch for " + p.name);
    }
    *p.value = std::move(loaded);
  }
}
}  // namespace

void save_checkpoint(std::ostream& out, SpikingNetwork& network) {
  out.write(kMagic, sizeof(kMagic));
  write_pod(out, kVersionParamsOnly);
  write_params(out, network);
}

void save_checkpoint(std::ostream& out, SpikingNetwork& network, const CheckpointMeta& meta) {
  out.write(kMagic, sizeof(kMagic));
  write_pod(out, kVersionWithMeta);
  write_meta(out, meta);
  write_params(out, network);
}

void save_checkpoint(std::ostream& out, SpikingNetwork& network, const CheckpointMeta& meta,
                     const QuantRecord& quant) {
  out.write(kMagic, sizeof(kMagic));
  write_pod(out, kVersionWithQuant);
  write_meta(out, meta);
  write_quant_record(out, quant);
  write_params(out, network);
}

QuantRecord build_quant_record(SpikingNetwork& network, sparse::Precision precision) {
  QuantRecord record;
  for (const auto& p : network.params()) {
    if (!p.prunable) continue;
    QuantRecordLayer layer;
    layer.param = p.name;
    layer.precision = precision;
    // fake_quantize_rows derives the same symmetric per-row scales
    // Csr::quantize will; quantise a copy so the network is untouched.
    tensor::Tensor copy = *p.value;
    layer.scales = sparse::fake_quantize_rows(copy, precision);
    layer.zeros.assign(layer.scales.size(), 0);
    record.layers.push_back(std::move(layer));
  }
  return record;
}

void load_checkpoint(std::istream& in, SpikingNetwork& network) {
  const uint32_t version = read_header(in);
  if (version >= kVersionWithMeta) {
    (void)read_meta(in);  // the live network defines the expected shapes
  }
  if (version >= kVersionWithQuant) {
    (void)read_quant_record(in);  // restoring fp32 params; record not needed
  }
  read_params(in, network);
}

CheckpointMeta read_checkpoint_meta(std::istream& in) {
  (void)read_header_with_meta(in);
  return read_meta(in);
}

QuantRecord read_checkpoint_quant(std::istream& in) {
  if (read_header(in) < kVersionWithQuant) {
    throw std::runtime_error(
        "read_checkpoint_quant: checkpoint predates v3 and has no quantisation record");
  }
  (void)read_meta(in);
  return read_quant_record(in);
}

QuantRecord read_checkpoint_quant_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("read_checkpoint_quant_file: cannot open " + path);
  return read_checkpoint_quant(in);
}

std::unique_ptr<SpikingNetwork> load_checkpoint_network(const std::string& path,
                                                        QuantRecord* quant) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_checkpoint_network: cannot open " + path);
  const uint32_t version = read_header_with_meta(in);
  const CheckpointMeta meta = read_meta(in);
  if (version >= kVersionWithQuant) {
    QuantRecord record = read_quant_record(in);
    if (quant != nullptr) *quant = std::move(record);
  } else if (quant != nullptr) {
    quant->layers.clear();
  }
  auto network = make_model(meta.arch, meta.spec);
  read_params(in, *network);
  return network;
}

void save_checkpoint_file(const std::string& path, SpikingNetwork& network) {
  atomic_write_file(path, [&](std::ostream& out) { save_checkpoint(out, network); });
}

void save_checkpoint_file(const std::string& path, SpikingNetwork& network,
                          const CheckpointMeta& meta) {
  atomic_write_file(path,
                    [&](std::ostream& out) { save_checkpoint(out, network, meta); });
}

void save_checkpoint_file(const std::string& path, SpikingNetwork& network,
                          const CheckpointMeta& meta, const QuantRecord& quant) {
  atomic_write_file(
      path, [&](std::ostream& out) { save_checkpoint(out, network, meta, quant); });
}

void load_checkpoint_file(const std::string& path, SpikingNetwork& network) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_checkpoint_file: cannot open " + path);
  load_checkpoint(in, network);
}

CheckpointMeta read_checkpoint_meta_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("read_checkpoint_meta_file: cannot open " + path);
  return read_checkpoint_meta(in);
}

}  // namespace ndsnn::nn
