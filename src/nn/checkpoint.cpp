#include "nn/checkpoint.hpp"

#include <cstring>
#include <fstream>
#include <stdexcept>

#include "tensor/serialize.hpp"

namespace ndsnn::nn {

namespace {
constexpr char kMagic[4] = {'N', 'D', 'C', 'K'};
constexpr uint32_t kVersion = 1;

void write_string(std::ostream& out, const std::string& s) {
  const auto len = static_cast<uint32_t>(s.size());
  out.write(reinterpret_cast<const char*>(&len), sizeof(len));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string read_string(std::istream& in) {
  uint32_t len = 0;
  in.read(reinterpret_cast<char*>(&len), sizeof(len));
  if (!in || len > (1u << 20)) throw std::runtime_error("checkpoint: bad string length");
  std::string s(len, '\0');
  in.read(s.data(), len);
  if (!in) throw std::runtime_error("checkpoint: truncated string");
  return s;
}
}  // namespace

void save_checkpoint(std::ostream& out, SpikingNetwork& network) {
  const auto params = network.params();
  out.write(kMagic, sizeof(kMagic));
  out.write(reinterpret_cast<const char*>(&kVersion), sizeof(kVersion));
  const auto count = static_cast<uint64_t>(params.size());
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const auto& p : params) {
    write_string(out, p.name);
    tensor::save_tensor(out, *p.value);
  }
  if (!out) throw std::runtime_error("save_checkpoint: stream write failed");
}

void load_checkpoint(std::istream& in, SpikingNetwork& network) {
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("load_checkpoint: bad magic");
  }
  uint32_t version = 0;
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  if (!in || version != kVersion) {
    throw std::runtime_error("load_checkpoint: unsupported version");
  }
  uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  auto params = network.params();
  if (!in || count != params.size()) {
    throw std::runtime_error("load_checkpoint: parameter count mismatch");
  }
  for (auto& p : params) {
    const std::string name = read_string(in);
    if (name != p.name) {
      throw std::runtime_error("load_checkpoint: parameter name mismatch: expected '" +
                               p.name + "', found '" + name + "'");
    }
    tensor::Tensor loaded = tensor::load_tensor(in);
    if (loaded.shape() != p.value->shape()) {
      throw std::runtime_error("load_checkpoint: shape mismatch for " + p.name);
    }
    *p.value = std::move(loaded);
  }
}

void save_checkpoint_file(const std::string& path, SpikingNetwork& network) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("save_checkpoint_file: cannot open " + path);
  save_checkpoint(out, network);
}

void load_checkpoint_file(const std::string& path, SpikingNetwork& network) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_checkpoint_file: cannot open " + path);
  load_checkpoint(in, network);
}

}  // namespace ndsnn::nn
