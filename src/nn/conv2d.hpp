// 2-D convolution layer (im2col + GEMM) with manual backprop.
#pragma once

#include "nn/layer.hpp"
#include "tensor/im2col.hpp"
#include "tensor/random.hpp"

namespace ndsnn::nn {

/// Conv2d over time-flattened batches: input [M, C, H, W] -> output
/// [M, F, OH, OW], M = T*N. Weight [F, C, KH, KW] is `prunable`.
class Conv2d final : public Layer {
 public:
  Conv2d(int64_t in_channels, int64_t out_channels, int64_t kernel, int64_t stride,
         int64_t padding, tensor::Rng& rng, bool bias = false);

  [[nodiscard]] tensor::Tensor forward(const tensor::Tensor& input, bool training) override;
  [[nodiscard]] tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  [[nodiscard]] std::vector<ParamRef> params() override;
  [[nodiscard]] std::string name() const override;
  void reset_state() override;
  [[nodiscard]] std::optional<MaskedLayerView> masked_view() const override;

  [[nodiscard]] int64_t in_channels() const { return in_channels_; }
  [[nodiscard]] int64_t out_channels() const { return out_channels_; }
  [[nodiscard]] int64_t kernel() const { return kernel_; }
  [[nodiscard]] int64_t stride() const { return stride_; }
  [[nodiscard]] int64_t padding() const { return padding_; }
  [[nodiscard]] bool has_bias() const { return has_bias_; }
  [[nodiscard]] tensor::Tensor& weight() { return weight_; }
  [[nodiscard]] const tensor::Tensor& weight() const { return weight_; }
  [[nodiscard]] const tensor::Tensor& bias() const { return bias_; }

 private:
  int64_t in_channels_, out_channels_, kernel_, stride_, padding_;
  bool has_bias_;
  tensor::Tensor weight_;       // [F, C, KH, KW]
  tensor::Tensor weight_grad_;
  tensor::Tensor bias_;         // [F]
  tensor::Tensor bias_grad_;
  tensor::Tensor saved_cols_;   // [C*K*K, M*OH*OW]
  tensor::ConvGeometry saved_geom_{};
  bool has_saved_ = false;
};

}  // namespace ndsnn::nn
