// Classification loss on rate-accumulated logits.
//
// SNN readout: the final Linear layer emits logits at every timestep
// ([T*N, classes]); the network averages them over T ("rate decoding")
// and cross-entropy is applied to the mean logits, as in the paper's
// SpikingJelly setup.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace ndsnn::nn {

/// Value and gradient of softmax cross-entropy.
struct LossResult {
  double loss = 0.0;                 ///< mean over the batch
  tensor::Tensor grad_logits;        ///< dL/dlogits, [N, classes]
  int64_t correct = 0;               ///< argmax == label count
};

/// Softmax cross-entropy over [N, classes] logits with integer labels.
class CrossEntropyLoss {
 public:
  /// Throws std::invalid_argument on shape/label mismatch.
  [[nodiscard]] LossResult compute(const tensor::Tensor& logits,
                                   const std::vector<int64_t>& labels) const;
};

/// Average per-timestep logits [T*N, C] into [N, C].
[[nodiscard]] tensor::Tensor mean_over_time(const tensor::Tensor& step_logits,
                                            int64_t timesteps);

/// Adjoint of mean_over_time: broadcast grad [N, C] to [T*N, C] scaled 1/T.
[[nodiscard]] tensor::Tensor broadcast_over_time(const tensor::Tensor& grad_mean,
                                                 int64_t timesteps);

}  // namespace ndsnn::nn
