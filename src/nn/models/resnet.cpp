// Spiking ResNet-19 builder (tdBN-style SNN ResNet).
//
// Layer count: 1 stem conv + 8 basic blocks x 2 convs = 17 convs, plus the
// 256-unit FC and the classifier FC = 19 weight layers.
#include <stdexcept>

#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/flatten.hpp"
#include "nn/lif_activation.hpp"
#include "nn/linear.hpp"
#include "nn/models/zoo.hpp"
#include "nn/pool.hpp"
#include "nn/residual.hpp"

namespace ndsnn::nn {

std::unique_ptr<SpikingNetwork> make_resnet19(const ModelSpec& spec) {
  spec.validate();
  if (spec.image_size % 4 != 0) {
    throw std::invalid_argument("make_resnet19: image_size must be divisible by 4");
  }

  tensor::Rng rng(spec.seed);
  auto body = std::make_unique<Sequential>();

  const int64_t c1 = spec.scaled(128);
  const int64_t c2 = spec.scaled(256);
  const int64_t c3 = spec.scaled(512);
  const int64_t fc_hidden = spec.scaled(256);

  // Stem.
  body->emplace<Conv2d>(spec.in_channels, c1, 3, 1, 1, rng);
  body->emplace<BatchNorm2d>(c1);
  body->emplace<LifActivation>(spec.lif, spec.timesteps);

  // Stage 1: 3 blocks @ c1, stride 1.
  body->emplace<ResidualBlock>(c1, c1, 1, spec.lif, spec.timesteps, rng);
  body->emplace<ResidualBlock>(c1, c1, 1, spec.lif, spec.timesteps, rng);
  body->emplace<ResidualBlock>(c1, c1, 1, spec.lif, spec.timesteps, rng);

  // Stage 2: 3 blocks @ c2, first downsamples.
  body->emplace<ResidualBlock>(c1, c2, 2, spec.lif, spec.timesteps, rng);
  body->emplace<ResidualBlock>(c2, c2, 1, spec.lif, spec.timesteps, rng);
  body->emplace<ResidualBlock>(c2, c2, 1, spec.lif, spec.timesteps, rng);

  // Stage 3: 2 blocks @ c3, first downsamples.
  body->emplace<ResidualBlock>(c2, c3, 2, spec.lif, spec.timesteps, rng);
  body->emplace<ResidualBlock>(c3, c3, 1, spec.lif, spec.timesteps, rng);

  body->emplace<GlobalAvgPool>();
  body->emplace<Linear>(c3, fc_hidden, rng);
  body->emplace<LifActivation>(spec.lif, spec.timesteps);
  body->emplace<Linear>(fc_hidden, spec.num_classes, rng);

  return std::make_unique<SpikingNetwork>(std::move(body), spec.timesteps);
}

}  // namespace ndsnn::nn
