// Spiking VGG-16 builder.
#include <stdexcept>

#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/flatten.hpp"
#include "nn/lif_activation.hpp"
#include "nn/linear.hpp"
#include "nn/models/zoo.hpp"
#include "nn/pool.hpp"

namespace ndsnn::nn {

std::unique_ptr<SpikingNetwork> make_vgg16(const ModelSpec& spec) {
  spec.validate();
  // 'M' = 2x2 average pool; numbers are base channel counts.
  static constexpr int64_t kPool = -1;
  static constexpr int64_t kConfig[] = {64, 64, kPool, 128, 128, kPool, 256, 256, 256,
                                        kPool, 512, 512, 512, kPool, 512, 512, 512, kPool};
  if (spec.image_size % 32 != 0) {
    throw std::invalid_argument("make_vgg16: image_size must be divisible by 32 (5 pools)");
  }

  tensor::Rng rng(spec.seed);
  auto body = std::make_unique<Sequential>();
  int64_t channels = spec.in_channels;
  int64_t res = spec.image_size;
  for (const int64_t entry : kConfig) {
    if (entry == kPool) {
      body->emplace<AvgPool2d>(2);
      res /= 2;
      continue;
    }
    const int64_t out = spec.scaled(entry);
    body->emplace<Conv2d>(channels, out, 3, 1, 1, rng);
    body->emplace<BatchNorm2d>(out);
    body->emplace<LifActivation>(spec.lif, spec.timesteps);
    channels = out;
  }
  body->emplace<Flatten>();
  body->emplace<Linear>(channels * res * res, spec.num_classes, rng);
  return std::make_unique<SpikingNetwork>(std::move(body), spec.timesteps);
}

}  // namespace ndsnn::nn
