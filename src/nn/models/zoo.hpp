// Model zoo: the architectures evaluated in the paper.
//
// - VGG-16   (conv backbone 64..512 + classifier), Table I
// - ResNet-19 (tdBN SNN variant: 17 convs + 2 FC), Table I
// - LeNet-5  (Table II ADMM comparison)
//
// All builders take a ModelSpec so benches can scale width/resolution to
// CPU-feasible sizes while preserving topology (layer count and relative
// fan-in, which is what the ERK distribution and schedules observe).
#pragma once

#include <memory>
#include <string>

#include "nn/network.hpp"
#include "snn/lif.hpp"
#include "tensor/random.hpp"

namespace ndsnn::nn {

/// Parameters shared by all model builders.
struct ModelSpec {
  int64_t num_classes = 10;
  int64_t in_channels = 3;
  int64_t image_size = 32;       ///< input H == W; must be divisible by the net's total pooling
  int64_t timesteps = 5;         ///< paper default T=5 (Fig. 4 uses T=2)
  double width_scale = 1.0;      ///< multiply channel counts (min 1 channel)
  snn::LifConfig lif{};
  uint64_t seed = 42;

  void validate() const;
  /// Channel count after scaling (never below 1).
  [[nodiscard]] int64_t scaled(int64_t channels) const;
};

/// Spiking VGG-16: 13 conv (BN+LIF each) in 5 stages with avg-pool, then
/// a single classifier Linear (standard SNN-VGG head).
[[nodiscard]] std::unique_ptr<SpikingNetwork> make_vgg16(const ModelSpec& spec);

/// Spiking ResNet-19: conv3x3(128) stem, stages {128x3, 256x3, 512x2}
/// of basic blocks, global avg pool, 256-unit FC, classifier FC.
[[nodiscard]] std::unique_ptr<SpikingNetwork> make_resnet19(const ModelSpec& spec);

/// Spiking LeNet-5: conv 6@5x5 -> pool -> conv 16@5x5 -> pool -> FC
/// 120 -> 84 -> classes.
[[nodiscard]] std::unique_ptr<SpikingNetwork> make_lenet5(const ModelSpec& spec);

/// Build by name: "vgg16" | "resnet19" | "lenet5".
[[nodiscard]] std::unique_ptr<SpikingNetwork> make_model(const std::string& arch,
                                                         const ModelSpec& spec);

}  // namespace ndsnn::nn
