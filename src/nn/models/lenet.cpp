// Spiking LeNet-5 builder (Table II: ADMM comparison).
#include <stdexcept>

#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/flatten.hpp"
#include "nn/lif_activation.hpp"
#include "nn/linear.hpp"
#include "nn/models/zoo.hpp"
#include "nn/pool.hpp"

namespace ndsnn::nn {

std::unique_ptr<SpikingNetwork> make_lenet5(const ModelSpec& spec) {
  spec.validate();
  if (spec.image_size % 4 != 0) {
    throw std::invalid_argument("make_lenet5: image_size must be divisible by 4");
  }

  tensor::Rng rng(spec.seed);
  auto body = std::make_unique<Sequential>();

  const int64_t c1 = spec.scaled(6);
  const int64_t c2 = spec.scaled(16);
  const int64_t f1 = spec.scaled(120);
  const int64_t f2 = spec.scaled(84);

  body->emplace<Conv2d>(spec.in_channels, c1, 5, 1, 2, rng);
  body->emplace<BatchNorm2d>(c1);
  body->emplace<LifActivation>(spec.lif, spec.timesteps);
  body->emplace<AvgPool2d>(2);

  body->emplace<Conv2d>(c1, c2, 5, 1, 2, rng);
  body->emplace<BatchNorm2d>(c2);
  body->emplace<LifActivation>(spec.lif, spec.timesteps);
  body->emplace<AvgPool2d>(2);

  const int64_t res = spec.image_size / 4;
  body->emplace<Flatten>();
  body->emplace<Linear>(c2 * res * res, f1, rng);
  body->emplace<LifActivation>(spec.lif, spec.timesteps);
  body->emplace<Linear>(f1, f2, rng);
  body->emplace<LifActivation>(spec.lif, spec.timesteps);
  body->emplace<Linear>(f2, spec.num_classes, rng);

  return std::make_unique<SpikingNetwork>(std::move(body), spec.timesteps);
}

}  // namespace ndsnn::nn
