#include "nn/models/zoo.hpp"

#include <algorithm>
#include <stdexcept>

namespace ndsnn::nn {

void ModelSpec::validate() const {
  if (num_classes < 2) throw std::invalid_argument("ModelSpec: num_classes must be >= 2");
  if (in_channels < 1) throw std::invalid_argument("ModelSpec: in_channels must be >= 1");
  if (image_size < 4) throw std::invalid_argument("ModelSpec: image_size must be >= 4");
  if (timesteps < 1) throw std::invalid_argument("ModelSpec: timesteps must be >= 1");
  if (width_scale <= 0.0) throw std::invalid_argument("ModelSpec: width_scale must be > 0");
  lif.validate();
}

int64_t ModelSpec::scaled(int64_t channels) const {
  const auto s = static_cast<int64_t>(static_cast<double>(channels) * width_scale + 0.5);
  return std::max<int64_t>(1, s);
}

std::unique_ptr<SpikingNetwork> make_model(const std::string& arch, const ModelSpec& spec) {
  if (arch == "vgg16") return make_vgg16(spec);
  if (arch == "resnet19") return make_resnet19(spec);
  if (arch == "lenet5") return make_lenet5(spec);
  throw std::invalid_argument("make_model: unknown architecture '" + arch + "'");
}

}  // namespace ndsnn::nn
