// Spiking residual basic block (for ResNet-19, tdBN style).
//
//   main:     conv3x3(s) -> BN -> LIF -> conv3x3(1) -> BN
//   shortcut: identity, or conv1x1(s) -> BN when shape changes
//   output:   LIF(main + shortcut)
#pragma once

#include <memory>

#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/layer.hpp"
#include "nn/lif_activation.hpp"
#include "snn/lif.hpp"
#include "tensor/random.hpp"

namespace ndsnn::nn {

class ResidualBlock final : public Layer {
 public:
  ResidualBlock(int64_t in_channels, int64_t out_channels, int64_t stride,
                const snn::LifConfig& lif, int64_t timesteps, tensor::Rng& rng);

  [[nodiscard]] tensor::Tensor forward(const tensor::Tensor& input, bool training) override;
  [[nodiscard]] tensor::Tensor backward(const tensor::Tensor& grad_output) override;
  [[nodiscard]] std::vector<ParamRef> params() override;
  [[nodiscard]] std::string name() const override;
  void reset_state() override;
  [[nodiscard]] double last_spike_rate() const override;

  // Sub-layer access for the inference-runtime compiler (nullptr where a
  // block uses the identity shortcut).
  [[nodiscard]] const Conv2d& conv1() const { return *conv1_; }
  [[nodiscard]] const BatchNorm2d& bn1() const { return *bn1_; }
  [[nodiscard]] const LifActivation& lif1() const { return *lif1_; }
  [[nodiscard]] const Conv2d& conv2() const { return *conv2_; }
  [[nodiscard]] const BatchNorm2d& bn2() const { return *bn2_; }
  [[nodiscard]] const Conv2d* shortcut_conv() const { return shortcut_conv_.get(); }
  [[nodiscard]] const BatchNorm2d* shortcut_bn() const { return shortcut_bn_.get(); }
  [[nodiscard]] const LifActivation& lif_out() const { return *lif_out_; }

 private:
  std::unique_ptr<Conv2d> conv1_;
  std::unique_ptr<BatchNorm2d> bn1_;
  std::unique_ptr<LifActivation> lif1_;
  std::unique_ptr<Conv2d> conv2_;
  std::unique_ptr<BatchNorm2d> bn2_;
  std::unique_ptr<Conv2d> shortcut_conv_;     // null for identity shortcut
  std::unique_ptr<BatchNorm2d> shortcut_bn_;  // null for identity shortcut
  std::unique_ptr<LifActivation> lif_out_;
};

}  // namespace ndsnn::nn
