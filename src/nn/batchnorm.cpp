#include "nn/batchnorm.hpp"

#include <cmath>
#include <stdexcept>

namespace ndsnn::nn {

BatchNorm2d::BatchNorm2d(int64_t channels, float eps, float momentum)
    : channels_(channels),
      eps_(eps),
      momentum_(momentum),
      gamma_(tensor::Shape{channels}, 1.0F),
      gamma_grad_(tensor::Shape{channels}),
      beta_(tensor::Shape{channels}),
      beta_grad_(tensor::Shape{channels}),
      running_mean_(tensor::Shape{channels}),
      running_var_(tensor::Shape{channels}, 1.0F) {
  if (channels < 1) throw std::invalid_argument("BatchNorm2d: channels must be >= 1");
  if (eps <= 0.0F) throw std::invalid_argument("BatchNorm2d: eps must be > 0");
}

tensor::Tensor BatchNorm2d::forward(const tensor::Tensor& input, bool training) {
  if (input.rank() != 4 || input.dim(1) != channels_) {
    throw std::invalid_argument("BatchNorm2d::forward: expected [M, " +
                                std::to_string(channels_) + ", H, W], got " +
                                input.shape().str());
  }
  const int64_t m = input.dim(0), h = input.dim(2), w = input.dim(3);
  const int64_t plane = h * w;
  const int64_t per_channel = m * plane;

  saved_in_shape_ = input.shape();
  saved_xhat_ = tensor::Tensor(input.shape());
  saved_inv_std_.assign(static_cast<std::size_t>(channels_), 0.0F);
  has_saved_ = true;

  tensor::Tensor out(input.shape());
  const float* src = input.data();
  float* xhat = saved_xhat_.data();
  float* dst = out.data();

  for (int64_t c = 0; c < channels_; ++c) {
    float mean = 0.0F, var = 0.0F;
    if (training) {
      double acc = 0.0;
      for (int64_t mm = 0; mm < m; ++mm) {
        const float* p = src + (mm * channels_ + c) * plane;
        for (int64_t i = 0; i < plane; ++i) acc += p[i];
      }
      mean = static_cast<float>(acc / static_cast<double>(per_channel));
      double vacc = 0.0;
      for (int64_t mm = 0; mm < m; ++mm) {
        const float* p = src + (mm * channels_ + c) * plane;
        for (int64_t i = 0; i < plane; ++i) {
          const double d = p[i] - mean;
          vacc += d * d;
        }
      }
      var = static_cast<float>(vacc / static_cast<double>(per_channel));
      running_mean_.at(c) = (1.0F - momentum_) * running_mean_.at(c) + momentum_ * mean;
      running_var_.at(c) = (1.0F - momentum_) * running_var_.at(c) + momentum_ * var;
    } else {
      mean = running_mean_.at(c);
      var = running_var_.at(c);
    }
    const float inv_std = 1.0F / std::sqrt(var + eps_);
    saved_inv_std_[static_cast<std::size_t>(c)] = inv_std;
    const float g = gamma_.at(c), b = beta_.at(c);
    for (int64_t mm = 0; mm < m; ++mm) {
      const int64_t base = (mm * channels_ + c) * plane;
      for (int64_t i = 0; i < plane; ++i) {
        const float xh = (src[base + i] - mean) * inv_std;
        xhat[base + i] = xh;
        dst[base + i] = g * xh + b;
      }
    }
  }
  return out;
}

tensor::Tensor BatchNorm2d::backward(const tensor::Tensor& grad_output) {
  if (!has_saved_) throw std::logic_error("BatchNorm2d::backward before forward");
  if (grad_output.shape() != saved_in_shape_) {
    throw std::invalid_argument("BatchNorm2d::backward: bad grad shape " +
                                grad_output.shape().str());
  }
  const int64_t m = saved_in_shape_.dim(0);
  const int64_t plane = saved_in_shape_.dim(2) * saved_in_shape_.dim(3);
  const int64_t per_channel = m * plane;

  tensor::Tensor gin(saved_in_shape_);
  const float* gy = grad_output.data();
  const float* xhat = saved_xhat_.data();
  float* gx = gin.data();

  for (int64_t c = 0; c < channels_; ++c) {
    // Reductions: sum(gy) and sum(gy * xhat) over the channel slice.
    double sum_gy = 0.0, sum_gy_xhat = 0.0;
    for (int64_t mm = 0; mm < m; ++mm) {
      const int64_t base = (mm * channels_ + c) * plane;
      for (int64_t i = 0; i < plane; ++i) {
        sum_gy += gy[base + i];
        sum_gy_xhat += static_cast<double>(gy[base + i]) * xhat[base + i];
      }
    }
    gamma_grad_.at(c) += static_cast<float>(sum_gy_xhat);
    beta_grad_.at(c) += static_cast<float>(sum_gy);

    // dx = (gamma * inv_std / Npc) * (Npc*gy - sum(gy) - xhat * sum(gy*xhat))
    const float scale = gamma_.at(c) * saved_inv_std_[static_cast<std::size_t>(c)] /
                        static_cast<float>(per_channel);
    const auto npc = static_cast<float>(per_channel);
    const auto sgy = static_cast<float>(sum_gy);
    const auto sgx = static_cast<float>(sum_gy_xhat);
    for (int64_t mm = 0; mm < m; ++mm) {
      const int64_t base = (mm * channels_ + c) * plane;
      for (int64_t i = 0; i < plane; ++i) {
        gx[base + i] = scale * (npc * gy[base + i] - sgy - xhat[base + i] * sgx);
      }
    }
  }
  return gin;
}

std::vector<ParamRef> BatchNorm2d::params() {
  return {
      {"gamma", &gamma_, &gamma_grad_, /*prunable=*/false},
      {"beta", &beta_, &beta_grad_, /*prunable=*/false},
  };
}

std::string BatchNorm2d::name() const {
  return "BatchNorm2d(" + std::to_string(channels_) + ")";
}

void BatchNorm2d::reset_state() {
  saved_xhat_ = tensor::Tensor();
  saved_inv_std_.clear();
  has_saved_ = false;
}

}  // namespace ndsnn::nn
